// Motor condition classification (paper §V-B): train the classifier on
// synthetic vibration signatures, compress it with the toolchain, and
// size the battery of the ultra-low-energy monitoring box.
package main

import (
	"fmt"
	"log"

	"vedliot/internal/accel"
	"vedliot/internal/dataset"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
	"vedliot/internal/train"
)

func main() {
	cfg := dataset.DefaultMotorConfig()
	samples := dataset.MotorVibration(900, cfg)
	dataset.Normalize(samples)
	trainSet, testSet := dataset.Split(samples, 0.25)

	g := nn.MLP("motor-clf", []int{cfg.Window, 64, int(dataset.NumMotorStates)},
		nn.BuildOptions{Weights: true, Seed: 3})
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: 20, LR: 0.05, BatchSize: 16, Seed: 4}); err != nil {
		log.Fatal(err)
	}
	ev, err := kenning.Evaluate(g, &kenning.CPUTarget{}, testSet, int(dataset.NumMotorStates))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy %.3f on %d test windows\n", ev.Confusion.Accuracy(), len(testSet))
	fmt.Println(ev.Confusion)

	// Compress for the battery box: prune + retrain + quantize.
	if err := g.InferShapes(1); err != nil {
		log.Fatal(err)
	}
	before := g.WeightBytes()
	if _, err := optimize.MagnitudePrune(g, 0.8); err != nil {
		log.Fatal(err)
	}
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: 8, LR: 0.02, BatchSize: 16, Seed: 5, FreezeZeros: true}); err != nil {
		log.Fatal(err)
	}
	qr, err := optimize.QuantizeWeights(g, optimize.QuantConfig{Granularity: optimize.PerChannel})
	if err != nil {
		log.Fatal(err)
	}
	acc2, err := train.Accuracy(g, testSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d -> %d weight bytes (sparse-ready), accuracy %.3f\n",
		before, qr.BytesAfter, acc2)

	// Battery life on the MCU NPU at one inference per second.
	npu, _ := accel.FindDevice("MAX78000 NPU")
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		log.Fatal(err)
	}
	m, err := npu.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		log.Fatal(err)
	}
	const batteryMJ = 32.4e6 // 2x AA lithium
	perSecondMJ := m.EnergyPerInferenceMJ() + npu.IdleW*1000
	days := batteryMJ / perSecondMJ / 86400
	fmt.Printf("on %s: %.2f ms, %.3f mJ per inference -> %.0f days on 2xAA at 1 Hz\n",
		npu.Name, m.LatencyMS, m.EnergyPerInferenceMJ(), days)

	// Event reporting: which faults would page an operator?
	for st := dataset.MotorState(1); st < dataset.NumMotorStates; st++ {
		recall := ev.Confusion.Recall(int(st))
		fmt.Printf("  %-14s recall %.2f -> operator notified on detection\n", st, recall)
	}
}
