// DC arc detection (paper §V-B): a low-latency detector over current
// waveforms with an ultra-low false-negative requirement, supervised by
// the architectural-hybridization safety pattern — when the detector's
// input looks compromised, the system de-energizes (the safe action).
package main

import (
	"fmt"
	"log"

	"vedliot/internal/accel"
	"vedliot/internal/dataset"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/safety"
	"vedliot/internal/tensor"
)

func main() {
	cfg := dataset.DefaultArcConfig()
	arcs := dataset.ArcCurrent(400, cfg)

	// Score every window with the high-frequency-energy detector and
	// sweep the threshold for the FNR target.
	scores := make([]float64, len(arcs))
	truth := make([]bool, len(arcs))
	for i, a := range arcs {
		scores[i] = arcScore(a.X)
		truth[i] = a.Arc
	}
	curve, err := kenning.PRCurve(scores, truth)
	if err != nil {
		log.Fatal(err)
	}
	var op kenning.PRPoint
	for _, p := range curve {
		op = p
		if p.Recall >= 0.995 {
			break
		}
	}
	fmt.Printf("operating point for FNR <= 0.5%%: threshold %.3f, recall %.3f, precision %.3f\n",
		op.Threshold, op.Recall, op.Precision)

	// Latency budget on the FPGA DPU module.
	g := nn.ArcNet(cfg.Window, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		log.Fatal(err)
	}
	dev, _ := accel.FindDevice("ZU3 B2304")
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		log.Fatal(err)
	}
	m, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		log.Fatal(err)
	}
	windowMS := float64(cfg.Window) / cfg.SampleRate * 1000
	fmt.Printf("spark-to-decision: window %.2f ms + inference %.2f ms = %.2f ms on %s\n\n",
		windowMS, m.LatencyMS, windowMS+m.LatencyMS, dev.Name)

	// Hybrid supervision: the payload is the detector; the check is the
	// input-quality monitor; the safe action trips the breaker.
	monitorCfg := safety.DefaultSeriesMonitorConfig()
	type decision struct {
		arc     bool
		tripped bool
	}
	trips := 0
	hybrid := &safety.Hybrid[decision]{
		Check:      func(d decision) bool { return !d.tripped },
		SafeAction: func() decision { trips++; return decision{arc: true, tripped: true} },
	}
	detections, faults := 0, 0
	for _, a := range arcs[:100] {
		window := a.X
		hybrid.Payload = func() (decision, error) {
			// Input-quality gate: a compromised sensor forces the safe
			// action regardless of the classifier's opinion.
			alarms := safety.MonitorSeries(window, monitorCfg)
			if len(alarms) > len(window)/4 {
				return decision{tripped: true}, nil
			}
			return decision{arc: arcScore(window) > op.Threshold}, nil
		}
		d := hybrid.Invoke()
		if d.arc {
			detections++
		}
		if d.tripped {
			faults++
		}
	}
	used, fellBack := hybrid.Stats()
	fmt.Printf("hybrid supervision over 100 windows: %d arc decisions, %d payload uses, %d safe-action fallbacks\n",
		detections, used, fellBack)
}

// arcScore is the high-frequency-energy ratio between the window's
// second and first halves.
func arcScore(x []float32) float64 {
	half := len(x) / 2
	return diffPower(x[half:]) / (diffPower(x[:half]) + 1e-9)
}

func diffPower(x []float32) float64 {
	var s float64
	for i := 1; i < len(x); i++ {
		d := float64(x[i] - x[i-1])
		s += d * d
	}
	return s / float64(len(x)-1)
}
