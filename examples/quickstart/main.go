// Quickstart: the VEDLIoT design flow end to end — build a model, run
// the optimizing toolchain, pick an accelerator and platform under
// latency/power constraints, and report the predicted operating point.
package main

import (
	"fmt"
	"log"

	"vedliot/internal/core"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func main() {
	// A gesture classifier for an embedded device: 30 FPS, under 15 W,
	// deployed at INT8 with per-channel PTQ.
	uc := core.UseCase{
		Name:  "quickstart-gestures",
		Model: nn.GestureNet(64, 8, nn.BuildOptions{Weights: true, Seed: 1}),
		Req: core.Requirements{
			LatencyMS: 33,
			PowerW:    15,
			Precision: tensor.INT8,
			Quantize:  true,
			Tier:      "embedded/far edge",
		},
	}
	dep, err := core.PlanDeployment(uc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("use case:   %s\n", dep.UseCase)
	fmt.Printf("toolchain:  passes %v\n", dep.Pipeline.AppliedPasses)
	if q := dep.Pipeline.QuantReport; q != nil {
		fmt.Printf("quantized:  %s, weights %d -> %d bytes\n", q.Granularity, q.BytesBefore, q.BytesAfter)
	}
	fmt.Printf("device:     %s (co-designed: %v)\n", dep.Device.Name, dep.CoDesigned)
	fmt.Printf("operating:  %.2f ms, %.0f GOPS, %.1f W, %.2f mJ/inference (%s-bound)\n",
		dep.M.LatencyMS, dep.M.GOPS, dep.M.PowerW, dep.M.EnergyPerInferenceMJ(), dep.M.Bound)
	if dep.Module != "" {
		fmt.Printf("platform:   %s module in %s\n", dep.Module, dep.Chassis)
	}
}
