// Quickstart: the VEDLIoT design flow end to end — build a model, run
// the optimizing toolchain, pick an accelerator and platform under
// latency/power constraints, report the predicted operating point, and
// package the result as a deployable .vedz artifact served through the
// fleet-wide compiled-plan cache.
//
// Run it with:
//
//	go run ./examples/quickstart
//
// Expected output (timings vary, everything else is deterministic):
//
//	use case:   quickstart-gestures
//	toolchain:  passes [fold-batchnorm]
//	quantized:  per-channel, weights 94784 -> 24176 bytes
//	device:     MAX78000 NPU (co-designed: false)
//	operating:  0.53 ms, 10 GOPS, 0.0 W, 0.01 mJ/inference (memory-bound)
//	artifact:   quickstart-gestures.vedz, 97408 bytes
//	            sha256:bae9beef5903de1e... (stable across runs and machines)
//	reloaded:   11 calibrated activation ranges, provenance quickstart
//	cold start: compile 165µs | plan-cache hit 41ns (4018x faster)
//	serving:    artifact output matches in-process engine bitwise
//
// The same packaging flow is available on the command line:
//
//	vedliot-pack pack -model mirror-gesture -int8 -o gestures.vedz
//	vedliot-pack inspect gestures.vedz     # sections, digest, schema
//	vedliot-serve -model gestures.vedz     # fleet-serve the artifact
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vedliot/internal/artifact"
	"vedliot/internal/core"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func main() {
	// A gesture classifier for an embedded device: 30 FPS, under 15 W,
	// deployed at INT8 with per-channel PTQ and activation calibration
	// (so the artifact is natively INT8-servable).
	model := nn.GestureNet(64, 8, nn.BuildOptions{Weights: true, Seed: 1})
	samples, err := nn.SyntheticCalibration(model, 4)
	if err != nil {
		log.Fatal(err)
	}
	uc := core.UseCase{
		Name:  "quickstart-gestures",
		Model: model,
		Req: core.Requirements{
			LatencyMS:          33,
			PowerW:             15,
			Precision:          tensor.INT8,
			Quantize:           true,
			CalibrationSamples: samples,
			Tier:               "embedded/far edge",
		},
	}
	dep, err := core.PlanDeployment(uc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("use case:   %s\n", dep.UseCase)
	fmt.Printf("toolchain:  passes %v\n", dep.Pipeline.AppliedPasses)
	if q := dep.Pipeline.QuantReport; q != nil {
		fmt.Printf("quantized:  %s, weights %d -> %d bytes\n", q.Granularity, q.BytesBefore, q.BytesAfter)
	}
	fmt.Printf("device:     %s (co-designed: %v)\n", dep.Device.Name, dep.CoDesigned)
	fmt.Printf("operating:  %.2f ms, %.0f GOPS, %.1f W, %.2f mJ/inference (%s-bound)\n",
		dep.M.LatencyMS, dep.M.GOPS, dep.M.PowerW, dep.M.EnergyPerInferenceMJ(), dep.M.Bound)
	if dep.Module != "" {
		fmt.Printf("platform:   %s module in %s\n", dep.Module, dep.Chassis)
	}

	// Package the optimized model as a .vedz deployment artifact: one
	// file carrying the graph, the (INT8) weights, the calibrated
	// activation schema and the toolchain provenance. The encoding is
	// canonical, so the digest is stable across runs and machines.
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "quickstart-gestures.vedz")
	art := &artifact.Model{
		Graph:  model,
		Schema: dep.Pipeline.Schema,
		Prov: artifact.Provenance{
			Tool:      "quickstart",
			Passes:    dep.Pipeline.AppliedPasses,
			Quantized: dep.Pipeline.QuantReport.Granularity.String(),
		},
	}
	if err := artifact.Save(path, art); err != nil {
		log.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	fmt.Printf("artifact:   %s, %d bytes\n", filepath.Base(path), len(data))
	fmt.Printf("            %s (stable across runs and machines)\n", art.Digest)

	// A fleet node reloads the artifact (zero-copy weight views) and
	// compiles through the plan cache: the first replica lowers the
	// plan, every further replica binds the cached one.
	loaded, err := artifact.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded:   %d calibrated activation ranges, provenance %s\n",
		len(loaded.Schema.Activations), loaded.Prov.Tool)
	plans := inference.NewPlanCache()
	key := loaded.Digest + "|cpu-engine"
	coldStart := time.Now()
	exe, _, err := plans.Compile(key, inference.CPUBackend{}, loaded.Graph)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(coldStart)
	warmStart := time.Now()
	const hits = 64
	for i := 0; i < hits; i++ {
		if _, _, err := plans.Compile(key, inference.CPUBackend{}, loaded.Graph); err != nil {
			log.Fatal(err)
		}
	}
	warm := time.Since(warmStart) / hits
	fmt.Printf("cold start: compile %v | plan-cache hit %v (%.0fx faster)\n",
		cold.Round(time.Microsecond), warm, float64(cold)/float64(warm))

	// The artifact-served plan is bitwise the in-process engine.
	in, err := nn.SyntheticInput(loaded.Graph, 1, 9)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := inference.Compile(model)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	got, err := exe.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	for name, w := range want {
		if d, _ := tensor.MaxAbsDiff(w, got[name]); d != 0 {
			log.Fatalf("artifact output %q differs by %g", name, d)
		}
	}
	fmt.Println("serving:    artifact output matches in-process engine bitwise")
}
