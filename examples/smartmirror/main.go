// Smart-mirror demonstrator (paper §V-C, Fig. 5): four neural networks
// (face detection, face embedding, object/gesture detection, speech)
// feed Kalman-filter person tracking and a fusion/decision stage, all
// running on a uRECS within its power envelope.
package main

import (
	"fmt"
	"log"
	"math"

	"vedliot/internal/accel"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
	"vedliot/internal/track"
)

func main() {
	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		log.Fatal(err)
	}

	// Stage models and their invocation rates (Fig. 5 pipeline).
	stages := []struct {
		name string
		g    *nn.Graph
		rate float64
	}{
		{"WiderFace detection", nn.FaceDetectNet(96, nn.BuildOptions{}), 30},
		{"FaceNet embedding", nn.FaceEmbedNet(64, 128, nn.BuildOptions{}), 10},
		{"YOLO objects+gestures", nn.YoloV4Tiny(416, 80, nn.BuildOptions{}), 15},
		{"gesture classifier", nn.GestureNet(64, 8, nn.BuildOptions{}), 15},
		{"DeepSpeech transcript", nn.SpeechNet(100, 26, 29, nn.BuildOptions{}), 2},
	}
	fmt.Println("per-stage budget on", dev.Name)
	var load float64
	for _, st := range stages {
		if err := st.g.InferShapes(1); err != nil {
			log.Fatal(err)
		}
		w, err := accel.WorkloadFromGraph(st.g, tensor.INT8)
		if err != nil {
			log.Fatal(err)
		}
		m, err := dev.Evaluate(w, tensor.INT8, 1)
		if err != nil {
			log.Fatal(err)
		}
		l := m.LatencyMS * st.rate / 10 // percent of one second
		load += l
		fmt.Printf("  %-24s %6.2f ms @ %4.0f Hz -> %5.1f%% load\n", st.name, m.LatencyMS, st.rate, l)
	}
	fmt.Printf("aggregate accelerator load: %.0f%%\n\n", load)

	// Person tracking: two residents walk past the mirror; the tracker
	// keeps their identities while the face stage relabels them.
	tracker := track.NewTracker(track.DefaultKalmanConfig(), 60, 3)
	for frame := 0; frame < 60; frame++ {
		var dets []track.Detection
		// Alice crosses left to right; Bob enters at frame 20.
		dets = append(dets, track.Detection{
			P:     track.Point{X: 50 + float64(frame)*7, Y: 200 + 10*math.Sin(float64(frame)/5)},
			Label: "alice",
		})
		if frame >= 20 {
			dets = append(dets, track.Detection{
				P:     track.Point{X: 600 - float64(frame-20)*6, Y: 260},
				Label: "bob",
			})
		}
		tracker.Step(dets)
	}
	fmt.Println("tracked identities after 60 frames:")
	for _, tr := range tracker.Tracks() {
		s := tr.Filter.State()
		v := tr.Filter.Velocity()
		fmt.Printf("  track %d (%s): pos (%.0f, %.0f), velocity (%.1f, %.1f)\n",
			tr.ID, tr.Label, s.X, s.Y, v.X, v.Y)
	}

	// Decision fusion: greet whoever approaches the mirror.
	fmt.Println("\nfusion decisions:")
	for _, tr := range tracker.Tracks() {
		if math.Abs(tr.Filter.Velocity().X) < 8 {
			fmt.Printf("  %s is lingering -> show personal dashboard\n", tr.Label)
		} else {
			fmt.Printf("  %s is passing by -> idle display\n", tr.Label)
		}
	}

	// Platform check: everything on a Jetson NX inside the uRECS.
	chassis := microserver.NewURECS()
	nx, err := microserver.FindModule("Jetson Xavier NX")
	if err != nil {
		log.Fatal(err)
	}
	if err := chassis.Insert(0, nx); err != nil {
		log.Fatal(err)
	}
	power := chassis.PowerW(map[int]float64{0: load / 100})
	fmt.Printf("\nuRECS power at this load: %.1f W (module budget 15 W)\n", power)
}
