// Pedestrian Automatic Emergency Braking (paper §V-A): distribute the
// detector between the car and an edge station, sweeping vehicle speed
// and network quality, with remote attestation of the edge station
// before any raw sensor data leaves the car.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/attest"
	"vedliot/internal/core"
	"vedliot/internal/fabric"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func main() {
	// Attest the edge station first (§V-A: "an integration of
	// VEDLIoT's remote attestation approach is of importance").
	root, err := attest.NewRootOfTrust()
	if err != nil {
		log.Fatal(err)
	}
	boot := []attest.BootStage{
		{Name: "bootloader", Image: []byte("edge-bl-1.0")},
		{Name: "os", Image: []byte("edge-os-5.15")},
		{Name: "paeb-service", Image: []byte("paeb-detector-3.1")},
	}
	station, err := attest.NewDevice("edge-station-7", root, boot)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err == nil {
		defer l.Close()
		go attest.Serve(l, station)
		verifier := attest.NewVerifier(root.Public(), station.Measurement())
		ev, rtt, err := verifier.Attest(l.Addr().String(), 5*time.Second)
		if err != nil {
			log.Fatalf("edge station failed attestation: %v", err)
		}
		fmt.Printf("edge station %q attested in %v — raw sensor data may leave the car\n\n", ev.Device, rtt)
	} else {
		fmt.Println("(no loopback networking; skipping live attestation)")
	}

	// Offload decision sweep.
	g := nn.YoloV4(416, 80, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		log.Fatal(err)
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		log.Fatal(err)
	}
	onCar, _ := accel.FindDevice("Xavier NX")
	edge, _ := accel.FindDevice("GTX1660")

	fmt.Printf("%-10s %-12s %9s %9s %9s %9s %9s\n",
		"km/h", "network", "deadline", "local ms", "edge ms", "offload", "car mJ")
	for _, speed := range []float64{30, 50, 80, 120} {
		v := speed / 3.6
		deadlineMS := 0.10 * (25 / v) * 1000 // 10% of time-to-cover 25 m
		for _, link := range fabric.MobileProfiles() {
			plan, err := core.PlanOffload(w, onCar, edge, tensor.INT8, link,
				500_000, 2_000, deadlineMS, 2.5)
			if err != nil {
				log.Fatal(err)
			}
			carMJ := plan.CarEnergyLocalMJ
			if plan.Offload {
				carMJ = plan.CarEnergyOffloadMJ
			}
			fmt.Printf("%-10.0f %-12s %9.0f %9.1f %9.1f %9v %9.0f\n",
				speed, link.Name, deadlineMS, plan.LocalMS, plan.EdgeMS, plan.Offload, carMJ)
		}
	}
	fmt.Println("\noffloading wins where the network is fast enough to beat the deadline")
	fmt.Println("and the radio energy undercuts on-car inference energy.")
}
