module vedliot

go 1.21
