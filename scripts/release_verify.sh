#!/usr/bin/env bash
# release_verify.sh exercises the signed, witnessed release channel end
# to end against the committed golden artifact — the CI release-verify
# job. Positive flow: keygen -> sign + transparency-log append ->
# witness countersignature -> policy-gated verify. Negative flow: the
# policy gate must refuse a bit-flipped artifact, a valid-but-unlogged
# bundle, and a witness must refuse a forked log.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/vedliot-pack" ./cmd/vedliot-pack
pack="$workdir/vedliot-pack"
golden=internal/artifact/testdata/golden.vedz

# expect_fail runs a command that MUST exit non-zero; a success is a
# hole in the release gate and fails the job.
expect_fail() {
  desc=$1; shift
  if "$@" >"$workdir/out.log" 2>&1; then
    echo "FAIL: $desc unexpectedly passed the gate"
    cat "$workdir/out.log"
    exit 1
  fi
  echo "ok (refused): $desc"
}

echo "== provision signer/log/witness keys =="
"$pack" keygen -o "$workdir/keys"

echo "== sign the golden artifact into the transparency log =="
"$pack" sign -keys "$workdir/keys" -log "$workdir/log.json" \
  -o "$workdir/golden.bundle.json" "$golden"

echo "== witness verifies append-only growth and countersigns =="
"$pack" witness -keys "$workdir/keys" -log "$workdir/log.json" \
  -state "$workdir/witness.json" -bundle "$workdir/golden.bundle.json"

echo "== policy-gated verify (signature + inclusion + witness quorum) =="
"$pack" verify -policy "$workdir/keys" -bundle "$workdir/golden.bundle.json" "$golden"

echo "== negative: bit-flipped artifact =="
python3 - "$golden" "$workdir/flipped.vedz" <<'PY'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 1
open(sys.argv[2], 'wb').write(bytes(data))
PY
expect_fail "bit-flipped artifact under a valid bundle" \
  "$pack" verify -policy "$workdir/keys" -bundle "$workdir/golden.bundle.json" "$workdir/flipped.vedz"

echo "== negative: valid signature, never logged =="
"$pack" sign -keys "$workdir/keys" -skip-log \
  -o "$workdir/unlogged.bundle.json" "$golden"
expect_fail "signed-but-unlogged bundle" \
  "$pack" verify -policy "$workdir/keys" -bundle "$workdir/unlogged.bundle.json" "$golden"

echo "== negative: forked transparency log =="
# Fork the log at its current size, then let the real log and the fork
# each grow by one different release. The witness follows the real log;
# the fork's checkpoint (same signing key, diverged history) must be
# refused, leaving split-view attacks detectable.
cp "$workdir/log.json" "$workdir/fork.json"
"$pack" pack -model tiny -o "$workdir/tiny.vedz" >/dev/null
"$pack" sign -keys "$workdir/keys" -log "$workdir/log.json" \
  -o "$workdir/tiny.bundle.json" "$workdir/tiny.vedz"
"$pack" witness -keys "$workdir/keys" -log "$workdir/log.json" \
  -state "$workdir/witness.json" -bundle "$workdir/tiny.bundle.json"
"$pack" pack -model motor -o "$workdir/other.vedz" >/dev/null
"$pack" sign -keys "$workdir/keys" -log "$workdir/fork.json" \
  -o "$workdir/fork.bundle.json" "$workdir/other.vedz"
expect_fail "forked-log checkpoint at the witness" \
  "$pack" witness -keys "$workdir/keys" -log "$workdir/fork.json" \
  -state "$workdir/witness.json" -bundle "$workdir/fork.bundle.json"

echo "release-verify: positive flow verified, all three refusals hold"
