GO ?= go

.PHONY: all build vet test test-full test-race bench serve-demo ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test runs the suite at reduced experiment fidelity (CI default).
test:
	$(GO) test -short ./...

# test-full runs every experiment at full paper fidelity.
test-full:
	$(GO) test ./...

# test-race runs the concurrent packages under the race detector.
test-race:
	$(GO) test -short -race ./internal/inference/... ./internal/microserver/... ./internal/cluster/...

# bench tracks the inference-runtime perf trajectory.
bench:
	$(GO) test -bench BenchmarkEngine -run '^$$' -benchmem .

# serve-demo smoke-checks the fleet-serving path: the smart-mirror face
# detector on a 2-device heterogeneous uRECS fleet (CPU + Xavier NX).
serve-demo:
	$(GO) run ./cmd/vedliot-serve -chassis urecs \
		-modules "SMARC ARM,Jetson Xavier NX" \
		-model mirror-face -requests 120 -rate 400

ci: vet build test test-race
