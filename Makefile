GO ?= go

.PHONY: all build vet test test-full bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test runs the suite at reduced experiment fidelity (CI default).
test:
	$(GO) test -short ./...

# test-full runs every experiment at full paper fidelity.
test-full:
	$(GO) test ./...

# bench tracks the inference-runtime perf trajectory.
bench:
	$(GO) test -bench BenchmarkEngine -run '^$$' -benchmem .

ci: vet build test
