GO ?= go

.PHONY: all build vet test test-full test-race test-portable fuzz-smoke bench bench-kernels bench-json bench-gate serve-demo load-smoke docs pack-demo release-demo release-verify ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test runs the suite at reduced experiment fidelity (CI default).
test:
	$(GO) test -short ./...

# test-full runs every experiment at full paper fidelity.
test-full:
	$(GO) test ./...

# test-race runs the concurrent packages under the race detector.
test-race:
	$(GO) test -short -race ./internal/inference/... ./internal/microserver/... ./internal/cluster/... ./internal/serve/... ./internal/rvbackend/... ./internal/riscv/... ./internal/soc/... ./internal/cfu/...

# test-portable exercises the pure-Go micro-kernel fallbacks (noasm /
# purego build tags) and the narrowed runtime dispatch tiers — the same
# matrix as the CI portable job.
test-portable:
	$(GO) test -tags noasm ./internal/tensor/... ./internal/inference/...
	$(GO) test -tags purego ./internal/tensor/... ./internal/inference/...
	VEDLIOT_CPU=sse2 $(GO) test ./internal/tensor/... ./internal/inference/...
	VEDLIOT_CPU=generic $(GO) test ./internal/tensor/... ./internal/inference/...
	VEDLIOT_CPU=avx2 $(GO) test ./internal/tensor/... ./internal/inference/...
	VEDLIOT_CPU=avx512 $(GO) test ./internal/tensor/... ./internal/inference/...
	$(GO) test -tags noasm ./internal/rvbackend/... ./internal/riscv/... ./internal/soc/... ./internal/cfu/...

# fuzz-smoke runs every fuzz target briefly — the CI smoke job that
# keeps the targets compiling and the seed corpora passing.
fuzz-smoke:
	$(GO) test -fuzz FuzzEncodeExecute -fuzztime 5s ./internal/riscv/
	$(GO) test -fuzz FuzzLoadStoreRoundTrip -fuzztime 5s ./internal/riscv/
	$(GO) test -fuzz FuzzDisassemble -fuzztime 5s ./internal/riscv/
	$(GO) test -fuzz FuzzVectorMAC -fuzztime 5s ./internal/cfu/
	$(GO) test -fuzz FuzzSatALU -fuzztime 5s ./internal/cfu/

# bench tracks the inference-runtime perf trajectory.
bench:
	$(GO) test -bench 'BenchmarkEngine|BenchmarkQuantized' -run '^$$' -benchmem .

# bench-kernels sweeps every compiled-in GEMM micro-kernel tier the
# host can run (generic / sse2 / avx2 / avx512) — the per-tier view
# behind the gemm_roofline_attainment_<tier> artifact lines.
bench-kernels:
	$(GO) test -bench BenchmarkGemmTiers -run '^$$' -benchmem ./internal/tensor/

# bench-json regenerates the gated perf artifacts (BENCH_<id>.json),
# exactly what the CI bench-gate job runs.
bench-json:
	$(GO) run ./cmd/vedliot-bench -run engine -json -outdir .
	$(GO) run ./cmd/vedliot-bench -run quantized -json -outdir .
	$(GO) run ./cmd/vedliot-bench -run cluster -json -outdir .
	$(GO) run ./cmd/vedliot-bench -run serve -json -outdir .
	$(GO) run ./cmd/vedliot-bench -run riscv -json -outdir .

# bench-gate checks the artifacts against the committed baseline —
# local runs match CI exactly.
bench-gate: bench-json
	$(GO) run ./cmd/bench-gate -baseline bench_baseline.json -dir .

# serve-demo smoke-checks the fleet-serving path: the smart-mirror face
# detector on a 2-device heterogeneous uRECS fleet (CPU + Xavier NX).
serve-demo:
	$(GO) run ./cmd/vedliot-serve -chassis urecs \
		-modules "SMARC ARM,Jetson Xavier NX" \
		-model mirror-face -requests 120 -rate 400

# load-smoke drives a short closed-loop load through the framed-TCP
# front door over a real localhost socket — server and clients in one
# process — and fails unless every request is accounted for with zero
# hard failures and the adaptive batcher actually coalesced.
load-smoke:
	$(GO) run ./cmd/vedliot-serve -load-smoke -model tiny \
		-modules "SMARC ARM,SMARC ARM" \
		-clients 400 -requests-per-client 5 -think 2ms

# pack-demo smoke-checks the artifact path: pack a calibrated model,
# verify it, and fleet-serve it through the plan cache.
pack-demo:
	$(GO) run ./cmd/vedliot-pack pack -model mirror-face -int8 -o mirror-face.vedz
	$(GO) run ./cmd/vedliot-pack verify mirror-face.vedz
	$(GO) run ./cmd/vedliot-serve -chassis urecs \
		-modules "SMARC ARM,SMARC ARM" \
		-model mirror-face.vedz -requests 120 -rate 400
	rm -f mirror-face.vedz

# release-demo walks the signed release channel end to end: provision
# keys, pack an artifact, sign it into the transparency log, witness the
# checkpoint, verify under the policy, then deploy through the
# policy-gated registry — printing the per-replica attestation table
# that binds each running replica to the authorized digest.
release-demo:
	rm -rf release-demo.tmp && mkdir -p release-demo.tmp
	$(GO) run ./cmd/vedliot-pack keygen -o release-demo.tmp/keys
	$(GO) run ./cmd/vedliot-pack pack -model mirror-face -o release-demo.tmp/mirror-face.vedz
	$(GO) run ./cmd/vedliot-pack sign -keys release-demo.tmp/keys \
		-log release-demo.tmp/log.json \
		-o release-demo.tmp/mirror-face.bundle.json release-demo.tmp/mirror-face.vedz
	$(GO) run ./cmd/vedliot-pack witness -keys release-demo.tmp/keys \
		-log release-demo.tmp/log.json -state release-demo.tmp/witness.json \
		-bundle release-demo.tmp/mirror-face.bundle.json
	$(GO) run ./cmd/vedliot-pack verify -policy release-demo.tmp/keys \
		-bundle release-demo.tmp/mirror-face.bundle.json release-demo.tmp/mirror-face.vedz
	$(GO) run ./cmd/vedliot-serve -chassis urecs \
		-modules "SMARC ARM,Jetson Xavier NX" \
		-model release-demo.tmp/mirror-face.vedz \
		-policy release-demo.tmp/keys \
		-bundle release-demo.tmp/mirror-face.bundle.json \
		-requests 120 -rate 400
	rm -rf release-demo.tmp

# release-verify runs the CI release-channel gate locally: positive
# sign/log/witness/verify flow plus the three mandated refusals
# (bit-flipped artifact, unlogged bundle, forked log).
release-verify:
	./scripts/release_verify.sh

# docs gates the documentation front door: formatting, examples build,
# exported-identifier doc coverage, and the committed golden artifact —
# exactly what the CI docs job runs.
docs:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) build ./examples/...
	$(GO) run ./cmd/docs-check . ./internal/* ./internal/inference/ir
	$(GO) run ./cmd/vedliot-pack verify internal/artifact/testdata/golden.vedz

ci: vet build docs test test-race test-portable fuzz-smoke load-smoke release-verify bench-gate
