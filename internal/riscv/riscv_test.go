package riscv

import (
	"testing"
	"testing/quick"
)

// flatBus is a simple RAM-only bus for core tests.
type flatBus struct {
	mem []byte
}

func newFlatBus(size int) *flatBus { return &flatBus{mem: make([]byte, size)} }

func (b *flatBus) Read8(addr uint32) (uint8, error) {
	if int(addr) >= len(b.mem) {
		return 0, errOOB
	}
	return b.mem[addr], nil
}
func (b *flatBus) Read16(addr uint32) (uint16, error) {
	lo, err := b.Read8(addr)
	if err != nil {
		return 0, err
	}
	hi, err := b.Read8(addr + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}
func (b *flatBus) Read32(addr uint32) (uint32, error) {
	if int(addr)+4 > len(b.mem) {
		return 0, errOOB
	}
	return uint32(b.mem[addr]) | uint32(b.mem[addr+1])<<8 |
		uint32(b.mem[addr+2])<<16 | uint32(b.mem[addr+3])<<24, nil
}
func (b *flatBus) Write8(addr uint32, v uint8) error {
	if int(addr) >= len(b.mem) {
		return errOOB
	}
	b.mem[addr] = v
	return nil
}
func (b *flatBus) Write16(addr uint32, v uint16) error {
	if err := b.Write8(addr, uint8(v)); err != nil {
		return err
	}
	return b.Write8(addr+1, uint8(v>>8))
}
func (b *flatBus) Write32(addr uint32, v uint32) error {
	if int(addr)+4 > len(b.mem) {
		return errOOB
	}
	b.mem[addr] = byte(v)
	b.mem[addr+1] = byte(v >> 8)
	b.mem[addr+2] = byte(v >> 16)
	b.mem[addr+3] = byte(v >> 24)
	return nil
}

type oobError struct{}

func (oobError) Error() string { return "out of bounds" }

var errOOB = oobError{}

// run executes a word program starting at 0 until WFI or maxInstr.
func run(t *testing.T, prog []uint32, maxInstr uint64) *Core {
	t.Helper()
	bus := newFlatBus(64 * 1024)
	for i, w := range prog {
		if err := bus.Write32(uint32(i*4), w); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCore(bus, 0)
	if err := c.Run(maxInstr); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestArithmeticBasics(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 5),  // x1 = 5
		ADDI(2, 0, 7),  // x2 = 7
		ADD(3, 1, 2),   // x3 = 12
		SUB(4, 1, 2),   // x4 = -2
		MUL(5, 1, 2),   // x5 = 35
		DIV(6, 2, 1),   // x6 = 1
		REM(7, 2, 1),   // x7 = 2
		XOR(8, 1, 2),   // x8 = 2
		OR(9, 1, 2),    // x9 = 7
		AND(10, 1, 2),  // x10 = 5
		SLTU(11, 1, 2), // x11 = 1
		WFI(),
	}
	c := run(t, prog, 100)
	want := map[int]uint32{3: 12, 4: 0xfffffffe, 5: 35, 6: 1, 7: 2, 8: 2, 9: 7, 10: 5, 11: 1}
	for reg, v := range want {
		if c.X[reg] != v {
			t.Errorf("x%d = %#x, want %#x", reg, c.X[reg], v)
		}
	}
}

func TestShiftsAndImmediates(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 1),
		SLL(2, 1, 0), // x2 = 1 << 0 = 1
		ADDI(3, 0, 4),
		SLL(4, 1, 3),      // x4 = 1 << 4 = 16
		ADDI(5, 0, -16),   // x5 = -16
		SRL(6, 5, 1),      // logical shift of 0xfffffff0 by 1
		ADDI(7, 0, -1024), // sign-extended immediate
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[4] != 16 {
		t.Errorf("x4 = %d", c.X[4])
	}
	if c.X[6] != 0x7ffffff8 {
		t.Errorf("x6 = %#x", c.X[6])
	}
	if int32(c.X[7]) != -1024 {
		t.Errorf("x7 = %d", int32(c.X[7]))
	}
}

func TestLUIAndLI(t *testing.T) {
	var prog []uint32
	prog = append(prog, LI(1, 0xdeadbeef)...)
	prog = append(prog, LI(2, 0x12345678)...)
	prog = append(prog, LI(3, 0x800)...)
	prog = append(prog, WFI())
	c := run(t, prog, 100)
	if c.X[1] != 0xdeadbeef {
		t.Errorf("x1 = %#x", c.X[1])
	}
	if c.X[2] != 0x12345678 {
		t.Errorf("x2 = %#x", c.X[2])
	}
	if c.X[3] != 0x800 {
		t.Errorf("x3 = %#x", c.X[3])
	}
}

func TestLIRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		var prog []uint32
		prog = append(prog, LI(5, v)...)
		prog = append(prog, WFI())
		bus := newFlatBus(4096)
		for i, w := range prog {
			if err := bus.Write32(uint32(i*4), w); err != nil {
				return false
			}
		}
		c := NewCore(bus, 0)
		if err := c.Run(10); err != nil {
			return false
		}
		return c.X[5] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLoadStore(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 0x100), // base
		ADDI(2, 0, -2),    // value 0xfffffffe
		SW(2, 1, 0),
		LW(3, 1, 0),
		LB(4, 1, 0),  // sign-extended byte 0xfe -> -2
		LBU(5, 1, 0), // zero-extended 0xfe
		SB(2, 1, 8),
		LW(6, 1, 8), // only low byte written
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[3] != 0xfffffffe {
		t.Errorf("LW = %#x", c.X[3])
	}
	if int32(c.X[4]) != -2 {
		t.Errorf("LB = %d", int32(c.X[4]))
	}
	if c.X[5] != 0xfe {
		t.Errorf("LBU = %#x", c.X[5])
	}
	if c.X[6] != 0xfe {
		t.Errorf("SB/LW = %#x", c.X[6])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a loop.
	prog := []uint32{
		ADDI(1, 0, 0),  // sum
		ADDI(2, 0, 1),  // i
		ADDI(3, 0, 11), // limit
		// loop:
		ADD(1, 1, 2),  // sum += i
		ADDI(2, 2, 1), // i++
		BLT(2, 3, -8), // while i < 11
		WFI(),
	}
	c := run(t, prog, 1000)
	if c.X[1] != 55 {
		t.Errorf("sum = %d, want 55", c.X[1])
	}
}

func TestJALAndJALR(t *testing.T) {
	prog := []uint32{
		JAL(1, 12),     // jump over the next two instructions, x1 = 4
		ADDI(2, 0, 1),  // skipped
		ADDI(2, 0, 2),  // skipped
		ADDI(3, 0, 9),  // target
		JALR(4, 1, 16), // jump to x1+16 = 20
		ADDI(5, 0, 1),  // skipped
		WFI(),          // at 20? no: compute
	}
	// Address layout: JALR at pc=16 jumps to 4+16 = 20 which skips
	// instruction at 20? Let's place WFI at 20 -> index 5 is at 20.
	// Rebuild precisely:
	prog = []uint32{
		JAL(1, 8),     // 0: x1 = 4, jump to 8
		ADDI(2, 0, 1), // 4: skipped
		JALR(4, 1, 8), // 8: x4 = 12, jump to x1+8 = 12
		ADDI(5, 0, 7), // 12: executed
		WFI(),         // 16
	}
	c := run(t, prog, 100)
	if c.X[1] != 4 {
		t.Errorf("JAL link = %d", c.X[1])
	}
	if c.X[2] != 0 {
		t.Error("JAL did not skip")
	}
	if c.X[4] != 12 {
		t.Errorf("JALR link = %d", c.X[4])
	}
	if c.X[5] != 7 {
		t.Error("JALR target not executed")
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	var prog []uint32
	prog = append(prog, LI(1, 0x80000000)...) // INT_MIN
	prog = append(prog, ADDI(2, 0, -1))
	prog = append(prog,
		DIV(3, 1, 2),  // INT_MIN / -1 = INT_MIN (overflow)
		REM(4, 1, 2),  // 0
		DIV(5, 1, 0),  // div by zero = -1
		REM(6, 1, 0),  // rem by zero = dividend
		DIVU(7, 1, 0), // 0xffffffff
		REMU(8, 1, 0), // dividend
		WFI(),
	)
	c := run(t, prog, 100)
	if c.X[3] != 0x80000000 {
		t.Errorf("DIV overflow = %#x", c.X[3])
	}
	if c.X[4] != 0 {
		t.Errorf("REM overflow = %#x", c.X[4])
	}
	if c.X[5] != 0xffffffff {
		t.Errorf("DIV/0 = %#x", c.X[5])
	}
	if c.X[6] != 0x80000000 {
		t.Errorf("REM/0 = %#x", c.X[6])
	}
	if c.X[7] != 0xffffffff {
		t.Errorf("DIVU/0 = %#x", c.X[7])
	}
	if c.X[8] != 0x80000000 {
		t.Errorf("REMU/0 = %#x", c.X[8])
	}
}

func TestMULHVariants(t *testing.T) {
	var prog []uint32
	prog = append(prog, LI(1, 0xffffffff)...) // -1 signed
	prog = append(prog, LI(2, 2)...)
	prog = append(prog,
		MULH(3, 1, 2), // (-1 * 2) >> 32 = -1 -> 0xffffffff
		WFI(),
	)
	c := run(t, prog, 100)
	if c.X[3] != 0xffffffff {
		t.Errorf("MULH = %#x", c.X[3])
	}
}

func TestX0Hardwired(t *testing.T) {
	prog := []uint32{
		ADDI(0, 0, 123), // write to x0 discarded
		ADD(1, 0, 0),
		WFI(),
	}
	c := run(t, prog, 10)
	if c.X[0] != 0 || c.X[1] != 0 {
		t.Errorf("x0 = %d, x1 = %d", c.X[0], c.X[1])
	}
}

func TestIllegalInstructionTraps(t *testing.T) {
	prog := []uint32{
		0xffffffff, // illegal
	}
	c := run(t, prog, 1)
	// Trap redirects to mtvec (0), mcause = illegal.
	if c.CSR(CsrMcause) != ExcIllegalInstr {
		t.Errorf("mcause = %d", c.CSR(CsrMcause))
	}
	if c.Priv() != PrivM {
		t.Error("trap should land in M-mode")
	}
}

func TestEcallFromMachineMode(t *testing.T) {
	// mtvec -> handler that sets x5 and halts.
	prog := []uint32{
		// reset at 0: set mtvec to 16, ecall.
		ADDI(1, 0, 16),
		CSRRW(0, 1, CsrMtvec),
		ECALL(),
		NOP(),
		// handler at 16:
		ADDI(5, 0, 42),
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[5] != 42 {
		t.Error("trap handler did not run")
	}
	if c.CSR(CsrMcause) != ExcECallM {
		t.Errorf("mcause = %d", c.CSR(CsrMcause))
	}
	if c.CSR(CsrMepc) != 8 {
		t.Errorf("mepc = %#x, want 8", c.CSR(CsrMepc))
	}
}

func TestPrivilegeDropAndEcallFromU(t *testing.T) {
	prog := []uint32{
		// Set mtvec to handler (28).
		ADDI(1, 0, 28),
		CSRRW(0, 1, CsrMtvec),
		// mepc = 24 (U-mode code), MPP stays 0 (U).
		ADDI(1, 0, 24),
		CSRRW(0, 1, CsrMepc),
		MRET(), // drop to U-mode at 24
		NOP(),
		ECALL(), // 24: U-mode ecall
		// handler at 28:
		ADDI(6, 0, 7),
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[6] != 7 {
		t.Fatal("handler did not run")
	}
	if c.CSR(CsrMcause) != ExcECallU {
		t.Errorf("mcause = %d, want ECallU", c.CSR(CsrMcause))
	}
}

func TestUModeCannotTouchCSRs(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 28),
		CSRRW(0, 1, CsrMtvec),
		ADDI(1, 0, 24),
		CSRRW(0, 1, CsrMepc),
		MRET(),
		NOP(),
		CSRRW(2, 1, CsrMepc), // 24: U-mode CSR access -> illegal
		// handler at 28:
		ADDI(7, 0, 1),
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[7] != 1 {
		t.Fatal("handler did not run")
	}
	if c.CSR(CsrMcause) != ExcIllegalInstr {
		t.Errorf("mcause = %d, want illegal", c.CSR(CsrMcause))
	}
}

func TestCycleCounterVisible(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 1),
		ADDI(1, 0, 2),
		CSRRS(5, 0, CsrCycle),
		WFI(),
	}
	c := run(t, prog, 100)
	if c.X[5] == 0 {
		t.Error("cycle counter read as zero after instructions")
	}
	if c.Instret == 0 || c.Cycles < c.Instret {
		t.Errorf("cycles %d < instret %d", c.Cycles, c.Instret)
	}
}

func TestBusFaultTraps(t *testing.T) {
	var prog []uint32
	prog = append(prog, LI(1, 0x00ffff00)...) // beyond 64 KiB RAM
	prog = append(prog, LW(2, 1, 0))
	c := run(t, prog, 10)
	if c.CSR(CsrMcause) != ExcLoadAccessFault {
		t.Errorf("mcause = %d", c.CSR(CsrMcause))
	}
	if c.CSR(CsrMtval) != 0x00ffff00 {
		t.Errorf("mtval = %#x", c.CSR(CsrMtval))
	}
}
