package riscv

import "math/bits"

// Physical Memory Protection, per the RISC-V privileged spec: 16
// entries, each an address register (word-granular) plus a
// configuration byte with R/W/X permissions, an address-matching mode
// and a lock bit. U-mode accesses must match an entry granting the
// permission; locked entries also constrain M-mode. This models the PMP
// unit the project contributed to VexRiscv (§IV-C), which "can be used
// to specify read, write and execute access privileges for a specific
// memory region".

// AccessKind selects the permission being checked.
type AccessKind int

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

// PMP configuration byte fields.
const (
	PmpR = 1 << 0
	PmpW = 1 << 1
	PmpX = 1 << 2
	PmpL = 1 << 7

	// Address-matching modes (bits 3-4).
	PmpOff   = 0
	PmpTOR   = 1
	PmpNA4   = 2
	PmpNAPOT = 3
)

// NumPMPEntries is the implemented entry count.
const NumPMPEntries = 16

// PMP is the protection unit state.
type PMP struct {
	cfg  [NumPMPEntries]uint8
	addr [NumPMPEntries]uint32 // phys >> 2, as architected

	// configured becomes true on the first pmpcfg write; before that
	// the unit is transparent (matches a core with PMP left unprogrammed
	// by boot firmware, which grants full access in M-mode-only setups).
	configured bool

	// Checks counts permission checks performed (for the overhead
	// bench).
	Checks uint64
}

func (p *PMP) readCfg(i int) uint32 {
	base := i * 4
	return uint32(p.cfg[base]) | uint32(p.cfg[base+1])<<8 |
		uint32(p.cfg[base+2])<<16 | uint32(p.cfg[base+3])<<24
}

func (p *PMP) writeCfg(i int, v uint32) bool {
	base := i * 4
	for b := 0; b < 4; b++ {
		nb := uint8(v >> (8 * b))
		// Locked entries are not writable until reset.
		if p.cfg[base+b]&PmpL != 0 {
			continue
		}
		p.cfg[base+b] = nb
	}
	p.configured = true
	return true
}

func (p *PMP) readAddr(i int) uint32 { return p.addr[i] }

func (p *PMP) writeAddr(i int, v uint32) bool {
	// A locked entry's address is frozen; a locked TOR entry also
	// freezes the preceding address register.
	if p.cfg[i]&PmpL != 0 {
		return true
	}
	if i+1 < NumPMPEntries && p.cfg[i+1]&PmpL != 0 && mode(p.cfg[i+1]) == PmpTOR {
		return true
	}
	p.addr[i] = v
	return true
}

func mode(cfg uint8) uint8 { return (cfg >> 3) & 3 }

// Entry returns entry i's configuration byte and address register.
func (p *PMP) Entry(i int) (cfg uint8, addr uint32) { return p.cfg[i], p.addr[i] }

// Configured reports whether any pmpcfg write has occurred.
func (p *PMP) Configured() bool { return p.configured }

// Check tests an access of size bytes at addr for the given privilege.
func (p *PMP) Check(addr, size uint32, kind AccessKind, priv Priv) bool {
	p.Checks++
	if !p.configured {
		return true
	}
	// Per the privileged spec, the priority (lowest-numbered) entry
	// matching any byte of the access must match every byte, or the
	// access fails irrespective of privilege and permissions — a
	// misaligned store straddling a region boundary must fault even when
	// both halves land in permissive regions. Regions are word-granular
	// and contiguous and an RV32 access spans at most two words, so any
	// region touching the access contains its first or last byte:
	// comparing the two match results covers every byte.
	first := p.matchEntry(addr)
	last := p.matchEntry(addr + size - 1)
	if first != last {
		return false // partial match of the priority entry
	}
	if first < 0 {
		// No entry matched: M-mode succeeds, U-mode fails.
		return priv == PrivM
	}
	cfg := p.cfg[first]
	if priv == PrivM && cfg&PmpL == 0 {
		return true // unlocked entries do not constrain M-mode
	}
	switch kind {
	case AccessRead:
		return cfg&PmpR != 0
	case AccessWrite:
		return cfg&PmpW != 0
	default:
		return cfg&PmpX != 0
	}
}

// matchEntry returns the lowest-numbered entry matching the byte at
// addr, or -1 when none matches.
func (p *PMP) matchEntry(addr uint32) int {
	word := addr >> 2
	for i := 0; i < NumPMPEntries; i++ {
		cfg := p.cfg[i]
		m := mode(cfg)
		if m == PmpOff {
			continue
		}
		var match bool
		switch m {
		case PmpTOR:
			var lo uint32
			if i > 0 {
				lo = p.addr[i-1]
			}
			match = word >= lo && word < p.addr[i]
		case PmpNA4:
			match = word == p.addr[i]
		case PmpNAPOT:
			// Trailing ones in the address encode the region size:
			// region = 2^(3+k) bytes where k = trailing ones + 1.
			ones := uint32(bits.TrailingZeros32(^p.addr[i]))
			mask := ^((uint32(1) << (ones + 1)) - 1)
			match = word&mask == p.addr[i]&mask
		}
		if match {
			return i
		}
	}
	return -1
}

// NAPOTAddr encodes a base/size pair into a pmpaddr register value.
// size must be a power of two >= 8 and base must be size-aligned.
func NAPOTAddr(base, size uint32) uint32 {
	return (base >> 2) | (size>>3 - 1)
}
