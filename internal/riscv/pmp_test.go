package riscv

import (
	"testing"
	"testing/quick"
)

func TestPMPUnconfiguredIsTransparent(t *testing.T) {
	var p PMP
	if !p.Check(0x1000, 4, AccessWrite, PrivU) {
		t.Error("unconfigured PMP blocked U-mode access")
	}
}

func TestPMPNAPOTRegion(t *testing.T) {
	var p PMP
	// Entry 0: NAPOT region [0x2000, 0x3000), R+W for U-mode.
	p.writeAddr(0, NAPOTAddr(0x2000, 0x1000))
	p.writeCfg(0, uint32(PmpR|PmpW|PmpNAPOT<<3))

	if !p.Check(0x2000, 4, AccessRead, PrivU) {
		t.Error("read at region base denied")
	}
	if !p.Check(0x2ffc, 4, AccessWrite, PrivU) {
		t.Error("write at region end denied")
	}
	if p.Check(0x2000, 4, AccessExec, PrivU) {
		t.Error("exec permitted without X")
	}
	if p.Check(0x3000, 4, AccessRead, PrivU) {
		t.Error("read outside region permitted")
	}
	if p.Check(0x1ffc, 4, AccessRead, PrivU) {
		t.Error("read below region permitted")
	}
	// Straddling the region end must fail.
	if p.Check(0x2ffe, 4, AccessRead, PrivU) {
		t.Error("straddling access permitted")
	}
	// M-mode unaffected by unlocked entries.
	if !p.Check(0x3000, 4, AccessWrite, PrivM) {
		t.Error("M-mode blocked by unlocked entry")
	}
}

func TestPMPTORRegion(t *testing.T) {
	var p PMP
	// TOR entry 1 covers [pmpaddr0, pmpaddr1).
	p.writeAddr(0, 0x1000>>2)
	p.writeAddr(1, 0x2000>>2)
	p.writeCfg(0, uint32(PmpR|PmpTOR<<3)<<8) // entry 1's byte

	if !p.Check(0x1000, 4, AccessRead, PrivU) {
		t.Error("TOR read at base denied")
	}
	if !p.Check(0x1ffc, 4, AccessRead, PrivU) {
		t.Error("TOR read below top denied")
	}
	if p.Check(0x2000, 4, AccessRead, PrivU) {
		t.Error("TOR read at top permitted")
	}
	if p.Check(0x1000, 4, AccessWrite, PrivU) {
		t.Error("TOR write permitted without W")
	}
}

func TestPMPNA4(t *testing.T) {
	var p PMP
	p.writeAddr(0, 0x400>>2)
	p.writeCfg(0, uint32(PmpX|PmpNA4<<3))
	if !p.Check(0x400, 4, AccessExec, PrivU) {
		t.Error("NA4 exec denied")
	}
	if p.Check(0x404, 4, AccessExec, PrivU) {
		t.Error("NA4 matched adjacent word")
	}
}

func TestPMPPriorityFirstMatchWins(t *testing.T) {
	var p PMP
	// Entry 0: NA4 at 0x100, read-only. Entry 1: NAPOT covering
	// [0x0,0x1000) with RWX. The NA4 entry must win for 0x100.
	p.writeAddr(0, 0x100>>2)
	p.writeAddr(1, NAPOTAddr(0, 0x1000))
	p.writeCfg(0, uint32(PmpR|PmpNA4<<3)|uint32(PmpR|PmpW|PmpX|PmpNAPOT<<3)<<8)

	if p.Check(0x100, 4, AccessWrite, PrivU) {
		t.Error("lower-priority entry overrode first match")
	}
	if !p.Check(0x200, 4, AccessWrite, PrivU) {
		t.Error("second entry not applied elsewhere")
	}
}

func TestPMPLockedConstrainsMachineMode(t *testing.T) {
	var p PMP
	p.writeAddr(0, NAPOTAddr(0x8000, 0x1000))
	p.writeCfg(0, uint32(PmpR|PmpL|PmpNAPOT<<3)) // locked, read-only

	if p.Check(0x8000, 4, AccessWrite, PrivM) {
		t.Error("M-mode wrote through a locked read-only entry")
	}
	if !p.Check(0x8000, 4, AccessRead, PrivM) {
		t.Error("M-mode read denied")
	}
	// Locked cfg cannot be rewritten.
	p.writeCfg(0, uint32(PmpR|PmpW|PmpX|PmpNAPOT<<3))
	cfg, _ := p.Entry(0)
	if cfg&PmpW != 0 {
		t.Error("locked entry was modified")
	}
	// Locked addr cannot be rewritten.
	_, before := p.Entry(0)
	p.writeAddr(0, 0)
	if _, after := p.Entry(0); after != before {
		t.Error("locked address was modified")
	}
}

func TestPMPNoMatchUModeDenied(t *testing.T) {
	var p PMP
	p.writeAddr(0, NAPOTAddr(0x2000, 0x1000))
	p.writeCfg(0, uint32(PmpR|PmpW|PmpNAPOT<<3))
	if p.Check(0x9000, 4, AccessRead, PrivU) {
		t.Error("U-mode access with no matching entry permitted")
	}
	if !p.Check(0x9000, 4, AccessRead, PrivM) {
		t.Error("M-mode access with no matching entry denied")
	}
}

func TestPMPNAPOTProperty(t *testing.T) {
	// For any power-of-two region, addresses inside match and the
	// adjacent words outside do not.
	f := func(baseK, sizeExp uint8) bool {
		size := uint32(8) << (sizeExp % 10)       // 8B .. 4KiB
		base := (uint32(baseK) * size) % 0x100000 // size-aligned
		var p PMP
		p.writeAddr(0, NAPOTAddr(base, size))
		p.writeCfg(0, uint32(PmpR|PmpNAPOT<<3))
		inside := p.Check(base, 4, AccessRead, PrivU) &&
			p.Check(base+size-4, 4, AccessRead, PrivU)
		outsideHigh := !p.Check(base+size, 4, AccessRead, PrivU)
		outsideLow := base == 0 || !p.Check(base-4, 4, AccessRead, PrivU)
		return inside && outsideHigh && outsideLow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPMPEndToEndUModeIsolation(t *testing.T) {
	// Full-system test: M-mode configures PMP so U-mode may execute the
	// code page and write only a data window; U-mode then violates the
	// policy and must trap back to M-mode with a store access fault.
	const (
		handlerOff = 64 // trap handler at byte offset 64
		uCodeOff   = 96 // U-mode code at byte offset 96
	)
	var prog []uint32
	emit := func(ws ...uint32) { prog = append(prog, ws...) }

	// M-mode setup: mtvec = handler.
	emit(LI(1, handlerOff)...)
	emit(CSRRW(0, 1, CsrMtvec))
	// PMP entry 0: code+handler region [0, 0x1000) R+X.
	emit(LI(1, NAPOTAddr(0, 0x1000))...)
	emit(CSRRW(0, 1, CsrPmpaddr0))
	// PMP entry 1: data window [0x2000, 0x2100) R+W.
	emit(LI(1, NAPOTAddr(0x2000, 0x100))...)
	emit(CSRRW(0, 1, CsrPmpaddr0+1))
	// cfg0 byte0 = R|X|NAPOT, byte1 = R|W|NAPOT.
	cfgVal := uint32(PmpR|PmpX|PmpNAPOT<<3) | uint32(PmpR|PmpW|PmpNAPOT<<3)<<8
	emit(LI(1, cfgVal)...)
	emit(CSRRW(0, 1, CsrPmpcfg0))
	// Drop to U-mode at uCodeOff.
	emit(LI(1, uCodeOff)...)
	emit(CSRRW(0, 1, CsrMepc))
	emit(MRET())

	for len(prog) < handlerOff/4 {
		emit(NOP())
	}
	// Handler: record mcause in x20, faulting address in x21, halt.
	emit(CSRRS(20, 0, CsrMcause))
	emit(CSRRS(21, 0, CsrMtval))
	emit(WFI())

	for len(prog) < uCodeOff/4 {
		emit(NOP())
	}
	// U-mode: write inside the window (must succeed), then outside
	// (must trap).
	emit(LI(2, 0x2000)...)
	emit(ADDI(3, 0, 77))
	emit(SW(3, 2, 0))      // allowed
	emit(LW(4, 2, 0))      // read back
	emit(LI(5, 0x3000)...) // outside any U window
	emit(SW(3, 5, 0))      // must fault
	emit(ADDI(6, 0, 1))    // must never execute
	emit(WFI())

	bus := newFlatBus(64 * 1024)
	for i, w := range prog {
		if err := bus.Write32(uint32(i*4), w); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCore(bus, 0)
	if err := c.Run(500); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("firmware did not halt")
	}
	if c.X[4] != 77 {
		t.Errorf("permitted U-mode write/read failed: x4 = %d", c.X[4])
	}
	if c.X[20] != ExcStoreAccessFault {
		t.Errorf("mcause = %d, want store access fault", c.X[20])
	}
	if c.X[21] != 0x3000 {
		t.Errorf("mtval = %#x, want 0x3000", c.X[21])
	}
	if c.X[6] == 1 {
		t.Error("instruction after the fault executed")
	}
	if c.Priv() != PrivM {
		t.Error("core not in M-mode after trap")
	}
}
