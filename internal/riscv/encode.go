package riscv

// Instruction encoders: the programmatic assembler used to build
// firmware for the simulated SoC (the role Renode's software stack
// plays in the paper's CI flow). Register arguments follow the ABI
// numbering (x0..x31).

// Register aliases for readable firmware.
const (
	Zero = 0
	RA   = 1
	SP   = 2
	GP   = 3
	TP   = 4
	T0   = 5
	T1   = 6
	T2   = 7
	S0   = 8
	S1   = 9
	A0   = 10
	A1   = 11
	A2   = 12
	A3   = 13
	A4   = 14
	A5   = 15
	A6   = 16
	A7   = 17
	S2   = 18
	S3   = 19
	S4   = 20
	S5   = 21
	S6   = 22
	S7   = 23
	S8   = 24
	S9   = 25
	S10  = 26
	S11  = 27
	T3   = 28
	T4   = 29
	T5   = 30
	T6   = 31
)

func rType(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func iType(imm, rs1, funct3, rd, opcode uint32) uint32 {
	return (imm&0xfff)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func sType(imm, rs2, rs1, funct3, opcode uint32) uint32 {
	return (imm&0xfe0)<<20 | rs2<<20 | rs1<<15 | funct3<<12 | (imm&0x1f)<<7 | opcode
}

func bType(imm, rs2, rs1, funct3, opcode uint32) uint32 {
	return (imm&0x1000)<<19 | (imm&0x7e0)<<20 | rs2<<20 | rs1<<15 |
		funct3<<12 | (imm&0x1e)<<7 | (imm&0x800)>>4 | opcode
}

func jType(imm, rd, opcode uint32) uint32 {
	return (imm&0x100000)<<11 | (imm&0x7fe)<<20 | (imm&0x800)<<9 |
		(imm & 0xff000) | rd<<7 | opcode
}

// ADDI rd = rs1 + imm (also serves as MV and NOP).
func ADDI(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 0, uint32(rd), 0x13) }

// NOP is ADDI x0, x0, 0.
func NOP() uint32 { return ADDI(0, 0, 0) }

// LUI rd = imm20 << 12.
func LUI(rd int, imm20 uint32) uint32 { return imm20<<12 | uint32(rd)<<7 | 0x37 }

// AUIPC rd = pc + (imm20 << 12).
func AUIPC(rd int, imm20 uint32) uint32 { return imm20<<12 | uint32(rd)<<7 | 0x17 }

// LI expands to LUI+ADDI loading a full 32-bit constant (always two
// instructions for simple firmware layout).
func LI(rd int, v uint32) []uint32 {
	upper := v >> 12
	lower := v & 0xfff
	if lower >= 0x800 {
		upper++ // ADDI sign-extends; compensate
	}
	return []uint32{LUI(rd, upper&0xfffff), ADDI(rd, rd, int32(lower<<20)>>20)}
}

// Arithmetic register ops.

// ADD rd = rs1 + rs2.
func ADD(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 0, uint32(rd), 0x33) }

// SUB rd = rs1 - rs2.
func SUB(rd, rs1, rs2 int) uint32 { return rType(0x20, uint32(rs2), uint32(rs1), 0, uint32(rd), 0x33) }

// SLL rd = rs1 << rs2.
func SLL(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 1, uint32(rd), 0x33) }

// SRL rd = rs1 >> rs2 (logical).
func SRL(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 5, uint32(rd), 0x33) }

// SRA rd = rs1 >> rs2 (arithmetic).
func SRA(rd, rs1, rs2 int) uint32 { return rType(0x20, uint32(rs2), uint32(rs1), 5, uint32(rd), 0x33) }

// SLLI rd = rs1 << shamt.
func SLLI(rd, rs1 int, shamt uint32) uint32 {
	return iType(shamt&0x1f, uint32(rs1), 1, uint32(rd), 0x13)
}

// SRLI rd = rs1 >> shamt (logical).
func SRLI(rd, rs1 int, shamt uint32) uint32 {
	return iType(shamt&0x1f, uint32(rs1), 5, uint32(rd), 0x13)
}

// SRAI rd = rs1 >> shamt (arithmetic).
func SRAI(rd, rs1 int, shamt uint32) uint32 {
	return iType(0x400|shamt&0x1f, uint32(rs1), 5, uint32(rd), 0x13)
}

// AND rd = rs1 & rs2.
func AND(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 7, uint32(rd), 0x33) }

// OR rd = rs1 | rs2.
func OR(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 6, uint32(rd), 0x33) }

// XOR rd = rs1 ^ rs2.
func XOR(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 4, uint32(rd), 0x33) }

// SLTU rd = rs1 < rs2 (unsigned).
func SLTU(rd, rs1, rs2 int) uint32 { return rType(0, uint32(rs2), uint32(rs1), 3, uint32(rd), 0x33) }

// MUL rd = rs1 * rs2.
func MUL(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 0, uint32(rd), 0x33) }

// MULH rd = upper 32 bits of signed product.
func MULH(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 1, uint32(rd), 0x33) }

// DIV rd = rs1 / rs2 (signed).
func DIV(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 4, uint32(rd), 0x33) }

// DIVU rd = rs1 / rs2 (unsigned).
func DIVU(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 5, uint32(rd), 0x33) }

// REM rd = rs1 % rs2 (signed).
func REM(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 6, uint32(rd), 0x33) }

// REMU rd = rs1 % rs2 (unsigned).
func REMU(rd, rs1, rs2 int) uint32 { return rType(1, uint32(rs2), uint32(rs1), 7, uint32(rd), 0x33) }

// Memory.

// LW rd = mem32[rs1+imm].
func LW(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 2, uint32(rd), 0x03) }

// LB rd = sign-extended mem8[rs1+imm].
func LB(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 0, uint32(rd), 0x03) }

// LBU rd = zero-extended mem8[rs1+imm].
func LBU(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 4, uint32(rd), 0x03) }

// LH rd = sign-extended mem16[rs1+imm].
func LH(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 1, uint32(rd), 0x03) }

// LHU rd = zero-extended mem16[rs1+imm].
func LHU(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 5, uint32(rd), 0x03) }

// SW mem32[rs1+imm] = rs2.
func SW(rs2, rs1 int, imm int32) uint32 { return sType(uint32(imm), uint32(rs2), uint32(rs1), 2, 0x23) }

// SB mem8[rs1+imm] = rs2.
func SB(rs2, rs1 int, imm int32) uint32 { return sType(uint32(imm), uint32(rs2), uint32(rs1), 0, 0x23) }

// SH mem16[rs1+imm] = rs2.
func SH(rs2, rs1 int, imm int32) uint32 { return sType(uint32(imm), uint32(rs2), uint32(rs1), 1, 0x23) }

// Control flow.

// JAL rd = pc+4; pc += offset.
func JAL(rd int, offset int32) uint32 { return jType(uint32(offset), uint32(rd), 0x6f) }

// JALR rd = pc+4; pc = rs1 + imm.
func JALR(rd, rs1 int, imm int32) uint32 { return iType(uint32(imm), uint32(rs1), 0, uint32(rd), 0x67) }

// BEQ branches when rs1 == rs2.
func BEQ(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 0, 0x63)
}

// BNE branches when rs1 != rs2.
func BNE(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 1, 0x63)
}

// BLT branches when rs1 < rs2 (signed).
func BLT(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 4, 0x63)
}

// BGE branches when rs1 >= rs2 (signed).
func BGE(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 5, 0x63)
}

// BLTU branches when rs1 < rs2 (unsigned).
func BLTU(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 6, 0x63)
}

// BGEU branches when rs1 >= rs2 (unsigned).
func BGEU(rs1, rs2 int, offset int32) uint32 {
	return bType(uint32(offset), uint32(rs2), uint32(rs1), 7, 0x63)
}

// System.

// ECALL raises an environment call.
func ECALL() uint32 { return 0x73 }

// EBREAK raises a breakpoint.
func EBREAK() uint32 { return 1<<20 | 0x73 }

// MRET returns from machine trap.
func MRET() uint32 { return 0x302<<20 | 0x73 }

// WFI halts until interrupt (halts the simulated core).
func WFI() uint32 { return 0x105<<20 | 0x73 }

// CSRRW rd = csr; csr = rs1.
func CSRRW(rd, rs1 int, csr uint32) uint32 { return iType(csr, uint32(rs1), 1, uint32(rd), 0x73) }

// CSRRS rd = csr; csr |= rs1.
func CSRRS(rd, rs1 int, csr uint32) uint32 { return iType(csr, uint32(rs1), 2, uint32(rd), 0x73) }

// CSRRC rd = csr; csr &^= rs1.
func CSRRC(rd, rs1 int, csr uint32) uint32 { return iType(csr, uint32(rs1), 3, uint32(rd), 0x73) }

// CUSTOM0 issues a CFU operation: rd = cfu(funct3, funct7, rs1, rs2).
func CUSTOM0(rd, rs1, rs2 int, funct3, funct7 uint32) uint32 {
	return rType(funct7, uint32(rs2), uint32(rs1), funct3, uint32(rd), 0x0b)
}
