package riscv

import (
	"testing"
)

// aluCase describes one fuzzable R-type ALU/M-extension instruction:
// the encoder and a pure-Go reference semantics.
type aluCase struct {
	name string
	enc  func(rd, rs1, rs2 int) uint32
	ref  func(a, b uint32) uint32
}

var aluCases = []aluCase{
	{"add", ADD, func(a, b uint32) uint32 { return a + b }},
	{"sub", SUB, func(a, b uint32) uint32 { return a - b }},
	{"sll", SLL, func(a, b uint32) uint32 { return a << (b & 31) }},
	{"srl", SRL, func(a, b uint32) uint32 { return a >> (b & 31) }},
	{"sra", SRA, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
	{"and", AND, func(a, b uint32) uint32 { return a & b }},
	{"or", OR, func(a, b uint32) uint32 { return a | b }},
	{"xor", XOR, func(a, b uint32) uint32 { return a ^ b }},
	{"sltu", SLTU, func(a, b uint32) uint32 {
		if a < b {
			return 1
		}
		return 0
	}},
	{"mul", MUL, func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }},
	{"mulh", MULH, func(a, b uint32) uint32 {
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	}},
	{"div", DIV, func(a, b uint32) uint32 {
		if b == 0 {
			return 0xffffffff
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a
		}
		return uint32(int32(a) / int32(b))
	}},
	{"divu", DIVU, func(a, b uint32) uint32 {
		if b == 0 {
			return 0xffffffff
		}
		return a / b
	}},
	{"rem", REM, func(a, b uint32) uint32 {
		if b == 0 {
			return a
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	}},
	{"remu", REMU, func(a, b uint32) uint32 {
		if b == 0 {
			return a
		}
		return a % b
	}},
}

// FuzzEncodeExecute encodes a fuzz-chosen ALU instruction with
// fuzz-chosen operands, runs it on the core, and checks the destination
// register against an independent Go model of the RV32IM semantics.
// It exercises the encoder and the executor together: a round-trip
// mismatch in either shows up as a wrong register value.
func FuzzEncodeExecute(f *testing.F) {
	f.Add(uint8(0), uint32(1), uint32(2))
	f.Add(uint8(9), uint32(0x80000000), uint32(0xffffffff))
	f.Add(uint8(11), uint32(0x80000000), uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, sel uint8, a, b uint32) {
		tc := aluCases[int(sel)%len(aluCases)]
		// x5 = a, x6 = b, x7 = op(x5, x6), then halt. LI is two
		// instructions, so the program also round-trips LUI+ADDI.
		var prog []uint32
		prog = append(prog, LI(5, a)...)
		prog = append(prog, LI(6, b)...)
		prog = append(prog, tc.enc(7, 5, 6), WFI())
		bus := newFlatBus(4096)
		for i, w := range prog {
			if err := bus.Write32(uint32(i*4), w); err != nil {
				t.Fatal(err)
			}
		}
		c := NewCore(bus, 0)
		if err := c.Run(100); err != nil {
			t.Fatal(err)
		}
		if !c.Halted {
			t.Fatalf("%s: core did not halt", tc.name)
		}
		if c.X[5] != a || c.X[6] != b {
			t.Fatalf("%s: LI round-trip broke: x5=%#x want %#x, x6=%#x want %#x",
				tc.name, c.X[5], a, c.X[6], b)
		}
		if want := tc.ref(a, b); c.X[7] != want {
			t.Fatalf("%s(%#x, %#x) = %#x, want %#x", tc.name, a, b, c.X[7], want)
		}
	})
}

// FuzzLoadStoreRoundTrip stores a fuzz-chosen value at a fuzz-chosen
// aligned address with SB/SH/SW and reads it back with every load
// width, checking sign and zero extension against shifts in Go.
func FuzzLoadStoreRoundTrip(f *testing.F) {
	f.Add(uint32(0x80), uint32(0xdeadbeef))
	f.Add(uint32(0xffc), uint32(0x7f80ff01))
	f.Fuzz(func(t *testing.T, addr, v uint32) {
		addr = 0x100 + (addr%0x600)&^3 // aligned, clear of the program text
		prog := LI(5, addr)
		prog = append(prog, LI(6, v)...)
		prog = append(prog,
			SW(6, 5, 0),
			LW(7, 5, 0),
			LB(8, 5, 0),
			LBU(9, 5, 1),
			LH(10, 5, 0),
			LHU(11, 5, 2),
			WFI())
		bus := newFlatBus(4096)
		for i, w := range prog {
			if err := bus.Write32(uint32(i*4), w); err != nil {
				t.Fatal(err)
			}
		}
		c := NewCore(bus, 0)
		if err := c.Run(100); err != nil {
			t.Fatal(err)
		}
		if !c.Halted {
			t.Fatal("core did not halt")
		}
		checks := []struct {
			name string
			reg  int
			want uint32
		}{
			{"lw", 7, v},
			{"lb", 8, uint32(int32(int8(v)))},
			{"lbu", 9, (v >> 8) & 0xff},
			{"lh", 10, uint32(int32(int16(v)))},
			{"lhu", 11, v >> 16},
		}
		for _, ck := range checks {
			if c.X[ck.reg] != ck.want {
				t.Errorf("%s after sw %#x @ %#x: got %#x, want %#x",
					ck.name, v, addr, c.X[ck.reg], ck.want)
			}
		}
	})
}

// FuzzDisassemble feeds arbitrary instruction words to the
// disassembler; it must return some rendering for every word without
// panicking (firmware dumps run it over whole images).
func FuzzDisassemble(f *testing.F) {
	f.Add(uint32(0x00000013)) // nop
	f.Add(uint32(0xffffffff))
	f.Add(WFI())
	f.Fuzz(func(t *testing.T, w uint32) {
		if s := Disassemble(w, 0x40000000); s == "" {
			t.Fatalf("empty disassembly for %#08x", w)
		}
	})
}
