package riscv

import "fmt"

// Disassembler for the RV32IM(+custom-0) subset the emulator executes.
// The firmware backend uses it to render golden .asm dumps of generated
// images, so codegen changes show up as reviewable text diffs; it also
// doubles as an independent decoder exercised against the encoders.

// regNames are the RISC-V ABI register names, indexed by number.
var regNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// csrNames maps the CSR addresses this core implements to their spec
// names, for readable disassembly.
var csrNames = map[uint32]string{
	CsrMstatus:   "mstatus",
	CsrMisa:      "misa",
	CsrMie:       "mie",
	CsrMtvec:     "mtvec",
	CsrMscratch:  "mscratch",
	CsrMepc:      "mepc",
	CsrMcause:    "mcause",
	CsrMtval:     "mtval",
	CsrMip:       "mip",
	CsrMcycle:    "mcycle",
	CsrMcycleh:   "mcycleh",
	CsrMinstret:  "minstret",
	CsrMinstreth: "minstreth",
	CsrCycle:     "cycle",
	CsrCycleh:    "cycleh",
	CsrInstret:   "instret",
	CsrInstreth:  "instreth",
	CsrMhartid:   "mhartid",
}

func csrName(addr uint32) string {
	if n, ok := csrNames[addr]; ok {
		return n
	}
	if addr >= CsrPmpcfg0 && addr < CsrPmpcfg0+4 {
		return fmt.Sprintf("pmpcfg%d", addr-CsrPmpcfg0)
	}
	if addr >= CsrPmpaddr0 && addr < CsrPmpaddr0+16 {
		return fmt.Sprintf("pmpaddr%d", addr-CsrPmpaddr0)
	}
	return fmt.Sprintf("%#x", addr)
}

// Disassemble renders one instruction word. pc is the instruction's
// address, used to resolve branch and jump targets to absolute
// addresses.
func Disassemble(raw, pc uint32) string {
	opcode := raw & 0x7f
	rd := regNames[raw>>7&0x1f]
	funct3 := raw >> 12 & 0x7
	rs1 := regNames[raw>>15&0x1f]
	rs2 := regNames[raw>>20&0x1f]
	funct7 := raw >> 25

	switch opcode {
	case 0x37:
		return fmt.Sprintf("lui %s, %#x", rd, raw>>12)
	case 0x17:
		return fmt.Sprintf("auipc %s, %#x", rd, raw>>12)
	case 0x6f:
		return fmt.Sprintf("jal %s, %#x", rd, pc+immJ(raw))
	case 0x67:
		return fmt.Sprintf("jalr %s, %d(%s)", rd, int32(immI(raw)), rs1)
	case 0x63:
		names := map[uint32]string{0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %s, %#x", n, rs1, rs2, pc+immB(raw))
		}
	case 0x03:
		names := map[uint32]string{0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", n, rd, int32(immI(raw)), rs1)
		}
	case 0x23:
		names := map[uint32]string{0: "sb", 1: "sh", 2: "sw"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", n, rs2, int32(immS(raw)), rs1)
		}
	case 0x13:
		imm := int32(immI(raw))
		switch funct3 {
		case 0:
			if raw == NOP() {
				return "nop"
			}
			return fmt.Sprintf("addi %s, %s, %d", rd, rs1, imm)
		case 2:
			return fmt.Sprintf("slti %s, %s, %d", rd, rs1, imm)
		case 3:
			return fmt.Sprintf("sltiu %s, %s, %d", rd, rs1, imm)
		case 4:
			return fmt.Sprintf("xori %s, %s, %d", rd, rs1, imm)
		case 6:
			return fmt.Sprintf("ori %s, %s, %d", rd, rs1, imm)
		case 7:
			return fmt.Sprintf("andi %s, %s, %d", rd, rs1, imm)
		case 1:
			if funct7 == 0 {
				return fmt.Sprintf("slli %s, %s, %d", rd, rs1, imm&0x1f)
			}
		case 5:
			switch funct7 {
			case 0:
				return fmt.Sprintf("srli %s, %s, %d", rd, rs1, imm&0x1f)
			case 0x20:
				return fmt.Sprintf("srai %s, %s, %d", rd, rs1, imm&0x1f)
			}
		}
	case 0x33:
		var n string
		switch {
		case funct7 == 0x01:
			n = []string{"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"}[funct3]
		case funct7 == 0x00:
			n = []string{"add", "sll", "slt", "sltu", "xor", "srl", "or", "and"}[funct3]
		case funct7 == 0x20 && funct3 == 0:
			n = "sub"
		case funct7 == 0x20 && funct3 == 5:
			n = "sra"
		}
		if n != "" {
			return fmt.Sprintf("%s %s, %s, %s", n, rd, rs1, rs2)
		}
	case 0x0f:
		return "fence"
	case 0x0b:
		return fmt.Sprintf("cfu.%d.%d %s, %s, %s", funct3, funct7, rd, rs1, rs2)
	case 0x73:
		imm12 := raw >> 20
		if funct3 == 0 {
			switch imm12 {
			case 0:
				return "ecall"
			case 1:
				return "ebreak"
			case 0x302:
				return "mret"
			case 0x105:
				return "wfi"
			}
			break
		}
		names := map[uint32]string{1: "csrrw", 2: "csrrs", 3: "csrrc", 5: "csrrwi", 6: "csrrsi", 7: "csrrci"}
		n, ok := names[funct3]
		if !ok {
			break
		}
		src := rs1
		if funct3 >= 5 {
			src = fmt.Sprintf("%d", raw>>15&0x1f) // zimm
		}
		return fmt.Sprintf("%s %s, %s, %s", n, rd, csrName(imm12), src)
	}
	return fmt.Sprintf(".word %#08x", raw)
}
