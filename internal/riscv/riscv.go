// Package riscv implements an RV32IM emulator with machine and user
// privilege modes, CSRs, traps, a 16-entry Physical Memory Protection
// unit and a Custom Function Unit port.
//
// It reproduces the security substrate of the paper's §IV-C: the PMP
// unit contributed to VexRiscv ("a highly optimized RISC-V Physical
// Memory Protection unit that enables secure processing by limiting the
// physical addresses accessible by software") and the CFU extension the
// project added to Renode (§II-B). The emulator is functional and
// cycle-accounted, which is what the paper's CI-based testing flow
// needs.
package riscv

// Priv is a privilege level.
type Priv uint8

// Privilege levels (S-mode is not implemented; the paper's target is
// small M/U-only devices).
const (
	PrivU Priv = 0
	PrivM Priv = 3
)

// Bus is the memory system the core talks to. Implementations decide
// the address map (see internal/soc).
type Bus interface {
	Read8(addr uint32) (uint8, error)
	Read16(addr uint32) (uint16, error)
	Read32(addr uint32) (uint32, error)
	Write8(addr uint32, v uint8) error
	Write16(addr uint32, v uint16) error
	Write32(addr uint32, v uint32) error
}

// CFU is a tightly CPU-coupled custom function unit reached through the
// custom-0 opcode. Implementations live in internal/cfu.
type CFU interface {
	// Execute performs the operation selected by funct3/funct7 on the
	// two source operands and returns the result.
	Execute(funct3, funct7, rs1, rs2 uint32) (uint32, error)
	// Latency returns the cycle cost of one operation.
	Latency() int
}

// Exception cause codes (mcause values without the interrupt bit).
const (
	ExcInstrAddrMisaligned = 0
	ExcInstrAccessFault    = 1
	ExcIllegalInstr        = 2
	ExcBreakpoint          = 3
	ExcLoadAddrMisaligned  = 4
	ExcLoadAccessFault     = 5
	ExcStoreAddrMisaligned = 6
	ExcStoreAccessFault    = 7
	ExcECallU              = 8
	ExcECallM              = 11
)

// Core is one RV32IM hart.
type Core struct {
	X   [32]uint32 // integer registers; X[0] hardwired to zero
	PC  uint32
	Bus Bus
	CFU CFU

	priv Priv
	csr  csrFile
	pmp  PMP

	// Cycles accumulates the cycle cost model; Instret counts retired
	// instructions.
	Cycles  uint64
	Instret uint64

	// Halted is set by WFI with no interrupt sources, or externally.
	Halted bool
}

// NewCore creates a core starting at resetPC in M-mode.
func NewCore(bus Bus, resetPC uint32) *Core {
	c := &Core{Bus: bus, PC: resetPC, priv: PrivM}
	c.csr.init()
	return c
}

// Priv returns the current privilege level.
func (c *Core) Priv() Priv { return c.priv }

// PMPUnit exposes the PMP state (read-only use in tests/benches).
func (c *Core) PMPUnit() *PMP { return &c.pmp }

// CSR reads a CSR directly (test/bench introspection).
func (c *Core) CSR(addr uint32) uint32 {
	v, _ := c.csr.read(addr, c)
	return v
}

// cycle cost model, loosely calibrated to a small in-order pipeline
// (VexRiscv-class).
const (
	cycAlu    = 1
	cycMul    = 3
	cycDiv    = 34
	cycMem    = 2
	cycBranch = 2
	cycCsr    = 2
	cycTrap   = 4
)

// Step executes one instruction, handling any trap it raises. The only
// errors returned are bus faults outside trap semantics (simulation
// bugs), not guest-visible exceptions.
func (c *Core) Step() error {
	if c.Halted {
		return nil
	}
	// Instruction fetch, PMP-checked for execute permission.
	if !c.pmp.Check(c.PC, 4, AccessExec, c.priv) {
		c.trap(ExcInstrAccessFault, c.PC)
		return nil
	}
	raw, err := c.Bus.Read32(c.PC)
	if err != nil {
		c.trap(ExcInstrAccessFault, c.PC)
		return nil
	}
	c.X[0] = 0
	nextPC, exc := c.execute(raw)
	c.X[0] = 0
	if exc != nil {
		c.trap(exc.cause, exc.tval)
		return nil
	}
	c.PC = nextPC
	c.Instret++
	return nil
}

// Run steps until the core halts or maxSteps steps execute. Steps, not
// retired instructions, bound the loop so that trap storms (e.g. an
// illegal instruction at an unconfigured mtvec) still terminate.
func (c *Core) Run(maxSteps uint64) error {
	for i := uint64(0); !c.Halted && i < maxSteps; i++ {
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// exception carries a pending trap out of execute.
type exception struct {
	cause uint32
	tval  uint32
}

func excf(cause, tval uint32) *exception { return &exception{cause, tval} }

// trap enters M-mode trap handling.
func (c *Core) trap(cause, tval uint32) {
	c.csr.mepc = c.PC
	c.csr.mcause = cause
	c.csr.mtval = tval
	// Save and clear MIE, record previous privilege.
	mie := (c.csr.mstatus >> 3) & 1
	c.csr.mstatus &^= 1 << 3                       // MIE = 0
	c.csr.mstatus = c.csr.mstatus&^(1<<7) | mie<<7 // MPIE = old MIE
	c.csr.mstatus = c.csr.mstatus &^ (3 << 11)
	c.csr.mstatus |= uint32(c.priv) << 11 // MPP
	c.priv = PrivM
	c.PC = c.csr.mtvec &^ 3
	c.Cycles += cycTrap
}

// mret returns from a trap.
func (c *Core) mret() {
	mpie := (c.csr.mstatus >> 7) & 1
	mpp := Priv((c.csr.mstatus >> 11) & 3)
	c.csr.mstatus = c.csr.mstatus&^(1<<3) | mpie<<3 // MIE = MPIE
	c.csr.mstatus |= 1 << 7                         // MPIE = 1
	c.csr.mstatus &^= 3 << 11                       // MPP = U
	if mpp != PrivU {
		mpp = PrivM
	}
	c.priv = mpp
	c.PC = c.csr.mepc
}

func (c *Core) load(addr uint32, size int) (uint32, *exception) {
	var access = AccessRead
	if !c.pmp.Check(addr, uint32(size), access, c.priv) {
		return 0, excf(ExcLoadAccessFault, addr)
	}
	c.Cycles += cycMem
	switch size {
	case 1:
		v, err := c.Bus.Read8(addr)
		if err != nil {
			return 0, excf(ExcLoadAccessFault, addr)
		}
		return uint32(v), nil
	case 2:
		v, err := c.Bus.Read16(addr)
		if err != nil {
			return 0, excf(ExcLoadAccessFault, addr)
		}
		return uint32(v), nil
	default:
		v, err := c.Bus.Read32(addr)
		if err != nil {
			return 0, excf(ExcLoadAccessFault, addr)
		}
		return v, nil
	}
}

func (c *Core) store(addr uint32, size int, v uint32) *exception {
	if !c.pmp.Check(addr, uint32(size), AccessWrite, c.priv) {
		return excf(ExcStoreAccessFault, addr)
	}
	c.Cycles += cycMem
	var err error
	switch size {
	case 1:
		err = c.Bus.Write8(addr, uint8(v))
	case 2:
		err = c.Bus.Write16(addr, uint16(v))
	default:
		err = c.Bus.Write32(addr, v)
	}
	if err != nil {
		return excf(ExcStoreAccessFault, addr)
	}
	return nil
}
