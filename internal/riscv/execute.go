package riscv

// execute decodes and executes one instruction, returning the next PC or
// an exception. Register X[0] is re-zeroed by the caller.
func (c *Core) execute(raw uint32) (uint32, *exception) {
	opcode := raw & 0x7f
	rd := (raw >> 7) & 0x1f
	funct3 := (raw >> 12) & 0x7
	rs1 := (raw >> 15) & 0x1f
	rs2 := (raw >> 20) & 0x1f
	funct7 := raw >> 25

	next := c.PC + 4

	switch opcode {
	case 0x37: // LUI
		c.X[rd] = raw & 0xfffff000
		c.Cycles += cycAlu
	case 0x17: // AUIPC
		c.X[rd] = c.PC + (raw & 0xfffff000)
		c.Cycles += cycAlu
	case 0x6f: // JAL
		imm := immJ(raw)
		c.X[rd] = c.PC + 4
		next = c.PC + imm
		c.Cycles += cycBranch
	case 0x67: // JALR
		if funct3 != 0 {
			return 0, excf(ExcIllegalInstr, raw)
		}
		imm := immI(raw)
		t := (c.X[rs1] + imm) &^ 1
		c.X[rd] = c.PC + 4
		next = t
		c.Cycles += cycBranch
	case 0x63: // BRANCH
		imm := immB(raw)
		taken := false
		a, b := c.X[rs1], c.X[rs2]
		switch funct3 {
		case 0:
			taken = a == b
		case 1:
			taken = a != b
		case 4:
			taken = int32(a) < int32(b)
		case 5:
			taken = int32(a) >= int32(b)
		case 6:
			taken = a < b
		case 7:
			taken = a >= b
		default:
			return 0, excf(ExcIllegalInstr, raw)
		}
		if taken {
			next = c.PC + imm
		}
		c.Cycles += cycBranch
	case 0x03: // LOAD
		addr := c.X[rs1] + immI(raw)
		switch funct3 {
		case 0: // LB
			v, exc := c.load(addr, 1)
			if exc != nil {
				return 0, exc
			}
			c.X[rd] = uint32(int32(int8(v)))
		case 1: // LH
			v, exc := c.load(addr, 2)
			if exc != nil {
				return 0, exc
			}
			c.X[rd] = uint32(int32(int16(v)))
		case 2: // LW
			v, exc := c.load(addr, 4)
			if exc != nil {
				return 0, exc
			}
			c.X[rd] = v
		case 4: // LBU
			v, exc := c.load(addr, 1)
			if exc != nil {
				return 0, exc
			}
			c.X[rd] = v
		case 5: // LHU
			v, exc := c.load(addr, 2)
			if exc != nil {
				return 0, exc
			}
			c.X[rd] = v
		default:
			return 0, excf(ExcIllegalInstr, raw)
		}
	case 0x23: // STORE
		addr := c.X[rs1] + immS(raw)
		switch funct3 {
		case 0:
			if exc := c.store(addr, 1, c.X[rs2]); exc != nil {
				return 0, exc
			}
		case 1:
			if exc := c.store(addr, 2, c.X[rs2]); exc != nil {
				return 0, exc
			}
		case 2:
			if exc := c.store(addr, 4, c.X[rs2]); exc != nil {
				return 0, exc
			}
		default:
			return 0, excf(ExcIllegalInstr, raw)
		}
	case 0x13: // OP-IMM
		imm := immI(raw)
		switch funct3 {
		case 0: // ADDI
			c.X[rd] = c.X[rs1] + imm
		case 2: // SLTI
			if int32(c.X[rs1]) < int32(imm) {
				c.X[rd] = 1
			} else {
				c.X[rd] = 0
			}
		case 3: // SLTIU
			if c.X[rs1] < imm {
				c.X[rd] = 1
			} else {
				c.X[rd] = 0
			}
		case 4: // XORI
			c.X[rd] = c.X[rs1] ^ imm
		case 6: // ORI
			c.X[rd] = c.X[rs1] | imm
		case 7: // ANDI
			c.X[rd] = c.X[rs1] & imm
		case 1: // SLLI
			if funct7 != 0 {
				return 0, excf(ExcIllegalInstr, raw)
			}
			c.X[rd] = c.X[rs1] << (imm & 0x1f)
		case 5: // SRLI / SRAI
			switch funct7 {
			case 0:
				c.X[rd] = c.X[rs1] >> (imm & 0x1f)
			case 0x20:
				c.X[rd] = uint32(int32(c.X[rs1]) >> (imm & 0x1f))
			default:
				return 0, excf(ExcIllegalInstr, raw)
			}
		}
		c.Cycles += cycAlu
	case 0x33: // OP
		a, b := c.X[rs1], c.X[rs2]
		switch {
		case funct7 == 0x01: // M extension
			switch funct3 {
			case 0: // MUL
				c.X[rd] = a * b
				c.Cycles += cycMul
			case 1: // MULH
				c.X[rd] = uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
				c.Cycles += cycMul
			case 2: // MULHSU
				c.X[rd] = uint32(uint64(int64(int32(a))*int64(uint64(b))) >> 32)
				c.Cycles += cycMul
			case 3: // MULHU
				c.X[rd] = uint32(uint64(a) * uint64(b) >> 32)
				c.Cycles += cycMul
			case 4: // DIV
				switch {
				case b == 0:
					c.X[rd] = 0xffffffff
				case a == 0x80000000 && b == 0xffffffff:
					c.X[rd] = 0x80000000
				default:
					c.X[rd] = uint32(int32(a) / int32(b))
				}
				c.Cycles += cycDiv
			case 5: // DIVU
				if b == 0 {
					c.X[rd] = 0xffffffff
				} else {
					c.X[rd] = a / b
				}
				c.Cycles += cycDiv
			case 6: // REM
				switch {
				case b == 0:
					c.X[rd] = a
				case a == 0x80000000 && b == 0xffffffff:
					c.X[rd] = 0
				default:
					c.X[rd] = uint32(int32(a) % int32(b))
				}
				c.Cycles += cycDiv
			case 7: // REMU
				if b == 0 {
					c.X[rd] = a
				} else {
					c.X[rd] = a % b
				}
				c.Cycles += cycDiv
			}
		case funct7 == 0x00 || funct7 == 0x20:
			switch funct3 {
			case 0:
				if funct7 == 0x20 {
					c.X[rd] = a - b
				} else {
					c.X[rd] = a + b
				}
			case 1:
				c.X[rd] = a << (b & 0x1f)
			case 2:
				if int32(a) < int32(b) {
					c.X[rd] = 1
				} else {
					c.X[rd] = 0
				}
			case 3:
				if a < b {
					c.X[rd] = 1
				} else {
					c.X[rd] = 0
				}
			case 4:
				c.X[rd] = a ^ b
			case 5:
				if funct7 == 0x20 {
					c.X[rd] = uint32(int32(a) >> (b & 0x1f))
				} else {
					c.X[rd] = a >> (b & 0x1f)
				}
			case 6:
				c.X[rd] = a | b
			case 7:
				c.X[rd] = a & b
			}
			c.Cycles += cycAlu
		default:
			return 0, excf(ExcIllegalInstr, raw)
		}
	case 0x0f: // FENCE (and FENCE.I): no-op in this memory model
		c.Cycles += cycAlu
	case 0x0b: // custom-0: CFU port
		if c.CFU == nil {
			return 0, excf(ExcIllegalInstr, raw)
		}
		v, err := c.CFU.Execute(funct3, funct7, c.X[rs1], c.X[rs2])
		if err != nil {
			return 0, excf(ExcIllegalInstr, raw)
		}
		c.X[rd] = v
		c.Cycles += uint64(c.CFU.Latency())
	case 0x73: // SYSTEM
		imm12 := raw >> 20
		if funct3 == 0 {
			switch imm12 {
			case 0: // ECALL
				if c.priv == PrivM {
					return 0, excf(ExcECallM, 0)
				}
				return 0, excf(ExcECallU, 0)
			case 1: // EBREAK
				return 0, excf(ExcBreakpoint, c.PC)
			case 0x302: // MRET
				if c.priv != PrivM {
					return 0, excf(ExcIllegalInstr, raw)
				}
				c.mret()
				c.Cycles += cycBranch
				return c.PC, nil
			case 0x105: // WFI
				c.Halted = true
				c.Cycles += cycAlu
				return c.PC + 4, nil
			default:
				return 0, excf(ExcIllegalInstr, raw)
			}
		}
		// CSR instructions.
		if c.priv != PrivM && csrPrivileged(imm12) {
			return 0, excf(ExcIllegalInstr, raw)
		}
		old, ok := c.csr.read(imm12, c)
		if !ok {
			return 0, excf(ExcIllegalInstr, raw)
		}
		var src uint32
		if funct3 >= 5 {
			src = rs1 // CSRRWI/SI/CI use the zimm field
		} else {
			src = c.X[rs1]
		}
		var write bool
		var newV uint32
		switch funct3 & 3 {
		case 1: // CSRRW
			newV, write = src, true
		case 2: // CSRRS
			newV, write = old|src, rs1 != 0
		case 3: // CSRRC
			newV, write = old&^src, rs1 != 0
		default:
			return 0, excf(ExcIllegalInstr, raw)
		}
		if write {
			if !c.csr.write(imm12, newV, c) {
				return 0, excf(ExcIllegalInstr, raw)
			}
		}
		c.X[rd] = old
		c.Cycles += cycCsr
	default:
		return 0, excf(ExcIllegalInstr, raw)
	}
	return next, nil
}

// Immediate decoders.

func immI(raw uint32) uint32 {
	return uint32(int32(raw) >> 20)
}

func immS(raw uint32) uint32 {
	return uint32(int32(raw&0xfe000000)>>20) | (raw >> 7 & 0x1f)
}

func immB(raw uint32) uint32 {
	v := uint32(int32(raw&0x80000000)>>19) | // imm[12]
		(raw&0x80)<<4 | // imm[11]
		(raw >> 20 & 0x7e0) | // imm[10:5]
		(raw >> 7 & 0x1e) // imm[4:1]
	return v
}

func immJ(raw uint32) uint32 {
	v := uint32(int32(raw&0x80000000)>>11) | // imm[20]
		(raw & 0xff000) | // imm[19:12]
		(raw >> 9 & 0x800) | // imm[11]
		(raw >> 20 & 0x7fe) // imm[10:1]
	return v
}
