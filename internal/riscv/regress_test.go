package riscv

import "testing"

// Regression tests for latent seed gaps surfaced while bringing up the
// firmware backend: 64-bit cycle-counter reads (the mcycleh/cycleh high
// words and the instret shadows) and PMP fault reporting on misaligned
// stores that straddle a region boundary.

func TestCycleCounterOverflowIntoHighWord(t *testing.T) {
	prog := []uint32{
		NOP(), // accrue cycles past the 2^32 boundary first
		NOP(),
		NOP(),
		CSRRS(5, 0, CsrCycleh),  // x5 = cycle high word (U-readable shadow)
		CSRRS(6, 0, CsrCycle),   // x6 = cycle low word
		CSRRS(7, 0, CsrMcycleh), // x7 = machine-mode high word
		WFI(),
	}
	bus := newFlatBus(4096)
	for i, w := range prog {
		if err := bus.Write32(uint32(i*4), w); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCore(bus, 0)
	// Start just below the 32-bit boundary: the first instruction's
	// cycles push the counter past 2^32, so the high word must read 1.
	c.Cycles = (1 << 32) - 1
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.X[5] != 1 {
		t.Errorf("cycleh = %d, want 1 after counter wrapped 2^32", c.X[5])
	}
	if c.X[7] != 1 {
		t.Errorf("mcycleh = %d, want 1 after counter wrapped 2^32", c.X[7])
	}
	if c.X[6] == 0xffffffff {
		t.Errorf("cycle low word did not advance past the boundary")
	}
}

func TestInstretHighWordReadable(t *testing.T) {
	prog := []uint32{
		CSRRS(5, 0, CsrInstreth),  // unprivileged shadow
		CSRRS(6, 0, CsrMinstreth), // machine counter
		CSRRS(7, 0, CsrInstret),
		WFI(),
	}
	bus := newFlatBus(4096)
	for i, w := range prog {
		if err := bus.Write32(uint32(i*4), w); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCore(bus, 0)
	c.Instret = (1 << 32) + 5
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.X[5] != 1 || c.X[6] != 1 {
		t.Errorf("instreth = %d, minstreth = %d, want 1", c.X[5], c.X[6])
	}
	if c.X[7] < 5 {
		t.Errorf("instret low word = %d, want >= 5", c.X[7])
	}
}

func TestPMPMisalignedAccessStraddlingRegionsFails(t *testing.T) {
	var p PMP
	// Two adjacent NAPOT regions, both R+W for U-mode:
	// entry 0 covers [0x2000, 0x3000), entry 1 covers [0x3000, 0x4000).
	p.writeAddr(0, NAPOTAddr(0x2000, 0x1000))
	p.writeAddr(1, NAPOTAddr(0x3000, 0x1000))
	p.writeCfg(0, uint32(PmpR|PmpW|PmpNAPOT<<3)|uint32(PmpR|PmpW|PmpNAPOT<<3)<<8)

	// Aligned accesses inside either region pass.
	if !p.Check(0x2ffc, 4, AccessWrite, PrivU) {
		t.Error("aligned write inside entry 0 denied")
	}
	if !p.Check(0x3000, 4, AccessWrite, PrivU) {
		t.Error("aligned write inside entry 1 denied")
	}
	// A misaligned word store straddling the boundary matches entry 0
	// for its first bytes and entry 1 for its last: the priority entry
	// (0) does not cover the whole access, so per the privileged spec
	// the access fails even though both halves are individually
	// permitted.
	if p.Check(0x2ffe, 4, AccessWrite, PrivU) {
		t.Error("misaligned store straddling two permissive regions passed")
	}
	if p.Check(0x2fff, 2, AccessRead, PrivU) {
		t.Error("misaligned halfword read straddling two permissive regions passed")
	}
	// Partial coverage fails for locked entries in M-mode too.
	var q PMP
	q.writeAddr(0, NAPOTAddr(0x2000, 0x1000))
	q.writeAddr(1, NAPOTAddr(0x3000, 0x1000))
	q.writeCfg(0, uint32(PmpR|PmpW|PmpL|PmpNAPOT<<3)|uint32(PmpR|PmpW|PmpL|PmpNAPOT<<3)<<8)
	if q.Check(0x2ffe, 4, AccessWrite, PrivM) {
		t.Error("misaligned M-mode store straddling locked regions passed")
	}
}

func TestPMPMisalignedStoreFaultReported(t *testing.T) {
	// End-to-end: U-mode performs a misaligned store straddling its
	// only writable region's end; the core must trap with a store
	// access fault reporting the faulting address in mtval.
	const handlerOff = 64
	const uCodeOff = 96
	var prog []uint32
	emit := func(ws ...uint32) { prog = append(prog, ws...) }

	emit(LI(1, handlerOff)...)
	emit(CSRRW(0, 1, CsrMtvec))
	// Entry 0: code region [0, 0x1000) R+X.
	emit(LI(1, NAPOTAddr(0, 0x1000))...)
	emit(CSRRW(0, 1, CsrPmpaddr0))
	// Entry 1: data window [0x2000, 0x2100) R+W.
	emit(LI(1, NAPOTAddr(0x2000, 0x100))...)
	emit(CSRRW(0, 1, CsrPmpaddr0+1))
	emit(LI(1, uint32(PmpR|PmpX|PmpNAPOT<<3)|uint32(PmpR|PmpW|PmpNAPOT<<3)<<8)...)
	emit(CSRRW(0, 1, CsrPmpcfg0))
	// Drop to U-mode at uCodeOff.
	emit(LI(1, uCodeOff)...)
	emit(CSRRW(0, 1, CsrMepc))
	emit(MRET())
	for len(prog) < handlerOff/4 {
		emit(NOP())
	}
	// Handler: record and halt.
	emit(ADDI(6, 0, 1)) // x6 = 1: trap taken
	emit(WFI())
	for len(prog) < uCodeOff/4 {
		emit(NOP())
	}
	// U-mode: word store at 0x20fe straddles the window end 0x2100.
	emit(LI(1, 0x20fe)...)
	emit(SW(1, 1, 0))
	emit(ADDI(7, 0, 1)) // must not execute
	emit(WFI())

	bus := newFlatBus(64 * 1024)
	for i, w := range prog {
		if err := bus.Write32(uint32(i*4), w); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCore(bus, 0)
	if err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	if c.X[6] != 1 {
		t.Fatal("trap handler did not run for straddling store")
	}
	if c.X[7] == 1 {
		t.Error("store past the window end executed")
	}
	if c.CSR(CsrMcause) != ExcStoreAccessFault {
		t.Errorf("mcause = %d, want store access fault", c.CSR(CsrMcause))
	}
	if c.CSR(CsrMtval) != 0x20fe {
		t.Errorf("mtval = %#x, want 0x20fe", c.CSR(CsrMtval))
	}
}
