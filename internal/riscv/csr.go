package riscv

// CSR addresses.
const (
	CsrMstatus   = 0x300
	CsrMisa      = 0x301
	CsrMie       = 0x304
	CsrMtvec     = 0x305
	CsrMscratch  = 0x340
	CsrMepc      = 0x341
	CsrMcause    = 0x342
	CsrMtval     = 0x343
	CsrMip       = 0x344
	CsrPmpcfg0   = 0x3a0 // ..0x3a3
	CsrPmpaddr0  = 0x3b0 // ..0x3bf
	CsrMcycle    = 0xb00
	CsrMcycleh   = 0xb80
	CsrMinstret  = 0xb02
	CsrMinstreth = 0xb82
	CsrCycle     = 0xc00 // unprivileged shadow
	CsrCycleh    = 0xc80 // unprivileged shadow, high word
	CsrInstret   = 0xc02 // unprivileged shadow
	CsrInstreth  = 0xc82 // unprivileged shadow, high word
	CsrMhartid   = 0xf14
)

// csrFile holds the machine-mode CSR state.
type csrFile struct {
	mstatus  uint32
	mtvec    uint32
	mscratch uint32
	mepc     uint32
	mcause   uint32
	mtval    uint32
	mie      uint32
	mip      uint32
}

func (f *csrFile) init() {
	// MPIE set so the first mret enables interrupts cleanly.
	f.mstatus = 1 << 7
}

// csrPrivileged reports whether a CSR requires M-mode.
func csrPrivileged(addr uint32) bool {
	// Unprivileged counters (cycle/time/instret shadows) are readable
	// from U-mode; everything else here is machine-level.
	return !(addr >= 0xc00 && addr <= 0xc9f)
}

func (f *csrFile) read(addr uint32, c *Core) (uint32, bool) {
	switch {
	case addr == CsrMstatus:
		return f.mstatus, true
	case addr == CsrMisa:
		// RV32IM + U: MXL=1, bits I, M, U.
		return 1<<30 | 1<<8 | 1<<12 | 1<<20, true
	case addr == CsrMie:
		return f.mie, true
	case addr == CsrMtvec:
		return f.mtvec, true
	case addr == CsrMscratch:
		return f.mscratch, true
	case addr == CsrMepc:
		return f.mepc, true
	case addr == CsrMcause:
		return f.mcause, true
	case addr == CsrMtval:
		return f.mtval, true
	case addr == CsrMip:
		return f.mip, true
	case addr >= CsrPmpcfg0 && addr < CsrPmpcfg0+4:
		return c.pmp.readCfg(int(addr - CsrPmpcfg0)), true
	case addr >= CsrPmpaddr0 && addr < CsrPmpaddr0+16:
		return c.pmp.readAddr(int(addr - CsrPmpaddr0)), true
	case addr == CsrMcycle || addr == CsrCycle:
		return uint32(c.Cycles), true
	case addr == CsrMcycleh || addr == CsrCycleh:
		// The high word must be readable (and from U-mode via the 0xc80
		// shadow) or firmware cannot detect 32-bit cycle-counter
		// overflow — long-running kernels wrap uint32 cycles quickly.
		return uint32(c.Cycles >> 32), true
	case addr == CsrMinstret || addr == CsrInstret:
		return uint32(c.Instret), true
	case addr == CsrMinstreth || addr == CsrInstreth:
		return uint32(c.Instret >> 32), true
	case addr == CsrMhartid:
		return 0, true
	}
	return 0, false
}

func (f *csrFile) write(addr, v uint32, c *Core) bool {
	switch {
	case addr == CsrMstatus:
		// Only MIE, MPIE, MPP are writable here.
		const mask = 1<<3 | 1<<7 | 3<<11
		f.mstatus = f.mstatus&^uint32(mask) | v&mask
		return true
	case addr == CsrMisa:
		return true // WARL, ignore
	case addr == CsrMie:
		f.mie = v
		return true
	case addr == CsrMtvec:
		f.mtvec = v
		return true
	case addr == CsrMscratch:
		f.mscratch = v
		return true
	case addr == CsrMepc:
		f.mepc = v &^ 1
		return true
	case addr == CsrMcause:
		f.mcause = v
		return true
	case addr == CsrMtval:
		f.mtval = v
		return true
	case addr == CsrMip:
		f.mip = v
		return true
	case addr >= CsrPmpcfg0 && addr < CsrPmpcfg0+4:
		return c.pmp.writeCfg(int(addr-CsrPmpcfg0), v)
	case addr >= CsrPmpaddr0 && addr < CsrPmpaddr0+16:
		return c.pmp.writeAddr(int(addr-CsrPmpaddr0), v)
	case addr == CsrMcycle || addr == CsrMcycleh || addr == CsrMinstret || addr == CsrMinstreth:
		return true // writable counters not modeled; ignore
	}
	return false
}
