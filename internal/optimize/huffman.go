package optimize

import (
	"container/heap"
	"fmt"
	"sort"
)

// Huffman coding of quantized weight symbols — Deep Compression stage 3.
// The implementation is a complete canonical-Huffman encoder/decoder over
// 16-bit symbols with bit-level packing, so compressed sizes are real
// (measured on the encoded stream), not estimated from entropy.

// HuffmanCode is a prefix code for a symbol alphabet.
type HuffmanCode struct {
	// lengths[sym] is the code length in bits (0 = unused symbol).
	lengths map[uint16]int
	// codes[sym] is the canonical code value, MSB-first.
	codes map[uint16]uint32
}

type huffNode struct {
	sym    uint16
	weight int64
	left   *huffNode
	right  *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int      { return len(h) }
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h *huffHeap) Push(x any) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// BuildHuffman derives a canonical Huffman code from symbol frequencies.
func BuildHuffman(freq map[uint16]int64) (*HuffmanCode, error) {
	if len(freq) == 0 {
		return nil, fmt.Errorf("optimize: huffman: empty alphabet")
	}
	h := &huffHeap{}
	heap.Init(h)
	for sym, f := range freq {
		if f <= 0 {
			return nil, fmt.Errorf("optimize: huffman: nonpositive frequency for symbol %d", sym)
		}
		heap.Push(h, &huffNode{sym: sym, weight: f})
	}
	if h.Len() == 1 {
		// Single-symbol alphabet: assign a 1-bit code.
		only := (*h)[0].sym
		return canonicalize(map[uint16]int{only: 1})
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{
			sym:    minSym(a, b),
			weight: a.weight + b.weight,
			left:   a,
			right:  b,
		})
	}
	root := heap.Pop(h).(*huffNode)
	lengths := make(map[uint16]int)
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.left == nil && n.right == nil {
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return canonicalize(lengths)
}

func minSym(a, b *huffNode) uint16 {
	if a.sym < b.sym {
		return a.sym
	}
	return b.sym
}

// canonicalize assigns canonical code values from code lengths.
func canonicalize(lengths map[uint16]int) (*HuffmanCode, error) {
	type symLen struct {
		sym uint16
		n   int
	}
	order := make([]symLen, 0, len(lengths))
	maxLen := 0
	for s, n := range lengths {
		if n <= 0 || n > 32 {
			return nil, fmt.Errorf("optimize: huffman: bad code length %d", n)
		}
		order = append(order, symLen{s, n})
		if n > maxLen {
			maxLen = n
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n < order[j].n
		}
		return order[i].sym < order[j].sym
	})
	codes := make(map[uint16]uint32, len(order))
	var code uint32
	prevLen := order[0].n
	for _, sl := range order {
		code <<= uint(sl.n - prevLen)
		codes[sl.sym] = code
		code++
		prevLen = sl.n
	}
	return &HuffmanCode{lengths: lengths, codes: codes}, nil
}

// BitWriter packs MSB-first bit strings into a byte slice.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte
}

// WriteBits appends the low n bits of v, MSB first.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit)
		}
		w.nbit = (w.nbit + 1) % 8
	}
}

// Bytes returns the packed stream.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Len returns the number of whole bytes in the stream.
func (w *BitWriter) Len() int { return len(w.buf) }

// BitReader reads an MSB-first bit stream.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps a packed stream.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBit returns the next bit or an error at end of stream.
func (r *BitReader) ReadBit() (uint8, error) {
	byteIdx := r.pos / 8
	if byteIdx >= len(r.buf) {
		return 0, fmt.Errorf("optimize: huffman: bit stream exhausted")
	}
	bit := (r.buf[byteIdx] >> (7 - uint(r.pos%8))) & 1
	r.pos++
	return bit, nil
}

// Encode compresses a symbol stream, returning the packed bytes.
func (c *HuffmanCode) Encode(symbols []uint16) ([]byte, error) {
	w := &BitWriter{}
	for _, s := range symbols {
		n, ok := c.lengths[s]
		if !ok {
			return nil, fmt.Errorf("optimize: huffman: symbol %d not in code", s)
		}
		w.WriteBits(c.codes[s], n)
	}
	return w.Bytes(), nil
}

// Decode decompresses exactly count symbols from the packed stream.
func (c *HuffmanCode) Decode(data []byte, count int) ([]uint16, error) {
	// Build a decode table keyed by (length, code).
	type key struct {
		n    int
		code uint32
	}
	table := make(map[key]uint16, len(c.codes))
	maxLen := 0
	for sym, code := range c.codes {
		n := c.lengths[sym]
		table[key{n, code}] = sym
		if n > maxLen {
			maxLen = n
		}
	}
	r := NewBitReader(data)
	out := make([]uint16, 0, count)
	for len(out) < count {
		var code uint32
		n := 0
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | uint32(bit)
			n++
			if n > maxLen {
				return nil, fmt.Errorf("optimize: huffman: invalid code in stream")
			}
			if sym, ok := table[key{n, code}]; ok {
				out = append(out, sym)
				break
			}
		}
	}
	return out, nil
}

// EncodedBits returns the exact bit length the symbol stream compresses
// to under this code, without materializing the stream.
func (c *HuffmanCode) EncodedBits(freq map[uint16]int64) int64 {
	var bits int64
	for sym, f := range freq {
		bits += f * int64(c.lengths[sym])
	}
	return bits
}
