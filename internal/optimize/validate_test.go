package optimize

import (
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func probeInputs(g *nn.Graph, n int) []map[string]*tensor.Tensor {
	if err := g.InferShapes(1); err != nil {
		panic(err)
	}
	shape := g.Node(g.Inputs[0]).OutShape
	var probes []map[string]*tensor.Tensor
	for p := 0; p < n; p++ {
		in := tensor.New(tensor.FP32, shape...)
		for i := range in.F32 {
			in.F32[i] = float32((i*5+p*11)%19)/19 - 0.5
		}
		probes = append(probes, map[string]*tensor.Tensor{g.Inputs[0]: in})
	}
	return probes
}

func TestValidatePassesStandardPipeline(t *testing.T) {
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true, Seed: 31})
	x := b.Input("input", 1, 12, 12)
	x = b.ConvBNAct(x, 1, 4, 3, 1, 1, nn.OpReLU)
	x = b.ConvBNAct(x, 4, 8, 3, 2, 1, nn.OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Graph(x)
	// Non-trivial BN statistics so folding actually changes weights.
	for _, n := range g.Nodes {
		if n.Op == nn.OpBatchNorm {
			for i := range n.Weight(nn.MeanKey).F32 {
				n.Weight(nn.MeanKey).F32[i] = 0.05 * float32(i+1)
				n.Weight(nn.VarKey).F32[i] = 0.5 + 0.1*float32(i)
			}
		}
	}
	rewritten, rep, err := ValidatePasses(g, StandardPasses(), probeInputs(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Applied) == 0 {
		t.Error("standard passes applied nothing to a conv+BN graph")
	}
	if rep.Probes != 4 {
		t.Errorf("validated %d probes, want 4", rep.Probes)
	}
	if rep.MaxDiff > 1e-4 {
		t.Errorf("pipeline changed the function: max diff %g", rep.MaxDiff)
	}
	if len(rewritten.Nodes) >= len(g.Nodes) {
		t.Errorf("folding did not shrink the graph: %d -> %d nodes", len(g.Nodes), len(rewritten.Nodes))
	}
	// The original graph is untouched.
	for _, n := range g.Nodes {
		if n.Op == nn.OpBatchNorm {
			return
		}
	}
	t.Error("ValidatePasses mutated the input graph")
}

func TestValidatePassesNeedsProbes(t *testing.T) {
	g := nn.MLP("m", []int{4, 2}, nn.BuildOptions{Weights: true, Seed: 1})
	if _, _, err := ValidatePasses(g, StandardPasses(), nil); err == nil {
		t.Error("validation accepted zero probes")
	}
}
