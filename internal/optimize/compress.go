package optimize

import (
	"fmt"

	"vedliot/internal/nn"
)

// DeepCompressConfig parameterizes the three-stage Deep Compression
// pipeline [7]: magnitude pruning, k-means weight sharing, Huffman
// coding.
type DeepCompressConfig struct {
	// Sparsity is the target fraction of zeroed weights (e.g. 0.9).
	Sparsity float64
	// ClusterBits is the shared-weight code width (e.g. 6 for conv, 5
	// for dense in the original paper; a single global value here).
	ClusterBits int
}

// StageSize records the model size after one pipeline stage.
type StageSize struct {
	Stage string
	Bytes int64
}

// DeepCompressReport is the per-model outcome, the material for the
// paper's "compressed down to 49x" citation (§III).
type DeepCompressReport struct {
	Model         string
	OriginalBytes int64
	Stages        []StageSize
	// CompressedBytes is the final size: Huffman-coded sparse streams
	// plus codebooks plus dense biases.
	CompressedBytes int64
	Prune           PruneReport
	Cluster         ClusterReport
}

// Ratio returns the overall compression factor.
func (r DeepCompressReport) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.OriginalBytes) / float64(r.CompressedBytes)
}

// DeepCompress runs the full pipeline on g in place. Afterwards the
// graph still executes on the reference runtime (weights hold the
// clustered values), so accuracy before/after can be compared directly.
func DeepCompress(g *nn.Graph, cfg DeepCompressConfig) (DeepCompressReport, error) {
	rep := DeepCompressReport{Model: g.Name}
	rep.OriginalBytes = denseWeightBytes(g)
	rep.Stages = append(rep.Stages, StageSize{"original fp32", rep.OriginalBytes})

	pr, err := MagnitudePrune(g, cfg.Sparsity)
	if err != nil {
		return rep, err
	}
	rep.Prune = pr
	rep.Stages = append(rep.Stages, StageSize{"pruned (sparse fp32)", SparseEncodedBytes(g, 32)})

	cr, err := ClusterWeights(g, cfg.ClusterBits)
	if err != nil {
		return rep, err
	}
	rep.Cluster = cr
	rep.Stages = append(rep.Stages, StageSize{
		fmt.Sprintf("clustered (sparse %d-bit)", cfg.ClusterBits),
		SparseEncodedBytes(g, cfg.ClusterBits),
	})

	compressed, err := huffmanBytes(g, cr)
	if err != nil {
		return rep, err
	}
	rep.CompressedBytes = compressed
	rep.Stages = append(rep.Stages, StageSize{"huffman", compressed})
	return rep, nil
}

// denseWeightBytes counts all weights (including biases and batch-norm
// statistics) at FP32.
func denseWeightBytes(g *nn.Graph) int64 {
	var total int64
	for _, n := range g.Nodes {
		for _, w := range n.Weights {
			total += int64(w.NumElements()) * 4
		}
	}
	return total
}

// huffmanBytes measures the exact encoded size of the clustered sparse
// model: per layer, a Huffman-coded centroid-index stream, a
// Huffman-coded zero-run stream (4-bit run cap as in [7]), the FP32
// codebook, and dense FP32 biases / batch-norm statistics.
func huffmanBytes(g *nn.Graph, cr ClusterReport) (int64, error) {
	var total int64
	for _, n := range g.Nodes {
		if !prunable(n) {
			// Non-prunable weights (batch norm statistics) stay dense.
			for _, w := range n.Weights {
				total += int64(w.NumElements()) * 4
			}
			continue
		}
		centroids := cr.Centroids[n.Name]
		w := n.Weight(nn.WeightKey)
		vals := w.Float32s()

		var symStream, runStream []uint16
		run := 0
		for _, v := range vals {
			if v == 0 {
				run++
				if run == 15 {
					runStream = append(runStream, 15)
					run = 0
				}
				continue
			}
			idx := nearestIndex(centroids, v)
			symStream = append(symStream, uint16(idx))
			runStream = append(runStream, uint16(run))
			run = 0
		}

		for _, stream := range [][]uint16{symStream, runStream} {
			if len(stream) == 0 {
				continue
			}
			freq := make(map[uint16]int64)
			for _, s := range stream {
				freq[s]++
			}
			code, err := BuildHuffman(freq)
			if err != nil {
				return 0, err
			}
			bits := code.EncodedBits(freq)
			total += (bits + 7) / 8
			// Code-length table: one byte per alphabet symbol.
			total += int64(len(freq))
		}
		// Codebook: FP32 centroids.
		total += int64(len(centroids)) * 4
		// Bias stays dense FP32.
		if bt := n.Weight(nn.BiasKey); bt != nil {
			total += int64(bt.NumElements()) * 4
		}
	}
	return total, nil
}
