package optimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vedliot/internal/nn"
)

func TestHuffmanRoundTrip(t *testing.T) {
	symbols := []uint16{0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 0, 1, 2, 3}
	freq := map[uint16]int64{}
	for _, s := range symbols {
		freq[s]++
	}
	code, err := BuildHuffman(freq)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(symbols)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.Decode(enc, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if dec[i] != symbols[i] {
			t.Fatalf("decode[%d] = %d, want %d", i, dec[i], symbols[i])
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	code, err := BuildHuffman(map[uint16]int64{7: 100})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode([]uint16{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.Decode(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[0] != 7 {
		t.Errorf("dec = %v", dec)
	}
}

func TestHuffmanRejectsBadInput(t *testing.T) {
	if _, err := BuildHuffman(nil); err == nil {
		t.Error("accepted empty alphabet")
	}
	if _, err := BuildHuffman(map[uint16]int64{1: 0}); err == nil {
		t.Error("accepted zero frequency")
	}
	code, _ := BuildHuffman(map[uint16]int64{1: 5, 2: 3})
	if _, err := code.Encode([]uint16{9}); err == nil {
		t.Error("encoded unknown symbol")
	}
}

func TestHuffmanOptimality(t *testing.T) {
	// A skewed distribution must compress below the fixed-width coding.
	freq := map[uint16]int64{0: 1000, 1: 10, 2: 5, 3: 1}
	code, err := BuildHuffman(freq)
	if err != nil {
		t.Fatal(err)
	}
	bits := code.EncodedBits(freq)
	total := int64(1016)
	fixed := total * 2 // 2 bits for 4 symbols
	if bits >= fixed {
		t.Errorf("huffman %d bits >= fixed %d bits", bits, fixed)
	}
	// Kraft inequality must hold with equality for a complete code.
	var kraft float64
	for _, n := range code.lengths {
		kraft += 1 / float64(int64(1)<<uint(n))
	}
	if kraft > 1.0001 {
		t.Errorf("Kraft sum %v > 1: not a prefix code", kraft)
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		alpha := rng.Intn(30) + 1
		symbols := make([]uint16, count)
		freq := map[uint16]int64{}
		for i := range symbols {
			// Skewed distribution exercises variable code lengths.
			s := uint16(rng.Intn(alpha) * rng.Intn(2))
			symbols[i] = s
			freq[s]++
		}
		code, err := BuildHuffman(freq)
		if err != nil {
			return false
		}
		enc, err := code.Encode(symbols)
		if err != nil {
			return false
		}
		dec, err := code.Decode(enc, count)
		if err != nil {
			return false
		}
		for i := range symbols {
			if dec[i] != symbols[i] {
				return false
			}
		}
		// Measured size must match EncodedBits.
		if int64(len(enc)) != (code.EncodedBits(freq)+7)/8 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitWriterReader(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0b01, 2)
	w.WriteBits(0b11111111, 8)
	r := NewBitReader(w.Bytes())
	want := []uint8{1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	for i, wb := range want {
		b, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if b != wb {
			t.Errorf("bit %d = %d, want %d", i, b, wb)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	for i := 0; i < 8; i++ {
		if _, err := r.ReadBit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ReadBit(); err == nil {
		t.Error("read past end of stream")
	}
}

func TestDeepCompressEndToEnd(t *testing.T) {
	// LeNet-300-100 (the Deep Compression headline subject): pruning to
	// 90% + 6-bit clustering + Huffman should yield a ~25-50x ratio.
	g := nn.MLP("lenet-300-100", []int{784, 300, 100, 10}, nn.BuildOptions{Weights: true, Seed: 21})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	rep, err := DeepCompress(g, DeepCompressConfig{Sparsity: 0.92, ClusterBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginalBytes == 0 || rep.CompressedBytes == 0 {
		t.Fatal("degenerate sizes")
	}
	ratio := rep.Ratio()
	if ratio < 20 || ratio > 80 {
		t.Errorf("compression ratio = %.1fx, want 20-80x", ratio)
	}
	// Stage sizes must be monotonically non-increasing.
	for i := 1; i < len(rep.Stages); i++ {
		if rep.Stages[i].Bytes > rep.Stages[i-1].Bytes {
			t.Errorf("stage %q grew: %d -> %d",
				rep.Stages[i].Stage, rep.Stages[i-1].Bytes, rep.Stages[i].Bytes)
		}
	}
}

func TestSparseEncodedBytesShrinksWithSparsity(t *testing.T) {
	g1 := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 3})
	g2 := g1.Clone()
	if err := g1.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if err := g2.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := MagnitudePrune(g1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := MagnitudePrune(g2, 0.95); err != nil {
		t.Fatal(err)
	}
	b1 := SparseEncodedBytes(g1, 32)
	b2 := SparseEncodedBytes(g2, 32)
	if b2 >= b1 {
		t.Errorf("95%% sparse (%d B) not smaller than 50%% sparse (%d B)", b2, b1)
	}
}
