package optimize

import (
	"fmt"
	"math"
	"sort"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ClusterReport describes the outcome of weight clustering.
type ClusterReport struct {
	// Bits is the per-weight code width (log2 of centroid count).
	Bits int
	// Centroids maps node name to its codebook.
	Centroids map[string][]float32
	// MSE is the mean squared clustering error over all weights.
	MSE float64
}

// ClusterWeights performs k-means weight sharing (Deep Compression stage
// 2): each prunable layer's non-zero weights are replaced by one of
// 2^bits shared centroids. Zeros are preserved so pruning survives
// clustering. Weights are updated in place to their centroid values.
func ClusterWeights(g *nn.Graph, bits int) (ClusterReport, error) {
	if bits < 1 || bits > 16 {
		return ClusterReport{}, fmt.Errorf("optimize: cluster bits %d outside [1,16]", bits)
	}
	k := 1 << bits
	rep := ClusterReport{Bits: bits, Centroids: make(map[string][]float32)}
	var sumSq float64
	var count int64
	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		w := n.Weight(nn.WeightKey)
		vals := w.Float32s()

		var nz []float32
		for _, v := range vals {
			if v != 0 {
				nz = append(nz, v)
			}
		}
		if len(nz) == 0 {
			rep.Centroids[n.Name] = nil
			continue
		}
		centroids := kmeans1D(nz, k, 25)
		rep.Centroids[n.Name] = centroids

		out := tensor.New(tensor.FP32, w.Shape...)
		for i, v := range vals {
			if v == 0 {
				continue
			}
			c := nearestCentroid(centroids, v)
			out.F32[i] = c
			d := float64(c - v)
			sumSq += d * d
		}
		count += int64(len(vals))
		n.SetWeight(nn.WeightKey, out)
	}
	if count > 0 {
		rep.MSE = sumSq / float64(count)
	}
	return rep, nil
}

// kmeans1D clusters scalar values into at most k centroids using
// linear-initialized Lloyd iterations (the initialization Deep
// Compression found best).
func kmeans1D(vals []float32, k, iters int) []float32 {
	if len(vals) <= k {
		uniq := append([]float32(nil), vals...)
		sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
		return uniq
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	centroids := make([]float32, k)
	for i := range centroids {
		centroids[i] = lo + (hi-lo)*float32(i)/float32(k-1)
	}
	sums := make([]float64, k)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		for i := range sums {
			sums[i], counts[i] = 0, 0
		}
		for _, v := range vals {
			idx := nearestIndex(centroids, v)
			sums[idx] += float64(v)
			counts[idx]++
		}
		moved := false
		for i := range centroids {
			if counts[i] == 0 {
				continue
			}
			nc := float32(sums[i] / float64(counts[i]))
			if nc != centroids[i] {
				centroids[i] = nc
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	sort.Slice(centroids, func(i, j int) bool { return centroids[i] < centroids[j] })
	return centroids
}

// nearestIndex returns the index of the centroid closest to v; centroids
// must be sorted ascending.
func nearestIndex(centroids []float32, v float32) int {
	idx := sort.Search(len(centroids), func(i int) bool { return centroids[i] >= v })
	if idx == 0 {
		return 0
	}
	if idx == len(centroids) {
		return len(centroids) - 1
	}
	if math.Abs(float64(centroids[idx]-v)) < math.Abs(float64(v-centroids[idx-1])) {
		return idx
	}
	return idx - 1
}

func nearestCentroid(centroids []float32, v float32) float32 {
	return centroids[nearestIndex(centroids, v)]
}
