package optimize

import (
	"fmt"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ValidationReport records a pass-preservation check.
type ValidationReport struct {
	// Applied is the pipeline log of passes that changed the graph.
	Applied []string
	// Probes is the number of probe inputs compared.
	Probes int
	// MaxDiff is the worst output divergence observed across all probes
	// and declared outputs.
	MaxDiff float64
}

// ValidatePasses checks that an optimization pipeline preserves the
// network function: it applies the passes to a clone of g and compares
// the rewritten graph against the original on every probe input. Both
// graphs are compiled exactly once and the engines then run all probes —
// the compile-once/run-many shape every pass validation should have.
// It returns the rewritten graph so callers can adopt it once validated.
//
// A non-nil error means the pipeline or an execution failed; a MaxDiff
// above the caller's tolerance means the rewrite changed the function.
func ValidatePasses(g *nn.Graph, passes []Pass, probes []map[string]*tensor.Tensor) (*nn.Graph, ValidationReport, error) {
	var rep ValidationReport
	if len(probes) == 0 {
		return nil, rep, fmt.Errorf("optimize: validation needs at least one probe input")
	}
	rewritten := g.Clone()
	applied, err := Pipeline(rewritten, passes, 0)
	if err != nil {
		return nil, rep, err
	}
	rep.Applied = applied

	ref, err := inference.Compile(g)
	if err != nil {
		return nil, rep, fmt.Errorf("optimize: compile reference: %w", err)
	}
	opt, err := inference.Compile(rewritten)
	if err != nil {
		return nil, rep, fmt.Errorf("optimize: compile rewritten: %w", err)
	}
	if len(g.Outputs) != len(rewritten.Outputs) {
		return nil, rep, fmt.Errorf("optimize: pipeline changed output count %d -> %d",
			len(g.Outputs), len(rewritten.Outputs))
	}
	for _, probe := range probes {
		want, err := ref.Run(probe)
		if err != nil {
			return nil, rep, fmt.Errorf("optimize: reference run: %w", err)
		}
		got, err := opt.Run(probe)
		if err != nil {
			return nil, rep, fmt.Errorf("optimize: rewritten run: %w", err)
		}
		// Outputs are compared positionally: passes may legally rewire a
		// declared output to a differently named node (e.g. batch-norm
		// folding exposes the fused convolution).
		for i, name := range g.Outputs {
			w := want[name]
			o := got[rewritten.Outputs[i]]
			d, err := tensor.MaxAbsDiff(w, o)
			if err != nil {
				return nil, rep, fmt.Errorf("optimize: output %s: %w", name, err)
			}
			if d > rep.MaxDiff {
				rep.MaxDiff = d
			}
		}
		rep.Probes++
	}
	return rewritten, rep, nil
}
