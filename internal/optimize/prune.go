package optimize

import (
	"fmt"
	"math"
	"sort"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// PruneReport summarizes the effect of a pruning pass.
type PruneReport struct {
	// TotalWeights counts prunable weight elements (conv/dense kernels;
	// biases and batch-norm statistics are never pruned).
	TotalWeights int64
	// Zeroed counts weights set to zero by the pass.
	Zeroed int64
	// PerLayer maps node name to its resulting sparsity in [0,1].
	PerLayer map[string]float64
	// MACsBefore/MACsAfter give the dense and effective (zero-skipped)
	// multiply-accumulate counts, the "theoretical speed-up" of §III.
	MACsBefore int64
	MACsAfter  int64
}

// Sparsity returns the overall fraction of zeroed weights.
func (r PruneReport) Sparsity() float64 {
	if r.TotalWeights == 0 {
		return 0
	}
	return float64(r.Zeroed) / float64(r.TotalWeights)
}

// TheoreticalSpeedup returns MACsBefore/MACsAfter — the speed-up a
// perfectly sparsity-exploiting machine would achieve.
func (r PruneReport) TheoreticalSpeedup() float64 {
	if r.MACsAfter == 0 {
		return math.Inf(1)
	}
	return float64(r.MACsBefore) / float64(r.MACsAfter)
}

// prunable reports whether the node's main weight participates in
// pruning.
func prunable(n *nn.Node) bool {
	switch n.Op {
	case nn.OpConv, nn.OpDepthwiseConv, nn.OpDense:
		return n.Weight(nn.WeightKey) != nil
	}
	return false
}

// MagnitudePrune zeroes the globally smallest |w| weights until the
// target sparsity is reached (unstructured pruning). The graph must have
// inferred shapes for MAC accounting.
func MagnitudePrune(g *nn.Graph, sparsity float64) (PruneReport, error) {
	if sparsity < 0 || sparsity >= 1 {
		return PruneReport{}, fmt.Errorf("optimize: sparsity %v outside [0,1)", sparsity)
	}
	rep := PruneReport{PerLayer: make(map[string]float64)}

	// The global threshold is the k-th smallest |w|; a counting
	// selection finds it exactly in two passes, without materializing
	// and sorting the full magnitude vector (which dominated pruning
	// time on ResNet50-sized models).
	total := 0
	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		total += n.Weight(nn.WeightKey).NumElements()
	}
	if total == 0 {
		return rep, nil
	}
	k := int(sparsity * float64(total))
	var threshold float32
	if k > 0 {
		threshold = kthMagnitude(g, k)
	}

	stats, err := g.Stats()
	if err != nil {
		return rep, err
	}
	macsByNode := make(map[string]int64, len(stats.Nodes))
	for _, ns := range stats.Nodes {
		macsByNode[ns.Name] = ns.MACs
	}
	rep.MACsBefore = stats.MACs
	rep.MACsAfter = stats.MACs

	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		w := n.Weight(nn.WeightKey)
		vals := w.Float32s()
		layerZero := 0
		for i, v := range vals {
			rep.TotalWeights++
			if float32(math.Abs(float64(v))) <= threshold && k > 0 {
				vals[i] = 0
				rep.Zeroed++
				layerZero++
			}
		}
		nw := tensor.New(tensor.FP32, w.Shape...)
		copy(nw.F32, vals)
		n.SetWeight(nn.WeightKey, nw)
		layerSparsity := float64(layerZero) / float64(len(vals))
		rep.PerLayer[n.Name] = layerSparsity
		// Effective MACs shrink proportionally to zeroed weights.
		saved := int64(layerSparsity * float64(macsByNode[n.Name]))
		rep.MACsAfter -= saved
	}
	return rep, nil
}

// kthMagnitude returns the k-th smallest (1-based) weight magnitude
// across all prunable tensors. Non-negative IEEE-754 floats order
// exactly like their bit patterns, so a radix-style counting selection
// over the high then low 16 bits finds the precise order statistic in
// O(n) — the same value a full sort would put at index k-1.
func kthMagnitude(g *nn.Graph, k int) float32 {
	const magMask = 0x7fffffff // clears the sign: |v| bit pattern
	forEachMag := func(fn func(bits uint32)) {
		for _, n := range g.Nodes {
			if !prunable(n) {
				continue
			}
			for _, v := range n.Weight(nn.WeightKey).Float32s() {
				fn(math.Float32bits(v) & magMask)
			}
		}
	}
	coarse := make([]int, 1<<16)
	forEachMag(func(bits uint32) { coarse[bits>>16]++ })
	rank := k
	hiBucket := -1
	for i, c := range coarse {
		if rank <= c {
			hiBucket = i
			break
		}
		rank -= c
	}
	if hiBucket < 0 {
		return math.MaxFloat32 // k beyond population; callers prevent this
	}
	fine := make([]int, 1<<16)
	forEachMag(func(bits uint32) {
		if int(bits>>16) == hiBucket {
			fine[bits&0xffff]++
		}
	})
	for i, c := range fine {
		if rank <= c {
			return math.Float32frombits(uint32(hiBucket)<<16 | uint32(i))
		}
		rank -= c
	}
	return math.MaxFloat32
}

// ChannelPrune implements structured pruning: for each prunable conv it
// zeroes the output channels with the smallest L1 norms until the target
// channel sparsity is reached. Zeroed channels keep their place in the
// tensor (shapes are unchanged) but hardware models may skip them, which
// is exactly why structured pruning translates to real speed-ups where
// unstructured pruning often does not (§III, [8]).
func ChannelPrune(g *nn.Graph, channelSparsity float64) (PruneReport, error) {
	if channelSparsity < 0 || channelSparsity >= 1 {
		return PruneReport{}, fmt.Errorf("optimize: channel sparsity %v outside [0,1)", channelSparsity)
	}
	rep := PruneReport{PerLayer: make(map[string]float64)}
	stats, err := g.Stats()
	if err != nil {
		return rep, err
	}
	macsByNode := make(map[string]int64, len(stats.Nodes))
	for _, ns := range stats.Nodes {
		macsByNode[ns.Name] = ns.MACs
	}
	rep.MACsBefore = stats.MACs
	rep.MACsAfter = stats.MACs

	for _, n := range g.Nodes {
		// Structured pruning of the classifier output would remove
		// classes; restrict to convolutions.
		if n.Op != nn.OpConv && n.Op != nn.OpDepthwiseConv {
			continue
		}
		w := n.Weight(nn.WeightKey)
		if w == nil {
			continue
		}
		outC := w.Shape[0]
		perOut := w.NumElements() / outC
		kill := int(channelSparsity * float64(outC))
		vals := w.Float32s()
		rep.TotalWeights += int64(len(vals))
		if kill == 0 {
			rep.PerLayer[n.Name] = 0
			continue
		}
		type chNorm struct {
			ch   int
			norm float64
		}
		norms := make([]chNorm, outC)
		for oc := 0; oc < outC; oc++ {
			var s float64
			for i := 0; i < perOut; i++ {
				s += math.Abs(float64(vals[oc*perOut+i]))
			}
			norms[oc] = chNorm{oc, s}
		}
		sort.Slice(norms, func(i, j int) bool { return norms[i].norm < norms[j].norm })
		for _, cn := range norms[:kill] {
			for i := 0; i < perOut; i++ {
				vals[cn.ch*perOut+i] = 0
			}
			rep.Zeroed += int64(perOut)
		}
		nw := tensor.New(tensor.FP32, w.Shape...)
		copy(nw.F32, vals)
		n.SetWeight(nn.WeightKey, nw)
		layerSparsity := float64(kill) / float64(outC)
		rep.PerLayer[n.Name] = layerSparsity
		rep.MACsAfter -= int64(layerSparsity * float64(macsByNode[n.Name]))
	}
	return rep, nil
}

// SparseEncodedBytes returns the storage for all prunable weights under a
// compressed sparse encoding: non-zero values at valueBits each plus a
// 4-bit relative index per non-zero (the Deep Compression scheme [7]).
func SparseEncodedBytes(g *nn.Graph, valueBits int) int64 {
	const indexBits = 4
	var bits int64
	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		vals := n.Weight(nn.WeightKey).Float32s()
		run := 0
		for _, v := range vals {
			if v == 0 {
				run++
				// The 4-bit relative index overflows every 16 zeros and
				// spends one padding symbol.
				if run == 16 {
					bits += int64(indexBits + valueBits)
					run = 0
				}
				continue
			}
			bits += int64(indexBits + valueBits)
			run = 0
		}
		// Biases stay dense at 32 bits.
		if bTensor := n.Weight(nn.BiasKey); bTensor != nil {
			bits += int64(bTensor.NumElements()) * 32
		}
	}
	return (bits + 7) / 8
}
