package optimize

import (
	"bytes"
	"math"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// zeroChannelNet builds a conv net whose first output channel's filter
// is identically zero — the degenerate per-channel range.
func zeroChannelNet(t *testing.T) *nn.Graph {
	t.Helper()
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 31})
	conv := findOp(g, nn.OpConv)
	if conv == nil {
		t.Fatal("no conv node")
	}
	w := conv.Weight(nn.WeightKey)
	perOut := w.NumElements() / w.Shape[0]
	for i := 0; i < perOut; i++ {
		w.F32[i] = 0
	}
	return g
}

func findOp(g *nn.Graph, op nn.OpType) *nn.Node {
	for _, n := range g.Nodes {
		if n.Op == op {
			return n
		}
	}
	return nil
}

// TestQuantizeZeroRangeChannel checks that an all-zero output channel
// quantizes without degenerate scales in both granularities: the codes
// stay zero, dequantize back to exactly zero, and the reported MSE is
// finite.
func TestQuantizeZeroRangeChannel(t *testing.T) {
	for _, gran := range []QuantGranularity{PerTensor, PerChannel} {
		g := zeroChannelNet(t)
		rep, err := QuantizeWeights(g, QuantConfig{Granularity: gran})
		if err != nil {
			t.Fatalf("%s: %v", gran, err)
		}
		if math.IsNaN(rep.WeightMSE) || math.IsInf(rep.WeightMSE, 0) {
			t.Fatalf("%s: degenerate weight MSE %v", gran, rep.WeightMSE)
		}
		conv := findOp(g, nn.OpConv)
		w := conv.Weight(nn.WeightKey)
		perOut := w.NumElements() / w.Shape[0]
		for i := 0; i < perOut; i++ {
			if got := w.At(0, i/(w.Shape[2]*w.Shape[3]), (i/w.Shape[3])%w.Shape[2], i%w.Shape[3]); got != 0 {
				t.Fatalf("%s: zero channel element %d dequantizes to %g", gran, i, got)
			}
		}
		// The quantized graph must still execute (scale must not be 0).
		if w.DType == tensor.INT8 && !(w.Quant.Scale > 0) {
			t.Fatalf("%s: non-positive stored scale %g", gran, w.Quant.Scale)
		}
	}
}

// TestSNRGranularityOrdering checks the granularity ablation's premise:
// per-channel quantization never has lower SNR than per-tensor on
// weights with heterogeneous channel ranges.
func TestSNRGranularityOrdering(t *testing.T) {
	// Channels with a 10x range mismatch: per-tensor spends its codes on
	// the large channel and quantizes the small one coarsely, so
	// per-channel scales recover several dB of aggregate SNR.
	w := tensor.New(tensor.FP32, 2, 1, 2, 2)
	big := []float32{10, -8, 6, -10}
	small := []float32{1, -0.8, 0.6, -1}
	copy(w.F32[:4], big)
	copy(w.F32[4:], small)

	perTensor := QuantizationSNR(w, PerTensor)
	perChannel := QuantizationSNR(w, PerChannel)
	if perChannel < perTensor {
		t.Fatalf("per-channel SNR %.2f dB < per-tensor %.2f dB", perChannel, perTensor)
	}
	if perChannel-perTensor < 2 {
		t.Errorf("heterogeneous channels should gain >=2 dB, got %.2f dB", perChannel-perTensor)
	}

	// On a homogeneous tensor the two must essentially coincide.
	h := tensor.New(tensor.FP32, 2, 1, 2, 2)
	for i := range h.F32 {
		h.F32[i] = float32(i%5) - 2
	}
	dPT, dPC := QuantizationSNR(h, PerTensor), QuantizationSNR(h, PerChannel)
	if dPC < dPT-1e-9 {
		t.Errorf("homogeneous: per-channel %.2f dB below per-tensor %.2f dB", dPC, dPT)
	}
}

// TestQuantSchemaRoundTrip checks the schema artifact's determinism:
// calibration is reproducible, the JSON encoding is byte-stable, and
// decode(encode(s)) reproduces the schema exactly.
func TestQuantSchemaRoundTrip(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 17})
	sample := func(seed int) map[string]*tensor.Tensor {
		if err := g.InferShapes(1); err != nil {
			t.Fatal(err)
		}
		per := g.Node(g.Inputs[0]).OutShape[1:]
		in := tensor.New(tensor.FP32, append(tensor.Shape{2}, per...)...)
		for i := range in.F32 {
			in.F32[i] = float32((i*5+seed*11)%19)/19 - 0.5
		}
		return map[string]*tensor.Tensor{g.Inputs[0]: in}
	}
	samples := []map[string]*tensor.Tensor{sample(1), sample(2)}

	s1, err := Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated calibration produced different schema bytes")
	}

	// Every graph value must be covered, with usable scales.
	if err := s1.Covers(g); err != nil {
		t.Fatalf("calibrated schema does not cover the graph: %v", err)
	}

	decoded, err := nn.DecodeQuantSchema(b1)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Model != s1.Model || len(decoded.Activations) != len(s1.Activations) {
		t.Fatalf("round trip lost structure: %q/%d vs %q/%d",
			decoded.Model, len(decoded.Activations), s1.Model, len(s1.Activations))
	}
	for name, q := range s1.Activations {
		if dq, ok := decoded.Params(name); !ok || dq != q {
			t.Fatalf("round trip changed %q: %+v vs %+v", name, dq, q)
		}
	}
	b3, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("re-encoding the decoded schema changed bytes")
	}
}

// TestQuantizeWeightsEmitsSchema checks that the PTQ pass attaches the
// calibrated schema when samples are provided and omits it otherwise.
func TestQuantizeWeightsEmitsSchema(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 31})
	rep, err := QuantizeWeights(g.Clone(), QuantConfig{Granularity: PerTensor})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != nil {
		t.Error("schema present without calibration samples")
	}
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, g.Node(g.Inputs[0]).OutShape...)
	for i := range in.F32 {
		in.F32[i] = float32(i%17)/17 - 0.5
	}
	rep, err = QuantizeWeights(g, QuantConfig{
		Granularity:        PerTensor,
		CalibrationSamples: []map[string]*tensor.Tensor{{g.Inputs[0]: in}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema == nil {
		t.Fatal("no schema despite calibration samples")
	}
	if err := rep.Schema.Covers(g); err != nil {
		t.Fatalf("PTQ schema does not cover the graph: %v", err)
	}
}
