package optimize

import (
	"fmt"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Calibrate derives the activation quantization schema for g: the graph
// is compiled once on the FP32 engine, every calibration sample runs
// through RunAll, and the observed per-tensor (min, max) of each value
// — inputs included — becomes an affine INT8 mapping. The result is
// what inference.CompileQuantized consumes to keep activations integer
// end to end.
//
// Calibration is deterministic: the same graph and samples produce the
// same schema, and the schema's JSON encoding is byte-stable.
func Calibrate(g *nn.Graph, samples []map[string]*tensor.Tensor) (*nn.QuantSchema, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("optimize: calibration needs at least one sample")
	}
	eng, err := inference.Compile(g)
	if err != nil {
		return nil, fmt.Errorf("optimize: calibrate %q: %w", g.Name, err)
	}
	ranges := make(map[string][2]float32)
	for _, sample := range samples {
		acts, err := eng.RunAll(sample)
		if err != nil {
			return nil, fmt.Errorf("optimize: calibration: %w", err)
		}
		foldRanges(ranges, acts)
	}
	return SchemaFromRanges(g.Name, ranges), nil
}

// foldRanges widens the accumulated (min, max) per value with one
// sample's activations.
func foldRanges(ranges map[string][2]float32, acts map[string]*tensor.Tensor) {
	for name, t := range acts {
		lo, hi := t.MinMax()
		r, ok := ranges[name]
		if !ok {
			ranges[name] = [2]float32{lo, hi}
			continue
		}
		if lo < r[0] {
			r[0] = lo
		}
		if hi > r[1] {
			r[1] = hi
		}
		ranges[name] = r
	}
}

// SchemaFromRanges converts calibrated per-value (min, max) ranges into
// a quantization schema of affine INT8 mappings. Ranges are widened to
// include zero (tensor.AffineParams), so padding and ReLU cut-offs are
// exactly representable; zero-width ranges degrade to the scale-1
// identity mapping rather than a degenerate scale.
func SchemaFromRanges(model string, ranges map[string][2]float32) *nn.QuantSchema {
	s := nn.NewQuantSchema(model)
	for name, r := range ranges {
		s.Set(name, tensor.AffineParams(r[0], r[1]))
	}
	return s
}
