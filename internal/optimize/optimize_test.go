package optimize

import (
	"math"
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// runLeNet executes the graph on a fixed probe input.
func runLeNet(t *testing.T, g *nn.Graph) *tensor.Tensor {
	t.Helper()
	r, err := inference.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 28, 28)
	for i := range in.F32 {
		in.F32[i] = float32(i%17)/17 - 0.5
	}
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFoldBatchNormPreservesFunction(t *testing.T) {
	// A conv+BN model must compute the same function after folding.
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true, Seed: 11})
	x := b.Input("input", 1, 8, 8)
	x = b.ConvBNAct(x, 1, 4, 3, 1, 1, nn.OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Graph(x)

	// Give BN non-trivial statistics.
	for _, n := range g.Nodes {
		if n.Op == nn.OpBatchNorm {
			mean := n.Weight(nn.MeanKey)
			variance := n.Weight(nn.VarKey)
			gamma := n.Weight(nn.GammaKey)
			for i := range mean.F32 {
				mean.F32[i] = 0.1 * float32(i+1)
				variance.F32[i] = 0.5 + 0.25*float32(i)
				gamma.F32[i] = 1.5 - 0.2*float32(i)
			}
		}
	}

	run := func(g *nn.Graph) *tensor.Tensor {
		r, err := inference.NewRunner(g)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(tensor.FP32, 1, 1, 8, 8)
		for i := range in.F32 {
			in.F32[i] = float32(i%5) - 2
		}
		out, err := r.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	before := run(g)
	folded := g.Clone()
	changed, err := (FoldBatchNorm{}).Apply(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("FoldBatchNorm reported no change on conv+BN graph")
	}
	for _, n := range folded.Nodes {
		if n.Op == nn.OpBatchNorm {
			t.Fatal("BatchNorm survived folding")
		}
	}
	after := run(folded)
	diff, err := tensor.MaxAbsDiff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-4 {
		t.Errorf("folding changed function by %v", diff)
	}
}

func TestFoldBatchNormSkipsSharedConv(t *testing.T) {
	// If the conv feeds two consumers, folding must not happen.
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true})
	x := b.Input("input", 1, 4, 4)
	c := b.ConvNB(x, 1, 2, 3, 1, 1)
	bn := b.BN(c, 2)
	relu := b.Act(c, nn.OpReLU) // second consumer of conv
	sum := b.Add(bn, relu)
	g := b.Graph(sum)
	changed, err := (FoldBatchNorm{}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("FoldBatchNorm folded a shared conv")
	}
}

func TestDeadNodeElimination(t *testing.T) {
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true})
	x := b.Input("input", 1, 4, 4)
	live := b.ConvNB(x, 1, 2, 3, 1, 1)
	b.ConvNB(x, 1, 8, 3, 1, 1) // dead branch
	g := b.Graph(live)
	n := len(g.Nodes)
	changed, err := (DeadNodeElimination{}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || len(g.Nodes) != n-1 {
		t.Errorf("dead node not removed: %d -> %d nodes", n, len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveIdentity(t *testing.T) {
	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "in", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{4}}})
	g.MustAdd(&nn.Node{Name: "id", Op: nn.OpIdentity, Inputs: []string{"in"}})
	g.MustAdd(&nn.Node{Name: "sm", Op: nn.OpSoftmax, Inputs: []string{"id"}})
	g.Outputs = []string{"sm"}
	changed, err := (RemoveIdentity{}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || g.Node("id") != nil {
		t.Error("identity not removed")
	}
	if g.Node("sm").Inputs[0] != "in" {
		t.Error("consumer not rewired")
	}
}

func TestPipelineConverges(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 2})
	log, err := Pipeline(g, StandardPasses(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = log
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// A second run must be a no-op.
	log2, err := Pipeline(g, StandardPasses(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2) != 0 {
		t.Errorf("pipeline not idempotent: %v", log2)
	}
}

func TestMagnitudePruneReachesTarget(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 4})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	rep, err := MagnitudePrune(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Sparsity(); math.Abs(s-0.9) > 0.02 {
		t.Errorf("sparsity = %v, want ~0.9", s)
	}
	if rep.TheoreticalSpeedup() <= 1 {
		t.Errorf("speedup = %v, want > 1", rep.TheoreticalSpeedup())
	}
	// Graph must still execute.
	runLeNet(t, g)
}

func TestMagnitudePruneValidation(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := MagnitudePrune(g, 1.0); err == nil {
		t.Error("accepted sparsity 1.0")
	}
	if _, err := MagnitudePrune(g, -0.1); err == nil {
		t.Error("accepted negative sparsity")
	}
	// Zero sparsity must be a no-op on values.
	rep, err := MagnitudePrune(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Zeroed != 0 {
		t.Errorf("zero-sparsity pruned %d weights", rep.Zeroed)
	}
}

func TestChannelPrune(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 8})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	rep, err := ChannelPrune(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Zeroed == 0 {
		t.Fatal("channel prune zeroed nothing")
	}
	// Whole channels must be zero.
	for _, n := range g.Nodes {
		if n.Op != nn.OpConv {
			continue
		}
		w := n.Weight(nn.WeightKey)
		outC := w.Shape[0]
		perOut := w.NumElements() / outC
		zeroCh := 0
		for oc := 0; oc < outC; oc++ {
			allZero := true
			anyZero := false
			for i := 0; i < perOut; i++ {
				if w.F32[oc*perOut+i] == 0 {
					anyZero = true
				} else {
					allZero = false
				}
			}
			if anyZero && !allZero {
				t.Errorf("node %s channel %d partially zeroed", n.Name, oc)
			}
			if allZero {
				zeroCh++
			}
		}
		if zeroCh != outC/2 {
			t.Errorf("node %s: %d/%d channels zeroed, want %d", n.Name, zeroCh, outC, outC/2)
		}
	}
	runLeNet(t, g)
}

func TestQuantizeWeightsPerTensor(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 6})
	before := runLeNet(t, g)
	rep, err := QuantizeWeights(g, QuantConfig{Granularity: PerTensor})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesAfter >= rep.BytesBefore {
		t.Errorf("INT8 not smaller: %d -> %d", rep.BytesBefore, rep.BytesAfter)
	}
	if ratio := float64(rep.BytesBefore) / float64(rep.BytesAfter); ratio < 3.9 || ratio > 4.1 {
		t.Errorf("compression ratio = %v, want ~4", ratio)
	}
	after := runLeNet(t, g)
	// Quantized model output stays close to the FP32 one.
	diff, err := tensor.MaxAbsDiff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 0.2 {
		t.Errorf("quantization moved softmax outputs by %v", diff)
	}
	if rep.WeightMSE == 0 {
		t.Error("weight MSE reported as exactly zero")
	}
}

func TestQuantizePerChannelBeatsPerTensorSNR(t *testing.T) {
	// Per-channel granularity must achieve at least per-tensor SNR on a
	// weight tensor with per-channel scale variation.
	w := tensor.New(tensor.FP32, 4, 1, 3, 3)
	for oc := 0; oc < 4; oc++ {
		scale := float32(math.Pow(10, float64(oc)-2)) // 0.01 .. 10
		for i := 0; i < 9; i++ {
			w.F32[oc*9+i] = scale * (float32(i)/9 - 0.5)
		}
	}
	snrT := QuantizationSNR(w, PerTensor)
	snrC := QuantizationSNR(w, PerChannel)
	if snrC <= snrT {
		t.Errorf("per-channel SNR %.1f dB <= per-tensor %.1f dB", snrC, snrT)
	}
}

func TestDequantizeWeights(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 9})
	if _, err := QuantizeWeights(g, QuantConfig{Granularity: PerTensor}); err != nil {
		t.Fatal(err)
	}
	DequantizeWeights(g)
	for _, n := range g.Nodes {
		for _, w := range n.Weights {
			if w.DType != tensor.FP32 {
				t.Fatalf("node %s still has %s weights", n.Name, w.DType)
			}
		}
	}
	runLeNet(t, g)
}

func TestCalibrationRanges(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 13})
	sample := map[string]*tensor.Tensor{"input": tensor.New(tensor.FP32, 1, 1, 28, 28)}
	for i := range sample["input"].F32 {
		sample["input"].F32[i] = float32(i%11) / 11
	}
	rep, err := QuantizeWeights(g, QuantConfig{
		Granularity:        PerTensor,
		CalibrationSamples: []map[string]*tensor.Tensor{sample},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ActivationRanges) == 0 {
		t.Fatal("no activation ranges recorded")
	}
	for name, r := range rep.ActivationRanges {
		if r[0] > r[1] {
			t.Errorf("%s: min %v > max %v", name, r[0], r[1])
		}
	}
}

func TestClusterWeights(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 5})
	rep, err := ClusterWeights(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer's non-zero weights must take at most 16 distinct values.
	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		w := n.Weight(nn.WeightKey)
		uniq := make(map[float32]bool)
		for _, v := range w.Float32s() {
			if v != 0 {
				uniq[v] = true
			}
		}
		if len(uniq) > 16 {
			t.Errorf("node %s has %d distinct values after 4-bit clustering", n.Name, len(uniq))
		}
	}
	if rep.MSE == 0 {
		t.Error("cluster MSE exactly zero is implausible")
	}
	if _, err := ClusterWeights(g, 0); err == nil {
		t.Error("accepted 0 cluster bits")
	}
	runLeNet(t, g)
}

func TestClusterPreservesZeros(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 7})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := MagnitudePrune(g, 0.8); err != nil {
		t.Fatal(err)
	}
	countZeros := func() int {
		z := 0
		for _, n := range g.Nodes {
			if !prunable(n) {
				continue
			}
			for _, v := range n.Weight(nn.WeightKey).Float32s() {
				if v == 0 {
					z++
				}
			}
		}
		return z
	}
	before := countZeros()
	if _, err := ClusterWeights(g, 5); err != nil {
		t.Fatal(err)
	}
	if after := countZeros(); after < before {
		t.Errorf("clustering destroyed zeros: %d -> %d", before, after)
	}
}

func TestKMeans1D(t *testing.T) {
	vals := []float32{1, 1.1, 0.9, 5, 5.1, 4.9}
	cs := kmeans1D(vals, 2, 50)
	if len(cs) != 2 {
		t.Fatalf("got %d centroids", len(cs))
	}
	if math.Abs(float64(cs[0]-1)) > 0.2 || math.Abs(float64(cs[1]-5)) > 0.2 {
		t.Errorf("centroids = %v, want ~[1 5]", cs)
	}
	// Fewer values than clusters: return the values themselves.
	cs2 := kmeans1D([]float32{3, 1}, 8, 10)
	if len(cs2) != 2 || cs2[0] != 1 || cs2[1] != 3 {
		t.Errorf("small-input centroids = %v", cs2)
	}
}
