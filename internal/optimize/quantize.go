package optimize

import (
	"fmt"
	"math"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// QuantGranularity selects how weight quantization scales are derived.
type QuantGranularity int

const (
	// PerTensor uses one scale per weight tensor.
	PerTensor QuantGranularity = iota
	// PerChannel uses one scale per output channel, the higher-fidelity
	// option evaluated in the granularity ablation.
	PerChannel
)

// String names the granularity.
func (q QuantGranularity) String() string {
	if q == PerChannel {
		return "per-channel"
	}
	return "per-tensor"
}

// QuantConfig controls post-training quantization.
type QuantConfig struct {
	Granularity QuantGranularity
	// CalibrationSamples are inputs (keyed like Runner.Run inputs) used to
	// observe activation ranges. May be empty when only weights matter.
	CalibrationSamples []map[string]*tensor.Tensor
}

// QuantReport records the outcome of quantization.
type QuantReport struct {
	Granularity QuantGranularity
	// WeightMSE is the mean squared quantization error over all weights.
	WeightMSE float64
	// ActivationRanges maps node name to the calibrated (min,max).
	ActivationRanges map[string][2]float32
	// Schema is the activation quantization schema derived from the
	// calibrated ranges (nil without calibration samples) — the artifact
	// inference.CompileQuantized consumes for native INT8 execution.
	Schema *nn.QuantSchema
	// BytesBefore and BytesAfter give the weight storage footprints.
	BytesBefore int64
	BytesAfter  int64
}

// QuantizeWeights converts all conv/dense weights to INT8 in place.
// Per-channel granularity stores one scale per output channel by
// quantizing each channel against its own symmetric range; the tensor's
// recorded QuantParams then hold the worst-case scale (for size
// accounting), while the actual stored codes use the per-channel scales
// folded into the dequantized values at run time. For simplicity and
// bit-exactness of the reference runtime, per-channel mode stores the
// dequantized-then-requantized FP32 values alongside INT8 size
// accounting — mirroring "fake quantization" as used by TFLite's PTQ
// evaluation flow.
func QuantizeWeights(g *nn.Graph, cfg QuantConfig) (QuantReport, error) {
	rep := QuantReport{
		Granularity:      cfg.Granularity,
		ActivationRanges: make(map[string][2]float32),
	}
	var sumSq float64
	var count int64
	for _, n := range g.Nodes {
		if !prunable(n) {
			continue
		}
		w := n.Weight(nn.WeightKey)
		rep.BytesBefore += int64(w.SizeBytes())
		vals := w.Float32s()

		var qErr float64
		switch cfg.Granularity {
		case PerTensor:
			q := tensor.SymmetricParams(vals)
			qt := tensor.New(tensor.INT8, w.Shape...)
			qt.Quant = q
			for i, v := range vals {
				qt.I8[i] = q.Quantize(v)
				d := float64(q.Dequantize(qt.I8[i]) - v)
				qErr += d * d
			}
			n.SetWeight(nn.WeightKey, qt)
			rep.BytesAfter += int64(qt.SizeBytes())
		case PerChannel:
			outC := w.Shape[0]
			perOut := len(vals) / outC
			qt := tensor.New(tensor.INT8, w.Shape...)
			var maxScale float32
			for oc := 0; oc < outC; oc++ {
				ch := vals[oc*perOut : (oc+1)*perOut]
				q := tensor.SymmetricParams(ch)
				if q.Scale > maxScale {
					maxScale = q.Scale
				}
				for i, v := range ch {
					code := q.Quantize(v)
					qt.I8[oc*perOut+i] = code
					deq := q.Dequantize(code)
					d := float64(deq - v)
					qErr += d * d
					vals[oc*perOut+i] = deq
				}
			}
			// Fake-quantized FP32 weights preserve reference-runtime
			// semantics; size accounting uses the INT8 payload plus one
			// FP32 scale per channel.
			fq := tensor.New(tensor.FP32, w.Shape...)
			copy(fq.F32, vals)
			n.SetWeight(nn.WeightKey, fq)
			rep.BytesAfter += int64(qt.SizeBytes()) + int64(outC)*4
		default:
			return rep, fmt.Errorf("optimize: unknown granularity %d", int(cfg.Granularity))
		}
		sumSq += qErr
		count += int64(len(vals))
	}
	if count > 0 {
		rep.WeightMSE = sumSq / float64(count)
	}

	// Calibrate activation ranges if samples were provided: the graph is
	// compiled once and the engine runs every sample. Because weights
	// were quantized above, the ranges — and the schema derived from
	// them — reflect the deployed (quantized-weight) network.
	if len(cfg.CalibrationSamples) > 0 {
		eng, err := inference.Compile(g)
		if err != nil {
			return rep, err
		}
		for _, sample := range cfg.CalibrationSamples {
			acts, err := eng.RunAll(sample)
			if err != nil {
				return rep, fmt.Errorf("optimize: calibration: %w", err)
			}
			foldRanges(rep.ActivationRanges, acts)
		}
		rep.Schema = SchemaFromRanges(g.Name, rep.ActivationRanges)
	}
	return rep, nil
}

// DequantizeWeights converts INT8 weights back to FP32 in place (the
// "de-quantizing edge runtime" path).
func DequantizeWeights(g *nn.Graph) {
	for _, n := range g.Nodes {
		for key, w := range n.Weights {
			if w.DType == tensor.INT8 {
				n.SetWeight(key, w.Convert(tensor.FP32))
			}
		}
	}
}

// QuantizationSNR measures the signal-to-quantization-noise ratio (dB) a
// weight tensor would suffer at the given granularity, without modifying
// the graph. Used by the granularity ablation.
func QuantizationSNR(w *tensor.Tensor, g QuantGranularity) float64 {
	vals := w.Float32s()
	if len(vals) == 0 {
		return math.Inf(1)
	}
	var signal, noise float64
	quantize := func(chunk []float32) {
		q := tensor.SymmetricParams(chunk)
		for _, v := range chunk {
			d := float64(q.Dequantize(q.Quantize(v)) - v)
			signal += float64(v) * float64(v)
			noise += d * d
		}
	}
	if g == PerChannel && len(w.Shape) > 1 {
		outC := w.Shape[0]
		perOut := len(vals) / outC
		for oc := 0; oc < outC; oc++ {
			quantize(vals[oc*perOut : (oc+1)*perOut])
		}
	} else {
		quantize(vals)
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(signal/noise)
}
