// Package optimize implements the model-optimization passes of the
// VEDLIoT toolchain (paper Section III): graph surgery (batch-norm
// folding, dead-node elimination), pruning, post-training quantization,
// weight clustering and Huffman coding — the Deep Compression pipeline
// of Han et al. [7], whose "up to 49x" size reduction the paper cites.
//
// Passes operate on nn.Graph values and are validated against the
// reference interpreter: every structural pass must leave the network's
// function unchanged up to floating-point tolerance.
package optimize

import (
	"fmt"
	"math"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Pass is one graph-to-graph rewrite.
type Pass interface {
	// Name identifies the pass in pipeline reports.
	Name() string
	// Apply rewrites g in place, reporting whether anything changed.
	Apply(g *nn.Graph) (changed bool, err error)
}

// Pipeline applies passes in order until none reports a change (at most
// maxIters sweeps), returning the applied-pass log.
func Pipeline(g *nn.Graph, passes []Pass, maxIters int) ([]string, error) {
	if maxIters <= 0 {
		maxIters = 8
	}
	var log []string
	for iter := 0; iter < maxIters; iter++ {
		any := false
		for _, p := range passes {
			changed, err := p.Apply(g)
			if err != nil {
				return log, fmt.Errorf("optimize: pass %s: %w", p.Name(), err)
			}
			if changed {
				log = append(log, p.Name())
				any = true
			}
		}
		if !any {
			return log, nil
		}
	}
	return log, nil
}

// FoldBatchNorm fuses inference-mode batch normalization into the
// preceding convolution's weights and bias: the classic deployment
// optimization ("operator fusion" in the paper's step 4).
type FoldBatchNorm struct{}

// Name implements Pass.
func (FoldBatchNorm) Name() string { return "fold-batchnorm" }

// Apply implements Pass.
func (FoldBatchNorm) Apply(g *nn.Graph) (bool, error) {
	consumers := g.Consumers()
	changed := false
	var remove []string
	for _, bn := range g.Nodes {
		if bn.Op != nn.OpBatchNorm {
			continue
		}
		conv := g.Node(bn.Inputs[0])
		if conv == nil || (conv.Op != nn.OpConv && conv.Op != nn.OpDepthwiseConv) {
			continue
		}
		// The conv must feed only this BN, or folding would change the
		// other consumers.
		if len(consumers[conv.Name]) != 1 {
			continue
		}
		w := conv.Weight(nn.WeightKey)
		gamma, beta := bn.Weight(nn.GammaKey), bn.Weight(nn.BetaKey)
		mean, variance := bn.Weight(nn.MeanKey), bn.Weight(nn.VarKey)
		if w == nil || gamma == nil || beta == nil || mean == nil || variance == nil {
			continue // structure-only graph: nothing to fold numerically
		}
		eps := bn.Attrs.Eps
		if eps == 0 {
			eps = 1e-5
		}
		outC := w.Shape[0]
		perOut := w.NumElements() / outC

		wv := w.Float32s()
		gv, bv := gamma.Float32s(), beta.Float32s()
		mv, vv := mean.Float32s(), variance.Float32s()

		bias := conv.Weight(nn.BiasKey)
		var biasV []float32
		if bias != nil {
			biasV = bias.Float32s()
		} else {
			biasV = make([]float32, outC)
		}

		newW := tensor.New(tensor.FP32, w.Shape...)
		newB := tensor.New(tensor.FP32, outC)
		for oc := 0; oc < outC; oc++ {
			scale := gv[oc] / float32(math.Sqrt(float64(vv[oc])+float64(eps)))
			for i := 0; i < perOut; i++ {
				newW.F32[oc*perOut+i] = wv[oc*perOut+i] * scale
			}
			newB.F32[oc] = (biasV[oc]-mv[oc])*scale + bv[oc]
		}
		conv.SetWeight(nn.WeightKey, newW)
		conv.SetWeight(nn.BiasKey, newB)
		conv.Attrs.Bias = true

		// Rewire BN consumers to the conv and drop the BN node.
		rewire(g, bn.Name, conv.Name)
		remove = append(remove, bn.Name)
		changed = true
	}
	if len(remove) > 0 {
		g.Remove(remove...)
	}
	return changed, nil
}

// RemoveIdentity drops Identity nodes, rewiring their consumers.
type RemoveIdentity struct{}

// Name implements Pass.
func (RemoveIdentity) Name() string { return "remove-identity" }

// Apply implements Pass.
func (RemoveIdentity) Apply(g *nn.Graph) (bool, error) {
	changed := false
	var remove []string
	for _, n := range g.Nodes {
		if n.Op != nn.OpIdentity {
			continue
		}
		if isOutput(g, n.Name) {
			continue
		}
		rewire(g, n.Name, n.Inputs[0])
		remove = append(remove, n.Name)
		changed = true
	}
	if len(remove) > 0 {
		g.Remove(remove...)
	}
	return changed, nil
}

// DeadNodeElimination removes nodes not reachable from any declared
// output.
type DeadNodeElimination struct{}

// Name implements Pass.
func (DeadNodeElimination) Name() string { return "dead-node-elimination" }

// Apply implements Pass.
func (DeadNodeElimination) Apply(g *nn.Graph) (bool, error) {
	live := make(map[string]bool, len(g.Nodes))
	var mark func(name string)
	mark = func(name string) {
		if live[name] {
			return
		}
		live[name] = true
		if n := g.Node(name); n != nil {
			for _, in := range n.Inputs {
				mark(in)
			}
		}
	}
	for _, out := range g.Outputs {
		mark(out)
	}
	var remove []string
	for _, n := range g.Nodes {
		if !live[n.Name] {
			remove = append(remove, n.Name)
		}
	}
	if len(remove) == 0 {
		return false, nil
	}
	g.Remove(remove...)
	return true, nil
}

// rewire makes every consumer of `from` consume `to` instead, and fixes
// declared outputs.
func rewire(g *nn.Graph, from, to string) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == from {
				n.Inputs[i] = to
			}
		}
	}
	for i, out := range g.Outputs {
		if out == from {
			g.Outputs[i] = to
		}
	}
}

func isOutput(g *nn.Graph, name string) bool {
	for _, out := range g.Outputs {
		if out == name {
			return true
		}
	}
	return false
}

// StandardPasses returns the default deployment pipeline: identity
// removal, batch-norm folding and dead-node elimination.
func StandardPasses() []Pass {
	return []Pass{RemoveIdentity{}, FoldBatchNorm{}, DeadNodeElimination{}}
}
