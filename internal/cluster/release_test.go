package cluster

import (
	"crypto/ed25519"
	"crypto/rand"
	"os"
	"testing"

	"vedliot/internal/artifact"
	"vedliot/internal/release"
)

// releaseChannel is a complete gated channel for tests: signer, log,
// one witness, the policy trusting exactly them, and a publisher.
type releaseChannel struct {
	signer  *release.Signer
	log     *release.Log
	witness *release.Witness
	policy  *release.Policy
	pub     *release.Publisher
}

func newReleaseChannel(t *testing.T) *releaseChannel {
	t.Helper()
	s, err := release.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	_, logKey, err := release.GenerateLogKey()
	if err != nil {
		t.Fatal(err)
	}
	l := release.NewLog("test/cluster", logKey)
	w, err := release.GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	return &releaseChannel{
		signer:  s,
		log:     l,
		witness: w,
		policy: &release.Policy{
			Signers:      []ed25519.PublicKey{s.Public()},
			LogPub:       l.Public(),
			Witnesses:    []ed25519.PublicKey{w.Public()},
			MinWitnesses: 1,
		},
		pub: &release.Publisher{Signer: s, Log: l, Witnesses: []*release.Witness{w}, Tool: "test"},
	}
}

// exportAndPublish exports the gesture model, publishes its bytes
// through the channel, and returns the loaded model plus its bundle.
func exportAndPublish(t *testing.T, ch *releaseChannel) (*artifact.Model, *release.Bundle) {
	t.Helper()
	path, _, _ := exportGesture(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := artifact.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ch.pub.Publish(data, m.Graph.Name)
	if err != nil {
		t.Fatal(err)
	}
	return m, b
}

// TestGatedRegistryRefusesUnsigned pins the first acceptance-criteria
// refusal: with a non-empty policy, an artifact without any release
// bundle never enters the registry, and one smuggled in before the
// policy landed never reaches a replica.
func TestGatedRegistryRefusesUnsigned(t *testing.T) {
	ch := newReleaseChannel(t)
	path, g, _ := exportGesture(t, false)

	reg := NewRegistry()
	reg.SetPolicy(ch.policy)
	if _, err := reg.LoadFile(path); err == nil {
		t.Fatal("gated registry accepted an unsigned artifact via LoadFile")
	}
	m, err := artifact.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(m); err == nil {
		t.Fatal("gated registry accepted an unsigned artifact via Add")
	}
	if err := reg.AddRelease(m, nil); err == nil {
		t.Fatal("gated registry accepted a nil bundle")
	}

	// The deploy-time gate: register first, tighten the policy after —
	// DeployArtifact must still refuse.
	late := NewRegistry()
	if err := late.Add(m); err != nil {
		t.Fatal(err)
	}
	late.SetPolicy(ch.policy)
	sched := NewScheduler(urecsFleet(t), Config{Registry: late})
	defer sched.Close()
	if _, err := sched.DeployArtifact(g.Name); err == nil {
		t.Fatal("scheduler deployed an unsigned artifact past a late policy")
	}
}

// TestGatedRegistryRefusesSignedButUnlogged pins the second refusal: a
// valid signature without a transparency-log inclusion proof is not a
// release.
func TestGatedRegistryRefusesSignedButUnlogged(t *testing.T) {
	ch := newReleaseChannel(t)
	path, _, _ := exportGesture(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := artifact.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	env := ch.signer.SignBytes(data, m.Graph.Name, "test")
	unlogged := &release.Bundle{Envelope: env}

	reg := NewRegistry()
	reg.SetPolicy(ch.policy)
	if err := reg.AddRelease(m, unlogged); err == nil {
		t.Fatal("gated registry accepted a signed-but-unlogged bundle")
	}
}

// TestGatedRegistryRefusesUnwitnessed pins the third refusal: log
// inclusion without the witness quorum is a split-view risk, not a
// release.
func TestGatedRegistryRefusesUnwitnessed(t *testing.T) {
	ch := newReleaseChannel(t)
	m, b := exportAndPublish(t, ch)
	stripped := *b.Checkpoint
	stripped.Witness = nil
	unwitnessed := &release.Bundle{
		Envelope:       b.Envelope,
		LeafIndex:      b.LeafIndex,
		InclusionProof: b.InclusionProof,
		Checkpoint:     &stripped,
	}

	reg := NewRegistry()
	reg.SetPolicy(ch.policy)
	if err := reg.AddRelease(m, unwitnessed); err == nil {
		t.Fatal("gated registry accepted an unwitnessed checkpoint")
	}
	if err := reg.AddRelease(m, b); err != nil {
		t.Fatalf("fully witnessed bundle refused: %v", err)
	}
	// Deploy-time re-verification with a quorum the bundle cannot meet.
	strict := *ch.policy
	strict.MinWitnesses = 2
	reg.SetPolicy(&strict)
	sched := NewScheduler(urecsFleet(t), Config{Registry: reg})
	defer sched.Close()
	if _, err := sched.DeployArtifact(m.Graph.Name); err == nil {
		t.Fatal("scheduler deployed past an unmet witness quorum")
	}
}

// TestGatedDeployAndAttest is the end-to-end happy path: a published
// artifact passes the gate, deploys, serves, and every replica proves
// via attestation that it runs exactly the authorized digest.
func TestGatedDeployAndAttest(t *testing.T) {
	ch := newReleaseChannel(t)
	m, b := exportAndPublish(t, ch)

	reg := NewRegistry()
	reg.SetPolicy(ch.policy)
	if err := reg.AddRelease(m, b); err != nil {
		t.Fatal(err)
	}
	if got := reg.Bundle(m.Digest); got != b {
		t.Fatal("registered bundle not retrievable by digest")
	}
	sched := NewScheduler(urecsFleet(t), Config{Registry: reg})
	defer sched.Close()
	dep, err := sched.DeployArtifact(m.Graph.Name)
	if err != nil {
		t.Fatal(err)
	}
	if dep.ArtifactDigest() != m.Digest {
		t.Fatalf("deployment digest %s, want %s", dep.ArtifactDigest(), m.Digest)
	}
	if _, err := sched.InferSingle(m.Graph.Name, gestureInput(1)); err != nil {
		t.Fatal(err)
	}

	platformPub, platformKey, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("challenge-nonce")
	atts, err := dep.Attest(nonce, platformKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(atts) != len(dep.Replicas()) {
		t.Fatalf("%d attestations for %d replicas", len(atts), len(dep.Replicas()))
	}
	for _, a := range atts {
		if err := VerifyReplicaAttestation(a, platformPub, m.Digest, nonce); err != nil {
			t.Fatal(err)
		}
		if a.EcallOverheadNS <= 0 {
			t.Fatal("attestation accounted no enclave transition overhead")
		}
	}

	// Negative attestation checks: wrong digest, replayed nonce, forged
	// platform key.
	a := atts[0]
	if err := VerifyReplicaAttestation(a, platformPub, "sha256:other", nonce); err == nil {
		t.Fatal("attestation verified against a different digest")
	}
	if err := VerifyReplicaAttestation(a, platformPub, m.Digest, []byte("stale")); err == nil {
		t.Fatal("attestation verified against a different nonce")
	}
	roguePub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReplicaAttestation(a, roguePub, m.Digest, nonce); err == nil {
		t.Fatal("attestation verified under a foreign platform key")
	}
	// Module swap: the measurement binds the hosting module too.
	swapped := a
	swapped.Module = "some-other-module"
	if err := VerifyReplicaAttestation(swapped, platformPub, m.Digest, nonce); err == nil {
		t.Fatal("attestation verified after a module swap")
	}
}

// TestInProcessDeployDoesNotAttest pins the boundary: only artifact
// deployments carry enclaves and attest.
func TestInProcessDeployDoesNotAttest(t *testing.T) {
	g := gestureModel()
	sched := NewScheduler(urecsFleet(t), Config{})
	defer sched.Close()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	if dep.ArtifactDigest() != "" {
		t.Fatal("in-process deployment claims an artifact digest")
	}
	for _, r := range dep.Replicas() {
		if r.Enclave() != nil {
			t.Fatal("in-process replica carries an enclave")
		}
	}
	if _, err := dep.Attest([]byte("n"), nil); err == nil {
		t.Fatal("in-process deployment attested")
	}
}
