package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Trace is a synthetic open-loop arrival process: request arrival
// offsets from the start of the replay, sorted ascending. Open-loop
// means arrivals do not wait for completions — the load a fleet sees
// from independent clients, and the regime where queueing (not
// per-request latency) dominates.
type Trace struct {
	Arrivals []time.Duration
}

// OpenLoopTrace builds a deterministic pseudo-Poisson trace: n arrivals
// at the given mean rate (requests/second) with exponential
// inter-arrival gaps drawn from the seed.
func OpenLoopTrace(n int, rate float64, seed int64) Trace {
	if n <= 0 || rate <= 0 {
		return Trace{}
	}
	rng := rand.New(rand.NewSource(seed))
	mean := float64(time.Second) / rate
	var t time.Duration
	arrivals := make([]time.Duration, n)
	for i := range arrivals {
		t += time.Duration(rng.ExpFloat64() * mean)
		arrivals[i] = t
	}
	return Trace{Arrivals: arrivals}
}

// Duration returns the trace's span (last arrival offset).
func (tr Trace) Duration() time.Duration {
	if len(tr.Arrivals) == 0 {
		return 0
	}
	return tr.Arrivals[len(tr.Arrivals)-1]
}

// SimReplica is one fleet member in the analytic trace simulation: a
// fixed per-request service time plus the module power envelope.
type SimReplica struct {
	Name    string
	Service time.Duration
	// PerItem is the marginal cost of each extra sample in a coalesced
	// batch: a batch of n serves in Service + (n-1)*PerItem. Zero means
	// the replica gains nothing from batching (a batch of n costs
	// n*Service), which is the right model for an engine that would
	// just loop.
	PerItem time.Duration
	IdleW   float64
	MaxW    float64
}

// batchService is the virtual-time cost of serving n coalesced samples.
func (f SimReplica) batchService(n int) time.Duration {
	if n <= 1 {
		return f.Service
	}
	if f.PerItem > 0 {
		return f.Service + time.Duration(n-1)*f.PerItem
	}
	return time.Duration(n) * f.Service
}

// SimFleet derives the simulation view of a live deployment: each
// replica's current service estimate (roofline prediction or observed
// EWMA) and its module power envelope.
func SimFleet(d *Deployment) []SimReplica {
	fleet := make([]SimReplica, 0, len(d.replicas))
	for _, r := range d.replicas {
		fleet = append(fleet, SimReplica{
			Name:    fmt.Sprintf("%d:%s", r.slot, r.module),
			Service: r.ServiceEstimate(),
			IdleW:   r.idleW,
			MaxW:    r.maxW,
		})
	}
	return fleet
}

// SimReplicaResult is one replica's share of a simulated replay.
type SimReplicaResult struct {
	Name   string
	Served int
	// Busy is the fraction of the makespan the replica spent serving.
	Busy float64
}

// SimResult is the outcome of one simulated trace replay.
type SimResult struct {
	Requests int
	// Makespan spans the first arrival to the last completion.
	Makespan time.Duration
	// Throughput is completed requests per second of makespan.
	Throughput float64
	Latency    LatencySummary
	// EnergyJ integrates the fleet power model over the makespan:
	// idle power throughout plus the dynamic span while serving.
	EnergyJ    float64
	PerReplica []SimReplicaResult
}

// SimulateTrace replays the trace against an analytic fleet model with
// the scheduler's routing rule (earliest estimated completion, power
// tie-break) in virtual time. The simulation is exact for fixed service
// times, machine-independent and instantaneous, so throughput-scaling
// claims do not depend on the host the harness happens to run on.
func SimulateTrace(fleet []SimReplica, tr Trace) (SimResult, error) {
	if len(fleet) == 0 {
		return SimResult{}, fmt.Errorf("cluster: simulate: empty fleet")
	}
	for _, f := range fleet {
		if f.Service <= 0 {
			return SimResult{}, fmt.Errorf("cluster: simulate: replica %s has no service time", f.Name)
		}
	}
	freeAt := make([]time.Duration, len(fleet))
	busy := make([]time.Duration, len(fleet))
	served := make([]int, len(fleet))
	lats := make([]time.Duration, 0, len(tr.Arrivals))
	var makespan time.Duration
	for _, t := range tr.Arrivals {
		best, bestComp := -1, time.Duration(0)
		for j, f := range fleet {
			start := t
			if freeAt[j] > start {
				start = freeAt[j]
			}
			comp := start + f.Service
			switch {
			case best < 0 || float64(comp) < 0.98*float64(bestComp):
				best, bestComp = j, comp
			case float64(comp) <= 1.02*float64(bestComp) && f.MaxW < fleet[best].MaxW:
				best, bestComp = j, comp
			}
		}
		freeAt[best] = bestComp
		busy[best] += fleet[best].Service
		served[best]++
		lats = append(lats, bestComp-t)
		if bestComp > makespan {
			makespan = bestComp
		}
	}
	res := SimResult{
		Requests: len(tr.Arrivals),
		Makespan: makespan,
		Latency:  Summarize(lats),
	}
	if makespan > 0 {
		res.Throughput = float64(len(tr.Arrivals)) / makespan.Seconds()
	}
	for j, f := range fleet {
		frac := 0.0
		if makespan > 0 {
			frac = float64(busy[j]) / float64(makespan)
		}
		res.PerReplica = append(res.PerReplica, SimReplicaResult{Name: f.Name, Served: served[j], Busy: frac})
		res.EnergyJ += f.IdleW*makespan.Seconds() + (f.MaxW-f.IdleW)*busy[j].Seconds()
	}
	return res, nil
}

// LatencySummary condenses a latency sample.
type LatencySummary struct {
	Count                     int
	Mean, P50, P95, P99, P999 time.Duration
	Max                       time.Duration
}

// Summarize computes the latency summary of a sample (order-agnostic).
func Summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) time.Duration {
		return sorted[int(q*float64(len(sorted)-1))]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pick(0.5),
		P95:   pick(0.95),
		P99:   pick(0.99),
		P999:  pick(0.999),
		Max:   sorted[len(sorted)-1],
	}
}

// ClosedLoopConfig shapes a closed-loop simulation: a population of
// clients that each wait for a response (or a shed) before thinking and
// issuing the next request. Closed loops self-throttle — offered load
// adapts to fleet latency — which is the regime real user populations
// live in and the one where adaptive batching pays.
type ClosedLoopConfig struct {
	// Clients is the simulated population size.
	Clients int
	// RequestsPerClient is how many requests each client issues.
	RequestsPerClient int
	// Think is the mean think time between a client's response and its
	// next request (exponential, seeded).
	Think time.Duration
	// SLO is the per-request latency objective; responses above it (and
	// every shed request) count as violations. Zero disables the check
	// for completed requests; sheds always violate.
	SLO time.Duration
	// MaxBatch bounds how many queued requests a freed replica coalesces
	// into one batch. Values below 1 mean no coalescing (batch of 1).
	MaxBatch int
	// QueueCap bounds the shared waiting queue; arrivals beyond it are
	// shed. Zero means unbounded (no shedding).
	QueueCap int
	// Seed drives the think-time and stagger draws.
	Seed int64
}

// ClosedLoopResult is the outcome of one closed-loop simulation.
type ClosedLoopResult struct {
	Requests  int
	Completed int
	// Shed counts arrivals dropped at the full waiting queue.
	Shed       int
	Makespan   time.Duration
	Throughput float64
	// Latency summarizes completed requests only (sheds fail fast).
	Latency LatencySummary
	// SLOViolations counts completed requests over the SLO plus every
	// shed request.
	SLOViolations    int
	SLOViolationRate float64
	// Batches and MeanBatch describe coalescing: dispatched batches and
	// the mean samples per batch.
	Batches   int
	MeanBatch float64
}

// cloopEvent is one pending event in the closed-loop virtual clock:
// a client issuing a request (client >= 0) or a replica completing a
// batch (replica >= 0).
type cloopEvent struct {
	at      time.Duration
	seq     int64
	client  int
	replica int
}

// cloopHeap is a plain binary min-heap over (at, seq) — seq breaks
// time ties deterministically so identical seeds replay identically.
type cloopHeap []cloopEvent

func (h *cloopHeap) push(e cloopEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].less((*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *cloopHeap) pop() cloopEvent {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l <= last-1 && (*h)[l].less((*h)[small]) {
			small = l
		}
		if r <= last-1 && (*h)[r].less((*h)[small]) {
			small = r
		}
		if small == i {
			return top
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
}

func (e cloopEvent) less(o cloopEvent) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// cloopPending is one request waiting for a replica.
type cloopPending struct {
	client  int
	arrival time.Duration
}

// SimulateClosedLoop runs a closed-loop population against the analytic
// fleet in virtual time: free replicas serve arrivals immediately, busy
// fleets queue them (FIFO, bounded by QueueCap), and a freed replica
// coalesces up to MaxBatch queued requests into one batch priced by the
// replica's Service/PerItem model. Deterministic for a given seed and
// machine-independent, so million-client populations simulate in
// seconds and tail-latency claims do not depend on the harness host.
func SimulateClosedLoop(fleet []SimReplica, cfg ClosedLoopConfig) (ClosedLoopResult, error) {
	if len(fleet) == 0 {
		return ClosedLoopResult{}, fmt.Errorf("cluster: closed loop: empty fleet")
	}
	for _, f := range fleet {
		if f.Service <= 0 {
			return ClosedLoopResult{}, fmt.Errorf("cluster: closed loop: replica %s has no service time", f.Name)
		}
	}
	if cfg.Clients <= 0 || cfg.RequestsPerClient <= 0 {
		return ClosedLoopResult{}, fmt.Errorf("cluster: closed loop: need clients and requests per client")
	}
	if cfg.Think <= 0 {
		return ClosedLoopResult{}, fmt.Errorf("cluster: closed loop: need a positive think time")
	}
	maxBatch := cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	remaining := make([]int, cfg.Clients)
	for i := range remaining {
		remaining[i] = cfg.RequestsPerClient
	}
	busy := make([]bool, len(fleet))
	batches := make([][]cloopPending, len(fleet))
	var queue []cloopPending
	var qhead int

	var heap cloopHeap
	var seq int64
	schedule := func(at time.Duration, client, replica int) {
		heap.push(cloopEvent{at: at, seq: seq, client: client, replica: replica})
		seq++
	}
	// Stagger first arrivals uniformly over one think interval so the
	// population does not arrive as a single synchronized spike.
	for c := 0; c < cfg.Clients; c++ {
		schedule(time.Duration(rng.Float64()*float64(cfg.Think)), c, -1)
	}

	res := ClosedLoopResult{Requests: cfg.Clients * cfg.RequestsPerClient}
	lats := make([]time.Duration, 0, res.Requests)
	var batchItems int

	// next schedules a client's follow-up request after a think pause.
	next := func(c int, now time.Duration) {
		if remaining[c] > 0 {
			schedule(now+time.Duration(rng.ExpFloat64()*float64(cfg.Think)), c, -1)
		}
	}
	// start dispatches a batch on a free replica.
	start := func(j int, batch []cloopPending, now time.Duration) {
		busy[j] = true
		batches[j] = batch
		res.Batches++
		batchItems += len(batch)
		schedule(now+fleet[j].batchService(len(batch)), -1, j)
	}
	// freeReplica picks the cheapest idle replica (power tie-break).
	freeReplica := func() int {
		best := -1
		for j := range fleet {
			if busy[j] {
				continue
			}
			if best < 0 || fleet[j].Service < fleet[best].Service ||
				(fleet[j].Service == fleet[best].Service && fleet[j].MaxW < fleet[best].MaxW) {
				best = j
			}
		}
		return best
	}

	for len(heap) > 0 {
		ev := heap.pop()
		if ev.at > res.Makespan {
			res.Makespan = ev.at
		}
		if ev.client >= 0 {
			// A client issues one request.
			remaining[ev.client]--
			req := cloopPending{client: ev.client, arrival: ev.at}
			if j := freeReplica(); j >= 0 {
				start(j, []cloopPending{req}, ev.at)
			} else if cfg.QueueCap <= 0 || len(queue)-qhead < cfg.QueueCap {
				queue = append(queue, req)
			} else {
				res.Shed++
				res.SLOViolations++
				next(ev.client, ev.at)
			}
			continue
		}
		// A replica completes its batch.
		j := ev.replica
		for _, req := range batches[j] {
			lat := ev.at - req.arrival
			lats = append(lats, lat)
			res.Completed++
			if cfg.SLO > 0 && lat > cfg.SLO {
				res.SLOViolations++
			}
			next(req.client, ev.at)
		}
		batches[j] = nil
		busy[j] = false
		if n := len(queue) - qhead; n > 0 {
			if n > maxBatch {
				n = maxBatch
			}
			batch := append([]cloopPending(nil), queue[qhead:qhead+n]...)
			qhead += n
			if qhead == len(queue) {
				queue, qhead = queue[:0], 0
			}
			start(j, batch, ev.at)
		}
	}

	res.Latency = Summarize(lats)
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / res.Makespan.Seconds()
	}
	if res.Requests > 0 {
		res.SLOViolationRate = float64(res.SLOViolations) / float64(res.Requests)
	}
	if res.Batches > 0 {
		res.MeanBatch = float64(batchItems) / float64(res.Batches)
	}
	return res, nil
}
