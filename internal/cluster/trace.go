package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Trace is a synthetic open-loop arrival process: request arrival
// offsets from the start of the replay, sorted ascending. Open-loop
// means arrivals do not wait for completions — the load a fleet sees
// from independent clients, and the regime where queueing (not
// per-request latency) dominates.
type Trace struct {
	Arrivals []time.Duration
}

// OpenLoopTrace builds a deterministic pseudo-Poisson trace: n arrivals
// at the given mean rate (requests/second) with exponential
// inter-arrival gaps drawn from the seed.
func OpenLoopTrace(n int, rate float64, seed int64) Trace {
	if n <= 0 || rate <= 0 {
		return Trace{}
	}
	rng := rand.New(rand.NewSource(seed))
	mean := float64(time.Second) / rate
	var t time.Duration
	arrivals := make([]time.Duration, n)
	for i := range arrivals {
		t += time.Duration(rng.ExpFloat64() * mean)
		arrivals[i] = t
	}
	return Trace{Arrivals: arrivals}
}

// Duration returns the trace's span (last arrival offset).
func (tr Trace) Duration() time.Duration {
	if len(tr.Arrivals) == 0 {
		return 0
	}
	return tr.Arrivals[len(tr.Arrivals)-1]
}

// SimReplica is one fleet member in the analytic trace simulation: a
// fixed per-request service time plus the module power envelope.
type SimReplica struct {
	Name    string
	Service time.Duration
	IdleW   float64
	MaxW    float64
}

// SimFleet derives the simulation view of a live deployment: each
// replica's current service estimate (roofline prediction or observed
// EWMA) and its module power envelope.
func SimFleet(d *Deployment) []SimReplica {
	fleet := make([]SimReplica, 0, len(d.replicas))
	for _, r := range d.replicas {
		fleet = append(fleet, SimReplica{
			Name:    fmt.Sprintf("%d:%s", r.slot, r.module),
			Service: r.ServiceEstimate(),
			IdleW:   r.idleW,
			MaxW:    r.maxW,
		})
	}
	return fleet
}

// SimReplicaResult is one replica's share of a simulated replay.
type SimReplicaResult struct {
	Name   string
	Served int
	// Busy is the fraction of the makespan the replica spent serving.
	Busy float64
}

// SimResult is the outcome of one simulated trace replay.
type SimResult struct {
	Requests int
	// Makespan spans the first arrival to the last completion.
	Makespan time.Duration
	// Throughput is completed requests per second of makespan.
	Throughput float64
	Latency    LatencySummary
	// EnergyJ integrates the fleet power model over the makespan:
	// idle power throughout plus the dynamic span while serving.
	EnergyJ    float64
	PerReplica []SimReplicaResult
}

// SimulateTrace replays the trace against an analytic fleet model with
// the scheduler's routing rule (earliest estimated completion, power
// tie-break) in virtual time. The simulation is exact for fixed service
// times, machine-independent and instantaneous, so throughput-scaling
// claims do not depend on the host the harness happens to run on.
func SimulateTrace(fleet []SimReplica, tr Trace) (SimResult, error) {
	if len(fleet) == 0 {
		return SimResult{}, fmt.Errorf("cluster: simulate: empty fleet")
	}
	for _, f := range fleet {
		if f.Service <= 0 {
			return SimResult{}, fmt.Errorf("cluster: simulate: replica %s has no service time", f.Name)
		}
	}
	freeAt := make([]time.Duration, len(fleet))
	busy := make([]time.Duration, len(fleet))
	served := make([]int, len(fleet))
	lats := make([]time.Duration, 0, len(tr.Arrivals))
	var makespan time.Duration
	for _, t := range tr.Arrivals {
		best, bestComp := -1, time.Duration(0)
		for j, f := range fleet {
			start := t
			if freeAt[j] > start {
				start = freeAt[j]
			}
			comp := start + f.Service
			switch {
			case best < 0 || float64(comp) < 0.98*float64(bestComp):
				best, bestComp = j, comp
			case float64(comp) <= 1.02*float64(bestComp) && f.MaxW < fleet[best].MaxW:
				best, bestComp = j, comp
			}
		}
		freeAt[best] = bestComp
		busy[best] += fleet[best].Service
		served[best]++
		lats = append(lats, bestComp-t)
		if bestComp > makespan {
			makespan = bestComp
		}
	}
	res := SimResult{
		Requests: len(tr.Arrivals),
		Makespan: makespan,
		Latency:  Summarize(lats),
	}
	if makespan > 0 {
		res.Throughput = float64(len(tr.Arrivals)) / makespan.Seconds()
	}
	for j, f := range fleet {
		frac := 0.0
		if makespan > 0 {
			frac = float64(busy[j]) / float64(makespan)
		}
		res.PerReplica = append(res.PerReplica, SimReplicaResult{Name: f.Name, Served: served[j], Busy: frac})
		res.EnergyJ += f.IdleW*makespan.Seconds() + (f.MaxW-f.IdleW)*busy[j].Seconds()
	}
	return res, nil
}

// LatencySummary condenses a latency sample.
type LatencySummary struct {
	Count          int
	Mean, P50, P95 time.Duration
	Max            time.Duration
}

// Summarize computes the latency summary of a sample (order-agnostic).
func Summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) time.Duration {
		return sorted[int(q*float64(len(sorted)-1))]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pick(0.5),
		P95:   pick(0.95),
		Max:   sorted[len(sorted)-1],
	}
}
