// Package cluster is the fleet-serving layer: it places model replicas
// onto the heterogeneous compute modules mounted in a RECS chassis
// (§II-A) and routes traffic across them. One replica is one
// backend-generic microserver.Server — the host CPU engine for plain
// compute modules, a Device-backed accel.Backend for modules that name
// an accelerator — so the whole fleet is driven through the single
// inference.Backend/Executable pair, the cluster-level extension of the
// paper's cross-accelerator methodology.
//
// A Scheduler owns one admission queue per deployed model. Requests
// enter through blocking Infer or asynchronous Submit/Wait, and a
// router assigns each to the replica with the lowest estimated
// completion cost: the backend's roofline-predicted latency (or an
// observed EWMA for backends without a device model) scaled by the
// replica's current queue depth, with a power-aware tie-break from the
// chassis module power envelope.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/artifact"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/rvbackend"
	"vedliot/internal/tee"
	"vedliot/internal/tensor"
)

// latencyModel is the cost-signal contract executables may implement:
// both accel.Program (roofline model) and rvbackend.Program (measured
// cycles) satisfy it.
type latencyModel interface {
	PredictLatency(batch int) (time.Duration, error)
}

// Errors returned by the admission path.
var (
	// ErrOverloaded reports a full admission queue: the request was
	// shed, not queued.
	ErrOverloaded = errors.New("cluster: admission queue full")
	// ErrClosed reports a scheduler or deployment that has shut down.
	ErrClosed = errors.New("cluster: scheduler closed")
)

// Config tunes the fleet scheduler.
type Config struct {
	// QueueDepth is the per-model admission queue capacity (default 64).
	// Submit sheds load with ErrOverloaded once it is full.
	QueueDepth int
	// Serve configures each replica's batching server.
	Serve microserver.ServeConfig
	// EmulateLatency stretches every accelerator-backed request to its
	// roofline-predicted latency (functional execution on the host is
	// usually faster than the model), so trace replays exhibit the
	// modeled heterogeneity. Off by default; drivers and demos turn it
	// on, tests keep wall time.
	EmulateLatency bool
	// Schema is the activation calibration artifact for native INT8
	// serving: INT8-capable accelerator modules then execute on the
	// quantized engine instead of the FP32 one. Nil keeps every replica
	// on the FP32 functional path (bit-exact across the fleet).
	Schema *nn.QuantSchema
	// Registry supplies deployment artifacts and the fleet-wide
	// compiled-plan cache for DeployArtifact. Nil schedulers can still
	// Deploy in-process graphs; artifact deployment requires one.
	Registry *Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Scheduler serves model fleets on one chassis. Deploy places a model
// on the powered compute modules; Infer/Submit route requests across
// the resulting replicas.
type Scheduler struct {
	chassis *microserver.Chassis
	cfg     Config

	mu          sync.Mutex
	deployments map[string]*Deployment
	closed      bool
}

// NewScheduler wraps a populated chassis. The chassis is not mutated;
// power gating and module exchange stay with the platform layer.
func NewScheduler(c *microserver.Chassis, cfg Config) *Scheduler {
	return &Scheduler{chassis: c, cfg: cfg.withDefaults(), deployments: make(map[string]*Deployment)}
}

// Chassis returns the underlying platform.
func (s *Scheduler) Chassis() *microserver.Chassis { return s.chassis }

// BackendForModule resolves the inference backend a module serves with:
// the host CPU engine for plain compute modules, a Device-backed
// accelerator backend when the module names an accel device model, and
// the cycle-accurate RISC-V SoC backend when the module names an
// emulated SoC. A non-nil schema puts INT8-precision accelerator
// modules on the native quantized engine (the INT8-only EdgeTPU-class
// devices in particular), mirroring how a real fleet deploys the
// calibrated model; SoC modules execute INT8 firmware only and refuse
// to deploy without one.
func BackendForModule(m *microserver.Module, schema *nn.QuantSchema) (inference.Backend, error) {
	if m.SoC != "" {
		if schema == nil {
			return nil, fmt.Errorf("cluster: module %s: SoC %q serves INT8 firmware only; deploy with a calibration schema",
				m.Name, m.SoC)
		}
		switch m.SoC {
		case "vexriscv-cfu":
			return rvbackend.Backend{Schema: schema}, nil
		case "vexriscv":
			return rvbackend.Backend{Schema: schema, NoCFU: true}, nil
		default:
			return nil, fmt.Errorf("cluster: module %s: unknown SoC %q", m.Name, m.SoC)
		}
	}
	if m.Accelerator == "" {
		return inference.CPUBackend{}, nil
	}
	dev, err := accel.FindDevice(m.Accelerator)
	if err != nil {
		return nil, fmt.Errorf("cluster: module %s: %w", m.Name, err)
	}
	b := accel.NewBackend(dev)
	if schema != nil && b.Precision == tensor.INT8 {
		b.Schema = schema
	}
	return b, nil
}

// Deploy places the model on every powered slot of the chassis.
func (s *Scheduler) Deploy(g *nn.Graph) (*Deployment, error) {
	return s.DeployOn(g, s.poweredSlots()...)
}

// DeployArtifact places a registered deployment artifact on every
// powered slot of the chassis. Unlike Deploy, replicas share compiled
// plans through the registry's fleet-wide cache keyed by the
// artifact's content digest: each distinct (digest, backend, schema)
// lowers once, every further replica binds the cached plan. The
// artifact's embedded calibration schema drives INT8-capable modules;
// Config.Schema is the fallback for artifacts without one.
func (s *Scheduler) DeployArtifact(name string) (*Deployment, error) {
	return s.DeployArtifactOn(name, s.poweredSlots()...)
}

// DeployArtifactOn is DeployArtifact restricted to the given chassis
// slots. When the registry carries a non-empty release policy the
// artifact's release bundle is re-verified here, at deploy time — a
// policy installed or tightened after registration still keeps an
// unsigned, unlogged or unwitnessed artifact off every replica.
func (s *Scheduler) DeployArtifactOn(name string, slots ...int) (*Deployment, error) {
	reg := s.cfg.Registry
	if reg == nil {
		return nil, fmt.Errorf("cluster: deploy artifact %q: scheduler has no registry", name)
	}
	m, err := reg.Get(name)
	if err != nil {
		return nil, err
	}
	if err := reg.Authorize(m.Digest); err != nil {
		return nil, fmt.Errorf("cluster: deploy artifact %q: %w", name, err)
	}
	schema := m.Schema
	if schema == nil {
		schema = s.cfg.Schema
	}
	return s.deploy(m.Graph, schema, reg.Plans(), m.Digest, artifact.SchemaDigest(schema), slots)
}

// poweredSlots lists the chassis slots currently powered on.
func (s *Scheduler) poweredSlots() []int {
	var slots []int
	for _, slot := range s.chassis.Slots {
		if slot.Powered() {
			slots = append(slots, slot.Index)
		}
	}
	return slots
}

// DeployOn places the model on the given chassis slots, compiling it
// once per slot's backend and starting one replica server per slot.
// Every replica is probed with one warm-up inference, which verifies
// the backend end to end and seeds the observed-latency estimate.
func (s *Scheduler) DeployOn(g *nn.Graph, slots ...int) (*Deployment, error) {
	return s.deploy(g, s.cfg.Schema, nil, "", "", slots)
}

// deploy is the shared placement path: one replica server per slot,
// each compiled for its module's backend — directly for in-process
// graphs, or through the fleet-wide plan cache when deploying an
// artifact (plans non-nil, digest set).
func (s *Scheduler) deploy(g *nn.Graph, schema *nn.QuantSchema, plans *inference.PlanCache, digest, schemaDigest string, slots []int) (*Deployment, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("cluster: deploy %q: no slots", g.Name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := s.deployments[g.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: model %q already deployed", g.Name)
	}
	s.mu.Unlock()

	d := &Deployment{
		model:       g.Name,
		digest:      digest,
		inputNames:  append([]string(nil), g.Inputs...),
		outputNames: append([]string(nil), g.Outputs...),
		queue:       make(chan *Ticket, s.cfg.QueueDepth),
		quit:        make(chan struct{}),
		emulate:     s.cfg.EmulateLatency,
	}
	for _, idx := range slots {
		if idx < 0 || idx >= len(s.chassis.Slots) {
			d.closeReplicas()
			return nil, fmt.Errorf("cluster: %s has no slot %d", s.chassis.Name, idx)
		}
		slot := s.chassis.Slots[idx]
		mod := slot.Module()
		if mod == nil || !slot.Powered() {
			d.closeReplicas()
			return nil, fmt.Errorf("cluster: slot %d has no powered module", idx)
		}
		backend, err := BackendForModule(mod, schema)
		if err != nil {
			d.closeReplicas()
			return nil, err
		}
		var srv *microserver.Server
		if plans != nil {
			exe, _, cerr := plans.Compile(planKey(digest, backend, schemaDigest), backend, g, s.cfg.Serve.EngineOptions...)
			if cerr == nil {
				srv, err = microserver.ServeCompiled(g, exe, backend.Name(), s.cfg.Serve)
			} else {
				err = cerr
			}
		} else {
			srv, err = microserver.ServeBackend(g, backend, s.cfg.Serve)
		}
		if err != nil {
			d.closeReplicas()
			return nil, fmt.Errorf("cluster: slot %d (%s): %w", idx, mod.Name, err)
		}
		r := &Replica{
			id:     len(d.replicas),
			slot:   idx,
			module: mod.Name,
			server: srv,
			idleW:  mod.IdleW,
			maxW:   mod.MaxW,
		}
		if digest != "" {
			// Artifact deployments run inside a modeled enclave whose
			// measurement binds the replica's identity to the exact plan
			// it executes: artifact digest, backend, hosting module. The
			// attestation path (Deployment.Attest) quotes it.
			r.enclave = tee.NewEnclave(ReplicaImage(digest, backend.Name(), mod.Name), tee.SGXCosts())
		}
		// Any executable with a latency model feeds the router's cost
		// signal: roofline predictions from accel programs, measured
		// cycles-per-inference from SoC firmware.
		if p, ok := srv.Executable().(latencyModel); ok {
			if lat, err := p.PredictLatency(1); err == nil {
				r.modeled = lat
			}
		}
		d.replicas = append(d.replicas, r)
	}
	if err := d.warmup(g); err != nil {
		d.closeReplicas()
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		d.closeReplicas()
		return nil, ErrClosed
	}
	if _, dup := s.deployments[g.Name]; dup {
		d.closeReplicas()
		return nil, fmt.Errorf("cluster: model %q already deployed", g.Name)
	}
	s.deployments[g.Name] = d
	d.routerWG.Add(1)
	go d.route()
	return d, nil
}

// Deployment returns the fleet serving the named model. The empty name
// resolves when exactly one model is deployed.
func (s *Scheduler) Deployment(model string) (*Deployment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if model == "" {
		if len(s.deployments) == 1 {
			for _, d := range s.deployments {
				return d, nil
			}
		}
		return nil, fmt.Errorf("cluster: %d models deployed, name one", len(s.deployments))
	}
	d, ok := s.deployments[model]
	if !ok {
		return nil, fmt.Errorf("cluster: model %q not deployed", model)
	}
	return d, nil
}

// Models lists the deployed model names, sorted.
func (s *Scheduler) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.deployments))
	for name := range s.deployments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infer routes one request for the named model and blocks for the
// result.
func (s *Scheduler) Infer(model string, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return s.InferCtx(context.Background(), model, inputs)
}

// InferCtx is Infer bound to a caller context: the wait aborts when the
// context ends, and a request cancelled while still queued is dropped
// before it reaches a replica.
func (s *Scheduler) InferCtx(ctx context.Context, model string, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	d, err := s.Deployment(model)
	if err != nil {
		return nil, err
	}
	return d.InferCtx(ctx, inputs)
}

// InferSingle is the single-tensor shortcut for 1-in/1-out models.
func (s *Scheduler) InferSingle(model string, in *tensor.Tensor) (*tensor.Tensor, error) {
	d, err := s.Deployment(model)
	if err != nil {
		return nil, err
	}
	return d.InferSingle(in)
}

// Submit asynchronously admits one request for the named model.
func (s *Scheduler) Submit(model string, inputs map[string]*tensor.Tensor) (*Ticket, error) {
	return s.SubmitCtx(context.Background(), model, inputs)
}

// SubmitCtx is Submit bound to a caller context; see Deployment.SubmitCtx.
func (s *Scheduler) SubmitCtx(ctx context.Context, model string, inputs map[string]*tensor.Tensor) (*Ticket, error) {
	d, err := s.Deployment(model)
	if err != nil {
		return nil, err
	}
	return d.SubmitCtx(ctx, inputs)
}

// PowerW snapshots the chassis power draw implied by the fleet's
// current activity: a slot counts as fully utilized while any of its
// replicas has requests in flight.
func (s *Scheduler) PowerW() float64 {
	util := map[int]float64{}
	s.mu.Lock()
	for _, d := range s.deployments {
		for _, r := range d.replicas {
			if r.inflight.Load() > 0 {
				util[r.slot] = 1
			}
		}
	}
	s.mu.Unlock()
	return s.chassis.PowerW(util)
}

// Close shuts every deployment down: queued requests are failed,
// in-flight ones complete, replica servers are released.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ds := make([]*Deployment, 0, len(s.deployments))
	for _, d := range s.deployments {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	for _, d := range ds {
		d.close()
	}
}

// Deployment is one model's fleet: its replicas, admission queue and
// router.
type Deployment struct {
	model string
	// digest is the content digest of the artifact the fleet runs, empty
	// for in-process Deploy graphs. It is the identity replica
	// attestation binds to the enclave measurement.
	digest      string
	inputNames  []string
	outputNames []string
	replicas    []*Replica
	emulate     bool

	queue    chan *Ticket
	quit     chan struct{}
	routerWG sync.WaitGroup
	reqWG    sync.WaitGroup

	// lifeMu serializes shutdown against admissions, mirroring the
	// microserver.Server pattern: Submit holds a read lock across its
	// enqueue so close cannot mark the deployment closed while a ticket
	// is between the closed-check and the queue.
	lifeMu sync.RWMutex
	closed bool

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
}

// Model returns the deployed model's name.
func (d *Deployment) Model() string { return d.model }

// ArtifactDigest returns the content digest of the artifact the fleet
// runs, empty for in-process Deploy graphs.
func (d *Deployment) ArtifactDigest() string { return d.digest }

// Replicas returns the fleet members in slot order.
func (d *Deployment) Replicas() []*Replica { return d.replicas }

// InputNames returns the model's input-node names (a copy).
func (d *Deployment) InputNames() []string { return append([]string(nil), d.inputNames...) }

// OutputNames returns the model's output-node names (a copy).
func (d *Deployment) OutputNames() []string { return append([]string(nil), d.outputNames...) }

// warmup probes every replica with one zero-input request, verifying
// the backend end to end and seeding the observed-latency EWMA. Input
// shapes are read from the input nodes' declared Attrs.Shape — never
// via InferShapes, which would write OutShape on every node of a graph
// that, on the DeployArtifact path, is registry-shared across
// schedulers (and read-only by the artifact contract).
func (d *Deployment) warmup(g *nn.Graph) error {
	inputs := make(map[string]*tensor.Tensor, len(d.inputNames))
	for _, name := range d.inputNames {
		n := g.Node(name)
		if n == nil {
			return fmt.Errorf("cluster: graph %q missing input node %q", g.Name, name)
		}
		per := n.Attrs.Shape
		if len(per) == 0 {
			return fmt.Errorf("cluster: graph %q input %q declares no shape", g.Name, name)
		}
		inputs[name] = tensor.New(tensor.FP32, append(tensor.Shape{1}, per...)...)
	}
	for _, r := range d.replicas {
		start := time.Now()
		if _, err := r.server.InferMap(inputs); err != nil {
			return fmt.Errorf("cluster: warmup replica %d (%s, %s): %w", r.id, r.module, r.Backend(), err)
		}
		r.observe(time.Since(start), nil)
	}
	return nil
}

// Submit admits one request without blocking for its result; the
// returned Ticket resolves through Wait. A full admission queue sheds
// the request with ErrOverloaded.
func (d *Deployment) Submit(inputs map[string]*tensor.Tensor) (*Ticket, error) {
	return d.SubmitCtx(context.Background(), inputs)
}

// SubmitCtx is Submit with the caller's context attached to the ticket:
// if the context ends while the request is still queued — in the
// admission queue or a replica's batch queue — the request resolves
// with the context error without consuming replica time. A request
// already running on an engine completes normally (dispatches are not
// preemptible); its result is simply discarded by the caller.
func (d *Deployment) SubmitCtx(ctx context.Context, inputs map[string]*tensor.Tensor) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.lifeMu.RLock()
	defer d.lifeMu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	tk := &Ticket{ctx: ctx, ins: inputs, done: make(chan struct{}), start: time.Now()}
	select {
	case d.queue <- tk:
		d.submitted.Add(1)
		return tk, nil
	default:
		d.rejected.Add(1)
		return nil, ErrOverloaded
	}
}

// Infer admits one request and blocks until its result is ready.
func (d *Deployment) Infer(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	tk, err := d.Submit(inputs)
	if err != nil {
		return nil, err
	}
	return tk.Wait()
}

// InferCtx is Infer bound to a caller context.
func (d *Deployment) InferCtx(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	tk, err := d.SubmitCtx(ctx, inputs)
	if err != nil {
		return nil, err
	}
	return tk.WaitCtx(ctx)
}

// InferSingle is the single-tensor shortcut for 1-in/1-out models.
func (d *Deployment) InferSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(d.inputNames) != 1 || len(d.outputNames) != 1 {
		return nil, fmt.Errorf("cluster: InferSingle wants 1 input/1 output, model %q has %d/%d",
			d.model, len(d.inputNames), len(d.outputNames))
	}
	outs, err := d.Infer(map[string]*tensor.Tensor{d.inputNames[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[d.outputNames[0]], nil
}

// route is the deployment's router: it drains the admission queue and
// dispatches every ticket to the cheapest replica.
func (d *Deployment) route() {
	defer d.routerWG.Done()
	for {
		// Once shutdown has begun, fail queued tickets instead of
		// dispatching them, keeping close prompt and deterministic.
		select {
		case <-d.quit:
			d.drain()
			return
		default:
		}
		select {
		case tk := <-d.queue:
			d.dispatch(tk)
		case <-d.quit:
			d.drain()
			return
		}
	}
}

// drain fails tickets that were still queued when shutdown began. They
// count as completed (with ErrClosed), preserving the Stats invariant
// submitted == completed + rejected.
func (d *Deployment) drain() {
	for {
		select {
		case tk := <-d.queue:
			tk.err = ErrClosed
			d.completed.Add(1)
			close(tk.done)
		default:
			return
		}
	}
}

// dispatch routes one ticket: cost-aware replica selection, a hand-off
// into the replica's batching queue (which blocks while the replica is
// saturated — node-level backpressure that in turn fills the admission
// queue and sheds load), then asynchronous completion.
func (d *Deployment) dispatch(tk *Ticket) {
	// A caller that vanished while the ticket sat in the admission
	// queue is dropped here, before it costs a replica anything.
	if err := tk.ctx.Err(); err != nil {
		tk.err = err
		d.cancelled.Add(1)
		d.completed.Add(1)
		close(tk.done)
		return
	}
	r := d.pick()
	depth := r.inflight.Add(1)
	rows := batchRows(tk.ins, d.inputNames)
	start := time.Now()
	pending, err := r.server.SubmitMapCtx(tk.ctx, tk.ins)
	if err != nil {
		r.inflight.Add(-1)
		r.observe(0, err)
		if tk.ctx.Err() != nil {
			d.cancelled.Add(1)
		}
		tk.err = err
		tk.replica = r
		d.completed.Add(1)
		close(tk.done)
		return
	}
	d.reqWG.Add(1)
	go func() {
		defer d.reqWG.Done()
		outs, err := pending.Wait()
		wall := time.Since(start)
		if d.emulate && err == nil && r.modeled > wall {
			time.Sleep(r.modeled - wall)
			wall = r.modeled
		}
		r.inflight.Add(-1)
		// Normalize the observation to per-sample service time: wall
		// time ≈ depth × service when requests ahead serialize, and a
		// coalesced ticket carries `rows` samples in one dispatch, so
		// the EWMA tracks per-sample service rather than congestion or
		// batch size — congestion is already priced into the routing
		// cost via the inflight factor, and the front door's adaptive
		// batching must not read as a slower replica.
		r.observe(perSampleWall(wall, depth, rows), err)
		if err != nil && tk.ctx.Err() != nil {
			d.cancelled.Add(1)
		}
		tk.outs, tk.err = outs, err
		tk.replica = r
		tk.latency = time.Since(tk.start)
		d.completed.Add(1)
		close(tk.done)
	}()
}

// batchRows reads the number of coalesced samples a request carries:
// the leading (batch) dimension of its first declared input.
func batchRows(ins map[string]*tensor.Tensor, inputNames []string) int64 {
	if len(inputNames) > 0 {
		if t := ins[inputNames[0]]; t != nil && len(t.Shape) > 0 && t.Shape[0] > 1 {
			return int64(t.Shape[0])
		}
	}
	return 1
}

// perSampleWall normalizes an observed wall time by the replica queue
// depth at submission and the number of samples the ticket carried.
func perSampleWall(wall time.Duration, depth, rows int64) time.Duration {
	if depth < 1 {
		depth = 1
	}
	if rows < 1 {
		rows = 1
	}
	return wall / time.Duration(depth*rows)
}

// pick returns the replica with the lowest estimated completion cost:
// per-request service estimate scaled by queue depth. Costs within 2%
// of each other are considered tied and resolved toward the lower
// worst-case module power — the chassis power model's tie-break.
func (d *Deployment) pick() *Replica {
	var best *Replica
	var bestCost float64
	for _, r := range d.replicas {
		c := float64(r.inflight.Load()+1) * float64(r.ServiceEstimate())
		switch {
		case best == nil || c < 0.98*bestCost:
			best, bestCost = r, c
		case c <= 1.02*bestCost && r.maxW < best.maxW:
			best, bestCost = r, c
		}
	}
	return best
}

// close shuts the deployment down: admissions stop, queued tickets
// fail, in-flight requests complete, replica servers are released.
func (d *Deployment) close() {
	d.lifeMu.Lock()
	if d.closed {
		d.lifeMu.Unlock()
		return
	}
	d.closed = true
	close(d.quit)
	d.lifeMu.Unlock()
	d.routerWG.Wait()
	d.reqWG.Wait()
	d.closeReplicas()
}

func (d *Deployment) closeReplicas() {
	for _, r := range d.replicas {
		r.server.Close()
	}
}

// Stats snapshots the deployment's routing telemetry.
func (d *Deployment) Stats() Stats {
	st := Stats{
		Model:     d.model,
		Submitted: d.submitted.Load(),
		Completed: d.completed.Load(),
		Rejected:  d.rejected.Load(),
		Cancelled: d.cancelled.Load(),
	}
	for _, r := range d.replicas {
		st.Replicas = append(st.Replicas, r.Stats())
	}
	return st
}

// Stats is a deployment's cumulative routing telemetry.
type Stats struct {
	Model     string
	Submitted int64
	Completed int64
	Rejected  int64
	// Cancelled counts admitted tickets whose caller context ended
	// before a replica ran them; they are a subset of Completed, so the
	// invariant Submitted == Completed + Rejected still holds.
	Cancelled int64
	Replicas  []ReplicaStats
}

// ReplicaTable renders the per-replica routing telemetry as aligned
// text lines (header first) — the table both the bench report and the
// vedliot-serve driver print.
func (s Stats) ReplicaTable() []string {
	lines := []string{fmt.Sprintf("%-6s %-18s %-20s %9s %12s %12s",
		"slot", "module", "backend", "served", "svc est", "maxW")}
	for _, rs := range s.Replicas {
		lines = append(lines, fmt.Sprintf("%-6d %-18s %-20s %9d %12v %10.1fW",
			rs.Slot, rs.Module, rs.Backend, rs.Served, rs.Estimate().Round(time.Microsecond), rs.MaxW))
	}
	return lines
}

// Ticket is one admitted request; Wait blocks for its result.
type Ticket struct {
	ctx     context.Context
	ins     map[string]*tensor.Tensor
	outs    map[string]*tensor.Tensor
	err     error
	done    chan struct{}
	start   time.Time
	latency time.Duration
	replica *Replica
}

// Wait blocks until the request resolves.
func (t *Ticket) Wait() (map[string]*tensor.Tensor, error) {
	<-t.done
	return t.outs, t.err
}

// WaitCtx is Wait that also aborts when the given context ends. An
// abort does not invalidate the ticket: if the request was submitted
// with a different (still-live) context it keeps its place in the
// queue, and a later Wait can still collect the result.
func (t *Ticket) WaitCtx(ctx context.Context) (map[string]*tensor.Tensor, error) {
	select {
	case <-t.done:
		return t.outs, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Latency returns the admission-to-completion latency; valid after
// Wait.
func (t *Ticket) Latency() time.Duration {
	<-t.done
	return t.latency
}

// Replica returns the fleet member that served the request; valid after
// Wait (nil for tickets failed by shutdown).
func (t *Ticket) Replica() *Replica {
	<-t.done
	return t.replica
}

// Replica is one fleet member: a backend-generic server bound to a
// chassis slot.
type Replica struct {
	id     int
	slot   int
	module string
	server *microserver.Server
	// modeled is the backend's roofline-predicted batch-1 latency, zero
	// when the backend has no device model (host CPU engine).
	modeled time.Duration
	idleW   float64
	maxW    float64
	// enclave is the replica's modeled trusted execution context, set
	// only on artifact deployments (its measurement binds the artifact
	// digest); nil for in-process Deploy graphs.
	enclave *tee.Enclave

	inflight atomic.Int64
	served   atomic.Int64
	failed   atomic.Int64
	shed     atomic.Int64
	// ewmaNS is the observed per-sample service-time EWMA in
	// nanoseconds. Only genuinely served requests feed it: shed and
	// cancelled requests carry queueing (not service) time and would
	// skew routing toward or away from a replica for the wrong reason.
	ewmaNS atomic.Int64
}

// ID returns the replica's index within its deployment.
func (r *Replica) ID() int { return r.id }

// Slot returns the chassis slot the replica is bound to.
func (r *Replica) Slot() int { return r.slot }

// Module names the compute module hosting the replica.
func (r *Replica) Module() string { return r.module }

// Backend names the inference backend the replica serves with.
func (r *Replica) Backend() string { return r.server.Backend() }

// Server exposes the replica's batching server.
func (r *Replica) Server() *microserver.Server { return r.server }

// Enclave exposes the replica's modeled trusted execution context, nil
// for in-process Deploy graphs (only artifact deployments attest).
func (r *Replica) Enclave() *tee.Enclave { return r.enclave }

// ModeledLatency returns the roofline-predicted batch-1 latency, zero
// for backends without a device model.
func (r *Replica) ModeledLatency() time.Duration { return r.modeled }

// ServiceEstimate is the per-request service time the router weighs:
// the roofline prediction when the backend has a device model,
// otherwise the observed EWMA (seeded by the deploy warm-up).
func (r *Replica) ServiceEstimate() time.Duration {
	if r.modeled > 0 {
		return r.modeled
	}
	if ewma := r.ewmaNS.Load(); ewma > 0 {
		return time.Duration(ewma)
	}
	return time.Millisecond
}

// isShed reports whether an error is load shedding or caller
// disappearance rather than a replica fault: such requests never ran,
// so they must stay out of both the failure count and the service-time
// EWMA the router weighs.
func isShed(err error) bool {
	return errors.Is(err, ErrOverloaded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// observe folds one completed request into the replica's telemetry.
// Only served requests update the EWMA: a shed or cancelled request
// measured queueing time, not service time, and folding it in would
// skew the routing estimate (the admission-accounting bug this guards
// against).
func (r *Replica) observe(wall time.Duration, err error) {
	switch {
	case err == nil:
	case isShed(err):
		r.shed.Add(1)
		return
	default:
		r.failed.Add(1)
		return
	}
	r.served.Add(1)
	for {
		old := r.ewmaNS.Load()
		next := int64(wall)
		if old > 0 {
			next = old + (int64(wall)-old)/4
		}
		if r.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// Stats snapshots the replica's telemetry.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		ID:       r.id,
		Slot:     r.slot,
		Module:   r.module,
		Backend:  r.Backend(),
		Served:   r.served.Load(),
		Failed:   r.failed.Load(),
		Shed:     r.shed.Load(),
		Inflight: r.inflight.Load(),
		Modeled:  r.modeled,
		Observed: time.Duration(r.ewmaNS.Load()),
		MaxW:     r.maxW,
	}
}

// ReplicaStats is one replica's telemetry snapshot.
type ReplicaStats struct {
	ID      int
	Slot    int
	Module  string
	Backend string
	Served  int64
	Failed  int64
	// Shed counts requests that reached this replica but were shed or
	// cancelled before running; excluded from Failed and from the EWMA.
	Shed     int64
	Inflight int64
	// Modeled is the roofline-predicted batch-1 latency (zero without a
	// device model); Observed is the measured per-request EWMA.
	Modeled  time.Duration
	Observed time.Duration
	MaxW     float64
}

// Estimate mirrors Replica.ServiceEstimate on the snapshot: the
// roofline prediction when a device model exists, the observed EWMA
// otherwise.
func (rs ReplicaStats) Estimate() time.Duration {
	if rs.Modeled > 0 {
		return rs.Modeled
	}
	return rs.Observed
}
