package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// urecsFleet builds the paper's far-edge chassis with a heterogeneous
// 3-module fleet: a plain ARM module (host CPU engine), a Jetson Xavier
// NX and a Coral SoM (two distinct accel device models).
func urecsFleet(t *testing.T) *microserver.Chassis {
	t.Helper()
	c := microserver.NewURECS()
	for slot, name := range []string{"SMARC ARM", "Jetson Xavier NX", "Coral SoM"} {
		m, err := microserver.FindModule(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(slot, m); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func gestureModel() *nn.Graph {
	return nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
}

func gestureInput(seed int) *tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32((i*3+seed*7)%17)/17 - 0.5
	}
	return in
}

func TestDeployHeterogeneousFleetParity(t *testing.T) {
	sched := NewScheduler(urecsFleet(t), Config{})
	defer sched.Close()
	g := gestureModel()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Replicas()) != 3 {
		t.Fatalf("deployed %d replicas, want 3", len(dep.Replicas()))
	}
	backends := map[string]bool{}
	for _, r := range dep.Replicas() {
		backends[r.Backend()] = true
	}
	for _, want := range []string{"cpu-engine", "accel:Xavier NX", "accel:EdgeTPU SoM"} {
		if !backends[want] {
			t.Errorf("fleet missing backend %s (have %v)", want, backends)
		}
	}
	// Warm-up exercised every backend end to end.
	for _, rs := range dep.Stats().Replicas {
		if rs.Served < 1 {
			t.Errorf("replica %d (%s) served %d requests after warmup, want >= 1", rs.ID, rs.Backend, rs.Served)
		}
	}
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 6; seed++ {
		in := gestureInput(seed)
		want, err := eng.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.InferSingle("", in)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Errorf("seed %d: fleet result diverges from reference engine by %g", seed, d)
		}
	}
}

func TestSubmitWaitAsync(t *testing.T) {
	sched := NewScheduler(urecsFleet(t), Config{QueueDepth: 128})
	defer sched.Close()
	g := gestureModel()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := gestureInput(1)
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := sched.Submit(g.Name, map[string]*tensor.Tensor{g.Inputs[0]: in})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		outs, err := tk.Wait()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if d, _ := tensor.MaxAbsDiff(want, outs[g.Outputs[0]]); d != 0 {
			t.Errorf("ticket %d diverges by %g", i, d)
		}
		if tk.Replica() == nil {
			t.Errorf("ticket %d resolved without a replica", i)
		}
		if tk.Latency() <= 0 {
			t.Errorf("ticket %d has no latency", i)
		}
	}
	st := dep.Stats()
	if st.Submitted != n {
		t.Errorf("submitted %d, want %d", st.Submitted, n)
	}
	if st.Completed != n {
		t.Errorf("completed %d, want %d", st.Completed, n)
	}
}

// TestAdmissionShedsWhenSaturated pins the admission-control path: with
// a single slow replica, a tiny replica queue and a tiny admission
// queue, an open-loop burst must shed some requests with ErrOverloaded
// while every admitted request still resolves.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	c := microserver.NewURECS()
	m, err := microserver.FindModule("SMARC ARM")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(0, m); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(c, Config{
		QueueDepth: 1,
		Serve:      microserver.ServeConfig{MaxBatch: 1, QueueDepth: 1, MaxWait: time.Nanosecond},
	})
	defer sched.Close()
	g := nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 9})
	if _, err := sched.Deploy(g); err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, g.Node(g.Inputs[0]).OutShape...)
	ins := map[string]*tensor.Tensor{g.Inputs[0]: in}

	const burst = 50
	var tickets []*Ticket
	shed := 0
	for i := 0; i < burst; i++ {
		tk, err := sched.Submit(g.Name, ins)
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Error("saturated fleet shed no load; want ErrOverloaded for part of the burst")
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Errorf("admitted ticket %d failed: %v", i, err)
		}
	}
	st, err := sched.Deployment(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if got := stats.Rejected; got != int64(shed) {
		t.Errorf("stats recorded %d rejected, want %d", got, shed)
	}
	if stats.Completed != int64(len(tickets)) {
		t.Errorf("stats recorded %d completed, want %d", stats.Completed, len(tickets))
	}
}

// TestCloseRacingSubmit hammers Submit while Close lands mid-storm:
// every admitted ticket must resolve (result or ErrClosed) and later
// submissions must fail fast.
func TestCloseRacingSubmit(t *testing.T) {
	sched := NewScheduler(urecsFleet(t), Config{QueueDepth: 256})
	g := gestureModel()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: gestureInput(1)}
	const clients = 24
	var wg sync.WaitGroup
	unresolved := make(chan int, clients)
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func(cidx int) {
			defer wg.Done()
			tk, err := sched.Submit(g.Name, ins)
			if err != nil {
				return // refused at admission: fine
			}
			if outs, err := tk.Wait(); err == nil && outs == nil {
				unresolved <- cidx
			}
		}(cidx)
	}
	sched.Close()
	wg.Wait()
	close(unresolved)
	for cidx := range unresolved {
		t.Errorf("client %d: ticket resolved with neither result nor error", cidx)
	}
	if _, err := sched.Submit(g.Name, ins); err == nil {
		t.Error("Submit succeeded after Close")
	}
	sched.Close() // idempotent
	// Tickets failed by the shutdown drain still count as completed.
	st := dep.Stats()
	if st.Submitted != st.Completed+st.Rejected {
		t.Errorf("stats invariant broken after Close: submitted %d != completed %d + rejected %d",
			st.Submitted, st.Completed, st.Rejected)
	}
}

// TestRoutingPrefersFastestAtLowLoad runs strictly sequential requests
// (queue depth always zero at routing time), where the cost model
// reduces to the pure service estimate: every request must land on the
// replica with the lowest estimate.
func TestRoutingPrefersFastestAtLowLoad(t *testing.T) {
	sched := NewScheduler(urecsFleet(t), Config{})
	defer sched.Close()
	g := gestureModel()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	var fastest *Replica
	for _, r := range dep.Replicas() {
		if fastest == nil || r.ServiceEstimate() < fastest.ServiceEstimate() {
			fastest = r
		}
	}
	before := fastest.Stats().Served
	const serial = 12
	for i := 0; i < serial; i++ {
		if _, err := sched.InferSingle("", gestureInput(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := fastest.Stats().Served - before; got != serial {
		t.Errorf("fastest replica (%s) served %d of %d sequential requests, want all", fastest.Backend(), got, serial)
	}
}

// TestPickPowerTieBreak pins the power-aware tie-break: equal costs
// resolve toward the lower worst-case module power.
func TestPickPowerTieBreak(t *testing.T) {
	hungry := &Replica{id: 0, module: "hungry", modeled: time.Millisecond, maxW: 40}
	frugal := &Replica{id: 1, module: "frugal", modeled: time.Millisecond, maxW: 5}
	d := &Deployment{replicas: []*Replica{hungry, frugal}}
	if got := d.pick(); got != frugal {
		t.Errorf("pick chose %s, want frugal module on cost tie", got.module)
	}
	// A clear cost gap overrides the power preference.
	hungry.modeled = 100 * time.Microsecond
	if got := d.pick(); got != hungry {
		t.Errorf("pick chose %s, want the clearly faster replica", got.module)
	}
	// Queue depth scales the cost: load the fast replica and the tie
	// logic re-engages against its backlog.
	hungry.inflight.Store(50)
	if got := d.pick(); got != frugal {
		t.Errorf("pick chose %s, want idle replica over deep queue", got.module)
	}
}

func TestDeployErrors(t *testing.T) {
	sched := NewScheduler(microserver.NewURECS(), Config{})
	defer sched.Close()
	if _, err := sched.Deploy(gestureModel()); err == nil {
		t.Error("Deploy succeeded on an empty chassis")
	}
	c := urecsFleet(t)
	sched2 := NewScheduler(c, Config{})
	defer sched2.Close()
	if _, err := sched2.Deploy(gestureModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := sched2.Deploy(gestureModel()); err == nil {
		t.Error("duplicate model deployment succeeded")
	}
	if _, err := sched2.Deployment("nope"); err == nil {
		t.Error("Deployment resolved an unknown model")
	}
}

// TestObserveShedExcludedFromEWMA pins the admission-accounting fix:
// shed and cancelled completions must never feed the service-time EWMA
// or the failure count — they measured queueing, not service.
func TestObserveShedExcludedFromEWMA(t *testing.T) {
	r := &Replica{}
	r.observe(time.Millisecond, nil)
	base := r.ewmaNS.Load()
	if base != int64(time.Millisecond) {
		t.Fatalf("first served observation set EWMA to %d, want %d", base, time.Millisecond)
	}
	for _, err := range []error{ErrOverloaded, context.Canceled, context.DeadlineExceeded} {
		r.observe(time.Hour, err)
	}
	if got := r.ewmaNS.Load(); got != base {
		t.Errorf("shed observations moved EWMA %d -> %d; want unchanged", base, got)
	}
	if got := r.shed.Load(); got != 3 {
		t.Errorf("shed count %d, want 3", got)
	}
	if got := r.failed.Load(); got != 0 {
		t.Errorf("shed observations counted as failed (%d)", got)
	}
	// A genuine engine fault still counts as failed, still skips the EWMA.
	r.observe(time.Hour, errors.New("engine fault"))
	if got := r.failed.Load(); got != 1 {
		t.Errorf("failed count %d, want 1", got)
	}
	if got := r.ewmaNS.Load(); got != base {
		t.Errorf("failed observation moved EWMA %d -> %d; want unchanged", base, got)
	}
	if got := r.served.Load(); got != 1 {
		t.Errorf("served count %d, want 1", got)
	}
}

// TestPerSampleWall pins the EWMA normalization: queue depth and
// coalesced batch rows divide out of the observed wall time so the
// routing estimate tracks per-sample service time.
func TestPerSampleWall(t *testing.T) {
	cases := []struct {
		wall        time.Duration
		depth, rows int64
		want        time.Duration
	}{
		{8 * time.Millisecond, 1, 1, 8 * time.Millisecond},
		{8 * time.Millisecond, 4, 1, 2 * time.Millisecond},
		{8 * time.Millisecond, 1, 8, time.Millisecond},
		{8 * time.Millisecond, 2, 4, time.Millisecond},
		{8 * time.Millisecond, 0, -3, 8 * time.Millisecond}, // clamped
	}
	for _, c := range cases {
		if got := perSampleWall(c.wall, c.depth, c.rows); got != c.want {
			t.Errorf("perSampleWall(%v, %d, %d) = %v, want %v", c.wall, c.depth, c.rows, got, c.want)
		}
	}
}

func TestBatchRows(t *testing.T) {
	names := []string{"in"}
	if got := batchRows(map[string]*tensor.Tensor{"in": tensor.New(tensor.FP32, 6, 3)}, names); got != 6 {
		t.Errorf("batch-6 input read as %d rows", got)
	}
	if got := batchRows(map[string]*tensor.Tensor{"in": tensor.New(tensor.FP32, 1, 3)}, names); got != 1 {
		t.Errorf("batch-1 input read as %d rows", got)
	}
	if got := batchRows(map[string]*tensor.Tensor{}, names); got != 1 {
		t.Errorf("missing input read as %d rows, want 1", got)
	}
	if got := batchRows(nil, nil); got != 1 {
		t.Errorf("nil inputs read as %d rows, want 1", got)
	}
}

// TestSubmitCtxCancelPropagation drives the context satellite end to
// end: a dead context is refused at admission, a cancelled queued
// ticket resolves with the context error and counts in Stats.Cancelled,
// and WaitCtx unblocks a caller whose own context expires first.
func TestSubmitCtxCancelPropagation(t *testing.T) {
	c := microserver.NewURECS()
	m, err := microserver.FindModule("SMARC ARM")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(0, m); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(c, Config{
		QueueDepth: 64,
		Serve:      microserver.ServeConfig{MaxBatch: 1, QueueDepth: 1, MaxWait: time.Nanosecond},
	})
	defer sched.Close()
	g := gestureModel()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: gestureInput(3)}

	// Dead context: refused before admission, no ticket minted.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := dep.SubmitCtx(dead, ins); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context submit returned %v, want context.Canceled", err)
	}

	// Pile live work onto the single slow replica, then queue a ticket
	// whose caller vanishes while it waits. It must resolve with the
	// context error and never as a silent success-after-cancel.
	var live []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := dep.Submit(ins)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, tk)
	}
	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := dep.SubmitCtx(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := doomed.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ticket resolved with %v, want context.Canceled", err)
	}
	for i, tk := range live {
		if _, err := tk.Wait(); err != nil {
			t.Errorf("live ticket %d failed: %v", i, err)
		}
	}
	st := dep.Stats()
	if st.Cancelled != 1 {
		t.Errorf("stats recorded %d cancelled, want 1", st.Cancelled)
	}
	if st.Submitted != st.Completed+st.Rejected {
		t.Errorf("stats invariant broken: submitted %d != completed %d + rejected %d",
			st.Submitted, st.Completed, st.Rejected)
	}

	// WaitCtx: the waiting caller's own deadline unblocks the wait even
	// though the ticket itself still completes normally.
	tk, err := dep.Submit(ins)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExpired()
	if _, err := tk.WaitCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitCtx with expired context returned %v, want deadline exceeded", err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Errorf("ticket abandoned by WaitCtx failed to complete: %v", err)
	}
}
