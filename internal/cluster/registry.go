package cluster

import (
	"fmt"
	"sort"
	"sync"

	"vedliot/internal/accel"
	"vedliot/internal/artifact"
	"vedliot/internal/inference"
)

// Registry is the fleet's model registry: deployment artifacts
// (.vedz models) by name, plus the fleet-wide compiled-plan cache they
// share. A scheduler with a registry deploys replicas from artifacts —
// cold-start per replica is load + bind instead of calibrate + lower,
// because every (artifact digest, backend, schema) triple lowers at
// most once no matter how many replicas, chassis or schedulers point
// at the registry.
type Registry struct {
	mu     sync.Mutex
	models map[string]*artifact.Model
	plans  *inference.PlanCache
}

// NewRegistry creates an empty registry with a fresh plan cache.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*artifact.Model), plans: inference.NewPlanCache()}
}

// Add registers a loaded artifact under its model name. The model must
// carry a digest (i.e. come from artifact.Load/Decode or a Save) —
// the digest is the plan-cache identity.
func (r *Registry) Add(m *artifact.Model) error {
	if m == nil || m.Graph == nil {
		return fmt.Errorf("cluster: registry: nil model")
	}
	if m.Digest == "" {
		return fmt.Errorf("cluster: registry: model %q has no content digest (use artifact.Load or Save first)", m.Graph.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[m.Graph.Name]; dup {
		return fmt.Errorf("cluster: registry: model %q already registered", m.Graph.Name)
	}
	r.models[m.Graph.Name] = m
	return nil
}

// LoadFile loads a .vedz artifact from disk and registers it.
func (r *Registry) LoadFile(path string) (*artifact.Model, error) {
	m, err := artifact.Load(path)
	if err != nil {
		return nil, err
	}
	if err := r.Add(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Get returns the registered model by name.
func (r *Registry) Get(name string) (*artifact.Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("cluster: registry: model %q not registered", name)
	}
	return m, nil
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Plans exposes the registry's fleet-wide plan cache (telemetry,
// direct compilation against registry-managed keys).
func (r *Registry) Plans() *inference.PlanCache {
	return r.plans
}

// planKey builds the compiled-plan identity for deploying one artifact
// on one backend: the artifact content digest (which covers graph,
// weights and embedded schema), the backend name, the backend's
// precision when it is an accelerator (one device model can in
// principle run at several precisions), and the digest of the
// activation schema actually used (which can differ from the embedded
// one when the scheduler's Config overrides it). Everything that
// changes the lowered plan is in the key — the cache-invalidation
// invariant DESIGN.md documents.
func planKey(digest string, b inference.Backend, schemaDigest string) string {
	key := digest + "|" + b.Name()
	if ab, ok := b.(*accel.Backend); ok {
		key += "|" + ab.Precision.String()
	}
	if schemaDigest != "" {
		key += "|" + schemaDigest
	}
	return key
}
