package cluster

import (
	"fmt"
	"sort"
	"sync"

	"vedliot/internal/accel"
	"vedliot/internal/artifact"
	"vedliot/internal/inference"
	"vedliot/internal/release"
)

// Registry is the fleet's model registry: deployment artifacts
// (.vedz models) by name, plus the fleet-wide compiled-plan cache they
// share. A scheduler with a registry deploys replicas from artifacts —
// cold-start per replica is load + bind instead of calibrate + lower,
// because every (artifact digest, backend, schema) triple lowers at
// most once no matter how many replicas, chassis or schedulers point
// at the registry.
//
// A registry with a non-empty release.Policy is a gated release
// channel: models enter only through AddRelease with a bundle the
// policy verifies (signer, transparency-log inclusion, witnessed
// checkpoint), and the scheduler re-verifies at every DeployArtifact —
// an artifact that merely parses never reaches a replica.
type Registry struct {
	mu      sync.Mutex
	models  map[string]*artifact.Model
	bundles map[string]*release.Bundle // by artifact digest
	policy  *release.Policy
	plans   *inference.PlanCache
}

// NewRegistry creates an empty, ungated registry with a fresh plan
// cache.
func NewRegistry() *Registry {
	return &Registry{
		models:  make(map[string]*artifact.Model),
		bundles: make(map[string]*release.Bundle),
		plans:   inference.NewPlanCache(),
	}
}

// SetPolicy installs the registry's release policy. A non-empty policy
// gates every later Add/AddRelease and every DeployArtifact; models
// already registered are not re-checked until deployment, where the
// gate catches them.
func (r *Registry) SetPolicy(p *release.Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
}

// Policy returns the registry's release policy (nil when ungated).
func (r *Registry) Policy() *release.Policy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy
}

// Add registers a loaded artifact under its model name. The model must
// carry a digest (i.e. come from artifact.Load/Decode or a Save) —
// the digest is the plan-cache identity. A registry with a non-empty
// policy refuses Add outright: gated models enter through AddRelease.
func (r *Registry) Add(m *artifact.Model) error {
	return r.AddRelease(m, nil)
}

// AddRelease registers an artifact together with its release bundle.
// When the registry has a non-empty policy the bundle must satisfy it
// (valid signer envelope for this digest, transparency-log inclusion
// proof, witnessed checkpoint); without a policy the bundle is merely
// retained for later gating.
func (r *Registry) AddRelease(m *artifact.Model, b *release.Bundle) error {
	if m == nil || m.Graph == nil {
		return fmt.Errorf("cluster: registry: nil model")
	}
	if m.Digest == "" {
		return fmt.Errorf("cluster: registry: model %q has no content digest (use artifact.Load or Save first)", m.Graph.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.policy.Empty() {
		if err := r.policy.Verify(m.Digest, b); err != nil {
			return fmt.Errorf("cluster: registry: refusing model %q: %w", m.Graph.Name, err)
		}
	}
	if _, dup := r.models[m.Graph.Name]; dup {
		return fmt.Errorf("cluster: registry: model %q already registered", m.Graph.Name)
	}
	r.models[m.Graph.Name] = m
	if b != nil {
		r.bundles[m.Digest] = b
	}
	return nil
}

// Bundle returns the release bundle registered for an artifact digest,
// nil when none was provided.
func (r *Registry) Bundle(digest string) *release.Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bundles[digest]
}

// Authorize re-verifies the release policy for a registered digest —
// the deploy-time gate. It exists separately from AddRelease so a
// policy installed (or tightened) after registration still bites
// before any replica runs the artifact.
func (r *Registry) Authorize(digest string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.policy.Empty() {
		return nil
	}
	return r.policy.Verify(digest, r.bundles[digest])
}

// LoadFile loads a .vedz artifact from disk and registers it (ungated
// registries only; gated ones need LoadReleaseFile).
func (r *Registry) LoadFile(path string) (*artifact.Model, error) {
	m, err := artifact.Load(path)
	if err != nil {
		return nil, err
	}
	if err := r.Add(m); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadReleaseFile loads a .vedz artifact and its release bundle from
// disk and registers them through the policy gate.
func (r *Registry) LoadReleaseFile(vedzPath, bundlePath string) (*artifact.Model, error) {
	m, err := artifact.Load(vedzPath)
	if err != nil {
		return nil, err
	}
	b, err := release.LoadBundle(bundlePath)
	if err != nil {
		return nil, err
	}
	if err := r.AddRelease(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// Get returns the registered model by name.
func (r *Registry) Get(name string) (*artifact.Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("cluster: registry: model %q not registered", name)
	}
	return m, nil
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Plans exposes the registry's fleet-wide plan cache (telemetry,
// direct compilation against registry-managed keys).
func (r *Registry) Plans() *inference.PlanCache {
	return r.plans
}

// planKey builds the compiled-plan identity for deploying one artifact
// on one backend: the artifact content digest (which covers graph,
// weights and embedded schema), the backend name, the backend's
// precision when it is an accelerator (one device model can in
// principle run at several precisions), and the digest of the
// activation schema actually used (which can differ from the embedded
// one when the scheduler's Config overrides it). Everything that
// changes the lowered plan is in the key — the cache-invalidation
// invariant DESIGN.md documents.
func planKey(digest string, b inference.Backend, schemaDigest string) string {
	key := digest + "|" + b.Name()
	if ab, ok := b.(*accel.Backend); ok {
		key += "|" + ab.Precision.String()
	}
	if schemaDigest != "" {
		key += "|" + schemaDigest
	}
	return key
}
