package cluster

import (
	"path/filepath"
	"sync"
	"testing"

	"vedliot/internal/artifact"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// exportGesture saves the gesture model as a .vedz artifact and
// returns its path. withSchema embeds a calibrated activation schema
// (INT8-capable modules then serve on the native quantized engine —
// deliberately not bit-exact with FP32 replicas).
func exportGesture(t *testing.T, withSchema bool) (string, *nn.Graph, *nn.QuantSchema) {
	t.Helper()
	g := gestureModel()
	var schema *nn.QuantSchema
	if withSchema {
		samples, err := nn.SyntheticCalibration(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := optimize.Calibrate(g, samples)
		if err != nil {
			t.Fatal(err)
		}
		schema = s
	}
	path := filepath.Join(t.TempDir(), "gesture.vedz")
	if err := artifact.Save(path, &artifact.Model{Graph: g, Schema: schema}); err != nil {
		t.Fatal(err)
	}
	return path, g, schema
}

func TestRegistryAddGetNames(t *testing.T) {
	path, g, _ := exportGesture(t, true)
	reg := NewRegistry()
	m, err := reg.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Digest == "" {
		t.Fatal("loaded model has no digest")
	}
	got, err := reg.Get(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatal("Get returned a different model")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != g.Name {
		t.Fatalf("Names = %v", names)
	}
	if err := reg.Add(m); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Fatal("Get of unknown model succeeded")
	}
	if err := reg.Add(&artifact.Model{Graph: g}); err == nil {
		t.Fatal("Add accepted a model without digest")
	}
}

// TestDeployArtifactParity is the acceptance contract: a model
// exported to .vedz (FP32, no schema — the whole fleet stays on the
// bit-exact functional path) reloads and serves through the cluster
// with bitwise-identical outputs to the in-process deployment path.
func TestDeployArtifactParity(t *testing.T) {
	path, g, _ := exportGesture(t, false)
	reg := NewRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}

	// In-process fleet.
	inproc := NewScheduler(urecsFleet(t), Config{})
	defer inproc.Close()
	if _, err := inproc.Deploy(g); err != nil {
		t.Fatal(err)
	}

	// Artifact-driven fleet on an identical chassis.
	fromArt := NewScheduler(urecsFleet(t), Config{Registry: reg})
	defer fromArt.Close()
	dep, err := fromArt.DeployArtifact(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Replicas()) != 3 {
		t.Fatalf("artifact deploy placed %d replicas, want 3", len(dep.Replicas()))
	}

	for seed := 0; seed < 8; seed++ {
		in := gestureInput(seed)
		want, err := inproc.InferSingle(g.Name, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fromArt.InferSingle(g.Name, in)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("seed %d: artifact-served output differs from in-process path by %g", seed, d)
		}
	}
}

// TestDeployArtifactSharesPlans pins the cold-start win: replicas of
// one artifact on same-backend modules share one compiled plan through
// the registry's fleet-wide cache.
func TestDeployArtifactSharesPlans(t *testing.T) {
	path, g, _ := exportGesture(t, true)
	reg := NewRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	// Two identical CPU modules -> one plan, one hit.
	chassis := microserver.NewURECS()
	for slot := 0; slot < 2; slot++ {
		m, err := microserver.FindModule("SMARC ARM")
		if err != nil {
			t.Fatal(err)
		}
		if err := chassis.Insert(slot, m); err != nil {
			t.Fatal(err)
		}
	}
	sched := NewScheduler(chassis, Config{Registry: reg})
	defer sched.Close()
	dep, err := sched.DeployArtifact(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Replicas()) != 2 {
		t.Fatalf("placed %d replicas, want 2", len(dep.Replicas()))
	}
	st := reg.Plans().Stats()
	if st.Entries != 1 {
		t.Fatalf("plan cache holds %d plans, want 1 (CPU replicas share the plan)", st.Entries)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("plan cache stats %+v, want 1 hit / 1 miss", st)
	}
	// The replicas literally share one executable.
	exes := map[inference.Executable]bool{}
	for _, r := range dep.Replicas() {
		exes[r.Server().Executable()] = true
	}
	if len(exes) != 1 {
		t.Fatalf("replicas hold %d distinct executables, want 1 shared plan", len(exes))
	}
}

// TestDeployArtifactHeterogeneousKeys pins key discipline: distinct
// backends of one artifact get distinct plans, and a second scheduler
// on the same registry reuses all of them (fleet-wide cache).
func TestDeployArtifactHeterogeneousKeys(t *testing.T) {
	path, g, _ := exportGesture(t, true)
	reg := NewRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	first := NewScheduler(urecsFleet(t), Config{Registry: reg})
	defer first.Close()
	if _, err := first.DeployArtifact(g.Name); err != nil {
		t.Fatal(err)
	}
	st := reg.Plans().Stats()
	if st.Entries != 3 || st.Misses != 3 {
		t.Fatalf("after first fleet: %+v, want 3 distinct plans", st)
	}

	second := NewScheduler(urecsFleet(t), Config{Registry: reg})
	defer second.Close()
	if _, err := second.DeployArtifact(g.Name); err != nil {
		t.Fatal(err)
	}
	st = reg.Plans().Stats()
	if st.Entries != 3 || st.Hits != 3 {
		t.Fatalf("after second fleet: %+v, want every plan reused", st)
	}
}

func TestDeployArtifactRequiresRegistry(t *testing.T) {
	sched := NewScheduler(urecsFleet(t), Config{})
	defer sched.Close()
	if _, err := sched.DeployArtifact("gesture"); err == nil {
		t.Fatal("DeployArtifact without registry succeeded")
	}
}

// TestDeployArtifactConcurrentSchedulers pins the read-only contract
// of registry-shared artifacts: concurrent DeployArtifact from two
// schedulers must not mutate (or race on) the shared graph. Run under
// -race in CI.
func TestDeployArtifactConcurrentSchedulers(t *testing.T) {
	path, g, _ := exportGesture(t, false)
	reg := NewRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched := NewScheduler(urecsFleet(t), Config{Registry: reg})
			defer sched.Close()
			dep, err := sched.DeployArtifact(g.Name)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := dep.InferSingle(gestureInput(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
