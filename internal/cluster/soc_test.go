package cluster

import (
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// TestDeploySoCModule places a replica on the emulated RISC-V+CFU SoC
// module: the fleet must serve it through the firmware backend, feed
// the router with the measured cycles-per-inference latency model, and
// return outputs bit-exact with the native INT8 engine.
func TestDeploySoCModule(t *testing.T) {
	g := gestureModel()
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}

	m, err := microserver.FindModule("RISC-V CFU SoM")
	if err != nil {
		t.Fatal(err)
	}
	// SoC modules run INT8 firmware only: no schema, no backend.
	if _, err := BackendForModule(m, nil); err == nil {
		t.Fatal("BackendForModule accepted a SoC module without a schema")
	}

	c := microserver.NewURECS()
	if err := c.Insert(2, m); err != nil { // slot 2 accepts the CM4 form factor
		t.Fatal(err)
	}
	sched := NewScheduler(c, Config{Schema: schema})
	defer sched.Close()
	dep, err := sched.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Replicas()) != 1 {
		t.Fatalf("deployed %d replicas, want 1", len(dep.Replicas()))
	}
	r := dep.Replicas()[0]
	if r.Backend() != "riscv-soc-cfu" {
		t.Fatalf("replica backend %q, want riscv-soc-cfu", r.Backend())
	}
	if r.ModeledLatency() <= 0 {
		t.Fatal("SoC replica has no measured-cycles latency model")
	}

	q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 3; seed++ {
		in := gestureInput(seed)
		want, err := q.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.InferSingle("", in)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("seed %d: SoC replica diverges from native INT8 engine by %v", seed, d)
		}
	}
}
