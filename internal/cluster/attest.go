package cluster

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"

	"vedliot/internal/tee"
)

// ReplicaImage builds the deterministic enclave code/data image for a
// replica: the artifact content digest, the backend it was lowered
// for, and the module hosting it. Hashing this image (the tee package
// does) yields the replica measurement, so the attested identity
// covers exactly what the release policy authorized — swap any of the
// three and the quote stops matching.
func ReplicaImage(digest, backend, module string) []byte {
	return []byte("vedliot-replica/v1\n" + digest + "\n" + backend + "\n" + module + "\n")
}

// ReplicaMeasurement is the expected enclave measurement for a replica
// running the given artifact on the given backend and module — what a
// verifier computes independently and compares quotes against.
func ReplicaMeasurement(digest, backend, module string) [32]byte {
	return sha256.Sum256(ReplicaImage(digest, backend, module))
}

// ReplicaAttestation is one replica's signed identity statement: a
// quote over its enclave measurement, with the running artifact digest
// as report data, bound to the verifier's challenge nonce.
type ReplicaAttestation struct {
	// Replica is the replica's index within its deployment.
	Replica int
	// Slot is the chassis slot the replica is bound to.
	Slot int
	// Module names the compute module hosting the replica.
	Module string
	// Backend names the inference backend the replica serves with.
	Backend string
	// ArtifactDigest is the content digest of the artifact the replica
	// claims to run; it is also the quote's report data.
	ArtifactDigest string
	// Quote is the platform-signed attestation statement.
	Quote tee.Quote
	// EcallOverheadNS is the enclave's accounted transition overhead at
	// quoting time, surfaced so serving telemetry can report the cost of
	// running attested.
	EcallOverheadNS int64
}

// Attest produces one attestation per replica for the verifier's
// challenge nonce, quoting each replica's enclave with the running
// artifact digest as report data. Quote generation itself runs as an
// ecall — entering the enclave is what makes the measurement
// trustworthy, and the transition cost is accounted like any other.
// Only artifact deployments attest; in-process Deploy fleets have no
// enclave and return an error.
func (d *Deployment) Attest(nonce []byte, platformKey ed25519.PrivateKey) ([]ReplicaAttestation, error) {
	if d.digest == "" {
		return nil, fmt.Errorf("cluster: deployment %q was not deployed from an artifact; nothing to attest", d.model)
	}
	out := make([]ReplicaAttestation, 0, len(d.replicas))
	for _, r := range d.replicas {
		if r.enclave == nil {
			return nil, fmt.Errorf("cluster: replica %d of %q has no enclave", r.id, d.model)
		}
		var q tee.Quote
		report := []byte(d.digest)
		err := r.enclave.Ecall(int64(len(nonce)+len(report)), func() error {
			q = r.enclave.GenerateQuote(nonce, report, platformKey)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ReplicaAttestation{
			Replica:         r.id,
			Slot:            r.slot,
			Module:          r.module,
			Backend:         r.Backend(),
			ArtifactDigest:  d.digest,
			Quote:           q,
			EcallOverheadNS: r.enclave.OverheadNS(),
		})
	}
	return out, nil
}

// VerifyReplicaAttestation checks one replica's quote: the measurement
// must equal the independently recomputed ReplicaMeasurement for the
// expected digest on the claimed backend and module, the report data
// must carry that digest, and the signature must verify against the
// platform key under the challenge nonce. Passing means the replica is
// provably running the artifact the release policy authorized.
func VerifyReplicaAttestation(a ReplicaAttestation, platformPub ed25519.PublicKey, wantDigest string, nonce []byte) error {
	if a.ArtifactDigest != wantDigest {
		return fmt.Errorf("cluster: replica %d attests digest %s, want %s", a.Replica, a.ArtifactDigest, wantDigest)
	}
	if string(a.Quote.ReportData) != wantDigest {
		return fmt.Errorf("cluster: replica %d quote report data does not carry the artifact digest", a.Replica)
	}
	expected := ReplicaMeasurement(wantDigest, a.Backend, a.Module)
	if err := tee.VerifyQuote(a.Quote, platformPub, expected, nonce); err != nil {
		return fmt.Errorf("cluster: replica %d: %w", a.Replica, err)
	}
	return nil
}
