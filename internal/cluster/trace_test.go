package cluster

import (
	"testing"
	"time"
)

func cpuEquivalent(n int) []SimReplica {
	fleet := make([]SimReplica, n)
	for i := range fleet {
		fleet[i] = SimReplica{Name: "cpu", Service: 2 * time.Millisecond, IdleW: 25, MaxW: 45}
	}
	return fleet
}

func TestOpenLoopTraceDeterministic(t *testing.T) {
	a := OpenLoopTrace(100, 1000, 42)
	b := OpenLoopTrace(100, 1000, 42)
	if len(a.Arrivals) != 100 {
		t.Fatalf("trace has %d arrivals, want 100", len(a.Arrivals))
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
		if i > 0 && a.Arrivals[i] < a.Arrivals[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	// Mean inter-arrival tracks the requested rate (1/1000 s) loosely.
	mean := a.Duration() / 100
	if mean < 200*time.Microsecond || mean > 5*time.Millisecond {
		t.Errorf("mean inter-arrival %v wildly off the 1ms target", mean)
	}
}

func TestSimulateThroughputScalesWithReplicas(t *testing.T) {
	// 2ms service → 500 req/s per replica; 2000 req/s arrivals saturate
	// fleets of up to 4.
	tr := OpenLoopTrace(400, 2000, 7)
	tp := map[int]float64{}
	var p95 = map[int]time.Duration{}
	for _, k := range []int{1, 2, 4} {
		res, err := SimulateTrace(cpuEquivalent(k), tr)
		if err != nil {
			t.Fatal(err)
		}
		tp[k] = res.Throughput
		p95[k] = res.Latency.P95
		served := 0
		for _, pr := range res.PerReplica {
			served += pr.Served
		}
		if served != res.Requests {
			t.Errorf("k=%d: per-replica served sums to %d, want %d", k, served, res.Requests)
		}
		if res.EnergyJ <= 0 {
			t.Errorf("k=%d: no energy accounted", k)
		}
	}
	if tp[4] < 3*tp[1] {
		t.Errorf("throughput 1→4 replicas scaled %.2fx, want >= 3x under saturation", tp[4]/tp[1])
	}
	if p95[4] >= p95[1] {
		t.Errorf("p95 latency did not improve with replicas: %v (1) vs %v (4)", p95[1], p95[4])
	}
}

func TestSimulateHeterogeneousSplit(t *testing.T) {
	fleet := []SimReplica{
		{Name: "fast", Service: 500 * time.Microsecond, IdleW: 1, MaxW: 2},
		{Name: "slow", Service: 4 * time.Millisecond, IdleW: 1, MaxW: 3},
	}
	res, err := SimulateTrace(fleet, OpenLoopTrace(300, 3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerReplica[0].Served <= res.PerReplica[1].Served {
		t.Errorf("fast replica served %d <= slow %d; routing ignores service time",
			res.PerReplica[0].Served, res.PerReplica[1].Served)
	}
	if res.PerReplica[1].Served == 0 {
		t.Error("slow replica idle under saturation; fleet not shared")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := SimulateTrace(nil, OpenLoopTrace(10, 100, 1)); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := SimulateTrace([]SimReplica{{Name: "x"}}, OpenLoopTrace(10, 100, 1)); err == nil {
		t.Error("zero service time accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{4 * time.Millisecond, time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond})
	if s.Count != 4 || s.Max != 4*time.Millisecond {
		t.Errorf("summary %+v wrong count/max", s)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Errorf("mean %v, want 2.5ms", s.Mean)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("p50 %v, want 2ms", s.P50)
	}
	if (Summarize(nil) != LatencySummary{}) {
		t.Error("empty sample should summarize to zero value")
	}
}

func TestSummarizeTailPercentiles(t *testing.T) {
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Microsecond
	}
	s := Summarize(lats)
	if s.P99 != 990*time.Microsecond {
		t.Errorf("p99 %v, want 990µs", s.P99)
	}
	if s.P999 != 999*time.Microsecond {
		t.Errorf("p999 %v, want 999µs", s.P999)
	}
	if s.P99 < s.P95 || s.P999 < s.P99 || s.Max < s.P999 {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}

func TestBatchService(t *testing.T) {
	f := SimReplica{Service: 2 * time.Millisecond, PerItem: 100 * time.Microsecond}
	if got := f.batchService(1); got != 2*time.Millisecond {
		t.Errorf("batch-1 service %v, want 2ms", got)
	}
	if got := f.batchService(11); got != 3*time.Millisecond {
		t.Errorf("batch-11 service %v, want 3ms", got)
	}
	flat := SimReplica{Service: 2 * time.Millisecond}
	if got := flat.batchService(4); got != 8*time.Millisecond {
		t.Errorf("no-PerItem batch-4 service %v, want 8ms (serial loop)", got)
	}
}

// closedLoopFleet: replicas that amortize well under batching — batch-32
// costs ~6x a single request instead of 32x.
func closedLoopFleet(n int) []SimReplica {
	fleet := make([]SimReplica, n)
	for i := range fleet {
		fleet[i] = SimReplica{
			Name: "sim", Service: 1500 * time.Microsecond,
			PerItem: 150 * time.Microsecond, IdleW: 5, MaxW: 25,
		}
	}
	return fleet
}

func TestSimulateClosedLoopDeterministic(t *testing.T) {
	cfg := ClosedLoopConfig{
		Clients: 2000, RequestsPerClient: 3, Think: 300 * time.Millisecond,
		SLO: 20 * time.Millisecond, MaxBatch: 16, QueueCap: 256, Seed: 5,
	}
	a, err := SimulateClosedLoop(closedLoopFleet(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateClosedLoop(closedLoopFleet(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.Completed+a.Shed != a.Requests {
		t.Errorf("accounting broken: completed %d + shed %d != requests %d", a.Completed, a.Shed, a.Requests)
	}
	if a.Latency.Count != a.Completed {
		t.Errorf("latency sample %d != completed %d", a.Latency.Count, a.Completed)
	}
}

// TestSimulateClosedLoopBatchingWins pins the tentpole's core claim in
// virtual time: under an oversaturating closed-loop population, MaxBatch
// coalescing sustains >= 2x the throughput of batch-1 passthrough and
// collapses the SLO-violation rate.
func TestSimulateClosedLoopBatchingWins(t *testing.T) {
	// Offered load ≈ clients/think ≈ 13k rps: ~5x the unbatched fleet
	// capacity (4 × 1/1.5ms ≈ 2.7k rps) but under the batch-32 capacity
	// (4 × 32/6.15ms ≈ 21k rps), so only the unbatched run sheds hard.
	cfg := ClosedLoopConfig{
		Clients: 20000, RequestsPerClient: 2, Think: 1500 * time.Millisecond,
		SLO: 50 * time.Millisecond, QueueCap: 512, Seed: 42,
	}
	cfg.MaxBatch = 1
	unbatched, err := SimulateClosedLoop(closedLoopFleet(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxBatch = 32
	batched, err := SimulateClosedLoop(closedLoopFleet(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.MeanBatch <= 1.5 {
		t.Errorf("adaptive run coalesced %.2f samples/batch on an oversaturated fleet, want > 1.5", batched.MeanBatch)
	}
	if batched.Throughput < 2*unbatched.Throughput {
		t.Errorf("batching throughput %.0f rps < 2x unbatched %.0f rps", batched.Throughput, unbatched.Throughput)
	}
	if batched.SLOViolationRate >= unbatched.SLOViolationRate {
		t.Errorf("batching did not improve SLO violations: %.3f vs %.3f",
			batched.SLOViolationRate, unbatched.SLOViolationRate)
	}
	if unbatched.Shed == 0 {
		t.Error("oversaturated unbatched run shed nothing; load level too low to be meaningful")
	}
}

func TestSimulateClosedLoopSheds(t *testing.T) {
	res, err := SimulateClosedLoop(closedLoopFleet(1), ClosedLoopConfig{
		Clients: 3000, RequestsPerClient: 2, Think: 100 * time.Millisecond,
		SLO: 10 * time.Millisecond, MaxBatch: 1, QueueCap: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Error("bounded queue under overload shed nothing")
	}
	if res.SLOViolations < res.Shed {
		t.Errorf("sheds must count as SLO violations: %d violations < %d sheds", res.SLOViolations, res.Shed)
	}
	if res.Completed+res.Shed != res.Requests {
		t.Errorf("accounting broken: %d + %d != %d", res.Completed, res.Shed, res.Requests)
	}
}

func TestSimulateClosedLoopErrors(t *testing.T) {
	ok := ClosedLoopConfig{Clients: 1, RequestsPerClient: 1, Think: time.Millisecond}
	if _, err := SimulateClosedLoop(nil, ok); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := SimulateClosedLoop([]SimReplica{{Name: "x"}}, ok); err == nil {
		t.Error("zero service time accepted")
	}
	bad := ok
	bad.Clients = 0
	if _, err := SimulateClosedLoop(closedLoopFleet(1), bad); err == nil {
		t.Error("zero clients accepted")
	}
	bad = ok
	bad.Think = 0
	if _, err := SimulateClosedLoop(closedLoopFleet(1), bad); err == nil {
		t.Error("zero think accepted")
	}
}
