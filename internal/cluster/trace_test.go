package cluster

import (
	"testing"
	"time"
)

func cpuEquivalent(n int) []SimReplica {
	fleet := make([]SimReplica, n)
	for i := range fleet {
		fleet[i] = SimReplica{Name: "cpu", Service: 2 * time.Millisecond, IdleW: 25, MaxW: 45}
	}
	return fleet
}

func TestOpenLoopTraceDeterministic(t *testing.T) {
	a := OpenLoopTrace(100, 1000, 42)
	b := OpenLoopTrace(100, 1000, 42)
	if len(a.Arrivals) != 100 {
		t.Fatalf("trace has %d arrivals, want 100", len(a.Arrivals))
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
		if i > 0 && a.Arrivals[i] < a.Arrivals[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	// Mean inter-arrival tracks the requested rate (1/1000 s) loosely.
	mean := a.Duration() / 100
	if mean < 200*time.Microsecond || mean > 5*time.Millisecond {
		t.Errorf("mean inter-arrival %v wildly off the 1ms target", mean)
	}
}

func TestSimulateThroughputScalesWithReplicas(t *testing.T) {
	// 2ms service → 500 req/s per replica; 2000 req/s arrivals saturate
	// fleets of up to 4.
	tr := OpenLoopTrace(400, 2000, 7)
	tp := map[int]float64{}
	var p95 = map[int]time.Duration{}
	for _, k := range []int{1, 2, 4} {
		res, err := SimulateTrace(cpuEquivalent(k), tr)
		if err != nil {
			t.Fatal(err)
		}
		tp[k] = res.Throughput
		p95[k] = res.Latency.P95
		served := 0
		for _, pr := range res.PerReplica {
			served += pr.Served
		}
		if served != res.Requests {
			t.Errorf("k=%d: per-replica served sums to %d, want %d", k, served, res.Requests)
		}
		if res.EnergyJ <= 0 {
			t.Errorf("k=%d: no energy accounted", k)
		}
	}
	if tp[4] < 3*tp[1] {
		t.Errorf("throughput 1→4 replicas scaled %.2fx, want >= 3x under saturation", tp[4]/tp[1])
	}
	if p95[4] >= p95[1] {
		t.Errorf("p95 latency did not improve with replicas: %v (1) vs %v (4)", p95[1], p95[4])
	}
}

func TestSimulateHeterogeneousSplit(t *testing.T) {
	fleet := []SimReplica{
		{Name: "fast", Service: 500 * time.Microsecond, IdleW: 1, MaxW: 2},
		{Name: "slow", Service: 4 * time.Millisecond, IdleW: 1, MaxW: 3},
	}
	res, err := SimulateTrace(fleet, OpenLoopTrace(300, 3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerReplica[0].Served <= res.PerReplica[1].Served {
		t.Errorf("fast replica served %d <= slow %d; routing ignores service time",
			res.PerReplica[0].Served, res.PerReplica[1].Served)
	}
	if res.PerReplica[1].Served == 0 {
		t.Error("slow replica idle under saturation; fleet not shared")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := SimulateTrace(nil, OpenLoopTrace(10, 100, 1)); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := SimulateTrace([]SimReplica{{Name: "x"}}, OpenLoopTrace(10, 100, 1)); err == nil {
		t.Error("zero service time accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{4 * time.Millisecond, time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond})
	if s.Count != 4 || s.Max != 4*time.Millisecond {
		t.Errorf("summary %+v wrong count/max", s)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Errorf("mean %v, want 2.5ms", s.Mean)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("p50 %v, want 2ms", s.P50)
	}
	if (Summarize(nil) != LatencySummary{}) {
		t.Error("empty sample should summarize to zero value")
	}
}
