package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/tensor"
)

// Transport is anything the load generator can drive: a framed Client,
// a connection Pool, or the in-process SchedulerTransport.
type Transport interface {
	// InferCtx routes one request and blocks for its result.
	InferCtx(ctx context.Context, model string, ins map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
}

// SchedulerTransport drives a scheduler directly, bypassing sockets —
// the baseline that isolates network + framing overhead in comparisons.
type SchedulerTransport struct {
	// Sched is the in-process fleet.
	Sched *cluster.Scheduler
}

// InferCtx implements Transport.
func (t SchedulerTransport) InferCtx(ctx context.Context, model string, ins map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return t.Sched.InferCtx(ctx, model, ins)
}

// LoadConfig shapes a closed-loop load run.
type LoadConfig struct {
	// Model names the target deployment.
	Model string
	// Clients is the concurrent simulated-client population.
	Clients int
	// RequestsPerClient is each client's request budget.
	RequestsPerClient int
	// Think is the mean think time between a client's response and its
	// next request (exponential, seeded). Zero means no think time.
	Think time.Duration
	// SLO is the per-request latency objective; slower responses and
	// all sheds count as violations. Zero disables the latency check.
	SLO time.Duration
	// Retry makes clients honor retry-after hints instead of counting
	// the request as lost, up to MaxRetries attempts.
	Retry bool
	// MaxRetries bounds retries per request when Retry is set.
	// Default 3.
	MaxRetries int
	// Inputs supplies the request tensors for client i. Required.
	Inputs func(i int) map[string]*tensor.Tensor
	// Seed drives think-time draws.
	Seed int64
}

// LoadResult is the outcome of one load run.
type LoadResult struct {
	// Requests counts completed request attempts (excluding retried
	// sheds when Retry is set).
	Requests int
	// Completed counts successful responses.
	Completed int
	// Shed counts requests that ended shed (after retries, if any).
	Shed int
	// Failed counts hard failures — anything but success or shed.
	Failed int
	// Retries counts shed responses that were retried.
	Retries int
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// Throughput is Completed per second of Elapsed.
	Throughput float64
	// Latency summarizes successful responses.
	Latency cluster.LatencySummary
	// SLOViolations counts slow successes plus terminal sheds and
	// failures.
	SLOViolations int
	// SLOViolationRate is SLOViolations / Requests.
	SLOViolationRate float64
}

// RunClosedLoop drives a closed-loop client population over the
// transport: each client waits for its response (or terminal shed),
// thinks, then issues its next request. Real goroutines, real sockets
// when the transport is a Client/Pool — wall-clock results, not virtual
// time.
func RunClosedLoop(tr Transport, cfg LoadConfig) (LoadResult, error) {
	if tr == nil {
		return LoadResult{}, errors.New("serve: load: nil transport")
	}
	if cfg.Clients <= 0 || cfg.RequestsPerClient <= 0 {
		return LoadResult{}, errors.New("serve: load: need clients and requests per client")
	}
	if cfg.Inputs == nil {
		return LoadResult{}, errors.New("serve: load: need an input generator")
	}
	maxRetries := cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}

	type clientTally struct {
		lats                           []time.Duration
		completed, shed, failed, retry int
		violations                     int
	}
	tallies := make([]clientTally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			ins := cfg.Inputs(i)
			ta := &tallies[i]
			// Stagger start over one think interval to avoid a
			// synchronized spike.
			if cfg.Think > 0 {
				time.Sleep(time.Duration(rng.Float64() * float64(cfg.Think)))
			}
			for r := 0; r < cfg.RequestsPerClient; r++ {
				t0 := time.Now()
				var err error
				for attempt := 0; ; attempt++ {
					_, err = tr.InferCtx(context.Background(), cfg.Model, ins)
					var ra *RetryAfterError
					if cfg.Retry && errors.As(err, &ra) && attempt < maxRetries {
						ta.retry++
						time.Sleep(ra.After)
						continue
					}
					break
				}
				lat := time.Since(t0)
				var ra *RetryAfterError
				switch {
				case err == nil:
					ta.completed++
					ta.lats = append(ta.lats, lat)
					if cfg.SLO > 0 && lat > cfg.SLO {
						ta.violations++
					}
				case errors.As(err, &ra) || errors.Is(err, cluster.ErrOverloaded):
					ta.shed++
					ta.violations++
				default:
					ta.failed++
					ta.violations++
				}
				if cfg.Think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(cfg.Think)))
				}
			}
		}(i)
	}
	wg.Wait()

	res := LoadResult{Elapsed: time.Since(start)}
	var lats []time.Duration
	for i := range tallies {
		ta := &tallies[i]
		res.Completed += ta.completed
		res.Shed += ta.shed
		res.Failed += ta.failed
		res.Retries += ta.retry
		res.SLOViolations += ta.violations
		lats = append(lats, ta.lats...)
	}
	res.Requests = cfg.Clients * cfg.RequestsPerClient
	res.Latency = cluster.Summarize(lats)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	if res.Requests > 0 {
		res.SLOViolationRate = float64(res.SLOViolations) / float64(res.Requests)
	}
	return res, nil
}

// ReplayOpenLoop fires the trace's arrivals at the transport without
// waiting for completions — the bursty, non-self-throttling regime that
// exercises shedding. Arrival offsets are compressed by speedup (2 =
// twice as fast as recorded).
func ReplayOpenLoop(tr Transport, trace cluster.Trace, cfg LoadConfig, speedup float64) (LoadResult, error) {
	if tr == nil {
		return LoadResult{}, errors.New("serve: load: nil transport")
	}
	if cfg.Inputs == nil {
		return LoadResult{}, errors.New("serve: load: need an input generator")
	}
	if len(trace.Arrivals) == 0 {
		return LoadResult{}, errors.New("serve: load: empty trace")
	}
	if speedup <= 0 {
		speedup = 1
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		lats       []time.Duration
		res        LoadResult
		violations int
	)
	start := time.Now()
	for i, at := range trace.Arrivals {
		at = time.Duration(float64(at) / speedup)
		if wait := at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := tr.InferCtx(context.Background(), cfg.Model, cfg.Inputs(i))
			lat := time.Since(t0)
			var ra *RetryAfterError
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.Completed++
				lats = append(lats, lat)
				if cfg.SLO > 0 && lat > cfg.SLO {
					violations++
				}
			case errors.As(err, &ra) || errors.Is(err, cluster.ErrOverloaded):
				res.Shed++
				violations++
			default:
				res.Failed++
				violations++
			}
		}(i)
	}
	wg.Wait()
	res.Requests = len(trace.Arrivals)
	res.Elapsed = time.Since(start)
	res.Latency = cluster.Summarize(lats)
	res.SLOViolations = violations
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	if res.Requests > 0 {
		res.SLOViolationRate = float64(res.SLOViolations) / float64(res.Requests)
	}
	return res, nil
}
