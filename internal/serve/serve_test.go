package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// armFleet builds a chassis with n host-CPU modules.
func armFleet(t *testing.T, n int) *microserver.Chassis {
	t.Helper()
	c := microserver.NewURECS()
	for slot := 0; slot < n; slot++ {
		m, err := microserver.FindModule("SMARC ARM")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(slot, m); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func testModel() *nn.Graph {
	return nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 21})
}

func testInput(seed int) *tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32((i*5+seed*11)%23)/23 - 0.5
	}
	return in
}

// startServer deploys the test model on n replicas and listens on a
// loopback socket.
func startServer(t *testing.T, n int, clCfg cluster.Config, cfg Config) (*Server, *cluster.Scheduler, *nn.Graph) {
	t.Helper()
	sched := cluster.NewScheduler(armFleet(t, n), clCfg)
	g := testModel()
	if _, err := sched.Deploy(g); err != nil {
		sched.Close()
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", sched, cfg)
	if err != nil {
		sched.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		sched.Close()
	})
	return srv, sched, g
}

func TestTensorMapRoundTrip(t *testing.T) {
	ins := map[string]*tensor.Tensor{
		"a": testInput(1),
		"z": tensor.MustFromSlice([]float32{1.5, -2.25, 3e-9}, 3),
	}
	b := beginFrame(TypeRequest, 42, 64)
	b = appendString(b, "model-x")
	b, err := appendTensorMap(b, ins)
	if err != nil {
		t.Fatal(err)
	}
	b = finishFrame(b)

	fr := newFrameReader(bytes.NewReader(b), 0)
	f, err := fr.next()
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != TypeRequest || f.id != 42 {
		t.Fatalf("frame header (%d, %d), want (%d, 42)", f.typ, f.id, TypeRequest)
	}
	model, err := f.body.str()
	if err != nil || model != "model-x" {
		t.Fatalf("model %q (%v), want model-x", model, err)
	}
	got, err := f.body.tensorMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ins) {
		t.Fatalf("decoded %d tensors, want %d", len(got), len(ins))
	}
	for name, want := range ins {
		d, _ := tensor.MaxAbsDiff(want, got[name])
		if d != 0 {
			t.Errorf("tensor %q diverges by %g after round trip", name, d)
		}
		if !want.Shape.Equal(got[name].Shape) {
			t.Errorf("tensor %q shape %v, want %v", name, got[name].Shape, want.Shape)
		}
	}
}

func TestFrameReaderRejectsOversizedFrame(t *testing.T) {
	b := beginFrame(TypeRequest, 1, 256)
	b = append(b, make([]byte, 128)...)
	b = finishFrame(b)
	fr := newFrameReader(bytes.NewReader(b), 64)
	if _, err := fr.next(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestEndToEndParity(t *testing.T) {
	srv, _, g := startServer(t, 2, cluster.Config{QueueDepth: 64}, Config{})
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Tenant() != DefaultTenant {
		t.Errorf("open-mode tenant %q, want %q", cl.Tenant(), DefaultTenant)
	}
	for seed := 0; seed < 5; seed++ {
		in := testInput(seed)
		want, err := eng.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := cl.InferCtx(context.Background(), g.Name, map[string]*tensor.Tensor{g.Inputs[0]: in})
		if err != nil {
			t.Fatal(err)
		}
		got := outs[g.Outputs[0]]
		if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Errorf("seed %d: socket result diverges from engine by %g", seed, d)
		}
	}
	if st := srv.Stats(); st.Requests < 5 || st.Accepted < 1 {
		t.Errorf("server stats missed traffic: %+v", st)
	}
}

func TestAPIKeyAuth(t *testing.T) {
	srv, _, g := startServer(t, 1, cluster.Config{QueueDepth: 64}, Config{
		Keys: map[string]string{"sk-alpha": "alpha", "sk-beta": "beta"},
	})
	if _, err := Dial(srv.Addr(), "sk-wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong key dialed in: %v", err)
	}
	cl, err := Dial(srv.Addr(), "sk-alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Tenant() != "alpha" {
		t.Errorf("tenant %q, want alpha", cl.Tenant())
	}
	in := testInput(0)
	if _, err := cl.InferCtx(context.Background(), g.Name, map[string]*tensor.Tensor{g.Inputs[0]: in}); err != nil {
		t.Fatalf("authed request failed: %v", err)
	}
	if st := srv.Stats(); st.Unauthorized < 1 {
		t.Errorf("unauthorized dial not counted: %+v", st)
	}
}

// TestOverloadRetryAfter drives an open-loop burst at a single-replica
// fleet with depth-1 queues: part of the burst must come back as
// RetryAfterError with the configured hint.
func TestOverloadRetryAfter(t *testing.T) {
	srv, _, g := startServer(t, 1,
		cluster.Config{QueueDepth: 1, Serve: microserver.ServeConfig{MaxBatch: 1, QueueDepth: 1, MaxWait: time.Nanosecond}},
		Config{Batch: BatchPolicy{MaxBatch: 1}, RetryAfter: 7 * time.Millisecond},
	)
	pool, err := DialPool(srv.Addr(), "", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ins := map[string]*tensor.Tensor{g.Inputs[0]: testInput(0)}
	const burst = 64
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = pool.InferCtx(context.Background(), g.Name, ins)
		}(i)
	}
	wg.Wait()
	shed, ok := 0, 0
	for i, err := range errs {
		var ra *RetryAfterError
		switch {
		case err == nil:
			ok++
		case errors.As(err, &ra):
			shed++
			if ra.After != 7*time.Millisecond {
				t.Errorf("request %d: retry hint %v, want 7ms", i, ra.After)
			}
		default:
			t.Errorf("request %d: unexpected error %v", i, err)
		}
	}
	if shed == 0 {
		t.Error("saturated burst shed nothing over the socket")
	}
	if ok == 0 {
		t.Error("saturated burst completed nothing")
	}
	if st := srv.Stats(); st.Overloaded != int64(shed) {
		t.Errorf("server counted %d overloaded, clients saw %d", st.Overloaded, shed)
	}
}

// TestBurstShedCloseMidBurst pins the satellite: an open-loop burst
// against bounded queues sheds without deadlock even when the server
// and scheduler close mid-burst, and every request resolves.
func TestBurstShedCloseMidBurst(t *testing.T) {
	sched := cluster.NewScheduler(armFleet(t, 1), cluster.Config{
		QueueDepth: 2,
		Serve:      microserver.ServeConfig{MaxBatch: 1, QueueDepth: 1, MaxWait: time.Nanosecond},
	})
	g := testModel()
	if _, err := sched.Deploy(g); err != nil {
		sched.Close()
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", sched, Config{Batch: BatchPolicy{MaxBatch: 1}})
	if err != nil {
		sched.Close()
		t.Fatal(err)
	}
	pool, err := DialPool(srv.Addr(), "", 4)
	if err != nil {
		srv.Close()
		sched.Close()
		t.Fatal(err)
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: testInput(0)}
	const burst = 96
	var wg sync.WaitGroup
	resolved := make([]bool, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := pool.InferCtx(ctx, g.Name, ins)
			resolved[i] = !errors.Is(err, context.DeadlineExceeded)
		}(i)
	}
	// Sever everything while the burst is in flight.
	time.Sleep(2 * time.Millisecond)
	srv.Close()
	sched.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst deadlocked across Close")
	}
	pool.Close()
	for i, r := range resolved {
		if !r {
			t.Errorf("request %d hit its deadline instead of resolving", i)
		}
	}
}

// TestBatcherCoalescesWithParity floods a batching server from many
// connections and checks (a) results stay bitwise-identical to the
// reference engine and (b) the server actually coalesced rows.
func TestBatcherCoalescesWithParity(t *testing.T) {
	srv, _, g := startServer(t, 1, cluster.Config{QueueDepth: 256},
		Config{Batch: BatchPolicy{MaxBatch: 16, MaxDelay: 2 * time.Millisecond}})
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 8
	want := make([]*tensor.Tensor, seeds)
	for s := 0; s < seeds; s++ {
		if want[s], err = eng.RunSingle(testInput(s)); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := DialPool(srv.Addr(), "", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const calls = 160
	var wg sync.WaitGroup
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := i % seeds
			outs, err := pool.InferCtx(context.Background(), g.Name,
				map[string]*tensor.Tensor{g.Inputs[0]: testInput(s)})
			if err != nil {
				errCh <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if d, _ := tensor.MaxAbsDiff(want[s], outs[g.Outputs[0]]); d != 0 {
				errCh <- fmt.Errorf("call %d diverges by %g through the batcher", i, d)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Batches == 0 || st.BatchedRows != calls {
		t.Fatalf("batch accounting off: %+v", st)
	}
	if st.MeanBatch <= 1.2 {
		t.Errorf("mean batch %.2f under concurrent flood, want > 1.2", st.MeanBatch)
	}
}

// TestBatcherFlushesIncompatibleShapes mixes batch sizes: requests with
// different leading dims stack, different trailing shapes must not.
func TestBatcherFlushesIncompatibleShapes(t *testing.T) {
	srv, _, g := startServer(t, 1, cluster.Config{QueueDepth: 64},
		Config{Batch: BatchPolicy{MaxBatch: 8, MaxDelay: 5 * time.Millisecond}})
	cl, err := Dial(srv.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// A batch-3 request through the batcher: rows survive the round trip.
	in3 := tensor.New(tensor.FP32, 3, 1, 16, 16)
	for i := range in3.F32 {
		in3.F32[i] = float32(i%7) / 7
	}
	outs, err := cl.InferCtx(context.Background(), g.Name, map[string]*tensor.Tensor{g.Inputs[0]: in3})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[g.Outputs[0]].Shape[0]; got != 3 {
		t.Errorf("batch-3 request returned %d rows", got)
	}
	// A wrong trailing shape is rejected, not stacked into others.
	bad := tensor.New(tensor.FP32, 1, 1, 8, 8)
	if _, err := cl.InferCtx(context.Background(), g.Name, map[string]*tensor.Tensor{g.Inputs[0]: bad}); err == nil {
		t.Error("mis-shaped input inferred successfully")
	}
}

func TestHTTPAdapter(t *testing.T) {
	srv, _, g := startServer(t, 1, cluster.Config{QueueDepth: 64},
		Config{Keys: map[string]string{"sk-h": "web"}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := testInput(2)
	body, _ := json.Marshal(HTTPInferRequest{
		Model:  g.Name,
		Inputs: map[string]HTTPTensor{g.Inputs[0]: {Shape: in.Shape, Data: in.F32}},
	})

	// No key: 401.
	req, _ := newJSONRequest(ts.URL+"/v1/infer", body, "")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Errorf("keyless infer got %d, want 401", resp.StatusCode)
	}

	// Good key: 200 with outputs.
	req, _ = newJSONRequest(ts.URL+"/v1/infer", body, "sk-h")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("infer got %d, want 200", resp.StatusCode)
	}
	var out HTTPInferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ht, ok := out.Outputs[g.Outputs[0]]
	if !ok || len(ht.Data) == 0 {
		t.Fatalf("response missing output %q: %+v", g.Outputs[0], out)
	}
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.MustFromSlice(ht.Data, ht.Shape...)
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("HTTP result diverges from engine by %g", d)
	}

	// Model list includes the deployment.
	mresp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(models.Models) != 1 || models.Models[0] != g.Name {
		t.Errorf("models %v, want [%s]", models.Models, g.Name)
	}

	// Stats report the traffic.
	sresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests < 1 || st.Unauthorized < 1 {
		t.Errorf("stats missed HTTP traffic: %+v", st)
	}
}

// TestRunClosedLoopOverSocket drives the load generator end to end over
// a real socket and checks the accounting adds up.
func TestRunClosedLoopOverSocket(t *testing.T) {
	srv, _, g := startServer(t, 2, cluster.Config{QueueDepth: 512},
		Config{Batch: BatchPolicy{MaxBatch: 32, MaxDelay: time.Millisecond}})
	pool, err := DialPool(srv.Addr(), "", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, err := RunClosedLoop(pool, LoadConfig{
		Model: g.Name, Clients: 64, RequestsPerClient: 3,
		Think: 2 * time.Millisecond, SLO: time.Second,
		Inputs: func(i int) map[string]*tensor.Tensor {
			return map[string]*tensor.Tensor{g.Inputs[0]: testInput(i)}
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 64*3 {
		t.Errorf("requests %d, want %d", res.Requests, 64*3)
	}
	if res.Completed+res.Shed+res.Failed != res.Requests {
		t.Errorf("accounting broken: %d + %d + %d != %d", res.Completed, res.Shed, res.Failed, res.Requests)
	}
	if res.Failed != 0 {
		t.Errorf("%d hard failures under gentle load", res.Failed)
	}
	if res.Completed == 0 || res.Throughput <= 0 {
		t.Errorf("no completions recorded: %+v", res)
	}
	if res.Latency.P50 <= 0 || res.Latency.P999 < res.Latency.P50 {
		t.Errorf("latency summary inconsistent: %+v", res.Latency)
	}
}

// TestReplayOpenLoopBursts replays a bursty open-loop trace against a
// bounded fleet: sheds happen, nothing deadlocks, accounting holds.
func TestReplayOpenLoopBursts(t *testing.T) {
	srv, _, g := startServer(t, 1,
		cluster.Config{QueueDepth: 2, Serve: microserver.ServeConfig{MaxBatch: 1, QueueDepth: 1, MaxWait: time.Nanosecond}},
		Config{Batch: BatchPolicy{MaxBatch: 1}})
	cl, err := Dial(srv.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	trace := cluster.OpenLoopTrace(120, 4000, 3)
	res, err := ReplayOpenLoop(cl, trace, LoadConfig{
		Model: g.Name,
		SLO:   time.Second,
		Inputs: func(i int) map[string]*tensor.Tensor {
			return map[string]*tensor.Tensor{g.Inputs[0]: testInput(i)}
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Error("bursty replay against bounded queues shed nothing")
	}
	if res.Failed != 0 {
		t.Errorf("%d hard failures in replay", res.Failed)
	}
	if res.Completed+res.Shed != res.Requests {
		t.Errorf("accounting broken: %d + %d != %d", res.Completed, res.Shed, res.Requests)
	}
	if res.SLOViolations < res.Shed {
		t.Errorf("sheds must count as SLO violations: %d < %d", res.SLOViolations, res.Shed)
	}
}

func TestShapeSig(t *testing.T) {
	a := map[string]*tensor.Tensor{"x": tensor.New(tensor.FP32, 1, 3, 4)}
	b := map[string]*tensor.Tensor{"x": tensor.New(tensor.FP32, 5, 3, 4)}
	c := map[string]*tensor.Tensor{"x": tensor.New(tensor.FP32, 1, 3, 5)}
	sigA, rowsA, err := shapeSig(a)
	if err != nil || rowsA != 1 {
		t.Fatalf("sig(a): %v rows %d", err, rowsA)
	}
	sigB, rowsB, err := shapeSig(b)
	if err != nil || rowsB != 5 {
		t.Fatalf("sig(b): %v rows %d", err, rowsB)
	}
	if sigA != sigB {
		t.Error("same trailing shape with different batch dims must share a signature")
	}
	sigC, _, err := shapeSig(c)
	if err != nil {
		t.Fatal(err)
	}
	if sigC == sigA {
		t.Error("different trailing shapes must not share a signature")
	}
	if _, _, err := shapeSig(map[string]*tensor.Tensor{
		"x": tensor.New(tensor.FP32, 2, 3),
		"y": tensor.New(tensor.FP32, 3, 3),
	}); err == nil {
		t.Error("mismatched row counts across inputs accepted")
	}
}

// newJSONRequest builds a POST with an optional X-API-Key header.
func newJSONRequest(url string, body []byte, key string) (*http.Request, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	return req, nil
}
