package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vedliot/internal/cluster"
	"vedliot/internal/tensor"
)

// HTTPTensor is the JSON wire form of one FP32 tensor.
type HTTPTensor struct {
	// Shape is the tensor's dimensions, leading dimension = batch.
	Shape []int `json:"shape"`
	// Data is the row-major FP32 payload.
	Data []float32 `json:"data"`
}

// HTTPInferRequest is the POST /v1/infer body.
type HTTPInferRequest struct {
	// Model names the deployment; empty resolves a single-model fleet.
	Model string `json:"model"`
	// Inputs maps input-node names to tensors.
	Inputs map[string]HTTPTensor `json:"inputs"`
}

// HTTPInferResponse is the POST /v1/infer success body.
type HTTPInferResponse struct {
	// Outputs maps output-node names to tensors.
	Outputs map[string]HTTPTensor `json:"outputs"`
}

// Handler returns the server's HTTP/JSON adapter: POST /v1/infer
// (X-API-Key header), GET /v1/models, GET /v1/stats. It shares the
// framed listener's tenants, batchers and admission mapping —
// ErrOverloaded becomes 429 with a Retry-After header — and exists for
// debuggability; the framed protocol is the performance path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenant, ok := s.tenantFor(r.Header.Get("X-API-Key"))
	if !ok {
		s.unauthorized.Add(1)
		http.Error(w, "unknown api key", http.StatusUnauthorized)
		return
	}
	var req HTTPInferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest.Add(1)
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	ins := make(map[string]*tensor.Tensor, len(req.Inputs))
	for name, ht := range req.Inputs {
		t, err := tensor.FromSlice(ht.Data, ht.Shape...)
		if err != nil {
			s.badRequest.Add(1)
			http.Error(w, fmt.Sprintf("input %q: %v", name, err), http.StatusBadRequest)
			return
		}
		ins[name] = t
	}
	s.requests.Add(1)
	b, err := s.batcherFor(tenant, req.Model)
	if err != nil {
		s.badRequest.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	done := make(chan clientReply, 1)
	b.add(r.Context(), ins, func(outs map[string]*tensor.Tensor, err error) {
		done <- clientReply{outs: outs, err: err}
	})
	rep := <-done
	switch {
	case rep.err == nil:
		resp := HTTPInferResponse{Outputs: make(map[string]HTTPTensor, len(rep.outs))}
		for name, t := range rep.outs {
			resp.Outputs[name] = HTTPTensor{Shape: t.Shape, Data: t.F32}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	case errors.Is(rep.err, cluster.ErrOverloaded):
		s.overloaded.Add(1)
		secs := int((s.cfg.RetryAfter + 999999999) / 1000000000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	case errors.Is(rep.err, cluster.ErrClosed):
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		s.errs.Add(1)
		http.Error(w, rep.err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Models []string `json:"models"`
	}{Models: s.sched.Models()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
