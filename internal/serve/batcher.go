package serve

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/tensor"
)

// BatchPolicy shapes socket-boundary coalescing: requests for the same
// (tenant, model) that arrive within a short adaptive window are stacked
// into one cluster submission so the engines run full batches instead of
// singletons. The window tracks the observed arrival gap — it tightens
// as load rises (batches fill before the timer) and never holds a
// request longer than MaxDelay.
type BatchPolicy struct {
	// MaxBatch caps the rows coalesced into one submission. 1 disables
	// coalescing (pure passthrough). Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch may wait
	// for company. Default 1ms.
	MaxDelay time.Duration
	// MinDelay floors the adaptive wait so a single fast client cannot
	// collapse the window to zero between its own back-to-back
	// requests. Default 20µs.
	MinDelay time.Duration
}

func (p BatchPolicy) withDefaults() BatchPolicy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Millisecond
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 20 * time.Microsecond
	}
	return p
}

// batchMember is one request riding a coalesced submission.
type batchMember struct {
	ctx  context.Context
	ins  map[string]*tensor.Tensor
	rows int
	done func(outs map[string]*tensor.Tensor, err error)
}

// batchStats aggregates coalescing telemetry across batchers.
type batchStats struct {
	batches atomic.Int64
	rows    atomic.Int64
}

// batcher coalesces requests for one (tenant, model) pair.
type batcher struct {
	dep    *cluster.Deployment
	policy BatchPolicy
	stats  *batchStats

	mu      sync.Mutex
	pending []batchMember
	rows    int
	sig     string
	gen     uint64
	// gapNS is the EWMA of inter-arrival gaps in nanoseconds; it drives
	// the adaptive flush delay.
	gapNS int64
	last  time.Time
}

func newBatcher(dep *cluster.Deployment, policy BatchPolicy, stats *batchStats) *batcher {
	return &batcher{dep: dep, policy: policy.withDefaults(), stats: stats}
}

// shapeSig fingerprints a request's batch-compatibility class: the
// sorted input names with their non-leading dimensions. Requests with
// the same signature stack along the leading dimension.
func shapeSig(ins map[string]*tensor.Tensor) (string, int, error) {
	names := make([]string, 0, len(ins))
	for name := range ins {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	rows := 0
	for _, name := range names {
		t := ins[name]
		if t == nil || t.DType != tensor.FP32 {
			return "", 0, fmt.Errorf("serve: input %q is not FP32", name)
		}
		r := 1
		rest := tensor.Shape(nil)
		if len(t.Shape) > 0 {
			r = t.Shape[0]
			rest = t.Shape[1:]
		}
		if r < 1 {
			return "", 0, fmt.Errorf("serve: input %q has empty batch dimension", name)
		}
		if rows == 0 {
			rows = r
		} else if r != rows {
			return "", 0, fmt.Errorf("serve: input %q carries %d rows, other inputs %d", name, r, rows)
		}
		sb.WriteString(name)
		sb.WriteByte('[')
		for _, d := range rest {
			sb.WriteString(strconv.Itoa(d))
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	}
	if rows == 0 {
		rows = 1
	}
	return sb.String(), rows, nil
}

// add enqueues one request for coalescing. done fires exactly once,
// from a batcher goroutine, with the request's own output rows.
func (b *batcher) add(ctx context.Context, ins map[string]*tensor.Tensor, done func(map[string]*tensor.Tensor, error)) {
	sig, rows, err := shapeSig(ins)
	if err != nil {
		done(nil, err)
		return
	}
	m := batchMember{ctx: ctx, ins: ins, rows: rows, done: done}

	b.mu.Lock()
	now := time.Now()
	if !b.last.IsZero() {
		gap := int64(now.Sub(b.last))
		if b.gapNS == 0 {
			b.gapNS = gap
		} else {
			b.gapNS += (gap - b.gapNS) / 4
		}
	}
	b.last = now
	// A shape class that cannot stack with the waiting batch flushes it
	// early rather than delaying either class.
	if len(b.pending) > 0 && sig != b.sig {
		b.flushLocked()
	}
	if len(b.pending) == 0 {
		b.sig = sig
	}
	b.pending = append(b.pending, m)
	b.rows += rows
	if b.rows >= b.policy.MaxBatch {
		b.flushLocked()
		b.mu.Unlock()
		return
	}
	if len(b.pending) == 1 {
		// Adaptive window: wait roughly as long as it takes MaxBatch-1
		// more arrivals to show up at the current rate, clamped to the
		// policy bounds. Under load the gap EWMA shrinks and batches
		// fill before the timer; when idle the clamp keeps added
		// latency bounded by MaxDelay.
		delay := time.Duration(b.gapNS) * time.Duration(b.policy.MaxBatch-1)
		if delay < b.policy.MinDelay {
			delay = b.policy.MinDelay
		}
		if delay > b.policy.MaxDelay {
			delay = b.policy.MaxDelay
		}
		gen := b.gen
		time.AfterFunc(delay, func() {
			b.mu.Lock()
			// A generation bump means this batch already flushed (full
			// or displaced); the timer is stale.
			if b.gen == gen && len(b.pending) > 0 {
				b.flushLocked()
			}
			b.mu.Unlock()
		})
	}
	b.mu.Unlock()
}

// flushLocked hands the waiting batch to a submission goroutine.
// Callers hold b.mu.
func (b *batcher) flushLocked() {
	members := b.pending
	b.pending = nil
	b.rows = 0
	b.gen++
	go b.submit(members)
}

// submit stacks the members' inputs, routes one cluster submission and
// splits the output rows back to each member.
func (b *batcher) submit(members []batchMember) {
	if len(members) == 0 {
		return
	}
	b.stats.batches.Add(1)
	totalRows := 0
	for _, m := range members {
		totalRows += m.rows
	}
	b.stats.rows.Add(int64(totalRows))

	// Single member: passthrough, keeping the member's context so
	// cancellation still reaches the queue.
	if len(members) == 1 {
		m := members[0]
		outs, err := b.dep.InferCtx(m.ctx, m.ins)
		m.done(outs, err)
		return
	}

	ins, err := stackInputs(members, totalRows)
	if err != nil {
		for _, m := range members {
			m.done(nil, err)
		}
		return
	}
	// A merged batch runs under a background context: one member's
	// disconnect must not cancel the rest of the batch.
	outs, err := b.dep.InferCtx(context.Background(), ins)
	if err != nil {
		for _, m := range members {
			m.done(nil, err)
		}
		return
	}
	row := 0
	for _, m := range members {
		part, err := sliceRows(outs, row, m.rows, totalRows)
		m.done(part, err)
		row += m.rows
	}
}

// stackInputs concatenates each input across members along the leading
// dimension. Shape compatibility is guaranteed by the batcher's
// signature check.
func stackInputs(members []batchMember, totalRows int) (map[string]*tensor.Tensor, error) {
	stacked := make(map[string]*tensor.Tensor, len(members[0].ins))
	for name, first := range members[0].ins {
		rest := tensor.Shape(nil)
		if len(first.Shape) > 0 {
			rest = first.Shape[1:]
		}
		shape := append(tensor.Shape{totalRows}, rest...)
		out := tensor.New(tensor.FP32, shape...)
		off := 0
		for _, m := range members {
			t := m.ins[name]
			if t == nil {
				return nil, fmt.Errorf("serve: batch member missing input %q", name)
			}
			off += copy(out.F32[off:], t.F32)
		}
		if off != len(out.F32) {
			return nil, fmt.Errorf("serve: input %q stacked %d of %d elements", name, off, len(out.F32))
		}
		stacked[name] = out
	}
	return stacked, nil
}

// sliceRows extracts one member's rows from each batched output.
func sliceRows(outs map[string]*tensor.Tensor, row, rows, totalRows int) (map[string]*tensor.Tensor, error) {
	part := make(map[string]*tensor.Tensor, len(outs))
	for name, t := range outs {
		if len(t.Shape) == 0 || t.Shape[0] != totalRows {
			return nil, fmt.Errorf("serve: output %q shape %v does not carry the %d batched rows", name, t.Shape, totalRows)
		}
		rowSize := t.NumElements() / totalRows
		shape := append(tensor.Shape{rows}, t.Shape[1:]...)
		slice := tensor.New(tensor.FP32, shape...)
		copy(slice.F32, t.F32[row*rowSize:(row+rows)*rowSize])
		part[name] = slice
	}
	return part, nil
}
