package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/tensor"
)

// DefaultTenant is the tenant name used in open mode (no API keys).
const DefaultTenant = "default"

// DefaultRetryAfter is the retry hint attached to shed requests when
// the config does not set one.
const DefaultRetryAfter = 2 * time.Millisecond

// Config shapes a listener.
type Config struct {
	// Keys maps API key -> tenant name. Nil runs the server in open
	// mode: no handshake required, every connection serves tenant
	// "default". Empty (non-nil) rejects everyone.
	Keys map[string]string
	// Batch is the socket-boundary coalescing policy.
	Batch BatchPolicy
	// RetryAfter is the hint returned with shed requests. Default 2ms.
	RetryAfter time.Duration
	// MaxFrame bounds a frame body in bytes. Default 16MB.
	MaxFrame int
}

func (c Config) withDefaults() Config {
	c.Batch = c.Batch.withDefaults()
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// ServerStats is a server's cumulative ingestion telemetry.
type ServerStats struct {
	// Conns is the number of currently open connections.
	Conns int64
	// Accepted counts connections accepted over the server's life.
	Accepted int64
	// Requests counts decoded inference requests.
	Requests int64
	// Overloaded counts requests shed with a retry-after reply.
	Overloaded int64
	// Unauthorized counts rejected keys (handshake or per-request).
	Unauthorized int64
	// BadRequest counts undecodable or malformed requests.
	BadRequest int64
	// Errors counts engine-side failures surfaced to clients.
	Errors int64
	// Batches counts coalesced cluster submissions.
	Batches int64
	// BatchedRows counts the rows those submissions carried.
	BatchedRows int64
	// MeanBatch is BatchedRows / Batches.
	MeanBatch float64
}

// Server is a framed-TCP ingestion front end over a cluster scheduler.
type Server struct {
	ln    net.Listener
	sched *cluster.Scheduler
	cfg   Config

	mu       sync.Mutex
	batchers map[string]*batcher
	conns    map[net.Conn]struct{}
	closed   bool

	wg    sync.WaitGroup
	batch batchStats

	accepted     atomic.Int64
	requests     atomic.Int64
	overloaded   atomic.Int64
	unauthorized atomic.Int64
	badRequest   atomic.Int64
	errs         atomic.Int64
}

// Listen starts a framed-TCP server on addr (e.g. "127.0.0.1:0") over
// the scheduler. The returned server accepts until Close.
func Listen(addr string, sched *cluster.Scheduler, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:       ln,
		sched:    sched,
		cfg:      cfg.withDefaults(),
		batchers: make(map[string]*batcher),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs open connections and waits for the
// connection handlers to drain. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Stats snapshots the server's ingestion telemetry.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	conns := int64(len(s.conns))
	s.mu.Unlock()
	st := ServerStats{
		Conns:        conns,
		Accepted:     s.accepted.Load(),
		Requests:     s.requests.Load(),
		Overloaded:   s.overloaded.Load(),
		Unauthorized: s.unauthorized.Load(),
		BadRequest:   s.badRequest.Load(),
		Errors:       s.errs.Load(),
		Batches:      s.batch.batches.Load(),
		BatchedRows:  s.batch.rows.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedRows) / float64(st.Batches)
	}
	return st
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.accepted.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// batcherFor resolves the (tenant, model) batcher, creating it on first
// use.
func (s *Server) batcherFor(tenant, model string) (*batcher, error) {
	key := tenant + "\x00" + model
	s.mu.Lock()
	if b, ok := s.batchers[key]; ok {
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	dep, err := s.sched.Deployment(model)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.batchers[key]; ok {
		return b, nil
	}
	b := newBatcher(dep, s.cfg.Batch, &s.batch)
	s.batchers[key] = b
	return b, nil
}

// tenantFor resolves an API key to a tenant.
func (s *Server) tenantFor(key string) (string, bool) {
	if s.cfg.Keys == nil {
		return DefaultTenant, true
	}
	tenant, ok := s.cfg.Keys[key]
	return tenant, ok
}

// serveConn runs one connection: a reader goroutine (this one) decoding
// frames and a writer goroutine draining the outbound queue, with a
// per-connection context cancelled the moment the peer disappears so
// queued work stops consuming replica time.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan []byte, 256)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case b := <-out:
				_, err := conn.Write(b)
				putBuf(b)
				if err != nil {
					// A dead peer: cancel queued work and unblock the
					// reader too.
					cancel()
					conn.Close()
				}
			case <-ctx.Done():
				for {
					select {
					case b := <-out:
						putBuf(b)
					default:
						return
					}
				}
			}
		}
	}()

	// send hands a finished frame to the writer, dropping it if the
	// connection is already gone.
	send := func(b []byte) {
		select {
		case out <- b:
		case <-ctx.Done():
			putBuf(b)
		}
	}

	// inflight tracks outstanding request completions so cleanup can
	// wait for their callbacks before the writer drains away.
	var inflight sync.WaitGroup

	defer func() {
		cancel()
		conn.Close()
		inflight.Wait()
		writerWG.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	tenant := DefaultTenant
	authed := s.cfg.Keys == nil
	fr := newFrameReader(conn, s.cfg.MaxFrame)
	for {
		f, err := fr.next()
		if err != nil {
			return
		}
		switch f.typ {
		case TypeHello:
			key, err := f.body.str()
			if err != nil {
				// Written synchronously: the deferred teardown would
				// race the writer and drop a queued refusal. No
				// completions are in flight during the handshake, so a
				// direct write cannot interleave with the writer.
				writeDirect(conn, errorReply(f.id, StatusBadRequest, "malformed hello"))
				return
			}
			t, ok := s.tenantFor(key)
			if !ok {
				s.unauthorized.Add(1)
				writeDirect(conn, errorReply(f.id, StatusUnauthorized, "unknown api key"))
				return
			}
			tenant, authed = t, true
			b := beginFrame(TypeHelloOK, f.id, 2+len(tenant))
			b = appendString(b, tenant)
			send(finishFrame(b))
		case TypeRequest:
			if !authed {
				s.unauthorized.Add(1)
				send(errorReply(f.id, StatusUnauthorized, "hello required"))
				continue
			}
			s.requests.Add(1)
			model, err := f.body.str()
			if err != nil {
				s.badRequest.Add(1)
				send(errorReply(f.id, StatusBadRequest, "malformed request"))
				continue
			}
			ins, err := f.body.tensorMap()
			if err != nil {
				s.badRequest.Add(1)
				send(errorReply(f.id, StatusBadRequest, err.Error()))
				continue
			}
			b, err := s.batcherFor(tenant, model)
			if err != nil {
				s.badRequest.Add(1)
				send(errorReply(f.id, StatusBadRequest, err.Error()))
				continue
			}
			id := f.id
			inflight.Add(1)
			b.add(ctx, ins, func(outs map[string]*tensor.Tensor, err error) {
				defer inflight.Done()
				send(s.encodeReply(id, outs, err))
			})
		default:
			send(errorReply(f.id, StatusBadRequest, "unknown frame type"))
		}
	}
}

// encodeReply turns one completion into a reply frame, classifying the
// error into the protocol's status codes.
func (s *Server) encodeReply(id uint64, outs map[string]*tensor.Tensor, err error) []byte {
	switch {
	case err == nil:
		b := beginFrame(TypeReply, id, 64)
		b = append(b, StatusOK)
		b, encErr := appendTensorMap(b, outs)
		if encErr != nil {
			putBuf(b)
			s.errs.Add(1)
			return errorReply(id, StatusError, encErr.Error())
		}
		return finishFrame(b)
	case errors.Is(err, cluster.ErrOverloaded):
		s.overloaded.Add(1)
		b := beginFrame(TypeReply, id, 5)
		b = append(b, StatusOverloaded)
		ms := s.cfg.RetryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(ms))
		return finishFrame(b)
	case errors.Is(err, cluster.ErrClosed):
		return errorReply(id, StatusShuttingDown, "fleet shutting down")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller vanished; the reply has nowhere to go but the
		// writer will drop it with the dead connection.
		return errorReply(id, StatusError, err.Error())
	default:
		s.errs.Add(1)
		return errorReply(id, StatusError, err.Error())
	}
}

// writeDirect writes one frame synchronously and recycles its buffer.
func writeDirect(conn net.Conn, b []byte) {
	conn.Write(b)
	putBuf(b)
}

// errorReply builds a non-OK reply with a u16-length-prefixed message.
func errorReply(id uint64, status byte, msg string) []byte {
	b := beginFrame(TypeReply, id, 3+len(msg))
	b = append(b, status)
	b = appendString(b, msg)
	return finishFrame(b)
}
