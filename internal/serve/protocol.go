// Package serve is the fleet's network front door: a length-prefixed
// framed-TCP protocol (plus an HTTP/JSON adapter) over
// cluster.Scheduler, with per-tenant API keys, admission control that
// maps shed load to retry-after hints, and adaptive request batching at
// the socket boundary so the engines see full batches instead of
// singleton dispatches.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"vedliot/internal/tensor"
)

// Version is the wire-protocol version byte carried by every frame.
const Version = 1

// Frame types. Every frame is a uint32 little-endian length prefix
// followed by [version byte, type byte, uint64 LE id, payload].
const (
	// TypeHello opens a connection: payload is a u16-length-prefixed
	// API key (empty in open mode).
	TypeHello = byte(1)
	// TypeHelloOK acknowledges Hello: payload is the u16-length-prefixed
	// tenant name the key resolved to.
	TypeHelloOK = byte(2)
	// TypeRequest carries one inference request: a u16-length-prefixed
	// model name followed by an encoded tensor map.
	TypeRequest = byte(3)
	// TypeReply carries one response: a status byte, then a tensor map
	// (StatusOK), a u32 retry-after hint in milliseconds
	// (StatusOverloaded), or a u16-length-prefixed message (errors).
	TypeReply = byte(4)
)

// Reply status codes.
const (
	// StatusOK precedes an encoded tensor map of outputs.
	StatusOK = byte(0)
	// StatusOverloaded signals shed load; the payload is a u32 LE
	// retry-after hint in milliseconds.
	StatusOverloaded = byte(1)
	// StatusUnauthorized signals a rejected API key.
	StatusUnauthorized = byte(2)
	// StatusBadRequest signals an undecodable or malformed request.
	StatusBadRequest = byte(3)
	// StatusError signals an engine-side failure.
	StatusError = byte(4)
	// StatusShuttingDown signals the server is draining.
	StatusShuttingDown = byte(5)
)

// DefaultMaxFrame bounds a frame body; larger frames poison the
// connection and are refused before allocation.
const DefaultMaxFrame = 16 << 20

// headerLen is the fixed frame-body prefix: version, type, id.
const headerLen = 1 + 1 + 8

// dtFP32 is the only tensor dtype code in protocol version 1. The fleet
// quantizes internally; the wire stays FP32.
const dtFP32 = byte(0)

// bufPool recycles frame buffers so steady-state encoding does not
// allocate.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf leases a buffer of at least n bytes, length 0.
func getBuf(n int) []byte {
	b := *bufPool.Get().(*[]byte)
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// putBuf returns a leased buffer to the pool.
func putBuf(b []byte) {
	bufPool.Put(&b)
}

// beginFrame starts a frame body in a pooled buffer: a placeholder
// length prefix plus the fixed header. finishFrame patches the length.
func beginFrame(typ byte, id uint64, payloadHint int) []byte {
	b := getBuf(4 + headerLen + payloadHint)
	b = append(b, 0, 0, 0, 0, Version, typ)
	b = binary.LittleEndian.AppendUint64(b, id)
	return b
}

// finishFrame patches the length prefix once the payload is appended.
func finishFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b
}

// appendString appends a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// appendTensorMap encodes a named FP32 tensor map: u16 count, then per
// tensor (sorted by name for a canonical encoding) a u16-length-prefixed
// name, dtype byte, rank byte, u32 LE dims and the LE float payload.
func appendTensorMap(b []byte, m map[string]*tensor.Tensor) ([]byte, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(names)))
	for _, name := range names {
		t := m[name]
		if t == nil || t.DType != tensor.FP32 {
			return nil, fmt.Errorf("serve: tensor %q is not FP32", name)
		}
		if len(t.Shape) > 255 {
			return nil, fmt.Errorf("serve: tensor %q rank %d exceeds protocol limit", name, len(t.Shape))
		}
		b = appendString(b, name)
		b = append(b, dtFP32, byte(len(t.Shape)))
		for _, d := range t.Shape {
			b = binary.LittleEndian.AppendUint32(b, uint32(d))
		}
		for _, v := range t.F32 {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
		}
	}
	return b, nil
}

// decoder walks one frame body.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.b) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// tensorMap decodes an encoded tensor map into freshly allocated FP32
// tensors (the frame buffer is recycled, so no aliasing).
func (d *decoder) tensorMap() (map[string]*tensor.Tensor, error) {
	count, err := d.u16()
	if err != nil {
		return nil, err
	}
	m := make(map[string]*tensor.Tensor, count)
	for i := 0; i < int(count); i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		dt, err := d.u8()
		if err != nil {
			return nil, err
		}
		if dt != dtFP32 {
			return nil, fmt.Errorf("serve: tensor %q: unsupported dtype %d", name, dt)
		}
		rank, err := d.u8()
		if err != nil {
			return nil, err
		}
		shape := make([]int, rank)
		elems := 1
		for j := range shape {
			dim, err := d.u32()
			if err != nil {
				return nil, err
			}
			shape[j] = int(dim)
			elems *= int(dim)
		}
		if elems < 0 || d.off+4*elems > len(d.b) {
			return nil, io.ErrUnexpectedEOF
		}
		t := tensor.New(tensor.FP32, shape...)
		for j := range t.F32 {
			t.F32[j] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off+4*j:]))
		}
		d.off += 4 * elems
		m[name] = t
	}
	return m, nil
}

// frame is one decoded frame header plus its body.
type frame struct {
	typ  byte
	id   uint64
	body decoder
}

// frameReader reads frames from a buffered stream into a single reused
// buffer: zero steady-state allocation on the read path.
type frameReader struct {
	r        *bufio.Reader
	buf      []byte
	maxFrame int
}

func newFrameReader(r io.Reader, maxFrame int) *frameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10), maxFrame: maxFrame}
}

// next reads one frame. The returned frame's body aliases the reader's
// internal buffer and is valid until the following next call.
func (fr *frameReader) next() (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < headerLen || n > fr.maxFrame {
		return frame{}, fmt.Errorf("serve: frame body of %d bytes outside [%d, %d]", n, headerLen, fr.maxFrame)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return frame{}, err
	}
	if fr.buf[0] != Version {
		return frame{}, fmt.Errorf("serve: unsupported protocol version %d", fr.buf[0])
	}
	f := frame{typ: fr.buf[1], id: binary.LittleEndian.Uint64(fr.buf[2:10])}
	f.body = decoder{b: fr.buf, off: headerLen}
	return f, nil
}
