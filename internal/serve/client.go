package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vedliot/internal/tensor"
)

// ErrUnauthorized is returned when the server rejects the client's API
// key.
var ErrUnauthorized = errors.New("serve: unauthorized")

// ErrShuttingDown is returned when the fleet behind the server is
// draining.
var ErrShuttingDown = errors.New("serve: server shutting down")

// RetryAfterError is the client-side face of shed load: the server
// refused the request and hinted when to retry.
type RetryAfterError struct {
	// After is the server's retry hint.
	After time.Duration
}

// Error implements the error interface.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("serve: overloaded, retry after %v", e.After)
}

// clientReply is one decoded reply delivered to a waiting call.
type clientReply struct {
	outs map[string]*tensor.Tensor
	err  error
}

// Client is one framed-TCP connection to a serve.Server. It is safe for
// concurrent use: calls are multiplexed over the connection by request
// id.
type Client struct {
	conn   net.Conn
	tenant string

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan clientReply
	err     error

	nextID atomic.Uint64
	wg     sync.WaitGroup
}

// Dial connects and performs the Hello handshake with the given API key
// (empty for open-mode servers).
func Dial(addr, key string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan clientReply)}
	b := beginFrame(TypeHello, 0, 2+len(key))
	b = appendString(b, key)
	if _, err := conn.Write(finishFrame(b)); err != nil {
		putBuf(b)
		conn.Close()
		return nil, fmt.Errorf("serve: hello: %w", err)
	}
	putBuf(b)
	fr := newFrameReader(conn, DefaultMaxFrame)
	f, err := fr.next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: hello reply: %w", err)
	}
	switch f.typ {
	case TypeHelloOK:
		tenant, err := f.body.str()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("serve: hello reply: %w", err)
		}
		c.tenant = tenant
	case TypeReply:
		status, _ := f.body.u8()
		conn.Close()
		if status == StatusUnauthorized {
			return nil, ErrUnauthorized
		}
		return nil, fmt.Errorf("serve: hello refused with status %d", status)
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: unexpected hello reply type %d", f.typ)
	}
	c.wg.Add(1)
	go c.readLoop(fr)
	return c, nil
}

// Tenant reports the tenant the server resolved for this connection.
func (c *Client) Tenant() string { return c.tenant }

// Close severs the connection; outstanding calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// readLoop decodes replies and routes them to waiting calls by id.
func (c *Client) readLoop(fr *frameReader) {
	defer c.wg.Done()
	for {
		f, err := fr.next()
		if err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		if f.typ != TypeReply {
			continue
		}
		rep := decodeReply(&f.body)
		c.mu.Lock()
		ch, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- rep
		}
	}
}

// decodeReply maps a reply frame body to outputs or a typed error.
func decodeReply(d *decoder) clientReply {
	status, err := d.u8()
	if err != nil {
		return clientReply{err: fmt.Errorf("serve: truncated reply: %w", err)}
	}
	switch status {
	case StatusOK:
		outs, err := d.tensorMap()
		if err != nil {
			return clientReply{err: fmt.Errorf("serve: bad reply payload: %w", err)}
		}
		return clientReply{outs: outs}
	case StatusOverloaded:
		ms, err := d.u32()
		if err != nil {
			return clientReply{err: fmt.Errorf("serve: bad overload reply: %w", err)}
		}
		return clientReply{err: &RetryAfterError{After: time.Duration(ms) * time.Millisecond}}
	case StatusUnauthorized:
		return clientReply{err: ErrUnauthorized}
	case StatusShuttingDown:
		return clientReply{err: ErrShuttingDown}
	default:
		msg, _ := d.str()
		return clientReply{err: fmt.Errorf("serve: request failed (status %d): %s", status, msg)}
	}
}

// fail resolves every outstanding call with the connection error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan clientReply)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- clientReply{err: err}
	}
}

// InferCtx sends one request and blocks for its reply or the context.
func (c *Client) InferCtx(ctx context.Context, model string, ins map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	id := c.nextID.Add(1)
	ch := make(chan clientReply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	b := beginFrame(TypeRequest, id, 64)
	b = appendString(b, model)
	b, err := appendTensorMap(b, ins)
	if err != nil {
		putBuf(b)
		c.forget(id)
		return nil, err
	}
	b = finishFrame(b)
	c.wmu.Lock()
	_, err = c.conn.Write(b)
	c.wmu.Unlock()
	putBuf(b)
	if err != nil {
		c.forget(id)
		return nil, fmt.Errorf("serve: send: %w", err)
	}

	select {
	case rep := <-ch:
		return rep.outs, rep.err
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons one pending call (late replies are dropped).
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Pool fans calls out over several connections round-robin, hiding
// single-connection write serialization from high-concurrency load.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
}

// DialPool opens n connections with the same key.
func DialPool(addr, key string, n int) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{clients: make([]*Client, 0, n)}
	for i := 0; i < n; i++ {
		c, err := Dial(addr, key)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// InferCtx routes one request over the next connection in the pool.
func (p *Pool) InferCtx(ctx context.Context, model string, ins map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	c := p.clients[p.next.Add(1)%uint64(len(p.clients))]
	return c.InferCtx(ctx, model, ins)
}

// Close severs every pooled connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
