//go:build amd64 && !purego

#include "textflag.h"

// func DotInt16(a, b []int16) int32
//
// Integer dot product via PMADDWD: each instruction multiplies eight
// int16 pairs and sums adjacent products into four int32 lanes. The
// main loop consumes 16 elements per iteration (two PMADDWD), the tail
// runs scalar, and the four lanes are reduced at the end.
TEXT ·DotInt16(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), DX
	CMPQ DX, CX
	JGE  lenok
	MOVQ DX, CX
lenok:
	PXOR X0, X0 // vector accumulator (4 x int32)
	XORL AX, AX // scalar accumulator

loop16:
	CMPQ CX, $16
	JLT  tail
	MOVOU (SI), X1
	MOVOU (DI), X2
	PMADDWL X2, X1
	PADDL X1, X0
	MOVOU 16(SI), X3
	MOVOU 16(DI), X4
	PMADDWL X4, X3
	PADDL X3, X0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $16, CX
	JMP  loop16

tail:
	CMPQ CX, $0
	JLE  reduce
	MOVWLSX (SI), BX
	MOVWLSX (DI), R9
	IMULL R9, BX
	ADDL BX, AX
	ADDQ $2, SI
	ADDQ $2, DI
	DECQ CX
	JMP  tail

reduce:
	// Horizontal sum of the four int32 lanes.
	PSHUFD $0xEE, X0, X1
	PADDL X1, X0
	PSHUFD $0x55, X0, X1
	PADDL X1, X0
	MOVQ X0, BX
	ADDL BX, AX
	MOVL AX, ret+48(FP)
	RET

// func AxpyInt16(dst []int32, x []int16, w int16)
//
// dst[i] += w * x[i]: the broadcast weight multiplies eight int16 lanes
// per iteration (PMULLW/PMULHW give the 32-bit products), accumulated
// into the int32 destination.
TEXT ·AxpyInt16(SB), NOSPLIT, $0-50
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	CMPQ DX, CX
	JGE  alenok
	MOVQ DX, CX
alenok:
	MOVWLSX w+48(FP), AX
	MOVQ AX, X7
	PSHUFLW $0, X7, X7 // w in all four low words
	PSHUFD $0, X7, X7  // w in all eight words

loop8:
	CMPQ CX, $8
	JLT  atail
	MOVOU (SI), X1     // 8 x int16
	MOVOU X1, X2
	PMULLW X7, X1      // low 16 bits of products
	PMULHW X7, X2      // high 16 bits of products (signed)
	MOVOU X1, X3
	PUNPCKLWL X2, X1   // 4 x int32 (elements 0..3)
	PUNPCKHWL X2, X3   // 4 x int32 (elements 4..7)
	MOVOU (DI), X4
	PADDL X1, X4
	MOVOU X4, (DI)
	MOVOU 16(DI), X5
	PADDL X3, X5
	MOVOU X5, 16(DI)
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  loop8

atail:
	CMPQ CX, $0
	JLE  adone
	MOVWLSX (SI), BX
	IMULL AX, BX
	ADDL BX, (DI)
	ADDQ $2, SI
	ADDQ $4, DI
	DECQ CX
	JMP  atail

adone:
	RET
