//go:build amd64 && !purego && !noasm

#include "textflag.h"

// func DotInt16(a, b []int16) int32
//
// Integer dot product via PMADDWD: each instruction multiplies eight
// int16 pairs and sums adjacent products into four int32 lanes. The
// main loop consumes 16 elements per iteration (two PMADDWD), the tail
// runs scalar, and the four lanes are reduced at the end.
TEXT ·DotInt16(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), DX
	CMPQ DX, CX
	JGE  lenok
	MOVQ DX, CX
lenok:
	PXOR X0, X0 // vector accumulator (4 x int32)
	XORL AX, AX // scalar accumulator

loop16:
	CMPQ CX, $16
	JLT  tail
	MOVOU (SI), X1
	MOVOU (DI), X2
	PMADDWL X2, X1
	PADDL X1, X0
	MOVOU 16(SI), X3
	MOVOU 16(DI), X4
	PMADDWL X4, X3
	PADDL X3, X0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $16, CX
	JMP  loop16

tail:
	CMPQ CX, $0
	JLE  reduce
	MOVWLSX (SI), BX
	MOVWLSX (DI), R9
	IMULL R9, BX
	ADDL BX, AX
	ADDQ $2, SI
	ADDQ $2, DI
	DECQ CX
	JMP  tail

reduce:
	// Horizontal sum of the four int32 lanes.
	PSHUFD $0xEE, X0, X1
	PADDL X1, X0
	PSHUFD $0x55, X0, X1
	PADDL X1, X0
	MOVQ X0, BX
	ADDL BX, AX
	MOVL AX, ret+48(FP)
	RET

// func AxpyInt16(dst []int32, x []int16, w int16)
//
// dst[i] += w * x[i]: the broadcast weight multiplies eight int16 lanes
// per iteration (PMULLW/PMULHW give the 32-bit products), accumulated
// into the int32 destination.
TEXT ·AxpyInt16(SB), NOSPLIT, $0-50
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	CMPQ DX, CX
	JGE  alenok
	MOVQ DX, CX
alenok:
	MOVWLSX w+48(FP), AX
	MOVQ AX, X7
	PSHUFLW $0, X7, X7 // w in all four low words
	PSHUFD $0, X7, X7  // w in all eight words

loop8:
	CMPQ CX, $8
	JLT  atail
	MOVOU (SI), X1     // 8 x int16
	MOVOU X1, X2
	PMULLW X7, X1      // low 16 bits of products
	PMULHW X7, X2      // high 16 bits of products (signed)
	MOVOU X1, X3
	PUNPCKLWL X2, X1   // 4 x int32 (elements 0..3)
	PUNPCKHWL X2, X3   // 4 x int32 (elements 4..7)
	MOVOU (DI), X4
	PADDL X1, X4
	MOVOU X4, (DI)
	MOVOU 16(DI), X5
	PADDL X3, X5
	MOVOU X5, 16(DI)
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  loop8

atail:
	CMPQ CX, $0
	JLE  adone
	MOVWLSX (SI), BX
	IMULL AX, BX
	ADDL BX, (DI)
	ADDQ $2, SI
	ADDQ $4, DI
	DECQ CX
	JMP  atail

adone:
	RET

// func axpyInt16Stride2(dst []int32, x []int16, w int16)
//
// dst[i] += w * x[2i], requiring len(x) >= 2*len(dst): PMADDWD against
// the broadcast pair (w, 0) turns four whole input pairs into the four
// even-element products directly. The scalar tail loads only the even
// halfword, so it never touches the unused odd partner.
TEXT ·axpyInt16Stride2(SB), NOSPLIT, $0-50
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVWLSX w+48(FP), AX
	MOVL AX, BX
	ANDL $0xFFFF, BX // pair (w, 0): low word w, high word 0
	MOVL BX, X7
	PSHUFD $0, X7, X7 // (w, 0) in all four dwords

sloop4:
	CMPQ CX, $4
	JLT  stail
	MOVOU (SI), X1 // 4 pairs of int16
	PMADDWL X7, X1 // 4 x int32: w * even element
	MOVOU (DI), X2
	PADDL X1, X2
	MOVOU X2, (DI)
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $4, CX
	JMP  sloop4

stail:
	CMPQ CX, $0
	JLE  sdone
	MOVWLSX (SI), BX
	IMULL AX, BX
	ADDL BX, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JMP  stail

sdone:
	RET

// func widenShiftInt8(dst []int16, src []int8, zp int16)
//
// dst[i] = int16(src[i]) - zp over len(dst) elements (len(src) equal).
// Sign extension is the SSE2 self-interleave trick: PUNPCKLBW of a
// register with itself doubles each byte into a word, and PSRAW $8
// arithmetic-shifts the copy into a sign-extended int16.
TEXT ·widenShiftInt8(SB), NOSPLIT, $0-50
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVWLSX zp+48(FP), AX
	MOVL AX, BX
	MOVL BX, X7
	PSHUFLW $0, X7, X7
	PSHUFD $0, X7, X7 // zp in all eight words

wloop8:
	CMPQ CX, $8
	JLT  wtail
	MOVQ (SI), X1     // 8 int8 codes
	PUNPCKLBW X1, X1
	PSRAW $8, X1      // sign-extended int16
	PSUBW X7, X1
	MOVOU X1, (DI)
	ADDQ $8, SI
	ADDQ $16, DI
	SUBQ $8, CX
	JMP  wloop8

wtail:
	CMPQ CX, $0
	JLE  wdone
	MOVBLSX (SI), BX
	SUBL AX, BX
	MOVW BX, (DI)
	INCQ SI
	ADDQ $2, DI
	DECQ CX
	JMP  wtail

wdone:
	RET

// func packPairShiftInt8(out []int16, r0, r1 []int8, zp int16)
//
// out[2i] = int16(r0[i]) - zp, out[2i+1] = int16(r1[i]) - zp: widen and
// shift both rows (see widenShiftInt8), then PUNPCKLWD/PUNPCKHWD
// interleave them into the PMADDWD pair layout.
TEXT ·packPairShiftInt8(SB), NOSPLIT, $0-74
	MOVQ out_base+0(FP), DI
	MOVQ r0_base+24(FP), SI
	MOVQ r0_len+32(FP), CX
	MOVQ r1_base+48(FP), R9
	MOVWLSX zp+72(FP), AX
	MOVL AX, BX
	MOVL BX, X7
	PSHUFLW $0, X7, X7
	PSHUFD $0, X7, X7 // zp in all eight words

qloop8:
	CMPQ CX, $8
	JLT  qtail
	MOVQ (SI), X1
	PUNPCKLBW X1, X1
	PSRAW $8, X1
	PSUBW X7, X1 // 8 shifted int16 of r0
	MOVQ (R9), X2
	PUNPCKLBW X2, X2
	PSRAW $8, X2
	PSUBW X7, X2 // 8 shifted int16 of r1
	MOVOU X1, X3
	PUNPCKLWL X2, X3 // pairs 0..3
	PUNPCKHWL X2, X1 // pairs 4..7
	MOVOU X3, (DI)
	MOVOU X1, 16(DI)
	ADDQ $8, SI
	ADDQ $8, R9
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  qloop8

qtail:
	CMPQ CX, $0
	JLE  qdone
	MOVBLSX (SI), BX
	SUBL AX, BX
	MOVW BX, (DI)
	MOVBLSX (R9), BX
	SUBL AX, BX
	MOVW BX, 2(DI)
	INCQ SI
	INCQ R9
	ADDQ $4, DI
	DECQ CX
	JMP  qtail

qdone:
	RET
