//go:build amd64 && !purego && !noasm

#include "textflag.h"

// func requantInt8AVX512(out *int8, acc *int32, n int, mult, round int64, shift uint64, zp int32)
//
// 512-bit form of Requant.Apply + ClampInt8 over 16 accumulators per
// iteration, bit-identical to the scalar loop and the AVX2 kernel:
//
//	out[i] = sat8(zp + int32((int64(acc[i])*mult + round) >> shift))
//
// Two AVX-512 instructions erase the AVX2 kernel's contortions: VPSRAQ
// is the native 64-bit arithmetic right shift (no sign-bit bias
// dance), and VPMOVSDB saturates sixteen int32 lanes straight to int8
// in linear order (no VPACKSSDW/VPERMQ reinterleave). Odd-lane results
// merge back between the even ones with a masked dword move under
// K1 = 0xAAAA.
TEXT ·requantInt8AVX512(SB), NOSPLIT, $0-52
	MOVQ out+0(FP), DI
	MOVQ acc+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ mult+24(FP), AX
	VMOVQ AX, X8
	VPBROADCASTQ X8, Z8 // mult in every qword
	MOVQ round+32(FP), AX
	VMOVQ AX, X9
	VPBROADCASTQ X9, Z9 // round in every qword
	MOVQ shift+40(FP), AX
	VMOVQ AX, X10       // shift count for VPSRAQ
	MOVL zp+48(FP), AX
	VMOVD AX, X13
	VPBROADCASTD X13, Z13 // zp in every dword
	MOVL $0xAAAA, AX
	KMOVW AX, K1 // odd dword lanes

loop16:
	CMPQ CX, $16
	JLT  done
	VMOVDQU32 (SI), Z0 // acc[0:16]

	VPMULDQ Z8, Z0, Z2 // products of even dwords
	VPSRLQ  $32, Z0, Z3
	VPMULDQ Z8, Z3, Z3 // products of odd dwords
	VPADDQ  Z9, Z2, Z2
	VPADDQ  Z9, Z3, Z3
	VPSRAQ  X10, Z2, Z2
	VPSRAQ  X10, Z3, Z3
	VPSLLQ  $32, Z3, Z3
	VMOVDQU32 Z3, K1, Z2 // odd results into the odd dword lanes
	VPADDD  Z13, Z2, Z2
	VPMOVSDB Z2, X2 // saturating int32 -> int8, linear order
	VMOVDQU X2, (DI)

	ADDQ $64, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  loop16

done:
	VZEROUPPER
	RET
