package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fp16EdgeFloats are FP32 inputs that stress every conversion branch:
// NaN (with payload), infinities, overflow, FP16-subnormal range,
// underflow, signed zero and round-to-nearest-even ties.
func fp16EdgeFloats() []float32 {
	vals := []float32{
		0, float32(math.Copysign(0, -1)),
		1, -1, 0.5, 65504, -65504, 65520, 65536, 1e10, -1e10,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()),
		math.Float32frombits(0x7fc01234), // quiet NaN with payload
		math.Float32frombits(0xffc7ffff), // negative NaN, payload straddling the truncation
		math.Float32frombits(0x7f800001), // signaling NaN, minimal payload
		6.1035156e-05,                    // smallest FP16 normal
		6.0975552e-05,                    // just below: subnormal
		5.9604645e-08,                    // smallest FP16 subnormal
		5.96e-08, 2.98e-08, 2.9e-08,      // around the subnormal rounding threshold
		1e-20, -1e-20, // underflow to signed zero
		1.0009766, 1.0004883, 1.0014648, // RNE ties at the 10-bit boundary
		2049.0 / 2048.0, 4097.0 / 4096.0,
		3.14159265, -2.71828, 1e4, -1e-4,
	}
	return vals
}

// TestF16ToF32MatchesScalar checks the packed FP16->FP32 conversion
// bitwise against the scalar converter over all 65536 halfword codes,
// padded to exercise both the vector body and the scalar tail.
func TestF16ToF32MatchesScalar(t *testing.T) {
	src := make([]uint16, 1<<16)
	for i := range src {
		src[i] = uint16(i)
	}
	for _, n := range []int{len(src), 17, 16, 15, 1, 0} {
		dst := make([]float32, n)
		F16ToF32(dst, src)
		for i := range dst {
			want := FP16ToFloat(src[i])
			if math.Float32bits(dst[i]) != math.Float32bits(want) {
				t.Fatalf("code %#04x: packed %#08x, scalar %#08x",
					src[i], math.Float32bits(dst[i]), math.Float32bits(want))
			}
		}
	}
}

// TestF32ToF16MatchesScalar checks the packed FP32->FP16 conversion
// bitwise against the scalar converter on edge cases and random
// values, across tail lengths.
func TestF32ToF16MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := fp16EdgeFloats()
	for len(src) < 1000 {
		switch rng.Intn(3) {
		case 0: // random bit pattern: hits NaN space, denormals, everything
			src = append(src, math.Float32frombits(rng.Uint32()))
		case 1: // FP16-representable magnitude range
			src = append(src, (rng.Float32()*2-1)*65504)
		default: // subnormal range
			src = append(src, (rng.Float32()*2-1)*6e-5)
		}
	}
	for _, n := range []int{len(src), 33, 32, 31, 16, 3, 0} {
		dst := make([]uint16, n)
		F32ToF16(dst, src)
		for i := range dst {
			if want := FloatToFP16(src[i]); dst[i] != want {
				t.Fatalf("value %g (%#08x): packed %#04x, scalar %#04x",
					src[i], math.Float32bits(src[i]), dst[i], want)
			}
		}
	}
}

// TestFP16RoundTripExact checks that every FP16 code survives a
// packed round trip through FP32 unchanged (conversion to FP32 is
// exact, and back is lossless), modulo NaN quieting.
func TestFP16RoundTripExact(t *testing.T) {
	src := make([]uint16, 1<<16)
	for i := range src {
		src[i] = uint16(i)
	}
	wide := make([]float32, len(src))
	back := make([]uint16, len(src))
	F16ToF32(wide, src)
	F32ToF16(back, wide)
	for i, h := range src {
		want := h
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			want = h | 0x200 // NaN comes back quieted, payload kept
		}
		if back[i] != want {
			t.Fatalf("code %#04x round-tripped to %#04x, want %#04x", h, back[i], want)
		}
	}
}

// FuzzF32ToF16Parity fuzzes scalar-vs-packed parity over arbitrary
// FP32 bit patterns in a vector-sized batch.
func FuzzF32ToF16Parity(f *testing.F) {
	f.Add(uint32(0x7fc01234), uint32(0x00000001), uint32(0x38800000), uint32(0xb8000001))
	f.Add(uint32(0x477fe000), uint32(0x477ff000), uint32(0x33000000), uint32(0x33800000))
	f.Fuzz(func(t *testing.T, a, b, c, d uint32) {
		src := make([]float32, 16)
		for i := range src {
			src[i] = math.Float32frombits([]uint32{a, b, c, d}[i%4] + uint32(i/4))
		}
		dst := make([]uint16, len(src))
		F32ToF16(dst, src)
		for i := range src {
			if want := FloatToFP16(src[i]); dst[i] != want {
				t.Fatalf("value %#08x: packed %#04x, scalar %#04x",
					math.Float32bits(src[i]), dst[i], want)
			}
		}
	})
}
