package tensor

// RequantInt8 requantizes an int32 accumulator row into int8 codes:
// out[i] = ClampInt8(zp + r.Apply(acc[i])). This is the epilogue of
// every quantized convolution output, so amd64 builds dispatch the bulk
// of the row to an AVX2 kernel that reproduces the scalar fixed-point
// arithmetic bit-for-bit (see requant_amd64.s); the scalar loop covers
// the tail and every host without the kernel.
func RequantInt8(out []int8, acc []int32, r Requant, zp int32) {
	out = out[:len(acc)]
	i := requantInt8Accel(out, acc, r, zp)
	for ; i < len(acc); i++ {
		out[i] = ClampInt8(zp + r.Apply(acc[i]))
	}
}
