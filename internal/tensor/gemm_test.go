package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"vedliot/internal/tensor/cpu"
)

// refGemmF32 is the scalar reference with the exact accumulation
// order the interpreter uses: acc starts at bias, then adds one
// product per K step in order. Kernel parity is bitwise against this.
func refGemmF32(m, n, k int, a []float32, lda int, b []float32, ldb int, bias []float32, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := bias[i]
			for kk := 0; kk < k; kk++ {
				acc += a[i*lda+kk] * b[kk*ldb+j]
			}
			c[i*ldc+j] = acc
		}
	}
}

func refGemmI16(m, n, k int, a []int16, lda int, b []int16, ldb int, bias []int32, c []int32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := bias[i]
			for kk := 0; kk < k; kk++ {
				acc += int32(a[i*lda+kk]) * int32(b[kk*ldb+j])
			}
			c[i*ldc+j] = acc
		}
	}
}

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*4 - 2
	}
	return out
}

func randI16(rng *rand.Rand, n int, lim int32) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(rng.Int31n(2*lim+1) - lim)
	}
	return out
}

func runVariantF32(t *testing.T, g GemmKernelF32, m, n, k int, rng *rand.Rand) {
	t.Helper()
	a := randF32(rng, m*k)
	b := randF32(rng, k*n)
	bias := randF32(rng, m)
	want := make([]float32, m*n)
	refGemmF32(m, n, k, a, k, b, n, bias, want, n)

	apack := make([]float32, g.PackedASize(m, k))
	g.PackA(apack, a, k, m, k)
	got := make([]float32, m*n)
	g.Compute(m, n, k, apack, g.PackBias(bias, m), b, n, got, n, nil, nil)

	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("tier %v m=%d n=%d k=%d: c[%d] = %x, want %x (bitwise)",
				g.Tier, m, n, k, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

func runVariantI16(t *testing.T, g GemmKernelI16, m, n, k int, rng *rand.Rand) {
	t.Helper()
	a := randI16(rng, m*k, 127)
	b := randI16(rng, k*n, 255)
	bias := make([]int32, m)
	for i := range bias {
		bias[i] = rng.Int31n(20001) - 10000
	}
	want := make([]int32, m*n)
	refGemmI16(m, n, k, a, k, b, n, bias, want, n)

	apack := make([]int16, g.PackedASize(m, k))
	g.PackA(apack, a, k, m, k)
	got := make([]int32, m*n)
	g.Compute(m, n, k, apack, g.PackBias(bias, m), b, n, got, n, nil, nil)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("tier %v m=%d n=%d k=%d: c[%d] = %d, want %d",
				g.Tier, m, n, k, i, got[i], want[i])
		}
	}
}

// TestGemmF32Variants sweeps every compiled-in kernel variant over all
// tile remainder sizes (m in 1..2*MR+1, n covering 1..NR-1 plus full
// tiles, k including 0, 1, odd and even) and demands bitwise equality
// with the scalar reference.
func TestGemmF32Variants(t *testing.T) {
	for _, g := range GemmF32Variants() {
		g := g
		t.Run(fmt.Sprintf("tier=%v", g.Tier), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for m := 1; m <= 2*g.MR+1; m++ {
				for _, n := range remainders(g.NR) {
					for _, k := range []int{0, 1, 3, 9, 16, 37} {
						runVariantF32(t, g, m, n, k, rng)
					}
				}
			}
		})
	}
}

// TestGemmI16Variants is the quantized analogue: exact int32
// accumulator equality across every variant and remainder size.
func TestGemmI16Variants(t *testing.T) {
	for _, g := range GemmI16Variants() {
		g := g
		t.Run(fmt.Sprintf("tier=%v", g.Tier), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for m := 1; m <= 2*g.MR+1; m++ {
				for _, n := range remainders(g.NR) {
					for _, k := range []int{1, 2, 3, 9, 16, 37} {
						runVariantI16(t, g, m, n, k, rng)
					}
				}
			}
		})
	}
}

// remainders returns every n in 1..nr-1 plus full-tile and
// full-tile-plus-remainder widths.
func remainders(nr int) []int {
	out := make([]int, 0, nr+3)
	for n := 1; n < nr; n++ {
		out = append(out, n)
	}
	return append(out, nr, 2*nr, 2*nr+3)
}

// TestGemmF32StridedB exercises the direct strided-B path (ldb larger
// than the tile, as pointwise convolutions use) against the packed
// path on the selected kernel.
func TestGemmF32StridedB(t *testing.T) {
	g := PickGemmF32()
	rng := rand.New(rand.NewSource(3))
	k, n := 24, 3*g.NR // full tiles only: direct stores at ldb = n
	m := g.MR
	a := randF32(rng, m*k)
	b := randF32(rng, k*n)
	bias := randF32(rng, m)
	want := make([]float32, m*n)
	refGemmF32(m, n, k, a, k, b, n, bias, want, n)

	apack := make([]float32, g.PackedASize(m, k))
	g.PackA(apack, a, k, m, k)
	got := make([]float32, m*n)
	for j0 := 0; j0 < n; j0 += g.NR {
		g.Run(apack, b[j0:], n, k, bias, got[j0:], n)
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("strided B: c[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestGemmRunAccChain checks the K-continuation contract on every
// variant that provides RunAcc: running a K prefix with the bias
// kernel and the suffix with RunAcc must be bitwise identical to one
// full-K Run, for FP32 because the accumulator chain is extended
// rather than re-associated.
func TestGemmRunAccChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, g := range GemmF32Variants() {
		if g.RunAcc == nil {
			continue
		}
		m, n, k := g.MR, g.NR, 40
		a := randF32(rng, m*k)
		b := randF32(rng, k*n)
		bias := randF32(rng, m)
		apack := make([]float32, g.PackedASize(m, k))
		g.PackA(apack, a, k, m, k)

		want := make([]float32, m*n)
		g.Run(apack, b, n, k, bias, want, n)
		for _, split := range []int{1, 7, 16, 39} {
			got := make([]float32, m*n)
			g.Run(apack[:split*m], b, n, split, bias, got, n)
			g.RunAcc(apack[split*m:], b[split*n:], n, k-split, bias, got, n)
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("tier %v split=%d: c[%d] = %x, want %x (bitwise)",
						g.Tier, split, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
	for _, g := range GemmI16Variants() {
		if g.RunAcc == nil {
			continue
		}
		m, n := g.MR, g.NR
		kp := 20
		a := randI16(rng, m*2*kp, 127)
		b := randI16(rng, kp*2*n, 255)
		bias := make([]int32, m)
		for i := range bias {
			bias[i] = rng.Int31n(2001) - 1000
		}
		want := make([]int32, m*n)
		g.Run(a, b, 2*n, kp, bias, want, n)
		for _, split := range []int{1, 9, 19} {
			got := make([]int32, m*n)
			g.Run(a[:split*m*2], b, 2*n, split, bias, got, n)
			g.RunAcc(a[split*m*2:], b[split*2*n:], 2*n, kp-split, bias, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("tier %v split=%d: c[%d] = %d, want %d", g.Tier, split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmBlockedParity drives computeBlocked directly with small
// block depths so the Kc/Mc panel loops and their partial-tile
// handling run without needing cache-sized problems, and demands
// bitwise equality with the scalar reference on every variant that
// supports blocking.
func TestGemmBlockedParity(t *testing.T) {
	for _, g := range GemmF32Variants() {
		if g.RunAcc == nil {
			continue
		}
		g := g
		t.Run(fmt.Sprintf("f32/tier=%v", g.Tier), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			for _, kc := range []int{8, 16} {
				for _, m := range []int{1, g.MR, 2*g.MR + 3} {
					for _, n := range []int{1, g.NR - 1, g.NR, 2*g.NR + 5} {
						for _, k := range []int{kc + 1, 2*kc + 3, 37} {
							a := randF32(rng, m*k)
							b := randF32(rng, k*n)
							bias := randF32(rng, m)
							want := make([]float32, m*n)
							refGemmF32(m, n, k, a, k, b, n, bias, want, n)
							apack := make([]float32, g.PackedASize(m, k))
							g.PackA(apack, a, k, m, k)
							got := make([]float32, m*n)
							g.computeBlocked(m, n, k, kc, apack, g.PackBias(bias, m), b, n, got, n,
								make([]float32, k*g.NR), make([]float32, g.MR*g.NR))
							for i := range want {
								if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
									t.Fatalf("kc=%d m=%d n=%d k=%d: c[%d] = %x, want %x (bitwise)",
										kc, m, n, k, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
								}
							}
						}
					}
				}
			}
		})
	}
	for _, g := range GemmI16Variants() {
		if g.RunAcc == nil {
			continue
		}
		g := g
		t.Run(fmt.Sprintf("i16/tier=%v", g.Tier), func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			for _, kcp := range []int{4, 9} {
				for _, m := range []int{1, g.MR, 2*g.MR + 3} {
					for _, n := range []int{1, g.NR, 2*g.NR + 5} {
						for _, k := range []int{2*kcp + 1, 37, 40} {
							a := randI16(rng, m*k, 127)
							b := randI16(rng, k*n, 255)
							bias := make([]int32, m)
							for i := range bias {
								bias[i] = rng.Int31n(2001) - 1000
							}
							want := make([]int32, m*n)
							refGemmI16(m, n, k, a, k, b, n, bias, want, n)
							apack := make([]int16, g.PackedASize(m, k))
							g.PackA(apack, a, k, m, k)
							got := make([]int32, m*n)
							g.computeBlocked(m, n, k, kcp, apack, g.PackBias(bias, m), b, n, got, n,
								make([]int16, KPairs(k)*g.NR*2), make([]int32, g.MR*g.NR))
							for i := range want {
								if want[i] != got[i] {
									t.Fatalf("kcp=%d m=%d n=%d k=%d: c[%d] = %d, want %d",
										kcp, m, n, k, i, got[i], want[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestGemmComputeBlockedDispatch runs one deep-K problem through the
// public Compute entry point so the kc threshold actually engages the
// blocked driver, and checks bitwise parity with the reference.
func TestGemmComputeBlockedDispatch(t *testing.T) {
	g := PickGemmF32()
	if g.RunAcc == nil {
		t.Skip("selected kernel has no blocked driver")
	}
	m, n := 2*g.MR+1, g.NR+3
	k := gemmKcEngageBytes/(4*g.NR) + gemmKBlock(g.NR)
	if !gemmBlockK(g.NR, k) {
		t.Fatalf("k=%d does not engage the blocked driver", k)
	}
	rng := rand.New(rand.NewSource(41))
	a := randF32(rng, m*k)
	b := randF32(rng, k*n)
	bias := randF32(rng, m)
	want := make([]float32, m*n)
	refGemmF32(m, n, k, a, k, b, n, bias, want, n)
	apack := make([]float32, g.PackedASize(m, k))
	g.PackA(apack, a, k, m, k)
	got := make([]float32, m*n)
	g.Compute(m, n, k, apack, g.PackBias(bias, m), b, n, got, n, nil, nil)
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("blocked Compute k=%d: c[%d] = %x, want %x (bitwise)",
				k, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestPickGemmRespectsTier checks the selected kernels never exceed
// the detector's chosen tier.
func TestPickGemmRespectsTier(t *testing.T) {
	if g := PickGemmF32(); g.Tier > cpu.Best() {
		t.Errorf("PickGemmF32 tier %v exceeds cpu.Best %v", g.Tier, cpu.Best())
	}
	if g := PickGemmI16(); g.Tier > cpu.Best() {
		t.Errorf("PickGemmI16 tier %v exceeds cpu.Best %v", g.Tier, cpu.Best())
	}
}

// BenchmarkGemmTiers sweeps every compiled-in FP32 kernel variant over
// conv-shaped problems (M = output channels, N = output pixels, K =
// taps) and reports GF/s per tier — the harness behind `make
// bench-kernels` for quick cross-tier regression triage.
func BenchmarkGemmTiers(b *testing.B) {
	shapes := []struct {
		name    string
		m, n, k int
	}{
		{"conv3x3_32ch_32px", 64, 32 * 32, 32 * 9},
		{"conv3x3_128ch_16px", 128, 16 * 16, 128 * 9},
		{"pointwise_128ch_32px", 128, 32 * 32, 128},
		{"dense_512x1152", 512, 8, 1152},
	}
	for _, g := range GemmF32Variants() {
		g := g
		for _, s := range shapes {
			s := s
			b.Run(fmt.Sprintf("tier=%v/%s", g.Tier, s.name), func(b *testing.B) {
				rng := rand.New(rand.NewSource(17))
				a := randF32(rng, s.m*s.k)
				bm := randF32(rng, s.k*s.n)
				bias := randF32(rng, s.m)
				apack := make([]float32, g.PackedASize(s.m, s.k))
				g.PackA(apack, a, s.k, s.m, s.k)
				pbias := g.PackBias(bias, s.m)
				c := make([]float32, s.m*s.n)
				bpack := make([]float32, s.k*g.NR)
				ctile := make([]float32, g.MR*g.NR)
				flops := 2 * float64(s.m) * float64(s.n) * float64(s.k)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g.Compute(s.m, s.n, s.k, apack, pbias, bm, s.n, c, s.n, bpack, ctile)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GF/s")
			})
		}
	}
}

// FuzzGemmF32Parity fuzzes shapes and a data seed, checking all
// variants stay bitwise-equal to the scalar reference.
func FuzzGemmF32Parity(f *testing.F) {
	f.Add(int16(5), int16(17), int16(9), int64(1))
	f.Add(int16(6), int16(16), int16(32), int64(2))
	f.Add(int16(1), int16(1), int16(1), int64(3))
	f.Fuzz(func(t *testing.T, m16, n16, k16 int16, seed int64) {
		m := int(m16)%32 + 1
		if m < 1 {
			m += 32
		}
		n := int(n16)%64 + 1
		if n < 1 {
			n += 64
		}
		k := int(k16) % 64
		if k < 0 {
			k += 64
		}
		rng := rand.New(rand.NewSource(seed))
		for _, g := range GemmF32Variants() {
			runVariantF32(t, g, m, n, k, rand.New(rand.NewSource(rng.Int63())))
		}
	})
}

// FuzzGemmI16Parity is the quantized analogue of FuzzGemmF32Parity.
func FuzzGemmI16Parity(f *testing.F) {
	f.Add(int16(4), int16(9), int16(7), int64(1))
	f.Add(int16(4), int16(16), int16(18), int64(2))
	f.Fuzz(func(t *testing.T, m16, n16, k16 int16, seed int64) {
		m := int(m16)%32 + 1
		if m < 1 {
			m += 32
		}
		n := int(n16)%64 + 1
		if n < 1 {
			n += 64
		}
		k := int(k16)%64 + 1
		if k < 1 {
			k += 64
		}
		rng := rand.New(rand.NewSource(seed))
		for _, g := range GemmI16Variants() {
			runVariantI16(t, g, m, n, k, rand.New(rand.NewSource(rng.Int63())))
		}
	})
}
