package tensor

import "math"

// FloatToFP16 converts an FP32 value to IEEE 754 binary16 with
// round-to-nearest-even, handling subnormals, infinities and NaN.
func FloatToFP16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23)&0xff - 127
	mant := bits & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			// Quiet NaN, payload truncated to the top 10 bits with the
			// quiet bit forced — exactly what VCVTPS2PH produces, so the
			// scalar and F16C packed paths stay bitwise identical.
			return sign | 0x7c00 | 0x200 | uint16(mant>>13)
		}
		return sign | 0x7c00
	case exp > 15: // overflow -> Inf
		return sign | 0x7c00
	case exp >= -14: // normal range
		// Round mantissa from 23 to 10 bits, nearest-even.
		m := mant | 0x800000
		shift := uint32(13)
		rounded := roundShift(m, shift)
		e := uint16(exp + 15)
		// Rounding may carry into the exponent.
		if rounded >= 0x800 {
			rounded >>= 1
			e++
			if e >= 31 {
				return sign | 0x7c00
			}
		}
		return sign | e<<10 | uint16(rounded&0x3ff)
	case exp >= -25: // subnormal (may round up into the normal range)
		// FP32 value is m * 2^(exp-23); FP16 subnormal code is
		// value / 2^-24 = m >> (-exp-1). A rounding carry past bit 10
		// lands on the smallest normal, whose encoding follows naturally.
		m := mant | 0x800000
		return sign | roundShift(m, uint32(-exp-1))
	default: // underflow -> signed zero
		return sign
	}
}

// roundShift shifts m right by shift bits with round-to-nearest-even.
func roundShift(m, shift uint32) uint16 {
	if shift == 0 {
		return uint16(m)
	}
	half := uint32(1) << (shift - 1)
	q := m >> shift
	rem := m & ((1 << shift) - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return uint16(q)
}

// F16ToF32 converts a packed FP16 slice to FP32, dst[i] =
// FP16ToFloat(src[i]) over len(dst) elements. On hosts with F16C the
// bulk runs through VCVTPH2PS; results are bitwise identical to the
// scalar converter either way.
func F16ToF32(dst []float32, src []uint16) {
	src = src[:len(dst)]
	n := f16ToF32Accel(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = FP16ToFloat(src[i])
	}
}

// F32ToF16 converts a packed FP32 slice to FP16 with
// round-to-nearest-even, dst[i] = FloatToFP16(src[i]) over len(dst)
// elements. On hosts with F16C the bulk runs through VCVTPS2PH.
func F32ToF16(dst []uint16, src []float32) {
	src = src[:len(dst)]
	n := f32ToF16Accel(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = FloatToFP16(src[i])
	}
}

// FP16ToFloat converts an IEEE 754 binary16 value to FP32 exactly.
func FP16ToFloat(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 31:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		// Quiet NaN with the halfword payload widened in place (quiet
		// bit forced), matching VCVTPH2PS bit for bit.
		return math.Float32frombits(sign | 0x7fc00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
