//go:build !amd64 || purego || noasm

package tensor

// Portable fallbacks for the SSE2 kernels in simd_amd64.s. Four
// independent accumulators break the add dependency chain, which is as
// fast as scalar Go gets on current compilers.

// FastInt8 reports whether the SIMD integer kernels back DotInt16 and
// AxpyInt16; the portable fallbacks are correct but not faster than
// scalar float code.
const FastInt8 = false

// DotInt16 returns the dot product of a and b over min(len(a), len(b))
// elements with int32 accumulation.
func DotInt16(a, b []int16) int32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	} else {
		b = b[:len(a)]
	}
	var a0, a1, a2, a3 int32
	i := 0
	for ; i+4 <= len(a) && i+4 <= len(b); i += 4 {
		a0 += int32(a[i]) * int32(b[i])
		a1 += int32(a[i+1]) * int32(b[i+1])
		a2 += int32(a[i+2]) * int32(b[i+2])
		a3 += int32(a[i+3]) * int32(b[i+3])
	}
	acc := a0 + a1 + a2 + a3
	for ; i < len(a) && i < len(b); i++ {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

// AxpyInt16 computes dst[i] += int32(w) * int32(x[i]) over
// min(len(dst), len(x)) elements.
func AxpyInt16(dst []int32, x []int16, w int16) {
	if len(x) < len(dst) {
		dst = dst[:len(x)]
	} else {
		x = x[:len(dst)]
	}
	wv := int32(w)
	for i, xi := range x {
		dst[i] += wv * int32(xi)
	}
}

// WidenShiftInt8 computes dst[i] = int16(src[i]) - zp over
// min(len(dst), len(src)) elements — the zero-point shift that turns
// stored int8 activation codes into the int16 operand form of the
// integer kernels.
func WidenShiftInt8(dst []int16, src []int8, zp int16) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = int16(src[i]) - zp
	}
}

// PackPairShiftInt8 interleaves two zero-point-shifted int8 rows into
// the pair layout of the PMADDWD micro-kernels: out[2i] = int16(r0[i]) -
// zp, out[2i+1] = int16(r1[i]) - zp, over n = min(len(r0), len(r1))
// elements. out must hold at least 2n entries.
func PackPairShiftInt8(out []int16, r0, r1 []int8, zp int16) {
	n := len(r0)
	if len(r1) < n {
		n = len(r1)
	}
	for i := 0; i < n; i++ {
		out[2*i] = int16(r0[i]) - zp
		out[2*i+1] = int16(r1[i]) - zp
	}
}

// AxpyInt16Stride2 computes dst[i] += int32(w) * int32(x[2*i]) over
// min(len(dst), ceil(len(x)/2)) elements — the accumulation step of a
// stride-2 convolution row.
func AxpyInt16Stride2(dst []int32, x []int16, w int16) {
	n := len(dst)
	if m := (len(x) + 1) / 2; n > m {
		n = m
	}
	wv := int32(w)
	for i := 0; i < n; i++ {
		dst[i] += wv * int32(x[2*i])
	}
}
