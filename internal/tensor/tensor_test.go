package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{1, 3, 224, 224}, 150528},
	}
	for _, c := range cases {
		if got := c.s.NumElements(); got != c.want {
			t.Errorf("%v.NumElements() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{1, 2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone not equal: %v vs %v", s, c)
	}
	c[0] = 9
	if s[0] == 9 {
		t.Fatal("Clone aliases original")
	}
	if s.Equal(Shape{1, 2}) || s.Equal(Shape{1, 2, 4}) {
		t.Error("Equal accepted mismatched shape")
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 2}).Valid() {
		t.Error("positive shape reported invalid")
	}
	if (Shape{1, 0}).Valid() || (Shape{-1}).Valid() {
		t.Error("non-positive shape reported valid")
	}
}

func TestDTypeStringAndSize(t *testing.T) {
	if FP32.Size() != 4 || FP16.Size() != 2 || INT8.Size() != 1 {
		t.Error("wrong dtype sizes")
	}
	if FP32.String() != "FP32" || FP16.String() != "FP16" || INT8.String() != "INT8" {
		t.Error("wrong dtype names")
	}
}

func TestParseDType(t *testing.T) {
	for _, c := range []struct {
		in   string
		want DType
	}{{"fp32", FP32}, {"FP16", FP16}, {" int8 ", INT8}, {"float32", FP32}} {
		got, err := ParseDType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDType(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDType("int4"); err == nil {
		t.Error("ParseDType accepted unknown type")
	}
}

func TestNewAndIndexing(t *testing.T) {
	a := New(FP32, 2, 3)
	a.SetAt(5, 1, 2)
	if got := a.At(1, 2); got != 5 {
		t.Errorf("At(1,2) = %v, want 5", got)
	}
	if got := a.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range index")
		}
	}()
	New(FP32, 2, 2).At(2, 0)
}

func TestFromSlice(t *testing.T) {
	tt, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v", tt.At(1, 1))
	}
	if _, err := FromSlice([]float32{1}, 2, 2); err == nil {
		t.Error("FromSlice accepted wrong element count")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.F32[0] = 99
	if a.F32[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestConvertRoundTripFP16(t *testing.T) {
	a := MustFromSlice([]float32{0, 1, -1, 0.5, 65504, -65504, 0.000061}, 7)
	h := a.Convert(FP16)
	back := h.Convert(FP32)
	for i, want := range a.F32 {
		got := back.F32[i]
		if math.Abs(float64(got-want)) > math.Abs(float64(want))*0.001+1e-7 {
			t.Errorf("fp16 roundtrip[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestFP16SpecialValues(t *testing.T) {
	inf := FloatToFP16(float32(math.Inf(1)))
	if FP16ToFloat(inf) != float32(math.Inf(1)) {
		t.Error("+Inf mangled")
	}
	ninf := FloatToFP16(float32(math.Inf(-1)))
	if FP16ToFloat(ninf) != float32(math.Inf(-1)) {
		t.Error("-Inf mangled")
	}
	nan := FloatToFP16(float32(math.NaN()))
	if !math.IsNaN(float64(FP16ToFloat(nan))) {
		t.Error("NaN mangled")
	}
	// Overflow saturates to Inf.
	if FP16ToFloat(FloatToFP16(1e10)) != float32(math.Inf(1)) {
		t.Error("overflow should produce +Inf")
	}
	// Tiny values flush toward signed zero.
	if v := FP16ToFloat(FloatToFP16(1e-20)); v != 0 {
		t.Errorf("underflow = %v, want 0", v)
	}
	if bits := FloatToFP16(float32(math.Copysign(1e-20, -1))); bits != 0x8000 {
		t.Errorf("negative underflow = %#x, want 0x8000", bits)
	}
}

func TestFP16RoundTripProperty(t *testing.T) {
	// Every FP16 value must convert to FP32 and back exactly.
	for h := 0; h < 1<<16; h++ {
		u := uint16(h)
		f := FP16ToFloat(u)
		back := FloatToFP16(f)
		if math.IsNaN(float64(f)) {
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("NaN %#x -> %#x not NaN", u, back)
			}
			continue
		}
		if back != u {
			t.Fatalf("FP16 %#x -> %v -> %#x", u, f, back)
		}
	}
}

func TestFP16ConversionMonotone(t *testing.T) {
	f := func(a float32) bool {
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) {
			return true
		}
		got := FP16ToFloat(FloatToFP16(a))
		// Relative error bounded by 2^-11 for normal range, plus absolute
		// slack for subnormals.
		return math.Abs(float64(got-a)) <= math.Abs(float64(a))/2048+6.0e-5 ||
			math.IsInf(float64(got), 0) && math.Abs(float64(a)) > 65504
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := QuantParams{Scale: 0.1, Zero: 3}
	for _, v := range []float32{0, 0.1, -0.5, 1.0, 12.3, -12.7} {
		got := q.Dequantize(q.Quantize(v))
		if math.Abs(float64(got-v)) > 0.05+1e-6 { // half a step
			t.Errorf("quant roundtrip %v -> %v", v, got)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := QuantParams{Scale: 1}
	if q.Quantize(1000) != 127 {
		t.Error("positive overflow should clamp to 127")
	}
	if q.Quantize(-1000) != -128 {
		t.Error("negative overflow should clamp to -128")
	}
}

func TestSymmetricParams(t *testing.T) {
	q := SymmetricParams([]float32{-2, 1, 0.5})
	if q.Zero != 0 {
		t.Errorf("symmetric zero = %d", q.Zero)
	}
	if math.Abs(float64(q.Scale-2.0/127)) > 1e-9 {
		t.Errorf("scale = %v", q.Scale)
	}
	if q2 := SymmetricParams(nil); q2.Scale != 1 {
		t.Errorf("empty scale = %v", q2.Scale)
	}
}

func TestAffineParamsZeroExactlyRepresentable(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		q := AffineParams(lo, hi)
		z := q.Dequantize(q.Quantize(0))
		return math.Abs(float64(z)) <= float64(q.Scale)/2+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantRoundTripProperty(t *testing.T) {
	// Quantize∘Dequantize error is at most half a quantization step.
	f := func(raw []float32) bool {
		vals := make([]float32, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q := SymmetricParams(vals)
		for _, v := range vals {
			got := q.Dequantize(q.Quantize(v))
			if math.Abs(float64(got-v)) > float64(q.Scale)/2*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConvertINT8(t *testing.T) {
	a := MustFromSlice([]float32{-1, 0, 0.5, 1}, 4)
	qz := a.Convert(INT8)
	back := qz.Convert(FP32)
	for i := range a.F32 {
		if math.Abs(float64(back.F32[i]-a.F32[i])) > float64(qz.Quant.Scale) {
			t.Errorf("int8 roundtrip[%d]: %v -> %v", i, a.F32[i], back.F32[i])
		}
	}
}

func TestMinMax(t *testing.T) {
	a := MustFromSlice([]float32{3, -7, 2}, 3)
	lo, hi := a.MinMax()
	if lo != -7 || hi != 3 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestSizeBytes(t *testing.T) {
	if New(FP32, 10).SizeBytes() != 40 || New(FP16, 10).SizeBytes() != 20 || New(INT8, 10).SizeBytes() != 10 {
		t.Error("wrong SizeBytes")
	}
}
