//go:build amd64 && !purego && !noasm

package tensor

// SSE2 integer kernels for the native INT8 execution path. SSE2 is part
// of the amd64 baseline, so no runtime feature detection is needed; the
// pure-Go fallback in simd_generic.go serves every other GOARCH (and
// the purego build tag).
//
// PMADDWD multiplies eight int16 pairs and sums adjacent products into
// four int32 lanes — eight multiply-accumulates per instruction, which
// is what makes the quantized engine faster than scalar FP32 on hosts
// without native INT8 matrix units.

// FastInt8 reports whether the SIMD integer kernels back DotInt16 and
// AxpyInt16. Perf assertions about the quantized engine beating the
// FP32 engine only hold where this is true; the portable fallbacks are
// correct but not faster than scalar float code.
const FastInt8 = true

// DotInt16 returns the dot product of a and b over min(len(a), len(b))
// elements with int32 accumulation.
//
// Accumulator contract: |a[i]*b[i]| must stay below 2^15 * 2^15 and the
// reduction below 2^31. The quantized engine's operands are zero-point-
// shifted activations (|v| <= 255) times int8 weight codes (|w| <= 127),
// so reductions up to ~10^5 taps are safe.
//
//go:noescape
func DotInt16(a, b []int16) int32

// AxpyInt16 computes dst[i] += int32(w) * int32(x[i]) over
// min(len(dst), len(x)) elements — the accumulation step of the
// kernel-outer convolution form.
//
//go:noescape
func AxpyInt16(dst []int32, x []int16, w int16)

// AxpyInt16Stride2 computes dst[i] += int32(w) * int32(x[2*i]) over
// min(len(dst), ceil(len(x)/2)) elements — the accumulation step of a
// stride-2 convolution row. PMADDWD against the pair pattern (w, 0)
// multiplies the even element by w and annihilates its odd partner, so
// the strided gather costs nothing over the dense form.
func AxpyInt16Stride2(dst []int32, x []int16, w int16) {
	n := len(dst)
	if m := (len(x) + 1) / 2; n > m {
		n = m
	}
	if n == 0 {
		return
	}
	// The vector body loads whole pairs; when the final element's odd
	// partner is past the end of x, finish that element in Go.
	if len(x) >= 2*n {
		axpyInt16Stride2(dst[:n], x, w)
		return
	}
	axpyInt16Stride2(dst[:n-1], x, w)
	dst[n-1] += int32(w) * int32(x[2*(n-1)])
}

// axpyInt16Stride2 is the SSE2 body of AxpyInt16Stride2; it requires
// len(x) >= 2*len(dst).
//
//go:noescape
func axpyInt16Stride2(dst []int32, x []int16, w int16)

// WidenShiftInt8 computes dst[i] = int16(src[i]) - zp over
// min(len(dst), len(src)) elements — the zero-point shift that turns
// stored int8 activation codes into the int16 operand form of the
// integer kernels.
func WidenShiftInt8(dst []int16, src []int8, zp int16) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	widenShiftInt8(dst[:n], src[:n], zp)
}

// widenShiftInt8 is the SSE2 body of WidenShiftInt8; equal lengths.
//
//go:noescape
func widenShiftInt8(dst []int16, src []int8, zp int16)

// PackPairShiftInt8 interleaves two zero-point-shifted int8 rows into
// the pair layout of the PMADDWD micro-kernels: out[2i] = int16(r0[i]) -
// zp, out[2i+1] = int16(r1[i]) - zp, over n = min(len(r0), len(r1))
// elements. out must hold at least 2n entries.
func PackPairShiftInt8(out []int16, r0, r1 []int8, zp int16) {
	n := len(r0)
	if len(r1) < n {
		n = len(r1)
	}
	packPairShiftInt8(out[:2*n], r0[:n], r1[:n], zp)
}

// packPairShiftInt8 is the SSE2 body of PackPairShiftInt8; it requires
// len(r0) == len(r1) and len(out) == 2*len(r0).
//
//go:noescape
func packPairShiftInt8(out []int16, r0, r1 []int8, zp int16)
