//go:build amd64 && !purego

package tensor

// SSE2 integer kernels for the native INT8 execution path. SSE2 is part
// of the amd64 baseline, so no runtime feature detection is needed; the
// pure-Go fallback in simd_generic.go serves every other GOARCH (and
// the purego build tag).
//
// PMADDWD multiplies eight int16 pairs and sums adjacent products into
// four int32 lanes — eight multiply-accumulates per instruction, which
// is what makes the quantized engine faster than scalar FP32 on hosts
// without native INT8 matrix units.

// FastInt8 reports whether the SIMD integer kernels back DotInt16 and
// AxpyInt16. Perf assertions about the quantized engine beating the
// FP32 engine only hold where this is true; the portable fallbacks are
// correct but not faster than scalar float code.
const FastInt8 = true

// DotInt16 returns the dot product of a and b over min(len(a), len(b))
// elements with int32 accumulation.
//
// Accumulator contract: |a[i]*b[i]| must stay below 2^15 * 2^15 and the
// reduction below 2^31. The quantized engine's operands are zero-point-
// shifted activations (|v| <= 255) times int8 weight codes (|w| <= 127),
// so reductions up to ~10^5 taps are safe.
//
//go:noescape
func DotInt16(a, b []int16) int32

// AxpyInt16 computes dst[i] += int32(w) * int32(x[i]) over
// min(len(dst), len(x)) elements — the accumulation step of the
// kernel-outer convolution form.
//
//go:noescape
func AxpyInt16(dst []int32, x []int16, w int16)
