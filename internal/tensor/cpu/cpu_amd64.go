//go:build amd64 && !purego && !noasm

package cpu

// Runtime feature probe for amd64: CPUID enumerates the ISA extensions
// and XGETBV confirms the OS context-switches the wider register files
// (a hypervisor or minimal kernel can expose AVX in CPUID while never
// saving YMM state — executing VEX code there corrupts registers).

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
// Implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports the
// state components the OS has enabled. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

const (
	// CPUID.1:ECX bits.
	bitSSE41   = 1 << 19
	bitOSXSAVE = 1 << 27
	bitAVX     = 1 << 28
	bitFMA     = 1 << 12
	bitF16C    = 1 << 29
	// CPUID.7.0:EBX bits.
	bitAVX2     = 1 << 5
	bitAVX512F  = 1 << 16
	bitAVX512BW = 1 << 30
	bitAVX512VL = 1 << 31
	// XCR0 bits: SSE+YMM state for AVX, plus opmask/ZMM hi for AVX-512.
	xcr0AVX    = 0x6
	xcr0AVX512 = 0xe6
)

func detect() Features {
	f := Features{SSE2: true} // architectural baseline on amd64

	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	f.SSE41 = ecx1&bitSSE41 != 0

	osxsave := ecx1&bitOSXSAVE != 0
	var xcr0 uint64
	if osxsave {
		lo, hi := xgetbv()
		xcr0 = uint64(hi)<<32 | uint64(lo)
	}
	ymmOK := osxsave && xcr0&xcr0AVX == xcr0AVX
	zmmOK := osxsave && xcr0&xcr0AVX512 == xcr0AVX512

	f.AVX = ecx1&bitAVX != 0 && ymmOK
	f.FMA = ecx1&bitFMA != 0 && ymmOK
	f.F16C = ecx1&bitF16C != 0 && ymmOK

	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.AVX2 = f.AVX && ebx7&bitAVX2 != 0
		f.AVX512F = zmmOK && ebx7&bitAVX512F != 0
		f.AVX512BW = zmmOK && ebx7&bitAVX512BW != 0
		f.AVX512VL = zmmOK && ebx7&bitAVX512VL != 0
		f.AVX512 = f.AVX512F && f.AVX512BW && f.AVX512VL
	}
	return f
}
