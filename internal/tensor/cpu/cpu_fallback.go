//go:build !amd64 || purego || noasm

package cpu

import "runtime"

// Portable detection: without the CPUID probe (non-amd64, or amd64
// built with purego/noasm) no amd64 SIMD kernels can run, so only the
// architectural baselines that need no runtime check are reported.
// NEON is baseline on arm64 and is reported even though no kernels sit
// behind it yet — Summary then names the host correctly and the tier
// stays generic until TierNEON gains an implementation.
func detect() Features {
	return Features{NEON: runtime.GOARCH == "arm64"}
}
