// Package cpu detects the host's SIMD capabilities at startup and maps
// them to the micro-kernel tiers the tensor package dispatches between.
//
// On amd64 the detector executes CPUID (and XGETBV, to confirm the OS
// actually saves the wider register state) and reports SSE2, AVX2/FMA,
// F16C and the AVX-512 subsets the kernels require (F, BW, VL); every
// other GOARCH — and amd64 built with the purego or noasm tag — takes
// the portable fallback, which reports no SIMD and pins execution to
// the generic tier. NEON on arm64 is detected (it is part of the
// architectural baseline) but currently has no kernels behind it: the
// Tier enum reserves a slot so an arm64 micro-kernel set can slide into
// the dispatch table without touching callers.
//
// Selection policy: Best returns the widest tier that both the host
// supports and the binary has kernels for. The VEDLIOT_CPU environment
// variable forces a narrower tier ("generic", "sse2", "avx2",
// "avx512") for debugging and cross-variant parity testing; it can
// never force a tier the host does not support.
package cpu

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Tier identifies one micro-kernel implementation level. Higher tiers
// strictly widen the vectors the kernels operate on.
type Tier int

const (
	// TierGeneric is the portable pure-Go kernel set, correct on every
	// GOARCH and under the purego/noasm build tags.
	TierGeneric Tier = iota
	// TierSSE2 is the amd64 baseline 128-bit kernel set (SSE2 is
	// architecturally guaranteed on amd64).
	TierSSE2
	// TierAVX2 is the 256-bit kernel set (AVX2 integer + AVX float).
	TierAVX2
	// TierAVX512 is the 512-bit ZMM kernel set. It requires the F, BW
	// and VL subsets plus OS opmask/ZMM state (XCR0), the baseline every
	// AVX-512 server core since Skylake-SP provides.
	TierAVX512
	// TierNEON is reserved for an arm64 128-bit kernel set; no kernels
	// are implemented behind it yet, so Best never returns it.
	TierNEON
)

// String returns the tier's canonical lowercase name.
func (t Tier) String() string {
	switch t {
	case TierGeneric:
		return "generic"
	case TierSSE2:
		return "sse2"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	case TierNEON:
		return "neon"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier converts a tier name (as produced by Tier.String) back to a
// Tier.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "generic", "purego", "noasm":
		return TierGeneric, nil
	case "sse2":
		return TierSSE2, nil
	case "avx2":
		return TierAVX2, nil
	case "avx512":
		return TierAVX512, nil
	case "neon":
		return TierNEON, nil
	}
	return TierGeneric, fmt.Errorf("cpu: unknown kernel tier %q", s)
}

// Features is the raw capability set the detector observed. Fields
// beyond what the current kernel tiers consume (FMA) are reported so
// benchmarks and bug reports can name the host precisely.
type Features struct {
	// SSE2 is true on every amd64 host (architectural baseline).
	SSE2 bool
	// SSE41 reports SSE4.1 (PMULLD and friends).
	SSE41 bool
	// AVX reports 256-bit float vectors with OS state support.
	AVX bool
	// AVX2 reports 256-bit integer vectors.
	AVX2 bool
	// FMA reports fused multiply-add. The FP32 micro-kernels
	// deliberately do not use it — fusing skips the intermediate
	// rounding the scalar reference performs, which would break the
	// engine's bitwise-parity contract — but it is detected and
	// reported for roofline modeling.
	FMA bool
	// F16C reports the VCVTPH2PS/VCVTPS2PH packed FP16<->FP32
	// conversions (with OS YMM state), which the FP16-compute path's
	// pack-time converters use.
	F16C bool
	// AVX512F, AVX512BW and AVX512VL report the individual AVX-512
	// subsets probed, each gated on OS opmask/ZMM state (XGETBV). The
	// ZMM kernels require all three; the split is reported so Summary
	// can name exactly what a partial-AVX-512 host is missing.
	AVX512F  bool
	AVX512BW bool
	AVX512VL bool
	// AVX512 reports the full F+BW+VL subset the TierAVX512 kernels
	// require, with OS ZMM state.
	AVX512 bool
	// NEON reports the arm64 Advanced SIMD baseline.
	NEON bool
}

var (
	detectOnce sync.Once
	detected   Features
	bestOnce   sync.Once
	bestTier   Tier
)

// Detect returns the host's observed capability set. The probe runs
// once; subsequent calls return the cached result.
func Detect() Features {
	detectOnce.Do(func() { detected = detect() })
	return detected
}

// maxSupported returns the widest tier the host can execute kernels
// for, ignoring the environment override.
func maxSupported(f Features) Tier {
	switch {
	case f.AVX512:
		return TierAVX512
	case f.AVX2:
		return TierAVX2
	case f.SSE2:
		return TierSSE2
	default:
		return TierGeneric
	}
}

// Best returns the micro-kernel tier the binary should execute:
// the widest tier with implemented kernels that the host supports,
// narrowed (never widened) by the VEDLIOT_CPU environment variable.
// The result is computed once at first use.
func Best() Tier {
	bestOnce.Do(func() {
		bestTier = maxSupported(Detect())
		if s := os.Getenv("VEDLIOT_CPU"); s != "" {
			if t, err := ParseTier(s); err == nil && t <= bestTier {
				bestTier = t
			}
		}
	})
	return bestTier
}

// Summary renders the detected capability set and the selected tier as
// one line, e.g. "tier avx512 (sse2 sse4.1 avx avx2 fma f16c avx512f
// avx512bw avx512vl)" — what vedliot-bench prints so perf artifacts are
// interpretable across machines. The AVX-512 subsets are listed
// individually so a host that fails the F+BW+VL gate still names what
// it does have.
func Summary() string {
	f := Detect()
	var caps []string
	add := func(ok bool, name string) {
		if ok {
			caps = append(caps, name)
		}
	}
	add(f.SSE2, "sse2")
	add(f.SSE41, "sse4.1")
	add(f.AVX, "avx")
	add(f.AVX2, "avx2")
	add(f.FMA, "fma")
	add(f.F16C, "f16c")
	add(f.AVX512F, "avx512f")
	add(f.AVX512BW, "avx512bw")
	add(f.AVX512VL, "avx512vl")
	add(f.NEON, "neon")
	if len(caps) == 0 {
		caps = append(caps, "portable")
	}
	return fmt.Sprintf("tier %s (%s)", Best(), strings.Join(caps, " "))
}
