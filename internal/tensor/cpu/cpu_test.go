package cpu

import (
	"runtime"
	"strings"
	"testing"
)

func TestTierString(t *testing.T) {
	cases := map[Tier]string{
		TierGeneric: "generic",
		TierSSE2:    "sse2",
		TierAVX2:    "avx2",
		TierAVX512:  "avx512",
		TierNEON:    "neon",
		Tier(99):    "tier(99)",
	}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}

func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
	}{
		{"generic", TierGeneric},
		{"purego", TierGeneric},
		{"noasm", TierGeneric},
		{"sse2", TierSSE2},
		{"AVX2", TierAVX2},
		{" avx2 ", TierAVX2},
		{"avx512", TierAVX512},
		{"AVX512", TierAVX512},
		{"neon", TierNEON},
	} {
		got, err := ParseTier(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseTier("avx9000"); err == nil {
		t.Error("ParseTier(avx9000) should fail")
	}
}

// TestTierRoundTrip pins the String/ParseTier round trip for every
// dispatchable tier, so bench artifacts and the VEDLIOT_CPU override
// always agree on names.
func TestTierRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierGeneric, TierSSE2, TierAVX2, TierAVX512, TierNEON} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v; want %v, nil", tier.String(), got, err, tier)
		}
	}
}

func TestTierOrdering(t *testing.T) {
	if !(TierGeneric < TierSSE2 && TierSSE2 < TierAVX2 && TierAVX2 < TierAVX512) {
		t.Fatal("tiers must be ordered generic < sse2 < avx2 < avx512 for the override clamp")
	}
}

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	if f.AVX2 && !f.AVX {
		t.Error("AVX2 implies AVX")
	}
	if f.AVX && !f.SSE2 {
		t.Error("AVX on amd64 implies SSE2")
	}
	if f.AVX512 && !(f.AVX512F && f.AVX512BW && f.AVX512VL) {
		t.Error("AVX512 composite requires the F, BW and VL subsets")
	}
	if runtime.GOARCH == "amd64" && f.NEON {
		t.Error("NEON reported on amd64")
	}
}

func TestMaxSupported(t *testing.T) {
	for _, tc := range []struct {
		f    Features
		want Tier
	}{
		{Features{}, TierGeneric},
		{Features{NEON: true}, TierGeneric}, // no NEON kernels yet
		{Features{SSE2: true}, TierSSE2},
		{Features{SSE2: true, AVX: true, AVX2: true}, TierAVX2},
		// A host with only partial AVX-512 subsets stays on AVX2.
		{Features{SSE2: true, AVX: true, AVX2: true, AVX512F: true}, TierAVX2},
		{Features{SSE2: true, AVX: true, AVX2: true,
			AVX512F: true, AVX512BW: true, AVX512VL: true, AVX512: true}, TierAVX512},
	} {
		if got := maxSupported(tc.f); got != tc.want {
			t.Errorf("maxSupported(%+v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestBestWithinSupport(t *testing.T) {
	// Best honors VEDLIOT_CPU only downward, so the result can never
	// exceed what the host supports.
	if best, max := Best(), maxSupported(Detect()); best > max {
		t.Errorf("Best() = %v exceeds host support %v", best, max)
	}
}

func TestSummary(t *testing.T) {
	s := Summary()
	if !strings.HasPrefix(s, "tier "+Best().String()) {
		t.Errorf("Summary() = %q, want prefix %q", s, "tier "+Best().String())
	}
	if runtime.GOARCH == "amd64" && Best() >= TierSSE2 && !strings.Contains(s, "sse2") {
		t.Errorf("Summary() = %q should list sse2 on amd64", s)
	}
	// Summary names the individual AVX-512 subsets, never the bare
	// composite, so partial hosts are distinguishable in artifacts.
	if Detect().AVX512 {
		for _, sub := range []string{"avx512f", "avx512bw", "avx512vl"} {
			if !strings.Contains(s, sub) {
				t.Errorf("Summary() = %q should list %s", s, sub)
			}
		}
	}
}
