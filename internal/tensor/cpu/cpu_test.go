package cpu

import (
	"runtime"
	"strings"
	"testing"
)

func TestTierString(t *testing.T) {
	cases := map[Tier]string{
		TierGeneric: "generic",
		TierSSE2:    "sse2",
		TierAVX2:    "avx2",
		TierNEON:    "neon",
		Tier(99):    "tier(99)",
	}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}

func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
	}{
		{"generic", TierGeneric},
		{"purego", TierGeneric},
		{"noasm", TierGeneric},
		{"sse2", TierSSE2},
		{"AVX2", TierAVX2},
		{" avx2 ", TierAVX2},
		{"neon", TierNEON},
	} {
		got, err := ParseTier(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseTier("avx9000"); err == nil {
		t.Error("ParseTier(avx9000) should fail")
	}
}

func TestTierOrdering(t *testing.T) {
	if !(TierGeneric < TierSSE2 && TierSSE2 < TierAVX2) {
		t.Fatal("tiers must be ordered generic < sse2 < avx2 for the override clamp")
	}
}

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	if f.AVX2 && !f.AVX {
		t.Error("AVX2 implies AVX")
	}
	if f.AVX && !f.SSE2 {
		t.Error("AVX on amd64 implies SSE2")
	}
	if runtime.GOARCH == "amd64" && f.NEON {
		t.Error("NEON reported on amd64")
	}
}

func TestMaxSupported(t *testing.T) {
	for _, tc := range []struct {
		f    Features
		want Tier
	}{
		{Features{}, TierGeneric},
		{Features{NEON: true}, TierGeneric}, // no NEON kernels yet
		{Features{SSE2: true}, TierSSE2},
		{Features{SSE2: true, AVX: true, AVX2: true}, TierAVX2},
		{Features{SSE2: true, AVX: true, AVX2: true, AVX512: true}, TierAVX2}, // AVX-512 slot reserved
	} {
		if got := maxSupported(tc.f); got != tc.want {
			t.Errorf("maxSupported(%+v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestBestWithinSupport(t *testing.T) {
	// Best honors VEDLIOT_CPU only downward, so the result can never
	// exceed what the host supports.
	if best, max := Best(), maxSupported(Detect()); best > max {
		t.Errorf("Best() = %v exceeds host support %v", best, max)
	}
}

func TestSummary(t *testing.T) {
	s := Summary()
	if !strings.HasPrefix(s, "tier "+Best().String()) {
		t.Errorf("Summary() = %q, want prefix %q", s, "tier "+Best().String())
	}
	if runtime.GOARCH == "amd64" && Best() >= TierSSE2 && !strings.Contains(s, "sse2") {
		t.Errorf("Summary() = %q should list sse2 on amd64", s)
	}
}
