package tensor

import (
	"math/rand"
	"testing"
)

// dotRef is the reference scalar dot the SIMD kernels must match.
func dotRef(a, b []int16) int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc int32
	for i := 0; i < n; i++ {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

func TestDotInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 7, 8, 15, 16, 17, 31, 63, 64, 257, 1000} {
		a := make([]int16, n)
		b := make([]int16, n)
		for i := range a {
			a[i] = int16(rng.Intn(511) - 255) // zero-point-shifted activation range
			b[i] = int16(rng.Intn(255) - 127) // int8 weight code range
		}
		if got, want := DotInt16(a, b), dotRef(a, b); got != want {
			t.Errorf("n=%d: DotInt16 = %d, want %d", n, got, want)
		}
	}
	// Unequal lengths truncate to the shorter operand.
	a := []int16{1, 2, 3, 4}
	b := []int16{5, 6}
	if got := DotInt16(a, b); got != 17 {
		t.Errorf("truncated dot = %d, want 17", got)
	}
}

func TestAxpyInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 8, 9, 16, 33, 100} {
		for _, w := range []int16{-127, -3, 0, 1, 89} {
			x := make([]int16, n)
			dst := make([]int32, n)
			want := make([]int32, n)
			for i := range x {
				x[i] = int16(rng.Intn(511) - 255)
				dst[i] = int32(rng.Intn(1000) - 500)
				want[i] = dst[i] + int32(w)*int32(x[i])
			}
			AxpyInt16(dst, x, w)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d w=%d: dst[%d] = %d, want %d", n, w, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestAxpyInt16Lengths pins the truncation contract: unequal operand
// lengths accumulate over the shorter one, and empty operands are
// no-ops.
func TestAxpyInt16Lengths(t *testing.T) {
	dst := []int32{10, 20, 30, 40}
	AxpyInt16(dst, []int16{2, 3}, 5)
	for i, want := range []int32{20, 35, 30, 40} {
		if dst[i] != want {
			t.Errorf("short x: dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	dst = []int32{7}
	AxpyInt16(dst, []int16{1, 2, 3}, 4)
	if dst[0] != 11 {
		t.Errorf("short dst: dst[0] = %d, want 11", dst[0])
	}
	AxpyInt16(nil, []int16{1}, 3)
	AxpyInt16([]int32{1}, nil, 3)
	if got := DotInt16(nil, nil); got != 0 {
		t.Errorf("empty dot = %d, want 0", got)
	}
}

func TestAxpyInt16Stride2(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 15, 16, 17, 100} {
		for _, xLen := range []int{2 * n, 2*n - 1, 2 * n, 2*n + 3} {
			if xLen < 0 {
				continue
			}
			for _, w := range []int16{-127, -1, 0, 2, 89} {
				x := make([]int16, xLen)
				for i := range x {
					x[i] = int16(rng.Intn(511) - 255)
				}
				dst := make([]int32, n)
				want := make([]int32, n)
				for i := range dst {
					dst[i] = int32(rng.Intn(1000) - 500)
					want[i] = dst[i]
					if 2*i < xLen {
						want[i] += int32(w) * int32(x[2*i])
					}
				}
				AxpyInt16Stride2(dst, x, w)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("n=%d xLen=%d w=%d: dst[%d] = %d, want %d",
							n, xLen, w, i, dst[i], want[i])
					}
				}
			}
		}
	}
}

func TestWidenShiftInt8(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 100} {
		for _, zp := range []int16{0, -128, 127, 11} {
			src := make([]int8, n)
			for i := range src {
				src[i] = int8(rng.Intn(256) - 128)
			}
			dst := make([]int16, n)
			WidenShiftInt8(dst, src, zp)
			for i := range dst {
				if want := int16(src[i]) - zp; dst[i] != want {
					t.Fatalf("n=%d zp=%d: dst[%d] = %d, want %d", n, zp, i, dst[i], want)
				}
			}
			// Length clamp: dst shorter than src and vice versa.
			if n > 2 {
				short := make([]int16, n-2)
				WidenShiftInt8(short, src, zp)
				for i := range short {
					if want := int16(src[i]) - zp; short[i] != want {
						t.Fatalf("short dst n=%d zp=%d: dst[%d] = %d, want %d", n, zp, i, short[i], want)
					}
				}
				long := make([]int16, n+3)
				WidenShiftInt8(long, src, zp)
				for i := n; i < len(long); i++ {
					if long[i] != 0 {
						t.Fatalf("long dst n=%d: dst[%d] = %d, want untouched 0", n, i, long[i])
					}
				}
			}
		}
	}
	WidenShiftInt8(nil, nil, 3)
}

func TestPackPairShiftInt8(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 17, 100} {
		for _, zp := range []int16{0, -128, 127, -9} {
			r0 := make([]int8, n)
			r1 := make([]int8, n)
			for i := range r0 {
				r0[i] = int8(rng.Intn(256) - 128)
				r1[i] = int8(rng.Intn(256) - 128)
			}
			out := make([]int16, 2*n+4)
			PackPairShiftInt8(out, r0, r1, zp)
			for i := 0; i < n; i++ {
				if want := int16(r0[i]) - zp; out[2*i] != want {
					t.Fatalf("n=%d zp=%d: out[%d] = %d, want %d", n, zp, 2*i, out[2*i], want)
				}
				if want := int16(r1[i]) - zp; out[2*i+1] != want {
					t.Fatalf("n=%d zp=%d: out[%d] = %d, want %d", n, zp, 2*i+1, out[2*i+1], want)
				}
			}
			for i := 2 * n; i < len(out); i++ {
				if out[i] != 0 {
					t.Fatalf("n=%d: out[%d] = %d, want untouched 0", n, i, out[i])
				}
			}
			// Unequal row lengths clamp to the shorter row.
			if n > 1 {
				out2 := make([]int16, 2*n)
				PackPairShiftInt8(out2, r0, r1[:n-1], zp)
				for i := 0; i < n-1; i++ {
					if want := int16(r0[i]) - zp; out2[2*i] != want {
						t.Fatalf("clamped n=%d: out[%d] = %d, want %d", n, 2*i, out2[2*i], want)
					}
					if want := int16(r1[i]) - zp; out2[2*i+1] != want {
						t.Fatalf("clamped n=%d: out[%d] = %d, want %d", n, 2*i+1, out2[2*i+1], want)
					}
				}
			}
		}
	}
	PackPairShiftInt8(nil, nil, nil, 3)
}

func BenchmarkDotInt16(b *testing.B) {
	x := make([]int16, 1024)
	y := make([]int16, 1024)
	for i := range x {
		x[i] = int16(i%509 - 254)
		y[i] = int16(i%251 - 125)
	}
	b.SetBytes(2048)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += DotInt16(x, y)
	}
	_ = sink
}

func BenchmarkAxpyInt16(b *testing.B) {
	x := make([]int16, 1024)
	dst := make([]int32, 1024)
	for i := range x {
		x[i] = int16(i%509 - 254)
	}
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		AxpyInt16(dst, x, 77)
	}
}
