package tensor

import (
	"math/rand"
	"testing"
)

// dotRef is the reference scalar dot the SIMD kernels must match.
func dotRef(a, b []int16) int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc int32
	for i := 0; i < n; i++ {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

func TestDotInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 7, 8, 15, 16, 17, 31, 63, 64, 257, 1000} {
		a := make([]int16, n)
		b := make([]int16, n)
		for i := range a {
			a[i] = int16(rng.Intn(511) - 255) // zero-point-shifted activation range
			b[i] = int16(rng.Intn(255) - 127) // int8 weight code range
		}
		if got, want := DotInt16(a, b), dotRef(a, b); got != want {
			t.Errorf("n=%d: DotInt16 = %d, want %d", n, got, want)
		}
	}
	// Unequal lengths truncate to the shorter operand.
	a := []int16{1, 2, 3, 4}
	b := []int16{5, 6}
	if got := DotInt16(a, b); got != 17 {
		t.Errorf("truncated dot = %d, want 17", got)
	}
}

func TestAxpyInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 8, 9, 16, 33, 100} {
		for _, w := range []int16{-127, -3, 0, 1, 89} {
			x := make([]int16, n)
			dst := make([]int32, n)
			want := make([]int32, n)
			for i := range x {
				x[i] = int16(rng.Intn(511) - 255)
				dst[i] = int32(rng.Intn(1000) - 500)
				want[i] = dst[i] + int32(w)*int32(x[i])
			}
			AxpyInt16(dst, x, w)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d w=%d: dst[%d] = %d, want %d", n, w, i, dst[i], want[i])
				}
			}
		}
	}
}

func BenchmarkDotInt16(b *testing.B) {
	x := make([]int16, 1024)
	y := make([]int16, 1024)
	for i := range x {
		x[i] = int16(i%509 - 254)
		y[i] = int16(i%251 - 125)
	}
	b.SetBytes(2048)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += DotInt16(x, y)
	}
	_ = sink
}

func BenchmarkAxpyInt16(b *testing.B) {
	x := make([]int16, 1024)
	dst := make([]int32, 1024)
	for i := range x {
		x[i] = int16(i%509 - 254)
	}
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		AxpyInt16(dst, x, 77)
	}
}
