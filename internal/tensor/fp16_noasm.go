//go:build !amd64 || purego || noasm

package tensor

// The portable build converts FP16 through the scalar routines only.

func f16ToF32Accel(dst []float32, src []uint16) int { return 0 }
func f32ToF16Accel(dst []uint16, src []float32) int { return 0 }
