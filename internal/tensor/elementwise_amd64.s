//go:build amd64 && !purego && !noasm

#include "textflag.h"

// Element-wise FP32 kernels (AVX2, 16 elements per iteration). The
// multiply and add stay separate instructions so every element sees
// the same two roundings as the scalar Go loops; VMAXPS places the
// value in the NaN-propagating source position so the ReLU clamp
// leaves NaN and -0 untouched, exactly like `if v < 0 { v = 0 }`.

// func axpyF32AVX2(dst, x *float32, n int, a float32)
TEXT ·axpyF32AVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS a+24(FP), Y0

axpy_loop:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMULPS  Y1, Y0, Y1  // a*x, same operand order as the scalar w*xi
	VMULPS  Y2, Y0, Y2
	VMOVUPS (DI), Y3
	VMOVUPS 32(DI), Y4
	VADDPS  Y1, Y3, Y3  // dst + a*x
	VADDPS  Y2, Y4, Y4
	VMOVUPS Y3, (DI)
	VMOVUPS Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     axpy_loop
	VZEROUPPER
	RET

// func axpyStride2F32AVX2(dst, x *float32, n int, a float32)
// Even-index deinterleave: VSHUFPS $0x88 picks elements {0,2} of each
// 128-bit lane pair, VPERMPD $0xD8 restores ascending order.
TEXT ·axpyStride2F32AVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS a+24(FP), Y0

axpys2_loop:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VSHUFPS $0x88, Y2, Y1, Y1
	VPERMPD $0xd8, Y1, Y1   // x[0],x[2],...,x[14]
	VMULPS  Y1, Y0, Y1      // a*x
	VMOVUPS (DI), Y3
	VADDPS  Y1, Y3, Y3      // dst + a*x
	VMOVUPS Y3, (DI)
	ADDQ    $64, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     axpys2_loop
	VZEROUPPER
	RET

// func gatherStride2F32AVX2(dst, x *float32, n int)
TEXT ·gatherStride2F32AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX

gathers2_loop:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VSHUFPS $0x88, Y2, Y1, Y1
	VPERMPD $0xd8, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $64, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     gathers2_loop
	VZEROUPPER
	RET

// func scaleShiftF32AVX2(p *float32, n int, s, sh float32)
TEXT ·scaleShiftF32AVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSS s+16(FP), Y0
	VBROADCASTSS sh+20(FP), Y1

ss_loop:
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	VMULPS  Y0, Y2, Y2  // v*s
	VMULPS  Y0, Y3, Y3
	VADDPS  Y1, Y2, Y2  // v*s + sh
	VADDPS  Y1, Y3, Y3
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     ss_loop
	VZEROUPPER
	RET

// func scaleShiftReluF32AVX2(p *float32, n int, s, sh float32)
TEXT ·scaleShiftReluF32AVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSS s+16(FP), Y0
	VBROADCASTSS sh+20(FP), Y1
	VXORPS Y4, Y4, Y4

ssr_loop:
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	VMULPS  Y0, Y2, Y2  // v*s
	VMULPS  Y0, Y3, Y3
	VADDPS  Y1, Y2, Y2  // v*s + sh
	VADDPS  Y1, Y3, Y3
	VMAXPS  Y2, Y4, Y2  // max(0, v'); NaN/-0 in src2 pass through
	VMAXPS  Y3, Y4, Y3
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     ssr_loop
	VZEROUPPER
	RET

// func reluF32AVX2(p *float32, n int)
TEXT ·reluF32AVX2(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	VXORPS Y0, Y0, Y0

relu_loop:
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VMAXPS  Y1, Y0, Y1
	VMAXPS  Y2, Y0, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     relu_loop
	VZEROUPPER
	RET
