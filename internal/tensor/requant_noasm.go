//go:build !amd64 || purego || noasm

package tensor

// requantInt8Accel has no accelerated form on this build; the scalar
// loop in RequantInt8 handles the whole row.
func requantInt8Accel(out []int8, acc []int32, r Requant, zp int32) int {
	return 0
}
