//go:build amd64 && !purego && !noasm

#include "textflag.h"

// Packed FP16 <-> FP32 conversion via F16C. VCVTPH2PS is exact;
// VCVTPS2PH with imm 0 rounds to nearest-even — both match the scalar
// Go converters bit for bit, including subnormals (the F16C
// instructions handle them natively, unaffected by MXCSR DAZ/FTZ) and
// NaN payload quieting.

// func f16ToF32F16C(dst *float32, src *uint16, n int)
TEXT ·f16ToF32F16C(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

h2s_loop:
	VCVTPH2PS (SI), Y0
	VCVTPH2PS 16(SI), Y1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $16, CX
	JNZ  h2s_loop
	VZEROUPPER
	RET

// func f32ToF16F16C(dst *uint16, src *float32, n int)
TEXT ·f32ToF16F16C(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

s2h_loop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VCVTPS2PH $0, Y0, X0 // imm 0 = round to nearest even
	VCVTPS2PH $0, Y1, X1
	VMOVUPS X0, (DI)
	VMOVUPS X1, 16(DI)
	ADDQ $64, SI
	ADDQ $32, DI
	SUBQ $16, CX
	JNZ  s2h_loop
	VZEROUPPER
	RET
