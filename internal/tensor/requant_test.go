package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refRequantInt8 is the scalar definition the accelerated path must
// reproduce bit-for-bit.
func refRequantInt8(out []int8, acc []int32, r Requant, zp int32) {
	for i, v := range acc {
		out[i] = ClampInt8(zp + r.Apply(v))
	}
}

// TestRequantInt8MatchesScalar drives RequantInt8 across multiplier
// magnitudes, zero points, extreme accumulators and every tail length,
// demanding exact equality with the scalar definition regardless of
// which variant the build dispatches to.
func TestRequantInt8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mults := []float64{1, 0.5, 0.25, 1.7e-3, 3.33e-2, 0.9999, 2.5, 1024,
		7.8e-9, 4.2e9, math.SmallestNonzeroFloat64, 0, math.Inf(1)}
	zps := []int32{0, -128, 127, 5, -7}
	for _, m := range mults {
		r := NewRequant(m)
		for _, zp := range zps {
			for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 100} {
				acc := make([]int32, n)
				for i := range acc {
					switch i % 5 {
					case 0:
						acc[i] = rng.Int31() - 1<<30
					case 1:
						acc[i] = math.MaxInt32
					case 2:
						acc[i] = math.MinInt32
					default:
						acc[i] = int32(rng.Intn(65536) - 32768)
					}
				}
				got := make([]int8, n)
				want := make([]int8, n)
				RequantInt8(got, acc, r, zp)
				refRequantInt8(want, acc, r, zp)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("m=%g zp=%d n=%d: out[%d] = %d, scalar %d (acc %d)",
							m, zp, n, i, got[i], want[i], acc[i])
					}
				}
			}
		}
	}
}

// FuzzRequantInt8 cross-checks the dispatched requantizer against the
// scalar definition on arbitrary accumulator bytes and multipliers.
func FuzzRequantInt8(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 255, 0, 0, 0}, 0.031, int32(3))
	f.Add(make([]byte, 64), 1.0, int32(-128))
	f.Fuzz(func(t *testing.T, raw []byte, m float64, zp int32) {
		n := len(raw) / 4
		acc := make([]int32, n)
		for i := range acc {
			acc[i] = int32(raw[4*i]) | int32(raw[4*i+1])<<8 |
				int32(raw[4*i+2])<<16 | int32(raw[4*i+3])<<24
		}
		r := NewRequant(m)
		got := make([]int8, n)
		want := make([]int8, n)
		RequantInt8(got, acc, r, zp)
		refRequantInt8(want, acc, r, zp)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("m=%g zp=%d: out[%d] = %d, scalar %d (acc %d)",
					m, zp, i, got[i], want[i], acc[i])
			}
		}
	})
}
