package tensor

// Portable micro-kernels, compiled on every GOARCH. They share the
// AVX2 tile shapes (6x16 FP32, 4x16 INT16) so the generic tier packs
// operands identically to the widest SIMD tier.
//
// The FP32 inner statement is written `acc += a*b` — the same shape as
// the scalar interpreter loop — so on architectures where the Go
// compiler fuses multiply-add (arm64), kernel and interpreter fuse
// identically and bitwise parity still holds; on amd64 neither fuses.

import "vedliot/internal/tensor/cpu"

var genericGemmF32 = GemmKernelF32{MR: 6, NR: 16, Tier: cpu.TierGeneric, Run: gemmF32Generic, RunAcc: gemmF32GenericAcc}
var genericGemmI16 = GemmKernelI16{MR: 4, NR: 16, Tier: cpu.TierGeneric, Run: gemmI16Generic, RunAcc: gemmI16GenericAcc}

func gemmF32Generic(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int) {
	var acc [6][16]float32
	for i := 0; i < 6; i++ {
		bi := bias[i]
		for j := 0; j < 16; j++ {
			acc[i][j] = bi
		}
	}
	gemmF32GenericBody(&acc, a, b, ldb, k, c, ldc)
}

// gemmF32GenericAcc is the K-continuation variant: accumulators seed
// from the current C tile (bias ignored) so the blocked driver can
// split K without perturbing the per-element add chain.
func gemmF32GenericAcc(a []float32, b []float32, ldb, k int, _ []float32, c []float32, ldc int) {
	var acc [6][16]float32
	for i := 0; i < 6; i++ {
		copy(acc[i][:], c[i*ldc:i*ldc+16])
	}
	gemmF32GenericBody(&acc, a, b, ldb, k, c, ldc)
}

func gemmF32GenericBody(acc *[6][16]float32, a []float32, b []float32, ldb, k int, c []float32, ldc int) {
	for kk := 0; kk < k; kk++ {
		ap := a[kk*6 : kk*6+6 : kk*6+6]
		bp := b[kk*ldb : kk*ldb+16 : kk*ldb+16]
		for i := 0; i < 6; i++ {
			av := ap[i]
			ai := &acc[i]
			for j := 0; j < 16; j++ {
				ai[j] += av * bp[j]
			}
		}
	}
	for i := 0; i < 6; i++ {
		copy(c[i*ldc:i*ldc+16], acc[i][:])
	}
}

func gemmI16Generic(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int) {
	var acc [4][16]int32
	for i := 0; i < 4; i++ {
		bi := bias[i]
		for j := 0; j < 16; j++ {
			acc[i][j] = bi
		}
	}
	gemmI16GenericBody(&acc, a, b, ldb, kPairs, c, ldc)
}

// gemmI16GenericAcc seeds accumulators from the current C tile (bias
// ignored) for K-split continuation.
func gemmI16GenericAcc(a []int16, b []int16, ldb, kPairs int, _ []int32, c []int32, ldc int) {
	var acc [4][16]int32
	for i := 0; i < 4; i++ {
		copy(acc[i][:], c[i*ldc:i*ldc+16])
	}
	gemmI16GenericBody(&acc, a, b, ldb, kPairs, c, ldc)
}

func gemmI16GenericBody(acc *[4][16]int32, a []int16, b []int16, ldb, kPairs int, c []int32, ldc int) {
	for kp := 0; kp < kPairs; kp++ {
		ap := a[kp*8 : kp*8+8 : kp*8+8]
		bp := b[kp*ldb : kp*ldb+32 : kp*ldb+32]
		for i := 0; i < 4; i++ {
			a0 := int32(ap[i*2])
			a1 := int32(ap[i*2+1])
			ai := &acc[i]
			for j := 0; j < 16; j++ {
				ai[j] += a0*int32(bp[j*2]) + a1*int32(bp[j*2+1])
			}
		}
	}
	for i := 0; i < 4; i++ {
		copy(c[i*ldc:i*ldc+16], acc[i][:])
	}
}
