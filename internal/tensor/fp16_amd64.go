//go:build amd64 && !purego && !noasm

package tensor

import "vedliot/internal/tensor/cpu"

// f16cOK is pinned at package init like the element-wise dispatch:
// the packed converters need the F16C extension and an AVX-capable
// tier (the kernels use VEX/YMM forms), and they respect the
// VEDLIOT_CPU clamp so narrowed test runs exercise the scalar path.
var f16cOK = cpu.Best() >= cpu.TierAVX2 && cpu.Detect().F16C

func f16ToF32Accel(dst []float32, src []uint16) int {
	n := len(dst) &^ 15
	if n == 0 || !f16cOK {
		return 0
	}
	f16ToF32F16C(&dst[0], &src[0], n)
	return n
}

func f32ToF16Accel(dst []uint16, src []float32) int {
	n := len(dst) &^ 15
	if n == 0 || !f16cOK {
		return 0
	}
	f32ToF16F16C(&dst[0], &src[0], n)
	return n
}

// f16ToF32F16C converts n packed halves to floats with VCVTPH2PS; n
// must be a multiple of 16.
//
//go:noescape
func f16ToF32F16C(dst *float32, src *uint16, n int)

// f32ToF16F16C converts n packed floats to halves with VCVTPS2PH
// (round-to-nearest-even); n must be a multiple of 16.
//
//go:noescape
func f32ToF16F16C(dst *uint16, src *float32, n int)
