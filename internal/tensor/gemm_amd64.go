//go:build amd64 && !purego && !noasm

package tensor

// amd64 micro-kernel registration. SSE2 is baseline so its kernels are
// always available; the AVX2 kernels register only when the detector
// confirms both the ISA and OS YMM state support.

import "vedliot/internal/tensor/cpu"

// gemmF32SSE2 computes a 6x8 FP32 tile with MULPS+ADDPS (no FMA).
//
//go:noescape
func gemmF32SSE2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmF32AVX2 computes a 6x16 FP32 tile with VMULPS+VADDPS (no FMA).
//
//go:noescape
func gemmF32AVX2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmI16SSE2 computes a 4x8 quantized tile with PMADDWD.
//
//go:noescape
func gemmI16SSE2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

// gemmI16AVX2 computes a 4x16 quantized tile with VPMADDWD.
//
//go:noescape
func gemmI16AVX2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

func init() {
	gemmF32Kernels = append(gemmF32Kernels,
		GemmKernelF32{MR: 6, NR: 8, Tier: cpu.TierSSE2, Run: gemmF32SSE2})
	gemmI16Kernels = append(gemmI16Kernels,
		GemmKernelI16{MR: 4, NR: 8, Tier: cpu.TierSSE2, Run: gemmI16SSE2})
	if cpu.Detect().AVX2 {
		gemmF32Kernels = append(gemmF32Kernels,
			GemmKernelF32{MR: 6, NR: 16, Tier: cpu.TierAVX2, Run: gemmF32AVX2})
		gemmI16Kernels = append(gemmI16Kernels,
			GemmKernelI16{MR: 4, NR: 16, Tier: cpu.TierAVX2, Run: gemmI16AVX2})
	}
}
