//go:build amd64 && !purego && !noasm

package tensor

// amd64 micro-kernel registration. SSE2 is baseline so its kernels are
// always available; the AVX2 and AVX-512 kernels register only when
// the detector confirms both the ISA subsets and OS vector state. The
// Acc variants are the K-continuation kernels the cache-blocked driver
// chains K blocks through; SSE2 deliberately has none (the narrow tier
// exists for parity testing, where the unblocked path suffices).

import "vedliot/internal/tensor/cpu"

// gemmF32SSE2 computes a 6x8 FP32 tile with MULPS+ADDPS (no FMA).
//
//go:noescape
func gemmF32SSE2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmF32AVX2 computes a 6x16 FP32 tile with VMULPS+VADDPS (no FMA).
//
//go:noescape
func gemmF32AVX2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmF32AVX2Acc is gemmF32AVX2 with accumulators seeded from c.
//
//go:noescape
func gemmF32AVX2Acc(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmF32AVX512 computes an 8x48 FP32 tile on ZMM registers with
// VMULPS+VADDPS (no FMA).
//
//go:noescape
func gemmF32AVX512(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmF32AVX512Acc is gemmF32AVX512 with accumulators seeded from c.
//
//go:noescape
func gemmF32AVX512Acc(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)

// gemmI16SSE2 computes a 4x8 quantized tile with PMADDWD.
//
//go:noescape
func gemmI16SSE2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

// gemmI16AVX2 computes a 4x16 quantized tile with VPMADDWD.
//
//go:noescape
func gemmI16AVX2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

// gemmI16AVX2Acc is gemmI16AVX2 with accumulators seeded from c.
//
//go:noescape
func gemmI16AVX2Acc(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

// gemmI16AVX512 computes an 8x32 quantized tile on ZMM registers with
// VPMADDWD (requires AVX512BW).
//
//go:noescape
func gemmI16AVX512(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

// gemmI16AVX512Acc is gemmI16AVX512 with accumulators seeded from c.
//
//go:noescape
func gemmI16AVX512Acc(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)

func init() {
	gemmF32Kernels = append(gemmF32Kernels,
		GemmKernelF32{MR: 6, NR: 8, Tier: cpu.TierSSE2, Run: gemmF32SSE2})
	gemmI16Kernels = append(gemmI16Kernels,
		GemmKernelI16{MR: 4, NR: 8, Tier: cpu.TierSSE2, Run: gemmI16SSE2})
	if cpu.Detect().AVX2 {
		gemmF32Kernels = append(gemmF32Kernels,
			GemmKernelF32{MR: 6, NR: 16, Tier: cpu.TierAVX2, Run: gemmF32AVX2, RunAcc: gemmF32AVX2Acc})
		gemmI16Kernels = append(gemmI16Kernels,
			GemmKernelI16{MR: 4, NR: 16, Tier: cpu.TierAVX2, Run: gemmI16AVX2, RunAcc: gemmI16AVX2Acc})
	}
	if cpu.Detect().AVX512 {
		gemmF32Kernels = append(gemmF32Kernels,
			GemmKernelF32{MR: 8, NR: 48, Tier: cpu.TierAVX512, Run: gemmF32AVX512, RunAcc: gemmF32AVX512Acc})
		gemmI16Kernels = append(gemmI16Kernels,
			GemmKernelI16{MR: 8, NR: 32, Tier: cpu.TierAVX512, Run: gemmI16AVX512, RunAcc: gemmI16AVX512Acc})
	}
}
