package tensor

// Element-wise FP32 helpers for the inference engine's non-GEMM hot
// loops: row-wise accumulation in the direct convolution form and the
// fused per-channel epilogues. Like the GEMM micro-kernels they follow
// the strict-parity contract — one rounding for the multiply and one
// for the add per element, never an FMA — so the accelerated paths are
// bitwise identical to the scalar loops they replace, element by
// element, including NaN propagation and signed zero.

// AxpyF32 accumulates dst[i] += a*x[i] over len(dst) elements; x must
// be at least as long as dst.
func AxpyF32(dst, x []float32, a float32) {
	x = x[:len(dst)]
	n := axpyF32Accel(dst, x, a)
	for i := n; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// AxpyStride2F32 accumulates dst[i] += a*x[2*i] — the stride-2 row
// accumulation of the direct convolution form, where every zoo model
// downsamples. x must hold at least 2*len(dst)-1 elements.
func AxpyStride2F32(dst, x []float32, a float32) {
	n := axpyStride2F32Accel(dst, x, a)
	for i := n; i < len(dst); i++ {
		dst[i] += a * x[2*i]
	}
}

// GatherStride2F32 copies dst[i] = x[2*i] — the stride-2 im2col row
// gather. x must hold at least 2*len(dst)-1 elements.
func GatherStride2F32(dst, x []float32) {
	n := gatherStride2F32Accel(dst, x)
	for i := n; i < len(dst); i++ {
		dst[i] = x[2*i]
	}
}

// ScaleShiftF32 rewrites every v in span as v*s + sh.
func ScaleShiftF32(span []float32, s, sh float32) {
	n := scaleShiftF32Accel(span, s, sh)
	for i := n; i < len(span); i++ {
		span[i] = span[i]*s + sh
	}
}

// ScaleShiftReluF32 rewrites every v in span as max(v*s+sh, 0), with
// NaN and -0 passing through exactly as the scalar `if v < 0` clamp
// leaves them.
func ScaleShiftReluF32(span []float32, s, sh float32) {
	n := scaleShiftReluF32Accel(span, s, sh)
	for i := n; i < len(span); i++ {
		v := span[i]*s + sh
		if v < 0 {
			v = 0
		}
		span[i] = v
	}
}

// ReluF32 clamps every negative v in span to 0; NaN and -0 are left in
// place.
func ReluF32(span []float32) {
	n := reluF32Accel(span)
	for i := n; i < len(span); i++ {
		if span[i] < 0 {
			span[i] = 0
		}
	}
}
