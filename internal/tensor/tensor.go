// Package tensor provides dense numeric tensors for the VEDLIoT toolchain.
//
// Tensors are the common currency between the neural-network graph IR
// (internal/nn), the reference interpreter (internal/inference) and the
// optimization passes (internal/optimize). Three storage types are
// supported, mirroring the precisions evaluated in the paper (Fig. 4):
// FP32 (the reference), FP16 (stored as IEEE 754 binary16) and INT8
// (affine-quantized with scale and zero point).
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// DType identifies the element type of a tensor.
type DType int

const (
	// FP32 is 32-bit IEEE 754 floating point, the reference precision.
	FP32 DType = iota
	// FP16 is 16-bit IEEE 754 floating point (binary16).
	FP16
	// INT8 is 8-bit affine-quantized integer.
	INT8
)

// String returns the conventional name of the data type.
func (d DType) String() string {
	switch d {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Size returns the storage size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		return 0
	}
}

// ParseDType converts a precision name ("FP32", "fp16", "INT8") to a DType.
func ParseDType(s string) (DType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "FP32", "FLOAT32", "F32":
		return FP32, nil
	case "FP16", "FLOAT16", "F16":
		return FP16, nil
	case "INT8", "I8":
		return INT8, nil
	}
	return FP32, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Shape describes the extent of each tensor dimension. The canonical
// activation layout used throughout the toolchain is NCHW.
type Shape []int

// NumElements returns the product of all dimensions. An empty shape
// denotes a scalar and has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as, e.g., "[1 3 224 224]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// QuantParams hold the affine quantization mapping for INT8 tensors:
// real = scale * (q - zero). The JSON form is the unit the calibration
// schema (nn.QuantSchema) persists.
type QuantParams struct {
	Scale float32 `json:"scale"`
	Zero  int32   `json:"zero,omitempty"`
}

// Quantize maps a real value to the nearest representable INT8 code.
func (q QuantParams) Quantize(v float32) int8 {
	if q.Scale == 0 {
		return int8(q.Zero)
	}
	r := math.Round(float64(v)/float64(q.Scale)) + float64(q.Zero)
	if r > 127 {
		r = 127
	}
	if r < -128 {
		r = -128
	}
	return int8(r)
}

// Dequantize maps an INT8 code back to its real value.
func (q QuantParams) Dequantize(v int8) float32 {
	return q.Scale * float32(int32(v)-q.Zero)
}

// Tensor is a dense n-dimensional array. Exactly one of the backing
// slices is non-nil, selected by DType.
type Tensor struct {
	Shape Shape
	DType DType

	F32 []float32
	F16 []uint16
	I8  []int8

	// Quant holds the affine mapping for INT8 tensors; ignored otherwise.
	Quant QuantParams
}

// ErrShape is returned when an operation receives incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor with the given type and shape.
func New(dt DType, shape ...int) *Tensor {
	t := &Tensor{Shape: Shape(shape).Clone(), DType: dt}
	n := t.Shape.NumElements()
	switch dt {
	case FP32:
		t.F32 = make([]float32, n)
	case FP16:
		t.F16 = make([]uint16, n)
	case INT8:
		t.I8 = make([]int8, n)
	}
	return t
}

// FromSlice wraps data in an FP32 tensor of the given shape. The slice
// is used directly, not copied.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if s.NumElements() != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v", ErrShape, len(data), s)
	}
	return &Tensor{Shape: s.Clone(), DType: FP32, F32: data}, nil
}

// MustFromSlice is FromSlice that panics on shape mismatch; intended for
// tests and static model construction.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumElements returns the number of elements.
func (t *Tensor) NumElements() int { return t.Shape.NumElements() }

// SizeBytes returns the storage footprint of the tensor payload.
func (t *Tensor) SizeBytes() int { return t.NumElements() * t.DType.Size() }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: t.Shape.Clone(), DType: t.DType, Quant: t.Quant}
	switch t.DType {
	case FP32:
		c.F32 = append([]float32(nil), t.F32...)
	case FP16:
		c.F16 = append([]uint16(nil), t.F16...)
	case INT8:
		c.I8 = append([]int8(nil), t.I8...)
	}
	return c
}

// At returns the element at the given multi-dimensional index as float64,
// dequantizing as necessary.
func (t *Tensor) At(idx ...int) float64 {
	off, err := t.offset(idx)
	if err != nil {
		panic(err)
	}
	return t.at(off)
}

// SetAt stores v at the given multi-dimensional index, quantizing as
// necessary.
func (t *Tensor) SetAt(v float64, idx ...int) {
	off, err := t.offset(idx)
	if err != nil {
		panic(err)
	}
	t.set(off, v)
}

func (t *Tensor) offset(idx []int) (int, error) {
	if len(idx) != len(t.Shape) {
		return 0, fmt.Errorf("%w: %d indices for rank %d", ErrShape, len(idx), len(t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			return 0, fmt.Errorf("tensor: index %d out of range for dim %d (size %d)", x, i, t.Shape[i])
		}
		off = off*t.Shape[i] + x
	}
	return off, nil
}

func (t *Tensor) at(off int) float64 {
	switch t.DType {
	case FP32:
		return float64(t.F32[off])
	case FP16:
		return float64(FP16ToFloat(t.F16[off]))
	case INT8:
		return float64(t.Quant.Dequantize(t.I8[off]))
	}
	return 0
}

func (t *Tensor) set(off int, v float64) {
	switch t.DType {
	case FP32:
		t.F32[off] = float32(v)
	case FP16:
		t.F16[off] = FloatToFP16(float32(v))
	case INT8:
		t.I8[off] = t.Quant.Quantize(float32(v))
	}
}

// Float32s returns the tensor contents as a fresh FP32 slice, converting
// from the storage precision as needed.
func (t *Tensor) Float32s() []float32 {
	n := t.NumElements()
	out := make([]float32, n)
	switch t.DType {
	case FP32:
		copy(out, t.F32)
	case FP16:
		for i, h := range t.F16 {
			out[i] = FP16ToFloat(h)
		}
	case INT8:
		for i, q := range t.I8 {
			out[i] = t.Quant.Dequantize(q)
		}
	}
	return out
}

// Convert returns a copy of the tensor in the requested precision. For
// INT8 targets the quantization parameters are chosen symmetric from the
// data range (per-tensor).
func (t *Tensor) Convert(dt DType) *Tensor {
	if dt == t.DType {
		return t.Clone()
	}
	vals := t.Float32s()
	out := New(dt, t.Shape...)
	switch dt {
	case FP32:
		copy(out.F32, vals)
	case FP16:
		for i, v := range vals {
			out.F16[i] = FloatToFP16(v)
		}
	case INT8:
		out.Quant = SymmetricParams(vals)
		for i, v := range vals {
			out.I8[i] = out.Quant.Quantize(v)
		}
	}
	return out
}

// SymmetricParams derives symmetric per-tensor quantization parameters
// (zero point 0) covering the absolute range of vals.
func SymmetricParams(vals []float32) QuantParams {
	var maxAbs float32
	for _, v := range vals {
		a := float32(math.Abs(float64(v)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return QuantParams{Scale: 1}
	}
	return QuantParams{Scale: maxAbs / 127}
}

// AffineParams derives asymmetric quantization parameters covering
// [minV, maxV]; the range is widened to include zero so that zero is
// exactly representable (required for zero padding).
func AffineParams(minV, maxV float32) QuantParams {
	if minV > 0 {
		minV = 0
	}
	if maxV < 0 {
		maxV = 0
	}
	if maxV == minV {
		return QuantParams{Scale: 1}
	}
	// Work in float64: the range may overflow float32 (e.g. ±1e38).
	scale := (float64(maxV) - float64(minV)) / 255
	zero := int32(math.Round(-float64(minV)/scale)) - 128
	if zero > 127 {
		zero = 127
	}
	if zero < -128 {
		zero = -128
	}
	return QuantParams{Scale: float32(scale), Zero: zero}
}

// MinMax returns the minimum and maximum element values.
func (t *Tensor) MinMax() (minV, maxV float32) {
	vals := t.Float32s()
	if len(vals) == 0 {
		return 0, 0
	}
	minV, maxV = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}

// String summarizes the tensor without dumping its payload.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor{%s %s, %d B}", t.DType, t.Shape, t.SizeBytes())
}
