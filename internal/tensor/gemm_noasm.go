//go:build !amd64 || purego || noasm

package tensor

// No SIMD micro-kernels in this build: the generic kernels registered
// in gemm_generic.go are the only variants, so PickGemmF32/PickGemmI16
// resolve to the portable tier regardless of what the host supports.
