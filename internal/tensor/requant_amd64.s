//go:build amd64 && !purego && !noasm

#include "textflag.h"

// func requantInt8AVX2(out *int8, acc *int32, n int, mult, round int64, shift uint64, zp int32)
//
// Vector form of Requant.Apply + ClampInt8 over 16 accumulators per
// iteration, bit-identical to the scalar loop:
//
//	out[i] = sat8(zp + int32((int64(acc[i])*mult + round) >> shift))
//
// VPMULDQ gives the exact signed 32x32->64 products (mult is a 31-bit
// mantissa, so it fits the low dword). The 64-bit arithmetic right
// shift AVX2 lacks is synthesized in the unsigned domain: flip the sign
// bit, shift logically, subtract 1<<(63-shift). Taking the low dword of
// each product then matches the scalar int32 truncation, and the
// saturating packs VPACKSSDW+VPACKSSWB compose to exactly ClampInt8.
//
// Every vector instruction here, including the GPR->XMM staging moves,
// must use a VEX encoding (VMOVQ/VMOVD, not MOVQ/MOVL): a legacy SSE
// write to an XMM register while the YMM uppers are dirty triggers a
// per-instruction state-transition penalty that once cost this kernel
// ~450ns of fixed overhead per call.
TEXT ·requantInt8AVX2(SB), NOSPLIT, $0-52
	MOVQ out+0(FP), DI
	MOVQ acc+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ mult+24(FP), AX
	VMOVQ AX, X8
	VPBROADCASTQ X8, Y8 // mult in every qword
	MOVQ round+32(FP), AX
	VMOVQ AX, X9
	VPBROADCASTQ X9, Y9 // round in every qword
	MOVQ shift+40(FP), AX
	VMOVQ AX, X10                // shift count for VPSRLQ
	MOVQ $0x8000000000000000, AX
	VMOVQ AX, X11
	VPBROADCASTQ X11, Y11 // sign-bit bias
	VPSRLQ X10, Y11, Y12  // 1 << (63-shift): unbias after the shift
	MOVL zp+48(FP), AX
	VMOVD AX, X13
	VPBROADCASTD X13, Y13 // zp in every dword

loop16:
	CMPQ CX, $16
	JLT  done
	VMOVDQU (SI), Y0   // acc[0:8]
	VMOVDQU 32(SI), Y1 // acc[8:16]

	// Y0 -> Y2: eight requantized int32 lanes.
	VPMULDQ Y8, Y0, Y2 // products of even dwords
	VPSRLQ  $32, Y0, Y3
	VPMULDQ Y8, Y3, Y3 // products of odd dwords
	VPADDQ  Y9, Y2, Y2
	VPADDQ  Y9, Y3, Y3
	VPXOR   Y11, Y2, Y2
	VPXOR   Y11, Y3, Y3
	VPSRLQ  X10, Y2, Y2
	VPSRLQ  X10, Y3, Y3
	VPSUBQ  Y12, Y2, Y2
	VPSUBQ  Y12, Y3, Y3
	VPSLLQ  $32, Y3, Y3
	VPBLENDD $0xAA, Y3, Y2, Y2 // reinterleave even/odd results
	VPADDD  Y13, Y2, Y2

	// Y1 -> Y4, same steps.
	VPMULDQ Y8, Y1, Y4
	VPSRLQ  $32, Y1, Y5
	VPMULDQ Y8, Y5, Y5
	VPADDQ  Y9, Y4, Y4
	VPADDQ  Y9, Y5, Y5
	VPXOR   Y11, Y4, Y4
	VPXOR   Y11, Y5, Y5
	VPSRLQ  X10, Y4, Y4
	VPSRLQ  X10, Y5, Y5
	VPSUBQ  Y12, Y4, Y4
	VPSUBQ  Y12, Y5, Y5
	VPSLLQ  $32, Y5, Y5
	VPBLENDD $0xAA, Y5, Y4, Y4
	VPADDD  Y13, Y4, Y4

	// Saturating narrow 16 x int32 -> 16 x int8, restoring linear order
	// around VPACKSSDW's per-lane interleave.
	VPACKSSDW Y4, Y2, Y2
	VPERMQ    $0xD8, Y2, Y2
	VEXTRACTI128 $1, Y2, X3
	VPACKSSWB X3, X2, X2
	VMOVDQU   X2, (DI)

	ADDQ $64, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  loop16

done:
	VZEROUPPER
	RET
