//go:build amd64 && !purego && !noasm

package tensor

import "vedliot/internal/tensor/cpu"

// The accelerated element-wise kernels handle a 16-aligned prefix and
// return how many elements they covered; the scalar tails in
// elementwise.go finish the rest. Dispatch honors the VEDLIOT_CPU tier
// clamp like the GEMM and requantize kernels, but resolves it once:
// these kernels run on spans as short as one image row, where a
// per-call sync.Once load is measurable. These loops are load/store
// bound, so 256-bit vectors already saturate the memory ports; a ZMM
// variant would not move them.

// ewAVX2 is pinned at package init: Best() is itself immutable after
// its first call (VEDLIOT_CPU is read once), so a plain bool is safe
// and avoids the per-call atomic.
var ewAVX2 = cpu.Best() >= cpu.TierAVX2

func axpyF32Accel(dst, x []float32, a float32) int {
	n := len(dst) &^ 15
	if n == 0 || !ewAVX2 {
		return 0
	}
	axpyF32AVX2(&dst[0], &x[0], n, a)
	return n
}

// stride2Prefix returns how many outputs the stride-2 kernels may
// produce: a multiple of 8, with every 8-output group backed by a full
// 16-element read of x (the vector load reads one element past the
// last 2*i index it uses).
func stride2Prefix(nd, nx int) int {
	n := nd &^ 7
	if m := (nx / 16) * 8; m < n {
		n = m
	}
	return n
}

func axpyStride2F32Accel(dst, x []float32, a float32) int {
	n := stride2Prefix(len(dst), len(x))
	if n == 0 || !ewAVX2 {
		return 0
	}
	axpyStride2F32AVX2(&dst[0], &x[0], n, a)
	return n
}

func gatherStride2F32Accel(dst, x []float32) int {
	n := stride2Prefix(len(dst), len(x))
	if n == 0 || !ewAVX2 {
		return 0
	}
	gatherStride2F32AVX2(&dst[0], &x[0], n)
	return n
}

func scaleShiftF32Accel(span []float32, s, sh float32) int {
	n := len(span) &^ 15
	if n == 0 || !ewAVX2 {
		return 0
	}
	scaleShiftF32AVX2(&span[0], n, s, sh)
	return n
}

func scaleShiftReluF32Accel(span []float32, s, sh float32) int {
	n := len(span) &^ 15
	if n == 0 || !ewAVX2 {
		return 0
	}
	scaleShiftReluF32AVX2(&span[0], n, s, sh)
	return n
}

func reluF32Accel(span []float32) int {
	n := len(span) &^ 15
	if n == 0 || !ewAVX2 {
		return 0
	}
	reluF32AVX2(&span[0], n)
	return n
}

// axpyF32AVX2 computes dst[i] += a*x[i] for i < n; n must be a
// multiple of 16. Separate VMULPS/VADDPS keep scalar rounding.
//
//go:noescape
func axpyF32AVX2(dst, x *float32, n int, a float32)

// axpyStride2F32AVX2 computes dst[i] += a*x[2*i] for i < n; n must be
// a multiple of 8 and x must hold 2*n elements.
//
//go:noescape
func axpyStride2F32AVX2(dst, x *float32, n int, a float32)

// gatherStride2F32AVX2 copies dst[i] = x[2*i] for i < n; n must be a
// multiple of 8 and x must hold 2*n elements.
//
//go:noescape
func gatherStride2F32AVX2(dst, x *float32, n int)

// scaleShiftF32AVX2 computes p[i] = p[i]*s + sh for i < n; n must be a
// multiple of 16.
//
//go:noescape
func scaleShiftF32AVX2(p *float32, n int, s, sh float32)

// scaleShiftReluF32AVX2 computes p[i] = max(p[i]*s+sh, 0) for i < n
// with NaN/-0 passing through; n must be a multiple of 16.
//
//go:noescape
func scaleShiftReluF32AVX2(p *float32, n int, s, sh float32)

// reluF32AVX2 clamps negative p[i] to 0 for i < n; n must be a
// multiple of 16.
//
//go:noescape
func reluF32AVX2(p *float32, n int)
