package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSubMul(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{4, 5, 6}, 3)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.F32[0] != 5 || sum.F32[2] != 9 {
		t.Errorf("Add = %v", sum.F32)
	}
	diff, _ := Sub(b, a)
	if diff.F32[1] != 3 {
		t.Errorf("Sub = %v", diff.F32)
	}
	prod, _ := Mul(a, b)
	if prod.F32[2] != 18 {
		t.Errorf("Mul = %v", prod.F32)
	}
	if _, err := Add(a, MustFromSlice([]float32{1}, 1)); err == nil {
		t.Error("Add accepted mismatched shapes")
	}
}

func TestScale(t *testing.T) {
	a := MustFromSlice([]float32{1, -2}, 2)
	s := Scale(a, 3)
	if s.F32[0] != 3 || s.F32[1] != -6 {
		t.Errorf("Scale = %v", s.F32)
	}
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.F32[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.F32[i], w)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Error("MatMul accepted bad inner dims")
	}
	if _, err := MatMul(MustFromSlice([]float32{1}, 1), b); err == nil {
		t.Error("MatMul accepted rank-1")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	f := func(raw []float32) bool {
		n := 4
		if len(raw) < n*n {
			return true
		}
		vals := make([]float32, n*n)
		for i := range vals {
			v := raw[i]
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			vals[i] = v
		}
		a := MustFromSlice(vals, n, n)
		id := New(FP32, n, n)
		for i := 0; i < n; i++ {
			id.F32[i*n+i] = 1
		}
		c, err := MatMul(a, id)
		if err != nil {
			return false
		}
		for i := range vals {
			if c.F32[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDot(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{4, 5, 6}, 3)
	d, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	if _, err := Dot(a, MustFromSlice([]float32{1}, 1)); err == nil {
		t.Error("Dot accepted length mismatch")
	}
}

func TestArgMax(t *testing.T) {
	a := MustFromSlice([]float32{0.1, 0.9, 0.3}, 3)
	if ArgMax(a) != 1 {
		t.Errorf("ArgMax = %d", ArgMax(a))
	}
	if ArgMax(New(FP32)) == -1 { // scalar has one element at index 0
		t.Error("scalar ArgMax should be 0")
	}
	empty := &Tensor{Shape: Shape{0}, DType: FP32}
	if ArgMax(empty) != -1 {
		t.Error("empty ArgMax should be -1")
	}
}

func TestSoftmax(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	s := Softmax(a)
	var sum float64
	for _, v := range s.F32 {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(s.F32[2] > s.F32[1] && s.F32[1] > s.F32[0]) {
		t.Errorf("softmax not order-preserving: %v", s.F32)
	}
	// Large inputs must not overflow.
	big := MustFromSlice([]float32{1000, 1001}, 2)
	sb := Softmax(big)
	if math.IsNaN(float64(sb.F32[0])) || math.IsInf(float64(sb.F32[1]), 0) {
		t.Errorf("softmax unstable: %v", sb.F32)
	}
}

func TestSoftmaxSumProperty(t *testing.T) {
	f := func(raw []float32) bool {
		vals := make([]float32, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Softmax(MustFromSlice(vals, len(vals)))
		var sum float64
		for _, v := range s.F32 {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsDiffAndMSE(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{1, 4, 2}, 3)
	d, err := MaxAbsDiff(a, b)
	if err != nil || d != 2 {
		t.Errorf("MaxAbsDiff = %v, %v", d, err)
	}
	mse, err := MeanSquaredError(a, b)
	if err != nil || math.Abs(mse-5.0/3.0) > 1e-9 {
		t.Errorf("MSE = %v, %v", mse, err)
	}
	if _, err := MaxAbsDiff(a, MustFromSlice([]float32{1}, 1)); err == nil {
		t.Error("MaxAbsDiff accepted shape mismatch")
	}
	if _, err := MeanSquaredError(a, MustFromSlice([]float32{1}, 1)); err == nil {
		t.Error("MSE accepted shape mismatch")
	}
}
