//go:build !amd64 || purego || noasm

package tensor

// The portable build has no accelerated element-wise kernels; the
// scalar tails in elementwise.go do all the work.

func axpyF32Accel(dst, x []float32, a float32) int             { return 0 }
func axpyStride2F32Accel(dst, x []float32, a float32) int      { return 0 }
func gatherStride2F32Accel(dst, x []float32) int               { return 0 }
func scaleShiftF32Accel(span []float32, s, sh float32) int     { return 0 }
func scaleShiftReluF32Accel(span []float32, s, sh float32) int { return 0 }
func reluF32Accel(span []float32) int                          { return 0 }
