//go:build amd64 && !purego && !noasm

package tensor

import "vedliot/internal/tensor/cpu"

// requantInt8Accel requantizes a 16-aligned prefix of acc with the
// widest vector kernel the tier clamp allows and returns how many
// elements it handled. The kernels need the mantissa in 32 bits and a
// shift below 64 (both true for every real layer-scale ratio;
// NewRequant's robustness paths can exceed them), and they honor the
// VEDLIOT_CPU tier clamp like the GEMM dispatch.
func requantInt8Accel(out []int8, acc []int32, r Requant, zp int32) int {
	n := len(acc) &^ 15
	if n == 0 || r.mult >= 1<<31 || r.shift > 63 {
		return 0
	}
	switch best := cpu.Best(); {
	case best >= cpu.TierAVX512:
		requantInt8AVX512(&out[0], &acc[0], n, r.mult, r.round, uint64(r.shift), zp)
	case best >= cpu.TierAVX2:
		requantInt8AVX2(&out[0], &acc[0], n, r.mult, r.round, uint64(r.shift), zp)
	default:
		return 0
	}
	return n
}

// requantInt8AVX2 computes out[i] = sat8(zp + int32((acc[i]*mult +
// round) >> shift)) for i < n; n must be a multiple of 16.
//
//go:noescape
func requantInt8AVX2(out *int8, acc *int32, n int, mult, round int64, shift uint64, zp int32)

// requantInt8AVX512 is the 512-bit variant: native VPSRAQ for the
// 64-bit arithmetic shift and VPMOVSDB for the saturating narrow.
//
//go:noescape
func requantInt8AVX512(out *int8, acc *int32, n int, mult, round int64, shift uint64, zp int32)
