package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ewValues returns a span of n values mixing ordinary magnitudes with
// the edge cases the parity contract covers: NaN, ±Inf, ±0 and
// denormals.
func ewValues(rng *rand.Rand, n int) []float32 {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), 1e-42, -1e-42, math.MaxFloat32,
	}
	out := make([]float32, n)
	for i := range out {
		if rng.Intn(8) == 0 {
			out[i] = specials[rng.Intn(len(specials))]
		} else {
			out[i] = rng.Float32()*4 - 2
		}
	}
	return out
}

// bitsEqual compares bitwise so NaN payloads and -0 are significant.
func bitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				name, i, math.Float32bits(got[i]), got[i],
				math.Float32bits(want[i]), want[i])
		}
	}
}

// TestElementwiseParity checks the accelerated element-wise kernels
// bitwise against their scalar definitions across lengths that cover
// the vector body, the scalar tail, and both empty and sub-vector
// spans.
func TestElementwiseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lengths := []int{0, 1, 7, 15, 16, 17, 31, 32, 48, 63, 64, 100, 257}
	for _, n := range lengths {
		x := ewValues(rng, n)
		base := ewValues(rng, n)
		a := rng.Float32()*2 - 1

		dst := append([]float32(nil), base...)
		want := append([]float32(nil), base...)
		for i := range want {
			want[i] += a * x[i]
		}
		AxpyF32(dst, x, a)
		bitsEqual(t, "AxpyF32", dst, want)

		x2 := ewValues(rng, 2*n+1)
		dst = append([]float32(nil), base...)
		want = append([]float32(nil), base...)
		for i := range want {
			want[i] += a * x2[2*i]
		}
		AxpyStride2F32(dst, x2, a)
		bitsEqual(t, "AxpyStride2F32", dst, want)

		dst = append([]float32(nil), base...)
		for i := range want {
			want[i] = x2[2*i]
		}
		GatherStride2F32(dst, x2)
		bitsEqual(t, "GatherStride2F32", dst, want)

		if n > 0 {
			// Minimal x: 2*n-1 elements — the kernels must not demand the
			// even 2*n-th element.
			dst = append([]float32(nil), base...)
			want = append([]float32(nil), base...)
			for i := range want {
				want[i] += a * x2[2*i]
			}
			AxpyStride2F32(dst, x2[:2*n-1], a)
			bitsEqual(t, "AxpyStride2F32/min-x", dst, want)
		}

		s, sh := rng.Float32()*2-1, rng.Float32()*2-1
		dst = append([]float32(nil), base...)
		want = append([]float32(nil), base...)
		for i, v := range want {
			want[i] = v*s + sh
		}
		ScaleShiftF32(dst, s, sh)
		bitsEqual(t, "ScaleShiftF32", dst, want)

		dst = append([]float32(nil), base...)
		want = append([]float32(nil), base...)
		for i, v := range want {
			v = v*s + sh
			if v < 0 {
				v = 0
			}
			want[i] = v
		}
		ScaleShiftReluF32(dst, s, sh)
		bitsEqual(t, "ScaleShiftReluF32", dst, want)

		dst = append([]float32(nil), base...)
		want = append([]float32(nil), base...)
		for i, v := range want {
			if v < 0 {
				want[i] = 0
			}
		}
		ReluF32(dst)
		bitsEqual(t, "ReluF32", dst, want)
	}
}

// TestAxpyF32LongerX checks that a longer x is clipped to dst's length
// without touching elements past it.
func TestAxpyF32LongerX(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	dst := []float32{10, 20}
	AxpyF32(dst, x, 2)
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("got %v, want [12 24]", dst)
	}
}
