package tensor

import "math"

// Bulk INT8 helpers for the native quantized execution path
// (inference.QuantEngine): slice-level quantize/dequantize used at graph
// entry/exit, and the fixed-point requantization multiplier applied
// between integer layers.

// QuantizeSlice quantizes src into dst element-wise under q. The slices
// must have equal length.
func QuantizeSlice(dst []int8, src []float32, q QuantParams) {
	if q.Scale == 0 {
		z := int8(q.Zero)
		for i := range dst {
			dst[i] = z
		}
		return
	}
	inv := 1 / float64(q.Scale)
	zero := float64(q.Zero)
	for i, v := range src {
		r := math.Round(float64(v)*inv) + zero
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		dst[i] = int8(r)
	}
}

// DequantizeSlice dequantizes src into dst element-wise under q. The
// slices must have equal length.
func DequantizeSlice(dst []float32, src []int8, q QuantParams) {
	s := q.Scale
	z := q.Zero
	for i, c := range src {
		dst[i] = s * float32(int32(c)-z)
	}
}

// Requant is a positive real multiplier in fixed-point form, the
// requantization step between integer layers: Apply(acc) computes
// round(acc * m) using only integer arithmetic, so quantized kernels
// stay float-free and bit-deterministic on the hot path. The classic
// int32-accumulator scheme: m = sIn*sW/sOut is decomposed as
// mult * 2^-shift with mult a 31-bit mantissa.
type Requant struct {
	mult  int64
	shift uint
	round int64
}

// NewRequant builds the fixed-point form of the positive multiplier m.
// Non-positive or non-finite multipliers collapse to the zero requant
// (Apply always returns 0), the safe behavior for dead channels whose
// scale vanished.
func NewRequant(m float64) Requant {
	if m <= 0 || math.IsInf(m, 1) || math.IsNaN(m) {
		return Requant{}
	}
	frac, exp := math.Frexp(m) // m = frac * 2^exp, frac in [0.5, 1)
	mult := int64(math.Round(frac * (1 << 31)))
	if mult == 1<<31 { // rounding carried into the next power of two
		mult >>= 1
		exp++
	}
	shift := 31 - exp
	// Multipliers >= 2^31 would need a negative shift; fold the excess
	// into the mantissa. Layer-scale ratios are O(1), so this is a
	// robustness path, not a hot one.
	for shift < 0 && mult < 1<<62 {
		mult <<= 1
		shift++
	}
	if shift < 0 {
		shift = 0
	}
	r := Requant{mult: mult, shift: uint(shift)}
	if r.shift > 0 {
		r.round = 1 << (r.shift - 1)
	}
	return r
}

// Apply computes round(acc * m) with round-half-up semantics.
func (r Requant) Apply(acc int32) int32 {
	return int32((int64(acc)*r.mult + r.round) >> r.shift)
}

// Fixed exposes the fixed-point decomposition (mult, shift, round) with
// Apply(acc) = (acc*mult + round) >> shift. Alternative execution
// backends (e.g. the RISC-V firmware lowering) use it to reproduce the
// requantization step bit-exactly outside this package.
func (r Requant) Fixed() (mult int64, shift uint, round int64) {
	return r.mult, r.shift, r.round
}

// ClampInt8 saturates v to the INT8 code range.
func ClampInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}
