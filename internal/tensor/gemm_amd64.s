//go:build amd64 && !purego && !noasm

#include "textflag.h"

// Register-blocked GEMM micro-kernels. Every kernel computes one tile
// c[i*ldc+j] = bias[i] + sum_k a[k*MR+i] * b[k*ldb+j] with one
// independent accumulator chain per output element, accumulating in K
// order. The FP32 kernels use separate multiply and add instructions —
// never FMA — so results are bitwise identical to the scalar
// interpreter reference on every tier.

// func gemmF32SSE2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
//
// 6x8 FP32 tile: X0..X11 hold the 6x8 accumulators (two XMM per row),
// X12/X13 the B row, X14 the A broadcast, X15 the product.
TEXT ·gemmF32SSE2(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $2, R8 // B row stride in bytes
	MOVQ k+56(FP), CX
	MOVQ bias_base+64(FP), DX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10 // C row stride in bytes

	// acc[i][*] = bias[i]
	MOVSS 0(DX), X0
	SHUFPS $0, X0, X0
	MOVAPS X0, X1
	MOVSS 4(DX), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MOVSS 8(DX), X4
	SHUFPS $0, X4, X4
	MOVAPS X4, X5
	MOVSS 12(DX), X6
	SHUFPS $0, X6, X6
	MOVAPS X6, X7
	MOVSS 16(DX), X8
	SHUFPS $0, X8, X8
	MOVAPS X8, X9
	MOVSS 20(DX), X10
	SHUFPS $0, X10, X10
	MOVAPS X10, X11

f32sse2_loop:
	TESTQ CX, CX
	JZ    f32sse2_store
	MOVUPS 0(DI), X12
	MOVUPS 16(DI), X13

	MOVSS 0(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X0
	MULPS X13, X14
	ADDPS X14, X1

	MOVSS 4(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X2
	MULPS X13, X14
	ADDPS X14, X3

	MOVSS 8(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X4
	MULPS X13, X14
	ADDPS X14, X5

	MOVSS 12(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X6
	MULPS X13, X14
	ADDPS X14, X7

	MOVSS 16(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X8
	MULPS X13, X14
	ADDPS X14, X9

	MOVSS 20(SI), X14
	SHUFPS $0, X14, X14
	MOVAPS X14, X15
	MULPS X12, X15
	ADDPS X15, X10
	MULPS X13, X14
	ADDPS X14, X11

	ADDQ $24, SI // MR*4 bytes of A
	ADDQ R8, DI
	DECQ CX
	JMP  f32sse2_loop

f32sse2_store:
	MOVUPS X0, 0(R9)
	MOVUPS X1, 16(R9)
	ADDQ   R10, R9
	MOVUPS X2, 0(R9)
	MOVUPS X3, 16(R9)
	ADDQ   R10, R9
	MOVUPS X4, 0(R9)
	MOVUPS X5, 16(R9)
	ADDQ   R10, R9
	MOVUPS X6, 0(R9)
	MOVUPS X7, 16(R9)
	ADDQ   R10, R9
	MOVUPS X8, 0(R9)
	MOVUPS X9, 16(R9)
	ADDQ   R10, R9
	MOVUPS X10, 0(R9)
	MOVUPS X11, 16(R9)
	RET

// func gemmF32AVX2(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
//
// 6x16 FP32 tile: Y0..Y11 accumulators (two YMM per row), Y12/Y13 the
// B row, Y14 the A broadcast, Y15 the product. VMULPS+VADDPS, no FMA.
TEXT ·gemmF32AVX2(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $2, R8
	MOVQ k+56(FP), CX
	MOVQ bias_base+64(FP), DX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10

	VBROADCASTSS 0(DX), Y0
	VMOVAPS      Y0, Y1
	VBROADCASTSS 4(DX), Y2
	VMOVAPS      Y2, Y3
	VBROADCASTSS 8(DX), Y4
	VMOVAPS      Y4, Y5
	VBROADCASTSS 12(DX), Y6
	VMOVAPS      Y6, Y7
	VBROADCASTSS 16(DX), Y8
	VMOVAPS      Y8, Y9
	VBROADCASTSS 20(DX), Y10
	VMOVAPS      Y10, Y11

f32avx2_loop:
	TESTQ CX, CX
	JZ    f32avx2_store
	VMOVUPS 0(DI), Y12
	VMOVUPS 32(DI), Y13
	PREFETCHT0 (DI)(R8*1)
	PREFETCHT0 256(SI)

	VBROADCASTSS 0(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y0, Y0
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y1, Y1

	VBROADCASTSS 4(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y2, Y2
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y3, Y3

	VBROADCASTSS 8(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y4, Y4
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y5, Y5

	VBROADCASTSS 12(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y6, Y6
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y7, Y7

	VBROADCASTSS 16(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y8, Y8
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y9, Y9

	VBROADCASTSS 20(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y10, Y10
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y11, Y11

	ADDQ $24, SI
	ADDQ R8, DI
	DECQ CX
	JMP  f32avx2_loop

f32avx2_store:
	VMOVUPS Y0, 0(R9)
	VMOVUPS Y1, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y2, 0(R9)
	VMOVUPS Y3, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y4, 0(R9)
	VMOVUPS Y5, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y6, 0(R9)
	VMOVUPS Y7, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y8, 0(R9)
	VMOVUPS Y9, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y10, 0(R9)
	VMOVUPS Y11, 32(R9)
	VZEROUPPER
	RET

// func gemmF32AVX2Acc(a []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
//
// K-continuation variant of gemmF32AVX2: the accumulators seed from
// the current C tile instead of bias (bias is ignored), so the
// cache-blocked driver can split K while preserving each element's
// left-to-right add chain. The loop and store bodies are copies of
// gemmF32AVX2 (assembler labels are function-scoped).
TEXT ·gemmF32AVX2Acc(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $2, R8
	MOVQ k+56(FP), CX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10

	MOVQ    R9, R11
	VMOVUPS 0(R11), Y0
	VMOVUPS 32(R11), Y1
	ADDQ    R10, R11
	VMOVUPS 0(R11), Y2
	VMOVUPS 32(R11), Y3
	ADDQ    R10, R11
	VMOVUPS 0(R11), Y4
	VMOVUPS 32(R11), Y5
	ADDQ    R10, R11
	VMOVUPS 0(R11), Y6
	VMOVUPS 32(R11), Y7
	ADDQ    R10, R11
	VMOVUPS 0(R11), Y8
	VMOVUPS 32(R11), Y9
	ADDQ    R10, R11
	VMOVUPS 0(R11), Y10
	VMOVUPS 32(R11), Y11

f32avx2acc_loop:
	TESTQ CX, CX
	JZ    f32avx2acc_store
	VMOVUPS 0(DI), Y12
	VMOVUPS 32(DI), Y13
	PREFETCHT0 (DI)(R8*1)
	PREFETCHT0 256(SI)

	VBROADCASTSS 0(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y0, Y0
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y1, Y1

	VBROADCASTSS 4(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y2, Y2
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y3, Y3

	VBROADCASTSS 8(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y4, Y4
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y5, Y5

	VBROADCASTSS 12(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y6, Y6
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y7, Y7

	VBROADCASTSS 16(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y8, Y8
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y9, Y9

	VBROADCASTSS 20(SI), Y14
	VMULPS       Y12, Y14, Y15
	VADDPS       Y15, Y10, Y10
	VMULPS       Y13, Y14, Y15
	VADDPS       Y15, Y11, Y11

	ADDQ $24, SI
	ADDQ R8, DI
	DECQ CX
	JMP  f32avx2acc_loop

f32avx2acc_store:
	VMOVUPS Y0, 0(R9)
	VMOVUPS Y1, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y2, 0(R9)
	VMOVUPS Y3, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y4, 0(R9)
	VMOVUPS Y5, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y6, 0(R9)
	VMOVUPS Y7, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y8, 0(R9)
	VMOVUPS Y9, 32(R9)
	ADDQ    R10, R9
	VMOVUPS Y10, 0(R9)
	VMOVUPS Y11, 32(R9)
	VZEROUPPER
	RET

// func gemmI16SSE2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
//
// 4x8 quantized tile: X0..X7 hold the 4x8 int32 accumulators, X8/X9
// the B pair row (8 pixels x 2 int16), X10 the broadcast A pair, X11 a
// temp. PMADDWL multiplies adjacent int16 pairs into int32 lanes.
TEXT ·gemmI16SSE2(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $1, R8 // B row stride: int16 elements -> bytes
	MOVQ kPairs+56(FP), CX
	MOVQ bias_base+64(FP), DX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10 // C row stride: int32 elements -> bytes

	MOVL   0(DX), AX
	MOVQ   AX, X0
	PSHUFD $0, X0, X0
	MOVOA  X0, X1
	MOVL   4(DX), AX
	MOVQ   AX, X2
	PSHUFD $0, X2, X2
	MOVOA  X2, X3
	MOVL   8(DX), AX
	MOVQ   AX, X4
	PSHUFD $0, X4, X4
	MOVOA  X4, X5
	MOVL   12(DX), AX
	MOVQ   AX, X6
	PSHUFD $0, X6, X6
	MOVOA  X6, X7

i16sse2_loop:
	TESTQ CX, CX
	JZ    i16sse2_store
	MOVOU 0(DI), X8
	MOVOU 16(DI), X9

	MOVL    0(SI), AX
	MOVQ    AX, X10
	PSHUFD  $0, X10, X10
	MOVOA   X10, X11
	PMADDWL X8, X11
	PADDL   X11, X0
	PMADDWL X9, X10
	PADDL   X10, X1

	MOVL    4(SI), AX
	MOVQ    AX, X10
	PSHUFD  $0, X10, X10
	MOVOA   X10, X11
	PMADDWL X8, X11
	PADDL   X11, X2
	PMADDWL X9, X10
	PADDL   X10, X3

	MOVL    8(SI), AX
	MOVQ    AX, X10
	PSHUFD  $0, X10, X10
	MOVOA   X10, X11
	PMADDWL X8, X11
	PADDL   X11, X4
	PMADDWL X9, X10
	PADDL   X10, X5

	MOVL    12(SI), AX
	MOVQ    AX, X10
	PSHUFD  $0, X10, X10
	MOVOA   X10, X11
	PMADDWL X8, X11
	PADDL   X11, X6
	PMADDWL X9, X10
	PADDL   X10, X7

	ADDQ $16, SI // MR pairs * 4 bytes of A
	ADDQ R8, DI
	DECQ CX
	JMP  i16sse2_loop

i16sse2_store:
	MOVOU X0, 0(R9)
	MOVOU X1, 16(R9)
	ADDQ  R10, R9
	MOVOU X2, 0(R9)
	MOVOU X3, 16(R9)
	ADDQ  R10, R9
	MOVOU X4, 0(R9)
	MOVOU X5, 16(R9)
	ADDQ  R10, R9
	MOVOU X6, 0(R9)
	MOVOU X7, 16(R9)
	RET

// func gemmI16AVX2(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
//
// 4x16 quantized tile: Y0..Y7 accumulators (two YMM of int32 per row),
// Y8/Y9 the B pair row (16 pixels x 2 int16), Y10 the broadcast A
// pair, Y11 the VPMADDWD result.
TEXT ·gemmI16AVX2(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $1, R8
	MOVQ kPairs+56(FP), CX
	MOVQ bias_base+64(FP), DX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10

	VPBROADCASTD 0(DX), Y0
	VMOVDQA      Y0, Y1
	VPBROADCASTD 4(DX), Y2
	VMOVDQA      Y2, Y3
	VPBROADCASTD 8(DX), Y4
	VMOVDQA      Y4, Y5
	VPBROADCASTD 12(DX), Y6
	VMOVDQA      Y6, Y7

i16avx2_loop:
	TESTQ CX, CX
	JZ    i16avx2_store
	VMOVDQU 0(DI), Y8
	VMOVDQU 32(DI), Y9
	PREFETCHT0 (DI)(R8*1)
	PREFETCHT0 256(SI)

	VPBROADCASTD 0(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y1, Y1

	VPBROADCASTD 4(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y2, Y2
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y3, Y3

	VPBROADCASTD 8(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y4, Y4
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y5, Y5

	VPBROADCASTD 12(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y6, Y6
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y7, Y7

	ADDQ $16, SI
	ADDQ R8, DI
	DECQ CX
	JMP  i16avx2_loop

i16avx2_store:
	VMOVDQU Y0, 0(R9)
	VMOVDQU Y1, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y2, 0(R9)
	VMOVDQU Y3, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y4, 0(R9)
	VMOVDQU Y5, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y6, 0(R9)
	VMOVDQU Y7, 32(R9)
	VZEROUPPER
	RET

// func gemmI16AVX2Acc(a []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
//
// K-continuation variant of gemmI16AVX2: accumulators seed from the
// current C tile; bias is ignored. Loop/store bodies are copies of
// gemmI16AVX2.
TEXT ·gemmI16AVX2Acc(SB), NOSPLIT, $0-120
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ ldb+48(FP), R8
	SHLQ $1, R8
	MOVQ kPairs+56(FP), CX
	MOVQ c_base+88(FP), R9
	MOVQ ldc+112(FP), R10
	SHLQ $2, R10

	MOVQ    R9, R11
	VMOVDQU 0(R11), Y0
	VMOVDQU 32(R11), Y1
	ADDQ    R10, R11
	VMOVDQU 0(R11), Y2
	VMOVDQU 32(R11), Y3
	ADDQ    R10, R11
	VMOVDQU 0(R11), Y4
	VMOVDQU 32(R11), Y5
	ADDQ    R10, R11
	VMOVDQU 0(R11), Y6
	VMOVDQU 32(R11), Y7

i16avx2acc_loop:
	TESTQ CX, CX
	JZ    i16avx2acc_store
	VMOVDQU 0(DI), Y8
	VMOVDQU 32(DI), Y9
	PREFETCHT0 (DI)(R8*1)
	PREFETCHT0 256(SI)

	VPBROADCASTD 0(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y1, Y1

	VPBROADCASTD 4(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y2, Y2
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y3, Y3

	VPBROADCASTD 8(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y4, Y4
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y5, Y5

	VPBROADCASTD 12(SI), Y10
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y6, Y6
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y7, Y7

	ADDQ $16, SI
	ADDQ R8, DI
	DECQ CX
	JMP  i16avx2acc_loop

i16avx2acc_store:
	VMOVDQU Y0, 0(R9)
	VMOVDQU Y1, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y2, 0(R9)
	VMOVDQU Y3, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y4, 0(R9)
	VMOVDQU Y5, 32(R9)
	ADDQ    R10, R9
	VMOVDQU Y6, 0(R9)
	VMOVDQU Y7, 32(R9)
	VZEROUPPER
	RET
