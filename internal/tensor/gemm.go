package tensor

// Register-blocked packed GEMM micro-kernels.
//
// Both inference compilers lower conv and dense layers onto C = A·B
// with M = output channels, N = output pixels (or batch), K = taps:
// that orientation makes each C tile row a contiguous run of one NCHW
// output plane, so full tiles store straight into the destination.
//
// A (the weights) is packed once at kernel-bind time into column-major
// panels of MR rows; B (the activations) is packed per N-tile at run
// time — for convolutions the im2col gather is fused into that pack,
// so no full patch matrix ever materializes. The micro-kernel computes
// one MR x NR tile with an independent accumulator chain per output
// element.
//
// Parity contract (FP32): each accumulator is initialized with the
// row's bias and then adds one mul per K step, in K order, exactly like
// the scalar interpreter's `acc := bias; acc += x*w` loop. Lanes never
// interact, and the kernels use separate multiply and add instructions
// (never FMA, which would skip an intermediate rounding), so every
// variant — generic, SSE2, AVX2, AVX-512 — produces bitwise-identical
// results. The cache-blocked driver preserves the contract by chaining
// K blocks through RunAcc kernels that seed accumulators from C,
// continuing the same left-to-right add chain.
//
// Parity contract (INT8): operands are int16, accumulation is int32
// and therefore associative, so all variants agree exactly; K is
// processed in sign-extended adjacent pairs to match PMADDWD shape,
// with odd K zero-padded during packing.

import "vedliot/internal/tensor/cpu"

// GemmKernelF32 is one FP32 micro-kernel variant plus the tile
// geometry its packed operands must follow.
type GemmKernelF32 struct {
	// MR and NR are the tile height (rows of A/C) and width (columns
	// of B/C) the kernel computes per call.
	MR, NR int
	// Tier identifies the ISA level the kernel requires.
	Tier cpu.Tier
	// Run computes one MR x NR tile: c[i*ldc+j] = bias[i] +
	// sum_k apanel[k*MR+i] * b[k*ldb+j]. apanel is an A panel packed by
	// PackA; b is either a packed tile (ldb = NR) or, for layers whose
	// natural layout already matches, a row-major window with ldb set
	// to the row stride. bias must hold MR entries and c MR rows of NR
	// values at stride ldc.
	Run func(apanel []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
	// RunAcc is the K-continuation variant used by the cache-blocked
	// driver: identical to Run except the accumulators are seeded from
	// the current contents of c instead of bias (bias is ignored).
	// Seeding from c extends each output element's left-to-right add
	// chain across K blocks, so blocked and unblocked execution are
	// bitwise identical. Nil means the variant has no continuation
	// kernel and the driver must not split K.
	RunAcc func(apanel []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
}

// GemmKernelI16 is one quantized micro-kernel variant. Operands are
// int16 (sign-extended int8 codes and zero-point-shifted activations);
// accumulation is int32. K is consumed in adjacent pairs (PMADDWD
// shape), so packed panels interleave two K values per element.
type GemmKernelI16 struct {
	// MR and NR are the tile height and width in output elements.
	MR, NR int
	// Tier identifies the ISA level the kernel requires.
	Tier cpu.Tier
	// Run computes one MR x NR tile over kPairs K-pairs:
	// c[i*ldc+j] = bias[i] + sum_kp (a0*b0 + a1*b1) where the pair
	// operands come from apanel (PackA layout: kp-major, MR pairs per
	// step) and b (kp-major, NR pairs per step, row stride ldb int16
	// elements; packed tiles use ldb = 2*NR).
	Run func(apanel []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
	// RunAcc seeds the accumulators from c instead of bias (bias is
	// ignored), letting the blocked driver split K across calls. int32
	// accumulation is associative so this is exact by construction; the
	// field exists so blocked and unblocked drivers share one shape.
	// Nil means the driver must not split K for this variant.
	RunAcc func(apanel []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
}

// kernel variant registries: the generic kernels are always present;
// per-arch init functions append the SIMD variants the host supports.
var (
	gemmF32Kernels = []GemmKernelF32{genericGemmF32}
	gemmI16Kernels = []GemmKernelI16{genericGemmI16}
)

// GemmF32Variants returns every FP32 micro-kernel variant compiled
// into this binary that the host can execute, narrowest first. Parity
// tests iterate this list; normal callers use PickGemmF32.
func GemmF32Variants() []GemmKernelF32 {
	out := make([]GemmKernelF32, len(gemmF32Kernels))
	copy(out, gemmF32Kernels)
	return out
}

// GemmI16Variants returns every quantized micro-kernel variant the
// host can execute, narrowest first.
func GemmI16Variants() []GemmKernelI16 {
	out := make([]GemmKernelI16, len(gemmI16Kernels))
	copy(out, gemmI16Kernels)
	return out
}

// PickGemmF32 returns the widest FP32 micro-kernel at or below the
// selected CPU tier (cpu.Best, which honors the VEDLIOT_CPU override).
func PickGemmF32() GemmKernelF32 {
	best := cpu.Best()
	pick := gemmF32Kernels[0]
	for _, k := range gemmF32Kernels[1:] {
		if k.Tier <= best && k.Tier > pick.Tier {
			pick = k
		}
	}
	return pick
}

// PickGemmI16 returns the widest quantized micro-kernel at or below
// the selected CPU tier.
func PickGemmI16() GemmKernelI16 {
	best := cpu.Best()
	pick := gemmI16Kernels[0]
	for _, k := range gemmI16Kernels[1:] {
		if k.Tier <= best && k.Tier > pick.Tier {
			pick = k
		}
	}
	return pick
}

// PickGemmF32MaxWidth returns the widest-tier FP32 kernel whose tile
// width does not exceed maxNR, for problems whose N dimension is
// intrinsically narrow (dense layers, where N is the batch): a
// too-wide tile burns its extra lanes on zero padding, which costs
// more than the wider ISA recovers. Falls back to the narrowest
// available tile when nothing fits.
func PickGemmF32MaxWidth(maxNR int) GemmKernelF32 {
	best := cpu.Best()
	var pick GemmKernelF32
	haveFit := false
	for _, k := range gemmF32Kernels {
		if k.Tier > best {
			continue
		}
		if k.NR <= maxNR {
			if !haveFit || k.Tier > pick.Tier {
				pick, haveFit = k, true
			}
		} else if !haveFit && (pick.Run == nil || k.NR < pick.NR) {
			pick = k
		}
	}
	return pick
}

// PickGemmI16MaxWidth is the quantized analogue of
// PickGemmF32MaxWidth.
func PickGemmI16MaxWidth(maxNR int) GemmKernelI16 {
	best := cpu.Best()
	var pick GemmKernelI16
	haveFit := false
	for _, k := range gemmI16Kernels {
		if k.Tier > best {
			continue
		}
		if k.NR <= maxNR {
			if !haveFit || k.Tier > pick.Tier {
				pick, haveFit = k, true
			}
		} else if !haveFit && (pick.Run == nil || k.NR < pick.NR) {
			pick = k
		}
	}
	return pick
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Cache-blocking thresholds for the Kc/Mc panel loops. Splitting K
// costs real work — every extra block re-reads and re-writes the C
// tile and re-seeds accumulators — so the blocked driver only engages
// once a full NR-wide B column (k rows x NR columns x 4 bytes per K
// step per column, for both element types) overflows a ~1 MiB L2; it
// then blocks K so each B panel occupies about half that. Both numbers
// are perf knobs, never correctness ones, because K blocks are chained
// through RunAcc; measured on the AVX-512 reference host, unblocked
// execution wins below the engage point and blocked wins above it.
const (
	gemmKcEngageBytes = 1 << 20
	gemmKcBudgetBytes = 128 << 10
	gemmMcBudgetBytes = 256 << 10
	gemmKcMin         = 64
)

// gemmBlockK reports whether a K-depth reduction (in K steps) is deep
// enough for the blocked driver to pay off at tile width nr.
func gemmBlockK(nr, k int) bool {
	return k*nr*4 > gemmKcEngageBytes
}

// gemmKBlock returns the K panel depth the blocked driver uses for
// this kernel's tile width, in K steps (elements for FP32, pairs for
// the quantized kernels, which stream 4 bytes of B per pair per
// column).
func gemmKBlock(nr int) int {
	kc := gemmKcBudgetBytes / (4 * nr)
	kc &^= 7
	if kc < gemmKcMin {
		kc = gemmKcMin
	}
	return kc
}

// gemmMBlock returns the M panel height (a multiple of mr) whose
// packed-A K block fits the Mc budget.
func gemmMBlock(mr, kc int) int {
	mc := gemmMcBudgetBytes / (4 * kc)
	mc -= mc % mr
	if mc < mr {
		mc = mr
	}
	return mc
}

// KBlock returns the K panel depth (in K elements) callers that drive
// the kernel tile loop themselves should split a k-deep reduction
// into, or 0 when the reduction is too shallow to benefit or the
// kernel has no RunAcc continuation and K must not be split.
func (g GemmKernelF32) KBlock(k int) int {
	if g.RunAcc == nil || !gemmBlockK(g.NR, k) {
		return 0
	}
	return gemmKBlock(g.NR)
}

// KBlock returns the K panel depth in pairs for a kPairs-deep
// reduction, or 0 when K must not be split.
func (g GemmKernelI16) KBlock(kPairs int) int {
	if g.RunAcc == nil || !gemmBlockK(g.NR, kPairs) {
		return 0
	}
	return gemmKBlock(g.NR)
}

// PackedASize returns the length of the packed-A buffer for an m x k
// weight matrix: rows round up to a multiple of MR, zero-padded.
func (g GemmKernelF32) PackedASize(m, k int) int {
	return ceilDiv(m, g.MR) * g.MR * k
}

// PackA packs row-major a (m rows, k columns, row stride lda) into MR
// panels: dst[p*MR*k + kk*MR + i] = a[(p*MR+i)*lda + kk], with rows
// beyond m zero-filled. dst must have PackedASize(m, k) capacity.
func (g GemmKernelF32) PackA(dst []float32, a []float32, lda, m, k int) {
	mr := g.MR
	for p := 0; p < ceilDiv(m, mr); p++ {
		panel := dst[p*mr*k:]
		for kk := 0; kk < k; kk++ {
			for i := 0; i < mr; i++ {
				r := p*mr + i
				if r < m {
					panel[kk*mr+i] = a[r*lda+kk]
				} else {
					panel[kk*mr+i] = 0
				}
			}
		}
	}
}

// PackAF16 packs a row-major FP16 weight matrix (raw binary16 codes)
// into the exact PackA panel layout, without widening: dst[p*MR*k +
// kk*MR + i] = a[(p*MR+i)*lda + kk], rows beyond m zero-filled. The
// FP16-compute engine keeps weights resident in this half-width form
// and widens panels to FP32 transiently (F16ToF32 into call scratch)
// on load, so the widened panel is bitwise identical to packing the
// dequantized matrix with PackA.
func (g GemmKernelF32) PackAF16(dst []uint16, a []uint16, lda, m, k int) {
	mr := g.MR
	for p := 0; p < ceilDiv(m, mr); p++ {
		panel := dst[p*mr*k:]
		for kk := 0; kk < k; kk++ {
			for i := 0; i < mr; i++ {
				r := p*mr + i
				if r < m {
					panel[kk*mr+i] = a[r*lda+kk]
				} else {
					panel[kk*mr+i] = 0
				}
			}
		}
	}
}

// PackBias returns bias padded with zeros to a multiple of MR, so the
// kernel can always initialize a full tile of accumulators.
func (g GemmKernelF32) PackBias(bias []float32, m int) []float32 {
	out := make([]float32, ceilDiv(m, g.MR)*g.MR)
	copy(out, bias[:m])
	return out
}

// PackBTile packs an NR-wide tile of row-major b (k rows, row stride
// ldb) starting at column j0 into dst (kk-major, NR per step), zero-
// padding columns past n. dst needs k*NR elements.
func (g GemmKernelF32) PackBTile(dst []float32, b []float32, ldb, k, n, j0 int) {
	nr := g.NR
	w := n - j0
	if w > nr {
		w = nr
	}
	for kk := 0; kk < k; kk++ {
		row := b[kk*ldb+j0:]
		out := dst[kk*nr : kk*nr+nr]
		copy(out[:w], row[:w])
		for j := w; j < nr; j++ {
			out[j] = 0
		}
	}
}

// Compute runs the full GEMM c[i*ldc+j] = bias[i] + sum_k a[i][k] *
// b[k*ldb+j] for i < m, j < n, with apack a PackA-packed weight matrix
// and bias already padded (PackBias). bpack (k*NR) and ctile (MR*NR)
// are scratch; nil means allocate. Partial tiles compute into ctile
// and copy only the valid region, so c is never written out of range.
func (g GemmKernelF32) Compute(m, n, k int, apack, bias []float32, b []float32, ldb int, c []float32, ldc int, bpack, ctile []float32) {
	if k == 0 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			bi := bias[i]
			for j := range row {
				row[j] = bi
			}
		}
		return
	}
	mr, nr := g.MR, g.NR
	if bpack == nil {
		bpack = make([]float32, k*nr)
	}
	if ctile == nil {
		ctile = make([]float32, mr*nr)
	}
	if g.RunAcc != nil && gemmBlockK(nr, k) {
		g.computeBlocked(m, n, k, gemmKBlock(nr), apack, bias, b, ldb, c, ldc, bpack, ctile)
		return
	}
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		var bt []float32
		bldb := ldb
		if jw < nr {
			g.PackBTile(bpack, b, ldb, k, n, j0)
			bt, bldb = bpack, nr
		} else {
			jw = nr
			bt = b[j0:]
		}
		for p := 0; p*mr < m; p++ {
			ap := apack[p*mr*k : (p+1)*mr*k]
			bp := bias[p*mr : (p+1)*mr]
			ih := m - p*mr
			if ih >= mr && jw == nr {
				g.Run(ap, bt, bldb, k, bp, c[p*mr*ldc+j0:], ldc)
				continue
			}
			g.Run(ap, bt, bldb, k, bp, ctile, nr)
			if ih > mr {
				ih = mr
			}
			for i := 0; i < ih; i++ {
				copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
			}
		}
	}
}

// computeBlocked is the Kc/Mc-blocked GEMM driver used when K is deep
// enough that a full B column overflows L2: Mc-high row bands, then NR
// tiles, then K blocks chained through RunAcc so each strided B panel
// stays L2-resident for a whole band of A panels. Bitwise identical to
// the unblocked path — the first K block runs the bias kernel and
// every later block seeds its accumulators from C, continuing the same
// per-element add chain. Partial-M panels keep the accumulator tile
// live in ctile across K blocks and copy out once; the ragged tail
// column (if n is not a tile multiple) runs unblocked with a single
// full-K B pack, since re-packing it per K block would cost more than
// the locality it buys.
func (g GemmKernelF32) computeBlocked(m, n, k, kc int, apack, bias []float32, b []float32, ldb int, c []float32, ldc int, bpack, ctile []float32) {
	mr, nr := g.MR, g.NR
	mc := gemmMBlock(mr, kc)
	nFull := n - n%nr
	for i0 := 0; i0 < m; i0 += mc {
		iend := i0 + mc
		if iend > m {
			iend = m
		}
		for j0 := 0; j0 < nFull; j0 += nr {
			for p := i0 / mr; p*mr < iend; p++ {
				ih := m - p*mr
				bp := bias[p*mr : (p+1)*mr]
				for k0 := 0; k0 < k; k0 += kc {
					kcur := k - k0
					if kcur > kc {
						kcur = kc
					}
					ap := apack[p*mr*k+k0*mr : p*mr*k+(k0+kcur)*mr]
					run := g.Run
					if k0 > 0 {
						run = g.RunAcc
					}
					if ih >= mr {
						run(ap, b[k0*ldb+j0:], ldb, kcur, bp, c[p*mr*ldc+j0:], ldc)
					} else {
						run(ap, b[k0*ldb+j0:], ldb, kcur, bp, ctile, nr)
					}
				}
				if ih < mr {
					for i := 0; i < ih; i++ {
						copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+nr], ctile[i*nr:i*nr+nr])
					}
				}
			}
		}
	}
	if nFull == n {
		return
	}
	j0, jw := nFull, n-nFull
	g.PackBTile(bpack[:k*nr], b, ldb, k, n, j0)
	for p := 0; p*mr < m; p++ {
		ap := apack[p*mr*k : (p+1)*mr*k]
		bp := bias[p*mr : (p+1)*mr]
		g.Run(ap, bpack, nr, k, bp, ctile, nr)
		ih := m - p*mr
		if ih > mr {
			ih = mr
		}
		for i := 0; i < ih; i++ {
			copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
		}
	}
}

// KPairs returns the number of K pairs the quantized kernels consume
// for a K-deep reduction (odd K is zero-padded during packing).
func KPairs(k int) int { return (k + 1) / 2 }

// PackedASize returns the length of the packed-A buffer for an m x k
// int16 weight matrix: rows round up to MR, K rounds up to a pair.
func (g GemmKernelI16) PackedASize(m, k int) int {
	return ceilDiv(m, g.MR) * g.MR * 2 * KPairs(k)
}

// PackA packs row-major a (m rows, k columns, row stride lda) into MR
// panels with adjacent K values interleaved per row:
// dst[p*MR*2*kp + kp*MR*2 + i*2 + s] = a[(p*MR+i)*lda + 2*kp+s], with
// rows beyond m and the odd-K tail zero-filled.
func (g GemmKernelI16) PackA(dst []int16, a []int16, lda, m, k int) {
	mr := g.MR
	kp := KPairs(k)
	for p := 0; p < ceilDiv(m, mr); p++ {
		panel := dst[p*mr*2*kp:]
		for pair := 0; pair < kp; pair++ {
			for i := 0; i < mr; i++ {
				r := p*mr + i
				var v0, v1 int16
				if r < m {
					v0 = a[r*lda+2*pair]
					if 2*pair+1 < k {
						v1 = a[r*lda+2*pair+1]
					}
				}
				panel[pair*mr*2+i*2] = v0
				panel[pair*mr*2+i*2+1] = v1
			}
		}
	}
}

// PackBias returns bias padded with zeros to a multiple of MR.
func (g GemmKernelI16) PackBias(bias []int32, m int) []int32 {
	out := make([]int32, ceilDiv(m, g.MR)*g.MR)
	copy(out, bias[:m])
	return out
}

// PackBTile packs an NR-wide tile of row-major b (k rows, row stride
// ldb) starting at column j0 into dst with adjacent K values
// interleaved per column: dst[pair*NR*2 + j*2 + s] = b[(2*pair+s)*ldb
// + j0+j], zero-padding columns past n and the odd-K tail. dst needs
// KPairs(k)*NR*2 elements.
func (g GemmKernelI16) PackBTile(dst []int16, b []int16, ldb, k, n, j0 int) {
	nr := g.NR
	kp := KPairs(k)
	w := n - j0
	if w > nr {
		w = nr
	}
	for pair := 0; pair < kp; pair++ {
		out := dst[pair*nr*2 : (pair+1)*nr*2]
		r0 := b[2*pair*ldb+j0:]
		var r1 []int16
		if 2*pair+1 < k {
			r1 = b[(2*pair+1)*ldb+j0:]
		}
		for j := 0; j < w; j++ {
			out[j*2] = r0[j]
			if r1 != nil {
				out[j*2+1] = r1[j]
			} else {
				out[j*2+1] = 0
			}
		}
		for j := w; j < nr; j++ {
			out[j*2] = 0
			out[j*2+1] = 0
		}
	}
}

// Compute runs the full quantized GEMM c[i*ldc+j] = bias[i] +
// sum_k a[i][k]*b[k*ldb+j] with apack a PackA-packed weight matrix and
// bias padded (PackBias). bpack (KPairs(k)*NR*2) and ctile (MR*NR) are
// scratch; nil means allocate.
func (g GemmKernelI16) Compute(m, n, k int, apack []int16, bias []int32, b []int16, ldb int, c []int32, ldc int, bpack []int16, ctile []int32) {
	mr, nr := g.MR, g.NR
	kp := KPairs(k)
	if bpack == nil {
		bpack = make([]int16, kp*nr*2)
	}
	if ctile == nil {
		ctile = make([]int32, mr*nr)
	}
	if g.RunAcc != nil && gemmBlockK(nr, kp) {
		g.computeBlocked(m, n, k, gemmKBlock(nr), apack, bias, b, ldb, c, ldc, bpack, ctile)
		return
	}
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		if jw > nr {
			jw = nr
		}
		g.PackBTile(bpack, b, ldb, k, n, j0)
		for p := 0; p*mr < m; p++ {
			ap := apack[p*mr*2*kp : (p+1)*mr*2*kp]
			bp := bias[p*mr : (p+1)*mr]
			ih := m - p*mr
			if ih >= mr && jw == nr {
				g.Run(ap, bpack, 2*nr, kp, bp, c[p*mr*ldc+j0:], ldc)
				continue
			}
			g.Run(ap, bpack, 2*nr, kp, bp, ctile, nr)
			if ih > mr {
				ih = mr
			}
			for i := 0; i < ih; i++ {
				copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
			}
		}
	}
}

// computeBlocked is the quantized Kc/Mc-blocked driver (kcp is the K
// block in pairs). Exact by construction — int32 accumulation is
// associative — but it still chains K blocks through RunAcc so both
// element types share one driver shape. B tiles must always be
// pair-interleaved, so each (column, K block) tile is packed once and
// reused across the band's panels by ordering K blocks outside the
// panel loop; the engage threshold (>=4096 pairs at NR 32) means this
// path only fires for reductions far beyond the current model zoo.
func (g GemmKernelI16) computeBlocked(m, n, k, kcp int, apack []int16, bias []int32, b []int16, ldb int, c []int32, ldc int, bpack []int16, ctile []int32) {
	mr, nr := g.MR, g.NR
	kp := KPairs(k)
	mc := gemmMBlock(mr, kcp)
	// ctile must stay live per panel across K blocks, so K blocks sit
	// inside the panel loop; to still pack each B block once per column
	// rather than once per panel, the packed blocks are laid out
	// side-by-side in bpack (callers size it for all kp pairs).
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		if jw > nr {
			jw = nr
		}
		for kp0 := 0; kp0 < kp; kp0 += kcp {
			kpcur := kp - kp0
			if kpcur > kcp {
				kpcur = kcp
			}
			kelems := k - 2*kp0
			if kelems > 2*kpcur {
				kelems = 2 * kpcur
			}
			g.PackBTile(bpack[kp0*nr*2:kp0*nr*2+kpcur*nr*2], b[2*kp0*ldb:], ldb, kelems, n, j0)
		}
		for i0 := 0; i0 < m; i0 += mc {
			iend := i0 + mc
			if iend > m {
				iend = m
			}
			for p := i0 / mr; p*mr < iend; p++ {
				ih := m - p*mr
				full := ih >= mr && jw == nr
				bp := bias[p*mr : (p+1)*mr]
				for kp0 := 0; kp0 < kp; kp0 += kcp {
					kpcur := kp - kp0
					if kpcur > kcp {
						kpcur = kcp
					}
					ap := apack[p*mr*2*kp+kp0*mr*2 : p*mr*2*kp+(kp0+kpcur)*mr*2]
					run := g.Run
					if kp0 > 0 {
						run = g.RunAcc
					}
					bt := bpack[kp0*nr*2:]
					if full {
						run(ap, bt, 2*nr, kpcur, bp, c[p*mr*ldc+j0:], ldc)
					} else {
						run(ap, bt, 2*nr, kpcur, bp, ctile, nr)
					}
				}
				if !full {
					if ih > mr {
						ih = mr
					}
					for i := 0; i < ih; i++ {
						copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
					}
				}
			}
		}
	}
}
