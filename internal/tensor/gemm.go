package tensor

// Register-blocked packed GEMM micro-kernels.
//
// Both inference compilers lower conv and dense layers onto C = A·B
// with M = output channels, N = output pixels (or batch), K = taps:
// that orientation makes each C tile row a contiguous run of one NCHW
// output plane, so full tiles store straight into the destination.
//
// A (the weights) is packed once at kernel-bind time into column-major
// panels of MR rows; B (the activations) is packed per N-tile at run
// time — for convolutions the im2col gather is fused into that pack,
// so no full patch matrix ever materializes. The micro-kernel computes
// one MR x NR tile with an independent accumulator chain per output
// element.
//
// Parity contract (FP32): each accumulator is initialized with the
// row's bias and then adds one mul per K step, in K order, exactly like
// the scalar interpreter's `acc := bias; acc += x*w` loop. Lanes never
// interact, and the kernels use separate multiply and add instructions
// (never FMA, which would skip an intermediate rounding), so every
// variant — generic, SSE2, AVX2 — produces bitwise-identical results.
//
// Parity contract (INT8): operands are int16, accumulation is int32
// and therefore associative, so all variants agree exactly; K is
// processed in sign-extended adjacent pairs to match PMADDWD shape,
// with odd K zero-padded during packing.

import "vedliot/internal/tensor/cpu"

// GemmKernelF32 is one FP32 micro-kernel variant plus the tile
// geometry its packed operands must follow.
type GemmKernelF32 struct {
	// MR and NR are the tile height (rows of A/C) and width (columns
	// of B/C) the kernel computes per call.
	MR, NR int
	// Tier identifies the ISA level the kernel requires.
	Tier cpu.Tier
	// Run computes one MR x NR tile: c[i*ldc+j] = bias[i] +
	// sum_k apanel[k*MR+i] * b[k*ldb+j]. apanel is an A panel packed by
	// PackA; b is either a packed tile (ldb = NR) or, for layers whose
	// natural layout already matches, a row-major window with ldb set
	// to the row stride. bias must hold MR entries and c MR rows of NR
	// values at stride ldc.
	Run func(apanel []float32, b []float32, ldb, k int, bias []float32, c []float32, ldc int)
}

// GemmKernelI16 is one quantized micro-kernel variant. Operands are
// int16 (sign-extended int8 codes and zero-point-shifted activations);
// accumulation is int32. K is consumed in adjacent pairs (PMADDWD
// shape), so packed panels interleave two K values per element.
type GemmKernelI16 struct {
	// MR and NR are the tile height and width in output elements.
	MR, NR int
	// Tier identifies the ISA level the kernel requires.
	Tier cpu.Tier
	// Run computes one MR x NR tile over kPairs K-pairs:
	// c[i*ldc+j] = bias[i] + sum_kp (a0*b0 + a1*b1) where the pair
	// operands come from apanel (PackA layout: kp-major, MR pairs per
	// step) and b (kp-major, NR pairs per step, row stride ldb int16
	// elements; packed tiles use ldb = 2*NR).
	Run func(apanel []int16, b []int16, ldb, kPairs int, bias []int32, c []int32, ldc int)
}

// kernel variant registries: the generic kernels are always present;
// per-arch init functions append the SIMD variants the host supports.
var (
	gemmF32Kernels = []GemmKernelF32{genericGemmF32}
	gemmI16Kernels = []GemmKernelI16{genericGemmI16}
)

// GemmF32Variants returns every FP32 micro-kernel variant compiled
// into this binary that the host can execute, narrowest first. Parity
// tests iterate this list; normal callers use PickGemmF32.
func GemmF32Variants() []GemmKernelF32 {
	out := make([]GemmKernelF32, len(gemmF32Kernels))
	copy(out, gemmF32Kernels)
	return out
}

// GemmI16Variants returns every quantized micro-kernel variant the
// host can execute, narrowest first.
func GemmI16Variants() []GemmKernelI16 {
	out := make([]GemmKernelI16, len(gemmI16Kernels))
	copy(out, gemmI16Kernels)
	return out
}

// PickGemmF32 returns the widest FP32 micro-kernel at or below the
// selected CPU tier (cpu.Best, which honors the VEDLIOT_CPU override).
func PickGemmF32() GemmKernelF32 {
	best := cpu.Best()
	pick := gemmF32Kernels[0]
	for _, k := range gemmF32Kernels[1:] {
		if k.Tier <= best && k.Tier > pick.Tier {
			pick = k
		}
	}
	return pick
}

// PickGemmI16 returns the widest quantized micro-kernel at or below
// the selected CPU tier.
func PickGemmI16() GemmKernelI16 {
	best := cpu.Best()
	pick := gemmI16Kernels[0]
	for _, k := range gemmI16Kernels[1:] {
		if k.Tier <= best && k.Tier > pick.Tier {
			pick = k
		}
	}
	return pick
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PackedASize returns the length of the packed-A buffer for an m x k
// weight matrix: rows round up to a multiple of MR, zero-padded.
func (g GemmKernelF32) PackedASize(m, k int) int {
	return ceilDiv(m, g.MR) * g.MR * k
}

// PackA packs row-major a (m rows, k columns, row stride lda) into MR
// panels: dst[p*MR*k + kk*MR + i] = a[(p*MR+i)*lda + kk], with rows
// beyond m zero-filled. dst must have PackedASize(m, k) capacity.
func (g GemmKernelF32) PackA(dst []float32, a []float32, lda, m, k int) {
	mr := g.MR
	for p := 0; p < ceilDiv(m, mr); p++ {
		panel := dst[p*mr*k:]
		for kk := 0; kk < k; kk++ {
			for i := 0; i < mr; i++ {
				r := p*mr + i
				if r < m {
					panel[kk*mr+i] = a[r*lda+kk]
				} else {
					panel[kk*mr+i] = 0
				}
			}
		}
	}
}

// PackBias returns bias padded with zeros to a multiple of MR, so the
// kernel can always initialize a full tile of accumulators.
func (g GemmKernelF32) PackBias(bias []float32, m int) []float32 {
	out := make([]float32, ceilDiv(m, g.MR)*g.MR)
	copy(out, bias[:m])
	return out
}

// PackBTile packs an NR-wide tile of row-major b (k rows, row stride
// ldb) starting at column j0 into dst (kk-major, NR per step), zero-
// padding columns past n. dst needs k*NR elements.
func (g GemmKernelF32) PackBTile(dst []float32, b []float32, ldb, k, n, j0 int) {
	nr := g.NR
	w := n - j0
	if w > nr {
		w = nr
	}
	for kk := 0; kk < k; kk++ {
		row := b[kk*ldb+j0:]
		out := dst[kk*nr : kk*nr+nr]
		copy(out[:w], row[:w])
		for j := w; j < nr; j++ {
			out[j] = 0
		}
	}
}

// Compute runs the full GEMM c[i*ldc+j] = bias[i] + sum_k a[i][k] *
// b[k*ldb+j] for i < m, j < n, with apack a PackA-packed weight matrix
// and bias already padded (PackBias). bpack (k*NR) and ctile (MR*NR)
// are scratch; nil means allocate. Partial tiles compute into ctile
// and copy only the valid region, so c is never written out of range.
func (g GemmKernelF32) Compute(m, n, k int, apack, bias []float32, b []float32, ldb int, c []float32, ldc int, bpack, ctile []float32) {
	if k == 0 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			bi := bias[i]
			for j := range row {
				row[j] = bi
			}
		}
		return
	}
	mr, nr := g.MR, g.NR
	if bpack == nil {
		bpack = make([]float32, k*nr)
	}
	if ctile == nil {
		ctile = make([]float32, mr*nr)
	}
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		var bt []float32
		bldb := ldb
		if jw < nr {
			g.PackBTile(bpack, b, ldb, k, n, j0)
			bt, bldb = bpack, nr
		} else {
			jw = nr
			bt = b[j0:]
		}
		for p := 0; p*mr < m; p++ {
			ap := apack[p*mr*k : (p+1)*mr*k]
			bp := bias[p*mr : (p+1)*mr]
			ih := m - p*mr
			if ih >= mr && jw == nr {
				g.Run(ap, bt, bldb, k, bp, c[p*mr*ldc+j0:], ldc)
				continue
			}
			g.Run(ap, bt, bldb, k, bp, ctile, nr)
			if ih > mr {
				ih = mr
			}
			for i := 0; i < ih; i++ {
				copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
			}
		}
	}
}

// KPairs returns the number of K pairs the quantized kernels consume
// for a K-deep reduction (odd K is zero-padded during packing).
func KPairs(k int) int { return (k + 1) / 2 }

// PackedASize returns the length of the packed-A buffer for an m x k
// int16 weight matrix: rows round up to MR, K rounds up to a pair.
func (g GemmKernelI16) PackedASize(m, k int) int {
	return ceilDiv(m, g.MR) * g.MR * 2 * KPairs(k)
}

// PackA packs row-major a (m rows, k columns, row stride lda) into MR
// panels with adjacent K values interleaved per row:
// dst[p*MR*2*kp + kp*MR*2 + i*2 + s] = a[(p*MR+i)*lda + 2*kp+s], with
// rows beyond m and the odd-K tail zero-filled.
func (g GemmKernelI16) PackA(dst []int16, a []int16, lda, m, k int) {
	mr := g.MR
	kp := KPairs(k)
	for p := 0; p < ceilDiv(m, mr); p++ {
		panel := dst[p*mr*2*kp:]
		for pair := 0; pair < kp; pair++ {
			for i := 0; i < mr; i++ {
				r := p*mr + i
				var v0, v1 int16
				if r < m {
					v0 = a[r*lda+2*pair]
					if 2*pair+1 < k {
						v1 = a[r*lda+2*pair+1]
					}
				}
				panel[pair*mr*2+i*2] = v0
				panel[pair*mr*2+i*2+1] = v1
			}
		}
	}
}

// PackBias returns bias padded with zeros to a multiple of MR.
func (g GemmKernelI16) PackBias(bias []int32, m int) []int32 {
	out := make([]int32, ceilDiv(m, g.MR)*g.MR)
	copy(out, bias[:m])
	return out
}

// PackBTile packs an NR-wide tile of row-major b (k rows, row stride
// ldb) starting at column j0 into dst with adjacent K values
// interleaved per column: dst[pair*NR*2 + j*2 + s] = b[(2*pair+s)*ldb
// + j0+j], zero-padding columns past n and the odd-K tail. dst needs
// KPairs(k)*NR*2 elements.
func (g GemmKernelI16) PackBTile(dst []int16, b []int16, ldb, k, n, j0 int) {
	nr := g.NR
	kp := KPairs(k)
	w := n - j0
	if w > nr {
		w = nr
	}
	for pair := 0; pair < kp; pair++ {
		out := dst[pair*nr*2 : (pair+1)*nr*2]
		r0 := b[2*pair*ldb+j0:]
		var r1 []int16
		if 2*pair+1 < k {
			r1 = b[(2*pair+1)*ldb+j0:]
		}
		for j := 0; j < w; j++ {
			out[j*2] = r0[j]
			if r1 != nil {
				out[j*2+1] = r1[j]
			} else {
				out[j*2+1] = 0
			}
		}
		for j := w; j < nr; j++ {
			out[j*2] = 0
			out[j*2+1] = 0
		}
	}
}

// Compute runs the full quantized GEMM c[i*ldc+j] = bias[i] +
// sum_k a[i][k]*b[k*ldb+j] with apack a PackA-packed weight matrix and
// bias padded (PackBias). bpack (KPairs(k)*NR*2) and ctile (MR*NR) are
// scratch; nil means allocate.
func (g GemmKernelI16) Compute(m, n, k int, apack []int16, bias []int32, b []int16, ldb int, c []int32, ldc int, bpack []int16, ctile []int32) {
	mr, nr := g.MR, g.NR
	kp := KPairs(k)
	if bpack == nil {
		bpack = make([]int16, kp*nr*2)
	}
	if ctile == nil {
		ctile = make([]int32, mr*nr)
	}
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		if jw > nr {
			jw = nr
		}
		g.PackBTile(bpack, b, ldb, k, n, j0)
		for p := 0; p*mr < m; p++ {
			ap := apack[p*mr*2*kp : (p+1)*mr*2*kp]
			bp := bias[p*mr : (p+1)*mr]
			ih := m - p*mr
			if ih >= mr && jw == nr {
				g.Run(ap, bpack, 2*nr, kp, bp, c[p*mr*ldc+j0:], ldc)
				continue
			}
			g.Run(ap, bpack, 2*nr, kp, bp, ctile, nr)
			if ih > mr {
				ih = mr
			}
			for i := 0; i < ih; i++ {
				copy(c[(p*mr+i)*ldc+j0:(p*mr+i)*ldc+j0+jw], ctile[i*nr:i*nr+jw])
			}
		}
	}
}
