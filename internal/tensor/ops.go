package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise in FP32. Shapes must match exactly.
func Add(a, b *Tensor) (*Tensor, error) {
	return zipFP32(a, b, func(x, y float32) float32 { return x + y })
}

// Sub returns a - b elementwise in FP32.
func Sub(a, b *Tensor) (*Tensor, error) {
	return zipFP32(a, b, func(x, y float32) float32 { return x - y })
}

// Mul returns a * b elementwise in FP32.
func Mul(a, b *Tensor) (*Tensor, error) {
	return zipFP32(a, b, func(x, y float32) float32 { return x * y })
}

func zipFP32(a, b *Tensor, f func(x, y float32) float32) (*Tensor, error) {
	if !a.Shape.Equal(b.Shape) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, a.Shape, b.Shape)
	}
	av, bv := a.Float32s(), b.Float32s()
	out := New(FP32, a.Shape...)
	for i := range av {
		out.F32[i] = f(av[i], bv[i])
	}
	return out, nil
}

// Scale multiplies every element by k, returning a new FP32 tensor.
func Scale(a *Tensor, k float32) *Tensor {
	av := a.Float32s()
	out := New(FP32, a.Shape...)
	for i, v := range av {
		out.F32[i] = v * k
	}
	return out
}

// MatMul multiplies an (m×k) by a (k×n) FP32 matrix.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("%w: MatMul wants rank-2, got %v and %v", ErrShape, a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: inner dims %d vs %d", ErrShape, k, k2)
	}
	av, bv := a.Float32s(), b.Float32s()
	out := New(FP32, m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			x := av[i*k+p]
			if x == 0 {
				continue
			}
			row := bv[p*n : (p+1)*n]
			dst := out.F32[i*n : (i+1)*n]
			for j, y := range row {
				dst[j] += x * y
			}
		}
	}
	return out, nil
}

// Dot returns the inner product of two equal-length rank-1 tensors.
func Dot(a, b *Tensor) (float32, error) {
	if len(a.Shape) != 1 || len(b.Shape) != 1 || a.Shape[0] != b.Shape[0] {
		return 0, fmt.Errorf("%w: Dot wants equal rank-1, got %v and %v", ErrShape, a.Shape, b.Shape)
	}
	av, bv := a.Float32s(), b.Float32s()
	var s float32
	for i := range av {
		s += av[i] * bv[i]
	}
	return s, nil
}

// ArgMax returns the index of the largest element in a flattened tensor.
func ArgMax(t *Tensor) int {
	vals := t.Float32s()
	if len(vals) == 0 {
		return -1
	}
	best, bi := vals[0], 0
	for i, v := range vals[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Softmax returns the softmax of a rank-1 tensor (numerically stable).
func Softmax(t *Tensor) *Tensor {
	vals := t.Float32s()
	out := New(FP32, t.Shape...)
	if len(vals) == 0 {
		return out
	}
	maxV := vals[0]
	for _, v := range vals[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range vals {
		e := math.Exp(float64(v - maxV))
		out.F32[i] = float32(e)
		sum += e
	}
	for i := range out.F32 {
		out.F32[i] = float32(float64(out.F32[i]) / sum)
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped tensors; used to compare precision variants.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if !a.Shape.Equal(b.Shape) {
		return 0, fmt.Errorf("%w: %v vs %v", ErrShape, a.Shape, b.Shape)
	}
	av, bv := a.Float32s(), b.Float32s()
	var m float64
	for i := range av {
		d := math.Abs(float64(av[i] - bv[i]))
		if math.IsNaN(d) {
			// A NaN on either side is an infinite divergence, not a
			// silently ignored one (NaN comparisons are always false).
			return math.Inf(1), nil
		}
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MeanSquaredError returns the MSE between two same-shaped tensors.
func MeanSquaredError(a, b *Tensor) (float64, error) {
	if !a.Shape.Equal(b.Shape) {
		return 0, fmt.Errorf("%w: %v vs %v", ErrShape, a.Shape, b.Shape)
	}
	av, bv := a.Float32s(), b.Float32s()
	if len(av) == 0 {
		return 0, nil
	}
	var s float64
	for i := range av {
		d := float64(av[i] - bv[i])
		s += d * d
	}
	return s / float64(len(av)), nil
}
