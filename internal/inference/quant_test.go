package inference_test

import (
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// calibInput builds a deterministic pseudo-random input for the graph's
// single input node.
func calibInput(t testing.TB, g *nn.Graph, batch, seed int) map[string]*tensor.Tensor {
	t.Helper()
	in, err := nn.SyntheticInput(g, batch, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func calibrate(t testing.TB, g *nn.Graph) *nn.QuantSchema {
	t.Helper()
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// argmaxRows returns the per-sample argmax of a [N, classes] tensor.
func argmaxRows(t *tensor.Tensor) []int {
	n, f := t.Shape[0], t.Shape[1]
	out := make([]int, n)
	for b := 0; b < n; b++ {
		best := 0
		for i := 1; i < f; i++ {
			if t.F32[b*f+i] > t.F32[b*f+best] {
				best = i
			}
		}
		out[b] = best
	}
	return out
}

// TestQuantEngineParity checks the integer plan against the FP32 engine
// on classifier models: identical top-1 decisions on every probe, and
// raw outputs within quantization tolerance.
func TestQuantEngineParity(t *testing.T) {
	models := map[string]*nn.Graph{
		"lenet":          nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 5}),
		"gesture":        nn.GestureNet(32, 8, nn.BuildOptions{Weights: true, Seed: 9}),
		"mobilenet-edge": nn.MobileNetEdge(32, 10, nn.BuildOptions{Weights: true, Seed: 3}),
	}
	for name, g := range models {
		t.Run(name, func(t *testing.T) {
			if _, err := optimize.Pipeline(g, optimize.StandardPasses(), 0); err != nil {
				t.Fatal(err)
			}
			schema := calibrate(t, g)
			ref, err := inference.Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			q, err := inference.CompileQuantized(g, schema)
			if err != nil {
				t.Fatal(err)
			}
			// Ties below 1% probability mass (or two INT8 output steps)
			// do not count as disagreement: the FP32 reference itself
			// cannot meaningfully separate those classes.
			outQ, _ := schema.Params(g.Outputs[0])
			tieTol := 2 * outQ.Scale
			if tieTol < 0.01 {
				tieTol = 0.01
			}
			agree, probes := 0, 0
			var worst float64
			for seed := 10; seed < 14; seed++ {
				in := calibInput(t, g, 4, seed)
				want, err := ref.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				for _, out := range g.Outputs {
					d, err := tensor.MaxAbsDiff(want[out], got[out])
					if err != nil {
						t.Fatal(err)
					}
					if d > worst {
						worst = d
					}
					w := want[out]
					f := w.Shape[1]
					wa, ga := argmaxRows(want[out]), argmaxRows(got[out])
					for i := range wa {
						probes++
						if wa[i] == ga[i] || w.F32[i*f+wa[i]]-w.F32[i*f+ga[i]] <= tieTol {
							agree++
						}
					}
				}
			}
			// Softmax outputs live in [0,1]; INT8 resolution on the final
			// activations bounds the divergence well under 0.1.
			if worst > 0.1 {
				t.Errorf("quantized output diverges: max |diff| = %g", worst)
			}
			if agree != probes {
				t.Errorf("top-1 agreement %d/%d", agree, probes)
			}
		})
	}
}

// TestQuantEngineDeterministic checks that results are bitwise
// identical across repeated runs and across worker counts — integer
// accumulation is associative, so the parallel split cannot change
// results.
func TestQuantEngineDeterministic(t *testing.T) {
	g := nn.MobileNetEdge(32, 10, nn.BuildOptions{Weights: true, Seed: 3})
	schema := calibrate(t, g)
	q1, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	qN, err := inference.CompileQuantized(g, schema, inference.WithWorkers(8), inference.WithParallelThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	in := calibInput(t, g, 3, 21)
	a, err := q1.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q1.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qN.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range g.Outputs {
		if d, _ := tensor.MaxAbsDiff(a[out], b[out]); d != 0 {
			t.Errorf("repeated run diverged by %g", d)
		}
		if d, _ := tensor.MaxAbsDiff(a[out], c[out]); d != 0 {
			t.Errorf("worker count changed results by %g", d)
		}
	}
}

// TestQuantEngineRunBatch checks fused dispatch: stacked requests split
// back to exactly the per-request Run results.
func TestQuantEngineRunBatch(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 11})
	schema := calibrate(t, g)
	q, err := inference.CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]map[string]*tensor.Tensor, 5)
	for i := range reqs {
		reqs[i] = calibInput(t, g, 1+i%2, 30+i)
	}
	fused, err := q.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		single, err := q.Run(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, out := range g.Outputs {
			if d, _ := tensor.MaxAbsDiff(single[out], fused[i][out]); d != 0 {
				t.Errorf("request %d: fused result differs by %g", i, d)
			}
		}
	}
}

// TestQuantEngineArena checks the ~4x activation-memory reduction: the
// int8 arena holds one byte per element where the FP32 arena holds
// four, over the same liveness plan.
func TestQuantEngineArena(t *testing.T) {
	g := nn.MobileNetEdge(32, 10, nn.BuildOptions{Weights: true, Seed: 3})
	schema := calibrate(t, g)
	ref, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	q, err := inference.CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	fp32Bytes := ref.ArenaFloatsPerSample() * 4
	qBytes := q.ArenaBytesPerSample()
	if qBytes == 0 || fp32Bytes == 0 {
		t.Fatalf("empty arena plan: fp32 %d B, quant %d B", fp32Bytes, qBytes)
	}
	if ratio := float64(fp32Bytes) / float64(qBytes); ratio < 3.5 {
		t.Errorf("activation memory ratio %.2f, want ~4x (fp32 %d B, int8 %d B)", ratio, fp32Bytes, qBytes)
	}
}

// TestQuantizedBackendFallback checks the degradation contract: no or
// partial schema compiles to the FP32 engine via QuantizedBackend, and
// CompileQuantized reports ErrNotQuantizable.
func TestQuantizedBackendFallback(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 5})
	if _, err := inference.CompileQuantized(g, nil); err == nil {
		t.Fatal("nil schema: want ErrNotQuantizable")
	}
	partial := nn.NewQuantSchema(g.Name)
	partial.Set(g.Inputs[0], tensor.QuantParams{Scale: 1})
	if _, err := inference.CompileQuantized(g, partial); err == nil {
		t.Fatal("partial schema: want ErrNotQuantizable")
	}
	exe, err := inference.QuantizedBackend{}.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exe.(*inference.Engine); !ok {
		t.Fatalf("want FP32 engine fallback, got %T", exe)
	}
	schema := calibrate(t, g)
	exe, err = inference.QuantizedBackend{Schema: schema}.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exe.(*inference.QuantEngine); !ok {
		t.Fatalf("want quantized engine, got %T", exe)
	}
}

// TestQuantEngineDuplicateOutput checks that a name listed twice in
// g.Outputs dequantizes correctly (it shares one code buffer, like the
// FP32 engine's shared output tensor).
func TestQuantEngineDuplicateOutput(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 11})
	g.Outputs = append(g.Outputs, g.Outputs[0])
	schema := calibrate(t, g)
	q, err := inference.CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	in := calibInput(t, g, 2, 5)
	out, err := q.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	name := g.Outputs[0]
	sum := float32(0)
	for _, v := range out[name].F32 {
		sum += v
	}
	// Softmax rows sum to ~1 per sample; an all-zero tensor would sum 0.
	if sum < 1 {
		t.Fatalf("duplicated output %q looks zeroed: sum %g", name, sum)
	}
}

// TestQuantEngineFallbackSteps checks that only ops without an integer
// lowering (softmax) run through the FP32 island.
func TestQuantEngineFallbackSteps(t *testing.T) {
	g := nn.MobileNetEdge(32, 10, nn.BuildOptions{Weights: true, Seed: 3})
	schema := calibrate(t, g)
	q, err := inference.CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.FallbackSteps(); got != 1 {
		t.Errorf("fallback steps = %d, want 1 (softmax only)", got)
	}
}
