package inference

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// countingBackend wraps a backend and counts real compiles.
type countingBackend struct {
	inner    Backend
	compiles atomic.Int64
}

func (b *countingBackend) Name() string { return b.inner.Name() }

func (b *countingBackend) Compile(g *nn.Graph, opts ...Option) (Executable, error) {
	b.compiles.Add(1)
	return b.inner.Compile(g, opts...)
}

func TestPlanCacheHitSharesOnePlan(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	c := NewPlanCache()
	b := &countingBackend{inner: CPUBackend{}}

	exe1, hit1, err := c.Compile("k1", b, g)
	if err != nil {
		t.Fatal(err)
	}
	exe2, hit2, err := c.Compile("k1", b, g)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v/%v, want false/true", hit1, hit2)
	}
	if exe1 != exe2 {
		t.Fatal("cache returned distinct executables for one key")
	}
	if n := b.compiles.Load(); n != 1 {
		t.Fatalf("backend compiled %d times, want 1", n)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", st)
	}

	// A different key compiles independently.
	if _, hit, err := c.Compile("k2", b, g); err != nil || hit {
		t.Fatalf("second key: hit=%v err=%v, want fresh compile", hit, err)
	}
	if n := b.compiles.Load(); n != 2 {
		t.Fatalf("backend compiled %d times after second key, want 2", n)
	}
}

// TestPlanCacheHitParity pins the cache-hit contract: the plan served
// from the cache produces bitwise the outputs of a freshly lowered
// plan of the same graph.
func TestPlanCacheHitParity(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	c := NewPlanCache()
	if _, _, err := c.Compile("k", CPUBackend{}, g); err != nil {
		t.Fatal(err)
	}
	cached, hit, err := c.Compile("k", CPUBackend{}, g)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v, want cache hit", hit, err)
	}
	fresh, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := nn.SyntheticInput(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if d, _ := tensor.MaxAbsDiff(w, got[name]); d != 0 {
			t.Fatalf("cached plan output %q differs from fresh plan by %g", name, d)
		}
	}
}

func TestPlanCacheConcurrentMissesCoalesce(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	c := NewPlanCache()
	b := &countingBackend{inner: CPUBackend{}}
	var wg sync.WaitGroup
	exes := make([]Executable, 16)
	for i := range exes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			exe, _, err := c.Compile("k", b, g)
			if err != nil {
				t.Error(err)
				return
			}
			exes[i] = exe
		}(i)
	}
	wg.Wait()
	if n := b.compiles.Load(); n != 1 {
		t.Fatalf("concurrent misses compiled %d times, want 1", n)
	}
	for i := 1; i < len(exes); i++ {
		if exes[i] != exes[0] {
			t.Fatal("concurrent callers received distinct executables")
		}
	}
}

type failingBackend struct{ compiles atomic.Int64 }

func (b *failingBackend) Name() string { return "failing" }

func (b *failingBackend) Compile(*nn.Graph, ...Option) (Executable, error) {
	b.compiles.Add(1)
	return nil, errors.New("boom")
}

func TestPlanCacheCachesFailures(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	c := NewPlanCache()
	b := &failingBackend{}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Compile("k", b, g); err == nil {
			t.Fatal("cache swallowed the compile error")
		}
	}
	if n := b.compiles.Load(); n != 1 {
		t.Fatalf("failing compile ran %d times, want 1 (deterministic failure is cached)", n)
	}
}

func TestPlanCacheRejectsEmptyKey(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	if _, _, err := NewPlanCache().Compile("", CPUBackend{}, g); err == nil {
		t.Fatal("empty key accepted")
	}
}
