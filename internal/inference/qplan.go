package inference

import (
	"errors"
	"fmt"
	"math"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// QuantPlan is the exported description of the native INT8 execution
// plan — the same lowering newQuantEngine binds to host kernels,
// re-expressed as data so alternative backends (the RISC-V firmware
// code generator) can reproduce it instruction for instruction. Every
// constant here (weight codes, folded biases, requantizers, lookup
// tables) is computed by the exact binder helpers the native engine
// uses, so a backend that follows the step semantics below is bit-exact
// with QuantEngine by construction.
//
// The plan describes the subset of ops whose integer semantics are
// simple enough to state as data: conv/depthwise-conv, dense, the
// lookup-table family (activations, recodes, per-channel batch norm),
// max pooling, global average pooling and element-wise add. Ops the
// native engine lowers through more intricate kernels (average pooling,
// mul, concat, upsample) yield ErrPlanUnsupported — describing them
// loosely would silently break the bit-exactness contract. FP32 islands
// (ops with no integer lowering at all, e.g. softmax) are exposed as
// host closures running the identical dequantize→FP32→requantize path
// as the native engine.
type QuantPlan struct {
	// Name is the lowered module's name.
	Name string
	// Values are the plan's activation values; step operands index into
	// this slice.
	Values []QuantValue
	// InputNames/InputVals and OutputNames/OutputVals mirror the
	// module's declared interface, resolved to value indices. An output
	// value that is also an input value passes through (the backend
	// must return the caller's tensor, as QuantEngine.Run does).
	InputNames  []string
	InputVals   []int
	OutputNames []string
	OutputVals  []int
	// Steps execute in order; each reads Ins and writes Out.
	Steps []QuantStep
}

// QuantValue is one plan activation: per-sample shape and the
// calibration schema's affine mapping of its int8 codes.
type QuantValue struct {
	Name  string
	Shape tensor.Shape
	Elems int
	QP    tensor.QuantParams
}

// QuantStep is one plan operation. Exactly one of the kind fields is
// non-nil (Island counts as a kind).
type QuantStep struct {
	// Name is the originating graph node, for diagnostics.
	Name string
	// Op is the originating operator kind.
	Op nn.OpType
	// Out and Ins are value indices into QuantPlan.Values.
	Out int
	Ins []int

	Conv          *PlanConv
	Dense         *PlanDense
	LUT           *PlanLUT
	LUTPerChannel *PlanLUTPerChannel
	MaxPool       *PlanMaxPool
	GlobalAvgPool *PlanGlobalAvgPool
	Add           *PlanAdd
	// Island runs the step host-side through the identical FP32-island
	// path as the native engine (bit-exact by shared code).
	Island IslandFunc
}

// IslandFunc executes one FP32-island step over batch-major int8 code
// buffers, exactly as the native engine's wrapped fallback kernel does.
type IslandFunc func(batch int, dst []int8, srcs [][]int8) error

// ConvGeom is the exported compile-time geometry of one convolution
// (mirrors the internal convGeom).
type ConvGeom struct {
	InC, InH, InW    int
	OutC, OutH, OutW int
	KH, KW           int
	SH, SW           int
	PH, PW           int
	ICPerG, OCPerG   int
}

// PlanConv is an integer convolution: for each output position and
// channel oc,
//
//	acc = Bias[oc] + Σ_taps W[oc,tap] * (x[tap] - ZPIn)
//	code = clamp(ZPOut + Req[oc].Apply(acc))
//	code = Post[oc][code+128]            (when Post != nil)
//
// with out-of-bounds taps contributing zero to the linear term (the
// padding value is real 0, i.e. the code ZPIn). Weight codes are laid
// out [OutC][ICPerG][KH][KW], matching tensor layout NCHW.
type PlanConv struct {
	Geom        ConvGeom
	W           []int8
	Bias        []int32
	Req         []tensor.Requant
	ZPIn, ZPOut int32
	// Post is the fused-epilogue recode per output channel, nil when
	// unfused.
	Post []*[256]int8
}

// PlanDense is an integer fully-connected layer: per output feature o,
//
//	acc = Bias[o] + Σ_i W[o,i] * (x[i] - ZPIn)
//	code = clamp(ZPOut + Req[o].Apply(acc)); then Post like PlanConv.
//
// W is [OutF][InF].
type PlanDense struct {
	InF, OutF   int
	W           []int8
	Bias        []int32
	Req         []tensor.Requant
	ZPIn, ZPOut int32
	Post        []*[256]int8
}

// PlanLUT is an element-wise code table: dst[i] = Table[src[i]+128]. A
// nil Table means the mappings agree and the step is a plain copy
// (flatten/identity under equal quantization).
type PlanLUT struct {
	Table *[256]int8
}

// PlanLUTPerChannel applies one code table per channel over NCHW planes
// (the batch-norm lowering): dst in plane (c) is Tables[c][src+128].
type PlanLUTPerChannel struct {
	C, HW  int
	Tables []*[256]int8
}

// PlanMaxPool is the code-domain window max (the affine map is
// monotone): windows with no in-bounds tap produce Empty, and the
// result recodes through Recode when the output mapping differs.
type PlanMaxPool struct {
	C, InH, InW int
	OutH, OutW  int
	KH, KW      int
	SH, SW      int
	PH, PW      int
	Empty       int8
	Recode      *[256]int8
}

// PlanGlobalAvgPool averages each NCHW plane:
//
//	code = clamp(ZPOut + Req.Apply(Σ x - HW*ZPIn))
type PlanGlobalAvgPool struct {
	C, HW       int
	Req         tensor.Requant
	ZPIn, ZPOut int32
}

// PlanAdd is element-wise addition through per-operand int32 tables:
//
//	dst[i] = clamp(ZPOut + Σ_op Tables[op][src_op[i]+128])
//
// Broadcast operands are not describable (ErrPlanUnsupported).
type PlanAdd struct {
	Tables []*[256]int32
	ZPOut  int32
}

// ErrPlanUnsupported reports an op the data-level plan cannot describe
// bit-exactly; the caller should fall back to the native engine rather
// than approximate.
var ErrPlanUnsupported = errors.New("inference: op not describable as a quant plan step")

// BuildQuantPlan lowers a graph under the calibration schema through
// the shared pipeline (identical to CompileQuantized) and re-expresses
// the resulting integer plan as data. Returns ErrNotQuantizable when
// the schema does not cover the graph, and ErrPlanUnsupported (wrapped,
// with the op identity) when the module contains an op the plan cannot
// describe bit-exactly.
func BuildQuantPlan(g *nn.Graph, schema *nn.QuantSchema) (*QuantPlan, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil quant schema", ErrNotQuantizable)
	}
	m, _, err := Lower(g, schema, false)
	if err != nil {
		if errors.Is(err, ir.ErrSchemaGap) {
			return nil, fmt.Errorf("%w: %v", ErrNotQuantizable, err)
		}
		return nil, err
	}
	sc := buildScaffold(m)
	p := &QuantPlan{
		Name:        m.Name,
		InputNames:  sc.inputNames,
		InputVals:   sc.inputVals,
		OutputNames: sc.outputNames,
		OutputVals:  sc.outputVals,
	}
	qp := make([]tensor.QuantParams, len(sc.vals))
	for id, ev := range sc.valOf {
		if ev >= 0 {
			qp[ev] = m.Values[id].QP
		}
	}
	p.Values = make([]QuantValue, len(sc.vals))
	for i, v := range sc.vals {
		p.Values[i] = QuantValue{Name: v.name, Shape: v.per, Elems: v.elems, QP: qp[i]}
	}
	for _, op := range m.Ops {
		if op.Kind == nn.OpInput {
			continue
		}
		ins, inPer := opOperands(&sc, op)
		inQ := make([]tensor.QuantParams, len(ins))
		for i, in := range ins {
			inQ[i] = qp[in]
		}
		out := sc.valOf[op.Out]
		outPer := sc.vals[out].per
		step := QuantStep{Name: op.Name, Op: op.Kind, Out: out, Ins: ins}
		if op.Island {
			island, ierr := buildIslandFunc(op, inPer, outPer, inQ, qp[out])
			if ierr != nil {
				return nil, compileError(op, true, ierr)
			}
			step.Island = island
			p.Steps = append(p.Steps, step)
			continue
		}
		// The producer requantizes to its own (pre-epilogue) mapping; a
		// fused chain recodes from there through the composed per-channel
		// tables — exactly as newQuantEngine binds it.
		outQ := qp[out]
		post, perr := buildEpilogueLUTs(m, op, channelCount(outPer))
		if perr != nil {
			return nil, compileError(op, true, perr)
		}
		if post != nil {
			outQ = m.Values[op.Fused[0].Pre].QP
		}
		n := nodeFromOp(op)
		if serr := describeStep(&step, n, inPer, outPer, inQ, outQ, qp[out], post); serr != nil {
			if errors.Is(serr, errNoQuantKernel) {
				// No integer lowering: run host-side, the same wrapper path
				// as the native engine. A fused op must never reach this.
				if len(op.Fused) > 0 {
					return nil, compileError(op, true, fmt.Errorf("fused op has no integer lowering"))
				}
				island, ierr := buildIslandFunc(op, inPer, outPer, inQ, qp[out])
				if ierr != nil {
					return nil, compileError(op, true, ierr)
				}
				step = QuantStep{Name: op.Name, Op: op.Kind, Out: out, Ins: ins, Island: island}
			} else {
				return nil, compileError(op, true, serr)
			}
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

// describeStep fills in the data form of one non-island op, mirroring
// bindQuantKernel's dispatch. finalQ is the step output's schema
// mapping (used by table steps); outQ is the producer's requantization
// target (pre-epilogue when post != nil).
func describeStep(step *QuantStep, n *nn.Node, inPer []tensor.Shape, outPer tensor.Shape,
	inQ []tensor.QuantParams, outQ, finalQ tensor.QuantParams, post []*[256]int8) error {
	if post != nil {
		switch n.Op {
		case nn.OpConv, nn.OpDepthwiseConv, nn.OpDense:
		default:
			// The native engine only fuses epilogues into conv/dense/
			// batch-norm; batch-norm composes post into its own tables
			// below, anything else with a fused chain is out of scope.
			if n.Op != nn.OpBatchNorm {
				return fmt.Errorf("%w: fused %s", ErrPlanUnsupported, n.Op)
			}
		}
	}
	switch n.Op {
	case nn.OpConv, nn.OpDepthwiseConv:
		g, w, err := convGeometry(n, inPer[0], outPer)
		if err != nil {
			return err
		}
		codes, wScales := quantizeFilter(w, g.outC)
		bias32, req := foldBias(n.Weight(nn.BiasKey), wScales, inQ[0], outQ)
		step.Conv = &PlanConv{
			Geom: ConvGeom{
				InC: g.inC, InH: g.inH, InW: g.inW,
				OutC: g.outC, OutH: g.outH, OutW: g.outW,
				KH: g.kh, KW: g.kw, SH: g.sh, SW: g.sw, PH: g.ph, PW: g.pw,
				ICPerG: g.icPerG, OCPerG: g.ocPerG,
			},
			W: codes, Bias: bias32, Req: req,
			ZPIn: inQ[0].Zero, ZPOut: outQ.Zero, Post: post,
		}
		return nil
	case nn.OpDense:
		if len(inPer[0]) != 1 {
			return fmt.Errorf("dense wants [N,features], got per-sample %v", inPer[0])
		}
		w := n.Weight(nn.WeightKey)
		if w == nil {
			return fmt.Errorf("dense has no weights")
		}
		inF, outF := inPer[0][0], outPer[0]
		want := tensor.Shape{outF, inF}
		if !w.Shape.Equal(want) {
			return fmt.Errorf("weight shape %v, want %v", w.Shape, want)
		}
		codes, wScales := quantizeFilter(w, outF)
		bias32, req := foldBias(n.Weight(nn.BiasKey), wScales, inQ[0], outQ)
		step.Dense = &PlanDense{
			InF: inF, OutF: outF, W: codes, Bias: bias32, Req: req,
			ZPIn: inQ[0].Zero, ZPOut: outQ.Zero, Post: post,
		}
		return nil
	case nn.OpBatchNorm:
		if len(inPer[0]) != 3 {
			return fmt.Errorf("batchnorm wants NCHW, got per-sample %v", inPer[0])
		}
		c := inPer[0][0]
		scale, shift, err := bnScaleShift(n, c)
		if err != nil {
			return err
		}
		if len(scale) != c {
			return fmt.Errorf("batchnorm has %d folded channels for %d channels", len(scale), c)
		}
		luts := make([]*[256]int8, c)
		for ch := 0; ch < c; ch++ {
			s, sh := scale[ch], shift[ch]
			lut := buildLUT(inQ[0], outQ, func(x float32) float32 { return x*s + sh })
			if post != nil {
				for i, code := range lut {
					lut[i] = post[ch][int(code)+128]
				}
			}
			luts[ch] = lut
		}
		step.LUTPerChannel = &PlanLUTPerChannel{C: c, HW: inPer[0][1] * inPer[0][2], Tables: luts}
		return nil
	case nn.OpReLU, nn.OpReLU6, nn.OpLeakyReLU, nn.OpSigmoid, nn.OpTanh,
		nn.OpHSwish, nn.OpHSigmoid, nn.OpMish:
		f, _, err := activationFn(n)
		if err != nil {
			return err
		}
		step.LUT = &PlanLUT{Table: buildLUT(inQ[0], finalQ, f)}
		return nil
	case nn.OpFlatten, nn.OpIdentity:
		step.LUT = &PlanLUT{}
		if !sameQuant(inQ[0], finalQ) {
			step.LUT.Table = buildLUT(inQ[0], finalQ, func(x float32) float32 { return x })
		}
		return nil
	case nn.OpMaxPool:
		if len(inPer[0]) != 3 {
			return fmt.Errorf("pool wants NCHW, got per-sample %v", inPer[0])
		}
		a := n.Attrs
		mp := &PlanMaxPool{
			C: inPer[0][0], InH: inPer[0][1], InW: inPer[0][2],
			OutH: outPer[1], OutW: outPer[2],
			KH: a.KernelH, KW: a.KernelW, SH: a.StrideH, SW: a.StrideW,
			PH: a.PadH, PW: a.PadW,
			Empty: inQ[0].Quantize(0),
		}
		if !sameQuant(inQ[0], finalQ) {
			mp.Recode = buildLUT(inQ[0], finalQ, func(x float32) float32 { return x })
		}
		step.MaxPool = mp
		return nil
	case nn.OpGlobalAvgPool:
		if len(inPer[0]) != 3 {
			return fmt.Errorf("global pool wants NCHW, got per-sample %v", inPer[0])
		}
		c, hw := inPer[0][0], inPer[0][1]*inPer[0][2]
		step.GlobalAvgPool = &PlanGlobalAvgPool{
			C: c, HW: hw,
			Req:  tensor.NewRequant(float64(inQ[0].Scale) / (float64(finalQ.Scale) * float64(hw))),
			ZPIn: inQ[0].Zero, ZPOut: finalQ.Zero,
		}
		return nil
	case nn.OpAdd:
		broadcast, err := classifyBroadcast(inPer, outPer)
		if err != nil {
			return err
		}
		for _, b := range broadcast {
			if b {
				return fmt.Errorf("%w: broadcast add", ErrPlanUnsupported)
			}
		}
		add := &PlanAdd{ZPOut: finalQ.Zero, Tables: make([]*[256]int32, len(inQ))}
		for op := range inQ {
			add.Tables[op] = buildAddLUT(inQ[op], finalQ)
		}
		step.Add = add
		return nil
	case nn.OpSoftmax:
		return errNoQuantKernel
	case nn.OpMul:
		if len(inPer) != 2 {
			return errNoQuantKernel
		}
		return fmt.Errorf("%w: %s", ErrPlanUnsupported, n.Op)
	case nn.OpAvgPool, nn.OpConcat, nn.OpUpsample:
		return fmt.Errorf("%w: %s", ErrPlanUnsupported, n.Op)
	default:
		return errNoQuantKernel
	}
}

// buildAddLUT tabulates one add operand's rescaled int32 contribution,
// exactly as bindQuantAdd does.
func buildAddLUT(inQ, outQ tensor.QuantParams) *[256]int32 {
	var lut [256]int32
	s, zp := float64(inQ.Scale), inQ.Zero
	sOut := float64(outQ.Scale)
	for c := -128; c <= 127; c++ {
		lut[c+128] = int32(math.Round(s * float64(int32(c)-zp) / sOut))
	}
	return &lut
}

// buildIslandFunc wraps an op's FP32 kernel in the identical
// dequantize→FP32→requantize island path the native engine binds, with
// a private single-worker context so execution is deterministic and
// independent of any engine instance. Bitwise parity with QuantEngine
// holds because the engine's kernels are bitwise-identical at any
// worker count.
func buildIslandFunc(op *ir.Op, inPer []tensor.Shape, outPer tensor.Shape,
	inQ []tensor.QuantParams, outQ tensor.QuantParams) (IslandFunc, error) {
	n := nodeFromOp(op)
	fk, fkSpec, err := bindKernel(n, inPer, outPer, nil, false, nil)
	if err != nil {
		return nil, err
	}
	qfn, wrapSpec := wrapFP32Fallback(fk, inPer, outPer, inQ, outQ)
	spec := fkSpec
	spec.grow(wrapSpec)
	return func(batch int, dst []int8, srcs [][]int8) error {
		var sb scratchBufs
		sb.ensure(spec, batch, 1)
		rc := runCtx{batch: batch, workers: 1, threshold: 1 << 62, spec: spec, scratch: &sb}
		return qfn(&rc, dst, srcs)
	}, nil
}
