package inference

import (
	"fmt"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// parityTol is the engine-vs-interpreter tolerance for the example
// topologies; in practice the divergence is exactly zero because the
// engine preserves per-element accumulation order.
const parityTol = 1e-5

// exampleGraphs builds every topology the examples/ programs
// instantiate (quickstart, smartmirror, arcdetect, motorcondition,
// paeb), with materialized weights and — where an example uses a
// survey-scale configuration — reduced input sizes so the test stays
// fast. The paeb example models offload of a YoloV4-class detector; its
// stand-in here is a miniature CSP/PANet-style detector exercising the
// same operator patterns (Mish/LeakyReLU, SPP max-pool stack, concat,
// upsample, multi-scale heads) at test scale.
func exampleGraphs() []*nn.Graph {
	return []*nn.Graph{
		// examples/quickstart
		nn.GestureNet(64, 8, nn.BuildOptions{Weights: true, Seed: 1}),
		// examples/smartmirror (Fig. 5 pipeline stages)
		nn.FaceDetectNet(96, nn.BuildOptions{Weights: true, Seed: 2}),
		nn.FaceEmbedNet(64, 128, nn.BuildOptions{Weights: true, Seed: 3}),
		nn.SpeechNet(100, 26, 29, nn.BuildOptions{Weights: true, Seed: 4}),
		// examples/arcdetect
		nn.ArcNet(256, nn.BuildOptions{Weights: true, Seed: 5}),
		// examples/motorcondition
		nn.MotorNet(128, 5, nn.BuildOptions{Weights: true, Seed: 6}),
		nn.MLP("motor-clf", []int{128, 64, 5}, nn.BuildOptions{Weights: true, Seed: 7}),
		// examples/paeb (YoloV4-class topology at test scale)
		miniYolo(64, 4),
	}
}

// miniYolo builds a compact YoloV4-shaped detector: a Mish backbone
// with two downsampling stages, an SPP-style pooling stack, and two
// detection heads joined through upsample + concat — the operator mix
// of nn.YoloV4 without its 64M survey-scale parameters.
func miniYolo(inputSize, numClasses int) *nn.Graph {
	b := nn.NewBuilder("mini-yolo", nn.BuildOptions{Weights: true, Seed: 8})
	headC := 3 * (5 + numClasses)
	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 8, 3, 1, 1, nn.OpMish)
	x = b.ConvBNAct(x, 8, 16, 3, 2, 1, nn.OpMish)
	route := b.ConvBNAct(x, 16, 16, 3, 1, 1, nn.OpMish) // stride-2 feature
	x = b.ConvBNAct(route, 16, 32, 3, 2, 1, nn.OpMish)  // stride-4 feature
	// SPP: parallel max-pools concatenated.
	p1 := b.MaxPool(x, 5, 1, 2)
	p2 := b.MaxPool(x, 9, 1, 4)
	x = b.Concat(p1, p2, x)
	x = b.ConvBNAct(x, 96, 32, 1, 1, 0, nn.OpLeakyReLU)
	// Coarse head.
	h2 := b.Conv(x, 32, headC, 1, 1, 0)
	// Fine head via top-down path.
	up := b.ConvBNAct(x, 32, 16, 1, 1, 0, nn.OpLeakyReLU)
	up = b.Upsample(up, 2)
	fine := b.Concat(b.ConvBNAct(route, 16, 16, 1, 1, 0, nn.OpLeakyReLU), up)
	fine = b.ConvBNAct(fine, 32, 16, 3, 1, 1, nn.OpLeakyReLU)
	h1 := b.Conv(fine, 16, headC, 1, 1, 0)
	return b.Graph(h1, h2)
}

// withPrecision returns a deep copy of g whose weights are stored at
// the given precision. The engine pre-dequantizes at compile time; the
// interpreter dequantizes on the fly — both must agree.
func withPrecision(g *nn.Graph, dt tensor.DType) *nn.Graph {
	if dt == tensor.FP32 {
		return g
	}
	c := g.Clone()
	for _, n := range c.Nodes {
		for key, w := range n.Weights {
			n.SetWeight(key, w.Convert(dt))
		}
	}
	return c
}

// TestEngineParityOnExampleGraphs compiles every example topology at
// FP32, FP16 and INT8 weight precision and checks Engine.Run against
// the legacy interpreter within parityTol.
func TestEngineParityOnExampleGraphs(t *testing.T) {
	for _, base := range exampleGraphs() {
		for _, dt := range []tensor.DType{tensor.FP32, tensor.FP16, tensor.INT8} {
			t.Run(fmt.Sprintf("%s/%s", base.Name, dt), func(t *testing.T) {
				g := withPrecision(base, dt)
				eng, err := Compile(g)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				it, err := NewInterpreter(g)
				if err != nil {
					t.Fatalf("interpreter: %v", err)
				}
				inNode := g.Node(g.Inputs[0])
				in := tensor.New(tensor.FP32, append(tensor.Shape{2}, inNode.Attrs.Shape...)...)
				fillInput(in, int(dt)+1)
				inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
				want, err := it.Run(inputs)
				if err != nil {
					t.Fatalf("interpreter run: %v", err)
				}
				got, err := eng.Run(inputs)
				if err != nil {
					t.Fatalf("engine run: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("engine produced %d outputs, interpreter %d", len(got), len(want))
				}
				for name, w := range want {
					d, err := tensor.MaxAbsDiff(w, got[name])
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if d > parityTol {
						t.Errorf("output %s diverges by %g (tol %g)", name, d, parityTol)
					}
				}
			})
		}
	}
}
