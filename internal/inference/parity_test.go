package inference

import (
	"fmt"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// parityTol is the engine-vs-interpreter tolerance for the example
// topologies; in practice the divergence is exactly zero because the
// engine preserves per-element accumulation order.
const parityTol = 1e-5

// exampleGraphs builds every topology the examples/ programs
// instantiate (quickstart, smartmirror, arcdetect, motorcondition,
// paeb), with materialized weights and — where an example uses a
// survey-scale configuration — reduced input sizes so the test stays
// fast. The paeb example models offload of a YoloV4-class detector; its
// stand-in here is a miniature CSP/PANet-style detector exercising the
// same operator patterns (Mish/LeakyReLU, SPP max-pool stack, concat,
// upsample, multi-scale heads) at test scale.
func exampleGraphs() []*nn.Graph {
	return []*nn.Graph{
		// examples/quickstart
		nn.GestureNet(64, 8, nn.BuildOptions{Weights: true, Seed: 1}),
		// examples/smartmirror (Fig. 5 pipeline stages)
		nn.FaceDetectNet(96, nn.BuildOptions{Weights: true, Seed: 2}),
		nn.FaceEmbedNet(64, 128, nn.BuildOptions{Weights: true, Seed: 3}),
		nn.SpeechNet(100, 26, 29, nn.BuildOptions{Weights: true, Seed: 4}),
		// examples/arcdetect
		nn.ArcNet(256, nn.BuildOptions{Weights: true, Seed: 5}),
		// examples/motorcondition
		nn.MotorNet(128, 5, nn.BuildOptions{Weights: true, Seed: 6}),
		nn.MLP("motor-clf", []int{128, 64, 5}, nn.BuildOptions{Weights: true, Seed: 7}),
		// examples/paeb (YoloV4-class topology at test scale)
		miniYolo(64, 4),
	}
}

// miniYolo builds a compact YoloV4-shaped detector: a Mish backbone
// with two downsampling stages, an SPP-style pooling stack, and two
// detection heads joined through upsample + concat — the operator mix
// of nn.YoloV4 without its 64M survey-scale parameters.
func miniYolo(inputSize, numClasses int) *nn.Graph {
	b := nn.NewBuilder("mini-yolo", nn.BuildOptions{Weights: true, Seed: 8})
	headC := 3 * (5 + numClasses)
	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 8, 3, 1, 1, nn.OpMish)
	x = b.ConvBNAct(x, 8, 16, 3, 2, 1, nn.OpMish)
	route := b.ConvBNAct(x, 16, 16, 3, 1, 1, nn.OpMish) // stride-2 feature
	x = b.ConvBNAct(route, 16, 32, 3, 2, 1, nn.OpMish)  // stride-4 feature
	// SPP: parallel max-pools concatenated.
	p1 := b.MaxPool(x, 5, 1, 2)
	p2 := b.MaxPool(x, 9, 1, 4)
	x = b.Concat(p1, p2, x)
	x = b.ConvBNAct(x, 96, 32, 1, 1, 0, nn.OpLeakyReLU)
	// Coarse head.
	h2 := b.Conv(x, 32, headC, 1, 1, 0)
	// Fine head via top-down path.
	up := b.ConvBNAct(x, 32, 16, 1, 1, 0, nn.OpLeakyReLU)
	up = b.Upsample(up, 2)
	fine := b.Concat(b.ConvBNAct(route, 16, 16, 1, 1, 0, nn.OpLeakyReLU), up)
	fine = b.ConvBNAct(fine, 32, 16, 3, 1, 1, nn.OpLeakyReLU)
	h1 := b.Conv(fine, 16, headC, 1, 1, 0)
	return b.Graph(h1, h2)
}

// withPrecision returns a deep copy of g whose weights are stored at
// the given precision. The engine pre-dequantizes at compile time; the
// interpreter dequantizes on the fly — both must agree.
func withPrecision(g *nn.Graph, dt tensor.DType) *nn.Graph {
	if dt == tensor.FP32 {
		return g
	}
	c := g.Clone()
	for _, n := range c.Nodes {
		for key, w := range n.Weights {
			n.SetWeight(key, w.Convert(dt))
		}
	}
	return c
}

// multiHeadNet builds a two-input, three-output graph: two trunks with
// fused conv→BN→act epilogues joined by an add, one head reading the
// shared trunk, plus a head that is itself a fused producer's output
// and an output that is also consumed downstream. This pins the fused
// FP32 path on the shapes the single-head example graphs miss.
func multiHeadNet() *nn.Graph {
	b := nn.NewBuilder("multi-head", nn.BuildOptions{Weights: true, Seed: 21})
	left := b.Input("left", 1, 16, 16)
	right := b.Input("right", 1, 16, 16)
	l := b.ConvBNAct(left, 1, 8, 3, 1, 1, nn.OpReLU)
	r := b.ConvBNAct(right, 1, 8, 3, 1, 1, nn.OpHSwish)
	trunk := b.Add(l, r)
	headA := b.ConvBNAct(trunk, 8, 8, 3, 1, 1, nn.OpReLU)
	headB := b.Conv(trunk, 8, 4, 1, 1, 0)
	// headA is an output AND feeds headC: its value must stay valid.
	headC := b.ConvBNAct(headA, 8, 4, 3, 2, 1, nn.OpReLU6)
	return b.Graph(headA, headB, headC)
}

// islandNet builds a graph with a mid-graph softmax between dense
// layers: in the INT8 plan the softmax is an FP32 island between
// integer steps, and in the FP32 plan the dense producers before and
// after it carry fused activations.
func islandNet() *nn.Graph {
	b := nn.NewBuilder("island", nn.BuildOptions{Weights: true, Seed: 22})
	x := b.Input("input", 12)
	x = b.Dense(x, 12, 16)
	x = b.Act(x, nn.OpReLU)
	x = b.Softmax(x) // mid-graph: island in the INT8 plan
	x = b.Dense(x, 16, 6)
	x = b.Act(x, nn.OpTanh)
	x = b.Dense(x, 6, 4)
	x = b.Softmax(x)
	return b.Graph(x)
}

// TestEngineParityOnExampleGraphs compiles every example topology at
// FP32, FP16 and INT8 weight precision and checks Engine.Run against
// the legacy interpreter within parityTol.
func TestEngineParityOnExampleGraphs(t *testing.T) {
	for _, base := range append(exampleGraphs(), multiHeadNet(), islandNet()) {
		for _, dt := range []tensor.DType{tensor.FP32, tensor.FP16, tensor.INT8} {
			t.Run(fmt.Sprintf("%s/%s", base.Name, dt), func(t *testing.T) {
				g := withPrecision(base, dt)
				eng, err := Compile(g)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				it, err := NewInterpreter(g)
				if err != nil {
					t.Fatalf("interpreter: %v", err)
				}
				inputs := make(map[string]*tensor.Tensor, len(g.Inputs))
				for i, name := range g.Inputs {
					in := tensor.New(tensor.FP32, append(tensor.Shape{2}, g.Node(name).Attrs.Shape...)...)
					fillInput(in, int(dt)+1+i)
					inputs[name] = in
				}
				want, err := it.Run(inputs)
				if err != nil {
					t.Fatalf("interpreter run: %v", err)
				}
				got, err := eng.Run(inputs)
				if err != nil {
					t.Fatalf("engine run: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("engine produced %d outputs, interpreter %d", len(got), len(want))
				}
				for name, w := range want {
					d, err := tensor.MaxAbsDiff(w, got[name])
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if d > parityTol {
						t.Errorf("output %s diverges by %g (tol %g)", name, d, parityTol)
					}
				}
			})
		}
	}
}

// TestEngineRunAllCoversFusedValues checks that RunAll on a fused plan
// still materializes every graph node's activation — including the
// pre-epilogue values fusion eliminates from Run — bitwise equal to the
// interpreter. Calibration depends on this.
func TestEngineRunAllCoversFusedValues(t *testing.T) {
	for _, g := range []*nn.Graph{multiHeadNet(), islandNet()} {
		eng, err := Compile(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		it, err := NewInterpreter(g)
		if err != nil {
			t.Fatal(err)
		}
		inputs := make(map[string]*tensor.Tensor, len(g.Inputs))
		for i, name := range g.Inputs {
			in := tensor.New(tensor.FP32, append(tensor.Shape{2}, g.Node(name).Attrs.Shape...)...)
			fillInput(in, 3+i)
			inputs[name] = in
		}
		want, err := it.RunAll(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunAll(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: RunAll returned %d activations, want %d", g.Name, len(got), len(want))
		}
		for name, w := range want {
			d, err := tensor.MaxAbsDiff(w, got[name])
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, name, err)
			}
			if d != 0 {
				t.Errorf("%s/%s: RunAll diverges by %g", g.Name, name, d)
			}
		}
	}
}

// TestQuantEngineIslandGraph lowers the mid-graph-softmax topology to
// the INT8 plan: both softmax ops must run as FP32 islands, the fused
// dense+activation steps around them stay native, and outputs track the
// FP32 engine within INT8 resolution.
func TestQuantEngineIslandGraph(t *testing.T) {
	g := islandNet()
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := calibrateVia(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	q, err := CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.FallbackSteps(); got != 2 {
		t.Errorf("fallback steps = %d, want 2 (both softmax ops)", got)
	}
	ref, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := nn.SyntheticInput(g, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range g.Outputs {
		d, err := tensor.MaxAbsDiff(want[out], got[out])
		if err != nil {
			t.Fatal(err)
		}
		// The final softmax keeps values in [0,1]; INT8 resolution
		// bounds the divergence well under 0.1.
		if d > 0.1 {
			t.Errorf("output %s diverges by %g", out, d)
		}
	}
}

// calibrateVia derives an activation schema exactly as optimize.
// Calibrate does, without importing optimize (the inference package
// cannot): compile, RunAll per sample, fold per-value ranges into
// affine INT8 mappings.
func calibrateVia(g *nn.Graph, samples []map[string]*tensor.Tensor) (*nn.QuantSchema, error) {
	eng, err := Compile(g)
	if err != nil {
		return nil, err
	}
	ranges := make(map[string][2]float32)
	for _, sample := range samples {
		acts, err := eng.RunAll(sample)
		if err != nil {
			return nil, err
		}
		for name, tt := range acts {
			lo, hi := tt.MinMax()
			r, ok := ranges[name]
			if !ok {
				ranges[name] = [2]float32{lo, hi}
				continue
			}
			if lo < r[0] {
				r[0] = lo
			}
			if hi > r[1] {
				r[1] = hi
			}
			ranges[name] = r
		}
	}
	s := nn.NewQuantSchema(g.Name)
	for name, r := range ranges {
		s.Set(name, tensor.AffineParams(r[0], r[1]))
	}
	return s, nil
}
