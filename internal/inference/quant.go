package inference

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ErrNotQuantizable reports that a graph cannot be lowered to the
// integer plan — no calibration schema, a schema that does not cover
// every value, or a model without materialized weights. Backends treat
// it as the signal to fall back to the FP32 engine.
var ErrNotQuantizable = errors.New("inference: graph not quantizable")

// QuantEngine is the native INT8 execution plan: the same topo-sorted
// step list, liveness-planned arena and bounded worker pool as the FP32
// Engine, but every activation is stored as an int8 code under the
// calibration schema's affine mapping. Inputs are quantized once at
// graph entry, conv/dense run with int32 accumulators and fixed-point
// requantization between layers, element-wise ops run through
// precomputed int8 lookup tables, and values are dequantized only at
// declared outputs. The arena therefore holds one byte per activation
// element instead of four — the ~4x working-set reduction INT8-only
// edge accelerators (EdgeTPU class) get from native quantized execution.
//
// Engines are immutable after CompileQuantized and safe for concurrent
// Run calls: per-call scratch comes from internal pools.
type QuantEngine struct {
	name        string
	inputNames  []string
	inputVals   []int
	outputNames []string
	outputVals  []int
	vals        []value
	qp          []tensor.QuantParams // per value, from the schema
	steps       []qstep
	inPer       []tensor.Shape
	outPer      []tensor.Shape

	// Arena plan: slotOff/slotSize are per-sample int8 element counts;
	// the arena for a batch-N call is arenaPerSample*N bytes.
	slotOff        []int
	slotSize       []int
	arenaPerSample int

	// fallbacks counts steps executed through the dequantize→FP32
	// kernel→requantize wrapper (ops without an integer lowering).
	fallbacks int

	cfg    config
	arenas sync.Pool // *[]int8
	inbufs sync.Pool // *[]int8, entry-quantized inputs
}

// qstep is one bound integer kernel invocation.
type qstep struct {
	name string
	op   nn.OpType
	out  int
	ins  []int
	kern qkernelFunc
}

// qkernelFunc executes one bound operator for a batch over int8 code
// buffers laid out batch-major, mirroring kernelFunc.
type qkernelFunc func(rc *runCtx, dst []int8, srcs [][]int8) error

var _ Executable = (*QuantEngine)(nil)

// QuantizedBackend is the host-CPU backend for the integer plan:
// Compile produces a *QuantEngine under the given calibration schema,
// falling back to the FP32 engine when the graph cannot be lowered
// (ErrNotQuantizable), so callers always get a runnable executable.
type QuantizedBackend struct {
	// Schema is the calibration artifact (optimize.Calibrate or the
	// QuantizeWeights calibration pass).
	Schema *nn.QuantSchema
}

// Name implements Backend.
func (QuantizedBackend) Name() string { return "cpu-engine-int8" }

// Compile implements Backend.
func (b QuantizedBackend) Compile(g *nn.Graph, opts ...Option) (Executable, error) {
	q, err := CompileQuantized(g, b.Schema, opts...)
	if err == nil {
		return q, nil
	}
	if errors.Is(err, ErrNotQuantizable) {
		return Compile(g, opts...)
	}
	return nil, err
}

var _ Backend = QuantizedBackend{}

// Name returns the compiled graph's name.
func (e *QuantEngine) Name() string { return e.name }

// NumSlots returns the number of arena slabs the planner allocated.
func (e *QuantEngine) NumSlots() int { return len(e.slotSize) }

// ArenaBytesPerSample returns the activation arena footprint in bytes
// per batch sample — int8 codes, so one quarter of the FP32 engine's
// ArenaFloatsPerSample()*4 on the same plan.
func (e *QuantEngine) ArenaBytesPerSample() int { return e.arenaPerSample }

// FallbackSteps returns how many plan steps execute through the FP32
// fallback wrapper rather than a native integer kernel.
func (e *QuantEngine) FallbackSteps() int { return e.fallbacks }

// CompileQuantized lowers a graph into the native INT8 execution plan
// under the calibration schema. The pipeline mirrors Compile — one
// topo-sort, static per-sample shape inference, kernel binding and
// liveness-based arena planning — but kernel binding quantizes weights
// to int8 (per output channel, symmetric), folds biases into int32 and
// precomputes the fixed-point requantization multipliers between
// layers. Ops without an integer lowering (softmax) are bound through a
// dequantize→FP32 kernel→requantize wrapper, so coverage is total once
// the schema covers the graph.
//
// Returns ErrNotQuantizable (wrapped) when the schema is nil or does
// not cover every graph value, or when the model has no materialized
// weights; callers that want transparent degradation use
// QuantizedBackend, which falls back to the FP32 engine.
func CompileQuantized(g *nn.Graph, schema *nn.QuantSchema, opts ...Option) (*QuantEngine, error) {
	cfg := config{workers: runtime.GOMAXPROCS(0), threshold: defaultParallelThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.threshold < 0 {
		cfg.threshold = 0
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := schema.Covers(g); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotQuantizable, err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}

	// Static per-sample shapes, with the same snapshot/restore dance as
	// Compile so compilation stays observably side-effect free.
	saved := make([]tensor.Shape, len(g.Nodes))
	for i, n := range g.Nodes {
		saved[i] = n.OutShape
	}
	if err := g.InferShapes(1); err != nil {
		return nil, fmt.Errorf("inference: compile quantized %q: %w", g.Name, err)
	}
	per := make(map[string]tensor.Shape, len(order))
	for _, n := range order {
		per[n.Name] = n.OutShape[1:].Clone()
	}
	for i, n := range g.Nodes {
		n.OutShape = saved[i]
	}

	e := &QuantEngine{name: g.Name, cfg: cfg}
	id := make(map[string]int, len(order))
	for _, n := range order {
		p := per[n.Name]
		e.vals = append(e.vals, value{name: n.Name, per: p, elems: p.NumElements()})
		q, _ := schema.Params(n.Name)
		e.qp = append(e.qp, q)
		id[n.Name] = len(e.vals) - 1
	}
	for _, name := range g.Inputs {
		v := id[name]
		e.vals[v].loc = location{locInput, len(e.inputVals)}
		e.inputNames = append(e.inputNames, name)
		e.inputVals = append(e.inputVals, v)
	}
	for _, name := range g.Outputs {
		v := id[name]
		e.outputNames = append(e.outputNames, name)
		e.outputVals = append(e.outputVals, v)
		if e.vals[v].loc.kind == locUnassigned {
			e.vals[v].loc = location{locOutput, len(e.outputNames) - 1}
		}
	}
	// Activation fusion: a conv/dense whose only consumer is an
	// element-wise activation emits the activation's codes directly —
	// the activation becomes one extra table lookup inside the
	// requantization loop instead of a separate pass over the tensor.
	// The intermediate pre-activation value never materializes.
	consumers := g.Consumers()
	isOutput := make(map[string]bool, len(g.Outputs))
	for _, name := range g.Outputs {
		isOutput[name] = true
	}
	fusedAway := make(map[string]bool)
	for _, n := range order {
		if n.Op == nn.OpInput || fusedAway[n.Name] {
			continue
		}
		ins := make([]int, len(n.Inputs))
		inPer := make([]tensor.Shape, len(n.Inputs))
		inQ := make([]tensor.QuantParams, len(n.Inputs))
		for i, in := range n.Inputs {
			ins[i] = id[in]
			inPer[i] = e.vals[id[in]].per
			inQ[i] = e.qp[id[in]]
		}
		outV := id[n.Name]
		var post *[256]int8
		if fusableProducer(n.Op) && !isOutput[n.Name] {
			if cs := consumers[n.Name]; len(cs) == 1 {
				if act := g.Node(cs[0]); act != nil && !isOutput[n.Name] {
					if f, _, aerr := activationFn(act); aerr == nil {
						// Compose: requantize to the pre-activation
						// mapping, then recode through the activation.
						post = buildLUT(e.qp[outV], e.qp[id[act.Name]], f)
						outV = id[act.Name]
						fusedAway[act.Name] = true
					}
				}
			}
		}
		kern, err := bindQuantKernel(n, inPer, e.vals[outV].per, inQ, e.qp[id[n.Name]], post)
		if errors.Is(err, errNoQuantKernel) {
			// No integer lowering: run the FP32 kernel inside a
			// dequantize/requantize island.
			fk, ferr := bindKernel(n, inPer, e.vals[outV].per)
			if ferr != nil {
				return nil, fmt.Errorf("inference: compile quantized node %q (%s): %w", n.Name, n.Op, ferr)
			}
			kern = wrapFP32Fallback(fk, inPer, e.vals[outV].per, inQ, e.qp[outV])
			e.fallbacks++
			err = nil
		}
		if err != nil {
			return nil, fmt.Errorf("inference: compile quantized node %q (%s): %w", n.Name, n.Op, err)
		}
		e.steps = append(e.steps, qstep{name: n.Name, op: n.Op, out: outV, ins: ins, kern: kern})
	}
	steps := make([]planStep, len(e.steps))
	for i, st := range e.steps {
		steps[i] = planStep{out: st.out, ins: st.ins}
	}
	e.slotOff, e.slotSize, e.arenaPerSample = planArena(e.vals, steps)
	e.inPer, e.outPer = perShapes(e.vals, e.inputVals), perShapes(e.vals, e.outputVals)
	return e, nil
}

func (e *QuantEngine) getBuf(pool *sync.Pool, need int) []int8 {
	if need == 0 {
		return nil
	}
	if p, ok := pool.Get().(*[]int8); ok && cap(*p) >= need {
		return (*p)[:need]
	}
	return make([]int8, need)
}

func putBuf(pool *sync.Pool, buf []int8) {
	if buf != nil {
		pool.Put(&buf)
	}
}

// Run executes the integer plan for one batch of FP32 inputs and
// returns FP32 outputs: quantize at entry, int8 end to end, dequantize
// at exit. Safe for concurrent use.
func (e *QuantEngine) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	inBufs, batch, err := resolveBatchedInputs(e.inputNames, e.inPer, inputs)
	if err != nil {
		return nil, err
	}
	rc := runCtx{batch: batch, workers: e.cfg.workers, threshold: e.cfg.threshold}

	// Quantize every input once at graph entry.
	inElems := 0
	for _, v := range e.inputVals {
		inElems += e.vals[v].elems
	}
	inArena := e.getBuf(&e.inbufs, inElems*batch)
	qin := make([][]int8, len(e.inputVals))
	off := 0
	for i, v := range e.inputVals {
		n := e.vals[v].elems * batch
		buf := inArena[off : off+n]
		off += n
		q := e.qp[v]
		src := inBufs[i]
		rc.parallelFor(n, 8, func(lo, hi int) {
			tensor.QuantizeSlice(buf[lo:hi], src[lo:hi], q)
		})
		qin[i] = buf
	}

	outs8 := make([][]int8, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		if loc.kind == locOutput && loc.idx == i {
			outs8[i] = make([]int8, e.vals[v].elems*batch)
		}
	}
	arena := e.getBuf(&e.arenas, e.arenaPerSample*batch)
	resolve := func(v int) []int8 {
		val := &e.vals[v]
		switch val.loc.kind {
		case locInput:
			return qin[val.loc.idx]
		case locOutput:
			return outs8[val.loc.idx]
		case locSlot:
			off := e.slotOff[val.loc.idx] * batch
			return arena[off : off+val.elems*batch]
		}
		return nil
	}
	srcs := make([][]int8, 0, 4)
	for si := range e.steps {
		st := &e.steps[si]
		srcs = srcs[:0]
		for _, in := range st.ins {
			srcs = append(srcs, resolve(in))
		}
		if err := st.kern(&rc, resolve(st.out), srcs); err != nil {
			putBuf(&e.arenas, arena)
			putBuf(&e.inbufs, inArena)
			return nil, fmt.Errorf("inference: quantized node %q (%s): %w", st.name, st.op, err)
		}
	}

	// Dequantize declared outputs into fresh FP32 tensors. A name
	// listed twice in g.Outputs shares one buffer (loc.idx points at
	// the first occurrence), exactly like the FP32 engine.
	result := make(map[string]*tensor.Tensor, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		switch loc.kind {
		case locOutput:
			if _, done := result[e.outputNames[i]]; done {
				continue
			}
			t := tensor.New(tensor.FP32, append(tensor.Shape{batch}, e.vals[v].per...)...)
			codes := outs8[loc.idx]
			q := e.qp[v]
			rc.parallelFor(len(codes), 4, func(lo, hi int) {
				tensor.DequantizeSlice(t.F32[lo:hi], codes[lo:hi], q)
			})
			result[e.outputNames[i]] = t
		case locInput:
			// A graph output that is an input node passes through
			// unquantized, as in the FP32 engine.
			result[e.outputNames[i]] = inputs[e.outputNames[i]]
		}
	}
	putBuf(&e.arenas, arena)
	putBuf(&e.inbufs, inArena)
	return result, nil
}

// RunSingle is a convenience wrapper for graphs with exactly one input
// and one output.
func (e *QuantEngine) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(e.inputNames) != 1 || len(e.outputNames) != 1 {
		return nil, fmt.Errorf("inference: RunSingle wants 1 input/1 output, graph has %d/%d",
			len(e.inputNames), len(e.outputNames))
	}
	outs, err := e.Run(map[string]*tensor.Tensor{e.inputNames[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[e.outputNames[0]], nil
}

// RunBatch fuses several independent requests into one dispatch of the
// integer plan, through the same stack/split path as the FP32 engine.
func (e *QuantEngine) RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	return fuseRunBatch(e.Run, e.inputNames, e.inPer, e.outputNames, e.outPer, batches)
}
