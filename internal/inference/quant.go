package inference

import (
	"errors"
	"fmt"
	"sync"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ErrNotQuantizable reports that a graph cannot be lowered to the
// integer plan — no calibration schema, a schema that does not cover
// every value, or a model without materialized weights. Backends treat
// it as the signal to fall back to the FP32 engine.
var ErrNotQuantizable = errors.New("inference: graph not quantizable")

// QuantEngine is the native INT8 execution plan: the same topo-sorted
// step list, liveness-planned arena and bounded worker pool as the FP32
// Engine, but every activation is stored as an int8 code under the
// calibration schema's affine mapping. Inputs are quantized once at
// graph entry, conv/dense run with int32 accumulators and fixed-point
// requantization between layers, element-wise ops run through
// precomputed int8 lookup tables, and values are dequantized only at
// declared outputs. The arena therefore holds one byte per activation
// element instead of four — the ~4x working-set reduction INT8-only
// edge accelerators (EdgeTPU class) get from native quantized execution.
//
// Engines are immutable after CompileQuantized and safe for concurrent
// Run calls: per-call scratch comes from internal pools.
type QuantEngine struct {
	name        string
	inputNames  []string
	inputVals   []int
	outputNames []string
	outputVals  []int
	vals        []value
	qp          []tensor.QuantParams // per value, from the schema
	steps       []qstep
	inPer       []tensor.Shape
	outPer      []tensor.Shape

	// Arena plan: slotOff/slotSize are per-sample int8 element counts;
	// the arena for a batch-N call is arenaPerSample*N bytes.
	slotOff        []int
	slotSize       []int
	arenaPerSample int

	// fallbacks counts steps executed through the dequantize→FP32
	// kernel→requantize wrapper (ops without an integer lowering).
	fallbacks int

	// scratch is the element-wise maximum of every bound kernel's
	// transient-buffer spec (GEMM pack tiles, shifted-input staging,
	// island buffers); scratchPool recycles the per-Run allocations.
	scratch     scratchSpec
	scratchPool sync.Pool // *scratchBufs

	cfg    config
	arenas sync.Pool // *[]int8
	inbufs sync.Pool // *[]int8, entry-quantized inputs
}

// qstep is one bound integer kernel invocation.
type qstep struct {
	name string
	op   nn.OpType
	out  int
	ins  []int
	kern qkernelFunc
}

// qkernelFunc executes one bound operator for a batch over int8 code
// buffers laid out batch-major, mirroring kernelFunc.
type qkernelFunc func(rc *runCtx, dst []int8, srcs [][]int8) error

var _ Executable = (*QuantEngine)(nil)

// QuantizedBackend is the host-CPU backend for the integer plan:
// Compile produces a *QuantEngine under the given calibration schema,
// falling back to the FP32 engine when the graph cannot be lowered
// (ErrNotQuantizable), so callers always get a runnable executable.
type QuantizedBackend struct {
	// Schema is the calibration artifact (optimize.Calibrate or the
	// QuantizeWeights calibration pass).
	Schema *nn.QuantSchema
}

// Name implements Backend.
func (QuantizedBackend) Name() string { return "cpu-engine-int8" }

// Compile implements Backend.
func (b QuantizedBackend) Compile(g *nn.Graph, opts ...Option) (Executable, error) {
	q, err := CompileQuantized(g, b.Schema, opts...)
	if err == nil {
		return q, nil
	}
	if errors.Is(err, ErrNotQuantizable) {
		return Compile(g, opts...)
	}
	return nil, err
}

var _ Backend = QuantizedBackend{}

// Name returns the compiled graph's name.
func (e *QuantEngine) Name() string { return e.name }

// NumSlots returns the number of arena slabs the planner allocated.
func (e *QuantEngine) NumSlots() int { return len(e.slotSize) }

// ArenaBytesPerSample returns the activation arena footprint in bytes
// per batch sample — int8 codes, so one quarter of the FP32 engine's
// ArenaFloatsPerSample()*4 on the same plan.
func (e *QuantEngine) ArenaBytesPerSample() int { return e.arenaPerSample }

// FallbackSteps returns how many plan steps execute through the FP32
// fallback wrapper rather than a native integer kernel.
func (e *QuantEngine) FallbackSteps() int { return e.fallbacks }

// CompileQuantized lowers a graph into the native INT8 execution plan
// under the calibration schema, through the same shared lowering
// pipeline as Compile (see Lower and the ir package): one deterministic
// topo-sort, one shape-inference pass, the same rewrites (constant
// folding, identity/dead elimination, CSE, activation fusion) plus
// precision assignment, which stamps every value's INT8 mapping and
// marks ops without an integer lowering as FP32 islands. Kernel binding
// then quantizes weights to int8 (per output channel, symmetric), folds
// biases into int32 and precomputes the fixed-point requantization
// multipliers between layers; islands run through a dequantize→FP32
// kernel→requantize wrapper, so coverage is total once the schema
// covers the lowered module.
//
// Returns ErrNotQuantizable (wrapped) when the schema is nil or does
// not cover every lowered value, or when the model has no materialized
// weights; callers that want transparent degradation use
// QuantizedBackend, which falls back to the FP32 engine.
func CompileQuantized(g *nn.Graph, schema *nn.QuantSchema, opts ...Option) (*QuantEngine, error) {
	cfg := newConfig(opts)
	if schema == nil {
		return nil, fmt.Errorf("%w: nil quant schema", ErrNotQuantizable)
	}
	m, _, err := Lower(g, schema, false)
	if err != nil {
		if errors.Is(err, ir.ErrSchemaGap) {
			return nil, fmt.Errorf("%w: %v", ErrNotQuantizable, err)
		}
		return nil, err
	}
	return newQuantEngine(m, cfg)
}

// newQuantEngine binds a lowered INT8 module to integer kernels and
// plans its (one byte per element) arena.
func newQuantEngine(m *ir.Module, cfg config) (*QuantEngine, error) {
	sc := buildScaffold(m)
	e := &QuantEngine{
		name:        m.Name,
		cfg:         cfg,
		vals:        sc.vals,
		inputNames:  sc.inputNames,
		inputVals:   sc.inputVals,
		outputNames: sc.outputNames,
		outputVals:  sc.outputVals,
	}
	e.qp = make([]tensor.QuantParams, len(e.vals))
	for id, ev := range sc.valOf {
		if ev >= 0 {
			e.qp[ev] = m.Values[id].QP
		}
	}
	for _, op := range m.Ops {
		if op.Kind == nn.OpInput {
			continue
		}
		ins, inPer := opOperands(&sc, op)
		inQ := make([]tensor.QuantParams, len(ins))
		for i, in := range ins {
			inQ[i] = e.qp[in]
		}
		n := nodeFromOp(op)
		out := sc.valOf[op.Out]
		var kern qkernelFunc
		var spec scratchSpec
		var err error
		if !op.Island {
			// The producer requantizes to its own (pre-epilogue)
			// mapping; a fused chain recodes from there through the
			// composed per-channel lookup tables — the same tables the
			// standalone stages would apply one by one.
			outQ := e.qp[out]
			post, perr := buildEpilogueLUTs(m, op, channelCount(e.vals[out].per))
			if perr != nil {
				return nil, compileError(op, true, perr)
			}
			if post != nil {
				outQ = m.Values[op.Fused[0].Pre].QP
			}
			kern, spec, err = bindQuantKernel(n, inPer, e.vals[out].per, inQ, outQ, post)
		}
		if op.Island || errors.Is(err, errNoQuantKernel) {
			// No integer lowering: run the FP32 kernel inside a
			// dequantize/requantize island. A fused op must never reach
			// this path — the bare producer would silently skip its
			// epilogue — so it is a compile error, not a fallback.
			if len(op.Fused) > 0 {
				return nil, compileError(op, true, fmt.Errorf("fused op has no integer lowering"))
			}
			fk, fkSpec, ferr := bindKernel(n, inPer, e.vals[out].per, nil, false, nil)
			if ferr != nil {
				return nil, compileError(op, true, ferr)
			}
			var wrapSpec scratchSpec
			kern, wrapSpec = wrapFP32Fallback(fk, inPer, e.vals[out].per, inQ, e.qp[out])
			spec = fkSpec
			spec.grow(wrapSpec)
			e.fallbacks++
			err = nil
		}
		if err != nil {
			return nil, compileError(op, true, err)
		}
		e.scratch.grow(spec)
		e.steps = append(e.steps, qstep{name: op.Name, op: op.Kind, out: out, ins: ins, kern: kern})
	}
	steps := make([]planStep, len(e.steps))
	for i, st := range e.steps {
		steps[i] = planStep{out: st.out, ins: st.ins}
	}
	e.slotOff, e.slotSize, e.arenaPerSample = planArena(e.vals, steps, locSlot,
		func(*value) bool { return true })
	e.inPer, e.outPer = perShapes(e.vals, e.inputVals), perShapes(e.vals, e.outputVals)
	return e, nil
}

func (e *QuantEngine) getBuf(pool *sync.Pool, need int) []int8 {
	if need == 0 {
		return nil
	}
	if p, ok := pool.Get().(*[]int8); ok && cap(*p) >= need {
		return (*p)[:need]
	}
	return make([]int8, need)
}

func putBuf(pool *sync.Pool, buf []int8) {
	if buf != nil {
		pool.Put(&buf)
	}
}

// Run executes the integer plan for one batch of FP32 inputs and
// returns FP32 outputs: quantize at entry, int8 end to end, dequantize
// at exit. Safe for concurrent use.
func (e *QuantEngine) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	inBufs, batch, err := resolveBatchedInputs(e.inputNames, e.inPer, inputs)
	if err != nil {
		return nil, err
	}
	sb := getScratch(&e.scratchPool, e.scratch, batch, e.cfg.workers)
	defer putScratch(&e.scratchPool, sb)
	rc := runCtx{batch: batch, workers: e.cfg.workers, threshold: e.cfg.threshold, spec: e.scratch, scratch: sb}

	// Quantize every input once at graph entry.
	inElems := 0
	for _, v := range e.inputVals {
		inElems += e.vals[v].elems
	}
	inArena := e.getBuf(&e.inbufs, inElems*batch)
	qin := make([][]int8, len(e.inputVals))
	off := 0
	for i, v := range e.inputVals {
		n := e.vals[v].elems * batch
		buf := inArena[off : off+n]
		off += n
		q := e.qp[v]
		src := inBufs[i]
		rc.parallelFor(n, 8, func(lo, hi int) {
			tensor.QuantizeSlice(buf[lo:hi], src[lo:hi], q)
		})
		qin[i] = buf
	}

	outs8 := make([][]int8, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		if loc.kind == locOutput && loc.idx == i {
			outs8[i] = make([]int8, e.vals[v].elems*batch)
		}
	}
	arena := e.getBuf(&e.arenas, e.arenaPerSample*batch)
	resolve := func(v int) []int8 {
		val := &e.vals[v]
		switch val.loc.kind {
		case locInput:
			return qin[val.loc.idx]
		case locOutput:
			return outs8[val.loc.idx]
		case locSlot:
			off := e.slotOff[val.loc.idx] * batch
			return arena[off : off+val.elems*batch]
		}
		return nil
	}
	srcs := make([][]int8, 0, 4)
	for si := range e.steps {
		st := &e.steps[si]
		srcs = srcs[:0]
		for _, in := range st.ins {
			srcs = append(srcs, resolve(in))
		}
		if err := st.kern(&rc, resolve(st.out), srcs); err != nil {
			putBuf(&e.arenas, arena)
			putBuf(&e.inbufs, inArena)
			return nil, fmt.Errorf("inference: quantized node %q (%s): %w", st.name, st.op, err)
		}
	}

	// Dequantize declared outputs into fresh FP32 tensors. A name
	// listed twice in g.Outputs shares one buffer (loc.idx points at
	// the first occurrence), exactly like the FP32 engine.
	result := make(map[string]*tensor.Tensor, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		switch loc.kind {
		case locOutput:
			if _, done := result[e.outputNames[i]]; done {
				continue
			}
			t := tensor.New(tensor.FP32, append(tensor.Shape{batch}, e.vals[v].per...)...)
			codes := outs8[loc.idx]
			q := e.qp[v]
			rc.parallelFor(len(codes), 4, func(lo, hi int) {
				tensor.DequantizeSlice(t.F32[lo:hi], codes[lo:hi], q)
			})
			result[e.outputNames[i]] = t
		case locInput:
			// A graph output that resolves to an input value passes
			// through unquantized, as in the FP32 engine.
			result[e.outputNames[i]] = inputs[e.inputNames[loc.idx]]
		}
	}
	putBuf(&e.arenas, arena)
	putBuf(&e.inbufs, inArena)
	return result, nil
}

// RunSingle is a convenience wrapper for graphs with exactly one input
// and one output.
func (e *QuantEngine) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(e.inputNames) != 1 || len(e.outputNames) != 1 {
		return nil, fmt.Errorf("inference: RunSingle wants 1 input/1 output, graph has %d/%d",
			len(e.inputNames), len(e.outputNames))
	}
	outs, err := e.Run(map[string]*tensor.Tensor{e.inputNames[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[e.outputNames[0]], nil
}

// RunBatch fuses several independent requests into one dispatch of the
// integer plan, through the same stack/split path as the FP32 engine.
func (e *QuantEngine) RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	return fuseRunBatch(e.Run, e.inputNames, e.inPer, e.outputNames, e.outPer, batches)
}
