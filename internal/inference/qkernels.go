package inference

import (
	"errors"
	"fmt"
	"math"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Quantized-engine kernels.
//
// Binders run once at CompileQuantized: they quantize weights to int8
// (symmetric, per output channel), fold biases into int32 at the
// accumulator scale, precompute the fixed-point requantization
// multipliers between layers, and build 256-entry lookup tables for
// element-wise ops. The returned closures operate on raw int8 code
// buffers under the calibration schema's affine mappings — no float
// arithmetic on the conv/dense hot path. Integer accumulation is
// associative, so the same parallelFor split as the FP32 engine yields
// bitwise-identical results at any worker count.
//
// The int32 accumulator bounds the supported reduction depth: one tap
// contributes at most 127*255 after zero-point correction, so
// reductions up to ~10^5 taps are safe — far beyond any layer in the
// model zoo.

// errNoQuantKernel reports an op without a native integer lowering; the
// compiler wraps the FP32 kernel in a dequantize/requantize island.
// ir's precision-assignment pass predicts this set via hasIntLowering
// and marks such ops as islands up front; the error remains as the
// binder-level ground truth.
var errNoQuantKernel = errors.New("no quantized kernel")

// hasIntLowering reports whether the quantized binder set has a native
// integer kernel for (op, arity) — the predicate the lowering
// pipeline's precision-assignment pass uses to mark FP32 islands. It
// must stay in sync with bindQuantKernel's switch.
func hasIntLowering(op nn.OpType, arity int) bool {
	switch op {
	case nn.OpSoftmax:
		return false
	case nn.OpMul:
		// Two-operand products fit the int32 accumulator; higher arity
		// falls back to the FP32 island.
		return arity == 2
	}
	return true
}

// bindQuantKernel resolves a node to an int8 kernel closure given the
// per-sample shapes and the schema's quantization params of its inputs
// and output. post, when non-nil, is a fused activation recode applied
// inside the producer's requantization loop (conv/dense) or composed
// into the per-channel tables (batch-norm) — exactly the table the
// standalone activation step would apply, so fusion is bitwise
// invisible.
func bindQuantKernel(n *nn.Node, ins []tensor.Shape, out tensor.Shape, inQ []tensor.QuantParams, outQ tensor.QuantParams, post []*[256]int8) (qkernelFunc, scratchSpec, error) {
	switch n.Op {
	case nn.OpConv, nn.OpDepthwiseConv:
		return bindQuantConv(n, ins[0], out, inQ[0], outQ, post)
	case nn.OpDense:
		return bindQuantDense(n, ins[0], out, inQ[0], outQ, post)
	}
	var (
		kern qkernelFunc
		err  error
	)
	switch n.Op {
	case nn.OpBatchNorm:
		kern, err = bindQuantBatchNorm(n, ins[0], inQ[0], outQ, post)
	case nn.OpReLU, nn.OpReLU6, nn.OpLeakyReLU, nn.OpSigmoid, nn.OpTanh,
		nn.OpHSwish, nn.OpHSigmoid, nn.OpMish:
		kern, err = bindQuantActivation(n, inQ[0], outQ)
	case nn.OpMaxPool:
		kern, err = bindQuantMaxPool(n, ins[0], out, inQ[0], outQ)
	case nn.OpAvgPool:
		kern, err = bindQuantAvgPool(n, ins[0], out, inQ[0], outQ)
	case nn.OpGlobalAvgPool:
		kern, err = bindQuantGlobalAvgPool(ins[0], inQ[0], outQ)
	case nn.OpAdd:
		kern, err = bindQuantAdd(ins, out, inQ, outQ)
	case nn.OpMul:
		kern, err = bindQuantMul(ins, out, inQ, outQ)
	case nn.OpConcat:
		kern, err = bindQuantConcat(ins, out, inQ, outQ)
	case nn.OpUpsample:
		kern, err = bindQuantUpsample(n, ins[0], out, inQ[0], outQ)
	case nn.OpFlatten, nn.OpIdentity:
		kern = bindQuantRecode(inQ[0], outQ)
	default:
		err = errNoQuantKernel
	}
	return kern, scratchSpec{}, err
}

// buildLUT tabulates code → code for a scalar real function under the
// in/out affine mappings — the universal int8 lowering for element-wise
// ops (and for pure recodes with f = identity).
func buildLUT(inQ, outQ tensor.QuantParams, f func(float32) float32) *[256]int8 {
	var lut [256]int8
	for c := -128; c <= 127; c++ {
		lut[c+128] = outQ.Quantize(f(inQ.Dequantize(int8(c))))
	}
	return &lut
}

// sameQuant reports whether two mappings are identical, making a recode
// a plain copy.
func sameQuant(a, b tensor.QuantParams) bool { return a.Scale == b.Scale && a.Zero == b.Zero }

// quantizeFilter lowers a weight tensor to int8 codes with one
// symmetric scale per output channel. INT8 weights from the PTQ pass
// (per-tensor symmetric) are adopted verbatim; FP32/FP16 weights —
// including the fake-quantized per-channel form — are quantized here,
// recovering per-channel scales.
func quantizeFilter(w *tensor.Tensor, outC int) ([]int8, []float64) {
	n := w.NumElements()
	perOut := n / outC
	scales := make([]float64, outC)
	if w.DType == tensor.INT8 && w.Quant.Zero == 0 && w.Quant.Scale > 0 {
		codes := make([]int8, n)
		copy(codes, w.I8)
		for oc := range scales {
			scales[oc] = float64(w.Quant.Scale)
		}
		return codes, scales
	}
	vals := w.Float32s()
	codes := make([]int8, n)
	for oc := 0; oc < outC; oc++ {
		ch := vals[oc*perOut : (oc+1)*perOut]
		q := tensor.SymmetricParams(ch)
		scales[oc] = float64(q.Scale)
		for i, v := range ch {
			codes[oc*perOut+i] = q.Quantize(v)
		}
	}
	return codes, scales
}

// foldBias converts a real-valued bias to int32 at the accumulator
// scale sIn*sW[oc], plus the per-channel requantizers to the output
// scale.
func foldBias(bias *tensor.Tensor, wScales []float64, inQ, outQ tensor.QuantParams) ([]int32, []tensor.Requant) {
	outC := len(wScales)
	sIn, sOut := float64(inQ.Scale), float64(outQ.Scale)
	b32 := make([]int32, outC)
	req := make([]tensor.Requant, outC)
	var bv []float32
	if bias != nil {
		bv = bias.Float32s()
	}
	for oc := 0; oc < outC; oc++ {
		accScale := sIn * wScales[oc]
		req[oc] = tensor.NewRequant(accScale / sOut)
		if bv != nil && accScale > 0 {
			b32[oc] = int32(math.Round(float64(bv[oc]) / accScale))
		}
	}
	return b32, req
}

// qconv is the bound state of one integer convolution. Weight codes are
// kept widened to int16: the input side is zero-point-shifted to int16
// as well (so padding contributes exactly 0), and the multiply-
// accumulate runs through the SIMD integer kernels (tensor.DotInt16 /
// tensor.AxpyInt16).
type qconv struct {
	g      convGeom
	w16    []int16
	bias32 []int32
	req    []tensor.Requant
	zpIn   int32
	zpOut  int32
	post   []*[256]int8 // per-channel fused-epilogue recode, nil when unfused
}

// postFor returns the fused-epilogue recode table for output channel
// oc, or nil when unfused.
func (p *qconv) postFor(oc int) *[256]int8 {
	if p.post == nil {
		return nil
	}
	return p.post[oc]
}

// widenCodes converts int8 weight codes to the int16 operand form of
// the SIMD kernels.
func widenCodes(codes []int8) []int16 {
	w16 := make([]int16, len(codes))
	for i, c := range codes {
		w16[i] = int16(c)
	}
	return w16
}

// requantRow requantizes one int32 accumulator row into int8 codes,
// applying the fused activation recode when present. The requantize +
// clamp runs through the SIMD-dispatched tensor.RequantInt8; the recode
// is a separate pass over the produced codes, which composes to the
// same result as recoding inline.
func requantRow(out []int8, acc []int32, req tensor.Requant, zpOut int32, post *[256]int8) {
	out = out[:len(acc)]
	tensor.RequantInt8(out, acc, req, zpOut)
	if post != nil {
		for i, c := range out {
			out[i] = post[int(c)+128]
		}
	}
}

func bindQuantConv(n *nn.Node, in, out tensor.Shape, inQ, outQ tensor.QuantParams, post []*[256]int8) (qkernelFunc, scratchSpec, error) {
	g, w, err := convGeometry(n, in, out)
	if err != nil {
		return nil, scratchSpec{}, err
	}
	codes, wScales := quantizeFilter(w, g.outC)
	bias32, req := foldBias(n.Weight(nn.BiasKey), wScales, inQ, outQ)
	p := &qconv{g: g, w16: widenCodes(codes), bias32: bias32, req: req, zpIn: inQ.Zero, zpOut: outQ.Zero, post: post}
	taps := g.icPerG * g.kh * g.kw
	planeCost := int64(g.outH*g.outW) * int64(taps) * 2

	// Routing mirrors the FP32 binder: convolutions with a real channel
	// reduction (stems and pointwise projections) run the int16 GEMM
	// micro-kernels with the zero-point shift fused into the per-tile B
	// pack. Depthwise and other shallow reductions accumulate int32
	// planes through the SIMD axpy instead — no gather, so the input
	// streams once per output channel.
	if convGemmEligible(g) {
		kern, spec := bindQuantConvGemm(p)
		return kern, spec, nil
	}
	pointwise := g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
	hwIn := g.inH * g.inW
	px := g.outH * g.outW
	spec := scratchSpec{i16PerSample: g.inC * hwIn, i32PerWorker: px}
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		// Shift the whole input by the zero point once: padded (skipped)
		// taps then contribute exactly 0 to the linear term, so the
		// kernel-outer accumulation needs no padding-aware bookkeeping.
		need := rc.batch * p.g.inC * hwIn
		x16 := rc.i16Sample(p.g.inC * hwIn)
		zp := int16(p.zpIn)
		rc.parallelFor(need, 2, func(lo, hi int) {
			tensor.WidenShiftInt8(x16[lo:hi], xv[lo:hi], zp)
		})
		rc.parallelForWorker(rc.batch*p.g.outC, planeCost, func(worker, lo, hi int) {
			acc := rc.i32Worker(worker, px)
			for pi := lo; pi < hi; pi++ {
				if pointwise {
					qconvPlanePointwise(dst, x16, p, acc, pi/p.g.outC, pi%p.g.outC)
				} else {
					qconvPlane(dst, x16, p, acc, pi/p.g.outC, pi%p.g.outC)
				}
			}
		})
		return nil
	}, spec, nil
}

// qconvPlane computes one (batch, output-channel) plane of a shallow
// reduction in kernel-outer form, mirroring the FP32 convPlane: the
// int32 accumulator plane is initialized with the folded bias, every
// kernel tap accumulates a scaled, shifted row of the zero-point-shifted
// int16 input (clipping hoisted out of the row loops), and the plane is
// requantized once at the end.
func qconvPlane(dst []int8, x16 []int16, p *qconv, acc []int32, b, oc int) {
	g := &p.g
	grp := oc / g.ocPerG
	icBase := grp * g.icPerG
	b0 := p.bias32[oc]
	px := g.outH * g.outW
	plane := acc[:px]
	for i := range plane {
		plane[i] = b0
	}
	samePlane := g.sh == 1 && g.sw == 1 && g.outH == g.inH && g.outW == g.inW
	for ic := 0; ic < g.icPerG; ic++ {
		xBase := (b*g.inC + icBase + ic) * g.inH * g.inW
		wBase := (oc*g.icPerG + ic) * g.kh * g.kw
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				w := p.w16[wBase+ky*g.kw+kx]
				if w == 0 {
					continue // zero taps contribute nothing to the shifted input
				}
				if samePlane {
					qconvTapSame(plane, x16[xBase:xBase+px], g, w, ky, kx)
					continue
				}
				// Output columns whose input column stays in bounds;
				// clipping hoisted out of the row loops.
				oxLo := 0
				if g.pw > kx {
					oxLo = (g.pw - kx + g.sw - 1) / g.sw
				}
				oxHi := 0
				if maxIx := g.inW - 1 + g.pw - kx; maxIx >= 0 {
					oxHi = maxIx/g.sw + 1
					if oxHi > g.outW {
						oxHi = g.outW
					}
				}
				if oxLo >= oxHi {
					continue
				}
				for oy := 0; oy < g.outH; oy++ {
					iy := oy*g.sh - g.ph + ky
					if iy < 0 || iy >= g.inH {
						continue
					}
					xRow := x16[xBase+iy*g.inW : xBase+(iy+1)*g.inW]
					oRow := plane[oy*g.outW : (oy+1)*g.outW]
					switch g.sw {
					case 1:
						o := oRow[oxLo:oxHi]
						x := xRow[oxLo-g.pw+kx:]
						x = x[:len(o)]
						tensor.AxpyInt16(o, x, w)
					case 2:
						tensor.AxpyInt16Stride2(oRow[oxLo:oxHi], xRow[oxLo*2-g.pw+kx:], w)
					default:
						wv := int32(w)
						ix := oxLo*g.sw - g.pw + kx
						for ox := oxLo; ox < oxHi; ox++ {
							oRow[ox] += wv * int32(xRow[ix])
							ix += g.sw
						}
					}
				}
			}
		}
	}
	requantRow(dst[(b*g.outC+oc)*px:(b*g.outC+oc+1)*px], plane, p.req[oc], p.zpOut, p.postFor(oc))
}

// qconvTapSame accumulates one kernel tap into a stride-1, same-size
// output plane as a single plane-wide SIMD axpy. The flattened source
// offset dy*inW+dx makes horizontal taps wrap across row ends, wrongly
// accumulating the neighbouring row's opposite edge where the real
// source is zero padding; those few edge columns are corrected by a
// scalar fixup pass afterwards. This turns kh*kw*outH short row calls
// into kh*kw plane calls, which is what amortizes the SIMD kernel's
// setup on the small planes of depthwise stacks.
func qconvTapSame(plane []int32, x []int16, g *convGeom, w int16, ky, kx int) {
	inW, px := g.inW, g.inH*g.inW
	d := (ky-g.ph)*inW + (kx - g.pw)
	// Row clipping: output rows whose source row is in bounds.
	rLo, rHi := 0, g.outH
	if g.ph > ky {
		rLo = g.ph - ky
	}
	if over := ky - g.ph; over > 0 {
		rHi = g.outH - over
	}
	jLo, jHi := rLo*inW, rHi*inW
	// Clamp to the valid source window; skipped head/tail elements are
	// edge columns whose true contribution is zero padding.
	if jLo+d < 0 {
		jLo = -d
	}
	if jHi+d > px {
		jHi = px - d
	}
	if jLo >= jHi {
		return
	}
	tensor.AxpyInt16(plane[jLo:jHi], x[jLo+d:jHi+d], w)
	// Column fixup: subtract the wrapped contributions at the edge.
	wv := int32(w)
	if cl := g.pw - kx; cl > 0 { // left edge columns [0, cl)
		for r := rLo; r < rHi; r++ {
			base := r * inW
			for c := 0; c < cl; c++ {
				if j := base + c; j >= jLo && j < jHi {
					plane[j] -= wv * int32(x[j+d])
				}
			}
		}
	} else if cr := kx - g.pw; cr > 0 { // right edge columns [inW-cr, inW)
		for r := rLo; r < rHi; r++ {
			base := r*inW + inW - cr
			for c := 0; c < cr; c++ {
				if j := base + c; j >= jLo && j < jHi {
					plane[j] -= wv * int32(x[j+d])
				}
			}
		}
	}
}

// qconvPlanePointwise is the 1x1/stride-1/no-pad fast path of the
// shallow form: input and output planes are contiguous, so each input
// channel accumulates with one whole-plane loop instead of per-row
// slicing.
func qconvPlanePointwise(dst []int8, x16 []int16, p *qconv, acc []int32, b, oc int) {
	g := &p.g
	grp := oc / g.ocPerG
	icBase := grp * g.icPerG
	hw := g.inH * g.inW
	b0 := p.bias32[oc]
	plane := acc[:hw]
	for i := range plane {
		plane[i] = b0
	}
	for ic := 0; ic < g.icPerG; ic++ {
		w := p.w16[oc*g.icPerG+ic]
		if w == 0 {
			continue
		}
		xPlane := x16[(b*g.inC+icBase+ic)*hw : (b*g.inC+icBase+ic+1)*hw]
		tensor.AxpyInt16(plane, xPlane, w)
	}
	requantRow(dst[(b*g.outC+oc)*hw:(b*g.outC+oc+1)*hw], plane, p.req[oc], p.zpOut, p.postFor(oc))
}

func bindQuantDense(n *nn.Node, in, out tensor.Shape, inQ, outQ tensor.QuantParams, post []*[256]int8) (qkernelFunc, scratchSpec, error) {
	if len(in) != 1 {
		return nil, scratchSpec{}, fmt.Errorf("dense wants [N,features], got per-sample %v", in)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, scratchSpec{}, fmt.Errorf("dense has no weights")
	}
	inF, outF := in[0], out[0]
	want := tensor.Shape{outF, inF}
	if !w.Shape.Equal(want) {
		return nil, scratchSpec{}, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
	}
	codes, wScales := quantizeFilter(w, outF)
	bias32, req := foldBias(n.Weight(nn.BiasKey), wScales, inQ, outQ)
	w16 := widenCodes(codes)
	zpIn, zpOut := inQ.Zero, outQ.Zero
	unitCost := int64(inF) * 2
	// GEMM lowering for batched calls (M = out features, N = samples):
	// the widened weight codes pack once at bind time, the per-tile B
	// pack fuses the zero-point shift with the transposed gather, and
	// each int32 C tile requantizes straight into the sample-major
	// output. Integer accumulation is associative, so the scalar-dot
	// path below produces identical codes. N is the batch — small by
	// construction — so cap the tile width at 16 (see bindDense).
	kern := tensor.PickGemmI16MaxWidth(16)
	mr, nr := kern.MR, kern.NR
	kp := tensor.KPairs(inF)
	panels := (outF + mr - 1) / mr
	apack := make([]int16, kern.PackedASize(outF, inF))
	kern.PackA(apack, w16, inF, outF, inF)
	biasPad := make([]int32, panels*mr)
	copy(biasPad, bias32[:outF])
	spec := scratchSpec{i16PerSample: inF, i16PerWorker: kp * 2 * nr, i32PerWorker: mr * nr}
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		if rc.batch >= denseGemmMinBatch {
			nt := (rc.batch + nr - 1) / nr
			rc.parallelForWorker(nt, unitCost*int64(nr)*int64(outF), func(worker, lo, hi int) {
				bpack := rc.i16Worker(worker, kp*2*nr)
				ctile := rc.i32Worker(worker, mr*nr)
				for t := lo; t < hi; t++ {
					j0 := t * nr
					jw := rc.batch - j0
					if jw > nr {
						jw = nr
					}
					packQDenseTile(bpack, xv, inF, nr, j0, jw, zpIn)
					for p := 0; p < panels; p++ {
						o0 := p * mr
						mh := outF - o0
						if mh > mr {
							mh = mr
						}
						kern.Run(apack[p*mr*2*kp:(p+1)*mr*2*kp], bpack, 2*nr, kp, biasPad[o0:o0+mr], ctile, nr)
						for i := 0; i < mh; i++ {
							o := o0 + i
							for j := 0; j < jw; j++ {
								code := tensor.ClampInt8(zpOut + req[o].Apply(ctile[i*nr+j]))
								if post != nil {
									code = post[o][int(code)+128]
								}
								dst[(j0+j)*outF+o] = code
							}
						}
					}
				}
			})
			return nil
		}
		// Zero-point-shift the input rows once so the SIMD dot needs no
		// correction term.
		need := rc.batch * inF
		x16 := rc.i16Sample(inF)
		rc.parallelFor(need, 2, func(lo, hi int) {
			tensor.WidenShiftInt8(x16[lo:hi], xv[lo:hi], int16(zpIn))
		})
		rc.parallelFor(rc.batch*outF, unitCost, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				b, o := r/outF, r%outF
				xRow := x16[b*inF : (b+1)*inF]
				wRow := w16[o*inF : (o+1)*inF]
				lin := tensor.DotInt16(xRow, wRow) + bias32[o]
				code := tensor.ClampInt8(zpOut + req[o].Apply(lin))
				if post != nil {
					code = post[o][int(code)+128]
				}
				dst[r] = code
			}
		})
		return nil
	}, spec, nil
}

// bindQuantBatchNorm lowers inference-mode normalization to one lookup
// table per channel: the per-channel affine y = s*x + sh composed with
// the in/out quantization mappings is still a scalar function of the
// input code. A fused activation's recode table composes into each
// channel table — one lookup where the unfused plan does two.
func bindQuantBatchNorm(n *nn.Node, in tensor.Shape, inQ, outQ tensor.QuantParams, post []*[256]int8) (qkernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("batchnorm wants NCHW, got per-sample %v", in)
	}
	c := in[0]
	scale, shift, err := bnScaleShift(n, c)
	if err != nil {
		return nil, err
	}
	if len(scale) != c {
		return nil, fmt.Errorf("batchnorm has %d folded channels for %d channels", len(scale), c)
	}
	luts := make([]*[256]int8, c)
	for ch := 0; ch < c; ch++ {
		s, sh := scale[ch], shift[ch]
		lut := buildLUT(inQ, outQ, func(x float32) float32 { return x*s + sh })
		if post != nil {
			for i, code := range lut {
				lut[i] = post[ch][int(code)+128]
			}
		}
		luts[ch] = lut
	}
	hw := in[1] * in[2]
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(hw), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				lut := luts[p%c]
				base := p * hw
				x := xv[base : base+hw]
				out := dst[base : base+hw]
				out = out[:len(x)]
				for i, v := range x {
					out[i] = lut[int(v)+128]
				}
			}
		})
		return nil
	}, nil
}

func bindQuantActivation(n *nn.Node, inQ, outQ tensor.QuantParams) (qkernelFunc, error) {
	f, _, err := activationFn(n)
	if err != nil {
		return nil, err
	}
	lut := buildLUT(inQ, outQ, f)
	return lutKernel(lut), nil
}

// bindQuantRecode handles pure layout ops (flatten, identity): a copy
// when the mappings agree, a recode LUT otherwise.
func bindQuantRecode(inQ, outQ tensor.QuantParams) qkernelFunc {
	if sameQuant(inQ, outQ) {
		return func(rc *runCtx, dst []int8, srcs [][]int8) error {
			copy(dst, srcs[0])
			return nil
		}
	}
	return lutKernel(buildLUT(inQ, outQ, func(x float32) float32 { return x }))
}

func lutKernel(lut *[256]int8) qkernelFunc {
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(len(dst), 2, func(lo, hi int) {
			x := xv[lo:hi]
			out := dst[lo:hi]
			out = out[:len(x)]
			for i, v := range x {
				out[i] = lut[int(v)+128]
			}
		})
		return nil
	}
}

func bindQuantMaxPool(n *nn.Node, in, out tensor.Shape, inQ, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("pool wants NCHW, got per-sample %v", in)
	}
	a := n.Attrs
	c, inH, inW := in[0], in[1], in[2]
	outH, outW := out[1], out[2]
	// Max over codes equals max over reals (the affine map is monotone),
	// so the window max is taken in the code domain and recoded only
	// when the calibrated output range differs from the input's.
	var recode *[256]int8
	if !sameQuant(inQ, outQ) {
		recode = buildLUT(inQ, outQ, func(x float32) float32 { return x })
	}
	empty := inQ.Quantize(0) // windows with no in-bounds taps read real 0
	planeCost := int64(outH*outW) * int64(a.KernelH*a.KernelW)
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, planeCost, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * inH * inW
				outBase := p * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy0 := oy*a.StrideH - a.PadH
					kyLo := 0
					if iy0 < 0 {
						kyLo = -iy0
					}
					kyHi := a.KernelH
					if iy0+a.KernelH > inH {
						kyHi = inH - iy0
					}
					for ox := 0; ox < outW; ox++ {
						ix0 := ox*a.StrideW - a.PadW
						kxLo := 0
						if ix0 < 0 {
							kxLo = -ix0
						}
						kxHi := a.KernelW
						if ix0+a.KernelW > inW {
							kxHi = inW - ix0
						}
						acc := empty
						first := true
						for ky := kyLo; ky < kyHi; ky++ {
							row := base + (iy0+ky)*inW + ix0
							for kx := kxLo; kx < kxHi; kx++ {
								if v := xv[row+kx]; first || v > acc {
									acc = v
									first = false
								}
							}
						}
						if recode != nil {
							acc = recode[int(acc)+128]
						}
						dst[outBase+oy*outW+ox] = acc
					}
				}
			}
		})
		return nil
	}, nil
}

func bindQuantAvgPool(n *nn.Node, in, out tensor.Shape, inQ, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("pool wants NCHW, got per-sample %v", in)
	}
	a := n.Attrs
	c, inH, inW := in[0], in[1], in[2]
	outH, outW := out[1], out[2]
	// Averages divide by the in-bounds tap count (count_include_pad =
	// false), which varies at the edges: one requantizer per possible
	// count folds the division into the fixed-point multiplier.
	sIn, sOut := float64(inQ.Scale), float64(outQ.Scale)
	maxCount := a.KernelH * a.KernelW
	reqByCount := make([]tensor.Requant, maxCount+1)
	for cnt := 1; cnt <= maxCount; cnt++ {
		reqByCount[cnt] = tensor.NewRequant(sIn / (sOut * float64(cnt)))
	}
	zpIn, zpOut := inQ.Zero, outQ.Zero
	planeCost := int64(outH*outW) * int64(maxCount)
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, planeCost, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * inH * inW
				outBase := p * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy0 := oy*a.StrideH - a.PadH
					kyLo := 0
					if iy0 < 0 {
						kyLo = -iy0
					}
					kyHi := a.KernelH
					if iy0+a.KernelH > inH {
						kyHi = inH - iy0
					}
					for ox := 0; ox < outW; ox++ {
						ix0 := ox*a.StrideW - a.PadW
						kxLo := 0
						if ix0 < 0 {
							kxLo = -ix0
						}
						kxHi := a.KernelW
						if ix0+a.KernelW > inW {
							kxHi = inW - ix0
						}
						var sum int32
						for ky := kyLo; ky < kyHi; ky++ {
							row := base + (iy0+ky)*inW + ix0
							for kx := kxLo; kx < kxHi; kx++ {
								sum += int32(xv[row+kx])
							}
						}
						var q int32
						if count := (kyHi - kyLo) * (kxHi - kxLo); count > 0 {
							q = reqByCount[count].Apply(sum - int32(count)*zpIn)
						}
						dst[outBase+oy*outW+ox] = tensor.ClampInt8(zpOut + q)
					}
				}
			}
		})
		return nil
	}, nil
}

func bindQuantGlobalAvgPool(in tensor.Shape, inQ, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("global pool wants NCHW, got per-sample %v", in)
	}
	c, hw := in[0], in[1]*in[2]
	req := tensor.NewRequant(float64(inQ.Scale) / (float64(outQ.Scale) * float64(hw)))
	zpIn, zpOut := inQ.Zero, outQ.Zero
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(hw), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				x := xv[p*hw : (p+1)*hw]
				var sum int32
				for _, v := range x {
					sum += int32(v)
				}
				dst[p] = tensor.ClampInt8(zpOut + req.Apply(sum-int32(hw)*zpIn))
			}
		})
		return nil
	}, nil
}

// classifyBroadcast mirrors bindAccumulate's compile-time operand
// classification: full element-wise, or the [C,1,1] channel broadcast.
func classifyBroadcast(ins []tensor.Shape, out tensor.Shape) ([]bool, error) {
	broadcast := make([]bool, len(ins))
	for i := 1; i < len(ins); i++ {
		s := ins[i]
		switch {
		case s.Equal(out):
			broadcast[i] = false
		case len(out) == 3 && len(s) == 3 && s[0] == out[0] && s[1] == 1 && s[2] == 1:
			broadcast[i] = true
		default:
			return nil, fmt.Errorf("%w: %v vs %v", tensor.ErrShape, out, s)
		}
	}
	return broadcast, nil
}

// bindQuantAdd lowers element-wise addition: each operand's real
// contribution, rescaled to the output scale, is a 256-entry int32
// table of its code, so the sum is table lookups plus one clamp.
func bindQuantAdd(ins []tensor.Shape, out tensor.Shape, inQ []tensor.QuantParams, outQ tensor.QuantParams) (qkernelFunc, error) {
	broadcast, err := classifyBroadcast(ins, out)
	if err != nil {
		return nil, err
	}
	sOut := float64(outQ.Scale)
	luts := make([]*[256]int32, len(ins))
	for op := range ins {
		var lut [256]int32
		s, zp := float64(inQ[op].Scale), inQ[op].Zero
		for c := -128; c <= 127; c++ {
			lut[c+128] = int32(math.Round(s * float64(int32(c)-zp) / sOut))
		}
		luts[op] = &lut
	}
	c, hw := 1, out.NumElements()
	if len(out) == 3 {
		c, hw = out[0], out[1]*out[2]
	}
	zpOut := outQ.Zero
	unit := int64(len(ins)) * 2
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		rc.parallelFor(rc.batch*c, int64(hw)*unit, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * hw
				bcast := zpOut
				for op := 1; op < len(srcs); op++ {
					if broadcast[op] {
						bcast += luts[op][int(srcs[op][p])+128]
					}
				}
				for j := base; j < base+hw; j++ {
					acc := bcast
					acc += luts[0][int(srcs[0][j])+128]
					for op := 1; op < len(srcs); op++ {
						if !broadcast[op] {
							acc += luts[op][int(srcs[op][j])+128]
						}
					}
					dst[j] = tensor.ClampInt8(acc)
				}
			}
		})
		return nil
	}, nil
}

// bindQuantMul lowers two-operand multiplication (the squeeze-excite
// channel scale and element-wise gating): the zero-point-corrected
// product fits int32 and one fixed-point multiplier rescales it.
// Higher arity falls back to the FP32 island.
func bindQuantMul(ins []tensor.Shape, out tensor.Shape, inQ []tensor.QuantParams, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(ins) != 2 {
		return nil, errNoQuantKernel
	}
	broadcast, err := classifyBroadcast(ins, out)
	if err != nil {
		return nil, err
	}
	req := tensor.NewRequant(float64(inQ[0].Scale) * float64(inQ[1].Scale) / float64(outQ.Scale))
	zpA, zpB, zpOut := inQ[0].Zero, inQ[1].Zero, outQ.Zero
	c, hw := 1, out.NumElements()
	if len(out) == 3 {
		c, hw = out[0], out[1]*out[2]
	}
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		av, bv := srcs[0], srcs[1]
		rc.parallelFor(rc.batch*c, int64(hw)*4, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * hw
				if broadcast[1] {
					f := int32(bv[p]) - zpB
					for j := base; j < base+hw; j++ {
						dst[j] = tensor.ClampInt8(zpOut + req.Apply((int32(av[j])-zpA)*f))
					}
					continue
				}
				for j := base; j < base+hw; j++ {
					dst[j] = tensor.ClampInt8(zpOut + req.Apply((int32(av[j])-zpA)*(int32(bv[j])-zpB)))
				}
			}
		})
		return nil
	}, nil
}

func bindQuantConcat(ins []tensor.Shape, out tensor.Shape, inQ []tensor.QuantParams, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(out) != 3 {
		return nil, fmt.Errorf("concat wants NCHW, got per-sample %v", out)
	}
	hw := out[1] * out[2]
	sizes := make([]int, len(ins)) // per-sample element counts
	luts := make([]*[256]int8, len(ins))
	for i, s := range ins {
		if len(s) != 3 || s[1] != out[1] || s[2] != out[2] {
			return nil, fmt.Errorf("%w: concat input %v vs %v", tensor.ErrShape, s, out)
		}
		sizes[i] = s[0] * hw
		// Each branch carries its own calibrated range; recode onto the
		// shared output mapping unless they already agree.
		if !sameQuant(inQ[i], outQ) {
			luts[i] = buildLUT(inQ[i], outQ, func(x float32) float32 { return x })
		}
	}
	totalPer := out.NumElements()
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		for b := 0; b < rc.batch; b++ {
			off := b * totalPer
			for i, src := range srcs {
				sz := sizes[i]
				part := src[b*sz : (b+1)*sz]
				if lut := luts[i]; lut != nil {
					outSeg := dst[off : off+sz]
					outSeg = outSeg[:len(part)]
					for j, v := range part {
						outSeg[j] = lut[int(v)+128]
					}
				} else {
					copy(dst[off:off+sz], part)
				}
				off += sz
			}
		}
		return nil
	}, nil
}

func bindQuantUpsample(n *nn.Node, in, out tensor.Shape, inQ, outQ tensor.QuantParams) (qkernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("upsample wants NCHW, got per-sample %v", in)
	}
	scale := n.Attrs.Scale
	if scale <= 0 {
		return nil, fmt.Errorf("upsample scale %d", scale)
	}
	var recode *[256]int8
	if !sameQuant(inQ, outQ) {
		recode = buildLUT(inQ, outQ, func(x float32) float32 { return x })
	}
	c, h, w := in[0], in[1], in[2]
	oh, ow := out[1], out[2]
	return func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(oh*ow), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				inBase := p * h * w
				outBase := p * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy / scale
					inRow := inBase + iy*w
					outRow := outBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						v := xv[inRow+ox/scale]
						if recode != nil {
							v = recode[int(v)+128]
						}
						dst[outRow+ox] = v
					}
				}
			}
		})
		return nil
	}, nil
}

// wrapFP32Fallback runs an op without an integer lowering as an FP32
// island: dequantize its int8 inputs into planned scratch, execute the
// bound FP32 kernel, quantize the result back. Coverage stays total
// while the cost is confined to the wrapped step (softmax heads and
// other non-linear reductions). The returned spec declares the island's
// per-sample staging (inputs plus output); island ops never carry their
// own FP32 kernel scratch, so the region is exclusively the wrapper's.
func wrapFP32Fallback(kern kernelFunc, ins []tensor.Shape, out tensor.Shape, inQ []tensor.QuantParams, outQ tensor.QuantParams) (qkernelFunc, scratchSpec) {
	inElems := make([]int, len(ins))
	total := out.NumElements()
	outElems := total
	for i, s := range ins {
		inElems[i] = s.NumElements()
		total += inElems[i]
	}
	qfn := func(rc *runCtx, dst []int8, srcs [][]int8) error {
		scratch := rc.f32Sample(total)
		off := 0
		fsrcs := make([][]float32, len(srcs))
		for i, src := range srcs {
			n := inElems[i] * rc.batch
			buf := scratch[off : off+n]
			off += n
			tensor.DequantizeSlice(buf, src, inQ[i])
			fsrcs[i] = buf
		}
		fdst := scratch[off : off+outElems*rc.batch]
		if err := kern(rc, fdst, fsrcs); err != nil {
			return err
		}
		tensor.QuantizeSlice(dst, fdst, outQ)
		return nil
	}
	return qfn, scratchSpec{f32PerSample: total}
}
