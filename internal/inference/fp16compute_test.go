package inference

import (
	"math"
	"testing"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// fp16Graph is the FP16-compute reference model: FaceDetectNet with
// its conv filters stored as binary16 (biases and folded batch-norm
// affines stay FP32, the standard mixed-precision split).
func fp16Graph() *nn.Graph {
	g := nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 91})
	for _, n := range g.Nodes {
		if w := n.Weight(nn.WeightKey); w != nil && w.DType == tensor.FP32 {
			n.SetWeight(nn.WeightKey, w.Convert(tensor.FP16))
		}
	}
	return g
}

// TestFP16ComputePrecisionAssignment checks the lowering side of the
// FP16-compute plan: intermediate values are stamped FP16 while the
// caller-facing boundary (module inputs, declared outputs) stays FP32.
func TestFP16ComputePrecisionAssignment(t *testing.T) {
	g := fp16Graph()
	m, _, err := ir.Lower(g, ir.Config{FP16Compute: true}, false)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	boundary := make(map[int]bool)
	for _, id := range m.Inputs {
		boundary[id] = true
	}
	for _, o := range m.Outputs {
		boundary[o.Value] = true
	}
	live := m.Live()
	interior := 0
	for id := range live {
		v := m.Values[id]
		if boundary[id] {
			if v.Prec != ir.FP32 {
				t.Fatalf("boundary value %q assigned %v, want f32", v.Name, v.Prec)
			}
			continue
		}
		if v.Prec != ir.FP16 {
			t.Fatalf("interior value %q assigned %v, want f16", v.Name, v.Prec)
		}
		interior++
	}
	if interior == 0 {
		t.Fatal("no interior values were assigned FP16")
	}
}

// TestFP16ComputeSingleLayerBitwise pins the weight-residency contract:
// a single-layer graph has no FP16-stored intermediate (its output is a
// declared FP32 output), so an FP16-compute engine differs from the
// plain FP32 engine only in keeping the binary16 weights packed
// half-width and widening them on load — which must be bitwise
// invisible, for both the conv GEMM path and the dense scalar/GEMM
// paths.
func TestFP16ComputeSingleLayerBitwise(t *testing.T) {
	build := map[string]func() *nn.Graph{
		"conv": func() *nn.Graph {
			b := nn.NewBuilder("conv-only", nn.BuildOptions{Weights: true, Seed: 5})
			x := b.Input("input", 8, 16, 16)
			x = b.Conv(x, 8, 12, 3, 1, 1)
			return b.Graph(x)
		},
		"dense": func() *nn.Graph {
			b := nn.NewBuilder("dense-only", nn.BuildOptions{Weights: true, Seed: 6})
			x := b.Input("input", 40)
			x = b.Dense(x, 40, 24)
			return b.Graph(x)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			g := mk()
			for _, n := range g.Nodes {
				if w := n.Weight(nn.WeightKey); w != nil && w.DType == tensor.FP32 {
					n.SetWeight(nn.WeightKey, w.Convert(tensor.FP16))
				}
			}
			ref := mustCompile(t, g)
			f16 := mustCompile(t, g, PrecisionFP16Compute())
			// Batch 1 exercises the dense scalar path, batch 8 the GEMM
			// path; both must match the dequantize-at-bind plan exactly.
			for _, batch := range []int{1, 8} {
				in := tensor.New(tensor.FP32, append(tensor.Shape{batch}, g.Node(g.Inputs[0]).Attrs.Shape...)...)
				fillInput(in, batch)
				inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
				want, err := ref.Run(inputs)
				if err != nil {
					t.Fatalf("fp32 run: %v", err)
				}
				got, err := f16.Run(inputs)
				if err != nil {
					t.Fatalf("fp16 run: %v", err)
				}
				for oname, w := range want {
					gv := got[oname]
					for i := range w.F32 {
						if math.Float32bits(w.F32[i]) != math.Float32bits(gv.F32[i]) {
							t.Fatalf("batch %d output %s[%d]: fp16-compute %g, fp32 %g",
								batch, oname, i, gv.F32[i], w.F32[i])
						}
					}
				}
			}
		})
	}
}

// TestFP16ComputeCloseToFP32 runs the full FP16-compute plan — FP16
// arena for intermediates, half-width weight panels — against the
// plain FP32 engine on the same FP16-weight model. Outputs differ only
// by the round-to-nearest-even narrowing of each intermediate
// activation, so they must agree to FP16-grade relative accuracy.
func TestFP16ComputeCloseToFP32(t *testing.T) {
	g := fp16Graph()
	ref := mustCompile(t, g)
	f16 := mustCompile(t, g, PrecisionFP16Compute())
	if f16.arenaHPerSample == 0 {
		t.Fatal("FP16-compute plan allocated no halfword arena")
	}
	if f16.stagePerSample == 0 {
		t.Fatal("FP16-compute plan sized no staging region")
	}
	in := tensor.New(tensor.FP32, append(tensor.Shape{3}, g.Node(g.Inputs[0]).Attrs.Shape...)...)
	fillInput(in, 9)
	inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
	want, err := ref.Run(inputs)
	if err != nil {
		t.Fatalf("fp32 run: %v", err)
	}
	got, err := f16.Run(inputs)
	if err != nil {
		t.Fatalf("fp16 run: %v", err)
	}
	for name, w := range want {
		gv := got[name]
		for i := range w.F32 {
			diff := math.Abs(float64(w.F32[i] - gv.F32[i]))
			scale := math.Max(math.Abs(float64(w.F32[i])), 1)
			if diff/scale > 2e-2 {
				t.Fatalf("output %s[%d]: fp16-compute %g vs fp32 %g (rel %g)",
					name, i, gv.F32[i], w.F32[i], diff/scale)
			}
		}
	}
	// Determinism: a second run reproduces the first bit for bit.
	again, err := f16.Run(inputs)
	if err != nil {
		t.Fatalf("fp16 rerun: %v", err)
	}
	for name, w := range got {
		for i := range w.F32 {
			if math.Float32bits(w.F32[i]) != math.Float32bits(again[name].F32[i]) {
				t.Fatalf("output %s[%d] not deterministic", name, i)
			}
		}
	}
}

// TestFP16ComputeBatchInvariance replicates one sample across a batch:
// every per-sample kernel and the elementwise FP16 narrowing are batch
// invariant, so each replica's rows must equal the batch-1 result bit
// for bit.
func TestFP16ComputeBatchInvariance(t *testing.T) {
	g := fp16Graph()
	f16 := mustCompile(t, g, PrecisionFP16Compute())
	per := g.Node(g.Inputs[0]).Attrs.Shape
	one := tensor.New(tensor.FP32, append(tensor.Shape{1}, per...)...)
	fillInput(one, 4)
	rep := tensor.New(tensor.FP32, append(tensor.Shape{6}, per...)...)
	for b := 0; b < 6; b++ {
		copy(rep.F32[b*len(one.F32):], one.F32)
	}
	single, err := f16.Run(map[string]*tensor.Tensor{g.Inputs[0]: one})
	if err != nil {
		t.Fatalf("batch-1 run: %v", err)
	}
	batched, err := f16.Run(map[string]*tensor.Tensor{g.Inputs[0]: rep})
	if err != nil {
		t.Fatalf("batch-6 run: %v", err)
	}
	for name, s := range single {
		rows := batched[name]
		n := len(s.F32)
		for b := 0; b < 6; b++ {
			for i := 0; i < n; i++ {
				if math.Float32bits(s.F32[i]) != math.Float32bits(rows.F32[b*n+i]) {
					t.Fatalf("output %s sample %d[%d] differs from batch-1 result", name, b, i)
				}
			}
		}
	}
}

// TestFP16ComputeTrafficModel checks the modeled-traffic accounting the
// bench harness gates on: the FP16-compute plan of an FP16-weight model
// must move at least 1.5x fewer modeled bytes per sample than the plain
// FP32 plan of the same graph (weights and intermediates both halve;
// the FP32 boundary keeps the ratio under 2).
func TestFP16ComputeTrafficModel(t *testing.T) {
	g := fp16Graph()
	ref := mustCompile(t, g)
	f16 := mustCompile(t, g, PrecisionFP16Compute())
	fw, hw := ref.ModeledTrafficBytesPerSample(), f16.ModeledTrafficBytesPerSample()
	if fw <= 0 || hw <= 0 {
		t.Fatalf("traffic model returned %d / %d bytes", fw, hw)
	}
	ratio := float64(fw) / float64(hw)
	if ratio < 1.5 {
		t.Fatalf("modeled traffic ratio %.3f (fp32 %d B, fp16 %d B), want >= 1.5", ratio, fw, hw)
	}
	if ratio > 2.0 {
		t.Fatalf("modeled traffic ratio %.3f exceeds the 2x physical bound", ratio)
	}
}
