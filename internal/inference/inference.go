// Package inference executes nn graphs on the host CPU.
//
// It is the toolchain's reference runtime: optimization passes
// (internal/optimize) are validated against it, the Kenning-style
// deployment pipeline (internal/kenning) uses it as the "CPU target", and
// accuracy numbers for the compression experiments come from it. Weights
// stored in FP16 or INT8 are dequantized on the fly, so a quantized graph
// runs with exactly the arithmetic a de-quantizing edge runtime would use.
//
// Two execution strategies are provided:
//
//   - Interpreter walks the graph node by node, allocating every
//     activation and dequantizing weights on each call. It is the
//     reference semantics and the baseline in engine benchmarks.
//   - Engine (see Compile) is the compiled execution-plan runtime:
//     kernels are bound and weights dequantized once at compile time,
//     activations live in a liveness-planned arena, and the hot kernels
//     run on a bounded worker pool. See DESIGN.md.
//
// Compile (FP32) and CompileQuantized (native INT8, see quant.go) are
// thin drivers over one shared lowering pipeline — the typed IR and
// pass manager of internal/inference/ir (shape inference, constant
// folding, identity/dead/CSE elimination, epilogue fusion, precision
// assignment), exposed directly via Lower for -dump-ir style tooling.
//
// Runner is the historical entry point and is now a thin facade: it
// compiles an Engine when the graph is compilable and falls back to the
// Interpreter otherwise (e.g. structure-only graphs without weights).
package inference

import (
	"fmt"
	"math"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Runner executes a validated graph. Since the engine refactor it is a
// facade over Compile + Engine.Run; graphs that cannot be compiled (for
// example structure-only graphs without materialized weights) fall back
// to the tree-walking Interpreter, which reports the precise failure at
// Run time exactly as the historical Runner did.
type Runner struct {
	graph      *nn.Graph
	engine     *Engine
	interp     *Interpreter
	compileErr error
}

// NewRunner prepares a runner; the graph must validate.
func NewRunner(g *nn.Graph) (*Runner, error) {
	it, err := NewInterpreter(g)
	if err != nil {
		return nil, err
	}
	r := &Runner{graph: g, interp: it}
	eng, err := Compile(g)
	if err != nil {
		// Historical Runner semantics: construction succeeds for any
		// valid graph (including structure-only ones the engine cannot
		// compile) and execution reports the precise failure. The
		// compile error stays inspectable via CompileError so callers
		// can tell intended fallback from an engine regression.
		r.compileErr = err
		return r, nil
	}
	r.engine = eng
	return r, nil
}

// Engine returns the compiled engine backing this runner, or nil when
// the graph could not be compiled and the interpreter is used instead.
func (r *Runner) Engine() *Engine { return r.engine }

// CompileError returns why the graph fell back to the interpreter, or
// nil when the runner is engine-backed.
func (r *Runner) CompileError() error { return r.compileErr }

// Run executes the graph on the given inputs (keyed by input-node name)
// and returns the declared outputs. All tensors are FP32.
func (r *Runner) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if r.engine != nil {
		return r.engine.Run(inputs)
	}
	return r.interp.Run(inputs)
}

// RunAll executes the graph and returns every node's activation, keyed by
// node name. Quantization calibration (internal/optimize) uses this to
// observe intermediate dynamic ranges.
func (r *Runner) RunAll(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if r.engine != nil {
		return r.engine.RunAll(inputs)
	}
	return r.interp.RunAll(inputs)
}

// RunSingle is a convenience wrapper for graphs with exactly one input
// and one output.
func (r *Runner) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if r.engine != nil {
		return r.engine.RunSingle(in)
	}
	return r.interp.RunSingle(in)
}

// Interpreter is the tree-walking reference runtime: no compilation, no
// kernel binding, every activation freshly allocated and every quantized
// weight dequantized at each use. It defines the semantics the compiled
// Engine must reproduce and serves as the baseline in the
// interpreter-vs-engine benchmarks.
type Interpreter struct {
	graph *nn.Graph
	order []*nn.Node
}

// NewInterpreter prepares an interpreter; the graph must validate.
func NewInterpreter(g *nn.Graph) (*Interpreter, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return &Interpreter{graph: g, order: order}, nil
}

// Run executes the graph on the given inputs (keyed by input-node name)
// and returns the declared outputs. All tensors are FP32.
func (r *Interpreter) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	acts := make(map[string]*tensor.Tensor, len(r.order))
	for _, name := range r.graph.Inputs {
		in, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("inference: missing input %q", name)
		}
		acts[name] = in
	}
	for _, n := range r.order {
		if n.Op == nn.OpInput {
			in := acts[n.Name]
			if in == nil {
				return nil, fmt.Errorf("inference: missing input %q", n.Name)
			}
			want := append([]int{in.Shape[0]}, n.Attrs.Shape...)
			if !in.Shape.Equal(tensor.Shape(want)) {
				return nil, fmt.Errorf("inference: input %q has shape %v, want %v", n.Name, in.Shape, want)
			}
			continue
		}
		out, err := r.exec(n, acts)
		if err != nil {
			return nil, fmt.Errorf("inference: node %q (%s): %w", n.Name, n.Op, err)
		}
		acts[n.Name] = out
	}
	outs := make(map[string]*tensor.Tensor, len(r.graph.Outputs))
	for _, name := range r.graph.Outputs {
		o := acts[name]
		if o == nil {
			return nil, fmt.Errorf("inference: output %q was not produced", name)
		}
		outs[name] = o
	}
	return outs, nil
}

// RunAll executes the graph and returns every node's activation, keyed by
// node name.
func (r *Interpreter) RunAll(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	acts := make(map[string]*tensor.Tensor, len(r.order))
	for _, name := range r.graph.Inputs {
		in, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("inference: missing input %q", name)
		}
		acts[name] = in
	}
	for _, n := range r.order {
		if n.Op == nn.OpInput {
			continue
		}
		out, err := r.exec(n, acts)
		if err != nil {
			return nil, fmt.Errorf("inference: node %q (%s): %w", n.Name, n.Op, err)
		}
		acts[n.Name] = out
	}
	return acts, nil
}

// RunSingle is a convenience wrapper for graphs with exactly one input
// and one output.
func (r *Interpreter) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(r.graph.Inputs) != 1 || len(r.graph.Outputs) != 1 {
		return nil, fmt.Errorf("inference: RunSingle wants 1 input/1 output, graph has %d/%d",
			len(r.graph.Inputs), len(r.graph.Outputs))
	}
	outs, err := r.Run(map[string]*tensor.Tensor{r.graph.Inputs[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[r.graph.Outputs[0]], nil
}

func (r *Interpreter) exec(n *nn.Node, acts map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	get := func(i int) (*tensor.Tensor, error) {
		if i >= len(n.Inputs) {
			return nil, fmt.Errorf("missing input %d", i)
		}
		t := acts[n.Inputs[i]]
		if t == nil {
			return nil, fmt.Errorf("input %q not yet computed", n.Inputs[i])
		}
		return t, nil
	}
	x, err := get(0)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case nn.OpConv, nn.OpDepthwiseConv:
		return conv2d(n, x)
	case nn.OpDense:
		return dense(n, x)
	case nn.OpBatchNorm:
		return batchNorm(n, x)
	case nn.OpReLU:
		return mapElem(x, func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		}), nil
	case nn.OpReLU6:
		return mapElem(x, func(v float32) float32 {
			if v < 0 {
				return 0
			}
			if v > 6 {
				return 6
			}
			return v
		}), nil
	case nn.OpLeakyReLU:
		alpha := n.Attrs.Alpha
		if alpha == 0 {
			alpha = 0.1
		}
		return mapElem(x, func(v float32) float32 {
			if v < 0 {
				return alpha * v
			}
			return v
		}), nil
	case nn.OpSigmoid:
		return mapElem(x, sigmoid), nil
	case nn.OpTanh:
		return mapElem(x, func(v float32) float32 { return float32(math.Tanh(float64(v))) }), nil
	case nn.OpHSwish:
		return mapElem(x, func(v float32) float32 { return v * relu6(v+3) / 6 }), nil
	case nn.OpHSigmoid:
		return mapElem(x, func(v float32) float32 { return relu6(v+3) / 6 }), nil
	case nn.OpMish:
		return mapElem(x, func(v float32) float32 {
			sp := math.Log1p(math.Exp(float64(v))) // softplus
			return float32(float64(v) * math.Tanh(sp))
		}), nil
	case nn.OpMaxPool:
		return pool(n, x, true)
	case nn.OpAvgPool:
		return pool(n, x, false)
	case nn.OpGlobalAvgPool:
		return globalAvgPool(x)
	case nn.OpAdd, nn.OpMul:
		out := x.Convert(tensor.FP32)
		for i := 1; i < len(n.Inputs); i++ {
			y, err := get(i)
			if err != nil {
				return nil, err
			}
			if err := accumulate(out, y, n.Op == nn.OpMul); err != nil {
				return nil, err
			}
		}
		return out, nil
	case nn.OpConcat:
		ts := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			if ts[i], err = get(i); err != nil {
				return nil, err
			}
		}
		return concatChannels(ts)
	case nn.OpUpsample:
		return upsample(x, n.Attrs.Scale)
	case nn.OpSoftmax:
		return softmaxRows(x)
	case nn.OpFlatten:
		flat := x.Convert(tensor.FP32)
		feat := 1
		for _, d := range x.Shape[1:] {
			feat *= d
		}
		flat.Shape = tensor.Shape{x.Shape[0], feat}
		return flat, nil
	case nn.OpIdentity:
		return x.Convert(tensor.FP32), nil
	}
	return nil, fmt.Errorf("unsupported op %s", n.Op)
}

func relu6(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 6 {
		return 6
	}
	return v
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

func mapElem(x *tensor.Tensor, f func(float32) float32) *tensor.Tensor {
	vals := x.Float32s()
	out := tensor.New(tensor.FP32, x.Shape...)
	for i, v := range vals {
		out.F32[i] = f(v)
	}
	return out
}
