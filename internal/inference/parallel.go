package inference

import (
	"sync"
	"sync/atomic"
)

// runCtx carries the per-call execution state kernels need: the dynamic
// batch size, the worker-pool bounds chosen at compile time, and the
// planned scratch allocation for this call (see scratch.go).
type runCtx struct {
	batch     int
	workers   int
	threshold int64
	spec      scratchSpec
	scratch   *scratchBufs
}

// parallelFor executes fn over the index range [0, n), splitting it into
// contiguous chunks drained by a bounded pool of goroutines (the calling
// goroutine is one of the workers). unitCost approximates the elementary
// ops per index; ranges whose total estimated cost falls below the
// engine's parallel threshold run inline, so small kernels never pay
// dispatch overhead. Chunks are handed out through an atomic cursor,
// which load-balances uneven work (e.g. convolution rows with different
// padding clips) without per-chunk channel traffic.
//
// Each index is processed by exactly one goroutine and fn receives
// disjoint ranges, so kernels keep their per-element accumulation order
// and produce bitwise-identical results at any worker count.
func (rc *runCtx) parallelFor(n int, unitCost int64, fn func(lo, hi int)) {
	rc.parallelForWorker(n, unitCost, func(_, lo, hi int) { fn(lo, hi) })
}

// parallelForWorker is parallelFor with a worker ordinal: fn also
// receives the index of the pool goroutine running the chunk, always in
// [0, rc.workers), stable for the goroutine's lifetime. Kernels use it
// to claim a private region of the planned scratch (rc.f32Worker and
// friends) without locking. The calling goroutine is worker 0; the
// inline small-range path therefore always reports worker 0.
func (rc *runCtx) parallelForWorker(n int, unitCost int64, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := rc.workers
	if w > n {
		w = n
	}
	if w <= 1 || int64(n)*unitCost < rc.threshold {
		fn(0, 0, n)
		return
	}
	// More chunks than workers smooths imbalance; chunk count is capped
	// so tiny units still amortize the cursor increment.
	chunks := w * 4
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var cursor int64
	work := func(worker int) {
		for {
			i := int(atomic.AddInt64(&cursor, 1)) - 1
			lo := i * size
			if lo >= n {
				return
			}
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(worker, lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func(worker int) {
			defer wg.Done()
			work(worker)
		}(i)
	}
	work(0)
	wg.Wait()
}
