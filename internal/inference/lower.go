package inference

import (
	"fmt"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Lower runs the shared lowering pipeline over g: the typed IR is built
// once and rewritten by the standard pass list (shape inference,
// constant folding, identity/dead elimination, CSE, activation fusion,
// precision assignment). Both Compile and CompileQuantized are thin
// drivers over this one pipeline; a nil schema lowers the pure FP32
// module, a non-nil schema assigns INT8 precision and marks FP32
// islands. captureDumps additionally records the textual IR after each
// pass (the -dump-ir surface of the CLIs and the golden pipeline
// tests).
func Lower(g *nn.Graph, schema *nn.QuantSchema, captureDumps bool) (*ir.Module, []ir.PassRecord, error) {
	cfg := ir.Config{}
	if schema != nil {
		cfg.Schema = schema
		cfg.IntLowering = hasIntLowering
	}
	return ir.Lower(g, cfg, captureDumps)
}

// scaffold is the executable-plan skeleton both engines share: the
// lowered module's live values mapped onto plan value slots, the
// declared interface resolved to those slots, and the alias table for
// debug executions. Everything here is derived deterministically from
// the module.
type scaffold struct {
	vals        []value
	valOf       []int // module value id -> plan val index, -1 if unused
	inputNames  []string
	inputVals   []int
	outputNames []string
	outputVals  []int
	aliases     map[string]int
}

// buildScaffold maps a lowered module onto plan values with the
// location policy both engines use: inputs stay in caller tensors,
// declared outputs get dedicated buffers (they leave the call), and
// everything else is left for the arena planner.
func buildScaffold(m *ir.Module) scaffold {
	live := m.Live()
	sc := scaffold{
		valOf:   make([]int, len(m.Values)),
		aliases: make(map[string]int, len(m.Aliases)),
	}
	for i := range sc.valOf {
		sc.valOf[i] = -1
	}
	for _, v := range m.Values {
		if !live[v.ID] {
			continue
		}
		sc.valOf[v.ID] = len(sc.vals)
		sc.vals = append(sc.vals, value{name: v.Name, per: v.Shape, elems: v.Elems,
			fp16: v.Prec == ir.FP16})
	}
	for _, id := range m.Inputs {
		ev := sc.valOf[id]
		sc.vals[ev].loc = location{locInput, len(sc.inputVals)}
		sc.inputNames = append(sc.inputNames, m.Values[id].Name)
		sc.inputVals = append(sc.inputVals, ev)
	}
	for _, o := range m.Outputs {
		ev := sc.valOf[o.Value]
		sc.outputNames = append(sc.outputNames, o.Name)
		sc.outputVals = append(sc.outputVals, ev)
		if sc.vals[ev].loc.kind == locUnassigned {
			sc.vals[ev].loc = location{locOutput, len(sc.outputNames) - 1}
		}
	}
	for name, id := range m.Aliases {
		if ev := sc.valOf[id]; ev >= 0 {
			sc.aliases[name] = ev
		}
	}
	return sc
}

// nodeFromOp adapts an IR op to the nn.Node surface the kernel binders
// read (op kind, attributes, weights).
func nodeFromOp(op *ir.Op) *nn.Node {
	return &nn.Node{Name: op.Name, Op: op.Kind, Attrs: op.Attrs, Weights: op.Weights}
}

// nodeFromFused reconstructs the standalone node a fused epilogue stage
// was absorbed from (RunAll's unfused expansion re-binds these).
func nodeFromFused(f *ir.FusedOp) *nn.Node {
	return &nn.Node{Name: f.Name, Op: f.Kind, Attrs: f.Attrs, Weights: f.Weights}
}

// buildEpilogue compiles an op's fused chain into the structured
// epilogue the FP32 kernels inline: an optional leading per-channel
// affine (the folded batch-norm), then an activation tail — a flagged
// ReLU (branch-lean, call-free), a composed channel-independent
// function, or per-channel closures for exotic chains with a second
// batch-norm. Each stage is applied in chain order to the same float32
// the unfused step would read, so results are bitwise identical to the
// unfused plan. channels is the producer's output channel count
// (conv/batch-norm) or feature count (dense).
func buildEpilogue(op *ir.Op, channels int) (*epilogue, error) {
	if len(op.Fused) == 0 {
		return nil, nil
	}
	type stage struct {
		kind         nn.OpType
		act          func(float32) float32
		scale, shift []float32
	}
	stages := make([]stage, len(op.Fused))
	for i := range op.Fused {
		f := &op.Fused[i]
		if f.Kind == nn.OpBatchNorm {
			scale, shift, err := bnScaleShift(nodeFromFused(f), channels)
			if err != nil {
				return nil, err
			}
			if len(scale) != channels {
				return nil, fmt.Errorf("fused batchnorm %q has %d channels, want %d", f.Name, len(scale), channels)
			}
			stages[i] = stage{kind: f.Kind, scale: scale, shift: shift}
			continue
		}
		fn, _, err := activationFn(nodeFromFused(f))
		if err != nil {
			return nil, err
		}
		stages[i] = stage{kind: f.Kind, act: fn}
	}
	ep := &epilogue{}
	rest := stages
	if rest[0].act == nil {
		ep.scale, ep.shift = rest[0].scale, rest[0].shift
		rest = rest[1:]
	}
	switch {
	case len(rest) == 0:
	case len(rest) == 1 && rest[0].kind == nn.OpReLU:
		ep.relu = true
	default:
		perChannel := false
		for _, st := range rest {
			if st.act == nil {
				perChannel = true
			}
		}
		if !perChannel {
			// Channel-independent activations compose into one function.
			fns := make([]func(float32) float32, len(rest))
			for i, st := range rest {
				fns[i] = st.act
			}
			ep.fn = fns[0]
			for _, f := range fns[1:] {
				prev, next := ep.fn, f
				ep.fn = func(v float32) float32 { return next(prev(v)) }
			}
			break
		}
		tail := rest
		ep.fnCh = make([]func(float32) float32, channels)
		for ch := 0; ch < channels; ch++ {
			c := ch
			ep.fnCh[ch] = func(v float32) float32 {
				for _, st := range tail {
					if st.act != nil {
						v = st.act(v)
					} else {
						v = v*st.scale[c] + st.shift[c]
					}
				}
				return v
			}
		}
	}
	return ep, nil
}

// buildEpilogueLUTs composes an op's fused chain into one int8 code
// table per output channel for the quantized kernels: the producer
// requantizes to its own (first Pre) mapping and the table recodes from
// there through each stage's exact lookup — the same tables the unfused
// steps would apply one by one, composed, so results are bitwise
// identical. Returns nil for an unfused op.
func buildEpilogueLUTs(m *ir.Module, op *ir.Op, channels int) ([]*[256]int8, error) {
	if len(op.Fused) == 0 {
		return nil, nil
	}
	var luts []*[256]int8
	prevQ := m.Values[op.Fused[0].Pre].QP
	for i := range op.Fused {
		f := &op.Fused[i]
		outQ := m.Values[op.FusedOut(i)].QP
		var stageTbl func(ch int) *[256]int8
		if f.Kind == nn.OpBatchNorm {
			scale, shift, err := bnScaleShift(nodeFromFused(f), channels)
			if err != nil {
				return nil, err
			}
			if len(scale) != channels {
				return nil, fmt.Errorf("fused batchnorm %q has %d channels, want %d", f.Name, len(scale), channels)
			}
			perCh := make([]*[256]int8, channels)
			for ch := 0; ch < channels; ch++ {
				s, sh := scale[ch], shift[ch]
				perCh[ch] = buildLUT(prevQ, outQ, func(x float32) float32 { return x*s + sh })
			}
			stageTbl = func(ch int) *[256]int8 { return perCh[ch] }
		} else {
			fn, _, err := activationFn(nodeFromFused(f))
			if err != nil {
				return nil, err
			}
			shared := buildLUT(prevQ, outQ, fn)
			stageTbl = func(int) *[256]int8 { return shared }
		}
		if luts == nil {
			luts = make([]*[256]int8, channels)
			for ch := range luts {
				luts[ch] = stageTbl(ch)
			}
		} else {
			for ch := range luts {
				tbl := stageTbl(ch)
				var next [256]int8
				for c := range next {
					next[c] = tbl[int(luts[ch][c])+128]
				}
				luts[ch] = &next
			}
		}
		prevQ = outQ
	}
	return luts, nil
}

// opOperands resolves an op's input value ids and per-sample shapes in
// plan terms.
func opOperands(sc *scaffold, op *ir.Op) (ins []int, inPer []tensor.Shape) {
	ins = make([]int, len(op.Ins))
	inPer = make([]tensor.Shape, len(op.Ins))
	for i, in := range op.Ins {
		ins[i] = sc.valOf[in]
		inPer[i] = sc.vals[ins[i]].per
	}
	return ins, inPer
}

// channelCount is the per-sample leading dimension an epilogue indexes
// by: output channels for NCHW producers, features for dense.
func channelCount(per tensor.Shape) int {
	if len(per) == 0 {
		return 1
	}
	return per[0]
}

// compileError wraps a kernel-binding failure with the op identity, the
// shared error shape of both compilers.
func compileError(op *ir.Op, quantized bool, err error) error {
	kind := "compile"
	if quantized {
		kind = "compile quantized"
	}
	return fmt.Errorf("inference: %s node %q (%s): %w", kind, op.Name, op.Kind, err)
}
