package inference

import (
	"vedliot/internal/tensor"
)

// GEMM lowering of convolution and dense layers.
//
// Channel-heavy convolutions become C = A·B with M = output channels,
// N = output pixels and K = taps: A is the weight matrix packed once at
// bind time into register-panel layout, and B is built one NR-wide tile
// at a time with the im2col gather fused into the pack — no full patch
// matrix ever materializes, so the working set per worker is one B tile
// plus one C tile regardless of layer size. Pointwise convolutions skip
// the pack entirely on full tiles: their natural NCHW layout already is
// the B matrix (row stride = the pixel count), which the micro-kernel
// consumes directly through its ldb argument.
//
// Work splits over (sample, group, N-tile) items so one sample still
// fans out across the worker pool; each item packs its B tile once and
// sweeps all A panels over it while the tile is cache-hot. Per-worker
// pack and C-tile scratch comes from the engine's planned scratch
// allocation (scratch.go), claimed by worker ordinal without locking.
//
// FP32 results stay bitwise identical to the interpreter: the kernels
// initialize accumulators with the bias and add one separate-rounded
// product per tap in (ic, ky, kx) order (see tensor/gemm.go). The
// quantized path accumulates in int32, which is associative, so it is
// exact regardless of variant.

// gemmMinTaps is the K depth below which a convolution stays on the
// direct kernel-outer path: a too-short reduction cannot amortize the
// B-tile pack, and the stem/depthwise layers it covers stream the input
// exactly once there.
const gemmMinTaps = 16

// convGemmEligible reports whether a convolution routes onto the packed
// GEMM path: a real channel reduction that is deep enough to amortize
// the per-tile pack, or a single-input-channel stem (whose gather
// vectorizes through the precomputed segment plans, so even a 9-tap
// reduction beats the direct form). Depthwise layers (icPerG == 1 with
// several groups) stay on the direct path: per-group GEMMs of M = 1
// cannot use the register tiles. Shared by the FP32 and quantized
// binders so both engines make the same routing decision.
func convGemmEligible(g convGeom) bool {
	if g.inC == 1 && g.kh*g.kw > 1 {
		return true
	}
	return g.icPerG > 1 && g.icPerG*g.kh*g.kw >= gemmMinTaps
}

// Segment kinds of a precomputed im2col row plan. Every B-tile row is
// described once at bind time as zero / contiguous-copy /
// stride-2-gather segments, so the per-call fill does no index
// arithmetic at all — the same plan serves every channel, group,
// sample and call, shifted only by the channel plane base.
const (
	segZero = iota
	segCopy
	segGather2
)

// convSeg is one segment of a planned B-tile row: n elements at row
// offset dst, sourced (for copy/gather) at plane-relative offset src.
type convSeg struct {
	dst, src, n int32
	kind        uint8
}

// buildRowPlan returns the segment plan for one (ky, kx) tap row of
// the B tile covering output pixels j0..j0+jw-1 (nr-wide row, columns
// past jw zero-padded), or nil when the geometry needs a per-element
// walk (stride > 2), in which case the caller falls back to
// fillConvRowF32.
func buildRowPlan(g *convGeom, ky, kx, j0, jw, nr int) []convSeg {
	var segs []convSeg
	emit := func(kind uint8, dst, src, n int) {
		if n <= 0 {
			return
		}
		if kind == segZero && len(segs) > 0 {
			if last := &segs[len(segs)-1]; last.kind == segZero && int(last.dst+last.n) == dst {
				last.n += int32(n)
				return
			}
		}
		segs = append(segs, convSeg{dst: int32(dst), src: int32(src), n: int32(n), kind: kind})
	}
	j := 0
	for j < jw {
		p := j0 + j
		oy := p / g.outW
		ox0 := p % g.outW
		run := g.outW - ox0
		if run > jw-j {
			run = jw - j
		}
		iy := oy*g.sh - g.ph + ky
		switch {
		case iy < 0 || iy >= g.inH:
			emit(segZero, j, 0, run)
		case g.sw == 1:
			ix0 := ox0 - g.pw + kx
			lo := 0
			if ix0 < 0 {
				lo = min(-ix0, run)
			}
			hi := run
			if over := ix0 + run - g.inW; over > 0 {
				hi = max(run-over, lo)
			}
			emit(segZero, j, 0, lo)
			emit(segCopy, j+lo, iy*g.inW+ix0+lo, hi-lo)
			emit(segZero, j+hi, 0, run-hi)
		case g.sw == 2:
			ix0 := ox0*2 - g.pw + kx
			lo := 0
			if ix0 < 0 {
				lo = min((-ix0+1)/2, run)
			}
			hi := run
			if ix0 >= g.inW {
				hi = lo
			} else if maxI := (g.inW - 1 - ix0) / 2; maxI+1 < hi {
				hi = max(maxI+1, lo)
			}
			emit(segZero, j, 0, lo)
			emit(segGather2, j+lo, iy*g.inW+ix0+2*lo, hi-lo)
			emit(segZero, j+hi, 0, run-hi)
		default:
			return nil
		}
		j += run
	}
	emit(segZero, jw, 0, nr-jw)
	return segs
}

// buildConvPlans precomputes the B-tile row plans for every (tile,
// tap) of a convolution, or returns nil when any row needs the
// fallback walk.
func buildConvPlans(g *convGeom, nr, nt, px int) [][]convSeg {
	plans := make([][]convSeg, nt*g.kh*g.kw)
	for t := 0; t < nt; t++ {
		j0 := t * nr
		jw := min(px-j0, nr)
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				plan := buildRowPlan(g, ky, kx, j0, jw, nr)
				if plan == nil {
					return nil
				}
				plans[(t*g.kh+ky)*g.kw+kx] = plan
			}
		}
	}
	return plans
}

// packConvTilePlanned packs one B tile by replaying the tile's segment
// plans against each input-channel plane of (sample b, group grp).
// Row order matches packConvTileF32: tap kk = (ic, ky, kx).
func packConvTilePlanned(bpack, xv []float32, g *convGeom, nr, b, grp int, plans [][]convSeg) {
	planeSize := g.inH * g.inW
	taps := g.kh * g.kw
	kk := 0
	for ic := 0; ic < g.icPerG; ic++ {
		plane := xv[(b*g.inC+grp*g.icPerG+ic)*planeSize:]
		plane = plane[:planeSize]
		for tap := 0; tap < taps; tap++ {
			row := bpack[kk*nr : (kk+1)*nr]
			for _, s := range plans[tap] {
				switch s.kind {
				case segZero:
					z := row[s.dst : s.dst+s.n]
					for i := range z {
						z[i] = 0
					}
				case segCopy:
					copy(row[s.dst:s.dst+s.n], plane[s.src:s.src+s.n])
				default:
					tensor.GatherStride2F32(row[s.dst:s.dst+s.n], plane[s.src:])
				}
			}
			kk++
		}
	}
}

// fillConvRowF32 writes one K-row of a B tile: the values output pixels
// j0..j0+jw-1 read from input plane xBase at kernel offset (ky, kx),
// with out-of-bounds taps as 0 and columns past jw zero-padded. Pixels
// are walked in output-row runs so the stride-1 interior reduces to
// copies.
func fillConvRowF32(row []float32, xv []float32, g *convGeom, xBase, ky, kx, j0, jw int) {
	j := 0
	for j < jw {
		p := j0 + j
		oy := p / g.outW
		ox0 := p % g.outW
		run := g.outW - ox0
		if run > jw-j {
			run = jw - j
		}
		seg := row[j : j+run]
		iy := oy*g.sh - g.ph + ky
		switch {
		case iy < 0 || iy >= g.inH:
			for i := range seg {
				seg[i] = 0
			}
		case g.sw == 1:
			ix0 := ox0 - g.pw + kx
			lo := 0
			if ix0 < 0 {
				lo = -ix0
				if lo > run {
					lo = run
				}
			}
			hi := run
			if over := ix0 + run - g.inW; over > 0 {
				hi = run - over
				if hi < lo {
					hi = lo
				}
			}
			for i := 0; i < lo; i++ {
				seg[i] = 0
			}
			if hi > lo {
				copy(seg[lo:hi], xv[xBase+iy*g.inW+ix0+lo:xBase+iy*g.inW+ix0+hi])
			}
			for i := hi; i < run; i++ {
				seg[i] = 0
			}
		case g.sw == 2:
			// Clip to the in-bounds index run, then the strided gather
			// vectorizes as an even-lane deinterleave.
			xRow := xv[xBase+iy*g.inW : xBase+(iy+1)*g.inW]
			ix0 := ox0*2 - g.pw + kx
			lo := 0
			if ix0 < 0 {
				lo = (-ix0 + 1) / 2
				if lo > run {
					lo = run
				}
			}
			hi := run
			if ix0 >= g.inW {
				hi = lo
			} else if maxI := (g.inW - 1 - ix0) / 2; maxI+1 < hi {
				hi = maxI + 1
				if hi < lo {
					hi = lo
				}
			}
			for i := 0; i < lo; i++ {
				seg[i] = 0
			}
			if hi > lo {
				tensor.GatherStride2F32(seg[lo:hi], xRow[ix0+2*lo:])
			}
			for i := hi; i < run; i++ {
				seg[i] = 0
			}
		default:
			xRow := xv[xBase+iy*g.inW : xBase+(iy+1)*g.inW]
			ix := ox0*g.sw - g.pw + kx
			for i := range seg {
				if ix >= 0 && ix < g.inW {
					seg[i] = xRow[ix]
				} else {
					seg[i] = 0
				}
				ix += g.sw
			}
		}
		j += run
	}
	for ; j < len(row); j++ {
		row[j] = 0
	}
}

// packConvTileF32 packs one NR-wide B tile for (sample b, group grp),
// fusing the im2col gather: row kk holds tap kk of output pixels
// j0..j0+jw-1 in the interpreter's (ic, ky, kx) tap order.
func packConvTileF32(bpack, xv []float32, g *convGeom, nr, b, grp, j0, jw int) {
	kk := 0
	for ic := 0; ic < g.icPerG; ic++ {
		xBase := (b*g.inC + grp*g.icPerG + ic) * g.inH * g.inW
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				fillConvRowF32(bpack[kk*nr:(kk+1)*nr], xv, g, xBase, ky, kx, j0, jw)
				kk++
			}
		}
	}
}

// bindConvGemm lowers one FP32 convolution onto the packed GEMM
// micro-kernels. Weights and bias are packed per group at bind time;
// the returned kernel streams B tiles through planned worker scratch.
func bindConvGemm(g convGeom, w *tensor.Tensor, bias []float32, ep *epilogue, wf16 bool) (kernelFunc, scratchSpec) {
	taps := g.icPerG * g.kh * g.kw
	px := g.outH * g.outW
	// N is the per-image pixel count: deep layers shrink to 4x4 = 16
	// pixels, where a 48-wide ZMM tile would pack 2/3 zero padding.
	kern := tensor.PickGemmF32MaxWidth(px)
	mr, nr := kern.MR, kern.NR
	groups := g.inC / g.icPerG
	panels := (g.ocPerG + mr - 1) / mr
	apg := kern.PackedASize(g.ocPerG, taps) // packed-A elements per group
	bpg := panels * mr                      // padded bias entries per group
	// wf16 keeps the packed weight panels in their stored binary16
	// form and widens them into call scratch at each dispatch — the
	// FP16-compute "convert on load" of the A operand. The widened
	// panel is bitwise identical to packing the dequantized matrix, so
	// both residencies execute the same arithmetic.
	var apack []float32
	var apackH []uint16
	if wf16 {
		apackH = make([]uint16, groups*apg)
		for grp := 0; grp < groups; grp++ {
			kern.PackAF16(apackH[grp*apg:(grp+1)*apg], w.F16[grp*g.ocPerG*taps:], taps, g.ocPerG, taps)
		}
	} else {
		wv := w.Float32s()
		apack = make([]float32, groups*apg)
		for grp := 0; grp < groups; grp++ {
			kern.PackA(apack[grp*apg:(grp+1)*apg], wv[grp*g.ocPerG*taps:], taps, g.ocPerG, taps)
		}
	}
	biasAll := make([]float32, groups*bpg)
	if bias != nil {
		for grp := 0; grp < groups; grp++ {
			copy(biasAll[grp*bpg:], bias[grp*g.ocPerG:(grp+1)*g.ocPerG])
		}
	}
	pointwise := g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
	nt := (px + nr - 1) / nr
	ktaps := g.kh * g.kw
	plans := buildConvPlans(&g, nr, nt, px)
	scratch := taps*nr + mr*nr
	itemCost := int64(taps) * int64(nr) * int64(2*g.ocPerG+1)
	kfn := func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		apack := apack
		if apackH != nil {
			apack = rc.f32Call(len(apackH))
			tensor.F16ToF32(apack, apackH)
		}
		rc.parallelForWorker(rc.batch*groups*nt, itemCost, func(worker, lo, hi int) {
			ws := rc.f32Worker(worker, scratch)
			bpack := ws[:taps*nr]
			ctile := ws[taps*nr:]
			for it := lo; it < hi; it++ {
				b := it / (groups * nt)
				rem := it % (groups * nt)
				t := rem % nt
				grp := rem / nt
				j0 := t * nr
				jw := px - j0
				if jw > nr {
					jw = nr
				}
				bt, ldb := bpack, nr
				switch {
				case pointwise && jw == nr:
					// The input planes of this group are the B matrix already.
					bt, ldb = xv[(b*g.inC+grp*g.icPerG)*px+j0:], px
				case plans != nil:
					packConvTilePlanned(bpack, xv, &g, nr, b, grp, plans[t*ktaps:(t+1)*ktaps])
				default:
					packConvTileF32(bpack, xv, &g, nr, b, grp, j0, jw)
				}
				for p := 0; p < panels; p++ {
					oc0 := grp*g.ocPerG + p*mr
					mh := g.ocPerG - p*mr
					if mh > mr {
						mh = mr
					}
					ap := apack[grp*apg+p*mr*taps : grp*apg+(p+1)*mr*taps]
					bp := biasAll[grp*bpg+p*mr : grp*bpg+(p+1)*mr]
					if mh == mr && jw == nr {
						kern.Run(ap, bt, ldb, taps, bp, dst[(b*g.outC+oc0)*px+j0:], px)
					} else {
						kern.Run(ap, bt, ldb, taps, bp, ctile, nr)
						for i := 0; i < mh; i++ {
							off := (b*g.outC+oc0+i)*px + j0
							copy(dst[off:off+jw], ctile[i*nr:i*nr+jw])
						}
					}
					if ep != nil {
						for i := 0; i < mh; i++ {
							off := (b*g.outC+oc0+i)*px + j0
							ep.apply(dst[off:off+jw], oc0+i)
						}
					}
				}
			}
		})
		return nil
	}
	return kfn, scratchSpec{f32PerWorker: scratch, f32PerCall: len(apackH)}
}

// packDenseTileF32 packs an NR-wide tile of the dense B matrix: B is
// the transposed input batch (K = in features, N = samples), gathered
// column-by-column from the row-major activation rows.
func packDenseTileF32(bpack, xv []float32, inF, nr, j0, jw int) {
	for j := 0; j < jw; j++ {
		row := xv[(j0+j)*inF : (j0+j+1)*inF]
		for kk, v := range row {
			bpack[kk*nr+j] = v
		}
	}
	if jw < nr {
		for kk := 0; kk < inF; kk++ {
			out := bpack[kk*nr : kk*nr+nr]
			for j := jw; j < nr; j++ {
				out[j] = 0
			}
		}
	}
}

// fillQConvRow is the quantized analogue of fillConvRowF32: it writes
// tap kk's zero-point-shifted int16 values for output pixels
// j0..j0+jw-1 into the even (or odd, per the caller's base offset)
// lanes of a pair-interleaved B tile row, stride 2.
func fillQConvRow(out []int16, xv []int8, g *convGeom, xBase, ky, kx, j0, jw, nr int, zp int32) {
	j := 0
	for j < jw {
		p := j0 + j
		oy := p / g.outW
		ox0 := p % g.outW
		run := g.outW - ox0
		if run > jw-j {
			run = jw - j
		}
		iy := oy*g.sh - g.ph + ky
		if iy < 0 || iy >= g.inH {
			for i := 0; i < run; i++ {
				out[2*(j+i)] = 0
			}
		} else {
			xRow := xv[xBase+iy*g.inW : xBase+(iy+1)*g.inW]
			ix := ox0*g.sw - g.pw + kx
			for i := 0; i < run; i++ {
				if ix >= 0 && ix < g.inW {
					out[2*(j+i)] = int16(int32(xRow[ix]) - zp)
				} else {
					out[2*(j+i)] = 0
				}
				ix += g.sw
			}
		}
		j += run
	}
	for ; j < nr; j++ {
		out[2*j] = 0
	}
}

// packQConvTile packs one pair-interleaved int16 B tile for (sample b,
// group grp), fusing the im2col gather with the zero-point shift.
// Odd tap counts zero-fill the dangling half of the last pair.
func packQConvTile(bpack []int16, xv []int8, g *convGeom, nr, b, grp, j0, jw int, zp int32) {
	kk := 0
	for ic := 0; ic < g.icPerG; ic++ {
		xBase := (b*g.inC + grp*g.icPerG + ic) * g.inH * g.inW
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				fillQConvRow(bpack[(kk/2)*2*nr+kk%2:], xv, g, xBase, ky, kx, j0, jw, nr, zp)
				kk++
			}
		}
	}
	if kk%2 == 1 {
		out := bpack[(kk/2)*2*nr+1:]
		for j := 0; j < nr; j++ {
			out[2*j] = 0
		}
	}
}

// packQPointwiseTile packs a pair-interleaved B tile for a 1×1 stride-1
// unpadded convolution, where tap k's values are just the contiguous
// pixels j0..j0+jw-1 of input plane k: the general gather collapses to a
// two-stream interleave with the zero-point shift fused, no per-element
// geometry. base indexes the first plane of the (sample, group) item.
func packQPointwiseTile(bpack []int16, xv []int8, base, px, taps, nr, j0, jw int, zp int32) {
	kp := tensor.KPairs(taps)
	for pair := 0; pair < kp; pair++ {
		out := bpack[pair*2*nr : (pair+1)*2*nr]
		k0 := 2 * pair
		r0 := xv[base+k0*px+j0 : base+k0*px+j0+jw]
		if k1 := k0 + 1; k1 < taps {
			r1 := xv[base+k1*px+j0 : base+k1*px+j0+jw]
			tensor.PackPairShiftInt8(out, r0, r1, int16(zp))
		} else {
			for j, v := range r0 {
				out[2*j] = int16(int32(v) - zp)
				out[2*j+1] = 0
			}
		}
		for j := jw; j < nr; j++ {
			out[2*j] = 0
			out[2*j+1] = 0
		}
	}
}

// bindQuantConvGemm lowers one integer convolution onto the int16
// PMADDWD-shaped micro-kernels: widened weight codes pack per group at
// bind time, B tiles pack per item with the zero-point shift fused, and
// every tile requantizes straight out of the int32 C tile while it is
// register/L1-hot.
func bindQuantConvGemm(p *qconv) (qkernelFunc, scratchSpec) {
	g := p.g
	taps := g.icPerG * g.kh * g.kw
	kp := tensor.KPairs(taps)
	px := g.outH * g.outW
	// Same narrow-N tile cap as bindConvGemm.
	kern := tensor.PickGemmI16MaxWidth(px)
	mr, nr := kern.MR, kern.NR
	groups := g.inC / g.icPerG
	panels := (g.ocPerG + mr - 1) / mr
	apg := kern.PackedASize(g.ocPerG, taps)
	bpg := panels * mr
	apack := make([]int16, groups*apg)
	biasAll := make([]int32, groups*bpg)
	for grp := 0; grp < groups; grp++ {
		kern.PackA(apack[grp*apg:(grp+1)*apg], p.w16[grp*g.ocPerG*taps:], taps, g.ocPerG, taps)
		copy(biasAll[grp*bpg:], p.bias32[grp*g.ocPerG:(grp+1)*g.ocPerG])
	}
	pointwise := g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
	nt := (px + nr - 1) / nr
	i16Need := kp * 2 * nr
	i32Need := mr * nr
	itemCost := int64(taps) * int64(nr) * int64(2*g.ocPerG+1)
	kfn := func(rc *runCtx, dst []int8, srcs [][]int8) error {
		xv := srcs[0]
		rc.parallelForWorker(rc.batch*groups*nt, itemCost, func(worker, lo, hi int) {
			bpack := rc.i16Worker(worker, i16Need)
			ctile := rc.i32Worker(worker, i32Need)
			for it := lo; it < hi; it++ {
				b := it / (groups * nt)
				rem := it % (groups * nt)
				grp := rem / nt
				j0 := (rem % nt) * nr
				jw := px - j0
				if jw > nr {
					jw = nr
				}
				if pointwise {
					packQPointwiseTile(bpack, xv, (b*g.inC+grp*g.icPerG)*px, px, taps, nr, j0, jw, p.zpIn)
				} else {
					packQConvTile(bpack, xv, &g, nr, b, grp, j0, jw, p.zpIn)
				}
				for pi := 0; pi < panels; pi++ {
					oc0 := grp*g.ocPerG + pi*mr
					mh := g.ocPerG - pi*mr
					if mh > mr {
						mh = mr
					}
					kern.Run(apack[grp*apg+pi*mr*2*kp:grp*apg+(pi+1)*mr*2*kp], bpack, 2*nr, kp,
						biasAll[grp*bpg+pi*mr:grp*bpg+(pi+1)*mr], ctile, nr)
					for i := 0; i < mh; i++ {
						oc := oc0 + i
						off := (b*g.outC+oc)*px + j0
						requantRow(dst[off:off+jw], ctile[i*nr:i*nr+jw], p.req[oc], p.zpOut, p.postFor(oc))
					}
				}
			}
		})
		return nil
	}
	return kfn, scratchSpec{i16PerWorker: i16Need, i32PerWorker: i32Need}
}

// packQDenseTile packs an NR-wide pair-interleaved tile of the
// quantized dense B matrix (K = in features, N = samples), fusing the
// zero-point shift with the transposed gather.
func packQDenseTile(bpack []int16, xv []int8, inF, nr, j0, jw int, zp int32) {
	kp := tensor.KPairs(inF)
	for pair := 0; pair < kp; pair++ {
		out := bpack[pair*2*nr : (pair+1)*2*nr]
		k0 := 2 * pair
		k1 := k0 + 1
		for j := 0; j < jw; j++ {
			row := xv[(j0+j)*inF:]
			out[2*j] = int16(int32(row[k0]) - zp)
			if k1 < inF {
				out[2*j+1] = int16(int32(row[k1]) - zp)
			} else {
				out[2*j+1] = 0
			}
		}
		for j := jw; j < nr; j++ {
			out[2*j] = 0
			out[2*j+1] = 0
		}
	}
}
