package inference

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func fillInput(t *tensor.Tensor, seed int) {
	for i := range t.F32 {
		t.F32[i] = float32((i*7+seed*13)%23)/23 - 0.5
	}
}

func mustCompile(t *testing.T, g *nn.Graph, opts ...Option) *Engine {
	t.Helper()
	e, err := Compile(g, opts...)
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	return e
}

func mustInterp(t *testing.T, g *nn.Graph) *Interpreter {
	t.Helper()
	it, err := NewInterpreter(g)
	if err != nil {
		t.Fatalf("interpret %s: %v", g.Name, err)
	}
	return it
}

// zoo returns small weighted graphs covering every operator family.
func zoo() []*nn.Graph {
	return []*nn.Graph{
		nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 1}),
		nn.MotorNet(128, 5, nn.BuildOptions{Weights: true, Seed: 2}),
		nn.ArcNet(256, nn.BuildOptions{Weights: true, Seed: 3}),
		nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 4}),
		nn.FaceEmbedNet(32, 16, nn.BuildOptions{Weights: true, Seed: 5}),
		nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 6}),
		nn.MLP("mlp", []int{20, 32, 7}, nn.BuildOptions{Weights: true, Seed: 7}),
		nn.MobileNetV3(32, nn.BuildOptions{Weights: true, Seed: 8}),
	}
}

func TestEngineMatchesInterpreter(t *testing.T) {
	for _, g := range zoo() {
		for _, batch := range []int{1, 3} {
			eng := mustCompile(t, g)
			it := mustInterp(t, g)
			inNode := g.Node(g.Inputs[0])
			in := tensor.New(tensor.FP32, append(tensor.Shape{batch}, inNode.Attrs.Shape...)...)
			fillInput(in, batch)
			inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
			want, err := it.Run(inputs)
			if err != nil {
				t.Fatalf("%s: interpreter: %v", g.Name, err)
			}
			got, err := eng.Run(inputs)
			if err != nil {
				t.Fatalf("%s: engine: %v", g.Name, err)
			}
			for name, w := range want {
				d, err := tensor.MaxAbsDiff(w, got[name])
				if err != nil {
					t.Fatalf("%s/%s: %v", g.Name, name, err)
				}
				if d != 0 {
					t.Errorf("%s/%s batch %d: engine diverges from interpreter by %g", g.Name, name, batch, d)
				}
			}
		}
	}
}

func TestEngineParallelMatchesSequential(t *testing.T) {
	for _, g := range zoo() {
		seq := mustCompile(t, g, WithWorkers(1))
		par := mustCompile(t, g, WithWorkers(4), WithParallelThreshold(0))
		inNode := g.Node(g.Inputs[0])
		in := tensor.New(tensor.FP32, append(tensor.Shape{2}, inNode.Attrs.Shape...)...)
		fillInput(in, 9)
		inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
		want, err := seq.Run(inputs)
		if err != nil {
			t.Fatalf("%s: sequential: %v", g.Name, err)
		}
		got, err := par.Run(inputs)
		if err != nil {
			t.Fatalf("%s: parallel: %v", g.Name, err)
		}
		for name, w := range want {
			d, _ := tensor.MaxAbsDiff(w, got[name])
			if d != 0 {
				t.Errorf("%s/%s: parallel kernels diverge by %g", g.Name, name, d)
			}
		}
	}
}

func TestEngineRunBatch(t *testing.T) {
	g := nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 11})
	eng := mustCompile(t, g)
	// Requests with different internal batch sizes.
	var reqs []map[string]*tensor.Tensor
	for i, b := range []int{1, 3, 2} {
		in := tensor.New(tensor.FP32, b, 1, 32, 32)
		fillInput(in, i+1)
		reqs = append(reqs, map[string]*tensor.Tensor{g.Inputs[0]: in})
	}
	batched, err := eng.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(batched), len(reqs))
	}
	for r, req := range reqs {
		want, err := eng.Run(req)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			d, err := tensor.MaxAbsDiff(w, batched[r][name])
			if err != nil {
				t.Fatalf("req %d/%s: %v", r, name, err)
			}
			if d != 0 {
				t.Errorf("req %d/%s: batched run diverges by %g", r, name, d)
			}
		}
	}
	if _, err := eng.RunBatch(nil); err != nil {
		t.Errorf("empty RunBatch: %v", err)
	}
}

func TestEngineGoroutineSafety(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 12})
	eng := mustCompile(t, g)
	in := tensor.New(tensor.FP32, 1, 1, 28, 28)
	fillInput(in, 5)
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				out, err := eng.RunSingle(in)
				if err != nil {
					errs <- err
					return
				}
				if d, _ := tensor.MaxAbsDiff(want, out); d != 0 {
					errs <- fmt.Errorf("concurrent run diverged by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineArenaPlanReusesSlots(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 13})
	eng := mustCompile(t, g)
	intermediates := 0
	var sum int
	for _, v := range eng.vals {
		if v.loc.kind == locSlot {
			intermediates++
			sum += v.elems
		}
	}
	if eng.NumSlots() >= intermediates {
		t.Errorf("planner allocated %d slots for %d intermediates (no reuse)", eng.NumSlots(), intermediates)
	}
	if eng.ArenaFloatsPerSample() >= sum {
		t.Errorf("arena %d floats >= sum of intermediates %d (no reuse)", eng.ArenaFloatsPerSample(), sum)
	}
}

func TestEngineRunAllMatchesInterpreter(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 14})
	eng := mustCompile(t, g)
	it := mustInterp(t, g)
	in := tensor.New(tensor.FP32, 1, 1, 28, 28)
	fillInput(in, 3)
	inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
	want, err := it.RunAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunAll returned %d activations, want %d", len(got), len(want))
	}
	for name, w := range want {
		d, err := tensor.MaxAbsDiff(w, got[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d != 0 {
			t.Errorf("%s: RunAll diverges by %g", name, d)
		}
	}
}

func TestEngineInputValidation(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 15})
	eng := mustCompile(t, g)
	if _, err := eng.Run(map[string]*tensor.Tensor{}); err == nil {
		t.Error("engine accepted missing input")
	}
	bad := tensor.New(tensor.FP32, 1, 3, 28, 28)
	if _, err := eng.Run(map[string]*tensor.Tensor{"input": bad}); err == nil {
		t.Error("engine accepted wrong input shape")
	}
}

func TestEngineBatchMismatch(t *testing.T) {
	g := nn.NewGraph("two-in")
	g.MustAdd(&nn.Node{Name: "a", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{4}}})
	g.MustAdd(&nn.Node{Name: "b", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{4}}})
	g.MustAdd(&nn.Node{Name: "sum", Op: nn.OpAdd, Inputs: []string{"a", "b"}})
	g.Outputs = []string{"sum"}
	eng := mustCompile(t, g)
	a := tensor.New(tensor.FP32, 2, 4)
	b := tensor.New(tensor.FP32, 3, 4)
	if _, err := eng.Run(map[string]*tensor.Tensor{"a": a, "b": b}); err == nil {
		t.Error("engine accepted mismatched input batches")
	}
}

func TestEngineOutputConsumedDownstream(t *testing.T) {
	// A declared output that also feeds another node must remain valid
	// (outputs never live in recycled arena slots).
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true, Seed: 16})
	x := b.Input("input", 1, 8, 8)
	c := b.Conv(x, 1, 2, 3, 1, 1)
	r := b.Act(c, nn.OpReLU)
	g := b.Graph(c, r)
	eng := mustCompile(t, g)
	it := mustInterp(t, g)
	in := tensor.New(tensor.FP32, 1, 1, 8, 8)
	fillInput(in, 8)
	inputs := map[string]*tensor.Tensor{"input": in}
	want, err := it.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if d, _ := tensor.MaxAbsDiff(w, got[name]); d != 0 {
			t.Errorf("%s: diverges by %g", name, d)
		}
	}
}

func TestEngineQuantizedInputs(t *testing.T) {
	// Non-FP32 inputs are converted once at entry, like the interpreter
	// converts on use.
	g := nn.MLP("mlp", []int{8, 4}, nn.BuildOptions{Weights: true, Seed: 17})
	eng := mustCompile(t, g)
	it := mustInterp(t, g)
	in := tensor.New(tensor.FP32, 1, 8)
	fillInput(in, 2)
	h := in.Convert(tensor.FP16)
	want, err := it.Run(map[string]*tensor.Tensor{"input": h})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(map[string]*tensor.Tensor{"input": h})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if d, _ := tensor.MaxAbsDiff(w, got[name]); d != 0 {
			t.Errorf("%s: diverges by %g", name, d)
		}
	}
}

func TestRunnerFallsBackToInterpreter(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{}) // structure only, no weights
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine() != nil {
		t.Error("weightless graph unexpectedly compiled")
	}
	if _, err := Compile(g); err == nil {
		t.Error("Compile accepted a weightless graph")
	}
}

func TestRunnerUsesEngine(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 18})
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine() == nil {
		t.Error("weighted graph did not compile to an engine")
	}
}

func TestCPUBackendInterface(t *testing.T) {
	var b Backend = CPUBackend{}
	if b.Name() == "" {
		t.Error("backend has no name")
	}
	g := nn.MLP("mlp", []int{4, 2}, nn.BuildOptions{Weights: true, Seed: 19})
	exe, err := b.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 4)
	fillInput(in, 1)
	out, err := exe.Run(map[string]*tensor.Tensor{"input": in})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out[g.Outputs[0]].F32 {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("softmax output sums to %v", sum)
	}
}

func TestCompileRestoresOutShapes(t *testing.T) {
	// Compile must not clobber shapes a caller inferred for a different
	// batch size (see TestEndToEndMobileNetBlockShapes).
	g := nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 20})
	if err := g.InferShapes(2); err != nil {
		t.Fatal(err)
	}
	mustCompile(t, g)
	if got := g.Node(g.Outputs[0]).OutShape[0]; got != 2 {
		t.Errorf("Compile clobbered OutShape batch: got %d, want 2", got)
	}
}
