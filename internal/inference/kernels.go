package inference

import (
	"fmt"
	"math"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// conv2d implements grouped 2-D convolution with zero padding in NCHW
// layout. Depthwise convolution is the groups == channels special case.
func conv2d(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("conv wants NCHW, got %v", x.Shape)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, fmt.Errorf("conv has no weights (built with Weights: false?)")
	}
	a := n.Attrs
	batch, inC, inH, inW := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	groups := a.Groups
	if groups <= 0 {
		groups = 1
	}
	outC := a.OutC
	if n.Op == nn.OpDepthwiseConv {
		groups = inC
		if outC == 0 {
			outC = inC
		}
	}
	if inC%groups != 0 || outC%groups != 0 {
		return nil, fmt.Errorf("channels %d/outC %d not divisible by groups %d", inC, outC, groups)
	}
	wantW := tensor.Shape{outC, inC / groups, a.KernelH, a.KernelW}
	if !w.Shape.Equal(wantW) {
		return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, wantW)
	}
	outH := (inH+2*a.PadH-a.KernelH)/a.StrideH + 1
	outW := (inW+2*a.PadW-a.KernelW)/a.StrideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("conv output collapses to %dx%d", outH, outW)
	}

	xv := x.Float32s()
	wv := w.Float32s()
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
	}

	out := tensor.New(tensor.FP32, batch, outC, outH, outW)
	icPerG := inC / groups
	ocPerG := outC / groups

	for b := 0; b < batch; b++ {
		for oc := 0; oc < outC; oc++ {
			g := oc / ocPerG
			icBase := g * icPerG
			var b0 float32
			if bias != nil {
				b0 = bias[oc]
			}
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*a.StrideH - a.PadH
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*a.StrideW - a.PadW
					acc := b0
					for ic := 0; ic < icPerG; ic++ {
						xBase := ((b*inC + icBase + ic) * inH) * inW
						wBase := ((oc*icPerG + ic) * a.KernelH) * a.KernelW
						for ky := 0; ky < a.KernelH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							xRow := xBase + iy*inW
							wRow := wBase + ky*a.KernelW
							for kx := 0; kx < a.KernelW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								acc += xv[xRow+ix] * wv[wRow+kx]
							}
						}
					}
					out.F32[((b*outC+oc)*outH+oy)*outW+ox] = acc
				}
			}
		}
	}
	return out, nil
}

// dense implements a fully connected layer on [N, features] inputs.
func dense(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("dense wants [N,features], got %v", x.Shape)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, fmt.Errorf("dense has no weights")
	}
	batch, in := x.Shape[0], x.Shape[1]
	outF := n.Attrs.OutC
	want := tensor.Shape{outF, in}
	if !w.Shape.Equal(want) {
		return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
	}
	xv := x.Float32s()
	wv := w.Float32s()
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
	}
	out := tensor.New(tensor.FP32, batch, outF)
	for b := 0; b < batch; b++ {
		xRow := xv[b*in : (b+1)*in]
		for o := 0; o < outF; o++ {
			wRow := wv[o*in : (o+1)*in]
			var acc float32
			if bias != nil {
				acc = bias[o]
			}
			for i, xi := range xRow {
				acc += xi * wRow[i]
			}
			out.F32[b*outF+o] = acc
		}
	}
	return out, nil
}

// batchNorm applies inference-mode normalization per channel:
// y = gamma * (x - mean) / sqrt(var + eps) + beta.
func batchNorm(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("batchnorm wants NCHW, got %v", x.Shape)
	}
	c := x.Shape[1]
	scale, shift, err := bnScaleShift(n, c)
	if err != nil {
		return nil, err
	}

	xv := x.Float32s()
	out := tensor.New(tensor.FP32, x.Shape...)
	hw := x.Shape[2] * x.Shape[3]
	for b := 0; b < x.Shape[0]; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			s, sh := scale[ch], shift[ch]
			for i := 0; i < hw; i++ {
				out.F32[base+i] = xv[base+i]*s + sh
			}
		}
	}
	return out, nil
}

// pool implements max or average pooling with zero padding excluded from
// averages (count_include_pad = false).
func pool(n *nn.Node, x *tensor.Tensor, isMax bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("pool wants NCHW, got %v", x.Shape)
	}
	a := n.Attrs
	batch, c, inH, inW := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (inH+2*a.PadH-a.KernelH)/a.StrideH + 1
	outW := (inW+2*a.PadW-a.KernelW)/a.StrideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("pool output collapses to %dx%d", outH, outW)
	}
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, outH, outW)
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * inH * inW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					iy0 := oy*a.StrideH - a.PadH
					ix0 := ox*a.StrideW - a.PadW
					var acc float32
					count := 0
					first := true
					for ky := 0; ky < a.KernelH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							v := xv[base+iy*inW+ix]
							if isMax {
								if first || v > acc {
									acc = v
									first = false
								}
							} else {
								acc += v
								count++
							}
						}
					}
					if !isMax && count > 0 {
						acc /= float32(count)
					}
					out.F32[((b*c+ch)*outH+oy)*outW+ox] = acc
				}
			}
		}
	}
	return out, nil
}

// globalAvgPool reduces spatial dimensions to 1×1.
func globalAvgPool(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("global pool wants NCHW, got %v", x.Shape)
	}
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, 1, 1)
	hw := h * w
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			var sum float64
			for i := 0; i < hw; i++ {
				sum += float64(xv[base+i])
			}
			out.F32[b*c+ch] = float32(sum / float64(hw))
		}
	}
	return out, nil
}

// accumulate adds or multiplies y into out, supporting the [N,C,1,1]
// channel broadcast used by squeeze-excite blocks.
func accumulate(out, y *tensor.Tensor, mul bool) error {
	yv := y.Float32s()
	if y.Shape.Equal(out.Shape) {
		for i := range out.F32 {
			if mul {
				out.F32[i] *= yv[i]
			} else {
				out.F32[i] += yv[i]
			}
		}
		return nil
	}
	// Channel broadcast.
	if len(out.Shape) == 4 && len(y.Shape) == 4 &&
		y.Shape[0] == out.Shape[0] && y.Shape[1] == out.Shape[1] &&
		y.Shape[2] == 1 && y.Shape[3] == 1 {
		c := out.Shape[1]
		hw := out.Shape[2] * out.Shape[3]
		for b := 0; b < out.Shape[0]; b++ {
			for ch := 0; ch < c; ch++ {
				f := yv[b*c+ch]
				base := (b*c + ch) * hw
				for i := 0; i < hw; i++ {
					if mul {
						out.F32[base+i] *= f
					} else {
						out.F32[base+i] += f
					}
				}
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %v vs %v", tensor.ErrShape, out.Shape, y.Shape)
}

// concatChannels concatenates NCHW tensors along the channel axis.
func concatChannels(ts []*tensor.Tensor) (*tensor.Tensor, error) {
	first := ts[0]
	if len(first.Shape) != 4 {
		return nil, fmt.Errorf("concat wants NCHW, got %v", first.Shape)
	}
	batch, h, w := first.Shape[0], first.Shape[2], first.Shape[3]
	totalC := 0
	for _, t := range ts {
		if len(t.Shape) != 4 || t.Shape[0] != batch || t.Shape[2] != h || t.Shape[3] != w {
			return nil, fmt.Errorf("%w: concat input %v vs %v", tensor.ErrShape, t.Shape, first.Shape)
		}
		totalC += t.Shape[1]
	}
	out := tensor.New(tensor.FP32, batch, totalC, h, w)
	hw := h * w
	for b := 0; b < batch; b++ {
		cOff := 0
		for _, t := range ts {
			tv := t.Float32s()
			c := t.Shape[1]
			src := tv[b*c*hw : (b+1)*c*hw]
			dst := out.F32[(b*totalC+cOff)*hw : (b*totalC+cOff+c)*hw]
			copy(dst, src)
			cOff += c
		}
	}
	return out, nil
}

// upsample performs nearest-neighbour upsampling by an integer factor.
func upsample(x *tensor.Tensor, scale int) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("upsample wants NCHW, got %v", x.Shape)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("upsample scale %d", scale)
	}
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, h*scale, w*scale)
	oh, ow := h*scale, w*scale
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				iy := oy / scale
				for ox := 0; ox < ow; ox++ {
					out.F32[outBase+oy*ow+ox] = xv[inBase+iy*w+ox/scale]
				}
			}
		}
	}
	return out, nil
}

// softmaxRows applies softmax along the last axis of a [N, features]
// tensor (rank-4 inputs are treated per channel vector at each pixel
// only when flattened; detection heads use raw logits instead).
func softmaxRows(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("softmax wants [N,features], got %v", x.Shape)
	}
	batch, f := x.Shape[0], x.Shape[1]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, f)
	for b := 0; b < batch; b++ {
		row, err := tensor.FromSlice(xv[b*f:(b+1)*f], f)
		if err != nil {
			return nil, err
		}
		sm := tensor.Softmax(row)
		copy(out.F32[b*f:(b+1)*f], sm.F32)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Compiled-engine kernels.
//
// Everything below is the Engine's kernel set: binders run once at
// compile time (resolving attributes, checking shapes and dequantizing
// FP16/INT8 weights to FP32), and the returned closures operate on raw
// float32 buffers whose per-sample geometry is fixed — only the batch
// dimension varies per call. The hot kernels (conv2d, dense, pool) split
// their outermost loops across the bounded worker pool in parallel.go.
// Every kernel keeps the per-element accumulation order of the
// interpreter above, so engine results are bitwise identical to the
// reference semantics at any worker count.
// ---------------------------------------------------------------------------

// kernelFunc executes one bound operator for a batch. dst and srcs are
// batch-major buffers laid out as batch x per-sample elements.
type kernelFunc func(rc *runCtx, dst []float32, srcs [][]float32) error

// epilogue is a producer's fused element-wise tail: an optional leading
// per-channel affine (a folded batch-norm) followed by an activation
// tail. The common conv → batch-norm → ReLU block compiles to the
// branch-free inline loop in apply; exotic chains fall back to composed
// closures. Applied to the same float32 the unfused steps would read,
// it yields bitwise-identical results.
type epilogue struct {
	// scale/shift is the leading per-channel affine; nil when the chain
	// starts with an activation.
	scale, shift []float32
	// relu marks a tail of exactly one ReLU (inlined fast path).
	relu bool
	// fn is a channel-independent activation tail (possibly several
	// activations composed); nil when relu or no tail.
	fn func(float32) float32
	// fnCh is the rare per-channel tail (a second batch-norm somewhere
	// in the chain); nil otherwise.
	fnCh []func(float32) float32
}

// apply maps one channel's epilogue over a just-written output span,
// while it is still cache-hot from the producing kernel.
func (ep *epilogue) apply(span []float32, ch int) {
	if ep.scale != nil {
		s, sh := ep.scale[ch], ep.shift[ch]
		switch {
		case ep.relu:
			tensor.ScaleShiftReluF32(span, s, sh)
		case ep.fn != nil:
			f := ep.fn
			for i, v := range span {
				span[i] = f(v*s + sh)
			}
		case ep.fnCh != nil:
			f := ep.fnCh[ch]
			for i, v := range span {
				span[i] = f(v*s + sh)
			}
		default:
			tensor.ScaleShiftF32(span, s, sh)
		}
		return
	}
	switch {
	case ep.relu:
		tensor.ReluF32(span)
	case ep.fn != nil:
		f := ep.fn
		for i, v := range span {
			span[i] = f(v)
		}
	case ep.fnCh != nil:
		f := ep.fnCh[ch]
		for i, v := range span {
			span[i] = f(v)
		}
	}
}

// scalar returns the epilogue for channel ch as one composed function
// (the dense binder precomputes these per output feature).
func (ep *epilogue) scalar(ch int) func(float32) float32 {
	var tail func(float32) float32
	switch {
	case ep.relu:
		tail = func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		}
	case ep.fn != nil:
		tail = ep.fn
	case ep.fnCh != nil:
		tail = ep.fnCh[ch]
	}
	if ep.scale == nil {
		return tail
	}
	s, sh := ep.scale[ch], ep.shift[ch]
	if tail == nil {
		return func(v float32) float32 { return v*s + sh }
	}
	return func(v float32) float32 { return tail(v*s + sh) }
}

// bindStats accumulates compile-time facts the engine reports after
// binding: resident weight bytes feed the modeled-traffic metric. A
// nil receiver skips accounting (re-binds of already-counted weights,
// the RunAll expansion).
type bindStats struct{ weightBytes int }

// addWeightBytes records n resident weight bytes.
func (s *bindStats) addWeightBytes(n int) {
	if s != nil {
		s.weightBytes += n
	}
}

// bindKernel resolves a node to an executable kernel closure given the
// per-sample shapes of its inputs and output, plus the kernel's planned
// scratch requirement (zero for most ops; the GEMM-lowered conv/dense
// kernels declare pack and tile buffers). ep, when non-nil, is the
// fused epilogue the lowering pipeline absorbed into the producer
// (conv/dense/batch-norm), applied while the output is cache-hot. fp16
// selects the FP16-compute binding: conv/dense weights stored FP16
// stay half-width in their packed panels and widen on load instead of
// dequantizing at compile time.
func bindKernel(n *nn.Node, ins []tensor.Shape, out tensor.Shape, ep *epilogue, fp16 bool, stats *bindStats) (kernelFunc, scratchSpec, error) {
	if ep != nil && !fusesActivation(n.Op) {
		return nil, scratchSpec{}, fmt.Errorf("op %s cannot absorb a fused epilogue", n.Op)
	}
	switch n.Op {
	case nn.OpConv, nn.OpDepthwiseConv:
		return bindConv(n, ins[0], out, ep, fp16, stats)
	case nn.OpDense:
		return bindDense(n, ins[0], out, ep, fp16, stats)
	}
	// Every other op dequantizes its weights to FP32 at bind time (most
	// have none; batch-norm keeps its folded affine), so they are
	// FP32-resident regardless of stored precision.
	for _, w := range n.Weights {
		stats.addWeightBytes(w.NumElements() * 4)
	}
	var (
		kern kernelFunc
		err  error
	)
	switch n.Op {
	case nn.OpBatchNorm:
		kern, err = bindBatchNorm(n, ins[0], ep)
	case nn.OpReLU, nn.OpReLU6, nn.OpLeakyReLU, nn.OpSigmoid, nn.OpTanh,
		nn.OpHSwish, nn.OpHSigmoid, nn.OpMish:
		kern, err = bindActivation(n)
	case nn.OpMaxPool:
		kern, err = bindPool(n, ins[0], out, true)
	case nn.OpAvgPool:
		kern, err = bindPool(n, ins[0], out, false)
	case nn.OpGlobalAvgPool:
		kern, err = bindGlobalAvgPool(ins[0])
	case nn.OpAdd, nn.OpMul:
		kern, err = bindAccumulate(n, ins, out)
	case nn.OpConcat:
		kern, err = bindConcat(ins, out)
	case nn.OpUpsample:
		kern, err = bindUpsample(n, ins[0], out)
	case nn.OpSoftmax:
		kern, err = bindSoftmax(ins[0])
	case nn.OpFlatten, nn.OpIdentity:
		kern = bindCopy()
	default:
		err = fmt.Errorf("unsupported op %s", n.Op)
	}
	return kern, scratchSpec{}, err
}

// fusesActivation reports the ops whose FP32 binders accept a fused
// epilogue (the kernel-side mirror of ir.IsFusableProducer).
func fusesActivation(op nn.OpType) bool {
	switch op {
	case nn.OpConv, nn.OpDepthwiseConv, nn.OpDense, nn.OpBatchNorm:
		return true
	}
	return false
}

// convGeom is the compile-time geometry of one convolution.
type convGeom struct {
	inC, inH, inW    int
	outC, outH, outW int
	kh, kw           int
	sh, sw           int
	ph, pw           int
	icPerG, ocPerG   int
}

// convGeometry derives the compile-time geometry of a conv node and
// validates its weight tensor, shared by the FP32 and quantized binders.
func convGeometry(n *nn.Node, in, out tensor.Shape) (convGeom, *tensor.Tensor, error) {
	if len(in) != 3 {
		return convGeom{}, nil, fmt.Errorf("conv wants NCHW, got per-sample %v", in)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return convGeom{}, nil, fmt.Errorf("conv has no weights (built with Weights: false?)")
	}
	a := n.Attrs
	inC, inH, inW := in[0], in[1], in[2]
	groups := a.Groups
	if groups <= 0 {
		groups = 1
	}
	outC := a.OutC
	if n.Op == nn.OpDepthwiseConv {
		groups = inC
		if outC == 0 {
			outC = inC
		}
	}
	if inC%groups != 0 || outC%groups != 0 {
		return convGeom{}, nil, fmt.Errorf("channels %d/outC %d not divisible by groups %d", inC, outC, groups)
	}
	wantW := tensor.Shape{outC, inC / groups, a.KernelH, a.KernelW}
	if !w.Shape.Equal(wantW) {
		return convGeom{}, nil, fmt.Errorf("weight shape %v, want %v", w.Shape, wantW)
	}
	return convGeom{
		inC: inC, inH: inH, inW: inW,
		outC: outC, outH: out[1], outW: out[2],
		kh: a.KernelH, kw: a.KernelW,
		sh: a.StrideH, sw: a.StrideW,
		ph: a.PadH, pw: a.PadW,
		icPerG: inC / groups, ocPerG: outC / groups,
	}, w, nil
}

func bindConv(n *nn.Node, in, out tensor.Shape, ep *epilogue, fp16 bool, stats *bindStats) (kernelFunc, scratchSpec, error) {
	g, w, err := convGeometry(n, in, out)
	if err != nil {
		return nil, scratchSpec{}, err
	}
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
		stats.addWeightBytes(len(bias) * 4)
	}
	// Convolutions with a real channel reduction lower onto the packed
	// GEMM micro-kernels (gemmconv.go): register-blocked tiles with the
	// im2col gather fused into the per-tile B pack. Shallow reductions
	// (depthwise, stem layers) keep the direct kernel-outer form, which
	// streams the input exactly once.
	if convGemmEligible(g) {
		// Under FP16-compute, FP16-stored weights keep their half-width
		// panels and widen on load (see bindConvGemm).
		wf16 := fp16 && w.DType == tensor.FP16
		if wf16 {
			stats.addWeightBytes(w.NumElements() * 2)
		} else {
			stats.addWeightBytes(w.NumElements() * 4)
		}
		kern, spec := bindConvGemm(g, w, bias, ep, wf16)
		return kern, spec, nil
	}
	wv := w.Float32s() // dequantized once, at compile time
	stats.addWeightBytes(len(wv) * 4)
	pointwise := g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
	planeCost := int64(g.outH*g.outW) * int64(g.icPerG*g.kh*g.kw) * 2
	px := g.outH * g.outW
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*g.outC, planeCost, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				b, oc := p/g.outC, p%g.outC
				if pointwise {
					convPlanePointwise(dst, xv, wv, bias, &g, b, oc)
				} else {
					convPlane(dst, xv, wv, bias, &g, b, oc)
				}
				if ep != nil {
					ep.apply(dst[(b*g.outC+oc)*px:(b*g.outC+oc+1)*px], oc)
				}
			}
		})
		return nil
	}, scratchSpec{}, nil
}

// convPlane computes one (batch, output-channel) plane in kernel-outer
// form: the plane is initialized with the bias, then every kernel tap
// (ic, ky, kx) accumulates a scaled, shifted input row into the output
// rows. Inner loops run over whole output rows — contiguous for
// stride 1 — so per-tap setup amortizes over outW elements instead of
// paying slice/bounds overhead per pixel. Each output element still
// receives its contributions in (ic, ky, kx) order, so results are
// bitwise identical to the interpreter's per-pixel accumulation.
func convPlane(dst, xv, wv, bias []float32, g *convGeom, b, oc int) {
	grp := oc / g.ocPerG
	icBase := grp * g.icPerG
	var b0 float32
	if bias != nil {
		b0 = bias[oc]
	}
	outBase := (b*g.outC + oc) * g.outH * g.outW
	plane := dst[outBase : outBase+g.outH*g.outW]
	for i := range plane {
		plane[i] = b0
	}
	for ic := 0; ic < g.icPerG; ic++ {
		xBase := (b*g.inC + icBase + ic) * g.inH * g.inW
		wBase := (oc*g.icPerG + ic) * g.kh * g.kw
		for ky := 0; ky < g.kh; ky++ {
			for kx := 0; kx < g.kw; kx++ {
				w := wv[wBase+ky*g.kw+kx]
				// Output columns whose input column ox*sw-pw+kx stays in
				// bounds; clipping hoisted out of the row loops.
				oxLo := 0
				if g.pw > kx {
					oxLo = (g.pw - kx + g.sw - 1) / g.sw
				}
				oxHi := 0
				if maxIx := g.inW - 1 + g.pw - kx; maxIx >= 0 {
					oxHi = maxIx/g.sw + 1
					if oxHi > g.outW {
						oxHi = g.outW
					}
				}
				if oxLo >= oxHi {
					continue
				}
				for oy := 0; oy < g.outH; oy++ {
					iy := oy*g.sh - g.ph + ky
					if iy < 0 || iy >= g.inH {
						continue
					}
					xRow := xv[xBase+iy*g.inW : xBase+(iy+1)*g.inW]
					oRow := plane[oy*g.outW : (oy+1)*g.outW]
					switch {
					case g.sw == 1:
						o := oRow[oxLo:oxHi]
						x := xRow[oxLo-g.pw+kx:]
						tensor.AxpyF32(o, x, w)
					case g.sw == 2:
						o := oRow[oxLo:oxHi]
						x := xRow[oxLo*2-g.pw+kx:]
						tensor.AxpyStride2F32(o, x, w)
					default:
						ix := oxLo*g.sw - g.pw + kx
						for ox := oxLo; ox < oxHi; ox++ {
							oRow[ox] += w * xRow[ix]
							ix += g.sw
						}
					}
				}
			}
		}
	}
}

// convPlanePointwise is the 1x1/stride-1/no-pad fast path: the plane is
// a bias-initialized accumulation of scaled input planes. Per output
// element the input channels still accumulate in ascending order, so
// results are bitwise identical to the general path.
func convPlanePointwise(dst, xv, wv, bias []float32, g *convGeom, b, oc int) {
	grp := oc / g.ocPerG
	icBase := grp * g.icPerG
	hw := g.inH * g.inW
	var b0 float32
	if bias != nil {
		b0 = bias[oc]
	}
	out := dst[(b*g.outC+oc)*hw : (b*g.outC+oc+1)*hw]
	for i := range out {
		out[i] = b0
	}
	for ic := 0; ic < g.icPerG; ic++ {
		f := wv[oc*g.icPerG+ic]
		xPlane := xv[(b*g.inC+icBase+ic)*hw : (b*g.inC+icBase+ic+1)*hw]
		tensor.AxpyF32(out, xPlane, f)
	}
}

// denseGemmMinBatch is the batch size from which a dense layer runs
// through the GEMM micro-kernels (N = samples): below it the partially
// filled tile cannot beat the scalar dot, above it the register-blocked
// tile reuses each weight panel across the whole batch. Both paths are
// bitwise identical, so the cutover is invisible.
const denseGemmMinBatch = 4

func bindDense(n *nn.Node, in, out tensor.Shape, ep *epilogue, fp16 bool, stats *bindStats) (kernelFunc, scratchSpec, error) {
	if len(in) != 1 {
		return nil, scratchSpec{}, fmt.Errorf("dense wants [N,features], got per-sample %v", in)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, scratchSpec{}, fmt.Errorf("dense has no weights")
	}
	inF, outF := in[0], out[0]
	want := tensor.Shape{outF, inF}
	if !w.Shape.Equal(want) {
		return nil, scratchSpec{}, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
	}
	// Under FP16-compute, FP16-stored weights stay half-width: the GEMM
	// path packs the raw halfword codes and widens the panels on load;
	// the small-batch scalar path converts each element as it is read.
	// Either way every multiply sees the exact value FloatToFP16 round-
	// tripped, so both paths stay bitwise identical to a bind-time
	// dequantized plan.
	wf16 := fp16 && w.DType == tensor.FP16
	var wv []float32
	var wh []uint16
	if wf16 {
		wh = w.F16
		stats.addWeightBytes(len(wh) * 2)
	} else {
		wv = w.Float32s()
		stats.addWeightBytes(len(wv) * 4)
	}
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
		stats.addWeightBytes(len(bias) * 4)
	}
	// Fused epilogue, precomposed per output feature: one call per
	// output scalar next to an inF-long dot is noise.
	var fs []func(float32) float32
	if ep != nil {
		fs = make([]func(float32) float32, outF)
		for o := range fs {
			fs[o] = ep.scalar(o)
		}
	}
	// GEMM lowering: M = out features, N = samples, K = in features.
	// The weight matrix packs once at bind time; the per-tile B pack
	// transposes the activation rows. C comes out sample-major per tile
	// and is scattered back with the epilogue applied in the same pass.
	// N is the batch here — small by construction — so cap the tile
	// width at 16: a 48-wide ZMM tile at batch 8 spends 5/6 of its
	// lanes on padding and measures ~8x slower than a narrow tile.
	kern := tensor.PickGemmF32MaxWidth(16)
	mr, nr := kern.MR, kern.NR
	panels := (outF + mr - 1) / mr
	var apack []float32
	var apackH []uint16
	if wf16 {
		apackH = make([]uint16, kern.PackedASize(outF, inF))
		kern.PackAF16(apackH, wh, inF, outF, inF)
	} else {
		apack = make([]float32, kern.PackedASize(outF, inF))
		kern.PackA(apack, wv, inF, outF, inF)
	}
	biasPad := make([]float32, panels*mr)
	if bias != nil {
		copy(biasPad, bias[:outF])
	}
	scratch := inF*nr + mr*nr
	perCall := len(apackH)
	unitCost := int64(inF) * 2
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		if rc.batch >= denseGemmMinBatch {
			apack := apack
			if apackH != nil {
				// Widen the half-width weight panels into call scratch —
				// the FP16-compute "convert on load" of the A operand.
				apack = rc.f32Call(len(apackH))
				tensor.F16ToF32(apack, apackH)
			}
			nt := (rc.batch + nr - 1) / nr
			rc.parallelForWorker(nt, unitCost*int64(nr)*int64(outF), func(worker, lo, hi int) {
				ws := rc.f32Worker(worker, scratch)
				bpack := ws[:inF*nr]
				ctile := ws[inF*nr:]
				for t := lo; t < hi; t++ {
					j0 := t * nr
					jw := rc.batch - j0
					if jw > nr {
						jw = nr
					}
					packDenseTileF32(bpack, xv, inF, nr, j0, jw)
					for p := 0; p < panels; p++ {
						o0 := p * mr
						mh := outF - o0
						if mh > mr {
							mh = mr
						}
						kern.Run(apack[p*mr*inF:(p+1)*mr*inF], bpack, nr, inF, biasPad[o0:o0+mr], ctile, nr)
						for i := 0; i < mh; i++ {
							o := o0 + i
							for j := 0; j < jw; j++ {
								v := ctile[i*nr+j]
								if fs != nil {
									v = fs[o](v)
								}
								dst[(j0+j)*outF+o] = v
							}
						}
					}
				}
			})
			return nil
		}
		// One unit = one output scalar; chunks span (batch, out-feature)
		// pairs so a single sample still fans out across the pool.
		rc.parallelFor(rc.batch*outF, unitCost, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				b, o := r/outF, r%outF
				xRow := xv[b*inF : (b+1)*inF]
				var acc float32
				if bias != nil {
					acc = bias[o]
				}
				if wh != nil {
					wRow := wh[o*inF : (o+1)*inF]
					wRow = wRow[:len(xRow)]
					for i, xi := range xRow {
						acc += xi * tensor.FP16ToFloat(wRow[i])
					}
				} else {
					wRow := wv[o*inF : (o+1)*inF]
					wRow = wRow[:len(xRow)]
					for i, xi := range xRow {
						acc += xi * wRow[i]
					}
				}
				if fs != nil {
					acc = fs[o](acc)
				}
				dst[r] = acc
			}
		})
		return nil
	}, scratchSpec{f32PerWorker: scratch, f32PerCall: perCall}, nil
}

// bnScaleShift resolves a batch-norm node's per-channel affine. The
// lowering pipeline's constant-folding pass materializes it as derived
// weights (ir.FoldScaleKey/FoldShiftKey); nodes bound outside the
// pipeline fold on the spot through the same nn.FoldBatchNormStats
// arithmetic, so both routes are bitwise identical.
func bnScaleShift(n *nn.Node, c int) (scale, shift []float32, err error) {
	if st, sh := n.Weight(ir.FoldScaleKey), n.Weight(ir.FoldShiftKey); st != nil && sh != nil {
		return st.Float32s(), sh.Float32s(), nil
	}
	gamma, beta := n.Weight(nn.GammaKey), n.Weight(nn.BetaKey)
	mean, variance := n.Weight(nn.MeanKey), n.Weight(nn.VarKey)
	if gamma == nil || beta == nil || mean == nil || variance == nil {
		return nil, nil, fmt.Errorf("batchnorm missing statistics")
	}
	if gamma.NumElements() != c {
		return nil, nil, fmt.Errorf("batchnorm gamma has %d elements for %d channels", gamma.NumElements(), c)
	}
	scale, shift = nn.FoldBatchNormStats(
		gamma.Float32s(), beta.Float32s(), mean.Float32s(), variance.Float32s(), n.Attrs.Eps)
	return scale, shift, nil
}

func bindBatchNorm(n *nn.Node, in tensor.Shape, ep *epilogue) (kernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("batchnorm wants NCHW, got per-sample %v", in)
	}
	c := in[0]
	scale, shift, err := bnScaleShift(n, c)
	if err != nil {
		return nil, err
	}
	if len(scale) != c {
		return nil, fmt.Errorf("batchnorm has %d folded channels for %d channels", len(scale), c)
	}
	// The producer's own affine and any fused tail collapse into the
	// same per-channel fast paths the conv epilogue uses: the common
	// batch-norm + ReLU pair runs branch-lean and call-free.
	reluTail := ep != nil && ep.relu && ep.scale == nil
	var fs []func(float32) float32
	if ep != nil && !reluTail {
		fs = make([]func(float32) float32, c)
		for ch := range fs {
			fs[ch] = ep.scalar(ch)
		}
	}
	hw := in[1] * in[2]
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(hw)*2, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * hw
				s, sh := scale[p%c], shift[p%c]
				x := xv[base : base+hw]
				out := dst[base : base+hw]
				out = out[:len(x)]
				switch {
				case reluTail:
					for i, v := range x {
						v = v*s + sh
						if v < 0 {
							v = 0
						}
						out[i] = v
					}
				case fs != nil:
					f := fs[p%c]
					for i, v := range x {
						out[i] = f(v*s + sh)
					}
				default:
					for i, v := range x {
						out[i] = v*s + sh
					}
				}
			}
		})
		return nil
	}, nil
}

// activationFn resolves an activation node to its scalar function and
// an approximate per-element op cost, shared by the FP32 binder and the
// quantized LUT builder.
func activationFn(n *nn.Node) (func(float32) float32, int64, error) {
	var f func(float32) float32
	var unitCost int64 = 4
	switch n.Op {
	case nn.OpReLU:
		f = func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		}
	case nn.OpReLU6:
		f = relu6
	case nn.OpLeakyReLU:
		alpha := n.Attrs.Alpha
		if alpha == 0 {
			alpha = 0.1
		}
		f = func(v float32) float32 {
			if v < 0 {
				return alpha * v
			}
			return v
		}
	case nn.OpSigmoid:
		f, unitCost = sigmoid, 32
	case nn.OpTanh:
		f, unitCost = func(v float32) float32 { return float32(math.Tanh(float64(v))) }, 32
	case nn.OpHSwish:
		f = func(v float32) float32 { return v * relu6(v+3) / 6 }
	case nn.OpHSigmoid:
		f = func(v float32) float32 { return relu6(v+3) / 6 }
	case nn.OpMish:
		f, unitCost = func(v float32) float32 {
			sp := math.Log1p(math.Exp(float64(v))) // softplus
			return float32(float64(v) * math.Tanh(sp))
		}, 64
	default:
		return nil, 0, fmt.Errorf("unsupported activation %s", n.Op)
	}
	return f, unitCost, nil
}

func bindActivation(n *nn.Node) (kernelFunc, error) {
	f, unitCost, err := activationFn(n)
	if err != nil {
		return nil, err
	}
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(len(dst), unitCost, func(lo, hi int) {
			x := xv[lo:hi]
			out := dst[lo:hi]
			out = out[:len(x)]
			for i, v := range x {
				out[i] = f(v)
			}
		})
		return nil
	}, nil
}

func bindPool(n *nn.Node, in, out tensor.Shape, isMax bool) (kernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("pool wants NCHW, got per-sample %v", in)
	}
	a := n.Attrs
	c, inH, inW := in[0], in[1], in[2]
	outH, outW := out[1], out[2]
	planeCost := int64(outH*outW) * int64(a.KernelH*a.KernelW)
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, planeCost, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				base := p * inH * inW
				outBase := p * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy0 := oy*a.StrideH - a.PadH
					kyLo := 0
					if iy0 < 0 {
						kyLo = -iy0
					}
					kyHi := a.KernelH
					if iy0+a.KernelH > inH {
						kyHi = inH - iy0
					}
					for ox := 0; ox < outW; ox++ {
						ix0 := ox*a.StrideW - a.PadW
						kxLo := 0
						if ix0 < 0 {
							kxLo = -ix0
						}
						kxHi := a.KernelW
						if ix0+a.KernelW > inW {
							kxHi = inW - ix0
						}
						var acc float32
						if isMax {
							first := true
							for ky := kyLo; ky < kyHi; ky++ {
								row := base + (iy0+ky)*inW + ix0
								for kx := kxLo; kx < kxHi; kx++ {
									v := xv[row+kx]
									if first || v > acc {
										acc = v
										first = false
									}
								}
							}
						} else {
							for ky := kyLo; ky < kyHi; ky++ {
								row := base + (iy0+ky)*inW + ix0
								for kx := kxLo; kx < kxHi; kx++ {
									acc += xv[row+kx]
								}
							}
							if count := (kyHi - kyLo) * (kxHi - kxLo); count > 0 {
								acc /= float32(count)
							}
						}
						dst[outBase+oy*outW+ox] = acc
					}
				}
			}
		})
		return nil
	}, nil
}

func bindGlobalAvgPool(in tensor.Shape) (kernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("global pool wants NCHW, got per-sample %v", in)
	}
	c, hw := in[0], in[1]*in[2]
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(hw), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				x := xv[p*hw : (p+1)*hw]
				var sum float64
				for _, v := range x {
					sum += float64(v)
				}
				dst[p] = float32(sum / float64(hw))
			}
		})
		return nil
	}, nil
}

func bindAccumulate(n *nn.Node, ins []tensor.Shape, out tensor.Shape) (kernelFunc, error) {
	mul := n.Op == nn.OpMul
	// Classify every extra operand at compile time: full elementwise or
	// the [N,C,1,1] channel broadcast used by squeeze-excite blocks.
	broadcast := make([]bool, len(ins))
	for i := 1; i < len(ins); i++ {
		s := ins[i]
		switch {
		case s.Equal(out):
			broadcast[i] = false
		case len(out) == 3 && len(s) == 3 && s[0] == out[0] && s[1] == 1 && s[2] == 1:
			broadcast[i] = true
		default:
			return nil, fmt.Errorf("%w: %v vs %v", tensor.ErrShape, out, s)
		}
	}
	var c, hw int
	if len(out) == 3 {
		c, hw = out[0], out[1]*out[2]
	}
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		copy(dst, srcs[0])
		for i := 1; i < len(srcs); i++ {
			yv := srcs[i]
			if !broadcast[i] {
				rc.parallelFor(len(dst), 1, func(lo, hi int) {
					y := yv[lo:hi]
					out := dst[lo:hi]
					out = out[:len(y)]
					if mul {
						for j, v := range y {
							out[j] *= v
						}
					} else {
						for j, v := range y {
							out[j] += v
						}
					}
				})
				continue
			}
			rc.parallelFor(rc.batch*c, int64(hw), func(lo, hi int) {
				for p := lo; p < hi; p++ {
					f := yv[p]
					out := dst[p*hw : (p+1)*hw]
					if mul {
						for j := range out {
							out[j] *= f
						}
					} else {
						for j := range out {
							out[j] += f
						}
					}
				}
			})
		}
		return nil
	}, nil
}

func bindConcat(ins []tensor.Shape, out tensor.Shape) (kernelFunc, error) {
	if len(out) != 3 {
		return nil, fmt.Errorf("concat wants NCHW, got per-sample %v", out)
	}
	hw := out[1] * out[2]
	sizes := make([]int, len(ins)) // per-sample float counts
	for i, s := range ins {
		if len(s) != 3 || s[1] != out[1] || s[2] != out[2] {
			return nil, fmt.Errorf("%w: concat input %v vs %v", tensor.ErrShape, s, out)
		}
		sizes[i] = s[0] * hw
	}
	totalPer := out.NumElements()
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		for b := 0; b < rc.batch; b++ {
			off := b * totalPer
			for i, src := range srcs {
				sz := sizes[i]
				copy(dst[off:off+sz], src[b*sz:(b+1)*sz])
				off += sz
			}
		}
		return nil
	}, nil
}

func bindUpsample(n *nn.Node, in, out tensor.Shape) (kernelFunc, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("upsample wants NCHW, got per-sample %v", in)
	}
	scale := n.Attrs.Scale
	if scale <= 0 {
		return nil, fmt.Errorf("upsample scale %d", scale)
	}
	c, h, w := in[0], in[1], in[2]
	oh, ow := out[1], out[2]
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch*c, int64(oh*ow), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				inBase := p * h * w
				outBase := p * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy / scale
					inRow := inBase + iy*w
					outRow := outBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						dst[outRow+ox] = xv[inRow+ox/scale]
					}
				}
			}
		})
		return nil
	}, nil
}

func bindSoftmax(in tensor.Shape) (kernelFunc, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("softmax wants [N,features], got per-sample %v", in)
	}
	f := in[0]
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		xv := srcs[0]
		rc.parallelFor(rc.batch, int64(f)*32, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				row := xv[b*f : (b+1)*f]
				out := dst[b*f : (b+1)*f]
				out = out[:len(row)]
				// Mirrors tensor.Softmax exactly (including its
				// intermediate float32 rounding) for bit parity with the
				// interpreter.
				maxV := row[0]
				for _, v := range row[1:] {
					if v > maxV {
						maxV = v
					}
				}
				var sum float64
				for i, v := range row {
					e := math.Exp(float64(v - maxV))
					out[i] = float32(e)
					sum += e
				}
				for i := range out {
					out[i] = float32(float64(out[i]) / sum)
				}
			}
		})
		return nil
	}, nil
}

func bindCopy() kernelFunc {
	return func(rc *runCtx, dst []float32, srcs [][]float32) error {
		copy(dst, srcs[0])
		return nil
	}
}
