package inference

import (
	"fmt"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// conv2d implements grouped 2-D convolution with zero padding in NCHW
// layout. Depthwise convolution is the groups == channels special case.
func conv2d(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("conv wants NCHW, got %v", x.Shape)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, fmt.Errorf("conv has no weights (built with Weights: false?)")
	}
	a := n.Attrs
	batch, inC, inH, inW := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	groups := a.Groups
	if groups <= 0 {
		groups = 1
	}
	outC := a.OutC
	if n.Op == nn.OpDepthwiseConv {
		groups = inC
		if outC == 0 {
			outC = inC
		}
	}
	if inC%groups != 0 || outC%groups != 0 {
		return nil, fmt.Errorf("channels %d/outC %d not divisible by groups %d", inC, outC, groups)
	}
	wantW := tensor.Shape{outC, inC / groups, a.KernelH, a.KernelW}
	if !w.Shape.Equal(wantW) {
		return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, wantW)
	}
	outH := (inH+2*a.PadH-a.KernelH)/a.StrideH + 1
	outW := (inW+2*a.PadW-a.KernelW)/a.StrideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("conv output collapses to %dx%d", outH, outW)
	}

	xv := x.Float32s()
	wv := w.Float32s()
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
	}

	out := tensor.New(tensor.FP32, batch, outC, outH, outW)
	icPerG := inC / groups
	ocPerG := outC / groups

	for b := 0; b < batch; b++ {
		for oc := 0; oc < outC; oc++ {
			g := oc / ocPerG
			icBase := g * icPerG
			var b0 float32
			if bias != nil {
				b0 = bias[oc]
			}
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*a.StrideH - a.PadH
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*a.StrideW - a.PadW
					acc := b0
					for ic := 0; ic < icPerG; ic++ {
						xBase := ((b*inC + icBase + ic) * inH) * inW
						wBase := ((oc*icPerG + ic) * a.KernelH) * a.KernelW
						for ky := 0; ky < a.KernelH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							xRow := xBase + iy*inW
							wRow := wBase + ky*a.KernelW
							for kx := 0; kx < a.KernelW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								acc += xv[xRow+ix] * wv[wRow+kx]
							}
						}
					}
					out.F32[((b*outC+oc)*outH+oy)*outW+ox] = acc
				}
			}
		}
	}
	return out, nil
}

// dense implements a fully connected layer on [N, features] inputs.
func dense(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("dense wants [N,features], got %v", x.Shape)
	}
	w := n.Weight(nn.WeightKey)
	if w == nil {
		return nil, fmt.Errorf("dense has no weights")
	}
	batch, in := x.Shape[0], x.Shape[1]
	outF := n.Attrs.OutC
	want := tensor.Shape{outF, in}
	if !w.Shape.Equal(want) {
		return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
	}
	xv := x.Float32s()
	wv := w.Float32s()
	var bias []float32
	if bt := n.Weight(nn.BiasKey); bt != nil {
		bias = bt.Float32s()
	}
	out := tensor.New(tensor.FP32, batch, outF)
	for b := 0; b < batch; b++ {
		xRow := xv[b*in : (b+1)*in]
		for o := 0; o < outF; o++ {
			wRow := wv[o*in : (o+1)*in]
			var acc float32
			if bias != nil {
				acc = bias[o]
			}
			for i, xi := range xRow {
				acc += xi * wRow[i]
			}
			out.F32[b*outF+o] = acc
		}
	}
	return out, nil
}

// batchNorm applies inference-mode normalization per channel:
// y = gamma * (x - mean) / sqrt(var + eps) + beta.
func batchNorm(n *nn.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("batchnorm wants NCHW, got %v", x.Shape)
	}
	gamma, beta := n.Weight(nn.GammaKey), n.Weight(nn.BetaKey)
	mean, variance := n.Weight(nn.MeanKey), n.Weight(nn.VarKey)
	if gamma == nil || beta == nil || mean == nil || variance == nil {
		return nil, fmt.Errorf("batchnorm missing statistics")
	}
	c := x.Shape[1]
	if gamma.NumElements() != c {
		return nil, fmt.Errorf("batchnorm gamma has %d elements for %d channels", gamma.NumElements(), c)
	}
	eps := n.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	gv, bv, mv, vv := gamma.Float32s(), beta.Float32s(), mean.Float32s(), variance.Float32s()

	// Precompute per-channel scale and shift.
	scale := make([]float32, c)
	shift := make([]float32, c)
	for i := 0; i < c; i++ {
		inv := 1 / sqrt32(vv[i]+eps)
		scale[i] = gv[i] * inv
		shift[i] = bv[i] - mv[i]*scale[i]
	}

	xv := x.Float32s()
	out := tensor.New(tensor.FP32, x.Shape...)
	hw := x.Shape[2] * x.Shape[3]
	for b := 0; b < x.Shape[0]; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			s, sh := scale[ch], shift[ch]
			for i := 0; i < hw; i++ {
				out.F32[base+i] = xv[base+i]*s + sh
			}
		}
	}
	return out, nil
}

func sqrt32(v float32) float32 {
	// Newton iterations seeded by a float64 sqrt would be overkill here.
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 32; i++ {
		nx := 0.5 * (x + v/x)
		if nx == x {
			break
		}
		x = nx
	}
	return x
}

// pool implements max or average pooling with zero padding excluded from
// averages (count_include_pad = false).
func pool(n *nn.Node, x *tensor.Tensor, isMax bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("pool wants NCHW, got %v", x.Shape)
	}
	a := n.Attrs
	batch, c, inH, inW := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (inH+2*a.PadH-a.KernelH)/a.StrideH + 1
	outW := (inW+2*a.PadW-a.KernelW)/a.StrideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("pool output collapses to %dx%d", outH, outW)
	}
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, outH, outW)
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * inH * inW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					iy0 := oy*a.StrideH - a.PadH
					ix0 := ox*a.StrideW - a.PadW
					var acc float32
					count := 0
					first := true
					for ky := 0; ky < a.KernelH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							v := xv[base+iy*inW+ix]
							if isMax {
								if first || v > acc {
									acc = v
									first = false
								}
							} else {
								acc += v
								count++
							}
						}
					}
					if !isMax && count > 0 {
						acc /= float32(count)
					}
					out.F32[((b*c+ch)*outH+oy)*outW+ox] = acc
				}
			}
		}
	}
	return out, nil
}

// globalAvgPool reduces spatial dimensions to 1×1.
func globalAvgPool(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("global pool wants NCHW, got %v", x.Shape)
	}
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, 1, 1)
	hw := h * w
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			var sum float64
			for i := 0; i < hw; i++ {
				sum += float64(xv[base+i])
			}
			out.F32[b*c+ch] = float32(sum / float64(hw))
		}
	}
	return out, nil
}

// accumulate adds or multiplies y into out, supporting the [N,C,1,1]
// channel broadcast used by squeeze-excite blocks.
func accumulate(out, y *tensor.Tensor, mul bool) error {
	yv := y.Float32s()
	if y.Shape.Equal(out.Shape) {
		for i := range out.F32 {
			if mul {
				out.F32[i] *= yv[i]
			} else {
				out.F32[i] += yv[i]
			}
		}
		return nil
	}
	// Channel broadcast.
	if len(out.Shape) == 4 && len(y.Shape) == 4 &&
		y.Shape[0] == out.Shape[0] && y.Shape[1] == out.Shape[1] &&
		y.Shape[2] == 1 && y.Shape[3] == 1 {
		c := out.Shape[1]
		hw := out.Shape[2] * out.Shape[3]
		for b := 0; b < out.Shape[0]; b++ {
			for ch := 0; ch < c; ch++ {
				f := yv[b*c+ch]
				base := (b*c + ch) * hw
				for i := 0; i < hw; i++ {
					if mul {
						out.F32[base+i] *= f
					} else {
						out.F32[base+i] += f
					}
				}
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %v vs %v", tensor.ErrShape, out.Shape, y.Shape)
}

// concatChannels concatenates NCHW tensors along the channel axis.
func concatChannels(ts []*tensor.Tensor) (*tensor.Tensor, error) {
	first := ts[0]
	if len(first.Shape) != 4 {
		return nil, fmt.Errorf("concat wants NCHW, got %v", first.Shape)
	}
	batch, h, w := first.Shape[0], first.Shape[2], first.Shape[3]
	totalC := 0
	for _, t := range ts {
		if len(t.Shape) != 4 || t.Shape[0] != batch || t.Shape[2] != h || t.Shape[3] != w {
			return nil, fmt.Errorf("%w: concat input %v vs %v", tensor.ErrShape, t.Shape, first.Shape)
		}
		totalC += t.Shape[1]
	}
	out := tensor.New(tensor.FP32, batch, totalC, h, w)
	hw := h * w
	for b := 0; b < batch; b++ {
		cOff := 0
		for _, t := range ts {
			tv := t.Float32s()
			c := t.Shape[1]
			src := tv[b*c*hw : (b+1)*c*hw]
			dst := out.F32[(b*totalC+cOff)*hw : (b*totalC+cOff+c)*hw]
			copy(dst, src)
			cOff += c
		}
	}
	return out, nil
}

// upsample performs nearest-neighbour upsampling by an integer factor.
func upsample(x *tensor.Tensor, scale int) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("upsample wants NCHW, got %v", x.Shape)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("upsample scale %d", scale)
	}
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, c, h*scale, w*scale)
	oh, ow := h*scale, w*scale
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				iy := oy / scale
				for ox := 0; ox < ow; ox++ {
					out.F32[outBase+oy*ow+ox] = xv[inBase+iy*w+ox/scale]
				}
			}
		}
	}
	return out, nil
}

// softmaxRows applies softmax along the last axis of a [N, features]
// tensor (rank-4 inputs are treated per channel vector at each pixel
// only when flattened; detection heads use raw logits instead).
func softmaxRows(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("softmax wants [N,features], got %v", x.Shape)
	}
	batch, f := x.Shape[0], x.Shape[1]
	xv := x.Float32s()
	out := tensor.New(tensor.FP32, batch, f)
	for b := 0; b < batch; b++ {
		row, err := tensor.FromSlice(xv[b*f:(b+1)*f], f)
		if err != nil {
			return nil, err
		}
		sm := tensor.Softmax(row)
		copy(out.F32[b*f:(b+1)*f], sm.F32)
	}
	return out, nil
}
