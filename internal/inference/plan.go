package inference

// planStep is the I/O view of one execution step that the arena planner
// consumes — shared by the FP32 engine (whose arena holds float32
// elements) and the quantized engine (int8 elements).
type planStep struct {
	out int
	ins []int
}

// planMemory assigns every intermediate activation to an arena slab
// using liveness analysis over the compiled step order. FP16-compute
// plans run the planner twice over the same step order: FP32 values
// share the float32 arena, FP16 values share a disjoint halfword arena
// (locSlotH). Each pass only assigns and recycles its own class, so
// the two plans never alias.
func (e *Engine) planMemory() {
	steps := make([]planStep, len(e.steps))
	for i, st := range e.steps {
		steps[i] = planStep{out: st.out, ins: st.ins}
	}
	e.slotOff, e.slotSize, e.arenaPerSample = planArena(e.vals, steps, locSlot,
		func(v *value) bool { return !v.fp16 })
	e.slotOffH, e.slotSizeH, e.arenaHPerSample = planArena(e.vals, steps, locSlotH,
		func(v *value) bool { return v.fp16 })
}

// planArena assigns every unassigned value accepted by mine to an
// arena slab of the given location kind using liveness analysis over
// the step order. Values flow through three location kinds: inputs
// stay in the caller's tensors, declared outputs get fresh per-call
// tensors (they outlive the call), and everything else shares a small
// set of slots whose per-sample sizes are fixed at compile time. A
// slot is recycled as soon as its last consumer has executed, so the
// arena footprint is the peak working set of the graph rather than the
// sum of all activations — the classic static memory plan of
// deployment runtimes. Sizes are in elements; the caller scales by its
// element width. Only slots of this call's kind are recycled, so
// repeated passes with disjoint classes build independent arenas.
func planArena(vals []value, steps []planStep, kind locKind, mine func(v *value) bool) (slotOff, slotSize []int, perSample int) {
	// lastUse[v] is the index of the last step consuming value v, or -1.
	lastUse := make([]int, len(vals))
	for i := range lastUse {
		lastUse[i] = -1
	}
	for si, st := range steps {
		for _, v := range st.ins {
			lastUse[v] = si
		}
	}

	type slotState struct {
		size int // per-sample element count, max over assigned values
		free bool
	}
	var slots []slotState

	// acquire picks the free slot wasting the least space for a value of
	// n elements, growing a slot when nothing fits, and creating a new
	// slot only when none is free.
	acquire := func(n int) int {
		bestFit, bestFitSize := -1, -1 // smallest free slot >= n
		largest, largestSize := -1, -1 // largest free slot overall
		for i, s := range slots {
			if !s.free {
				continue
			}
			if s.size >= n && (bestFit == -1 || s.size < bestFitSize) {
				bestFit, bestFitSize = i, s.size
			}
			if largest == -1 || s.size > largestSize {
				largest, largestSize = i, s.size
			}
		}
		idx := bestFit
		if idx == -1 {
			idx = largest // grow the largest free slot
		}
		if idx == -1 {
			slots = append(slots, slotState{size: n})
			return len(slots) - 1
		}
		slots[idx].free = false
		if slots[idx].size < n {
			slots[idx].size = n
		}
		return idx
	}

	for si := range steps {
		st := &steps[si]
		out := &vals[st.out]
		// Assign the destination before releasing dying inputs: kernels
		// are not in-place safe, so a step's output must never alias one
		// of its own inputs.
		if out.loc.kind == locUnassigned && mine(out) {
			out.loc = location{kind, acquire(out.elems)}
		}
		for _, in := range st.ins {
			if lastUse[in] == si {
				if l := vals[in].loc; l.kind == kind {
					slots[l.idx].free = true
				}
			}
		}
		// A value nothing ever consumes (dead node kept for parity with
		// the interpreter) releases its slot immediately after executing.
		if lastUse[st.out] < si {
			if l := out.loc; l.kind == kind {
				slots[l.idx].free = true
			}
		}
	}

	slotSize = make([]int, len(slots))
	slotOff = make([]int, len(slots))
	off := 0
	for i, s := range slots {
		slotSize[i] = s.size
		slotOff[i] = off
		off += s.size
	}
	return slotOff, slotSize, off
}
