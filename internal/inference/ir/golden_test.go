package ir_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
)

// The golden pass-pipeline tests pin the lowering IR's textual form
// after every pass for representative example graphs, FP32 and INT8.
// An accidental pass reordering, a changed rewrite decision or a
// nondeterministic dump fails loudly against the committed files.
//
// Regenerate with:
//
//	go test ./internal/inference/ir -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden IR dumps in testdata/")

// pipelineDump renders the pass-by-pass lowering trace: the module
// after every pass of the shared pipeline, with op counts. Timings are
// deliberately excluded — the trace must be byte-stable.
func pipelineDump(t *testing.T, g *nn.Graph, schema *nn.QuantSchema) string {
	t.Helper()
	_, recs, err := inference.Lower(g, schema, true)
	if err != nil {
		t.Fatalf("lower %s: %v", g.Name, err)
	}
	return ir.FormatRecords(recs, false)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("pass pipeline for %s diverged from golden file %s\n--- got ---\n%s", name, path, got)
	}
}

// TestGoldenLoweringFP32 pins the FP32 pipeline on two example
// topologies: LeNet (conv/pool/dense/softmax with direct conv+ReLU
// fusion) and the smart-mirror face detector (conv→BN→ReLU blocks,
// the full epilogue chain).
func TestGoldenLoweringFP32(t *testing.T) {
	for _, tc := range []struct {
		file string
		g    *nn.Graph
	}{
		{"lenet_fp32.ir", nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 1})},
		{"facedetect_fp32.ir", nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 4})},
	} {
		t.Run(tc.file, func(t *testing.T) {
			checkGolden(t, tc.file, pipelineDump(t, tc.g, nil))
		})
	}
}

// TestGoldenLoweringINT8 pins the INT8 pipeline on the gesture
// classifier: precision assignment stamps every value, conv→BN→ReLU
// chains fuse into per-channel lookup epilogues, and the softmax head
// becomes the one FP32 island.
func TestGoldenLoweringINT8(t *testing.T) {
	g := nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 6})
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gesture_int8.ir", pipelineDump(t, g, schema))
}

// TestGoldenDumpByteStable lowers the same graph twice and requires
// identical pass-by-pass dumps — the determinism the golden files (and
// reproducible arena layouts) rest on.
func TestGoldenDumpByteStable(t *testing.T) {
	a := pipelineDump(t, nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 4}), nil)
	b := pipelineDump(t, nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 4}), nil)
	if a != b {
		t.Error("pass-by-pass dump is not byte-stable across lowerings")
	}
}
