package ir

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ErrSchemaGap reports that precision assignment found a lowered value
// without a usable quantization mapping. inference.CompileQuantized
// translates it to ErrNotQuantizable, the transparent-fallback signal.
var ErrSchemaGap = errors.New("ir: quant schema does not cover module")

// Weight keys materialized by the constant-folding pass.
const (
	// FoldScaleKey / FoldShiftKey hold batch-norm statistics folded to
	// one per-channel affine (nn.FoldBatchNormStats) at lowering time.
	FoldScaleKey = "fold.scale"
	FoldShiftKey = "fold.shift"
)

// Pass is one module-to-module rewrite of the lowering pipeline. Passes
// must be deterministic: the same module always rewrites the same way.
type Pass interface {
	// Name identifies the pass in records and dumps.
	Name() string
	// Run rewrites m in place, reporting whether anything changed.
	Run(m *Module) (changed bool, err error)
}

// Config parameterizes the standard pipeline.
type Config struct {
	// Schema enables INT8 precision assignment; nil lowers a pure FP32
	// module.
	Schema *nn.QuantSchema
	// IntLowering reports whether the executing backend has a native
	// integer kernel for (op, arity); ops without one become FP32
	// islands. Nil marks no islands.
	IntLowering func(op nn.OpType, arity int) bool
	// FP16Compute, with a nil Schema, assigns FP16 storage to every
	// live intermediate value so the engine keeps activations
	// half-width in its arena. Module inputs and declared outputs stay
	// FP32: they are the caller-facing interface.
	FP16Compute bool
}

// StandardPasses returns the shared pipeline in its canonical order.
// CSE runs before FoldConstants on purpose: cseKey compares weight
// tensors by identity, and folding materializes fresh per-op derived
// tensors that would make otherwise-identical batch-norms never merge.
func StandardPasses(cfg Config) []Pass {
	return []Pass{
		ShapeInference{},
		EliminateIdentity{},
		EliminateDead{},
		CSE{},
		FoldConstants{},
		FuseEpilogue{},
		AssignPrecision{Schema: cfg.Schema, IntLowering: cfg.IntLowering, FP16Compute: cfg.FP16Compute},
	}
}

// PassRecord is the outcome of one pass execution.
type PassRecord struct {
	Pass      string
	Changed   bool
	Duration  time.Duration
	OpsBefore int
	OpsAfter  int
	// Dump is the module's textual form after the pass, captured only
	// when the manager's CaptureDumps is set.
	Dump string
}

// PassManager runs an ordered pass list over a module, recording per-
// pass timing, op counts and (optionally) dumps.
type PassManager struct {
	Passes       []Pass
	CaptureDumps bool
	Records      []PassRecord
}

// NewPassManager wraps a pass list.
func NewPassManager(passes ...Pass) *PassManager {
	return &PassManager{Passes: passes}
}

// Run executes the pipeline in order, stopping at the first error.
func (pm *PassManager) Run(m *Module) error {
	for _, p := range pm.Passes {
		before := len(m.Ops)
		start := time.Now()
		changed, err := p.Run(m)
		rec := PassRecord{
			Pass:      p.Name(),
			Changed:   changed,
			Duration:  time.Since(start),
			OpsBefore: before,
			OpsAfter:  len(m.Ops),
		}
		if pm.CaptureDumps {
			rec.Dump = m.Dump()
		}
		pm.Records = append(pm.Records, rec)
		if err != nil {
			return fmt.Errorf("ir: pass %s: %w", p.Name(), err)
		}
	}
	return nil
}

// Lower is the one-call form: build the module from g and run the
// standard pipeline, returning the module and the pass records.
func Lower(g *nn.Graph, cfg Config, captureDumps bool) (*Module, []PassRecord, error) {
	m, err := FromGraph(g)
	if err != nil {
		return nil, nil, err
	}
	pm := NewPassManager(StandardPasses(cfg)...)
	pm.CaptureDumps = captureDumps
	if err := pm.Run(m); err != nil {
		return nil, pm.Records, err
	}
	return m, pm.Records, nil
}

// ---------------------------------------------------------------------------
// shape-inference
// ---------------------------------------------------------------------------

// ShapeInference computes every value's static per-sample shape via the
// shared nn.InferShape rule. Unlike the historical compilers it never
// touches the source graph's OutShape fields, so no snapshot/restore
// dance is needed.
type ShapeInference struct{}

// Name implements Pass.
func (ShapeInference) Name() string { return "shape-inference" }

// Run implements Pass.
func (ShapeInference) Run(m *Module) (bool, error) {
	changed := false
	for _, op := range m.Ops {
		var per tensor.Shape
		if op.Kind == nn.OpInput {
			if len(op.Attrs.Shape) == 0 {
				return changed, fmt.Errorf("input %q needs Attrs.Shape", op.Name)
			}
			full := append(tensor.Shape{1}, op.Attrs.Shape...)
			if !full.Valid() {
				return changed, fmt.Errorf("input %q has invalid shape %v", op.Name, full)
			}
			per = full[1:].Clone()
		} else {
			ins := make([]tensor.Shape, len(op.Ins))
			for i, in := range op.Ins {
				s := m.Values[in].Shape
				if s == nil {
					return changed, fmt.Errorf("op %q input %d has no inferred shape", op.Name, i)
				}
				ins[i] = append(tensor.Shape{1}, s...)
			}
			full, err := nn.InferShape(op.Kind, op.Attrs, op.Weights, ins)
			if err != nil {
				return changed, fmt.Errorf("op %q (%s): %w", op.Name, op.Kind, err)
			}
			per = full[1:].Clone()
		}
		v := m.Values[op.Out]
		if !v.Shape.Equal(per) {
			changed = true
		}
		v.Shape = per
		v.Elems = per.NumElements()
	}
	return changed, nil
}

// ---------------------------------------------------------------------------
// fold-constants
// ---------------------------------------------------------------------------

// FoldConstants evaluates weight-only subexpressions at lowering time.
// Today that is batch normalization: the four statistic tensors fold to
// one per-channel affine (scale, shift) stored as derived weights, so
// kernel binders consume two tensors instead of recomputing the fold —
// bitwise identical because nn.FoldBatchNormStats is the single source
// of the arithmetic.
type FoldConstants struct{}

// Name implements Pass.
func (FoldConstants) Name() string { return "fold-constants" }

// Run implements Pass.
func (FoldConstants) Run(m *Module) (bool, error) {
	changed := false
	for _, op := range m.Ops {
		if op.Kind != nn.OpBatchNorm || op.Weight(FoldScaleKey) != nil {
			continue
		}
		gamma, beta := op.Weight(nn.GammaKey), op.Weight(nn.BetaKey)
		mean, variance := op.Weight(nn.MeanKey), op.Weight(nn.VarKey)
		if gamma == nil || beta == nil || mean == nil || variance == nil {
			continue // structure-only graph: binding will report it
		}
		scale, shift := nn.FoldBatchNormStats(
			gamma.Float32s(), beta.Float32s(), mean.Float32s(), variance.Float32s(), op.Attrs.Eps)
		st := tensor.New(tensor.FP32, len(scale))
		copy(st.F32, scale)
		sh := tensor.New(tensor.FP32, len(shift))
		copy(sh.F32, shift)
		// The op's weight map is private to the module (shallow-copied
		// in FromGraph), so folding never mutates the source graph.
		if op.Weights == nil {
			op.Weights = make(map[string]*tensor.Tensor, 2)
		}
		op.Weights[FoldScaleKey] = st
		op.Weights[FoldShiftKey] = sh
		changed = true
	}
	return changed, nil
}

// ---------------------------------------------------------------------------
// eliminate-identity
// ---------------------------------------------------------------------------

// EliminateIdentity drops Identity ops by rewiring their consumers to
// the identity's input, recording a name alias for debug executions.
// Identities that are declared outputs are kept (they define the
// output's buffer), mirroring optimize.RemoveIdentity.
type EliminateIdentity struct{}

// Name implements Pass.
func (EliminateIdentity) Name() string { return "eliminate-identity" }

// Run implements Pass.
func (EliminateIdentity) Run(m *Module) (bool, error) {
	drop := make(map[*Op]bool)
	for _, op := range m.Ops {
		if op.Kind != nn.OpIdentity || m.isOutputValue(op.Out) {
			continue
		}
		src := op.Ins[0]
		m.rewireValue(op.Out, src)
		m.Aliases[m.Values[op.Out].Name] = src
		drop[op] = true
	}
	m.removeOps(drop)
	return len(drop) > 0, nil
}

// ---------------------------------------------------------------------------
// eliminate-dead
// ---------------------------------------------------------------------------

// EliminateDead removes ops whose results cannot reach any declared
// output. The historical compilers executed dead nodes for interpreter
// parity; the lowered plan drops them, which also shrinks the arena.
type EliminateDead struct{}

// Name implements Pass.
func (EliminateDead) Name() string { return "eliminate-dead" }

// Run implements Pass.
func (EliminateDead) Run(m *Module) (bool, error) {
	producer := make(map[int]*Op, len(m.Ops))
	for _, op := range m.Ops {
		producer[op.Out] = op
	}
	live := make(map[*Op]bool, len(m.Ops))
	var mark func(v int)
	mark = func(v int) {
		op := producer[v]
		if op == nil || live[op] {
			return
		}
		live[op] = true
		for _, in := range op.Ins {
			mark(in)
		}
	}
	for _, o := range m.Outputs {
		mark(o.Value)
	}
	drop := make(map[*Op]bool)
	for _, op := range m.Ops {
		// Input ops always stay: the engine's calling convention requires
		// every declared input, used or not.
		if !live[op] && op.Kind != nn.OpInput {
			drop[op] = true
		}
	}
	m.removeOps(drop)
	return len(drop) > 0, nil
}

// ---------------------------------------------------------------------------
// cse
// ---------------------------------------------------------------------------

// CSE merges ops that compute the same value: same kind, same operands,
// same attributes and the same weight tensors (by identity). The later
// op's value aliases the first's. Kernels are pure, so merged results
// are bitwise identical to computing both.
type CSE struct{}

// Name implements Pass.
func (CSE) Name() string { return "cse" }

// Run implements Pass.
func (CSE) Run(m *Module) (bool, error) {
	seen := make(map[string]*Op, len(m.Ops))
	drop := make(map[*Op]bool)
	for _, op := range m.Ops {
		if op.Kind == nn.OpInput {
			continue
		}
		key := cseKey(op)
		first, dup := seen[key]
		if !dup {
			seen[key] = op
			continue
		}
		m.rewireValue(op.Out, first.Out)
		m.Aliases[m.Values[op.Out].Name] = first.Out
		drop[op] = true
	}
	m.removeOps(drop)
	return len(drop) > 0, nil
}

// cseKey renders an op's computation (not its name) as a map key.
func cseKey(op *Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%v|", op.Kind, op.Ins)
	a := op.Attrs
	fmt.Fprintf(&b, "k%dx%d s%dx%d p%dx%d g%d o%d a%g sc%d sh%v e%g b%t|",
		a.KernelH, a.KernelW, a.StrideH, a.StrideW, a.PadH, a.PadW,
		a.Groups, a.OutC, a.Alpha, a.Scale, a.Shape, a.Eps, a.Bias)
	keys := make([]string, 0, len(op.Weights))
	for k := range op.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%p;", k, op.Weights[k])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// fuse-activation
// ---------------------------------------------------------------------------

// FuseEpilogue absorbs a producer's element-wise tail — the ubiquitous
// batch-norm → activation chain of conv blocks, a bare activation after
// dense, etc. — into the producing kernel. Each absorbed stage is
// applied per element at the output write (FP32) or composed into
// per-channel requantization lookup tables (INT8), so the intermediate
// values stop materializing: fewer arena slots and up to four fewer
// full passes over the tensor per conv block. A stage fuses only when
// the value it consumes has no other consumer and is not a declared
// output. Applied stagewise to the same float32 (or int8 code) the
// unfused steps would read, the epilogue yields bitwise-identical
// results.
type FuseEpilogue struct{}

// Name implements Pass.
func (FuseEpilogue) Name() string { return "fuse-epilogue" }

// Run implements Pass.
func (FuseEpilogue) Run(m *Module) (bool, error) {
	cons := m.consumers()
	drop := make(map[*Op]bool)
	for _, op := range m.Ops {
		if !IsFusableProducer(op.Kind) || len(op.Fused) > 0 || drop[op] {
			continue
		}
		for !m.isOutputValue(op.Out) {
			cs := cons[op.Out]
			if len(cs) != 1 {
				break
			}
			next := cs[0]
			if drop[next] || !IsFusableStage(next.Kind) {
				break
			}
			op.Fused = append(op.Fused, FusedOp{
				Name: next.Name, Kind: next.Kind, Attrs: next.Attrs,
				Weights: next.Weights, Pre: op.Out,
			})
			op.Out = next.Out
			drop[next] = true
		}
	}
	m.removeOps(drop)
	return len(drop) > 0, nil
}

// ---------------------------------------------------------------------------
// assign-precision
// ---------------------------------------------------------------------------

// AssignPrecision stamps each value's storage precision. With a schema,
// every live value (including fused pre-values, whose mapping feeds the
// fused lookup tables) gets its INT8 affine mapping and ops without a
// native integer lowering are marked as FP32 islands; a value without a
// usable mapping aborts lowering with ErrSchemaGap. Without a schema,
// FP16Compute assigns FP16 storage to intermediate activations (module
// inputs and declared outputs keep FP32 — they are the caller-facing
// interface); otherwise the module stays FP32 and the pass is a no-op.
type AssignPrecision struct {
	Schema      *nn.QuantSchema
	IntLowering func(op nn.OpType, arity int) bool
	FP16Compute bool
}

// Name implements Pass.
func (AssignPrecision) Name() string { return "assign-precision" }

// Run implements Pass.
func (p AssignPrecision) Run(m *Module) (bool, error) {
	if p.Schema == nil {
		return p.runFP16(m)
	}
	m.Quantized = true
	live := m.Live()
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		v := m.Values[id]
		qp, ok := p.Schema.Params(v.Name)
		if !ok {
			return true, fmt.Errorf("%w: no range for value %q", ErrSchemaGap, v.Name)
		}
		if !(qp.Scale > 0) {
			return true, fmt.Errorf("%w: non-positive scale for value %q", ErrSchemaGap, v.Name)
		}
		v.Prec = INT8
		v.QP = qp
	}
	m.Islands = 0
	for _, op := range m.Ops {
		if op.Kind == nn.OpInput {
			continue
		}
		if p.IntLowering != nil && !p.IntLowering(op.Kind, len(op.Ins)) {
			op.Island = true
			m.Islands++
		}
	}
	return true, nil
}

// runFP16 is the schemaless FP16-compute assignment: every live value
// except the caller-facing boundary (module inputs, declared outputs)
// becomes FP16 storage. Fused pre-values are included — they never
// materialize in the fused plan, but the debug expansion reports their
// planned precision consistently.
func (p AssignPrecision) runFP16(m *Module) (bool, error) {
	if !p.FP16Compute {
		return false, nil
	}
	boundary := make(map[int]bool, len(m.Inputs)+len(m.Outputs))
	for _, id := range m.Inputs {
		boundary[id] = true
	}
	for _, o := range m.Outputs {
		boundary[o.Value] = true
	}
	live := m.Live()
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	changed := false
	for _, id := range ids {
		if boundary[id] {
			continue
		}
		m.Values[id].Prec = FP16
		changed = true
	}
	return changed, nil
}
