// Package ir is the shared lowering intermediate representation of the
// inference compilers: a typed, SSA-ish program built from an nn.Graph
// plus an ordered pass pipeline that rewrites it before kernel binding.
//
// Both inference.Compile (FP32) and inference.CompileQuantized (native
// INT8) drive the same pipeline — shape inference, constant folding,
// identity and dead-node elimination, common-subexpression elimination,
// producer+activation fusion and precision assignment — so every graph
// rewrite lands once and retargets every backend, the role the paper's
// common toolchain plays across heterogeneous accelerators. The module
// is deterministic end to end (nn.Graph.TopoSort orders by structure,
// never insertion order), which makes the textual Dump byte-stable and
// golden-testable pass by pass.
package ir

import (
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Precision is a value's storage precision in the lowered plan.
type Precision uint8

const (
	// FP32 stores the value as float32 (the default plan).
	FP32 Precision = iota
	// INT8 stores the value as an int8 code under Value.QP.
	INT8
	// FP16 stores the value as an IEEE binary16 halfword. Assigned by
	// the FP16-compute lowering mode to intermediate activations, which
	// then live half-width in the engine arena and widen to FP32 only
	// transiently, inside the compute step.
	FP16
)

// String returns the dump spelling of the precision.
func (p Precision) String() string {
	switch p {
	case INT8:
		return "i8"
	case FP16:
		return "f16"
	}
	return "f32"
}

// Value is one SSA-ish value: a graph input or the output of exactly
// one op. Shapes are per sample; the batch dimension stays dynamic and
// scales every buffer uniformly at run time.
type Value struct {
	ID   int
	Name string
	// Shape is the per-sample shape, set by the shape-inference pass.
	Shape tensor.Shape
	Elems int
	// Prec and QP are set by the precision-assignment pass.
	Prec Precision
	QP   tensor.QuantParams
}

// FusedOp is one stage of a producer's fused epilogue: an element-wise
// activation or a (folded) batch normalization absorbed into the
// producing kernel by the fusion pass. Each stage consumes the value
// named by Pre (the producer's output for the first stage, the previous
// stage's output after) and its own output is the next stage's Pre — or
// the op's final Out for the last stage. The intermediate values stop
// materializing in the fused plan but keep carrying the stagewise
// quantization mappings for INT8 lowering, and debug executions
// (Engine.RunAll) still expand and materialize them.
type FusedOp struct {
	// Name is the absorbed node's name.
	Name string
	// Kind is the absorbed operator (an activation or OpBatchNorm).
	Kind nn.OpType
	// Attrs carries the absorbed node's attributes (LeakyReLU alpha,
	// batch-norm epsilon).
	Attrs nn.Attrs
	// Weights references the absorbed node's weights (batch-norm folded
	// scale/shift plus statistics); nil for activations.
	Weights map[string]*tensor.Tensor
	// Pre is the value this stage consumes.
	Pre int
}

// Op is one operator application. Input ops appear in the op list too
// (with no inputs); backends skip them when binding kernels.
type Op struct {
	// Name is the originating graph node's name.
	Name  string
	Kind  nn.OpType
	Ins   []int
	Out   int
	Attrs nn.Attrs
	// Weights is the op's private weight map: it starts as a shallow
	// copy of the graph node's map (sharing tensors), so passes may fold
	// new entries in without mutating the caller's graph.
	Weights map[string]*tensor.Tensor
	// Fused is the epilogue chain absorbed by the fusion pass (batch
	// norm and activations applied per element at the output write),
	// empty when unfused.
	Fused []FusedOp
	// Island marks an op without a native integer lowering in a
	// quantized module: it executes as a dequantize→FP32→requantize
	// island.
	Island bool
}

// Weight returns the named weight tensor or nil.
func (o *Op) Weight(key string) *tensor.Tensor {
	if o.Weights == nil {
		return nil
	}
	return o.Weights[key]
}

// Output is one declared module output: a name (graph output name) and
// the value it resolves to after rewrites.
type Output struct {
	Name  string
	Value int
}

// Module is the lowered program: values and ops in deterministic
// topological order, plus the declared interface and the rewrite
// residue (aliases of eliminated values).
type Module struct {
	Name string
	// Quantized reports that precision assignment ran with a schema:
	// every value carries an INT8 mapping and ops may be islands.
	Quantized bool
	Values    []*Value
	Ops       []*Op
	// Inputs are the declared input value ids, in graph declaration
	// order.
	Inputs []int
	// Outputs are the declared outputs, in graph declaration order.
	Outputs []Output
	// Aliases maps the name of a value eliminated by a rewrite
	// (identity elimination, CSE) to the surviving value id. Debug
	// executions report aliased activations under both names.
	Aliases map[string]int
	// Islands counts ops marked as FP32 islands by precision
	// assignment.
	Islands int
}

// FromGraph builds the initial module: one value per graph node, one op
// per node, in the graph's deterministic topological order. The graph
// is validated; weights are referenced, never copied, and the module
// never mutates the graph.
func FromGraph(g *nn.Graph) (*Module, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: g.Name, Aliases: make(map[string]int)}
	id := make(map[string]int, len(order))
	for _, n := range order {
		v := &Value{ID: len(m.Values), Name: n.Name}
		m.Values = append(m.Values, v)
		id[n.Name] = v.ID
		op := &Op{Name: n.Name, Kind: n.Op, Out: v.ID, Attrs: n.Attrs}
		if len(n.Inputs) > 0 {
			op.Ins = make([]int, len(n.Inputs))
			for i, in := range n.Inputs {
				op.Ins[i] = id[in]
			}
		}
		if n.Weights != nil {
			op.Weights = make(map[string]*tensor.Tensor, len(n.Weights))
			for k, w := range n.Weights {
				op.Weights[k] = w
			}
		}
		m.Ops = append(m.Ops, op)
	}
	for _, name := range g.Inputs {
		m.Inputs = append(m.Inputs, id[name])
	}
	for _, name := range g.Outputs {
		m.Outputs = append(m.Outputs, Output{Name: name, Value: id[name]})
	}
	return m, nil
}

// Value returns the value with the given id.
func (m *Module) Value(id int) *Value { return m.Values[id] }

// consumers returns, per value id, the ops reading it (fused
// pre-values are not reads).
func (m *Module) consumers() map[int][]*Op {
	c := make(map[int][]*Op)
	for _, op := range m.Ops {
		for _, in := range op.Ins {
			c[in] = append(c[in], op)
		}
	}
	return c
}

// isOutputValue reports whether value id is a declared output.
func (m *Module) isOutputValue(id int) bool {
	for _, o := range m.Outputs {
		if o.Value == id {
			return true
		}
	}
	return false
}

// rewireValue makes every op input and declared output referencing
// `from` reference `to` instead.
func (m *Module) rewireValue(from, to int) {
	for _, op := range m.Ops {
		for i, in := range op.Ins {
			if in == from {
				op.Ins[i] = to
			}
		}
	}
	for i := range m.Outputs {
		if m.Outputs[i].Value == from {
			m.Outputs[i].Value = to
		}
	}
	// Aliases already pointing at the vanished value chase the new one.
	for name, v := range m.Aliases {
		if v == from {
			m.Aliases[name] = to
		}
	}
}

// removeOps drops the given ops (by identity) from the op list.
func (m *Module) removeOps(drop map[*Op]bool) {
	if len(drop) == 0 {
		return
	}
	kept := m.Ops[:0]
	for _, op := range m.Ops {
		if !drop[op] {
			kept = append(kept, op)
		}
	}
	m.Ops = kept
}

// Live reports the value ids referenced by the lowered plan: inputs,
// outputs, op operands and results, and fused pre-values. Values
// eliminated by rewrites are absent.
func (m *Module) Live() map[int]bool {
	live := make(map[int]bool, len(m.Values))
	for _, v := range m.Inputs {
		live[v] = true
	}
	for _, o := range m.Outputs {
		live[o.Value] = true
	}
	for _, op := range m.Ops {
		live[op.Out] = true
		for _, in := range op.Ins {
			live[in] = true
		}
		for _, f := range op.Fused {
			live[f.Pre] = true
		}
	}
	return live
}

// FusedOut returns the value written by fused stage i of op: the next
// stage's Pre, or the op's Out for the last stage.
func (o *Op) FusedOut(i int) int {
	if i+1 < len(o.Fused) {
		return o.Fused[i+1].Pre
	}
	return o.Out
}

// IsActivation reports element-wise activation operators — the set the
// fusion pass may absorb into a preceding producer.
func IsActivation(op nn.OpType) bool {
	switch op {
	case nn.OpReLU, nn.OpReLU6, nn.OpLeakyReLU, nn.OpSigmoid, nn.OpTanh,
		nn.OpHSwish, nn.OpHSigmoid, nn.OpMish:
		return true
	}
	return false
}

// IsFusableProducer reports ops whose kernels can absorb a following
// epilogue chain: the matrix producers and batch-norm apply it per
// element during the output write (FP32) or compose it into per-channel
// requantization lookups (INT8).
func IsFusableProducer(op nn.OpType) bool {
	switch op {
	case nn.OpConv, nn.OpDepthwiseConv, nn.OpDense, nn.OpBatchNorm:
		return true
	}
	return false
}

// IsFusableStage reports ops a fused epilogue may absorb: element-wise
// activations and (folded) batch normalization, both per-channel
// element-wise maps over an unchanged shape.
func IsFusableStage(op nn.OpType) bool {
	return IsActivation(op) || op == nn.OpBatchNorm
}
