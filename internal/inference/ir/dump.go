package ir

import (
	"fmt"
	"sort"
	"strings"

	"vedliot/internal/nn"
)

// Dump renders the module as deterministic text: ops in plan order with
// their operands, attributes, weight shapes, fusion and island marks,
// then aliases and declared outputs. The format is byte-stable for a
// given graph (deterministic topo order, sorted weight keys) and is
// what the golden pass-pipeline tests pin down. Calibration-dependent
// numbers (quantization scales) are deliberately omitted so goldens
// stay stable across floating-point environments; precision shows as
// the value type (f32/i8).
func (m *Module) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	if m.Quantized {
		b.WriteString(" (int8")
		if m.Islands > 0 {
			fmt.Fprintf(&b, ", %d fp32 island(s)", m.Islands)
		}
		b.WriteString(")")
	}
	b.WriteByte('\n')
	for _, op := range m.Ops {
		out := m.Values[op.Out]
		fmt.Fprintf(&b, "  %%%d = %s", out.ID, op.Kind)
		for _, f := range op.Fused {
			fmt.Fprintf(&b, "+%s", f.Kind)
		}
		b.WriteByte('(')
		for i, in := range op.Ins {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%%%d", in)
		}
		b.WriteByte(')')
		if attrs := formatAttrs(op); attrs != "" {
			fmt.Fprintf(&b, " {%s}", attrs)
		}
		fmt.Fprintf(&b, " %q : %s%s", op.Name, out.Prec, shapeString(m, op.Out))
		if len(op.Fused) > 0 {
			b.WriteString(" (pre")
			for _, f := range op.Fused {
				fmt.Fprintf(&b, " %%%d", f.Pre)
			}
			b.WriteString(")")
		}
		if op.Island {
			b.WriteString(" !fp32-island")
		}
		b.WriteByte('\n')
	}
	if len(m.Aliases) > 0 {
		names := make([]string, 0, len(m.Aliases))
		for name := range m.Aliases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  alias %q = %%%d\n", name, m.Aliases[name])
		}
	}
	for _, o := range m.Outputs {
		fmt.Fprintf(&b, "  out %q = %%%d\n", o.Name, o.Value)
	}
	return b.String()
}

// FormatRecords renders a pass-by-pass lowering trace: each record's
// header (pass name, change status, op counts — plus the duration when
// withTimings is set) followed by its captured dump. The CLIs'
// -dump-ir print with timings; the golden tests pin the trace without
// them, keeping the files byte-stable.
func FormatRecords(recs []PassRecord, withTimings bool) string {
	var b strings.Builder
	for _, rec := range recs {
		status := "no change"
		if rec.Changed {
			status = "changed"
		}
		if withTimings {
			fmt.Fprintf(&b, "== after %s (%s, %d -> %d ops, %v) ==\n%s\n",
				rec.Pass, status, rec.OpsBefore, rec.OpsAfter, rec.Duration, rec.Dump)
		} else {
			fmt.Fprintf(&b, "== after %s (%s, %d -> %d ops) ==\n%s\n",
				rec.Pass, status, rec.OpsBefore, rec.OpsAfter, rec.Dump)
		}
	}
	return b.String()
}

// shapeString renders a value's per-sample shape, or "?" before shape
// inference ran.
func shapeString(m *Module, id int) string {
	s := m.Values[id].Shape
	if s == nil {
		return "[?]"
	}
	return s.String()
}

// formatAttrs renders the attributes an op kind actually reads, plus
// weight shapes, in a fixed order.
func formatAttrs(op *Op) string {
	a := op.Attrs
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	switch op.Kind {
	case nn.OpInput:
		add("shape=%v", a.Shape)
	case nn.OpConv, nn.OpDepthwiseConv:
		add("k=%dx%d", a.KernelH, a.KernelW)
		add("s=%dx%d", a.StrideH, a.StrideW)
		add("p=%dx%d", a.PadH, a.PadW)
		if a.Groups > 1 {
			add("g=%d", a.Groups)
		}
		if a.OutC > 0 {
			add("outC=%d", a.OutC)
		}
	case nn.OpDense:
		add("outC=%d", a.OutC)
	case nn.OpMaxPool, nn.OpAvgPool:
		add("k=%dx%d", a.KernelH, a.KernelW)
		add("s=%dx%d", a.StrideH, a.StrideW)
		add("p=%dx%d", a.PadH, a.PadW)
	case nn.OpLeakyReLU:
		if a.Alpha != 0 {
			add("alpha=%g", a.Alpha)
		}
	case nn.OpUpsample:
		add("scale=%d", a.Scale)
	case nn.OpBatchNorm:
		if a.Eps != 0 {
			add("eps=%g", a.Eps)
		}
	}
	for _, f := range op.Fused {
		if f.Kind == nn.OpLeakyReLU && f.Attrs.Alpha != 0 {
			add("fused-alpha=%g", f.Attrs.Alpha)
		}
	}
	keys := make([]string, 0, len(op.Weights))
	for k := range op.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w := op.Weights[k]
		add("%s:%s%s", k, w.DType, w.Shape)
	}
	return strings.Join(parts, " ")
}
