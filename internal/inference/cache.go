package inference

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vedliot/internal/nn"
)

// PlanCache is the fleet-wide compiled-plan cache: executables keyed by
// an identity string the caller derives from (artifact content digest,
// backend, schema digest). Deploying N replicas of the same artifact on
// the same backend then lowers and binds the plan once — cold-start for
// every later replica is load + bind instead of calibrate + lower,
// which is what makes artifact-driven fleet deployment scale.
//
// Keys must capture everything that changes the compiled plan: the
// model bytes (the artifact digest), the backend identity (name plus
// precision for accelerator backends) and the activation schema. The
// cluster registry builds such keys via its deploy path; other callers
// are responsible for their own key discipline — two different models
// under one key is silent corruption, one model under two keys is only
// a missed hit. Compile failures are cached too (compilation is
// deterministic, retrying cannot succeed).
//
// Cached executables are shared: both engines are immutable after
// compile and safe for concurrent Run, which is what makes sharing
// sound. A PlanCache is safe for concurrent use; concurrent misses on
// one key coalesce into a single compile.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	exe  Executable
	err  error
}

// NewPlanCache creates an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*cacheEntry)}
}

// Compile returns the cached executable for key, compiling g on b on
// the first request. The second return reports a cache hit: true means
// the plan was reused (or another goroutine's in-flight compile was
// joined), false means this call performed the compile.
func (c *PlanCache) Compile(key string, b Backend, g *nn.Graph, opts ...Option) (Executable, bool, error) {
	if key == "" {
		return nil, false, fmt.Errorf("inference: empty plan-cache key")
	}
	c.mu.Lock()
	e, hit := c.entries[key]
	if !hit {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.exe, e.err = b.Compile(g, opts...) })
	return e.exe, hit, e.err
}

// Stats snapshots the cache's hit/miss counters and entry count.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return PlanCacheStats{Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// PlanCacheStats is a cache telemetry snapshot.
type PlanCacheStats struct {
	// Entries is the number of distinct plans held (including cached
	// failures).
	Entries int
	// Hits counts Compile calls served from the cache; Misses counts
	// calls that performed (or joined the creation of) a new entry.
	Hits, Misses int64
}
