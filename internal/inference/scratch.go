package inference

import "sync"

// Planned kernel scratch.
//
// GEMM pack buffers, zero-point-shifted input copies and FP32-island
// staging used to come from per-kernel sync.Pools, which hid their
// footprint from the memory plan and re-grew on every first call. Each
// binder now declares its transient needs as a scratchSpec; the engine
// takes the element-wise maximum over all bound steps at compile time
// and provisions one pooled allocation per Run, sized for the call's
// batch and the compiled worker bound. Per-worker regions are disjoint
// per goroutine ordinal (parallelForWorker), so kernels share scratch
// without synchronization.

// scratchSpec declares one bound kernel's transient buffer needs in
// elements. PerCall fields are batch-independent and shared by the
// whole step (the FP16-compute widened weight panels); PerSample
// fields scale with the call's batch size (whole-input staging);
// PerWorker fields are private to one pool worker (pack tiles,
// accumulator tiles) and scale with the worker bound.
type scratchSpec struct {
	f32PerCall   int
	f32PerSample int
	f32PerWorker int
	i16PerSample int
	i16PerWorker int
	i32PerWorker int
}

// grow raises s to the element-wise maximum of s and o — the engine's
// fold over its steps.
func (s *scratchSpec) grow(o scratchSpec) {
	if o.f32PerCall > s.f32PerCall {
		s.f32PerCall = o.f32PerCall
	}
	if o.f32PerSample > s.f32PerSample {
		s.f32PerSample = o.f32PerSample
	}
	if o.f32PerWorker > s.f32PerWorker {
		s.f32PerWorker = o.f32PerWorker
	}
	if o.i16PerSample > s.i16PerSample {
		s.i16PerSample = o.i16PerSample
	}
	if o.i16PerWorker > s.i16PerWorker {
		s.i16PerWorker = o.i16PerWorker
	}
	if o.i32PerWorker > s.i32PerWorker {
		s.i32PerWorker = o.i32PerWorker
	}
}

// isZero reports an empty spec, letting Run skip scratch setup.
func (s scratchSpec) isZero() bool {
	return s == scratchSpec{}
}

// scratchBufs is one pooled allocation of an engine's scratch regions.
type scratchBufs struct {
	f32 []float32
	i16 []int16
	i32 []int32
}

// ensure grows the regions to the spec's requirement for this call's
// batch and worker bound. Contents are never assumed zero — kernels
// fully overwrite what they read.
func (b *scratchBufs) ensure(spec scratchSpec, batch, workers int) {
	if n := spec.f32PerCall + spec.f32PerSample*batch + spec.f32PerWorker*workers; cap(b.f32) < n {
		b.f32 = make([]float32, n)
	} else {
		b.f32 = b.f32[:n]
	}
	if n := spec.i16PerSample*batch + spec.i16PerWorker*workers; cap(b.i16) < n {
		b.i16 = make([]int16, n)
	} else {
		b.i16 = b.i16[:n]
	}
	if n := spec.i32PerWorker * workers; cap(b.i32) < n {
		b.i32 = make([]int32, n)
	} else {
		b.i32 = b.i32[:n]
	}
}

// getScratch draws a scratch allocation from an engine's pool, grown
// to the compiled spec at this call's batch and worker bound. A zero
// spec returns nil: kernels that declared scratch are then never bound,
// so nothing dereferences it.
func getScratch(pool *sync.Pool, spec scratchSpec, batch, workers int) *scratchBufs {
	if spec.isZero() {
		return nil
	}
	sb, _ := pool.Get().(*scratchBufs)
	if sb == nil {
		sb = &scratchBufs{}
	}
	sb.ensure(spec, batch, workers)
	return sb
}

// putScratch returns a getScratch allocation to its pool.
func putScratch(pool *sync.Pool, sb *scratchBufs) {
	if sb != nil {
		pool.Put(sb)
	}
}

// f32Call returns the batch-independent per-call float32 region of n
// elements (n must not exceed the bound spec's f32PerCall).
func (rc *runCtx) f32Call(n int) []float32 {
	return rc.scratch.f32[:n]
}

// f32Sample returns the batch-scaled float32 region, n elements per
// sample (n must not exceed the bound spec's f32PerSample).
func (rc *runCtx) f32Sample(n int) []float32 {
	off := rc.spec.f32PerCall
	return rc.scratch.f32[off : off+n*rc.batch]
}

// f32Worker returns worker w's private float32 region of n elements.
func (rc *runCtx) f32Worker(w, n int) []float32 {
	off := rc.spec.f32PerCall + rc.spec.f32PerSample*rc.batch + w*rc.spec.f32PerWorker
	return rc.scratch.f32[off : off+n]
}

// i16Sample returns the batch-scaled int16 region, n elements per
// sample.
func (rc *runCtx) i16Sample(n int) []int16 {
	return rc.scratch.i16[:n*rc.batch]
}

// i16Worker returns worker w's private int16 region of n elements.
func (rc *runCtx) i16Worker(w, n int) []int16 {
	off := rc.spec.i16PerSample*rc.batch + w*rc.spec.i16PerWorker
	return rc.scratch.i16[off : off+n]
}

// i32Worker returns worker w's private int32 region of n elements.
func (rc *runCtx) i32Worker(w, n int) []int32 {
	off := w * rc.spec.i32PerWorker
	return rc.scratch.i32[off : off+n]
}
