package inference

import (
	"math"
	"testing"
	"testing/quick"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// buildSingle wraps a single hand-weighted node into a runnable graph.
func buildSingle(t *testing.T, node *nn.Node, inShape []int) *Runner {
	t.Helper()
	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "in", Op: nn.OpInput, Attrs: nn.Attrs{Shape: inShape}})
	node.Name = "out"
	node.Inputs = []string{"in"}
	g.MustAdd(node)
	g.Outputs = []string{"out"}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConv2DHandComputed(t *testing.T) {
	// 1x1x3x3 input, single 2x2 filter, stride 1, no pad.
	n := &nn.Node{Op: nn.OpConv, Attrs: nn.Attrs{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1, OutC: 1}}
	n.SetWeight(nn.WeightKey, tensor.MustFromSlice([]float32{1, 0, 0, 1}, 1, 1, 2, 2))
	r := buildSingle(t, n, []int{1, 3, 3})
	in := tensor.MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	// Filter [[1,0],[0,1]] sums the main diagonal of each 2x2 window.
	want := []float32{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, w := range want {
		if out.F32[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.F32[i], w)
		}
	}
}

func TestConv2DPaddingAndBias(t *testing.T) {
	n := &nn.Node{Op: nn.OpConv, Attrs: nn.Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, OutC: 1, Bias: true}}
	w := tensor.New(tensor.FP32, 1, 1, 3, 3)
	w.F32[4] = 1 // identity kernel
	n.SetWeight(nn.WeightKey, w)
	n.SetWeight(nn.BiasKey, tensor.MustFromSlice([]float32{10}, 1))
	r := buildSingle(t, n, []int{1, 2, 2})
	in := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 12, 13, 14}
	for i, wv := range want {
		if out.F32[i] != wv {
			t.Errorf("out[%d] = %v, want %v", i, out.F32[i], wv)
		}
	}
}

func TestConv2DStride(t *testing.T) {
	n := &nn.Node{Op: nn.OpConv, Attrs: nn.Attrs{KernelH: 1, KernelW: 1, StrideH: 2, StrideW: 2, OutC: 1}}
	n.SetWeight(nn.WeightKey, tensor.MustFromSlice([]float32{1}, 1, 1, 1, 1))
	r := buildSingle(t, n, []int{1, 4, 4})
	in := tensor.New(tensor.FP32, 1, 1, 4, 4)
	for i := range in.F32 {
		in.F32[i] = float32(i)
	}
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 2, 8, 10}
	for i, w := range want {
		if out.F32[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.F32[i], w)
		}
	}
}

func TestDepthwiseConv(t *testing.T) {
	// Two channels, each with its own 1x1 filter (x2 and x3).
	n := &nn.Node{Op: nn.OpDepthwiseConv, Attrs: nn.Attrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, OutC: 2}}
	n.SetWeight(nn.WeightKey, tensor.MustFromSlice([]float32{2, 3}, 2, 1, 1, 1))
	r := buildSingle(t, n, []int{2, 2, 2})
	in := tensor.MustFromSlice([]float32{
		1, 1, 1, 1, // channel 0
		1, 1, 1, 1, // channel 1
	}, 1, 2, 2, 2)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if out.F32[i] != 2 {
			t.Errorf("ch0[%d] = %v, want 2", i, out.F32[i])
		}
		if out.F32[4+i] != 3 {
			t.Errorf("ch1[%d] = %v, want 3", i, out.F32[4+i])
		}
	}
}

func TestDenseHandComputed(t *testing.T) {
	n := &nn.Node{Op: nn.OpDense, Attrs: nn.Attrs{OutC: 2, Bias: true}}
	n.SetWeight(nn.WeightKey, tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3))
	n.SetWeight(nn.BiasKey, tensor.MustFromSlice([]float32{10, 20}, 2))
	r := buildSingle(t, n, []int{3})
	in := tensor.MustFromSlice([]float32{1, 1, 1}, 1, 3)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.F32[0] != 16 || out.F32[1] != 35 {
		t.Errorf("dense = %v, want [16 35]", out.F32)
	}
}

func TestBatchNorm(t *testing.T) {
	n := &nn.Node{Op: nn.OpBatchNorm, Attrs: nn.Attrs{Eps: 0}}
	n.SetWeight(nn.GammaKey, tensor.MustFromSlice([]float32{2}, 1))
	n.SetWeight(nn.BetaKey, tensor.MustFromSlice([]float32{1}, 1))
	n.SetWeight(nn.MeanKey, tensor.MustFromSlice([]float32{3}, 1))
	n.SetWeight(nn.VarKey, tensor.MustFromSlice([]float32{4}, 1))
	r := buildSingle(t, n, []int{1, 1, 2})
	in := tensor.MustFromSlice([]float32{3, 5}, 1, 1, 1, 2)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	// y = 2*(x-3)/2 + 1 = x - 2
	if math.Abs(float64(out.F32[0]-1)) > 1e-5 || math.Abs(float64(out.F32[1]-3)) > 1e-5 {
		t.Errorf("bn = %v, want [1 3]", out.F32)
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		op   nn.OpType
		in   float32
		want float64
		tol  float64
	}{
		{nn.OpReLU, -1, 0, 0},
		{nn.OpReLU, 2, 2, 0},
		{nn.OpReLU6, 7, 6, 0},
		{nn.OpLeakyReLU, -10, -1, 1e-6}, // alpha 0.1
		{nn.OpSigmoid, 0, 0.5, 1e-6},
		{nn.OpTanh, 0, 0, 1e-6},
		{nn.OpHSigmoid, 0, 0.5, 1e-6},
		{nn.OpHSwish, 3, 3, 1e-6},
		{nn.OpHSwish, -3, 0, 1e-6},
		{nn.OpMish, 0, 0, 1e-6},
	}
	for _, c := range cases {
		n := &nn.Node{Op: c.op, Attrs: nn.Attrs{Alpha: 0.1}}
		r := buildSingle(t, n, []int{1})
		in := tensor.MustFromSlice([]float32{c.in}, 1, 1)
		// Activations accept any shape; use rank-2 for simplicity.
		out, err := r.RunSingle(in)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if math.Abs(float64(out.F32[0])-c.want) > c.tol {
			t.Errorf("%s(%v) = %v, want %v", c.op, c.in, out.F32[0], c.want)
		}
	}
}

func TestPooling(t *testing.T) {
	in := tensor.MustFromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)

	nMax := &nn.Node{Op: nn.OpMaxPool, Attrs: nn.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}}
	r := buildSingle(t, nMax, []int{1, 4, 4})
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.F32[i] != w {
			t.Errorf("maxpool[%d] = %v, want %v", i, out.F32[i], w)
		}
	}

	nAvg := &nn.Node{Op: nn.OpAvgPool, Attrs: nn.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}}
	r2 := buildSingle(t, nAvg, []int{1, 4, 4})
	out2, err := r2.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want2 {
		if out2.F32[i] != w {
			t.Errorf("avgpool[%d] = %v, want %v", i, out2.F32[i], w)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	n := &nn.Node{Op: nn.OpGlobalAvgPool}
	r := buildSingle(t, n, []int{2, 2, 2})
	in := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.F32[0] != 2.5 || out.F32[1] != 25 {
		t.Errorf("gap = %v, want [2.5 25]", out.F32)
	}
}

func TestAddMulBroadcast(t *testing.T) {
	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "x", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{2, 2, 2}}})
	g.MustAdd(&nn.Node{Name: "s", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{2, 1, 1}}})
	g.MustAdd(&nn.Node{Name: "mul", Op: nn.OpMul, Inputs: []string{"x", "s"}})
	g.Outputs = []string{"mul"}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float32{1, 1, 1, 1, 2, 2, 2, 2}, 1, 2, 2, 2)
	s := tensor.MustFromSlice([]float32{3, 5}, 1, 2, 1, 1)
	outs, err := r.Run(map[string]*tensor.Tensor{"x": x, "s": s})
	if err != nil {
		t.Fatal(err)
	}
	out := outs["mul"]
	if out.F32[0] != 3 || out.F32[4] != 10 {
		t.Errorf("broadcast mul = %v", out.F32)
	}
}

func TestConcatAndUpsample(t *testing.T) {
	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "a", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{1, 1, 2}}})
	g.MustAdd(&nn.Node{Name: "b", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{1, 1, 2}}})
	g.MustAdd(&nn.Node{Name: "cat", Op: nn.OpConcat, Inputs: []string{"a", "b"}})
	g.MustAdd(&nn.Node{Name: "up", Op: nn.OpUpsample, Inputs: []string{"cat"}, Attrs: nn.Attrs{Scale: 2}})
	g.Outputs = []string{"up"}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.MustFromSlice([]float32{1, 2}, 1, 1, 1, 2)
	b := tensor.MustFromSlice([]float32{3, 4}, 1, 1, 1, 2)
	outs, err := r.Run(map[string]*tensor.Tensor{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	up := outs["up"]
	if !up.Shape.Equal(tensor.Shape{1, 2, 2, 4}) {
		t.Fatalf("up shape = %v", up.Shape)
	}
	// First channel upsampled from [1 2]: rows [1 1 2 2] twice.
	want := []float32{1, 1, 2, 2, 1, 1, 2, 2}
	for i, w := range want {
		if up.F32[i] != w {
			t.Errorf("up[%d] = %v, want %v", i, up.F32[i], w)
		}
	}
}

func TestSoftmaxRowsAndFlatten(t *testing.T) {
	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "in", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{2, 1, 2}}})
	g.MustAdd(&nn.Node{Name: "flat", Op: nn.OpFlatten, Inputs: []string{"in"}})
	g.MustAdd(&nn.Node{Name: "sm", Op: nn.OpSoftmax, Inputs: []string{"flat"}})
	g.Outputs = []string{"sm"}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 1, 2, 1, 2)
	outs, err := r.Run(map[string]*tensor.Tensor{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	sm := outs["sm"]
	for i := range sm.F32 {
		if math.Abs(float64(sm.F32[i]-0.25)) > 1e-6 {
			t.Errorf("softmax[%d] = %v, want 0.25", i, sm.F32[i])
		}
	}
}

func TestEndToEndLeNet(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 3})
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 28, 28)
	for i := range in.F32 {
		in.F32[i] = float32(i%7) / 7
	}
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.Shape{1, 10}) {
		t.Fatalf("output shape = %v", out.Shape)
	}
	var sum float64
	for _, v := range out.F32 {
		if v < 0 || math.IsNaN(float64(v)) {
			t.Fatalf("invalid probability %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestEndToEndMobileNetBlockShapes(t *testing.T) {
	// A small but complete CNN with SE block runs end to end and matches
	// inferred shapes.
	g := nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 5})
	if err := g.InferShapes(2); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 2, 1, 32, 32)
	out, err := r.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	wantShape := g.Node(g.Outputs[0]).OutShape
	if !out.Shape.Equal(wantShape) {
		t.Errorf("runtime shape %v != inferred %v", out.Shape, wantShape)
	}
}

func TestRuntimeShapesMatchInference(t *testing.T) {
	// Property: for every model in the small zoo, executing the graph
	// yields exactly the shapes the static inference predicted.
	models := []*nn.Graph{
		nn.LeNet(28, 10, nn.BuildOptions{Weights: true}),
		nn.MotorNet(128, 5, nn.BuildOptions{Weights: true}),
		nn.ArcNet(256, nn.BuildOptions{Weights: true}),
		nn.FaceEmbedNet(32, 16, nn.BuildOptions{Weights: true}),
	}
	for _, g := range models {
		if err := g.InferShapes(1); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		r, err := NewRunner(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		inNode := g.Node(g.Inputs[0])
		in := tensor.New(tensor.FP32, inNode.OutShape...)
		for i := range in.F32 {
			in.F32[i] = float32(i%13)/13 - 0.5
		}
		outs, err := r.Run(map[string]*tensor.Tensor{g.Inputs[0]: in})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for name, out := range outs {
			want := g.Node(name).OutShape
			if !out.Shape.Equal(want) {
				t.Errorf("%s/%s: runtime %v != inferred %v", g.Name, name, out.Shape, want)
			}
		}
	}
}

func TestMissingInputError(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true})
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(map[string]*tensor.Tensor{}); err == nil {
		t.Error("Run accepted missing input")
	}
	// Wrong input shape.
	bad := tensor.New(tensor.FP32, 1, 3, 28, 28)
	if _, err := r.Run(map[string]*tensor.Tensor{"input": bad}); err == nil {
		t.Error("Run accepted wrong input shape")
	}
}

func TestWeightlessGraphFails(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{}) // no weights
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 28, 28)
	if _, err := r.RunSingle(in); err == nil {
		t.Error("execution succeeded without weights")
	}
}

func TestConvLinearityProperty(t *testing.T) {
	// Convolution is linear: conv(a*x) == a*conv(x) (no bias).
	n := &nn.Node{Op: nn.OpConv, Attrs: nn.Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, OutC: 2}}
	w := tensor.New(tensor.FP32, 2, 1, 3, 3)
	for i := range w.F32 {
		w.F32[i] = float32(i)/9 - 0.5
	}
	n.SetWeight(nn.WeightKey, w)

	g := nn.NewGraph("t")
	g.MustAdd(&nn.Node{Name: "in", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{1, 5, 5}}})
	n.Name = "conv"
	n.Inputs = []string{"in"}
	g.MustAdd(n)
	g.Outputs = []string{"conv"}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed uint32, scale float32) bool {
		if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || math.Abs(float64(scale)) > 100 {
			return true
		}
		in := tensor.New(tensor.FP32, 1, 1, 5, 5)
		s := seed
		for i := range in.F32 {
			s = s*1664525 + 1013904223
			in.F32[i] = float32(s%1000)/500 - 1
		}
		out1, err := r.RunSingle(in)
		if err != nil {
			return false
		}
		scaled := tensor.Scale(in, scale)
		scaled.Shape = in.Shape.Clone()
		out2, err := r.RunSingle(scaled)
		if err != nil {
			return false
		}
		for i := range out1.F32 {
			want := out1.F32[i] * scale
			if math.Abs(float64(out2.F32[i]-want)) > 1e-3*(math.Abs(float64(want))+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
