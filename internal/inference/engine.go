package inference

import (
	"fmt"
	"runtime"
	"sync"

	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Executable is a compiled model ready to run. Both the host CPU Engine
// and the simulated-accelerator programs (internal/accel) satisfy it, so
// the layers above (kenning targets, the microserver batch server, the
// bench harness) schedule work against one interface regardless of the
// execution target — the same role the paper's common toolchain plays
// across heterogeneous accelerators.
type Executable interface {
	// Run executes one batch of inputs keyed by input-node name and
	// returns the declared outputs.
	Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
	// RunBatch executes several independent requests in one dispatch,
	// amortizing per-call overhead; result i corresponds to request i.
	RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error)
}

// Backend compiles graphs into executables for one execution target.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Compile lowers the graph for this target.
	Compile(g *nn.Graph, opts ...Option) (Executable, error)
}

// CPUBackend is the host-CPU backend: Compile produces an *Engine.
type CPUBackend struct{}

// Name implements Backend.
func (CPUBackend) Name() string { return "cpu-engine" }

// Compile implements Backend.
func (CPUBackend) Compile(g *nn.Graph, opts ...Option) (Executable, error) {
	return Compile(g, opts...)
}

var _ Backend = CPUBackend{}
var _ Executable = (*Engine)(nil)

// Option configures compilation.
type Option func(*config)

type config struct {
	workers   int
	threshold int64
	fp16      bool
}

// WithWorkers bounds the kernel worker pool. The default is
// runtime.GOMAXPROCS(0); 1 disables parallel execution.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithParallelThreshold sets the minimum estimated per-kernel op count
// before work is split across the pool; smaller kernels run inline to
// avoid dispatch overhead.
func WithParallelThreshold(ops int64) Option {
	return func(c *config) { c.threshold = ops }
}

// PrecisionFP16Compute compiles the FP16-compute plan: intermediate
// activations are stored as IEEE binary16 halfwords in a second arena,
// and FP16-stored weights stay half-width in their packed GEMM panels
// instead of being dequantized to FP32 at compile time. Both widen to
// FP32 transiently on load (F16C-accelerated on hosts that have it),
// so the arithmetic itself — and the model's inputs and outputs —
// remain FP32; what halves is the resident width of the working set,
// and with it the model's memory traffic. Outputs differ from the
// plain FP32 engine only by the round-to-nearest-even rounding of each
// intermediate activation through binary16.
func PrecisionFP16Compute() Option {
	return func(c *config) { c.fp16 = true }
}

// defaultParallelThreshold is the op count below which a kernel is not
// worth splitting across goroutines.
const defaultParallelThreshold = 1 << 15

// locKind says where a value's buffer lives during Run.
type locKind uint8

const (
	locUnassigned locKind = iota
	locInput              // caller-provided input tensor
	locSlot               // arena slab, reused across liveness intervals
	locOutput             // freshly allocated output tensor
	locSlotH              // halfword arena slab (FP16-compute plans)
)

type location struct {
	kind locKind
	idx  int
}

// value is one activation in the plan. Shapes are per sample: the batch
// dimension is supplied at Run time and scales every buffer uniformly.
type value struct {
	name  string
	per   tensor.Shape
	elems int
	loc   location
	// fp16 marks a value the lowering pipeline assigned FP16 storage:
	// the planner parks it in the halfword arena and Run widens it to
	// FP32 staging only while a step computes with it.
	fp16 bool
}

// step is one bound kernel invocation.
type step struct {
	name string
	op   nn.OpType
	out  int
	ins  []int
	kern kernelFunc
}

// Engine is a compiled execution plan: topologically ordered steps with
// pre-resolved kernels, weights dequantized to FP32 once at compile
// time, and a static arena plan that reuses activation slabs based on
// liveness. Engines are immutable after Compile and safe for concurrent
// Run calls: per-call scratch arenas come from an internal pool.
//
// The engine snapshots weights at compile time; mutating the source
// graph afterwards does not affect a compiled engine.
type Engine struct {
	name        string
	inputNames  []string
	inputVals   []int
	outputNames []string
	outputVals  []int
	vals        []value
	steps       []step

	// fullSteps is the unfused expansion of steps: fused producer+
	// activation pairs run as two steps so every graph value
	// materializes. RunAll (calibration, debugging) walks it; Run never
	// does. When the plan has no fusions it is the steps slice itself.
	fullSteps []step
	// aliases maps graph values eliminated by lowering rewrites
	// (identity elimination, CSE) to the plan value carrying the same
	// activation, for RunAll reporting.
	aliases map[string]int

	// Per-sample shapes of declared inputs/outputs, precomputed at
	// compile time so the per-call paths allocate nothing for them.
	inPer  []tensor.Shape
	outPer []tensor.Shape

	// Arena plan: slotOff/slotSize are per-sample float counts; the
	// arena for a batch-N call is arenaPerSample*N floats.
	slotOff        []int
	slotSize       []int
	arenaPerSample int

	// FP16-compute plans add a second, halfword arena for FP16-stored
	// activations plus an FP32 staging region Run widens operands into
	// while a step computes with them. All three fields are zero for
	// plain FP32 plans, and the extra pools then stay untouched.
	slotOffH        []int
	slotSizeH       []int
	arenaHPerSample int
	stagePerSample  int
	arenasH         sync.Pool // *[]uint16
	stages          sync.Pool // *[]float32

	// trafficPerSample is the modeled per-sample memory traffic of one
	// Run in bytes: every step streams its operands once at their
	// stored width and its weights once at their resident width.
	trafficPerSample int

	// scratch is the element-wise maximum of every bound kernel's
	// transient-buffer spec (GEMM pack tiles, accumulator tiles),
	// computed at compile time; scratchPool recycles the per-Run
	// allocations sized from it. Scratch is tracked separately from the
	// activation arena, so ArenaFloatsPerSample stays the activation
	// working set alone.
	scratch     scratchSpec
	scratchPool sync.Pool // *scratchBufs

	cfg    config
	arenas sync.Pool // *[]float32
}

// Name returns the compiled graph's name.
func (e *Engine) Name() string { return e.name }

// NumSlots returns the number of arena slabs the planner allocated —
// the peak number of simultaneously live intermediate activations.
func (e *Engine) NumSlots() int { return len(e.slotSize) }

// ArenaFloatsPerSample returns the arena footprint in float32 elements
// per batch sample. Without planning this would be the sum of all
// intermediate activation sizes; with liveness-based reuse it is the
// peak working set.
func (e *Engine) ArenaFloatsPerSample() int { return e.arenaPerSample }

// Compile lowers a graph into an execution plan through the shared
// lowering pipeline (see Lower and the ir package): the graph becomes a
// typed IR, the pass pipeline rewrites it — folding constants, dropping
// identity/dead nodes, merging common subexpressions and fusing
// conv/dense/batch-norm with their activations — and the lowered module
// is bound to FP32 kernels with weights dequantized at compile time,
// then arena-planned by liveness. The batch dimension stays dynamic:
// Run accepts any batch size. Compile never mutates the source graph.
func Compile(g *nn.Graph, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	var (
		m   *ir.Module
		err error
	)
	if cfg.fp16 {
		// FP16-compute lowering: same pipeline, with the precision pass
		// stamping intermediate activations FP16.
		m, _, err = ir.Lower(g, ir.Config{FP16Compute: true}, false)
	} else {
		m, _, err = Lower(g, nil, false)
	}
	if err != nil {
		return nil, err
	}
	return newEngine(m, cfg)
}

// newConfig resolves compile options against the defaults.
func newConfig(opts []Option) config {
	cfg := config{workers: runtime.GOMAXPROCS(0), threshold: defaultParallelThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.threshold < 0 {
		cfg.threshold = 0
	}
	return cfg
}

// newEngine binds a lowered FP32 module to kernels and plans its arena.
func newEngine(m *ir.Module, cfg config) (*Engine, error) {
	sc := buildScaffold(m)
	e := &Engine{
		name:        m.Name,
		cfg:         cfg,
		vals:        sc.vals,
		inputNames:  sc.inputNames,
		inputVals:   sc.inputVals,
		outputNames: sc.outputNames,
		outputVals:  sc.outputVals,
		aliases:     sc.aliases,
	}
	fused := false
	var stats bindStats
	for _, op := range m.Ops {
		if op.Kind == nn.OpInput {
			continue
		}
		ins, inPer := opOperands(&sc, op)
		n := nodeFromOp(op)
		out := sc.valOf[op.Out]
		ep, err := buildEpilogue(op, channelCount(e.vals[out].per))
		if err != nil {
			return nil, compileError(op, false, err)
		}
		kern, spec, err := bindKernel(n, inPer, e.vals[out].per, ep, cfg.fp16, &stats)
		if err != nil {
			return nil, compileError(op, false, err)
		}
		e.scratch.grow(spec)
		st := step{name: op.Name, op: op.Kind, out: out, ins: ins, kern: kern}
		e.steps = append(e.steps, st)
		if len(op.Fused) == 0 {
			e.fullSteps = append(e.fullSteps, st)
			continue
		}
		// Unfused expansion for RunAll: the producer writes its own
		// (pre-epilogue) value, then each absorbed stage runs as its own
		// step — the exact plan the fused step collapses. Stats stay
		// nil: the weights were already counted by the fused bind.
		fused = true
		pre := sc.valOf[op.Fused[0].Pre]
		preKern, preSpec, err := bindKernel(n, inPer, e.vals[pre].per, nil, cfg.fp16, nil)
		if err != nil {
			return nil, compileError(op, false, err)
		}
		e.scratch.grow(preSpec)
		e.fullSteps = append(e.fullSteps, step{name: op.Name, op: op.Kind, out: pre, ins: ins, kern: preKern})
		for i := range op.Fused {
			f := &op.Fused[i]
			fOut := sc.valOf[op.FusedOut(i)]
			fKern, fSpec, err := bindKernel(nodeFromFused(f), []tensor.Shape{e.vals[pre].per}, e.vals[fOut].per, nil, cfg.fp16, nil)
			if err != nil {
				return nil, compileError(op, false, err)
			}
			e.scratch.grow(fSpec)
			e.fullSteps = append(e.fullSteps, step{name: f.Name, op: f.Kind, out: fOut, ins: []int{pre}, kern: fKern})
			pre = fOut
		}
	}
	if !fused {
		e.fullSteps = e.steps
	}
	e.planMemory()
	e.planStaging()
	e.trafficPerSample = e.modeledActivationTraffic() + stats.weightBytes
	e.inPer, e.outPer = perShapes(e.vals, e.inputVals), perShapes(e.vals, e.outputVals)
	return e, nil
}

// planStaging sizes the FP32 staging region of an FP16-compute plan:
// the per-sample maximum, over the steps, of the halfword-resident
// operands a step widens while it runs. Zero for plain FP32 plans.
func (e *Engine) planStaging() {
	for _, st := range e.steps {
		need := 0
		for _, in := range st.ins {
			if e.vals[in].loc.kind == locSlotH {
				need += e.vals[in].elems
			}
		}
		if e.vals[st.out].loc.kind == locSlotH {
			need += e.vals[st.out].elems
		}
		if need > e.stagePerSample {
			e.stagePerSample = need
		}
	}
}

// modeledActivationTraffic models the per-sample activation bytes one
// Run moves: every step reads each input and writes its output once at
// the value's stored width (2 bytes for FP16-resident values, 4 for
// FP32). Together with the resident weight bytes the binders report it
// feeds ModeledTrafficBytesPerSample.
func (e *Engine) modeledActivationTraffic() int {
	width := func(v int) int {
		if e.vals[v].fp16 {
			return 2
		}
		return 4
	}
	traffic := 0
	for _, st := range e.steps {
		for _, in := range st.ins {
			traffic += e.vals[in].elems * width(in)
		}
		traffic += e.vals[st.out].elems * width(st.out)
	}
	return traffic
}

// ModeledTrafficBytesPerSample returns the modeled per-sample memory
// traffic of one Run in bytes: activations at their stored width plus
// weights at their resident width. The FP16-compute plan halves both
// for FP16-stored models, which is the bench harness's
// fp16_mem_traffic_ratio numerator/denominator.
func (e *Engine) ModeledTrafficBytesPerSample() int { return e.trafficPerSample }

// perShapes collects the per-sample shape of each listed value.
func perShapes(vals []value, ids []int) []tensor.Shape {
	per := make([]tensor.Shape, len(ids))
	for i, v := range ids {
		per[i] = vals[v].per
	}
	return per
}

func (e *Engine) getArena(batch int) []float32 {
	need := e.arenaPerSample * batch
	if need == 0 {
		return nil
	}
	if p, ok := e.arenas.Get().(*[]float32); ok {
		if cap(*p) >= need {
			return (*p)[:need]
		}
	}
	return make([]float32, need)
}

func (e *Engine) putArena(buf []float32) {
	if buf == nil {
		return
	}
	e.arenas.Put(&buf)
}

// getArenaH draws the halfword arena of an FP16-compute plan; nil for
// plain FP32 plans.
func (e *Engine) getArenaH(batch int) []uint16 {
	need := e.arenaHPerSample * batch
	if need == 0 {
		return nil
	}
	if p, ok := e.arenasH.Get().(*[]uint16); ok {
		if cap(*p) >= need {
			return (*p)[:need]
		}
	}
	return make([]uint16, need)
}

func (e *Engine) putArenaH(buf []uint16) {
	if buf == nil {
		return
	}
	e.arenasH.Put(&buf)
}

// getStage draws the FP32 staging region steps widen FP16-resident
// operands into; nil for plain FP32 plans.
func (e *Engine) getStage(batch int) []float32 {
	need := e.stagePerSample * batch
	if need == 0 {
		return nil
	}
	if p, ok := e.stages.Get().(*[]float32); ok {
		if cap(*p) >= need {
			return (*p)[:need]
		}
	}
	return make([]float32, need)
}

func (e *Engine) putStage(buf []float32) {
	if buf == nil {
		return
	}
	e.stages.Put(&buf)
}

// resolveInputs validates the provided inputs against the plan and
// returns their FP32 views plus the call's batch size.
func (e *Engine) resolveInputs(inputs map[string]*tensor.Tensor) ([][]float32, int, error) {
	return resolveBatchedInputs(e.inputNames, e.inPer, inputs)
}

// resolveBatchedInputs validates an input map against per-sample shapes
// and returns the FP32 views plus the call's batch size. Shared by the
// FP32 engine and the quantized engine (which quantizes the views at
// graph entry).
func resolveBatchedInputs(inputNames []string, per []tensor.Shape, inputs map[string]*tensor.Tensor) ([][]float32, int, error) {
	if len(inputNames) == 0 {
		return nil, 0, fmt.Errorf("inference: graph declares no inputs")
	}
	bufs := make([][]float32, len(inputNames))
	batch := 0
	for i, name := range inputNames {
		t, ok := inputs[name]
		if !ok || t == nil {
			return nil, 0, fmt.Errorf("inference: missing input %q", name)
		}
		if len(t.Shape) == 0 {
			return nil, 0, fmt.Errorf("inference: input %q is a scalar, want batched tensor", name)
		}
		want := append(tensor.Shape{t.Shape[0]}, per[i]...)
		if !t.Shape.Equal(want) {
			return nil, 0, fmt.Errorf("inference: input %q has shape %v, want %v", name, t.Shape, want)
		}
		if i == 0 {
			batch = t.Shape[0]
		} else if t.Shape[0] != batch {
			return nil, 0, fmt.Errorf("inference: input %q has batch %d, want %d", name, t.Shape[0], batch)
		}
		if t.DType == tensor.FP32 {
			bufs[i] = t.F32
		} else {
			bufs[i] = t.Float32s()
		}
	}
	if batch <= 0 {
		return nil, 0, fmt.Errorf("inference: batch must be positive")
	}
	return bufs, batch, nil
}

// Run executes the plan for one batch of inputs. It is safe to call
// concurrently from multiple goroutines.
func (e *Engine) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	inBufs, batch, err := e.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		if loc.kind == locOutput && loc.idx == i {
			outs[i] = tensor.New(tensor.FP32, append(tensor.Shape{batch}, e.vals[v].per...)...)
		}
	}
	arena := e.getArena(batch)
	arenaH, stage := e.getArenaH(batch), e.getStage(batch)
	resolve := func(v int) []float32 {
		val := &e.vals[v]
		switch val.loc.kind {
		case locInput:
			return inBufs[val.loc.idx]
		case locOutput:
			return outs[val.loc.idx].F32
		case locSlot:
			off := e.slotOff[val.loc.idx] * batch
			return arena[off : off+val.elems*batch]
		}
		return nil
	}
	// resolveH locates an FP16-resident value's halfword slab. Steps
	// never compute on it directly: inputs widen into the staging
	// region on load, outputs compute in staging and narrow on store.
	resolveH := func(v int) []uint16 {
		val := &e.vals[v]
		off := e.slotOffH[val.loc.idx] * batch
		return arenaH[off : off+val.elems*batch]
	}
	sb := getScratch(&e.scratchPool, e.scratch, batch, e.cfg.workers)
	rc := runCtx{batch: batch, workers: e.cfg.workers, threshold: e.cfg.threshold, spec: e.scratch, scratch: sb}
	srcs := make([][]float32, 0, 4)
	for si := range e.steps {
		st := &e.steps[si]
		srcs = srcs[:0]
		staged := 0
		for _, in := range st.ins {
			if e.vals[in].loc.kind == locSlotH {
				n := e.vals[in].elems * batch
				buf := stage[staged : staged+n]
				staged += n
				tensor.F16ToF32(buf, resolveH(in))
				srcs = append(srcs, buf)
				continue
			}
			srcs = append(srcs, resolve(in))
		}
		dst := resolve(st.out)
		var dstH []uint16
		if e.vals[st.out].loc.kind == locSlotH {
			dstH = resolveH(st.out)
			n := e.vals[st.out].elems * batch
			dst = stage[staged : staged+n]
		}
		if err := st.kern(&rc, dst, srcs); err != nil {
			putScratch(&e.scratchPool, sb)
			e.putArena(arena)
			e.putArenaH(arenaH)
			e.putStage(stage)
			return nil, fmt.Errorf("inference: node %q (%s): %w", st.name, st.op, err)
		}
		if dstH != nil {
			tensor.F32ToF16(dstH, dst)
		}
	}
	putScratch(&e.scratchPool, sb)
	e.putArena(arena)
	e.putArenaH(arenaH)
	e.putStage(stage)
	result := make(map[string]*tensor.Tensor, len(e.outputVals))
	for i, v := range e.outputVals {
		loc := e.vals[v].loc
		switch loc.kind {
		case locOutput:
			result[e.outputNames[i]] = outs[loc.idx]
		case locInput:
			// A graph output that resolves to an input value passes the
			// caller's tensor through, as in the interpreter.
			result[e.outputNames[i]] = inputs[e.inputNames[loc.idx]]
		}
	}
	return result, nil
}

// RunAll executes the plan and returns every lowered value's activation
// keyed by graph node name, bypassing the arena (each activation gets
// its own tensor so all of them remain valid after the call). It walks
// the unfused step expansion, so fused pre-activation values
// materialize too, and values eliminated by lowering rewrites (identity
// removal, CSE) are reported through their surviving alias.
// Calibration uses this to observe every dynamic range the quantized
// compiler needs. RunAll materializes everything in FP32 and never
// narrows through the halfword arena, so on an FP16-compute plan it is
// the full-precision reference Run's rounded activations compare to.
func (e *Engine) RunAll(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	inBufs, batch, err := e.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	acts := make([]*tensor.Tensor, len(e.vals))
	result := make(map[string]*tensor.Tensor, len(e.vals))
	for i := range e.inputVals {
		result[e.inputNames[i]] = inputs[e.inputNames[i]]
	}
	resolve := func(v int) []float32 {
		if e.vals[v].loc.kind == locInput {
			return inBufs[e.vals[v].loc.idx]
		}
		return acts[v].F32
	}
	sb := getScratch(&e.scratchPool, e.scratch, batch, e.cfg.workers)
	defer putScratch(&e.scratchPool, sb)
	rc := runCtx{batch: batch, workers: e.cfg.workers, threshold: e.cfg.threshold, spec: e.scratch, scratch: sb}
	srcs := make([][]float32, 0, 4)
	for si := range e.fullSteps {
		st := &e.fullSteps[si]
		acts[st.out] = tensor.New(tensor.FP32, append(tensor.Shape{batch}, e.vals[st.out].per...)...)
		srcs = srcs[:0]
		for _, in := range st.ins {
			srcs = append(srcs, resolve(in))
		}
		if err := st.kern(&rc, acts[st.out].F32, srcs); err != nil {
			return nil, fmt.Errorf("inference: node %q (%s): %w", st.name, st.op, err)
		}
		result[st.name] = acts[st.out]
	}
	for name, v := range e.aliases {
		if e.vals[v].loc.kind == locInput {
			result[name] = inputs[e.inputNames[e.vals[v].loc.idx]]
		} else if acts[v] != nil {
			result[name] = acts[v]
		}
	}
	return result, nil
}

// RunSingle is a convenience wrapper for graphs with exactly one input
// and one output.
func (e *Engine) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(e.inputNames) != 1 || len(e.outputNames) != 1 {
		return nil, fmt.Errorf("inference: RunSingle wants 1 input/1 output, graph has %d/%d",
			len(e.inputNames), len(e.outputNames))
	}
	outs, err := e.Run(map[string]*tensor.Tensor{e.inputNames[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[e.outputNames[0]], nil
}

// RunBatch fuses several independent requests into one dispatch: inputs
// are stacked along the batch dimension, the plan runs once, and the
// outputs are split back per request. Serving layers use this to
// amortize dispatch overhead and to give the parallel kernels larger
// work items.
func (e *Engine) RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	return fuseRunBatch(e.Run, e.inputNames, e.inPer, e.outputNames, e.outPer, batches)
}

// fuseRunBatch implements batch fusion generically over any plan whose
// Run consumes and produces FP32 tensors: inputs are stacked along the
// batch dimension, run executes once, and the outputs are split back per
// request. Both the FP32 engine and the quantized engine dispatch fused
// batches through it.
func fuseRunBatch(run func(map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error),
	inputNames []string, inputPer []tensor.Shape,
	outputNames []string, outputPer []tensor.Shape,
	batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {

	if len(batches) == 0 {
		return nil, nil
	}
	if len(batches) == 1 {
		out, err := run(batches[0])
		if err != nil {
			return nil, err
		}
		return []map[string]*tensor.Tensor{out}, nil
	}
	// Per-request batch sizes, from the first declared input.
	sizes := make([]int, len(batches))
	total := 0
	first := inputNames[0]
	for r, req := range batches {
		t, ok := req[first]
		if !ok || t == nil || len(t.Shape) == 0 {
			return nil, fmt.Errorf("inference: request %d: missing input %q", r, first)
		}
		sizes[r] = t.Shape[0]
		total += t.Shape[0]
	}
	// Stack every input.
	stacked := make(map[string]*tensor.Tensor, len(inputNames))
	for i, name := range inputNames {
		perShape := inputPer[i]
		perElems := perShape.NumElements()
		st := tensor.New(tensor.FP32, append(tensor.Shape{total}, perShape...)...)
		off := 0
		for r, req := range batches {
			t, ok := req[name]
			if !ok || t == nil {
				return nil, fmt.Errorf("inference: request %d: missing input %q", r, name)
			}
			want := append(tensor.Shape{sizes[r]}, perShape...)
			if !t.Shape.Equal(want) {
				return nil, fmt.Errorf("inference: request %d: input %q has shape %v, want %v", r, name, t.Shape, want)
			}
			if t.DType == tensor.FP32 {
				copy(st.F32[off:], t.F32)
			} else {
				copy(st.F32[off:], t.Float32s())
			}
			off += sizes[r] * perElems
		}
		stacked[name] = st
	}
	outs, err := run(stacked)
	if err != nil {
		return nil, err
	}
	// Split outputs back per request.
	results := make([]map[string]*tensor.Tensor, len(batches))
	for r := range results {
		results[r] = make(map[string]*tensor.Tensor, len(outputNames))
	}
	for i, name := range outputNames {
		full := outs[name]
		perShape := outputPer[i]
		perElems := perShape.NumElements()
		src := full.F32
		off := 0
		for r := range batches {
			part := tensor.New(tensor.FP32, append(tensor.Shape{sizes[r]}, perShape...)...)
			copy(part.F32, src[off:off+sizes[r]*perElems])
			off += sizes[r] * perElems
			results[r][name] = part
		}
	}
	return results, nil
}
