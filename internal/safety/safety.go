// Package safety implements the paper's DL-safety architecture (§IV-B):
// input-quality monitors that detect accidentally or maliciously
// compromised sensor data (outliers, stuck-at sensors, drift, noise
// bursts, image noise), an output robustness service holding a copy of
// the DL model to verify results, fault injection for evaluating both,
// and the two-part architectural-hybridization pattern [16].
package safety

import (
	"math"

	"vedliot/internal/dataset"
)

// Alarm is one monitor finding.
type Alarm struct {
	Index int
	Kind  dataset.ErrorKind
	Score float64
}

// SeriesMonitorConfig tunes the time-series input monitor.
type SeriesMonitorConfig struct {
	// Window is the sliding statistics window length.
	Window int
	// OutlierSigma flags samples further than this many robust sigmas
	// from the local median.
	OutlierSigma float64
	// StuckLen flags runs of exactly constant samples of this length.
	StuckLen int
	// DriftThreshold flags a rolling-mean deviation beyond this many
	// baseline sigmas (robust to periodic signals, unlike raw CUSUM).
	DriftThreshold float64
	// NoiseFactor flags local noise power above this multiple of the
	// baseline.
	NoiseFactor float64
}

// DefaultSeriesMonitorConfig is calibrated on the synthetic clean series.
func DefaultSeriesMonitorConfig() SeriesMonitorConfig {
	return SeriesMonitorConfig{
		Window:         64,
		OutlierSigma:   5,
		StuckLen:       8,
		DriftThreshold: 0.8,
		NoiseFactor:    6,
	}
}

// MonitorSeries runs all time-series error detectors over the signal
// and returns per-sample alarms.
func MonitorSeries(values []float32, cfg SeriesMonitorConfig) []Alarm {
	var alarms []Alarm
	n := len(values)
	if n == 0 {
		return nil
	}
	w := cfg.Window
	if w < 8 {
		w = 8
	}
	if w > n {
		w = n
	}

	// Baseline statistics: the median of per-chunk statistics across
	// the series. A corrupted stretch (stuck sensor, noise burst) then
	// cannot poison the calibration the way a single "assume the first
	// window is healthy" baseline could.
	var chunkMeans, chunkStds, chunkNoises []float64
	for lo := 0; lo+w <= n; lo += w {
		m, s := meanStd(values[lo : lo+w])
		chunkMeans = append(chunkMeans, m)
		chunkStds = append(chunkStds, s)
		chunkNoises = append(chunkNoises, localNoise(values[lo:lo+w]))
	}
	if len(chunkMeans) == 0 {
		m, s := meanStd(values)
		chunkMeans = []float64{m}
		chunkStds = []float64{s}
		chunkNoises = []float64{localNoise(values)}
	}
	baseMean := medianF64(chunkMeans)
	baseStd := medianF64(chunkStds)
	if baseStd < 1e-6 {
		baseStd = 1e-6
	}
	baseNoise := medianF64(chunkNoises)
	if baseNoise < 1e-9 {
		baseNoise = 1e-9
	}

	// Outliers: deviation from a running median.
	med := make([]float32, n)
	for i := range values {
		lo := i - w/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + w
		if hi > n {
			hi = n
			lo = hi - w
		}
		med[i] = median(values[lo:hi])
	}
	for i, v := range values {
		dev := math.Abs(float64(v-med[i])) / baseStd
		if dev > cfg.OutlierSigma {
			alarms = append(alarms, Alarm{Index: i, Kind: dataset.ErrOutlier, Score: dev})
		}
	}

	// Stuck-at: runs of identical values.
	run := 1
	for i := 1; i < n; i++ {
		if values[i] == values[i-1] {
			run++
			if run == cfg.StuckLen {
				for j := i - run + 1; j <= i; j++ {
					alarms = append(alarms, Alarm{Index: j, Kind: dataset.ErrStuckAt, Score: float64(run)})
				}
			} else if run > cfg.StuckLen {
				alarms = append(alarms, Alarm{Index: i, Kind: dataset.ErrStuckAt, Score: float64(run)})
			}
		} else {
			run = 1
		}
	}

	// Drift: deviation of a centered rolling mean from the baseline
	// mean. Periodic content averages out over the window, so the
	// detector responds to sustained offsets, not oscillation.
	if n > w {
		// Prefix sums for O(1) window means.
		prefix := make([]float64, n+1)
		for i, v := range values {
			prefix[i+1] = prefix[i] + float64(v)
		}
		half := w / 2
		for i := half; i < n-half; i++ {
			m := (prefix[i+half] - prefix[i-half]) / float64(2*half)
			dev := math.Abs(m-baseMean) / baseStd
			if dev > cfg.DriftThreshold {
				alarms = append(alarms, Alarm{Index: i, Kind: dataset.ErrDrift, Score: dev})
			}
		}
	}

	// Noise bursts: local first-difference power.
	half := w / 2
	for i := half; i < n-half; i++ {
		p := localNoise(values[i-half : i+half])
		if p > cfg.NoiseFactor*baseNoise {
			alarms = append(alarms, Alarm{Index: i, Kind: dataset.ErrNoiseBurst, Score: p / baseNoise})
		}
	}
	return alarms
}

func meanStd(xs []float32) (mean, std float64) {
	for _, v := range xs {
		mean += float64(v)
	}
	mean /= float64(len(xs))
	var s float64
	for _, v := range xs {
		d := float64(v) - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(len(xs)))
}

// localNoise estimates the local noise power as the squared median
// absolute first difference. The median makes the estimate robust to a
// few outlier spikes inside the window, so the noise-burst detector
// responds to sustained noise-floor elevation only.
func localNoise(xs []float32) float64 {
	if len(xs) < 2 {
		return 0
	}
	diffs := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		diffs[i-1] = math.Abs(float64(xs[i] - xs[i-1]))
	}
	m := medianF64(diffs)
	return m * m
}

func medianF64(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func median(xs []float32) float32 {
	cp := append([]float32(nil), xs...)
	// Insertion sort: windows are small.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// DetectionReport scores a monitor against ground truth.
type DetectionReport struct {
	// Recall per injected error kind: detected / injected.
	Recall map[dataset.ErrorKind]float64
	// FalseAlarmRate is alarms on clean samples / clean samples.
	FalseAlarmRate float64
}

// EvaluateSeriesMonitor measures monitor quality on a labelled series.
// Detection tolerance: an alarm within ±tolerance samples of an injected
// error counts for that error.
func EvaluateSeriesMonitor(ts dataset.TimeSeries, cfg SeriesMonitorConfig, tolerance int) DetectionReport {
	alarms := MonitorSeries(ts.Values, cfg)
	alarmAt := make(map[int]bool, len(alarms))
	for _, a := range alarms {
		alarmAt[a.Index] = true
	}
	rep := DetectionReport{Recall: make(map[dataset.ErrorKind]float64)}
	injected := make(map[dataset.ErrorKind]int)
	detected := make(map[dataset.ErrorKind]int)
	cleanSamples, falseAlarms := 0, 0
	for i, kind := range ts.Faulty {
		if kind == dataset.ErrNone {
			cleanSamples++
			if alarmAt[i] && !nearFault(ts.Faulty, i, tolerance) {
				falseAlarms++
			}
			continue
		}
		injected[kind]++
		hit := false
		for j := i - tolerance; j <= i+tolerance; j++ {
			if j >= 0 && j < len(ts.Faulty) && alarmAt[j] {
				hit = true
				break
			}
		}
		if hit {
			detected[kind]++
		}
	}
	for kind, n := range injected {
		rep.Recall[kind] = float64(detected[kind]) / float64(n)
	}
	if cleanSamples > 0 {
		rep.FalseAlarmRate = float64(falseAlarms) / float64(cleanSamples)
	}
	return rep
}

func nearFault(faults []dataset.ErrorKind, i, tol int) bool {
	for j := i - tol; j <= i+tol; j++ {
		if j >= 0 && j < len(faults) && faults[j] != dataset.ErrNone {
			return true
		}
	}
	return false
}

// ImageNoiseScore estimates the noise level of an image via the
// mean-absolute Laplacian response — the image-quality monitor for the
// camera inputs.
func ImageNoiseScore(img dataset.Image) float64 {
	if img.W < 3 || img.H < 3 {
		return 0
	}
	var s float64
	for y := 1; y < img.H-1; y++ {
		for x := 1; x < img.W-1; x++ {
			lap := 4*img.Pix[y*img.W+x] -
				img.Pix[y*img.W+x-1] - img.Pix[y*img.W+x+1] -
				img.Pix[(y-1)*img.W+x] - img.Pix[(y+1)*img.W+x]
			s += math.Abs(float64(lap))
		}
	}
	return s / float64((img.W-2)*(img.H-2))
}
