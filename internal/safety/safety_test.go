package safety

import (
	"testing"

	"vedliot/internal/dataset"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func TestMonitorDetectsInjectedErrors(t *testing.T) {
	clean := dataset.CleanSeries(dataset.SeriesConfig{N: 4000, Period: 50, Noise: 0.05, Seed: 1})
	bad := dataset.InjectErrors(clean, dataset.InjectConfig{Rate: 0.01, Seed: 2})
	// Windowed detectors localize faults to half-window granularity.
	tolerance := DefaultSeriesMonitorConfig().Window / 2
	rep := EvaluateSeriesMonitor(bad, DefaultSeriesMonitorConfig(), tolerance)

	for _, kind := range []dataset.ErrorKind{dataset.ErrOutlier, dataset.ErrStuckAt, dataset.ErrNoiseBurst} {
		if rep.Recall[kind] < 0.6 {
			t.Errorf("%s recall = %.2f, want >= 0.6", kind, rep.Recall[kind])
		}
	}
	if rep.Recall[dataset.ErrDrift] < 0.2 {
		t.Errorf("drift recall = %.2f, want >= 0.2", rep.Recall[dataset.ErrDrift])
	}
	if rep.FalseAlarmRate > 0.05 {
		t.Errorf("false alarm rate = %.3f, want <= 0.05", rep.FalseAlarmRate)
	}
}

func TestMonitorQuietOnCleanData(t *testing.T) {
	clean := dataset.CleanSeries(dataset.SeriesConfig{N: 4000, Period: 50, Noise: 0.05, Seed: 3})
	alarms := MonitorSeries(clean.Values, DefaultSeriesMonitorConfig())
	if rate := float64(len(alarms)) / 4000; rate > 0.02 {
		t.Errorf("alarm rate on clean data = %.3f", rate)
	}
}

func TestMonitorEmptyAndShortInputs(t *testing.T) {
	if MonitorSeries(nil, DefaultSeriesMonitorConfig()) != nil {
		t.Error("alarms on empty input")
	}
	// Short inputs must not panic.
	_ = MonitorSeries([]float32{1, 2, 3}, DefaultSeriesMonitorConfig())
}

func TestImageNoiseScoreOrdersByNoise(t *testing.T) {
	clean := dataset.SceneImage(64, 64, 0, 7)
	mild := dataset.SceneImage(64, 64, 0.05, 7)
	heavy := dataset.SceneImage(64, 64, 0.3, 7)
	a, b, c := ImageNoiseScore(clean), ImageNoiseScore(mild), ImageNoiseScore(heavy)
	if !(a < b && b < c) {
		t.Errorf("noise scores not ordered: %.4f, %.4f, %.4f", a, b, c)
	}
	if ImageNoiseScore(dataset.Image{W: 2, H: 2, Pix: make([]float32, 4)}) != 0 {
		t.Error("tiny image should score 0")
	}
}

func TestRobustnessServiceDetectsFaults(t *testing.T) {
	reference := nn.LeNet(16, 4, nn.BuildOptions{Weights: true, Seed: 10})
	deployed := reference.Clone()
	svc, err := NewRobustnessService(reference, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *nn.Graph, in *tensor.Tensor) *tensor.Tensor {
		t.Helper()
		s, err := NewRobustnessService(g, 0) // reuse runner creation
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.reference.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32(i%9)/9 - 0.5
	}

	// Healthy device: output matches.
	healthy := run(deployed, in)
	v, err := svc.Check(in, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("healthy output flagged (divergence %g)", v.Divergence)
	}

	// Fault-injected device: output diverges.
	if n := InjectWeightFaults(deployed, 200, 42); n != 200 {
		t.Fatalf("injected %d faults", n)
	}
	faulty := run(deployed, in)
	v2, err := svc.Check(in, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if v2.OK {
		t.Error("200 weight bit flips went undetected")
	}
	checks, anomalies := svc.Stats()
	if checks != 2 || anomalies != 1 {
		t.Errorf("stats = %d/%d", checks, anomalies)
	}
}

func TestInjectWeightFaultsKeepsFinite(t *testing.T) {
	g := nn.LeNet(16, 4, nn.BuildOptions{Weights: true, Seed: 4})
	InjectWeightFaults(g, 1000, 5)
	for _, n := range g.Nodes {
		for _, w := range n.Weights {
			for _, v := range w.F32 {
				if v != v { // NaN
					t.Fatal("fault injection produced NaN")
				}
			}
		}
	}
	if InjectWeightFaults(nn.NewGraph("empty"), 5, 1) != 0 {
		t.Error("flips applied to weightless graph")
	}
}

func TestHybridFallsBack(t *testing.T) {
	calls := 0
	h := &Hybrid[int]{
		Payload: func() (int, error) {
			calls++
			if calls%2 == 0 {
				return -1, nil // bad result
			}
			return 42, nil
		},
		Check:      func(v int) bool { return v >= 0 },
		SafeAction: func() int { return 0 },
	}
	a := h.Invoke() // good
	b := h.Invoke() // bad -> fallback
	if a != 42 || b != 0 {
		t.Errorf("invokes = %d, %d", a, b)
	}
	uses, falls := h.Stats()
	if uses != 1 || falls != 1 {
		t.Errorf("stats = %d/%d", uses, falls)
	}
}
