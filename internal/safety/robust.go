package safety

import (
	"fmt"
	"math"
	"math/rand"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// RobustnessService is the output-error detector of §IV-B: it "holds a
// copy of the DL model and can verify the correctness of the output
// data" that devices periodically submit. Divergence indicates
// systematic faults injected at run time (hardware faults, attacks) on
// the monitored device.
type RobustnessService struct {
	reference *inference.Runner
	// Tolerance is the maximum acceptable max-abs divergence between
	// submitted and reference outputs.
	Tolerance float64

	checks    int64
	anomalies int64
}

// NewRobustnessService wraps a trusted reference copy of the model.
func NewRobustnessService(reference *nn.Graph, tolerance float64) (*RobustnessService, error) {
	r, err := inference.NewRunner(reference)
	if err != nil {
		return nil, err
	}
	return &RobustnessService{reference: r, Tolerance: tolerance}, nil
}

// Verdict is the outcome of one submission.
type Verdict struct {
	OK         bool
	Divergence float64
}

// Check recomputes the inference on the reference model and compares.
func (s *RobustnessService) Check(input, claimed *tensor.Tensor) (Verdict, error) {
	s.checks++
	want, err := s.reference.RunSingle(input)
	if err != nil {
		return Verdict{}, err
	}
	d, err := tensor.MaxAbsDiff(want, claimed)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{OK: d <= s.Tolerance, Divergence: d}
	if !v.OK {
		s.anomalies++
	}
	return v, nil
}

// Stats returns (checks, anomalies).
func (s *RobustnessService) Stats() (int64, int64) { return s.checks, s.anomalies }

// InjectWeightFaults flips `flips` random bits in the model's weight
// tensors, simulating the run-time hardware faults / attacks of §IV-B.
// It returns the number of flips applied.
func InjectWeightFaults(g *nn.Graph, flips int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	// Collect weight tensors in deterministic (node, key) order so a
	// given seed always produces the same fault pattern.
	var weights []*tensor.Tensor
	for _, n := range g.Nodes {
		for _, key := range n.WeightKeys() {
			w := n.Weights[key]
			if w.DType == tensor.FP32 && w.NumElements() > 0 {
				weights = append(weights, w)
			}
		}
	}
	if len(weights) == 0 {
		return 0
	}
	applied := 0
	for i := 0; i < flips; i++ {
		w := weights[rng.Intn(len(weights))]
		idx := rng.Intn(len(w.F32))
		// Flip upper-mantissa/exponent bits: the SEU class that actually
		// corrupts inference (low-mantissa flips vanish in rounding).
		bit := uint(20 + rng.Intn(11))
		bits := math.Float32bits(w.F32[idx])
		bits ^= 1 << bit
		v := math.Float32frombits(bits)
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			v = 0 // hardware parity machinery would squash these; keep finite
		}
		w.F32[idx] = v
		applied++
	}
	return applied
}

// Hybrid is the architectural-hybridization pattern [16]: a small,
// verified safety kernel supervises an unreliable payload. The payload
// result is used only while the kernel's checks pass; otherwise the
// system falls back to the kernel's safe action.
type Hybrid[T any] struct {
	// Payload computes the full-function result (the DL pipeline).
	Payload func() (T, error)
	// Check validates a payload result (e.g. the robustness service).
	Check func(T) bool
	// SafeAction is the fallback (e.g. brake, de-energize, reject).
	SafeAction func() T

	payloadUses int64
	fallbacks   int64
}

// Invoke runs the payload under supervision.
func (h *Hybrid[T]) Invoke() T {
	out, err := h.Payload()
	if err == nil && h.Check(out) {
		h.payloadUses++
		return out
	}
	h.fallbacks++
	return h.SafeAction()
}

// Stats returns (payload uses, fallbacks).
func (h *Hybrid[T]) Stats() (int64, int64) { return h.payloadUses, h.fallbacks }

// String summarizes a detection report for logs.
func (r DetectionReport) String() string {
	return fmt.Sprintf("recall=%v falseAlarmRate=%.4f", r.Recall, r.FalseAlarmRate)
}
