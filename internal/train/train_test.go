package train

import (
	"testing"

	"vedliot/internal/dataset"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
)

func TestSGDLearnsBlobs(t *testing.T) {
	samples := dataset.Blobs(600, 16, 4, 0.25, 11)
	trainSet, testSet := dataset.Split(samples, 0.25)
	g := nn.MLP("clf", []int{16, 32, 4}, nn.BuildOptions{Weights: true, Seed: 1})

	before, err := Accuracy(g, testSet)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := SGD(g, trainSet, Config{Epochs: 15, LR: 0.1, BatchSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Accuracy(g, testSet)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.9 {
		t.Errorf("test accuracy %.2f < 0.9 (before training: %.2f)", after, before)
	}
	if len(hist.Loss) != 15 {
		t.Errorf("history has %d epochs", len(hist.Loss))
	}
	if hist.Loss[len(hist.Loss)-1] >= hist.Loss[0] {
		t.Errorf("loss did not decrease: %v -> %v", hist.Loss[0], hist.Loss[len(hist.Loss)-1])
	}
}

func TestSGDRejectsNonMLP(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true})
	if _, err := SGD(g, dataset.Blobs(10, 784, 10, 0.1, 1), DefaultConfig()); err == nil {
		t.Error("SGD accepted a CNN")
	}
}

func TestSGDInputValidation(t *testing.T) {
	g := nn.MLP("clf", []int{8, 4, 2}, nn.BuildOptions{Weights: true})
	if _, err := SGD(g, nil, DefaultConfig()); err == nil {
		t.Error("SGD accepted empty dataset")
	}
	bad := []dataset.Sample{{X: []float32{1, 2}, Label: 0}} // wrong dim
	if _, err := SGD(g, bad, DefaultConfig()); err == nil {
		t.Error("SGD accepted wrong feature dim")
	}
	badLabel := []dataset.Sample{{X: make([]float32, 8), Label: 9}}
	if _, err := SGD(g, badLabel, DefaultConfig()); err == nil {
		t.Error("SGD accepted out-of-range label")
	}
}

func TestFreezeZerosKeepsSparsity(t *testing.T) {
	samples := dataset.Blobs(300, 12, 3, 0.3, 5)
	g := nn.MLP("clf", []int{12, 24, 3}, nn.BuildOptions{Weights: true, Seed: 3})
	if _, err := SGD(g, samples, Config{Epochs: 5, LR: 0.1, BatchSize: 16, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	rep, err := optimize.MagnitudePrune(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	zeroedBefore := rep.Zeroed

	// Retrain with frozen zeros.
	if _, err := SGD(g, samples, Config{Epochs: 5, LR: 0.05, BatchSize: 16, Seed: 5, FreezeZeros: true}); err != nil {
		t.Fatal(err)
	}
	var zeroedAfter int64
	for _, n := range g.Nodes {
		w := n.Weight(nn.WeightKey)
		if w == nil {
			continue
		}
		for _, v := range w.F32 {
			if v == 0 {
				zeroedAfter++
			}
		}
	}
	if zeroedAfter < zeroedBefore {
		t.Errorf("retraining destroyed sparsity: %d -> %d zeros", zeroedBefore, zeroedAfter)
	}
}

func TestPruneRetrainRecoversAccuracy(t *testing.T) {
	// The Deep Compression claim in miniature: prune hard, accuracy
	// drops; retrain with frozen zeros, accuracy recovers.
	samples := dataset.Blobs(800, 20, 4, 0.3, 9)
	trainSet, testSet := dataset.Split(samples, 0.25)
	g := nn.MLP("clf", []int{20, 48, 4}, nn.BuildOptions{Weights: true, Seed: 7})
	if _, err := SGD(g, trainSet, Config{Epochs: 20, LR: 0.1, BatchSize: 16, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	accTrained, _ := Accuracy(g, testSet)
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := optimize.MagnitudePrune(g, 0.9); err != nil {
		t.Fatal(err)
	}
	accPruned, _ := Accuracy(g, testSet)
	if _, err := SGD(g, trainSet, Config{Epochs: 10, LR: 0.05, BatchSize: 16, Seed: 9, FreezeZeros: true}); err != nil {
		t.Fatal(err)
	}
	accRetrained, _ := Accuracy(g, testSet)

	if accTrained < 0.85 {
		t.Fatalf("base accuracy %.2f too low for the experiment", accTrained)
	}
	if accRetrained < accPruned-0.01 {
		t.Errorf("retraining did not help: pruned %.2f, retrained %.2f", accPruned, accRetrained)
	}
	if accRetrained < accTrained-0.1 {
		t.Errorf("retrained accuracy %.2f lost more than 10pp vs %.2f", accRetrained, accTrained)
	}
}

func TestAccuracyValidation(t *testing.T) {
	g := nn.MLP("clf", []int{4, 2}, nn.BuildOptions{Weights: true})
	if _, err := Accuracy(g, nil); err == nil {
		t.Error("Accuracy accepted empty set")
	}
	bad := []dataset.Sample{{X: []float32{1}, Label: 0}}
	if _, err := Accuracy(g, bad); err == nil {
		t.Error("Accuracy accepted wrong dim")
	}
}
