// Package train provides a minimal SGD trainer for fully connected
// graphs (Dense / ReLU / Softmax).
//
// The paper's toolchain assumes models arrive pre-trained (step 2 of the
// deployment flow, §III, is "model training, usually transfer
// learning"). The compression study nevertheless needs *trained* weights
// — pruning random weights says nothing about accuracy loss — so this
// package trains the LeNet-300-100-class MLPs used by the Deep
// Compression reproduction and the Industrial-IoT classifiers on the
// synthetic datasets. Convolutional training is out of scope; CNN
// experiments use feature-engineered MLP heads instead.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"vedliot/internal/dataset"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Config controls SGD.
type Config struct {
	Epochs    int
	LR        float32
	BatchSize int
	Seed      int64
	// FreezeZeros keeps exactly-zero weights at zero, implementing the
	// masked retraining step of Deep Compression's prune-retrain loop.
	FreezeZeros bool
	// L2 is the weight-decay coefficient.
	L2 float32
}

// DefaultConfig is a sensible starting point for the synthetic tasks.
func DefaultConfig() Config {
	return Config{Epochs: 10, LR: 0.05, BatchSize: 16, Seed: 1}
}

// History records per-epoch training loss.
type History struct {
	Loss []float64
}

// layer is one trainable dense layer extracted from the graph.
type layer struct {
	node *nn.Node
	w    *tensor.Tensor
	b    *tensor.Tensor
	in   int
	out  int
	relu bool // followed by ReLU
}

// extractMLP validates that g is a trainable MLP and returns its layers
// in forward order.
func extractMLP(g *nn.Graph) ([]layer, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	var layers []layer
	for i, n := range order {
		switch n.Op {
		case nn.OpInput, nn.OpSoftmax, nn.OpFlatten:
			continue
		case nn.OpDense:
			w := n.Weight(nn.WeightKey)
			b := n.Weight(nn.BiasKey)
			if w == nil || b == nil {
				return nil, fmt.Errorf("train: dense %q lacks weights", n.Name)
			}
			relu := false
			if i+1 < len(order) && order[i+1].Op == nn.OpReLU {
				relu = true
			}
			layers = append(layers, layer{
				node: n, w: w, b: b,
				in: w.Shape[1], out: w.Shape[0], relu: relu,
			})
		case nn.OpReLU:
			continue
		default:
			return nil, fmt.Errorf("train: op %s not trainable (MLPs only)", n.Op)
		}
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("train: no dense layers found")
	}
	return layers, nil
}

// SGD trains g in place with softmax cross-entropy loss.
func SGD(g *nn.Graph, samples []dataset.Sample, cfg Config) (History, error) {
	layers, err := extractMLP(g)
	if err != nil {
		return History{}, err
	}
	if len(samples) == 0 {
		return History{}, fmt.Errorf("train: no samples")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Zero masks for FreezeZeros mode, captured before training.
	var masks [][]bool
	if cfg.FreezeZeros {
		masks = make([][]bool, len(layers))
		for li, l := range layers {
			m := make([]bool, len(l.w.F32))
			for i, v := range l.w.F32 {
				m[i] = v == 0
			}
			masks[li] = m
		}
	}

	hist := History{}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	// Forward caches.
	acts := make([][]float32, len(layers)+1)
	pre := make([][]float32, len(layers))
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for bi := 0; bi < len(idx); bi += cfg.BatchSize {
			end := bi + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[bi:end]
			// Gradient accumulators.
			gw := make([][]float32, len(layers))
			gb := make([][]float32, len(layers))
			for li, l := range layers {
				gw[li] = make([]float32, len(l.w.F32))
				gb[li] = make([]float32, len(l.b.F32))
			}
			for _, si := range batch {
				s := samples[si]
				if len(s.X) != layers[0].in {
					return hist, fmt.Errorf("train: sample dim %d != input %d", len(s.X), layers[0].in)
				}
				// Forward.
				acts[0] = s.X
				for li, l := range layers {
					z := make([]float32, l.out)
					for o := 0; o < l.out; o++ {
						acc := l.b.F32[o]
						row := l.w.F32[o*l.in : (o+1)*l.in]
						for i, x := range acts[li] {
							acc += x * row[i]
						}
						z[o] = acc
					}
					pre[li] = z
					a := z
					if l.relu {
						a = make([]float32, l.out)
						for i, v := range z {
							if v > 0 {
								a[i] = v
							}
						}
					}
					acts[li+1] = a
				}
				// Softmax + cross-entropy on final layer.
				logits := acts[len(layers)]
				probs := softmax(logits)
				if s.Label < 0 || s.Label >= len(probs) {
					return hist, fmt.Errorf("train: label %d out of range", s.Label)
				}
				p := float64(probs[s.Label])
				if p < 1e-12 {
					p = 1e-12
				}
				epochLoss += -math.Log(p)

				// Backward.
				delta := make([]float32, len(probs))
				copy(delta, probs)
				delta[s.Label]--
				for li := len(layers) - 1; li >= 0; li-- {
					l := layers[li]
					aPrev := acts[li]
					for o := 0; o < l.out; o++ {
						d := delta[o]
						if d == 0 {
							continue
						}
						gb[li][o] += d
						row := gw[li][o*l.in : (o+1)*l.in]
						for i, x := range aPrev {
							row[i] += d * x
						}
					}
					if li > 0 {
						prev := make([]float32, l.in)
						for o := 0; o < l.out; o++ {
							d := delta[o]
							if d == 0 {
								continue
							}
							row := l.w.F32[o*l.in : (o+1)*l.in]
							for i := range prev {
								prev[i] += d * row[i]
							}
						}
						// ReLU derivative of the previous layer.
						if layers[li-1].relu {
							for i := range prev {
								if pre[li-1][i] <= 0 {
									prev[i] = 0
								}
							}
						}
						delta = prev
					}
				}
			}
			// Apply averaged gradients.
			scale := cfg.LR / float32(len(batch))
			for li, l := range layers {
				for i := range l.w.F32 {
					if cfg.FreezeZeros && masks[li][i] {
						continue
					}
					l.w.F32[i] -= scale*gw[li][i] + cfg.LR*cfg.L2*l.w.F32[i]
				}
				for i := range l.b.F32 {
					l.b.F32[i] -= scale * gb[li][i]
				}
			}
		}
		hist.Loss = append(hist.Loss, epochLoss/float64(len(samples)))
	}
	return hist, nil
}

func softmax(logits []float32) []float32 {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float32, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxV))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// Accuracy evaluates top-1 accuracy of any single-input/single-output
// classifier graph on the samples, using the reference runtime. Sample
// vectors are reshaped to the graph's input shape.
func Accuracy(g *nn.Graph, samples []dataset.Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("train: no samples")
	}
	r, err := inference.NewRunner(g)
	if err != nil {
		return 0, err
	}
	if err := g.InferShapes(1); err != nil {
		return 0, err
	}
	inShape := g.Node(g.Inputs[0]).OutShape
	correct := 0
	for _, s := range samples {
		in := tensor.New(tensor.FP32, inShape...)
		if len(s.X) != in.NumElements() {
			return 0, fmt.Errorf("train: sample dim %d != input size %d", len(s.X), in.NumElements())
		}
		copy(in.F32, s.X)
		out, err := r.RunSingle(in)
		if err != nil {
			return 0, err
		}
		if tensor.ArgMax(out) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}
