// Package zoo is the shared servable model zoo of the toolchain CLIs:
// named, deterministic (seeded) model constructors with a 1-input/
// 1-output serving shape, usable by vedliot-serve (fleet deployment),
// vedliot-pack (artifact packaging) and tests. Entries mirror the
// paper's use-case networks; every build is reproducible, so a packed
// .vedz artifact of a zoo entry has a stable content digest.
package zoo

import (
	"fmt"
	"sort"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Entry is one zoo model: a named deterministic constructor.
type Entry struct {
	// Name is the CLI identifier (e.g. "mirror-face").
	Name string
	// About is the one-line description shown by -list-models.
	About string
	// Build constructs the weighted graph; repeated calls are
	// identical (fixed seed).
	Build func() *nn.Graph
}

// entries is the registry, keyed by Entry.Name.
var entries = map[string]Entry{}

func register(e Entry) {
	entries[e.Name] = e
}

func init() {
	register(Entry{"mirror-face", "smart-mirror face detector (Fig. 5 stage 1)",
		func() *nn.Graph { return nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 91}) }})
	register(Entry{"mirror-face-fp16", "face detector, FP16-stored weights (FP16-compute path)",
		func() *nn.Graph {
			return WeightsToFP16(nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 91}))
		}})
	register(Entry{"mirror-gesture", "smart-mirror gesture classifier",
		func() *nn.Graph { return nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77}) }})
	register(Entry{"mirror-embed", "smart-mirror face embedding (FaceNet stand-in)",
		func() *nn.Graph { return nn.FaceEmbedNet(32, 64, nn.BuildOptions{Weights: true, Seed: 23}) }})
	register(Entry{"motor", "motor-condition classifier (§V-B)",
		func() *nn.Graph { return nn.MotorNet(256, 3, nn.BuildOptions{Weights: true, Seed: 31}) }})
	register(Entry{"arc", "DC-arc detector (§V-B)",
		func() *nn.Graph { return nn.ArcNet(256, nn.BuildOptions{Weights: true, Seed: 37}) }})
	register(Entry{"lenet", "LeNet-class CNN (compression study)",
		func() *nn.Graph { return nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 1}) }})
	register(Entry{"mlp", "LeNet-300-100 MLP (Deep Compression reproduction)",
		func() *nn.Graph {
			return nn.MLP("lenet-300-100", []int{784, 300, 100, 10}, nn.BuildOptions{Weights: true, Seed: 1})
		}})
	register(Entry{"mobilenetedge", "MobileNet-style edge CNN (INT8 runtime study)",
		func() *nn.Graph { return nn.MobileNetEdge(64, 10, nn.BuildOptions{Weights: true, Seed: 3}) }})
	register(Entry{"tiny", "tiny smoke-test MLP (golden artifact, CI)",
		func() *nn.Graph { return nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}) }})
}

// Entries returns every zoo entry sorted by name.
func Entries() []Entry {
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the named entry.
func Find(name string) (Entry, error) {
	e, ok := entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("zoo: unknown model %q (known: %v)", name, names())
	}
	return e, nil
}

func names() []string {
	out := make([]string, 0, len(entries))
	for n := range entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WeightsToFP16 converts every node's main weight tensor (conv filters,
// dense matrices — nn.WeightKey) to FP16 storage in place and returns
// the graph. Biases and batch-norm statistics stay FP32, the standard
// mixed-precision split. The plain FP32 engine dequantizes such weights
// at compile time; compiled with inference.PrecisionFP16Compute they
// stay half-width in the packed GEMM panels and widen on load, which is
// what the FP16 zoo entries exist to exercise.
func WeightsToFP16(g *nn.Graph) *nn.Graph {
	for _, n := range g.Nodes {
		if w, ok := n.Weights[nn.WeightKey]; ok && w != nil && w.DType == tensor.FP32 {
			n.Weights[nn.WeightKey] = w.Convert(tensor.FP16)
		}
	}
	return g
}
