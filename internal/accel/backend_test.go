package accel

import (
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func TestBackendCompileAndRun(t *testing.T) {
	dev, err := FindDevice("Xavier NX")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(dev)
	g := nn.GestureNet(32, 4, nn.BuildOptions{Weights: true, Seed: 42})
	exe, err := b.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := exe.(*Program)
	if !ok {
		t.Fatalf("Compile returned %T, want *Program", exe)
	}

	// Functional execution is bit-accurate with the host CPU engine.
	cpu, err := inference.CPUBackend{}.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 2, 1, 32, 32)
	for i := range in.F32 {
		in.F32[i] = float32(i%11)/11 - 0.5
	}
	inputs := map[string]*tensor.Tensor{g.Inputs[0]: in}
	want, err := cpu.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		d, err := tensor.MaxAbsDiff(w, got[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d != 0 {
			t.Errorf("%s: accel program diverges from CPU engine by %g", name, d)
		}
	}

	// Modeled latency comes from the roofline and improves with batch.
	l1, err := prog.PredictLatency(1)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := prog.Predict(8)
	if err != nil {
		t.Fatal(err)
	}
	if l1 <= 0 {
		t.Errorf("batch-1 latency = %v", l1)
	}
	perInf1 := float64(l1)
	perInf8 := m8.LatencyMS * float64(1e6) / 8 // ns per inference at batch 8
	if perInf8 >= perInf1 {
		t.Errorf("batching did not amortize: %v ns/inf at b=1 vs %v at b=8", perInf1, perInf8)
	}
}

func TestBackendRejectsUnsupportedPrecision(t *testing.T) {
	dev, err := FindDevice("EdgeTPU SoM") // INT8-only ASIC
	if err != nil {
		t.Fatal(err)
	}
	b := &Backend{Device: dev, Precision: tensor.FP32}
	g := nn.MLP("m", []int{4, 2}, nn.BuildOptions{Weights: true, Seed: 1})
	if _, err := b.Compile(g); err == nil {
		t.Error("compile succeeded at a precision the device does not support")
	}
}
