package accel

import (
	"fmt"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Backend adapts a modeled Device to the inference.Backend interface:
// programs compiled for a simulated accelerator execute functionally on
// the host CPU engine while latency, throughput and power come from the
// device's roofline model. The real CPU engine (inference.CPUBackend)
// and every simulated accelerator therefore satisfy one compile-and-run
// interface — the cross-accelerator methodology of the paper's Fig. 4
// evaluation, where the same network is deployed unchanged across
// heterogeneous targets.
type Backend struct {
	Device *Device
	// Precision is the precision the device runs the model at. The
	// zero value (FP32) is used as-is; use NewBackend to default to the
	// device's fastest supported precision.
	Precision tensor.DType
	// EngineOptions configure the host engine that provides the
	// functional execution.
	EngineOptions []inference.Option
}

// NewBackend wraps a device, running it at its best supported precision.
func NewBackend(d *Device) *Backend {
	return &Backend{Device: d, Precision: d.BestPrecision()}
}

// Name implements inference.Backend.
func (b *Backend) Name() string { return "accel:" + b.Device.Name }

// Compile implements inference.Backend: it compiles the graph on the
// host engine for functional execution and derives the device-model
// workload once, so every later latency prediction is a closed-form
// roofline evaluation.
func (b *Backend) Compile(g *nn.Graph, opts ...inference.Option) (inference.Executable, error) {
	if b.Device == nil {
		return nil, fmt.Errorf("accel: backend has no device")
	}
	if !b.Device.Supports(b.Precision) {
		return nil, fmt.Errorf("accel: %s does not support %s", b.Device.Name, b.Precision)
	}
	eng, err := inference.Compile(g, append(append([]inference.Option(nil), b.EngineOptions...), opts...)...)
	if err != nil {
		return nil, err
	}
	// The workload derivation needs batch-1 shapes; snapshot and restore
	// OutShapes so Compile stays observably side-effect free, matching
	// inference.Compile.
	saved := make([]tensor.Shape, len(g.Nodes))
	for i, n := range g.Nodes {
		saved[i] = n.OutShape
	}
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	w, err := WorkloadFromGraph(g, b.Precision)
	for i, n := range g.Nodes {
		n.OutShape = saved[i]
	}
	if err != nil {
		return nil, err
	}
	return &Program{Engine: eng, device: b.Device, workload: w, precision: b.Precision}, nil
}

var _ inference.Backend = (*Backend)(nil)

// Program is a model compiled for a simulated accelerator: the embedded
// host Engine supplies bit-accurate execution (Run/RunBatch/RunSingle),
// and the device model predicts what the target hardware would measure.
type Program struct {
	*inference.Engine

	device    *Device
	workload  Workload
	precision tensor.DType
}

var _ inference.Executable = (*Program)(nil)

// Device returns the modeled device.
func (p *Program) Device() *Device { return p.device }

// HostEngine returns the host CPU engine that provides the program's
// functional execution. Serving layers use it to reach the shared
// engine regardless of which backend compiled the model.
func (p *Program) HostEngine() *inference.Engine { return p.Engine }

// Precision returns the precision the device model is evaluated at.
func (p *Program) Precision() tensor.DType { return p.precision }

// Predict evaluates the device's roofline model for a batch of the
// compiled workload.
func (p *Program) Predict(batch int) (Measurement, error) {
	return p.device.Evaluate(p.workload, p.precision, batch)
}

// PredictLatency returns the modeled end-to-end latency for a batch.
func (p *Program) PredictLatency(batch int) (time.Duration, error) {
	m, err := p.Predict(batch)
	if err != nil {
		return 0, err
	}
	return time.Duration(m.LatencyMS * float64(time.Millisecond)), nil
}
