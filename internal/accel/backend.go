package accel

import (
	"errors"
	"fmt"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Backend adapts a modeled Device to the inference.Backend interface:
// programs compiled for a simulated accelerator execute functionally on
// the host engine while latency, throughput and power come from the
// device's roofline model. The real CPU engine (inference.CPUBackend)
// and every simulated accelerator therefore satisfy one compile-and-run
// interface — the cross-accelerator methodology of the paper's Fig. 4
// evaluation, where the same network is deployed unchanged across
// heterogeneous targets.
//
// When the backend runs at INT8 and a calibration schema is attached,
// functional execution goes through the native quantized engine
// (inference.CompileQuantized) instead of the FP32 engine — the
// INT8-only device models (EdgeTPU class) then produce genuinely
// quantized outputs, making their roofline predictions honest about
// the arithmetic the modeled silicon performs.
type Backend struct {
	Device *Device
	// Precision is the precision the device runs the model at. The
	// zero value (FP32) is used as-is; use NewBackend to default to the
	// device's fastest supported precision.
	Precision tensor.DType
	// Schema is the activation calibration artifact enabling native
	// INT8 execution. Nil keeps the FP32 functional path (with INT8
	// weights dequantized at compile time), preserving bit-exact parity
	// with the host engine.
	Schema *nn.QuantSchema
	// EngineOptions configure the host engine that provides the
	// functional execution.
	EngineOptions []inference.Option
}

// NewBackend wraps a device, running it at its best supported precision.
func NewBackend(d *Device) *Backend {
	return &Backend{Device: d, Precision: d.BestPrecision()}
}

// NewQuantizedBackend wraps a device for native INT8 execution under
// the given calibration schema.
func NewQuantizedBackend(d *Device, schema *nn.QuantSchema) *Backend {
	return &Backend{Device: d, Precision: tensor.INT8, Schema: schema}
}

// Name implements inference.Backend.
func (b *Backend) Name() string { return "accel:" + b.Device.Name }

// Compile implements inference.Backend: it compiles the graph on the
// host engine for functional execution and derives the device-model
// workload once, so every later latency prediction is a closed-form
// roofline evaluation.
func (b *Backend) Compile(g *nn.Graph, opts ...inference.Option) (inference.Executable, error) {
	if b.Device == nil {
		return nil, fmt.Errorf("accel: backend has no device")
	}
	if !b.Device.Supports(b.Precision) {
		return nil, fmt.Errorf("accel: %s does not support %s", b.Device.Name, b.Precision)
	}
	engOpts := append(append([]inference.Option(nil), b.EngineOptions...), opts...)
	var exec inference.Executable
	quantized := false
	if b.Precision == tensor.INT8 && b.Schema != nil {
		q, err := inference.CompileQuantized(g, b.Schema, engOpts...)
		switch {
		case err == nil:
			exec, quantized = q, true
		case errors.Is(err, inference.ErrNotQuantizable):
			// Schema does not cover this graph: degrade to the FP32
			// functional path rather than failing the deploy.
		default:
			return nil, err
		}
	}
	if exec == nil {
		eng, err := inference.Compile(g, engOpts...)
		if err != nil {
			return nil, err
		}
		exec = eng
	}
	// The workload derivation needs batch-1 shapes; snapshot and restore
	// OutShapes so Compile stays observably side-effect free, matching
	// inference.Compile.
	saved := make([]tensor.Shape, len(g.Nodes))
	for i, n := range g.Nodes {
		saved[i] = n.OutShape
	}
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	w, err := WorkloadFromGraph(g, b.Precision)
	for i, n := range g.Nodes {
		n.OutShape = saved[i]
	}
	if err != nil {
		return nil, err
	}
	return &Program{exec: exec, device: b.Device, workload: w, precision: b.Precision, quantized: quantized}, nil
}

var _ inference.Backend = (*Backend)(nil)

// Program is a model compiled for a simulated accelerator: the embedded
// host executable supplies functional execution (the FP32 engine, or
// the native quantized engine for INT8 deployments with a calibration
// schema), and the device model predicts what the target hardware would
// measure.
type Program struct {
	exec      inference.Executable
	device    *Device
	workload  Workload
	precision tensor.DType
	quantized bool
}

var _ inference.Executable = (*Program)(nil)

// Run implements inference.Executable.
func (p *Program) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return p.exec.Run(inputs)
}

// RunBatch implements inference.Executable.
func (p *Program) RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	return p.exec.RunBatch(batches)
}

// singleRunner is the RunSingle convenience both host engines provide.
type singleRunner interface {
	RunSingle(*tensor.Tensor) (*tensor.Tensor, error)
}

// RunSingle is the single-tensor shortcut for 1-in/1-out graphs.
func (p *Program) RunSingle(in *tensor.Tensor) (*tensor.Tensor, error) {
	return p.exec.(singleRunner).RunSingle(in)
}

// Device returns the modeled device.
func (p *Program) Device() *Device { return p.device }

// Executable returns the host executable providing functional
// execution.
func (p *Program) Executable() inference.Executable { return p.exec }

// HostEngine returns the host FP32 engine backing the program, or nil
// when the program executes on the native quantized engine. Serving
// layers use it to reach the shared engine regardless of which backend
// compiled the model.
func (p *Program) HostEngine() *inference.Engine {
	eng, _ := p.exec.(*inference.Engine)
	return eng
}

// Quantized reports whether functional execution runs on the native
// INT8 engine.
func (p *Program) Quantized() bool { return p.quantized }

// Precision returns the precision the device model is evaluated at.
func (p *Program) Precision() tensor.DType { return p.precision }

// Predict evaluates the device's roofline model for a batch of the
// compiled workload.
func (p *Program) Predict(batch int) (Measurement, error) {
	return p.device.Evaluate(p.workload, p.precision, batch)
}

// PredictLatency returns the modeled end-to-end latency for a batch.
func (p *Program) PredictLatency(batch int) (time.Duration, error) {
	m, err := p.Predict(batch)
	if err != nil {
		return 0, err
	}
	return time.Duration(m.LatencyMS * float64(time.Millisecond)), nil
}
