package accel

import (
	"fmt"
	"math"

	"vedliot/internal/tensor"
)

// The paper explores four DL-accelerator classes (§II-B):
//  1. existing off-the-shelf parts,
//  2. statically configured FPGA accelerators,
//  3. dynamically reconfigurable accelerators, and
//  4. fully simultaneous hardware/software co-design.
// This file models classes 2-4 on top of a parameterizable systolic
// array, and implements the co-design search loop with the "feedback is
// given to the models" step (channel-count suggestions).

// ArrayConfig parameterizes a synthesizable MAC-array accelerator.
type ArrayConfig struct {
	Rows, Cols int     // PE array dimensions
	ClockGHz   float64 // target clock after place and route
	// OnChipKiB is the activation/weight buffer size.
	OnChipKiB int
}

// Valid reports whether the configuration is realizable.
func (c ArrayConfig) Valid() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("accel: array %dx%d", c.Rows, c.Cols)
	}
	if c.ClockGHz <= 0 || c.ClockGHz > 1.5 {
		return fmt.Errorf("accel: clock %.2f GHz outside (0,1.5]", c.ClockGHz)
	}
	if c.OnChipKiB <= 0 {
		return fmt.Errorf("accel: on-chip buffer %d KiB", c.OnChipKiB)
	}
	return nil
}

// PEs returns the processing-element count.
func (c ArrayConfig) PEs() int { return c.Rows * c.Cols }

// Synthesize derives a Device model from an array configuration: peak =
// 2 ops/PE/cycle at INT8 (one MAC), half that at FP16. Power scales with
// PE count and clock; bandwidth with buffer size. Coefficients are
// calibrated so a 32x32 array at 0.3 GHz lands near the ZU3 DPU point.
func (c ArrayConfig) Synthesize(name string) (*Device, error) {
	if err := c.Valid(); err != nil {
		return nil, err
	}
	pes := float64(c.PEs())
	peakINT8 := 2 * pes * c.ClockGHz // GOPS
	// Dynamic power: ~0.35 mW per PE per GHz plus static floor.
	maxW := 0.5 + pes*c.ClockGHz*0.00035*20
	idleW := 0.3 + maxW*0.15
	bw := 2 + float64(c.OnChipKiB)/64
	return &Device{
		Name:  name,
		Class: ClassFPGA,
		PeakGOPS: map[tensor.DType]float64{
			tensor.INT8: peakINT8,
			tensor.FP16: peakINT8 / 2,
		},
		MemBWGBs:   bw,
		IdleW:      idleW,
		MaxW:       maxW,
		SatBatch:   1,
		MaxUtil:    0.65,
		OverheadMS: 0.5,
	}, nil
}

// StaticAccelerator is class 2: configured once before deployment.
type StaticAccelerator struct {
	Config ArrayConfig
	Dev    *Device
}

// NewStaticAccelerator synthesizes a fixed-function accelerator.
func NewStaticAccelerator(cfg ArrayConfig) (*StaticAccelerator, error) {
	dev, err := cfg.Synthesize(fmt.Sprintf("static-%dx%d@%.0fMHz", cfg.Rows, cfg.Cols, cfg.ClockGHz*1000))
	if err != nil {
		return nil, err
	}
	return &StaticAccelerator{Config: cfg, Dev: dev}, nil
}

// ReconfigurableAccelerator is class 3: it holds several bitstream
// profiles and can partially reconfigure between them at run time,
// trading a reconfiguration delay for a better power/performance fit —
// the run-time adaptation described in §II-A.
type ReconfigurableAccelerator struct {
	Profiles []ArrayConfig
	// ReconfigMS is the partial-reconfiguration time.
	ReconfigMS float64

	active int
	devs   []*Device
}

// NewReconfigurable builds an accelerator with the given profiles;
// profile 0 starts active.
func NewReconfigurable(profiles []ArrayConfig, reconfigMS float64) (*ReconfigurableAccelerator, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("accel: no profiles")
	}
	r := &ReconfigurableAccelerator{Profiles: profiles, ReconfigMS: reconfigMS}
	for i, p := range profiles {
		dev, err := p.Synthesize(fmt.Sprintf("reconf-p%d-%dx%d", i, p.Rows, p.Cols))
		if err != nil {
			return nil, err
		}
		r.devs = append(r.devs, dev)
	}
	return r, nil
}

// Active returns the currently loaded profile's device model.
func (r *ReconfigurableAccelerator) Active() *Device { return r.devs[r.active] }

// ActiveIndex returns the index of the loaded profile.
func (r *ReconfigurableAccelerator) ActiveIndex() int { return r.active }

// Switch loads profile i, returning the reconfiguration delay incurred
// (zero when already active).
func (r *ReconfigurableAccelerator) Switch(i int) (delayMS float64, err error) {
	if i < 0 || i >= len(r.devs) {
		return 0, fmt.Errorf("accel: profile %d of %d", i, len(r.devs))
	}
	if i == r.active {
		return 0, nil
	}
	r.active = i
	return r.ReconfigMS, nil
}

// BestProfileFor selects the profile that meets a latency deadline at
// minimum power for the workload, returning its index. If none meets
// the deadline the fastest profile is returned.
func (r *ReconfigurableAccelerator) BestProfileFor(w Workload, precision tensor.DType, deadlineMS float64) int {
	best := -1
	bestPower := math.Inf(1)
	fastest := 0
	fastestLat := math.Inf(1)
	for i, d := range r.devs {
		m, err := d.Evaluate(w, precision, 1)
		if err != nil {
			continue
		}
		if m.LatencyMS < fastestLat {
			fastest, fastestLat = i, m.LatencyMS
		}
		if m.LatencyMS <= deadlineMS && m.PowerW < bestPower {
			best, bestPower = i, m.PowerW
		}
	}
	if best < 0 {
		return fastest
	}
	return best
}

// CoDesignConstraints bound the class-4 search.
type CoDesignConstraints struct {
	LatencyMS float64 // deadline per inference
	PowerW    float64 // power envelope
	Precision tensor.DType
}

// CoDesignResult is the outcome of the simultaneous search.
type CoDesignResult struct {
	Config ArrayConfig
	Dev    *Device
	M      Measurement
	// SuggestedChannelMultiple is the model-side feedback: aligning
	// layer channel counts to this multiple keeps the PE array full.
	SuggestedChannelMultiple int
	// Feasible reports whether both constraints were met.
	Feasible bool
}

// CoDesign is class 4: it sweeps array configurations and, for each,
// evaluates the workload, returning the lowest-energy feasible design.
// The search also produces feedback for the model side — the channel
// multiple that maximizes PE utilization — closing the loop the paper
// describes ("feedback is given to the models so that optimizations can
// be tuned for better hardware utilization").
func CoDesign(w Workload, cons CoDesignConstraints) (CoDesignResult, error) {
	if cons.LatencyMS <= 0 || cons.PowerW <= 0 {
		return CoDesignResult{}, fmt.Errorf("accel: constraints must be positive")
	}
	precision := cons.Precision
	var best CoDesignResult
	bestEnergy := math.Inf(1)
	var fallback CoDesignResult
	fallbackLat := math.Inf(1)

	for _, rows := range []int{8, 16, 32, 64, 128} {
		for _, cols := range []int{8, 16, 32, 64, 128} {
			for _, clk := range []float64{0.2, 0.3, 0.5, 0.8} {
				cfg := ArrayConfig{Rows: rows, Cols: cols, ClockGHz: clk, OnChipKiB: 16 * rows}
				dev, err := cfg.Synthesize(fmt.Sprintf("codesign-%dx%d@%.0fMHz", rows, cols, clk*1000))
				if err != nil {
					continue
				}
				if !dev.Supports(precision) {
					continue
				}
				m, err := dev.Evaluate(w, precision, 1)
				if err != nil {
					continue
				}
				res := CoDesignResult{
					Config:                   cfg,
					Dev:                      dev,
					M:                        m,
					SuggestedChannelMultiple: cols,
				}
				if m.LatencyMS < fallbackLat {
					fallback, fallbackLat = res, m.LatencyMS
				}
				if m.LatencyMS <= cons.LatencyMS && m.PowerW <= cons.PowerW {
					energy := m.PowerW * m.LatencyMS
					if energy < bestEnergy {
						res.Feasible = true
						best, bestEnergy = res, energy
					}
				}
			}
		}
	}
	if !best.Feasible {
		return fallback, nil
	}
	return best, nil
}
