package accel

import (
	"math"
	"testing"
	"testing/quick"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func yoloWorkload(t *testing.T) Workload {
	t.Helper()
	g := nn.YoloV4(608, 80, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSurveyClusterAroundOneTOPSW(t *testing.T) {
	// Fig. 3's headline observation: most architectures cluster around
	// ~1 TOPS/W regardless of absolute performance. Verify the geometric
	// mean lies within a factor of ~3 of 1 TOPS/W and that the spread of
	// absolute power spans at least five decades.
	entries := Survey()
	if len(entries) < 30 {
		t.Fatalf("survey has only %d entries", len(entries))
	}
	var logSum float64
	minW, maxW := math.Inf(1), 0.0
	for _, e := range entries {
		eff := e.TOPSW()
		if eff <= 0 {
			t.Fatalf("%s has nonpositive efficiency", e.Name)
		}
		logSum += math.Log10(eff)
		if e.PowerW < minW {
			minW = e.PowerW
		}
		if e.PowerW > maxW {
			maxW = e.PowerW
		}
	}
	geoMean := math.Pow(10, logSum/float64(len(entries)))
	if geoMean < 1.0/3 || geoMean > 3 {
		t.Errorf("geometric-mean efficiency %.2f TOPS/W not within 3x of 1", geoMean)
	}
	if maxW/minW < 1e5 {
		t.Errorf("power range %g-%g W spans < 5 decades", minW, maxW)
	}
}

func TestSurveyHasIPCores(t *testing.T) {
	n := 0
	for _, e := range Survey() {
		if e.IPCore {
			n++
		}
	}
	if n < 5 {
		t.Errorf("only %d IP cores in survey", n)
	}
}

func TestEvaluationPlatformsCoverPaperSet(t *testing.T) {
	want := []string{
		"Xavier AGX (HP)", "Xavier AGX (LP)", "Xavier NX", "Jetson TX2",
		"GTX1660", "D1577", "Epic3451", "Myriad", "ZU15 2xB4096", "ZU3 B2304",
	}
	have := map[string]bool{}
	for _, d := range EvaluationPlatforms() {
		have[d.Name] = true
		if d.MaxW <= d.IdleW {
			t.Errorf("%s: MaxW %v <= IdleW %v", d.Name, d.MaxW, d.IdleW)
		}
		if d.MemBWGBs <= 0 || d.MaxUtil <= 0 || d.MaxUtil > 1 {
			t.Errorf("%s: implausible parameters", d.Name)
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("missing platform %s", n)
		}
	}
}

func TestEvaluateBasicProperties(t *testing.T) {
	w := yoloWorkload(t)
	dev, err := FindDevice("Xavier AGX (HP)")
	if err != nil {
		t.Fatal(err)
	}
	m, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyMS <= 0 || m.GOPS <= 0 {
		t.Fatalf("degenerate measurement %+v", m)
	}
	if m.GOPS >= dev.PeakGOPS[tensor.INT8] {
		t.Errorf("achieved %v GOPS >= peak %v: roofline not applied", m.GOPS, dev.PeakGOPS[tensor.INT8])
	}
	if m.PowerW < dev.IdleW || m.PowerW > dev.MaxW {
		t.Errorf("power %v outside [%v, %v]", m.PowerW, dev.IdleW, dev.MaxW)
	}
}

func TestBatchingImprovesThroughput(t *testing.T) {
	// Fig. 4: B8 points sit above B1 points for GPUs.
	w := yoloWorkload(t)
	dev, _ := FindDevice("GTX1660")
	m1, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := dev.Evaluate(w, tensor.INT8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m8.GOPS <= m1.GOPS {
		t.Errorf("batch 8 (%.0f GOPS) not faster than batch 1 (%.0f GOPS)", m8.GOPS, m1.GOPS)
	}
}

func TestPrecisionOrdering(t *testing.T) {
	// INT8 > FP16 > FP32 throughput on devices supporting all three.
	w := yoloWorkload(t)
	for _, name := range []string{"Xavier AGX (HP)", "GTX1660"} {
		dev, _ := FindDevice(name)
		var prev float64 = math.Inf(1)
		for _, p := range []tensor.DType{tensor.INT8, tensor.FP16, tensor.FP32} {
			m, err := dev.Evaluate(w, p, 8)
			if err != nil {
				t.Fatal(err)
			}
			if m.GOPS >= prev {
				t.Errorf("%s: %s GOPS %.0f >= faster precision %.0f", name, p, m.GOPS, prev)
			}
			prev = m.GOPS
		}
	}
}

func TestUnsupportedPrecisionRejected(t *testing.T) {
	dev, _ := FindDevice("ZU15 2xB4096") // INT8 only
	w := yoloWorkload(t)
	if _, err := dev.Evaluate(w, tensor.FP32, 1); err == nil {
		t.Error("FPGA DPU accepted FP32")
	}
	if _, err := dev.Evaluate(w, tensor.INT8, 0); err == nil {
		t.Error("accepted batch 0")
	}
}

func TestPeakOnlyOverestimates(t *testing.T) {
	// The ablation claim: a peak-only model predicts higher throughput
	// than the roofline for every platform.
	w := yoloWorkload(t)
	for _, dev := range EvaluationPlatforms() {
		p := dev.BestPrecision()
		roof, err := dev.Evaluate(w, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		peak, err := dev.PeakOnly(w, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if peak.GOPS < roof.GOPS {
			t.Errorf("%s: peak-only %.0f < roofline %.0f GOPS", dev.Name, peak.GOPS, roof.GOPS)
		}
	}
}

func TestSparsityAwareEvaluate(t *testing.T) {
	w := yoloWorkload(t)
	dev, _ := FindDevice("Xavier NX")
	dense, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unstructured sparsity without zero-skipping hardware: no gain.
	unstr, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, 0, 0.9, false)
	if err != nil {
		t.Fatal(err)
	}
	if unstr.LatencyMS < dense.LatencyMS*0.99 {
		t.Errorf("unstructured sparsity sped up non-skipping hardware: %v -> %v ms",
			dense.LatencyMS, unstr.LatencyMS)
	}
	// Structured sparsity: real gain.
	str, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, 0.5, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if str.LatencyMS >= dense.LatencyMS {
		t.Errorf("structured sparsity gave no speedup: %v -> %v ms", dense.LatencyMS, str.LatencyMS)
	}
}

func TestWorkloadFromGraphScalesWithPrecision(t *testing.T) {
	g := nn.ResNet50(224, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	w32, err := WorkloadFromGraph(g, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		t.Fatal(err)
	}
	if w8.WeightBytes*4 != w32.WeightBytes {
		t.Errorf("INT8 weights %d, FP32 %d: not 4x", w8.WeightBytes, w32.WeightBytes)
	}
	if w8.OpsPerInference != w32.OpsPerInference {
		t.Error("ops changed with precision")
	}
}

func TestUtilizationMonotoneProperty(t *testing.T) {
	dev, _ := FindDevice("Xavier AGX (HP)")
	f := func(a, b uint8) bool {
		ba, bb := int(a)%64+1, int(b)%64+1
		if ba > bb {
			ba, bb = bb, ba
		}
		return dev.utilization(ba) <= dev.utilization(bb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArrayConfigSynthesize(t *testing.T) {
	cfg := ArrayConfig{Rows: 32, Cols: 32, ClockGHz: 0.3, OnChipKiB: 512}
	dev, err := cfg.Synthesize("test")
	if err != nil {
		t.Fatal(err)
	}
	// 1024 PEs * 2 ops * 0.3 GHz = 614.4 GOPS INT8.
	if math.Abs(dev.PeakGOPS[tensor.INT8]-614.4) > 1 {
		t.Errorf("peak = %v, want ~614", dev.PeakGOPS[tensor.INT8])
	}
	if dev.MaxW <= dev.IdleW || dev.MaxW > 15 {
		t.Errorf("implausible power %v/%v", dev.IdleW, dev.MaxW)
	}
	if _, err := (ArrayConfig{Rows: 0, Cols: 8, ClockGHz: 0.3, OnChipKiB: 64}).Synthesize("bad"); err == nil {
		t.Error("accepted 0 rows")
	}
	if _, err := (ArrayConfig{Rows: 8, Cols: 8, ClockGHz: 3, OnChipKiB: 64}).Synthesize("bad"); err == nil {
		t.Error("accepted 3 GHz FPGA clock")
	}
}

func TestReconfigurableSwitching(t *testing.T) {
	profiles := []ArrayConfig{
		{Rows: 16, Cols: 16, ClockGHz: 0.2, OnChipKiB: 256},  // low power
		{Rows: 64, Cols: 64, ClockGHz: 0.5, OnChipKiB: 1024}, // high perf
	}
	r, err := NewReconfigurable(profiles, 80)
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveIndex() != 0 {
		t.Fatal("profile 0 should start active")
	}
	d, err := r.Switch(1)
	if err != nil || d != 80 {
		t.Errorf("switch delay = %v, %v", d, err)
	}
	if d2, _ := r.Switch(1); d2 != 0 {
		t.Errorf("re-switch to active profile cost %v ms", d2)
	}
	if _, err := r.Switch(5); err == nil {
		t.Error("accepted invalid profile")
	}

	// Deadline-driven selection: tight deadline picks the big profile,
	// loose deadline the low-power one.
	w := Workload{Name: "w", OpsPerInference: 2e9, WeightBytes: 5e6, ActivationBytes: 5e6}
	tight := r.BestProfileFor(w, tensor.INT8, 3)
	loose := r.BestProfileFor(w, tensor.INT8, 1000)
	if tight != 1 {
		t.Errorf("tight deadline chose profile %d", tight)
	}
	if loose != 0 {
		t.Errorf("loose deadline chose profile %d", loose)
	}
}

func TestCoDesignMeetsConstraints(t *testing.T) {
	g := nn.MobileNetV3(224, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CoDesign(w, CoDesignConstraints{LatencyMS: 30, PowerW: 5, Precision: tensor.INT8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible design for MobileNetV3 @30ms/5W")
	}
	if res.M.LatencyMS > 30 || res.M.PowerW > 5 {
		t.Errorf("constraints violated: %.1f ms, %.1f W", res.M.LatencyMS, res.M.PowerW)
	}
	if res.SuggestedChannelMultiple != res.Config.Cols {
		t.Error("feedback multiple should match array columns")
	}
	if _, err := CoDesign(w, CoDesignConstraints{LatencyMS: -1, PowerW: 5}); err == nil {
		t.Error("accepted negative deadline")
	}
}

func TestCoDesignInfeasibleFallsBack(t *testing.T) {
	w := yoloWorkload(t)
	// YoloV4 in 1 ms under 1 W is impossible; expect the fastest
	// fallback, marked infeasible.
	res, err := CoDesign(w, CoDesignConstraints{LatencyMS: 1, PowerW: 1, Precision: tensor.INT8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("claimed feasibility for impossible constraints")
	}
	if res.Dev == nil || res.M.LatencyMS <= 0 {
		t.Error("fallback design missing")
	}
}

func TestEnergyPerInference(t *testing.T) {
	m := Measurement{PowerW: 10, LatencyMS: 20, Batch: 4}
	if e := m.EnergyPerInferenceMJ(); math.Abs(e-50) > 1e-9 {
		t.Errorf("energy = %v mJ, want 50", e)
	}
}

func TestFindDevice(t *testing.T) {
	if _, err := FindDevice("GTX1660"); err != nil {
		t.Error(err)
	}
	if _, err := FindDevice("EdgeTPU SoM"); err != nil {
		t.Error(err)
	}
	if _, err := FindDevice("nope"); err == nil {
		t.Error("found nonexistent device")
	}
}
