// Package accel models deep-learning accelerators analytically.
//
// The paper evaluates physical devices (Fig. 3 survey, Fig. 4 YoloV4
// measurements). Those devices are replaced here by calibrated roofline
// models: each device has per-precision peak throughput, memory
// bandwidth, a batch-dependent utilization curve and an idle/dynamic
// power split. The model reproduces the *shape* of the paper's results —
// which device wins, how batch size and precision move the operating
// points, and the ~1 TOPS/W efficiency cluster — without the hardware.
package accel

import (
	"fmt"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Class groups devices the way the paper's Fig. 4 legend does.
type Class int

// Device classes.
const (
	ClassCPU Class = iota
	ClassGPU
	ClassEmbeddedGPU
	ClassFPGA
	ClassASIC
	ClassMCU
	ClassIPCore
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "CPU"
	case ClassGPU:
		return "GPU"
	case ClassEmbeddedGPU:
		return "eGPU"
	case ClassFPGA:
		return "FPGA"
	case ClassASIC:
		return "ASIC"
	case ClassMCU:
		return "MCU"
	case ClassIPCore:
		return "IP"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Device is one accelerator operating point.
type Device struct {
	Name  string
	Class Class

	// PeakGOPS maps precision to peak throughput in GOPS (ops/ns).
	// Missing precisions are unsupported.
	PeakGOPS map[tensor.DType]float64

	// MemBWGBs is the sustained external memory bandwidth in GB/s.
	MemBWGBs float64

	// IdleW and MaxW bound the power model: P = idle + u*(max-idle)
	// where u is effective utilization.
	IdleW float64
	MaxW  float64

	// SatBatch is the batch size at which the device reaches ~2/3 of its
	// peak utilization (wide accelerators need batching; CPUs do not).
	SatBatch float64

	// MaxUtil is the ceiling on achievable fraction of peak for real
	// convolutional workloads (dataflow and memory stalls).
	MaxUtil float64

	// OverheadMS is a fixed per-batch launch overhead in milliseconds
	// (kernel launches, DMA setup).
	OverheadMS float64
}

// Supports reports whether the device executes the given precision.
func (d *Device) Supports(p tensor.DType) bool {
	_, ok := d.PeakGOPS[p]
	return ok
}

// BestPrecision returns the fastest supported precision.
func (d *Device) BestPrecision() tensor.DType {
	best := tensor.FP32
	bestV := -1.0
	for p, v := range d.PeakGOPS {
		if v > bestV {
			best, bestV = p, v
		}
	}
	return best
}

// PeakTOPSW returns peak energy efficiency (TOPS/W) at the device's best
// precision and full load — the quantity Fig. 3 clusters around 1.
func (d *Device) PeakTOPSW() float64 {
	if d.MaxW == 0 {
		return 0
	}
	return d.PeakGOPS[d.BestPrecision()] / 1000 / d.MaxW
}

// Workload summarizes a network's demand for the roofline evaluation.
type Workload struct {
	Name string
	// OpsPerInference counts elementary operations for batch 1.
	OpsPerInference int64
	// WeightBytes is the parameter footprint at the run precision.
	WeightBytes int64
	// ActivationBytes is the total activation traffic per inference.
	ActivationBytes int64
}

// WorkloadFromGraph derives a Workload from a shape-inferred graph.
// Weight and activation footprints are scaled to the precision's element
// size.
func WorkloadFromGraph(g *nn.Graph, precision tensor.DType) (Workload, error) {
	stats, err := g.Stats()
	if err != nil {
		return Workload{}, err
	}
	batch := int64(stats.Batch)
	if batch <= 0 {
		batch = 1
	}
	elem := int64(precision.Size())
	return Workload{
		Name:            g.Name,
		OpsPerInference: stats.Ops / batch,
		WeightBytes:     stats.Params * elem,
		ActivationBytes: stats.TotalActivationBytes / batch / 4 * elem,
	}, nil
}

// Measurement is one simulated operating point — a dot in Fig. 4.
type Measurement struct {
	Device    string
	Class     Class
	Workload  string
	Precision tensor.DType
	Batch     int

	// LatencyMS is the end-to-end latency for the whole batch.
	LatencyMS float64
	// GOPS is the achieved throughput (ops retired per second / 1e9).
	GOPS float64
	// PowerW is the average power during the run.
	PowerW float64
	// Bound reports the roofline regime: "compute" or "memory".
	Bound string
}

// TOPSW returns achieved efficiency in TOPS/W.
func (m Measurement) TOPSW() float64 {
	if m.PowerW == 0 {
		return 0
	}
	return m.GOPS / 1000 / m.PowerW
}

// EnergyPerInferenceMJ returns millijoules per single inference.
func (m Measurement) EnergyPerInferenceMJ() float64 {
	if m.Batch == 0 {
		return 0
	}
	return m.PowerW * m.LatencyMS / float64(m.Batch)
}

// Evaluate runs the roofline model for a workload at the given precision
// and batch size.
func (d *Device) Evaluate(w Workload, precision tensor.DType, batch int) (Measurement, error) {
	peak, ok := d.PeakGOPS[precision]
	if !ok {
		return Measurement{}, fmt.Errorf("accel: %s does not support %s", d.Name, precision)
	}
	if batch <= 0 {
		return Measurement{}, fmt.Errorf("accel: batch %d", batch)
	}

	util := d.utilization(batch)
	effGOPS := peak * util

	ops := float64(w.OpsPerInference) * float64(batch)
	computeMS := ops / (effGOPS * 1e9) * 1e3

	// Weights stream once per batch (they stay resident across the
	// batch's reuse window); activations stream per inference.
	bytes := float64(w.WeightBytes) + float64(w.ActivationBytes)*float64(batch)
	memMS := bytes / (d.MemBWGBs * 1e9) * 1e3

	latency := computeMS
	bound := "compute"
	if memMS > computeMS {
		latency = memMS
		bound = "memory"
	}
	latency += d.OverheadMS

	gops := ops / (latency * 1e6) // ops / (ms * 1e6) = GOPS

	// Effective utilization for the power model follows achieved/peak.
	uPower := gops / peak
	if uPower > 1 {
		uPower = 1
	}
	power := d.IdleW + uPower*(d.MaxW-d.IdleW)

	return Measurement{
		Device:    d.Name,
		Class:     d.Class,
		Workload:  w.Name,
		Precision: precision,
		Batch:     batch,
		LatencyMS: latency,
		GOPS:      gops,
		PowerW:    power,
		Bound:     bound,
	}, nil
}

// utilization models the batch-dependent fraction of peak a device
// sustains: u(b) = MaxUtil * b / (b + SatBatch).
func (d *Device) utilization(batch int) float64 {
	b := float64(batch)
	sat := d.SatBatch
	if sat <= 0 {
		sat = 0.5
	}
	u := d.MaxUtil * b / (b + sat)
	if u <= 0 {
		u = 0.01
	}
	return u
}

// PeakOnly is the naive performance model that ignores memory and
// utilization: latency = ops/peak. The ablation bench contrasts it with
// the roofline to show why Fig. 4's measured GOPS sit far below Fig. 3's
// peaks.
func (d *Device) PeakOnly(w Workload, precision tensor.DType, batch int) (Measurement, error) {
	peak, ok := d.PeakGOPS[precision]
	if !ok {
		return Measurement{}, fmt.Errorf("accel: %s does not support %s", d.Name, precision)
	}
	ops := float64(w.OpsPerInference) * float64(batch)
	latency := ops / (peak * 1e9) * 1e3
	return Measurement{
		Device:    d.Name,
		Class:     d.Class,
		Workload:  w.Name,
		Precision: precision,
		Batch:     batch,
		LatencyMS: latency,
		GOPS:      peak,
		PowerW:    d.MaxW,
		Bound:     "compute",
	}, nil
}

// SparsityAwareEvaluate evaluates a pruned workload. Structured sparsity
// (whole channels) reduces effective ops on any device; unstructured
// sparsity only helps devices with zero-skipping hardware (none in the
// Fig. 4 set), reproducing the §III observation that theoretical
// speed-ups do not translate to hardware.
func (d *Device) SparsityAwareEvaluate(w Workload, precision tensor.DType, batch int,
	structuredSparsity, unstructuredSparsity float64, zeroSkipping bool) (Measurement, error) {

	effOps := float64(w.OpsPerInference) * (1 - structuredSparsity)
	if zeroSkipping {
		effOps *= 1 - unstructuredSparsity
	}
	w2 := w
	w2.OpsPerInference = int64(effOps)
	// Structured pruning also shrinks the weights actually fetched;
	// unstructured sparse formats still fetch indices, modeled as no
	// traffic reduction.
	w2.WeightBytes = int64(float64(w.WeightBytes) * (1 - structuredSparsity))
	return d.Evaluate(w2, precision, batch)
}
