package accel

import (
	"fmt"

	"vedliot/internal/tensor"
)

// The device databases below reproduce the accelerator survey of the
// paper's Fig. 3 (analyzed in detail in project deliverable D3.1 [6])
// and the measurement platforms of Fig. 4. Peak numbers are the
// vendor-published values the paper plots ("data is based on the peak
// performance values provided by the vendors"); power is the typical
// board/module power at load. Where a datasheet gives a range, the
// operating point closest to the figure is used. No technology-node
// normalization is performed, matching the paper.

// SurveyEntry is one point in the Fig. 3 scatter.
type SurveyEntry struct {
	Name   string
	IPCore bool // true for synthesizable IP (second series in Fig. 3)
	GOPS   float64
	PowerW float64
	Class  Class
	Notes  string
}

// TOPSW returns the entry's efficiency in TOPS/W.
func (e SurveyEntry) TOPSW() float64 {
	if e.PowerW == 0 {
		return 0
	}
	return e.GOPS / 1000 / e.PowerW
}

// Survey returns the Fig. 3 accelerator survey: devices spanning
// milliwatt endpoint NPUs to 400 W datacenter parts, plus IP cores.
func Survey() []SurveyEntry {
	return []SurveyEntry{
		// Endpoint / MCU-class devices.
		{Name: "NDP120", GOPS: 1.6, PowerW: 0.001, Class: ClassMCU, Notes: "always-on audio NPU"},
		{Name: "MAX78000", GOPS: 30, PowerW: 0.03, Class: ClassMCU, Notes: "CNN MCU"},
		{Name: "GAP8", GOPS: 22.8, PowerW: 0.1, Class: ClassMCU, Notes: "RISC-V cluster"},
		{Name: "GAP9", GOPS: 150, PowerW: 0.05, Class: ClassMCU, Notes: "RISC-V cluster"},
		{Name: "GPX-10", GOPS: 100, PowerW: 0.08, Class: ClassASIC},
		{Name: "Kendryte K210", GOPS: 230, PowerW: 0.3, Class: ClassASIC},
		{Name: "Akida", GOPS: 100, PowerW: 0.25, Class: ClassASIC, Notes: "neuromorphic"},
		{Name: "KL520", GOPS: 345, PowerW: 0.5, Class: ClassASIC},
		{Name: "Xcore.ai", GOPS: 51.2, PowerW: 1, Class: ClassMCU},
		{Name: "El Cano", GOPS: 4000, PowerW: 0.07, Class: ClassASIC, Notes: "Perceive Ergo, outlier efficiency"},
		// Edge accelerators.
		{Name: "KL720", GOPS: 1400, PowerW: 1.2, Class: ClassASIC},
		{Name: "Myriad X", GOPS: 1000, PowerW: 2, Class: ClassASIC},
		{Name: "Sophon BM1880", GOPS: 1000, PowerW: 2.5, Class: ClassASIC},
		{Name: "HX40416", GOPS: 4000, PowerW: 3, Class: ClassASIC},
		{Name: "InferX X1", GOPS: 8500, PowerW: 13.5, Class: ClassASIC},
		{Name: "Hailo-8", GOPS: 26000, PowerW: 2.5, Class: ClassASIC},
		{Name: "Ascend 310", GOPS: 22000, PowerW: 8, Class: ClassASIC},
		// Datacenter parts.
		{Name: "NVIDIA T4", GOPS: 130000, PowerW: 70, Class: ClassGPU},
		{Name: "Mozart", GOPS: 100000, PowerW: 75, Class: ClassASIC},
		{Name: "Grayskull", GOPS: 368000, PowerW: 75, Class: ClassASIC},
		{Name: "Cloud AI 100", GOPS: 400000, PowerW: 75, Class: ClassASIC},
		{Name: "RunAI200", GOPS: 200000, PowerW: 60, Class: ClassASIC},
		{Name: "Groq TSP", GOPS: 820000, PowerW: 300, Class: ClassASIC},
		{Name: "Graphcore C2", GOPS: 250000, PowerW: 300, Class: ClassASIC},
		{Name: "SN10", GOPS: 300000, PowerW: 350, Class: ClassASIC},
		{Name: "NVIDIA A100", GOPS: 624000, PowerW: 400, Class: ClassGPU},
		{Name: "Google TPUv3", GOPS: 123000, PowerW: 220, Class: ClassASIC},
		// Synthesizable IP cores (plotted as the second series).
		{Name: "AD1028", IPCore: true, GOPS: 1000, PowerW: 1.2, Class: ClassIPCore},
		{Name: "DNA 100", IPCore: true, GOPS: 12000, PowerW: 9, Class: ClassIPCore},
		{Name: "NVDLA", IPCore: true, GOPS: 2000, PowerW: 1.8, Class: ClassIPCore},
		{Name: "Efficiera", IPCore: true, GOPS: 6550, PowerW: 3, Class: ClassIPCore, Notes: "binary weights"},
		{Name: "FINN", IPCore: true, GOPS: 500, PowerW: 8, Class: ClassIPCore, Notes: "FPGA dataflow"},
		{Name: "AccDNN", IPCore: true, GOPS: 200, PowerW: 6, Class: ClassIPCore, Notes: "FPGA RTL generator"},
	}
}

// EvaluationPlatforms returns the Fig. 4 measurement set: the devices on
// which the paper runs ResNet50, MobileNetV3 and YoloV4. Batch-size
// variants (B1/B4/B8) and power modes (LP/HP for Xavier AGX) are modeled
// by Evaluate parameters and separate entries respectively.
func EvaluationPlatforms() []*Device {
	return []*Device{
		{
			Name: "Xavier AGX (HP)", Class: ClassEmbeddedGPU,
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 22000, tensor.FP16: 11000, tensor.FP32: 1400,
			},
			MemBWGBs: 137, IdleW: 10, MaxW: 30, SatBatch: 4, MaxUtil: 0.45, OverheadMS: 1.2,
		},
		{
			Name: "Xavier AGX (LP)", Class: ClassEmbeddedGPU,
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 10000, tensor.FP16: 5000, tensor.FP32: 700,
			},
			MemBWGBs: 85, IdleW: 4, MaxW: 10, SatBatch: 4, MaxUtil: 0.45, OverheadMS: 1.5,
		},
		{
			Name: "Xavier NX", Class: ClassEmbeddedGPU,
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 12000, tensor.FP16: 6000, tensor.FP32: 800,
			},
			MemBWGBs: 60, IdleW: 5, MaxW: 15, SatBatch: 4, MaxUtil: 0.40, OverheadMS: 1.4,
		},
		{
			Name: "Jetson TX2", Class: ClassEmbeddedGPU,
			PeakGOPS: map[tensor.DType]float64{
				tensor.FP16: 2600, tensor.FP32: 1300,
			},
			MemBWGBs: 58, IdleW: 5, MaxW: 15, SatBatch: 3, MaxUtil: 0.45, OverheadMS: 1.3,
		},
		{
			Name: "GTX1660", Class: ClassGPU,
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 20000, tensor.FP16: 10000, tensor.FP32: 5000,
			},
			MemBWGBs: 192, IdleW: 35, MaxW: 120, SatBatch: 4, MaxUtil: 0.55, OverheadMS: 0.8,
		},
		{
			Name: "D1577", Class: ClassCPU, // Intel Xeon D-1577, 16C
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 1300, tensor.FP16: 650, tensor.FP32: 650,
			},
			MemBWGBs: 38, IdleW: 25, MaxW: 45, SatBatch: 0.5, MaxUtil: 0.7, OverheadMS: 0.3,
		},
		{
			Name: "Epic3451", Class: ClassCPU, // AMD EPYC Embedded 3451, 16C
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 2200, tensor.FP16: 1100, tensor.FP32: 1100,
			},
			MemBWGBs: 58, IdleW: 35, MaxW: 100, SatBatch: 0.5, MaxUtil: 0.7, OverheadMS: 0.3,
		},
		{
			Name: "Myriad", Class: ClassASIC,
			PeakGOPS: map[tensor.DType]float64{
				tensor.FP16: 1000,
			},
			MemBWGBs: 27, IdleW: 0.8, MaxW: 2.5, SatBatch: 2, MaxUtil: 0.5, OverheadMS: 2.0,
		},
		{
			Name: "ZU15 2xB4096", Class: ClassFPGA, // Zynq UltraScale+ ZU15 with two DPUs
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 2400,
			},
			MemBWGBs: 19, IdleW: 8, MaxW: 22, SatBatch: 1, MaxUtil: 0.6, OverheadMS: 0.9,
		},
		{
			Name: "ZU3 B2304", Class: ClassFPGA,
			PeakGOPS: map[tensor.DType]float64{
				tensor.INT8: 700,
			},
			MemBWGBs: 19, IdleW: 3, MaxW: 9, SatBatch: 1, MaxUtil: 0.6, OverheadMS: 0.9,
		},
	}
}

// EmbeddedTargets returns the sub-15 W devices eligible for uRECS
// deployments (used by the use-case studies).
func EmbeddedTargets() []*Device {
	var out []*Device
	for _, d := range EvaluationPlatforms() {
		if d.MaxW <= 15 {
			out = append(out, d)
		}
	}
	// A Coral-style edge TPU and an MCU-class NPU extend the low end.
	out = append(out,
		&Device{
			Name: "EdgeTPU SoM", Class: ClassASIC,
			PeakGOPS: map[tensor.DType]float64{tensor.INT8: 4000},
			MemBWGBs: 8, IdleW: 0.5, MaxW: 2, SatBatch: 1, MaxUtil: 0.5, OverheadMS: 1.0,
		},
		&Device{
			Name: "MAX78000 NPU", Class: ClassMCU,
			PeakGOPS: map[tensor.DType]float64{tensor.INT8: 30},
			MemBWGBs: 0.2, IdleW: 0.001, MaxW: 0.03, SatBatch: 0.5, MaxUtil: 0.8, OverheadMS: 0.1,
		},
	)
	return out
}

// FindDevice returns the named device from the evaluation platforms and
// embedded targets.
func FindDevice(name string) (*Device, error) {
	for _, d := range EvaluationPlatforms() {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range EmbeddedTargets() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("accel: unknown device %q", name)
}
