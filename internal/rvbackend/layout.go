package rvbackend

import (
	"encoding/binary"
	"fmt"

	"vedliot/internal/inference"
	"vedliot/internal/soc"
	"vedliot/internal/tensor"
)

// Memory image layout, data first so every address is known before
// codegen (text size depends only on plan structure, never on data
// placement, because LI is always two instructions):
//
//	RAMBase: mailbox      16 B  +0 cycles.lo +4 cycles.hi +8/+12 snapshot
//	         const pool         packed weights, per-channel records,
//	                            code tables (256 B), add tables (1 KiB)
//	         value buffers      one per plan value, padded to a word
//	         patch scratch      the largest conv gather window
//	         text               requant subroutine, then segments
//
// Firmware ABI: the host enters a segment by setting PC to its start;
// each segment snapshots the cycle CSRs on entry, runs its steps,
// accumulates the 64-bit cycle delta into the mailbox and executes WFI
// (the last segment writes the test finisher instead). The requant
// subroutine takes the accumulator in a0, a 24-byte channel record
// pointer in a1 and the output zero point in a2, and returns the final
// int8 code in a0, clobbering only t0-t6.
//
// A channel record is six little-endian words: effective bias (the
// plan bias with zp_in*Σw folded in), the fixed-point multiplier, the
// shift, the 64-bit rounding constant (lo, hi) and the address of the
// fused post-activation table (0 when unfused).
const (
	recordSize = 24

	// mailbox offsets (bytes from the mailbox base)
	mbCyclesLo = 0
	mbCyclesHi = 4
	mbSnapLo   = 8
	mbSnapHi   = 12
)

// stepLayout records where one step's constants landed in the pool.
type stepLayout struct {
	weights   uint32   // conv/dense packed weight codes, [outC][k4]
	records   uint32   // conv/dense/gap channel records
	k4        int      // reduction length padded to a multiple of 4
	table     uint32   // lut / maxpool recode / per-channel table base
	addTables []uint32 // per-operand int32 tables (add steps)
}

// action is one entry of the per-sample execution list: run a firmware
// segment, or run an FP32-island step host-side.
type action struct {
	segment int // index into segStarts, or -1 for an island
	step    int // plan step index (islands)
}

// image is a fully laid-out firmware build for one plan.
type image struct {
	useCFU    bool
	mailbox   uint32
	bufAddr   []uint32 // per plan value: code buffer base
	patch     uint32   // conv gather scratch
	steps     []stepLayout
	data      []byte // const image, starting at soc.RAMBase
	textOff   uint32 // absolute address of the first text word
	text      []uint32
	segStarts []uint32 // absolute entry PC per segment
	segSteps  [][]int  // plan step indices per segment
	actions   []action
	ramSize   uint32
}

// putRecord encodes one channel record, validating that the requantizer
// fits the firmware's fixed-point sequence (multiplier below 2^31 so
// MULH/MUL give the exact 64-bit product, shift at most 62).
func putRecord(dst []byte, biasEff int32, rq tensor.Requant, postAddr uint32) error {
	mult, shift, round := rq.Fixed()
	if mult < 0 || mult >= 1<<31 {
		return fmt.Errorf("rvbackend: requant multiplier %d outside firmware range [0, 2^31)", mult)
	}
	if shift > 62 {
		return fmt.Errorf("rvbackend: requant shift %d exceeds firmware range 62", shift)
	}
	le := binary.LittleEndian
	le.PutUint32(dst[0:], uint32(biasEff))
	le.PutUint32(dst[4:], uint32(mult))
	le.PutUint32(dst[8:], uint32(shift))
	le.PutUint32(dst[12:], uint32(uint64(round)))
	le.PutUint32(dst[16:], uint32(uint64(round)>>32))
	le.PutUint32(dst[20:], postAddr)
	return nil
}

// buildLayout walks the plan and assigns every constant and buffer an
// address, staging the const pool bytes. Codegen runs after it.
func buildLayout(plan *inference.QuantPlan, useCFU bool) (*image, error) {
	img := &image{useCFU: useCFU}
	alloc := func(n int) uint32 {
		n = (n + 3) &^ 3
		off := len(img.data)
		img.data = append(img.data, make([]byte, n)...)
		return soc.RAMBase + uint32(off)
	}
	img.mailbox = alloc(16)

	tableAddrs := make(map[*[256]int8]uint32)
	codeTable := func(t *[256]int8) uint32 {
		if t == nil {
			return 0
		}
		if a, ok := tableAddrs[t]; ok {
			return a
		}
		a := alloc(256)
		dst := img.data[a-soc.RAMBase:]
		for i, c := range t {
			dst[i] = byte(c)
		}
		tableAddrs[t] = a
		return a
	}

	img.steps = make([]stepLayout, len(plan.Steps))
	maxPatch := 0
	for si := range plan.Steps {
		st := &plan.Steps[si]
		sl := &img.steps[si]
		switch {
		case st.Conv != nil:
			c := st.Conv
			taps := c.Geom.ICPerG * c.Geom.KH * c.Geom.KW
			sl.k4 = (taps + 3) &^ 3
			if sl.k4 > maxPatch {
				maxPatch = sl.k4
			}
			sl.weights = alloc(c.Geom.OutC * sl.k4)
			w := img.data[sl.weights-soc.RAMBase:]
			for oc := 0; oc < c.Geom.OutC; oc++ {
				for t := 0; t < taps; t++ {
					w[oc*sl.k4+t] = byte(c.W[oc*taps+t])
				}
			}
			// Intern post tables before taking the record slice: alloc
			// appends to img.data and may reallocate its backing array.
			posts := make([]uint32, c.Geom.OutC)
			if c.Post != nil {
				for oc := range posts {
					posts[oc] = codeTable(c.Post[oc])
				}
			}
			sl.records = alloc(c.Geom.OutC * recordSize)
			rec := img.data[sl.records-soc.RAMBase:]
			for oc := 0; oc < c.Geom.OutC; oc++ {
				sumW := int32(0)
				for t := 0; t < taps; t++ {
					sumW += int32(c.W[oc*taps+t])
				}
				biasEff := c.Bias[oc] - c.ZPIn*sumW
				if err := putRecord(rec[oc*recordSize:], biasEff, c.Req[oc], posts[oc]); err != nil {
					return nil, fmt.Errorf("step %q: %w", st.Name, err)
				}
			}
		case st.Dense != nil:
			d := st.Dense
			sl.k4 = (d.InF + 3) &^ 3
			sl.weights = alloc(d.OutF * sl.k4)
			w := img.data[sl.weights-soc.RAMBase:]
			for o := 0; o < d.OutF; o++ {
				for i := 0; i < d.InF; i++ {
					w[o*sl.k4+i] = byte(d.W[o*d.InF+i])
				}
			}
			posts := make([]uint32, d.OutF)
			if d.Post != nil {
				for o := range posts {
					posts[o] = codeTable(d.Post[o])
				}
			}
			sl.records = alloc(d.OutF * recordSize)
			rec := img.data[sl.records-soc.RAMBase:]
			for o := 0; o < d.OutF; o++ {
				sumW := int32(0)
				for i := 0; i < d.InF; i++ {
					sumW += int32(d.W[o*d.InF+i])
				}
				biasEff := d.Bias[o] - d.ZPIn*sumW
				if err := putRecord(rec[o*recordSize:], biasEff, d.Req[o], posts[o]); err != nil {
					return nil, fmt.Errorf("step %q: %w", st.Name, err)
				}
			}
		case st.LUT != nil:
			sl.table = codeTable(st.LUT.Table)
		case st.LUTPerChannel != nil:
			pc := st.LUTPerChannel
			sl.table = alloc(256 * pc.C)
			dst := img.data[sl.table-soc.RAMBase:]
			for ch, t := range pc.Tables {
				for i, c := range t {
					dst[ch*256+i] = byte(c)
				}
			}
		case st.MaxPool != nil:
			sl.table = codeTable(st.MaxPool.Recode)
		case st.GlobalAvgPool != nil:
			g := st.GlobalAvgPool
			sl.records = alloc(recordSize)
			biasEff := -int32(g.HW) * g.ZPIn
			if err := putRecord(img.data[sl.records-soc.RAMBase:], biasEff, g.Req, 0); err != nil {
				return nil, fmt.Errorf("step %q: %w", st.Name, err)
			}
		case st.Add != nil:
			if len(st.Add.Tables) > 4 {
				return nil, fmt.Errorf("rvbackend: step %q: add arity %d exceeds firmware limit 4",
					st.Name, len(st.Add.Tables))
			}
			for _, t := range st.Add.Tables {
				a := alloc(1024)
				dst := img.data[a-soc.RAMBase:]
				for i, v := range t {
					binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
				}
				sl.addTables = append(sl.addTables, a)
			}
		case st.Island != nil:
			// host-side; no constants
		default:
			return nil, fmt.Errorf("rvbackend: step %q has no kind", st.Name)
		}
	}

	img.bufAddr = make([]uint32, len(plan.Values))
	for i, v := range plan.Values {
		img.bufAddr[i] = alloc(v.Elems)
	}
	if maxPatch < 4 {
		maxPatch = 4
	}
	img.patch = alloc(maxPatch)

	// Execution order: maximal runs of firmware steps become segments,
	// islands run host-side between them.
	seg := -1
	for i := range plan.Steps {
		if plan.Steps[i].Island != nil {
			img.actions = append(img.actions, action{segment: -1, step: i})
			seg = -1
			continue
		}
		if seg < 0 {
			seg = len(img.segSteps)
			img.segSteps = append(img.segSteps, nil)
			img.actions = append(img.actions, action{segment: seg})
		}
		img.segSteps[seg] = append(img.segSteps[seg], i)
	}

	img.textOff = soc.RAMBase + uint32(len(img.data))
	return img, nil
}
