package rvbackend

import (
	"fmt"
	"strings"

	"vedliot/internal/riscv"
	"vedliot/internal/soc"
)

// Disassembly renders the firmware image as reviewable text: a memory
// map header, then every text word with address and mnemonic. Golden
// tests commit these dumps so codegen changes surface as diffs.
func (p *Program) Disassembly() string {
	return p.img.disassembly(p.plan.Name)
}

func (img *image) disassembly(model string) string {
	var b strings.Builder
	variant := "scalar"
	if img.useCFU {
		variant = "cfu"
	}
	fmt.Fprintf(&b, "; model %s, %s variant\n", model, variant)
	fmt.Fprintf(&b, "; mailbox   %#08x\n", img.mailbox)
	fmt.Fprintf(&b, "; data      %#08x..%#08x\n", soc.RAMBase, img.textOff)
	fmt.Fprintf(&b, "; patch     %#08x\n", img.patch)
	fmt.Fprintf(&b, "; text      %#08x (%d words)\n", img.textOff, len(img.text))
	for i, s := range img.segStarts {
		fmt.Fprintf(&b, "; segment %d %#08x\n", i, s)
	}
	segAt := make(map[uint32]int, len(img.segStarts))
	for i, s := range img.segStarts {
		segAt[s] = i
	}
	for i, w := range img.text {
		pc := img.textOff + uint32(i)*4
		if si, ok := segAt[pc]; ok {
			fmt.Fprintf(&b, "\nsegment%d:\n", si)
		}
		fmt.Fprintf(&b, "%08x: %08x  %s\n", pc, w, riscv.Disassemble(w, pc))
	}
	return b.String()
}
