package rvbackend

import (
	"fmt"

	"vedliot/internal/cfu"
	"vedliot/internal/inference"
	"vedliot/internal/riscv"
	"vedliot/internal/soc"
)

// Per-model specialized code generation: every layer becomes its own
// loop nest with the plan's geometry baked in as immediates, so the
// firmware carries no interpreter and the cycle counts reflect the
// kernels alone. Register convention inside a step block:
//
//	s0..s11  loop state (buffer bases, counters, running pointers)
//	a3..a7   per-group/per-step bases
//	t0..t6   scratch; clobbered by the requant subroutine
//	a0/a1/a2 requant arguments (accumulator, record pointer, zp_out)
//
// No stack is used: the only call is the leaf requant subroutine.

// buildImage lays out and assembles the complete firmware for a plan.
func buildImage(plan *inference.QuantPlan, useCFU bool) (*image, error) {
	img, err := buildLayout(plan, useCFU)
	if err != nil {
		return nil, err
	}
	a := newAsm(img.textOff)
	emitRequant(a)
	for seg, steps := range img.segSteps {
		img.segStarts = append(img.segStarts, a.pc())
		emitSnapshotBegin(a, img)
		for _, si := range steps {
			a.enterScope()
			if err := emitStep(a, img, plan, si); err != nil {
				return nil, err
			}
		}
		emitSnapshotEnd(a, img, seg == len(img.segSteps)-1)
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	img.text = a.words
	img.ramSize = img.textOff - soc.RAMBase + uint32(len(img.text))*4 + 4096
	return img, nil
}

// emitRequant assembles the shared requantization subroutine:
//
//	a0 = clamp(a2 + int32((int64(a0)*mult + round) >> shift))   [+ post LUT]
//
// The 64-bit product comes from MULH/MUL (exact: the multiplier is
// below 2^31), the rounding add propagates its carry with SLTU, and the
// 64-bit arithmetic right shift splits into the three RV32 cases.
func emitRequant(a *asm) {
	a.globalLabel("requant")
	a.enterScope()
	a.emit(riscv.LW(riscv.T0, riscv.A1, 4)) // multiplier
	a.emit(riscv.MULH(riscv.T1, riscv.A0, riscv.T0))
	a.emit(riscv.MUL(riscv.T2, riscv.A0, riscv.T0))
	a.emit(riscv.LW(riscv.T3, riscv.A1, 12)) // round.lo
	a.emit(riscv.LW(riscv.T4, riscv.A1, 16)) // round.hi
	a.emit(riscv.ADD(riscv.T2, riscv.T2, riscv.T3))
	a.emit(riscv.SLTU(riscv.T5, riscv.T2, riscv.T3)) // carry
	a.emit(riscv.ADD(riscv.T1, riscv.T1, riscv.T4))
	a.emit(riscv.ADD(riscv.T1, riscv.T1, riscv.T5))
	a.emit(riscv.LW(riscv.T3, riscv.A1, 8)) // shift
	a.beq(riscv.T3, riscv.Zero, "shifted")  // shift 0: result is lo
	a.emit(riscv.ADDI(riscv.T4, riscv.Zero, 32))
	a.bge(riscv.T3, riscv.T4, "bigshift")
	a.emit(riscv.SRL(riscv.T2, riscv.T2, riscv.T3)) // (lo >>u s) |
	a.emit(riscv.SUB(riscv.T4, riscv.T4, riscv.T3))
	a.emit(riscv.SLL(riscv.T5, riscv.T1, riscv.T4)) // (hi << 32-s)
	a.emit(riscv.OR(riscv.T2, riscv.T2, riscv.T5))
	a.j("shifted")
	a.label("bigshift")
	a.emit(riscv.SUB(riscv.T3, riscv.T3, riscv.T4))
	a.emit(riscv.SRA(riscv.T2, riscv.T1, riscv.T3)) // hi >>a s-32
	a.label("shifted")
	a.emit(riscv.ADD(riscv.A0, riscv.T2, riscv.A2)) // + zp_out
	a.emit(riscv.ADDI(riscv.T0, riscv.Zero, 127))
	a.bge(riscv.T0, riscv.A0, "cklo")
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, 127))
	a.label("cklo")
	a.emit(riscv.ADDI(riscv.T0, riscv.Zero, -128))
	a.bge(riscv.A0, riscv.T0, "ckdone")
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, -128))
	a.label("ckdone")
	a.emit(riscv.LW(riscv.T0, riscv.A1, 20)) // fused post table
	a.beq(riscv.T0, riscv.Zero, "nopost")
	a.emit(riscv.ADDI(riscv.A0, riscv.A0, 128))
	a.emit(riscv.ADD(riscv.T0, riscv.T0, riscv.A0))
	a.emit(riscv.LB(riscv.A0, riscv.T0, 0))
	a.label("nopost")
	a.emit(riscv.JALR(riscv.Zero, riscv.RA, 0))
}

// emitSnapshotBegin stores a coherent 64-bit cycle-counter read (the
// classic hi/lo/hi loop over the unprivileged shadows) in the mailbox.
func emitSnapshotBegin(a *asm, img *image) {
	a.enterScope()
	a.label("snap")
	a.emit(riscv.CSRRS(riscv.T0, riscv.Zero, riscv.CsrCycleh))
	a.emit(riscv.CSRRS(riscv.T1, riscv.Zero, riscv.CsrCycle))
	a.emit(riscv.CSRRS(riscv.T2, riscv.Zero, riscv.CsrCycleh))
	a.bne(riscv.T0, riscv.T2, "snap")
	a.li(riscv.T3, img.mailbox)
	a.emit(riscv.SW(riscv.T1, riscv.T3, mbSnapLo))
	a.emit(riscv.SW(riscv.T0, riscv.T3, mbSnapHi))
}

// emitSnapshotEnd re-reads the counter, adds the 64-bit delta into the
// mailbox accumulator and parks the core (WFI, or the test finisher on
// the final segment so the host can assert a clean verdict).
func emitSnapshotEnd(a *asm, img *image, last bool) {
	a.enterScope()
	a.label("snap")
	a.emit(riscv.CSRRS(riscv.T0, riscv.Zero, riscv.CsrCycleh))
	a.emit(riscv.CSRRS(riscv.T1, riscv.Zero, riscv.CsrCycle))
	a.emit(riscv.CSRRS(riscv.T2, riscv.Zero, riscv.CsrCycleh))
	a.bne(riscv.T0, riscv.T2, "snap")
	a.li(riscv.T3, img.mailbox)
	a.emit(riscv.LW(riscv.T4, riscv.T3, mbSnapLo))
	a.emit(riscv.LW(riscv.T5, riscv.T3, mbSnapHi))
	a.emit(riscv.SUB(riscv.T6, riscv.T1, riscv.T4))  // delta.lo
	a.emit(riscv.SLTU(riscv.A0, riscv.T1, riscv.T4)) // borrow
	a.emit(riscv.SUB(riscv.T2, riscv.T0, riscv.T5))
	a.emit(riscv.SUB(riscv.T2, riscv.T2, riscv.A0)) // delta.hi
	a.emit(riscv.LW(riscv.T4, riscv.T3, mbCyclesLo))
	a.emit(riscv.LW(riscv.T5, riscv.T3, mbCyclesHi))
	a.emit(riscv.ADD(riscv.T4, riscv.T4, riscv.T6))
	a.emit(riscv.SLTU(riscv.A0, riscv.T4, riscv.T6)) // carry
	a.emit(riscv.ADD(riscv.T5, riscv.T5, riscv.T2))
	a.emit(riscv.ADD(riscv.T5, riscv.T5, riscv.A0))
	a.emit(riscv.SW(riscv.T4, riscv.T3, mbCyclesLo))
	a.emit(riscv.SW(riscv.T5, riscv.T3, mbCyclesHi))
	if last {
		a.li(riscv.T0, soc.FinisherBase)
		a.li(riscv.T1, soc.FinisherPass)
		a.emit(riscv.SW(riscv.T1, riscv.T0, 0))
	}
	a.emit(riscv.WFI())
}

// emitStep dispatches one plan step to its loop-nest emitter.
func emitStep(a *asm, img *image, plan *inference.QuantPlan, si int) error {
	st := &plan.Steps[si]
	sl := &img.steps[si]
	in := func(i int) uint32 { return img.bufAddr[st.Ins[i]] }
	out := img.bufAddr[st.Out]
	switch {
	case st.Conv != nil:
		emitConv(a, img, sl, st.Conv, in(0), out)
	case st.Dense != nil:
		emitDense(a, img, sl, st.Dense, in(0), out)
	case st.LUT != nil:
		emitLUT(a, sl, plan.Values[st.Out].Elems, in(0), out)
	case st.LUTPerChannel != nil:
		emitLUTPerChannel(a, sl, st.LUTPerChannel, in(0), out)
	case st.MaxPool != nil:
		emitMaxPool(a, sl, st.MaxPool, in(0), out)
	case st.GlobalAvgPool != nil:
		emitGlobalAvgPool(a, sl, st.GlobalAvgPool, in(0), out)
	case st.Add != nil:
		srcs := make([]uint32, len(st.Ins))
		for i := range st.Ins {
			srcs[i] = in(i)
		}
		emitAdd(a, sl, st.Add, plan.Values[st.Out].Elems, srcs, out)
	default:
		return fmt.Errorf("rvbackend: step %q: no firmware lowering", st.Name)
	}
	return nil
}

// emitDot emits the reduction inner loop: with the CFU, dot4 steps over
// word-packed codes (count words); without it, a scalar LB/LB/MUL/ADD
// loop (count bytes). The accumulator lands in a0; t0/t1 hold the
// advancing weight and activation pointers on entry.
func emitDot(a *asm, useCFU bool, count int) {
	if useCFU {
		a.emit(riscv.CUSTOM0(riscv.Zero, riscv.Zero, riscv.Zero, cfu.OpMacClear, 0))
		a.imm(riscv.T2, int32(count/4))
		a.label("dot")
		a.emit(riscv.LW(riscv.T3, riscv.T0, 0))
		a.emit(riscv.LW(riscv.T4, riscv.T1, 0))
		a.emit(riscv.CUSTOM0(riscv.A0, riscv.T3, riscv.T4, cfu.OpMacStep, 0))
		a.emit(riscv.ADDI(riscv.T0, riscv.T0, 4))
		a.emit(riscv.ADDI(riscv.T1, riscv.T1, 4))
		a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
		a.bne(riscv.T2, riscv.Zero, "dot")
		return
	}
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, 0))
	a.imm(riscv.T2, int32(count))
	a.label("dot")
	a.emit(riscv.LB(riscv.T3, riscv.T0, 0))
	a.emit(riscv.LB(riscv.T4, riscv.T1, 0))
	a.emit(riscv.MUL(riscv.T3, riscv.T3, riscv.T4))
	a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T3))
	a.emit(riscv.ADDI(riscv.T0, riscv.T0, 1))
	a.emit(riscv.ADDI(riscv.T1, riscv.T1, 1))
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
	a.bne(riscv.T2, riscv.Zero, "dot")
}

// emitConv lowers one (possibly grouped/depthwise) convolution. Loop
// order is (group, oy, ox): the input window is gathered once per
// position into the patch scratch (zero-padded taps read as the zp_in
// code, which the folded bias cancels exactly), then every output
// channel of the group reduces the same patch.
func emitConv(a *asm, img *image, sl *stepLayout, c *inference.PlanConv, inAddr, outAddr uint32) {
	g := c.Geom
	taps := g.ICPerG * g.KH * g.KW
	inHW := g.InH * g.InW
	outHW := g.OutH * g.OutW
	groups := g.InC / g.ICPerG

	a.li(riscv.S0, inAddr)
	a.li(riscv.S1, outAddr)
	a.li(riscv.S4, img.patch)
	a.imm(riscv.A2, c.ZPOut)
	a.li(riscv.A3, sl.weights)
	a.li(riscv.A4, sl.records)
	a.emit(riscv.ADDI(riscv.S9, riscv.S0, 0)) // group input base
	a.emit(riscv.ADDI(riscv.A6, riscv.S1, 0)) // group output base
	a.emit(riscv.ADDI(riscv.S8, riscv.Zero, 0))
	a.label("grp")
	a.emit(riscv.ADDI(riscv.S11, riscv.Zero, 0)) // position offset oy*outW+ox
	a.emit(riscv.ADDI(riscv.S5, riscv.Zero, 0))
	a.label("oy")
	a.emit(riscv.ADDI(riscv.S6, riscv.Zero, 0))
	a.label("ox")

	// Gather the input window for this position into the patch scratch.
	a.emit(riscv.ADDI(riscv.S10, riscv.S4, 0)) // patch write ptr
	a.emit(riscv.ADDI(riscv.T0, riscv.Zero, 0))
	a.emit(riscv.ADDI(riscv.T1, riscv.S9, 0)) // current channel base
	a.label("ic")
	a.emit(riscv.ADDI(riscv.T2, riscv.Zero, 0))
	a.label("ky")
	a.mulImm(riscv.T3, riscv.S5, int32(g.SH), riscv.A0)
	a.emit(riscv.ADD(riscv.T3, riscv.T3, riscv.T2))
	if g.PH != 0 {
		a.emit(riscv.ADDI(riscv.T3, riscv.T3, int32(-g.PH)))
	}
	a.blt(riscv.T3, riscv.Zero, "padrow")
	a.imm(riscv.A0, int32(g.InH))
	a.bge(riscv.T3, riscv.A0, "padrow")
	a.mulImm(riscv.T4, riscv.T3, int32(g.InW), riscv.A0)
	a.emit(riscv.ADD(riscv.T4, riscv.T4, riscv.T1))
	a.emit(riscv.ADDI(riscv.T5, riscv.Zero, 0))
	a.label("kx")
	a.mulImm(riscv.T6, riscv.S6, int32(g.SW), riscv.A0)
	a.emit(riscv.ADD(riscv.T6, riscv.T6, riscv.T5))
	if g.PW != 0 {
		a.emit(riscv.ADDI(riscv.T6, riscv.T6, int32(-g.PW)))
	}
	a.blt(riscv.T6, riscv.Zero, "padpix")
	a.imm(riscv.A0, int32(g.InW))
	a.bge(riscv.T6, riscv.A0, "padpix")
	a.emit(riscv.ADD(riscv.T6, riscv.T6, riscv.T4))
	a.emit(riscv.LB(riscv.A0, riscv.T6, 0))
	a.j("stash")
	a.label("padpix")
	a.imm(riscv.A0, c.ZPIn)
	a.label("stash")
	a.emit(riscv.SB(riscv.A0, riscv.S10, 0))
	a.emit(riscv.ADDI(riscv.S10, riscv.S10, 1))
	a.emit(riscv.ADDI(riscv.T5, riscv.T5, 1))
	a.imm(riscv.A1, int32(g.KW))
	a.blt(riscv.T5, riscv.A1, "kx")
	a.j("rowdone")
	a.label("padrow") // entire row out of bounds: KW zp_in codes
	a.imm(riscv.T5, int32(g.KW))
	a.imm(riscv.A0, c.ZPIn)
	a.label("padfill")
	a.emit(riscv.SB(riscv.A0, riscv.S10, 0))
	a.emit(riscv.ADDI(riscv.S10, riscv.S10, 1))
	a.emit(riscv.ADDI(riscv.T5, riscv.T5, -1))
	a.bne(riscv.T5, riscv.Zero, "padfill")
	a.label("rowdone")
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, 1))
	a.imm(riscv.A1, int32(g.KH))
	a.blt(riscv.T2, riscv.A1, "ky")
	a.addImm(riscv.T1, riscv.T1, int32(inHW), riscv.A1)
	a.emit(riscv.ADDI(riscv.T0, riscv.T0, 1))
	a.imm(riscv.A1, int32(g.ICPerG))
	a.blt(riscv.T0, riscv.A1, "ic")

	// Reduce the patch for every output channel of the group.
	a.emit(riscv.ADDI(riscv.S2, riscv.A3, 0))
	a.emit(riscv.ADDI(riscv.S3, riscv.A4, 0))
	a.emit(riscv.ADD(riscv.A5, riscv.A6, riscv.S11))
	a.emit(riscv.ADDI(riscv.S7, riscv.Zero, 0))
	a.label("oc")
	a.emit(riscv.ADDI(riscv.T0, riscv.S2, 0))
	a.emit(riscv.ADDI(riscv.T1, riscv.S4, 0))
	if img.useCFU {
		emitDot(a, true, sl.k4)
	} else {
		emitDot(a, false, taps)
	}
	a.emit(riscv.LW(riscv.T3, riscv.S3, 0)) // effective bias
	a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T3))
	a.emit(riscv.ADDI(riscv.A1, riscv.S3, 0))
	a.call("requant")
	a.emit(riscv.SB(riscv.A0, riscv.A5, 0))
	a.addImm(riscv.A5, riscv.A5, int32(outHW), riscv.T0)
	a.addImm(riscv.S2, riscv.S2, int32(sl.k4), riscv.T0)
	a.emit(riscv.ADDI(riscv.S3, riscv.S3, recordSize))
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, 1))
	a.imm(riscv.T0, int32(g.OCPerG))
	a.blt(riscv.S7, riscv.T0, "oc")

	a.emit(riscv.ADDI(riscv.S11, riscv.S11, 1))
	a.emit(riscv.ADDI(riscv.S6, riscv.S6, 1))
	a.imm(riscv.T0, int32(g.OutW))
	a.blt(riscv.S6, riscv.T0, "ox")
	a.emit(riscv.ADDI(riscv.S5, riscv.S5, 1))
	a.imm(riscv.T0, int32(g.OutH))
	a.blt(riscv.S5, riscv.T0, "oy")
	a.addImm(riscv.S9, riscv.S9, int32(g.ICPerG*inHW), riscv.T0)
	a.addImm(riscv.A3, riscv.A3, int32(g.OCPerG*sl.k4), riscv.T0)
	a.addImm(riscv.A4, riscv.A4, int32(g.OCPerG*recordSize), riscv.T0)
	a.addImm(riscv.A6, riscv.A6, int32(g.OCPerG*outHW), riscv.T0)
	a.emit(riscv.ADDI(riscv.S8, riscv.S8, 1))
	a.imm(riscv.T0, int32(groups))
	a.blt(riscv.S8, riscv.T0, "grp")
}

// emitDense lowers a fully-connected layer. The CFU path reads the
// input buffer directly as packed words — buffers are word-aligned and
// padded to a word, and the zero weight codes in the row tail cancel
// whatever the padding bytes hold.
func emitDense(a *asm, img *image, sl *stepLayout, d *inference.PlanDense, inAddr, outAddr uint32) {
	a.li(riscv.S0, inAddr)
	a.li(riscv.S1, outAddr)
	a.li(riscv.S2, sl.weights)
	a.li(riscv.S3, sl.records)
	a.imm(riscv.A2, d.ZPOut)
	a.emit(riscv.ADDI(riscv.A5, riscv.S1, 0))
	a.emit(riscv.ADDI(riscv.S7, riscv.Zero, 0))
	a.label("o")
	a.emit(riscv.ADDI(riscv.T0, riscv.S2, 0))
	a.emit(riscv.ADDI(riscv.T1, riscv.S0, 0))
	if img.useCFU {
		emitDot(a, true, sl.k4)
	} else {
		emitDot(a, false, d.InF)
	}
	a.emit(riscv.LW(riscv.T3, riscv.S3, 0))
	a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T3))
	a.emit(riscv.ADDI(riscv.A1, riscv.S3, 0))
	a.call("requant")
	a.emit(riscv.SB(riscv.A0, riscv.A5, 0))
	a.emit(riscv.ADDI(riscv.A5, riscv.A5, 1))
	a.addImm(riscv.S2, riscv.S2, int32(sl.k4), riscv.T0)
	a.emit(riscv.ADDI(riscv.S3, riscv.S3, recordSize))
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, 1))
	a.imm(riscv.T0, int32(d.OutF))
	a.blt(riscv.S7, riscv.T0, "o")
}

// emitLUT lowers an element-wise code table (or a plain word copy when
// the mappings agree and the table is nil).
func emitLUT(a *asm, sl *stepLayout, elems int, inAddr, outAddr uint32) {
	a.li(riscv.S0, inAddr)
	a.li(riscv.S1, outAddr)
	if sl.table == 0 {
		a.imm(riscv.T2, int32((elems+3)/4))
		a.label("cp")
		a.emit(riscv.LW(riscv.T0, riscv.S0, 0))
		a.emit(riscv.SW(riscv.T0, riscv.S1, 0))
		a.emit(riscv.ADDI(riscv.S0, riscv.S0, 4))
		a.emit(riscv.ADDI(riscv.S1, riscv.S1, 4))
		a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
		a.bne(riscv.T2, riscv.Zero, "cp")
		return
	}
	a.li(riscv.S2, sl.table)
	a.imm(riscv.T2, int32(elems))
	a.label("lut")
	a.emit(riscv.LB(riscv.T0, riscv.S0, 0))
	a.emit(riscv.ADDI(riscv.T0, riscv.T0, 128))
	a.emit(riscv.ADD(riscv.T0, riscv.T0, riscv.S2))
	a.emit(riscv.LB(riscv.T1, riscv.T0, 0))
	a.emit(riscv.SB(riscv.T1, riscv.S1, 0))
	a.emit(riscv.ADDI(riscv.S0, riscv.S0, 1))
	a.emit(riscv.ADDI(riscv.S1, riscv.S1, 1))
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
	a.bne(riscv.T2, riscv.Zero, "lut")
}

// emitLUTPerChannel lowers the batch-norm family: one 256-entry table
// per channel plane, tables laid out contiguously in channel order.
func emitLUTPerChannel(a *asm, sl *stepLayout, pc *inference.PlanLUTPerChannel, inAddr, outAddr uint32) {
	a.li(riscv.S0, inAddr)
	a.li(riscv.S1, outAddr)
	a.li(riscv.S2, sl.table)
	a.imm(riscv.S7, int32(pc.C))
	a.label("ch")
	a.imm(riscv.T2, int32(pc.HW))
	a.label("lut")
	a.emit(riscv.LB(riscv.T0, riscv.S0, 0))
	a.emit(riscv.ADDI(riscv.T0, riscv.T0, 128))
	a.emit(riscv.ADD(riscv.T0, riscv.T0, riscv.S2))
	a.emit(riscv.LB(riscv.T1, riscv.T0, 0))
	a.emit(riscv.SB(riscv.T1, riscv.S1, 0))
	a.emit(riscv.ADDI(riscv.S0, riscv.S0, 1))
	a.emit(riscv.ADDI(riscv.S1, riscv.S1, 1))
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
	a.bne(riscv.T2, riscv.Zero, "lut")
	a.addImm(riscv.S2, riscv.S2, 256, riscv.T0)
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, -1))
	a.bne(riscv.S7, riscv.Zero, "ch")
}

// emitMaxPool lowers the code-domain window max. A -129 sentinel (below
// any int8 code) stands in for the native kernel's first-tap flag;
// windows with no in-bounds tap fall back to the empty code.
func emitMaxPool(a *asm, sl *stepLayout, mp *inference.PlanMaxPool, inAddr, outAddr uint32) {
	inHW := mp.InH * mp.InW
	a.li(riscv.A3, inAddr) // channel plane base
	a.li(riscv.A5, outAddr)
	if mp.Recode != nil {
		a.li(riscv.S2, sl.table)
	}
	a.imm(riscv.S7, int32(mp.C))
	a.label("ch")
	a.emit(riscv.ADDI(riscv.S5, riscv.Zero, 0))
	a.label("oy")
	a.emit(riscv.ADDI(riscv.S6, riscv.Zero, 0))
	a.label("ox")
	a.imm(riscv.A0, -129)
	a.emit(riscv.ADDI(riscv.T2, riscv.Zero, 0))
	a.label("ky")
	a.mulImm(riscv.T3, riscv.S5, int32(mp.SH), riscv.T6)
	a.emit(riscv.ADD(riscv.T3, riscv.T3, riscv.T2))
	if mp.PH != 0 {
		a.emit(riscv.ADDI(riscv.T3, riscv.T3, int32(-mp.PH)))
	}
	a.blt(riscv.T3, riscv.Zero, "skiprow")
	a.imm(riscv.T6, int32(mp.InH))
	a.bge(riscv.T3, riscv.T6, "skiprow")
	a.mulImm(riscv.T4, riscv.T3, int32(mp.InW), riscv.T6)
	a.emit(riscv.ADD(riscv.T4, riscv.T4, riscv.A3))
	a.emit(riscv.ADDI(riscv.T5, riscv.Zero, 0))
	a.label("kx")
	a.mulImm(riscv.T6, riscv.S6, int32(mp.SW), riscv.A1)
	a.emit(riscv.ADD(riscv.T6, riscv.T6, riscv.T5))
	if mp.PW != 0 {
		a.emit(riscv.ADDI(riscv.T6, riscv.T6, int32(-mp.PW)))
	}
	a.blt(riscv.T6, riscv.Zero, "skippix")
	a.imm(riscv.A1, int32(mp.InW))
	a.bge(riscv.T6, riscv.A1, "skippix")
	a.emit(riscv.ADD(riscv.T6, riscv.T6, riscv.T4))
	a.emit(riscv.LB(riscv.T6, riscv.T6, 0))
	a.bge(riscv.A0, riscv.T6, "skippix")
	a.emit(riscv.ADDI(riscv.A0, riscv.T6, 0))
	a.label("skippix")
	a.emit(riscv.ADDI(riscv.T5, riscv.T5, 1))
	a.imm(riscv.A1, int32(mp.KW))
	a.blt(riscv.T5, riscv.A1, "kx")
	a.label("skiprow")
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, 1))
	a.imm(riscv.A1, int32(mp.KH))
	a.blt(riscv.T2, riscv.A1, "ky")
	a.imm(riscv.T0, -129)
	a.bne(riscv.A0, riscv.T0, "taken")
	a.imm(riscv.A0, int32(mp.Empty))
	a.label("taken")
	if mp.Recode != nil {
		a.emit(riscv.ADDI(riscv.A0, riscv.A0, 128))
		a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.S2))
		a.emit(riscv.LB(riscv.A0, riscv.A0, 0))
	}
	a.emit(riscv.SB(riscv.A0, riscv.A5, 0))
	a.emit(riscv.ADDI(riscv.A5, riscv.A5, 1))
	a.emit(riscv.ADDI(riscv.S6, riscv.S6, 1))
	a.imm(riscv.T0, int32(mp.OutW))
	a.blt(riscv.S6, riscv.T0, "ox")
	a.emit(riscv.ADDI(riscv.S5, riscv.S5, 1))
	a.imm(riscv.T0, int32(mp.OutH))
	a.blt(riscv.S5, riscv.T0, "oy")
	a.addImm(riscv.A3, riscv.A3, int32(inHW), riscv.T0)
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, -1))
	a.bne(riscv.S7, riscv.Zero, "ch")
}

// emitGlobalAvgPool sums each plane and requantizes through the step's
// single channel record (whose effective bias folds -HW*zp_in).
func emitGlobalAvgPool(a *asm, sl *stepLayout, g *inference.PlanGlobalAvgPool, inAddr, outAddr uint32) {
	a.li(riscv.A3, inAddr)
	a.li(riscv.A5, outAddr)
	a.li(riscv.A4, sl.records)
	a.imm(riscv.A2, g.ZPOut)
	a.imm(riscv.S7, int32(g.C))
	a.label("ch")
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, 0))
	a.imm(riscv.T2, int32(g.HW))
	a.label("sum")
	a.emit(riscv.LB(riscv.T3, riscv.A3, 0))
	a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T3))
	a.emit(riscv.ADDI(riscv.A3, riscv.A3, 1))
	a.emit(riscv.ADDI(riscv.T2, riscv.T2, -1))
	a.bne(riscv.T2, riscv.Zero, "sum")
	a.emit(riscv.LW(riscv.T3, riscv.A4, 0))
	a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T3))
	a.emit(riscv.ADDI(riscv.A1, riscv.A4, 0))
	a.call("requant")
	a.emit(riscv.SB(riscv.A0, riscv.A5, 0))
	a.emit(riscv.ADDI(riscv.A5, riscv.A5, 1))
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, -1))
	a.bne(riscv.S7, riscv.Zero, "ch")
}

// emitAdd lowers element-wise addition through the per-operand int32
// tables, clamping the zp_out-seeded sum back to int8.
func emitAdd(a *asm, sl *stepLayout, add *inference.PlanAdd, elems int, srcs []uint32, outAddr uint32) {
	srcRegs := []int{riscv.S0, riscv.S1, riscv.S8, riscv.S9}
	tblRegs := []int{riscv.A3, riscv.A4, riscv.A6, riscv.A7}
	for i, src := range srcs {
		a.li(srcRegs[i], src)
		a.li(tblRegs[i], sl.addTables[i])
	}
	a.li(riscv.A5, outAddr)
	a.imm(riscv.S7, int32(elems))
	a.label("el")
	a.imm(riscv.A0, add.ZPOut)
	for i := range srcs {
		a.emit(riscv.LB(riscv.T0, srcRegs[i], 0))
		a.emit(riscv.ADDI(srcRegs[i], srcRegs[i], 1))
		a.emit(riscv.ADDI(riscv.T0, riscv.T0, 128))
		a.emit(riscv.SLLI(riscv.T0, riscv.T0, 2))
		a.emit(riscv.ADD(riscv.T0, riscv.T0, tblRegs[i]))
		a.emit(riscv.LW(riscv.T1, riscv.T0, 0))
		a.emit(riscv.ADD(riscv.A0, riscv.A0, riscv.T1))
	}
	a.emit(riscv.ADDI(riscv.T0, riscv.Zero, 127))
	a.bge(riscv.T0, riscv.A0, "cklo")
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, 127))
	a.label("cklo")
	a.emit(riscv.ADDI(riscv.T0, riscv.Zero, -128))
	a.bge(riscv.A0, riscv.T0, "ckdone")
	a.emit(riscv.ADDI(riscv.A0, riscv.Zero, -128))
	a.label("ckdone")
	a.emit(riscv.SB(riscv.A0, riscv.A5, 0))
	a.emit(riscv.ADDI(riscv.A5, riscv.A5, 1))
	a.emit(riscv.ADDI(riscv.S7, riscv.S7, -1))
	a.bne(riscv.S7, riscv.Zero, "el")
}
