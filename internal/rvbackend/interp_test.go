package rvbackend

import (
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/soc"
	"vedliot/internal/tensor"
)

// interpretPlan executes a QuantPlan in pure Go for one sample,
// returning every value's code buffer. It is an independent restatement
// of the plan's documented step semantics (not a transcription of the
// codegen), used to localize a firmware divergence to a single step.
func interpretPlan(t *testing.T, plan *inference.QuantPlan, in map[string]*tensor.Tensor) [][]int8 {
	t.Helper()
	vals := make([][]int8, len(plan.Values))
	for i, v := range plan.Values {
		vals[i] = make([]int8, v.Elems)
	}
	for i, v := range plan.InputVals {
		src := in[plan.InputNames[i]].F32
		tensor.QuantizeSlice(vals[v], src[:plan.Values[v].Elems], plan.Values[v].QP)
	}
	clamp := func(x int32) int8 {
		if x > 127 {
			return 127
		}
		if x < -128 {
			return -128
		}
		return int8(x)
	}
	for si := range plan.Steps {
		st := &plan.Steps[si]
		out := vals[st.Out]
		switch {
		case st.Conv != nil:
			c := st.Conv
			g := c.Geom
			taps := g.ICPerG * g.KH * g.KW
			groups := g.InC / g.ICPerG
			x := vals[st.Ins[0]]
			for grp := 0; grp < groups; grp++ {
				for oy := 0; oy < g.OutH; oy++ {
					for ox := 0; ox < g.OutW; ox++ {
						for o := 0; o < g.OCPerG; o++ {
							oc := grp*g.OCPerG + o
							acc := c.Bias[oc]
							ti := 0
							for ic := 0; ic < g.ICPerG; ic++ {
								ch := grp*g.ICPerG + ic
								for ky := 0; ky < g.KH; ky++ {
									iy := oy*g.SH - g.PH + ky
									for kx := 0; kx < g.KW; kx++ {
										ix := ox*g.SW - g.PW + kx
										w := int32(c.W[oc*taps+ti])
										ti++
										if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
											continue
										}
										acc += w * (int32(x[(ch*g.InH+iy)*g.InW+ix]) - c.ZPIn)
									}
								}
							}
							code := clamp(c.ZPOut + c.Req[oc].Apply(acc))
							if c.Post != nil {
								code = c.Post[oc][int(code)+128]
							}
							out[(oc*g.OutH+oy)*g.OutW+ox] = code
						}
					}
				}
			}
		case st.Dense != nil:
			d := st.Dense
			x := vals[st.Ins[0]]
			for o := 0; o < d.OutF; o++ {
				acc := d.Bias[o]
				for i := 0; i < d.InF; i++ {
					acc += int32(d.W[o*d.InF+i]) * (int32(x[i]) - d.ZPIn)
				}
				code := clamp(d.ZPOut + d.Req[o].Apply(acc))
				if d.Post != nil {
					code = d.Post[o][int(code)+128]
				}
				out[o] = code
			}
		case st.LUT != nil:
			x := vals[st.Ins[0]]
			if st.LUT.Table == nil {
				copy(out, x)
			} else {
				for i, c := range x {
					out[i] = st.LUT.Table[int(c)+128]
				}
			}
		case st.LUTPerChannel != nil:
			pc := st.LUTPerChannel
			x := vals[st.Ins[0]]
			for ch := 0; ch < pc.C; ch++ {
				for i := 0; i < pc.HW; i++ {
					out[ch*pc.HW+i] = pc.Tables[ch][int(x[ch*pc.HW+i])+128]
				}
			}
		case st.MaxPool != nil:
			mp := st.MaxPool
			x := vals[st.Ins[0]]
			for c := 0; c < mp.C; c++ {
				for oy := 0; oy < mp.OutH; oy++ {
					for ox := 0; ox < mp.OutW; ox++ {
						best := int32(-129)
						for ky := 0; ky < mp.KH; ky++ {
							iy := oy*mp.SH - mp.PH + ky
							if iy < 0 || iy >= mp.InH {
								continue
							}
							for kx := 0; kx < mp.KW; kx++ {
								ix := ox*mp.SW - mp.PW + kx
								if ix < 0 || ix >= mp.InW {
									continue
								}
								v := int32(x[(c*mp.InH+iy)*mp.InW+ix])
								if v > best {
									best = v
								}
							}
						}
						code := int8(best)
						if best == -129 {
							code = mp.Empty
						}
						if mp.Recode != nil {
							code = mp.Recode[int(code)+128]
						}
						out[(c*mp.OutH+oy)*mp.OutW+ox] = code
					}
				}
			}
		case st.GlobalAvgPool != nil:
			gp := st.GlobalAvgPool
			x := vals[st.Ins[0]]
			for c := 0; c < gp.C; c++ {
				sum := int32(0)
				for i := 0; i < gp.HW; i++ {
					sum += int32(x[c*gp.HW+i])
				}
				out[c] = clamp(gp.ZPOut + gp.Req.Apply(sum-int32(gp.HW)*gp.ZPIn))
			}
		case st.Add != nil:
			for i := range out {
				acc := st.Add.ZPOut
				for op, tbl := range st.Add.Tables {
					acc += tbl[int(vals[st.Ins[op]][i])+128]
				}
				out[i] = clamp(acc)
			}
		case st.Island != nil:
			srcs := make([][]int8, len(st.Ins))
			for k, in := range st.Ins {
				srcs[k] = vals[in]
			}
			if err := st.Island(1, out, srcs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return vals
}

// TestFirmwareStepwiseAgainstPlanInterpretation compares every firmware
// value buffer against the host interpretation of the plan, after first
// checking the interpretation itself against the native engine. Unlike
// the end-to-end parity tests, a failure here names the exact step that
// diverged.
func TestFirmwareStepwiseAgainstPlanInterpretation(t *testing.T) {
	models := map[string]*nn.Graph{
		"tiny-mlp": nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}),
		"lenet":    nn.LeNet(12, 6, nn.BuildOptions{Weights: true, Seed: 5}),
	}
	for name, g := range models {
		t.Run(name, func(t *testing.T) {
			samples, err := nn.SyntheticCalibration(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			schema, err := optimize.Calibrate(g, samples)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := inference.BuildQuantPlan(g, schema)
			if err != nil {
				t.Fatal(err)
			}
			in, err := nn.SyntheticInput(g, 1, 11)
			if err != nil {
				t.Fatal(err)
			}
			want := interpretPlan(t, plan, in)

			// The interpretation must match the native engine at the
			// declared outputs.
			q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			nat, err := q.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			for i, oname := range plan.OutputNames {
				v := plan.OutputVals[i]
				got := make([]float32, plan.Values[v].Elems)
				tensor.DequantizeSlice(got, want[v], plan.Values[v].QP)
				for j := range got {
					if got[j] != nat[oname].F32[j] {
						t.Fatalf("plan interpretation diverges from native at output %q elem %d: %v vs %v",
							oname, j, got[j], nat[oname].F32[j])
					}
				}
			}

			for _, noCFU := range []bool{false, true} {
				exe, err := Backend{Schema: schema, NoCFU: noCFU}.Compile(g)
				if err != nil {
					t.Fatal(err)
				}
				p := exe.(*Program)
				if _, err := p.Run(in); err != nil {
					t.Fatal(err)
				}
				ram := p.m.RAM.Bytes()
				for si := range plan.Steps {
					st := &plan.Steps[si]
					v := st.Out
					got := readCodes(ram, p.img.bufAddr[v]-soc.RAMBase, plan.Values[v].Elems)
					for j := range got {
						if got[j] != want[v][j] {
							t.Fatalf("NoCFU=%v: step %d %q (%s): value %q elem %d: firmware %d, want %d",
								noCFU, si, st.Name, st.Op, plan.Values[v].Name, j, got[j], want[v][j])
						}
					}
				}
			}
		})
	}
}
