// Package rvbackend lowers INT8 execution plans onto the emulated
// RISC-V SoC: a code generator turns inference.QuantPlan steps into
// RV32IM firmware whose conv/dense inner loops issue cfu.VectorMAC dot4
// instructions (or scalar MUL/ADD when the CFU is absent), a loader
// stages weights and activations in SoC RAM, and a host runner drives
// the cycle-accurate soc.Machine per inference sample. The result is an
// inference.Backend/Executable pair, so the layers above (cluster
// placement, the batch server, the bench harness) can route real
// requests onto a CFU-equipped chassis module and see measured
// cycles-per-inference instead of roofline guesses — the deployment
// path the paper's VexRiscv+CFU stack targets (§II-B, §IV-C).
//
// Bit-exactness with the native engine is by construction: the firmware
// reproduces the plan's integer semantics (raw-code dot products with
// zero points folded into per-channel effective biases, the identical
// fixed-point requantization, the identical lookup tables), and int32
// addition is associative and commutative modulo 2^32, so any summation
// order yields the same accumulator.
package rvbackend

import (
	"fmt"

	"vedliot/internal/riscv"
)

// asm is a tiny two-operand assembler over the riscv encoders with
// labels and branch/jump fixups, so codegen can emit loops without
// hand-counting instruction offsets.
type asm struct {
	words  []uint32
	base   uint32 // absolute address of words[0]
	labels map[string]int
	fixups []fixup
	scope  int // current label namespace (one per emitted block)
	err    error
}

// fixup is a branch or jump whose target label resolves later; enc
// re-encodes the instruction once the byte offset is known.
type fixup struct {
	idx   int
	label string
	enc   func(offset int32) uint32
}

func newAsm(base uint32) *asm {
	return &asm{base: base, labels: make(map[string]int)}
}

// pc returns the absolute address of the next instruction.
func (a *asm) pc() uint32 { return a.base + uint32(len(a.words))*4 }

func (a *asm) emit(ws ...uint32) { a.words = append(a.words, ws...) }

// enterScope starts a fresh label namespace for one codegen block.
func (a *asm) enterScope() { a.scope++ }

func (a *asm) scoped(name string) string {
	return fmt.Sprintf("%d.%s", a.scope, name)
}

// label defines name at the current position within the active scope.
func (a *asm) label(name string) {
	name = a.scoped(name)
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("rvbackend: duplicate label %q", name)
	}
	a.labels[name] = len(a.words)
}

// globalLabel defines name outside any scope (subroutines).
func (a *asm) globalLabel(name string) { a.labels[name] = len(a.words) }

func (a *asm) fixup(label string, enc func(int32) uint32) {
	a.fixups = append(a.fixups, fixup{idx: len(a.words), label: label, enc: enc})
	a.emit(0) // placeholder, patched in resolve
}

// Branches to a scoped label.
func (a *asm) beq(rs1, rs2 int, l string) {
	l = a.scoped(l)
	a.fixup(l, func(off int32) uint32 { return riscv.BEQ(rs1, rs2, off) })
}
func (a *asm) bne(rs1, rs2 int, l string) {
	l = a.scoped(l)
	a.fixup(l, func(off int32) uint32 { return riscv.BNE(rs1, rs2, off) })
}
func (a *asm) blt(rs1, rs2 int, l string) {
	l = a.scoped(l)
	a.fixup(l, func(off int32) uint32 { return riscv.BLT(rs1, rs2, off) })
}
func (a *asm) bge(rs1, rs2 int, l string) {
	l = a.scoped(l)
	a.fixup(l, func(off int32) uint32 { return riscv.BGE(rs1, rs2, off) })
}

// j is an unconditional jump to a scoped label.
func (a *asm) j(l string) {
	l = a.scoped(l)
	a.fixup(l, func(off int32) uint32 { return riscv.JAL(riscv.Zero, off) })
}

// call jumps-and-links to a global label (subroutine).
func (a *asm) call(global string) {
	a.fixup(global, func(off int32) uint32 { return riscv.JAL(riscv.RA, off) })
}

// li loads a 32-bit constant; riscv.LI is always two instructions, so
// code size is independent of the value (addresses can be patched
// without shifting labels).
func (a *asm) li(rd int, v uint32) { a.emit(riscv.LI(rd, v)...) }

// imm materializes a small signed constant with the shortest form.
func (a *asm) imm(rd int, v int32) {
	if v >= -2048 && v < 2048 {
		a.emit(riscv.ADDI(rd, riscv.Zero, v))
		return
	}
	a.li(rd, uint32(v))
}

// addImm adds a constant to a register, via ADDI when it fits and a
// scratch register otherwise.
func (a *asm) addImm(rd, rs int, v int32, tmp int) {
	if v >= -2048 && v < 2048 {
		a.emit(riscv.ADDI(rd, rs, v))
		return
	}
	a.li(tmp, uint32(v))
	a.emit(riscv.ADD(rd, rs, tmp))
}

// mulImm computes rd = rs * v, using a shift for powers of two and a
// scratch-register MUL otherwise. v must be positive.
func (a *asm) mulImm(rd, rs int, v int32, tmp int) {
	switch {
	case v == 1:
		a.emit(riscv.ADDI(rd, rs, 0))
	case v > 0 && v&(v-1) == 0:
		sh := uint32(0)
		for 1<<sh != v {
			sh++
		}
		a.emit(riscv.SLLI(rd, rs, sh))
	default:
		a.li(tmp, uint32(v))
		a.emit(riscv.MUL(rd, rs, tmp))
	}
}

// resolve patches all fixups; it must run once, after the last emit.
func (a *asm) resolve() error {
	if a.err != nil {
		return a.err
	}
	for _, f := range a.fixups {
		at, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("rvbackend: undefined label %q", f.label)
		}
		off := int32(at-f.idx) * 4
		a.words[f.idx] = f.enc(off)
	}
	return nil
}
