package rvbackend_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/rvbackend"
)

// Golden firmware-image tests pin the generated code's textual
// disassembly for representative models, mirroring the IR pipeline's
// golden-pass pattern: any codegen change — instruction selection, loop
// structure, layout addresses — shows up as a reviewable text diff.
//
// Regenerate with:
//
//	go test ./internal/rvbackend -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden firmware dumps in testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("firmware for %s diverged from golden file %s\n--- got ---\n%s", name, path, got)
	}
}

// TestGoldenFirmwareImages disassembles the generated firmware for a
// dense model (both CFU and scalar variants) and a convolutional model
// and compares against the committed dumps.
func TestGoldenFirmwareImages(t *testing.T) {
	cases := []struct {
		file  string
		g     *nn.Graph
		noCFU bool
	}{
		{"tiny_mlp_cfu.asm", nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}), false},
		{"tiny_mlp_scalar.asm", nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}), true},
		{"lenet12_cfu.asm", nn.LeNet(12, 6, nn.BuildOptions{Weights: true, Seed: 5}), false},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			schema := calibrate(t, c.g)
			exe, err := rvbackend.Backend{Schema: schema, NoCFU: c.noCFU}.Compile(c.g)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.file, exe.(*rvbackend.Program).Disassembly())
		})
	}
}
