package rvbackend

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"vedliot/internal/cfu"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/riscv"
	"vedliot/internal/soc"
	"vedliot/internal/tensor"
)

// DefaultClockHz is the nominal SoC clock used to turn measured cycles
// into latency predictions (a VexRiscv-class core on a mid-range FPGA).
const DefaultClockHz = 100e6

// maxSegmentSteps bounds one firmware segment run; generous against the
// largest supported layer, so only a codegen bug (runaway loop) hits it.
const maxSegmentSteps = 500_000_000

// Backend compiles INT8 graphs to firmware for the emulated RISC-V SoC.
// It satisfies inference.Backend, so everything that schedules work
// against the native engine (the batch server, cluster placement, the
// bench harness) can target the SoC unchanged.
type Backend struct {
	// Schema is the calibration schema; compilation fails without one
	// (the SoC path is integer-only).
	Schema *nn.QuantSchema
	// NoCFU drops the vector-MAC unit and emits scalar MUL/ADD inner
	// loops — the control arm of the CFU speedup measurement.
	NoCFU bool
	// ClockHz overrides DefaultClockHz for latency predictions.
	ClockHz float64
}

// Name implements inference.Backend.
func (b Backend) Name() string {
	if b.NoCFU {
		return "riscv-soc-scalar"
	}
	return "riscv-soc-cfu"
}

// Compile lowers the graph through the shared quantized plan, assembles
// firmware, stages constants in SoC RAM and runs one warmup inference
// so cycle-based latency predictions are available immediately.
func (b Backend) Compile(g *nn.Graph, opts ...inference.Option) (inference.Executable, error) {
	plan, err := inference.BuildQuantPlan(g, b.Schema)
	if err != nil {
		return nil, err
	}
	img, err := buildImage(plan, !b.NoCFU)
	if err != nil {
		return nil, err
	}
	var unit riscv.CFU
	if !b.NoCFU {
		unit = &cfu.VectorMAC{}
	}
	m, err := soc.NewMachine(soc.Config{Name: plan.Name + "-" + b.Name(), RAMSize: img.ramSize, CFU: unit})
	if err != nil {
		return nil, err
	}
	copy(m.RAM.Bytes(), img.data)
	if err := m.RAM.LoadWords(img.textOff-soc.RAMBase, img.text); err != nil {
		return nil, err
	}
	clock := b.ClockHz
	if clock <= 0 {
		clock = DefaultClockHz
	}
	p := &Program{name: b.Name(), plan: plan, img: img, m: m, clockHz: clock}
	if err := p.warmup(); err != nil {
		return nil, fmt.Errorf("rvbackend: warmup inference: %w", err)
	}
	return p, nil
}

var _ inference.Backend = Backend{}

// Program is a compiled model resident on one emulated SoC. It
// implements inference.Executable; calls serialize on the single
// machine (one hart, one accelerator port — concurrency is the
// cluster's job, not the chassis module's).
type Program struct {
	name    string
	plan    *inference.QuantPlan
	img     *image
	m       *soc.Machine
	clockHz float64

	mu     sync.Mutex
	cycles uint64 // measured cycles per inference, last Run average
}

// Name reports the compiling backend's name.
func (p *Program) Name() string { return p.name }

// Image exposes the firmware build for tests and golden dumps.
func (p *Program) Image() *FirmwareInfo {
	return &FirmwareInfo{
		TextWords: len(p.img.text),
		DataBytes: len(p.img.data),
		RAMSize:   p.img.ramSize,
		Segments:  len(p.img.segStarts),
		UseCFU:    p.img.useCFU,
	}
}

// FirmwareInfo summarizes a compiled firmware image.
type FirmwareInfo struct {
	// TextWords is the generated instruction count.
	TextWords int
	// DataBytes is the const-pool size (mailbox through patch scratch).
	DataBytes int
	// RAMSize is the provisioned SoC RAM.
	RAMSize uint32
	// Segments is the number of firmware entry points.
	Segments int
	// UseCFU reports whether inner loops issue vector-MAC instructions.
	UseCFU bool
}

// resolveInputs validates the input map against per-sample shapes and
// returns FP32 views plus the batch, mirroring the native engines.
func (p *Program) resolveInputs(inputs map[string]*tensor.Tensor) ([][]float32, int, error) {
	if len(p.plan.InputNames) == 0 {
		return nil, 0, fmt.Errorf("rvbackend: graph declares no inputs")
	}
	bufs := make([][]float32, len(p.plan.InputNames))
	batch := 0
	for i, name := range p.plan.InputNames {
		t, ok := inputs[name]
		if !ok || t == nil {
			return nil, 0, fmt.Errorf("rvbackend: missing input %q", name)
		}
		if len(t.Shape) == 0 {
			return nil, 0, fmt.Errorf("rvbackend: input %q is a scalar, want batched tensor", name)
		}
		per := p.plan.Values[p.plan.InputVals[i]].Shape
		want := append(tensor.Shape{t.Shape[0]}, per...)
		if !t.Shape.Equal(want) {
			return nil, 0, fmt.Errorf("rvbackend: input %q has shape %v, want %v", name, t.Shape, want)
		}
		if i == 0 {
			batch = t.Shape[0]
		} else if t.Shape[0] != batch {
			return nil, 0, fmt.Errorf("rvbackend: input %q has batch %d, want %d", name, t.Shape[0], batch)
		}
		if t.DType == tensor.FP32 {
			bufs[i] = t.F32
		} else {
			bufs[i] = t.Float32s()
		}
	}
	if batch <= 0 {
		return nil, 0, fmt.Errorf("rvbackend: batch must be positive")
	}
	return bufs, batch, nil
}

// Run implements inference.Executable: quantize inputs into SoC RAM,
// drive the firmware segments (host islands in between), read back and
// dequantize outputs. Output conventions mirror QuantEngine.Run: an
// output resolving to an input value passes the caller's tensor
// through, and a name listed twice shares one tensor.
func (p *Program) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	bufs, batch, err := p.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	inputIdx := make(map[int]int, len(p.plan.InputVals))
	for i, v := range p.plan.InputVals {
		inputIdx[v] = i
	}
	result := make(map[string]*tensor.Tensor, len(p.plan.OutputNames))
	type outBinding struct {
		val int
		t   *tensor.Tensor
	}
	var outs []outBinding
	for i, name := range p.plan.OutputNames {
		v := p.plan.OutputVals[i]
		if j, ok := inputIdx[v]; ok {
			result[name] = inputs[p.plan.InputNames[j]]
			continue
		}
		if _, done := result[name]; done {
			continue
		}
		t := tensor.New(tensor.FP32, append(tensor.Shape{batch}, p.plan.Values[v].Shape...)...)
		result[name] = t
		outs = append(outs, outBinding{val: v, t: t})
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	total := uint64(0)
	for s := 0; s < batch; s++ {
		cyc, err := p.runSample(bufs, s)
		if err != nil {
			return nil, err
		}
		total += cyc
		ram := p.m.RAM.Bytes()
		for _, ob := range outs {
			val := p.plan.Values[ob.val]
			codes := readCodes(ram, p.img.bufAddr[ob.val]-soc.RAMBase, val.Elems)
			tensor.DequantizeSlice(ob.t.F32[s*val.Elems:(s+1)*val.Elems], codes, val.QP)
		}
	}
	p.cycles = total / uint64(batch)
	return result, nil
}

// runSample stages one sample's inputs, runs the firmware segments with
// host islands interleaved, and returns the firmware-measured cycles.
func (p *Program) runSample(bufs [][]float32, s int) (uint64, error) {
	ram := p.m.RAM.Bytes()
	codes := make([]int8, 0, 256)
	for i, v := range p.plan.InputVals {
		val := p.plan.Values[v]
		if cap(codes) < val.Elems {
			codes = make([]int8, val.Elems)
		}
		codes = codes[:val.Elems]
		tensor.QuantizeSlice(codes, bufs[i][s*val.Elems:(s+1)*val.Elems], val.QP)
		writeCodes(ram, p.img.bufAddr[v]-soc.RAMBase, codes)
	}
	mb := p.img.mailbox - soc.RAMBase
	for j := uint32(0); j < 8; j++ {
		ram[mb+j] = 0
	}
	p.m.Finisher.Done = false
	p.m.Finisher.Pass = false
	for _, act := range p.img.actions {
		if act.segment >= 0 {
			p.m.Core.Halted = false
			p.m.Core.PC = p.img.segStarts[act.segment]
			if _, err := p.m.Run(maxSegmentSteps); err != nil {
				return 0, err
			}
			if !p.m.Core.Halted {
				return 0, fmt.Errorf("rvbackend: segment %d did not halt", act.segment)
			}
			continue
		}
		st := &p.plan.Steps[act.step]
		srcs := make([][]int8, len(st.Ins))
		for k, in := range st.Ins {
			srcs[k] = readCodes(ram, p.img.bufAddr[in]-soc.RAMBase, p.plan.Values[in].Elems)
		}
		dst := make([]int8, p.plan.Values[st.Out].Elems)
		if err := st.Island(1, dst, srcs); err != nil {
			return 0, fmt.Errorf("rvbackend: island step %q: %w", st.Name, err)
		}
		writeCodes(ram, p.img.bufAddr[st.Out]-soc.RAMBase, dst)
	}
	if len(p.img.segStarts) > 0 {
		if err := p.m.RequireFinished(); err != nil {
			return 0, err
		}
	}
	le := binary.LittleEndian
	return uint64(le.Uint32(ram[mb:])) | uint64(le.Uint32(ram[mb+4:]))<<32, nil
}

// RunBatch implements inference.Executable; the SoC executes sample by
// sample, so requests dispatch sequentially.
func (p *Program) RunBatch(batches []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	outs := make([]map[string]*tensor.Tensor, len(batches))
	for i, in := range batches {
		out, err := p.Run(in)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// CyclesPerInference returns the firmware-measured per-sample cycle
// count from the most recent Run (the warmup inference at compile time
// seeds it).
func (p *Program) CyclesPerInference() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cycles
}

// PredictLatency estimates wall time for a batch from measured cycles
// and the nominal clock — the cost signal the cluster router consumes,
// grounded in cycle-accurate execution rather than roofline arithmetic.
func (p *Program) PredictLatency(batch int) (time.Duration, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("rvbackend: batch must be positive")
	}
	cyc := p.CyclesPerInference()
	if cyc == 0 {
		return 0, fmt.Errorf("rvbackend: no measured cycles yet")
	}
	sec := float64(cyc) * float64(batch) / p.clockHz
	return time.Duration(sec * float64(time.Second)), nil
}

var _ inference.Executable = (*Program)(nil)

// warmup runs one zero-valued inference to seed the cycle measurement.
func (p *Program) warmup() error {
	in := make(map[string]*tensor.Tensor, len(p.plan.InputNames))
	for i, name := range p.plan.InputNames {
		per := p.plan.Values[p.plan.InputVals[i]].Shape
		in[name] = tensor.New(tensor.FP32, append(tensor.Shape{1}, per...)...)
	}
	_, err := p.Run(in)
	return err
}

func readCodes(ram []byte, off uint32, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(ram[off+uint32(i)])
	}
	return out
}

func writeCodes(ram []byte, off uint32, codes []int8) {
	for i, c := range codes {
		ram[off+uint32(i)] = byte(c)
	}
}
