package rvbackend

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"vedliot/internal/riscv"
	"vedliot/internal/soc"
	"vedliot/internal/tensor"
)

// TestRequantSubroutineMatchesApply drives the firmware requant
// subroutine with randomized accumulators and scales and compares
// against tensor.Requant.Apply plus clamp — the keystone of the
// bit-exactness argument, verified in isolation.
func TestRequantSubroutineMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		scale := rng.Float64() * 0.01
		rq := tensor.NewRequant(scale)
		acc := int32(rng.Intn(1<<20) - 1<<19)
		zpOut := int32(rng.Intn(32) - 16)

		const recAddr = soc.RAMBase + 16
		a := newAsm(soc.RAMBase + 64)
		a.li(riscv.A0, uint32(acc))
		a.li(riscv.A1, recAddr)
		a.imm(riscv.A2, zpOut)
		a.call("requant")
		// Park the result where the host can read it.
		a.li(riscv.T3, soc.RAMBase+48)
		a.emit(riscv.SW(riscv.A0, riscv.T3, 0))
		a.li(riscv.T0, soc.FinisherBase)
		a.li(riscv.T1, soc.FinisherPass)
		a.emit(riscv.SW(riscv.T1, riscv.T0, 0))
		a.emit(riscv.WFI())
		emitRequant(a)
		if err := a.resolve(); err != nil {
			t.Fatal(err)
		}

		m, err := soc.NewMachine(soc.Config{RAMSize: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		ram := m.RAM.Bytes()
		if err := putRecord(ram[16:], 0, rq, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.RAM.LoadWords(64, a.words); err != nil {
			t.Fatal(err)
		}
		m.Core.PC = soc.RAMBase + 64
		if _, err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		if err := m.RequireFinished(); err != nil {
			t.Fatal(err)
		}
		got := int32(binary.LittleEndian.Uint32(ram[48:]))
		want := int32(tensor.ClampInt8(zpOut + rq.Apply(acc)))
		if got != want {
			mult, shift, round := rq.Fixed()
			t.Fatalf("trial %d: acc=%d mult=%d shift=%d round=%d zp=%d: firmware %d, want %d",
				trial, acc, mult, shift, round, zpOut, got, want)
		}
	}
}
