// Package difftest differentially tests the RISC-V SoC firmware backend
// against the native INT8 engine on randomly generated model graphs.
//
// Both execution paths lower the same quantization schema through the
// shared plan (inference.BuildQuantPlan), so for any graph the plan
// supports their dequantized FP32 outputs must be bitwise identical —
// not merely close. Generate builds a seed-pinned random graph from the
// op vocabulary the firmware lowers (conv, depthwise conv, dense,
// batch-norm, pointwise activations, max-pool, global average pool,
// residual add, flatten, softmax islands); Check runs one graph through
// the native engine and both firmware variants (CFU and scalar) and
// reports the first divergence.
package difftest

import (
	"fmt"
	"math/rand"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/rvbackend"
	"vedliot/internal/tensor"
)

// activations that lower to code-table LUT steps.
var acts = []nn.OpType{
	nn.OpReLU, nn.OpReLU6, nn.OpLeakyReLU, nn.OpSigmoid,
	nn.OpTanh, nn.OpHSwish, nn.OpHSigmoid, nn.OpMish,
}

// Generate builds a small random model graph, deterministic in seed.
// Every op it emits has an integer lowering (or a supported island), so
// the result always compiles on both the native engine and the SoC
// backend; shapes are kept tiny so cycle-accurate emulation stays fast.
func Generate(seed int64) *nn.Graph {
	r := rand.New(rand.NewSource(seed))
	b := nn.NewBuilder(fmt.Sprintf("difftest-%d", seed), nn.BuildOptions{Weights: true, Seed: seed})

	curC := 1 + r.Intn(3)
	curH := 6 + r.Intn(6)
	x := b.Input("in", curC, curH, curH)

	stages := 2 + r.Intn(4)
	for i := 0; i < stages; i++ {
		switch r.Intn(7) {
		case 0: // plain conv
			k := 1 + r.Intn(3)
			s := 1 + r.Intn(2)
			p := 0
			if k > 1 {
				p = r.Intn(2)
			}
			outH := (curH+2*p-k)/s + 1
			if outH < 1 {
				continue
			}
			outC := 1 + r.Intn(4)
			x = b.Conv(x, curC, outC, k, s, p)
			curC, curH = outC, outH
		case 1: // conv -> batch-norm -> activation (fused epilogue path)
			k := 1 + 2*r.Intn(2) // 1 or 3
			p := k / 2
			outH := curH + 2*p - k + 1
			if outH < 1 {
				continue
			}
			outC := 1 + r.Intn(4)
			x = b.ConvBNAct(x, curC, outC, k, 1, p, acts[r.Intn(len(acts))])
			curC, curH = outC, outH
		case 2: // depthwise conv
			if curH < 3 {
				continue
			}
			s := 1 + r.Intn(2)
			outH := (curH+2-3)/s + 1
			x = b.DWConv(x, curC, 3, s, 1)
			curH = outH
		case 3: // max-pool
			s := 1 + r.Intn(2)
			outH := (curH-2)/s + 1
			if outH < 1 {
				continue
			}
			x = b.MaxPool(x, 2, s, 0)
			curH = outH
		case 4: // bare activation
			x = b.Act(x, acts[r.Intn(len(acts))])
		case 5: // standalone batch-norm (per-channel LUT step)
			x = b.BN(x, curC)
		case 6: // residual block: x + act(conv3x3(x))
			if curH < 3 {
				continue
			}
			y := b.Conv(x, curC, curC, 3, 1, 1)
			y = b.Act(y, acts[r.Intn(len(acts))])
			x = b.Add(x, y)
		}
	}

	switch r.Intn(3) {
	case 0: // classifier head over pooled channels
		x = b.GlobalAvgPool(x)
		x = b.Flatten(x)
		x = b.Dense(x, curC, 2+r.Intn(4))
	case 1: // dense head with activation
		x = b.Flatten(x)
		x = b.Dense(x, curC*curH*curH, 2+r.Intn(6))
		x = b.Act(x, acts[r.Intn(len(acts))])
	default: // softmax head (FP32 island on the firmware path)
		x = b.Flatten(x)
		x = b.Dense(x, curC*curH*curH, 3+r.Intn(4))
		x = b.Softmax(x)
	}
	g := b.Graph(x)
	perturbBatchNorm(g, r)
	return g
}

// perturbBatchNorm replaces the builder's identity batch-norm statistics
// with random ones so the per-channel tables are non-trivial.
func perturbBatchNorm(g *nn.Graph, r *rand.Rand) {
	for _, n := range g.Nodes {
		if n.Op != nn.OpBatchNorm {
			continue
		}
		for _, key := range []string{nn.GammaKey, nn.BetaKey, nn.MeanKey, nn.VarKey} {
			t := n.Weight(key)
			if t == nil {
				continue
			}
			for i := range t.F32 {
				v := float32(r.NormFloat64() * 0.5)
				if key == nn.GammaKey {
					v = 1 + v*0.5
				}
				if key == nn.VarKey {
					v = 0.5 + float32(r.Float64())
				}
				t.F32[i] = v
			}
		}
	}
}

// Check calibrates the graph, runs it through the native INT8 engine
// and both firmware variants, and returns an error naming the first
// output element where any pair of paths disagrees bitwise.
func Check(g *nn.Graph, batch int, inputSeed int) error {
	samples, err := nn.SyntheticCalibration(g, 2)
	if err != nil {
		return fmt.Errorf("calibration samples: %w", err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		return fmt.Errorf("calibrate: %w", err)
	}
	in, err := nn.SyntheticInput(g, batch, inputSeed)
	if err != nil {
		return fmt.Errorf("input: %w", err)
	}
	native, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		return fmt.Errorf("native compile: %w", err)
	}
	want, err := native.Run(in)
	if err != nil {
		return fmt.Errorf("native run: %w", err)
	}
	for _, noCFU := range []bool{false, true} {
		b := rvbackend.Backend{Schema: schema, NoCFU: noCFU}
		exe, err := b.Compile(g)
		if err != nil {
			return fmt.Errorf("%s compile: %w", b.Name(), err)
		}
		got, err := exe.Run(in)
		if err != nil {
			return fmt.Errorf("%s run: %w", b.Name(), err)
		}
		if err := diff(want, got); err != nil {
			return fmt.Errorf("%s: %w", b.Name(), err)
		}
	}
	return nil
}

// diff reports the first bitwise difference between two output maps.
func diff(want, got map[string]*tensor.Tensor) error {
	if len(want) != len(got) {
		return fmt.Errorf("output count %d, want %d", len(got), len(want))
	}
	for k, wt := range want {
		gt, ok := got[k]
		if !ok {
			return fmt.Errorf("missing output %q", k)
		}
		if !wt.Shape.Equal(gt.Shape) {
			return fmt.Errorf("output %q shape %v, want %v", k, gt.Shape, wt.Shape)
		}
		for i := range wt.F32 {
			if wt.F32[i] != gt.F32[i] {
				return fmt.Errorf("output %q elem %d: firmware %v, native %v",
					k, i, gt.F32[i], wt.F32[i])
			}
		}
	}
	return nil
}
