package difftest

import (
	"fmt"
	"testing"
)

// shortCorpus is the seed-pinned corpus that must pass even in -short
// CI runs; fullExtra extends it for full (nightly) runs.
const (
	shortCorpus = 50
	fullExtra   = 150
)

// TestRandomGraphParity generates seed-pinned random graphs and requires
// bit-exact agreement between the native INT8 engine and both firmware
// variants on every one.
func TestRandomGraphParity(t *testing.T) {
	n := shortCorpus
	if !testing.Short() {
		n += fullExtra
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			g := Generate(seed)
			if err := Check(g, 2, int(seed)+1000); err != nil {
				t.Fatalf("seed %d (%d nodes): %v", seed, len(g.Nodes), err)
			}
		})
	}
}

// TestGenerateDeterministic pins the generator contract the corpus
// relies on: the same seed always yields the same graph.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name || a.Nodes[i].Op != b.Nodes[i].Op {
			t.Fatalf("node %d differs: %s/%s vs %s/%s",
				i, a.Nodes[i].Name, a.Nodes[i].Op, b.Nodes[i].Name, b.Nodes[i].Op)
		}
	}
}
