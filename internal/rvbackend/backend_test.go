package rvbackend_test

import (
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/rvbackend"
	"vedliot/internal/tensor"
)

func calibrate(t testing.TB, g *nn.Graph) *nn.QuantSchema {
	t.Helper()
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// requireBitExact asserts two output maps are bitwise identical: both
// paths dequantize identical int8 codes through identical parameters,
// so even the FP32 views must match exactly.
func requireBitExact(t *testing.T, name string, native, fw map[string]*tensor.Tensor) {
	t.Helper()
	if len(native) != len(fw) {
		t.Fatalf("%s: output count %d != %d", name, len(fw), len(native))
	}
	for k, nt := range native {
		ft, ok := fw[k]
		if !ok {
			t.Fatalf("%s: missing output %q", name, k)
		}
		if !nt.Shape.Equal(ft.Shape) {
			t.Fatalf("%s: output %q shape %v != %v", name, k, ft.Shape, nt.Shape)
		}
		for i := range nt.F32 {
			if nt.F32[i] != ft.F32[i] {
				t.Fatalf("%s: output %q diverges at %d: firmware %v, native %v",
					name, k, i, ft.F32[i], nt.F32[i])
			}
		}
	}
}

// TestFirmwareParityWithNativeEngine runs representative models through
// the native INT8 engine and the SoC firmware (both CFU and scalar
// variants) and requires bit-exact outputs.
func TestFirmwareParityWithNativeEngine(t *testing.T) {
	models := map[string]*nn.Graph{
		"tiny-mlp": nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}),
		"gesture":  nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77}),
		"lenet":    nn.LeNet(12, 6, nn.BuildOptions{Weights: true, Seed: 5}),
	}
	for name, g := range models {
		t.Run(name, func(t *testing.T) {
			schema := calibrate(t, g)
			q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			in, err := nn.SyntheticInput(g, 3, 11)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, noCFU := range []bool{false, true} {
				b := rvbackend.Backend{Schema: schema, NoCFU: noCFU}
				exe, err := b.Compile(g)
				if err != nil {
					t.Fatalf("%s: %v", b.Name(), err)
				}
				got, err := exe.Run(in)
				if err != nil {
					t.Fatalf("%s: %v", b.Name(), err)
				}
				requireBitExact(t, name+"/"+b.Name(), want, got)
			}
		})
	}
}

// TestCFUCycleSpeedup requires the vector-MAC firmware to beat the
// scalar firmware by at least 2x in measured cycles — the paper's whole
// argument for tightly coupled custom function units.
func TestCFUCycleSpeedup(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	schema := calibrate(t, g)
	cycles := map[bool]uint64{}
	for _, noCFU := range []bool{false, true} {
		exe, err := rvbackend.Backend{Schema: schema, NoCFU: noCFU}.Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		p := exe.(*rvbackend.Program)
		if p.CyclesPerInference() == 0 {
			t.Fatalf("NoCFU=%v: warmup did not measure cycles", noCFU)
		}
		cycles[noCFU] = p.CyclesPerInference()
	}
	ratio := float64(cycles[true]) / float64(cycles[false])
	t.Logf("scalar %d cycles, cfu %d cycles, speedup %.2fx", cycles[true], cycles[false], ratio)
	if ratio < 2 {
		t.Errorf("CFU speedup %.2fx, want >= 2x", ratio)
	}
}

// TestPredictLatencyFromMeasuredCycles checks the router cost signal:
// linear in batch, derived from warmup-measured cycles.
func TestPredictLatencyFromMeasuredCycles(t *testing.T) {
	g := nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7})
	schema := calibrate(t, g)
	exe, err := rvbackend.Backend{Schema: schema}.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	p := exe.(*rvbackend.Program)
	d1, err := p.PredictLatency(1)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := p.PredictLatency(4)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 || d4 != 4*d1 {
		t.Errorf("latency not linear in batch: %v vs %v", d1, d4)
	}
	if _, err := p.PredictLatency(0); err == nil {
		t.Error("PredictLatency(0) should fail")
	}
	info := p.Image()
	if info.TextWords == 0 || info.Segments == 0 || !info.UseCFU {
		t.Errorf("unexpected firmware info %+v", info)
	}
}
