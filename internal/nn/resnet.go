package nn

// ResNet50 builds the standard ResNet-50 classifier for inputSize×inputSize
// RGB inputs (224 in the paper's evaluation). Structure: 7×7/2 stem,
// 3-4-6-3 bottleneck stages with expansion 4, global average pooling and a
// 1000-way classifier.
func ResNet50(inputSize int, opts BuildOptions) *Graph {
	b := NewBuilder("resnet50", opts)
	x := b.Input("input", 3, inputSize, inputSize)

	x = b.ConvBNAct(x, 3, 64, 7, 2, 3, OpReLU)
	x = b.MaxPool(x, 3, 2, 1)

	cfg := []struct {
		blocks, width, stride int
	}{
		{3, 64, 1},
		{4, 128, 2},
		{6, 256, 2},
		{3, 512, 2},
	}
	inC := 64
	for _, st := range cfg {
		for i := 0; i < st.blocks; i++ {
			stride := 1
			if i == 0 {
				stride = st.stride
			}
			x, inC = bottleneck(b, x, inC, st.width, stride)
		}
	}

	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, inC, 1000)
	x = b.Softmax(x)
	return b.Graph(x)
}

// bottleneck appends one ResNet bottleneck block (1×1 reduce, 3×3, 1×1
// expand ×4) with an identity or projection shortcut. It returns the
// output node and its channel count.
func bottleneck(b *Builder, x string, inC, width, stride int) (string, int) {
	outC := width * 4
	y := b.ConvBNAct(x, inC, width, 1, 1, 0, OpReLU)
	y = b.ConvBNAct(y, width, width, 3, stride, 1, OpReLU)
	y = b.ConvNB(y, width, outC, 1, 1, 0)
	y = b.BN(y, outC)

	shortcut := x
	if inC != outC || stride != 1 {
		shortcut = b.ConvNB(x, inC, outC, 1, stride, 0)
		shortcut = b.BN(shortcut, outC)
	}
	sum := b.Add(y, shortcut)
	return b.Act(sum, OpReLU), outC
}

// ResNet18 builds the lighter ResNet-18 (basic blocks), used by the
// robustness-service experiments where a reference model must run on an
// edge node.
func ResNet18(inputSize int, opts BuildOptions) *Graph {
	b := NewBuilder("resnet18", opts)
	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 64, 7, 2, 3, OpReLU)
	x = b.MaxPool(x, 3, 2, 1)

	cfg := []struct {
		blocks, width, stride int
	}{
		{2, 64, 1},
		{2, 128, 2},
		{2, 256, 2},
		{2, 512, 2},
	}
	inC := 64
	for _, st := range cfg {
		for i := 0; i < st.blocks; i++ {
			stride := 1
			if i == 0 {
				stride = st.stride
			}
			x, inC = basicBlock(b, x, inC, st.width, stride)
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, inC, 1000)
	x = b.Softmax(x)
	return b.Graph(x)
}

func basicBlock(b *Builder, x string, inC, width, stride int) (string, int) {
	y := b.ConvBNAct(x, inC, width, 3, stride, 1, OpReLU)
	y = b.ConvNB(y, width, width, 3, 1, 1)
	y = b.BN(y, width)

	shortcut := x
	if inC != width || stride != 1 {
		shortcut = b.ConvNB(x, inC, width, 1, stride, 0)
		shortcut = b.BN(shortcut, width)
	}
	sum := b.Add(y, shortcut)
	return b.Act(sum, OpReLU), width
}
