package nn

import (
	"strings"
	"testing"
)

// diamondNodes builds the node set of a diamond-with-branches graph:
// input → two parallel conv branches → add → output, plus a third
// branch joining late. Returned as a flat slice so tests can insert the
// same nodes in different orders.
func diamondNodes() []*Node {
	return []*Node{
		{Name: "input", Op: OpInput, Attrs: Attrs{Shape: []int{3, 8, 8}}},
		{Name: "left", Op: OpReLU, Inputs: []string{"input"}},
		{Name: "right", Op: OpSigmoid, Inputs: []string{"input"}},
		{Name: "mid", Op: OpTanh, Inputs: []string{"input"}},
		{Name: "join", Op: OpAdd, Inputs: []string{"left", "right", "mid"}},
		{Name: "out", Op: OpReLU, Inputs: []string{"join"}},
	}
}

// TestTopoSortDeterministicAcrossInsertionOrders pins the determinism
// contract: the topological order depends only on graph structure
// (longest-path depth, then name), never on the order nodes were added.
// IR dumps and arena layouts are byte-stable because of this.
func TestTopoSortDeterministicAcrossInsertionOrders(t *testing.T) {
	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{3, 0, 5, 2, 4, 1},
		{2, 4, 0, 1, 5, 3},
	}
	var want string
	for i, perm := range orders {
		g := NewGraph("diamond")
		nodes := diamondNodes()
		for _, idx := range perm {
			n := nodes[idx]
			g.MustAdd(&Node{Name: n.Name, Op: n.Op, Inputs: n.Inputs, Attrs: n.Attrs})
		}
		g.Outputs = []string{"out"}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatalf("perm %d: %v", i, err)
		}
		names := make([]string, len(order))
		for j, n := range order {
			names[j] = n.Name
		}
		got := strings.Join(names, ",")
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("perm %d: order %q differs from %q", i, got, want)
		}
	}
	// Equal-depth nodes (the three parallel branches) must appear in
	// name order.
	if !strings.Contains(want, "left,mid,right") {
		t.Errorf("equal-depth tie-break not name-ordered: %q", want)
	}
}

// TestTopoSortDepthRespectsEdges checks the order is still topological:
// every node appears after all of its inputs.
func TestTopoSortDepthRespectsEdges(t *testing.T) {
	g := NewGraph("edges")
	for _, n := range diamondNodes() {
		g.MustAdd(n)
	}
	g.Outputs = []string{"out"}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n.Name] = i
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] > pos[n.Name] {
				t.Errorf("node %q at %d precedes its input %q at %d", n.Name, pos[n.Name], in, pos[in])
			}
		}
	}
}
