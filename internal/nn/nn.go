// Package nn defines the neural-network graph intermediate representation
// used across the VEDLIoT toolchain.
//
// The IR mirrors the role ONNX plays in the paper (Section III): a common
// operator-level representation that optimization passes rewrite and that
// backends (the reference interpreter, the accelerator performance models,
// the Kenning-style deployment pipeline) consume. Graphs carry enough
// structure for exact MAC/parameter/traffic accounting, which drives the
// Fig. 3/4 performance evaluation.
package nn

import (
	"fmt"
	"sort"

	"vedliot/internal/tensor"
)

// OpType enumerates the supported operator kinds.
type OpType int

// Operator kinds. The set covers the models evaluated in the paper
// (ResNet50, MobileNetV3, YoloV4) plus the small use-case networks.
const (
	OpInput OpType = iota
	OpConv
	OpDepthwiseConv
	OpDense
	OpBatchNorm
	OpReLU
	OpReLU6
	OpLeakyReLU
	OpSigmoid
	OpTanh
	OpHSwish
	OpHSigmoid
	OpMish
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpAdd
	OpMul
	OpConcat
	OpUpsample
	OpSoftmax
	OpFlatten
	OpIdentity
	numOpTypes
)

var opNames = [...]string{
	OpInput:         "Input",
	OpConv:          "Conv",
	OpDepthwiseConv: "DepthwiseConv",
	OpDense:         "Dense",
	OpBatchNorm:     "BatchNorm",
	OpReLU:          "ReLU",
	OpReLU6:         "ReLU6",
	OpLeakyReLU:     "LeakyReLU",
	OpSigmoid:       "Sigmoid",
	OpTanh:          "Tanh",
	OpHSwish:        "HSwish",
	OpHSigmoid:      "HSigmoid",
	OpMish:          "Mish",
	OpMaxPool:       "MaxPool",
	OpAvgPool:       "AvgPool",
	OpGlobalAvgPool: "GlobalAvgPool",
	OpAdd:           "Add",
	OpMul:           "Mul",
	OpConcat:        "Concat",
	OpUpsample:      "Upsample",
	OpSoftmax:       "Softmax",
	OpFlatten:       "Flatten",
	OpIdentity:      "Identity",
}

// String returns the operator name.
func (o OpType) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OpType(%d)", int(o))
}

// ParseOpType is the inverse of OpType.String.
func ParseOpType(s string) (OpType, error) {
	for i, n := range opNames {
		if n == s {
			return OpType(i), nil
		}
	}
	return 0, fmt.Errorf("nn: unknown op type %q", s)
}

// Attrs carries per-operator attributes. Each operator reads the subset it
// needs; unused fields are zero.
type Attrs struct {
	KernelH, KernelW int     // conv/pool window
	StrideH, StrideW int     // conv/pool stride
	PadH, PadW       int     // symmetric zero padding
	Groups           int     // grouped convolution (1 = dense conv)
	OutC             int     // conv output channels / dense output features
	Alpha            float32 // LeakyReLU slope
	Scale            int     // upsample integer factor
	Shape            []int   // input node shape (C,H,W) or (features,)
	Eps              float32 // batch-norm epsilon
	Bias             bool    // layer has a bias term (drives parameter
	// accounting when weights are not materialized)
}

// Standard weight-map keys.
const (
	WeightKey = "W"     // conv filters [outC, inC/groups, kh, kw]; dense [out, in]
	BiasKey   = "B"     // [outC]
	GammaKey  = "gamma" // batch-norm scale [C]
	BetaKey   = "beta"  // batch-norm shift [C]
	MeanKey   = "mean"  // batch-norm running mean [C]
	VarKey    = "var"   // batch-norm running variance [C]
)

// Node is one operator instance in a graph.
type Node struct {
	Name    string
	Op      OpType
	Inputs  []string
	Attrs   Attrs
	Weights map[string]*tensor.Tensor

	// OutShape is the inferred output shape including the batch
	// dimension; populated by Graph.InferShapes.
	OutShape tensor.Shape
}

// Weight returns the named weight tensor or nil.
func (n *Node) Weight(key string) *tensor.Tensor {
	if n.Weights == nil {
		return nil
	}
	return n.Weights[key]
}

// SetWeight stores a weight tensor under key.
func (n *Node) SetWeight(key string, t *tensor.Tensor) {
	if n.Weights == nil {
		n.Weights = make(map[string]*tensor.Tensor)
	}
	n.Weights[key] = t
}

// WeightKeys returns the node's weight keys in sorted order.
func (n *Node) WeightKeys() []string {
	keys := make([]string, 0, len(n.Weights))
	for k := range n.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Graph is a directed acyclic graph of operators.
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []string
	Outputs []string

	byName map[string]*Node
}

// NewGraph creates an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]*Node)}
}

// Add appends a node; the name must be unique within the graph.
func (g *Graph) Add(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("nn: node with empty name")
	}
	if _, dup := g.byName[n.Name]; dup {
		return fmt.Errorf("nn: duplicate node %q", n.Name)
	}
	g.Nodes = append(g.Nodes, n)
	g.byName[n.Name] = n
	if n.Op == OpInput {
		g.Inputs = append(g.Inputs, n.Name)
	}
	return nil
}

// MustAdd is Add that panics; for static model builders.
func (g *Graph) MustAdd(n *Node) *Node {
	if err := g.Add(n); err != nil {
		panic(err)
	}
	return n
}

// Node returns the named node or nil.
func (g *Graph) Node(name string) *Node { return g.byName[name] }

// Remove deletes nodes by name. Callers are responsible for rewiring
// consumers first (see the optimize package).
func (g *Graph) Remove(names ...string) {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	kept := g.Nodes[:0]
	for _, n := range g.Nodes {
		if drop[n.Name] {
			delete(g.byName, n.Name)
			continue
		}
		kept = append(kept, n)
	}
	g.Nodes = kept
	ins := g.Inputs[:0]
	for _, n := range g.Inputs {
		if !drop[n] {
			ins = append(ins, n)
		}
	}
	g.Inputs = ins
}

// Rebuild reconstructs the internal name index after external mutation of
// g.Nodes (used by deserialization and graph transforms).
func (g *Graph) Rebuild() {
	g.byName = make(map[string]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		g.byName[n.Name] = n
	}
}

// Validate checks structural invariants: unique names, known ops,
// resolvable inputs, acyclicity and declared outputs.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if seen[n.Name] {
			return fmt.Errorf("nn: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		if n.Op < 0 || n.Op >= numOpTypes {
			return fmt.Errorf("nn: node %q has invalid op %d", n.Name, int(n.Op))
		}
		if n.Op == OpInput && len(n.Inputs) != 0 {
			return fmt.Errorf("nn: input node %q must have no inputs", n.Name)
		}
		if n.Op != OpInput && len(n.Inputs) == 0 {
			return fmt.Errorf("nn: node %q has no inputs", n.Name)
		}
		for _, in := range n.Inputs {
			if g.byName[in] == nil {
				return fmt.Errorf("nn: node %q references unknown input %q", n.Name, in)
			}
		}
	}
	for _, out := range g.Outputs {
		if g.byName[out] == nil {
			return fmt.Errorf("nn: declared output %q does not exist", out)
		}
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("nn: graph %q declares no outputs", g.Name)
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns the nodes in a topological order (inputs before
// consumers) or an error if the graph has a cycle.
//
// The order is fully deterministic and depends only on the graph's
// structure, not on node insertion order: nodes are sorted by longest
// path from the graph's entries, with ties broken by node name. An edge
// u→v implies depth(v) > depth(u), so the sort is a valid topological
// order — and the same graph always lowers to the same IR dump, step
// list and arena layout, byte for byte.
func (g *Graph) TopoSort() ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(g.Nodes))
	depth := make(map[string]int, len(g.Nodes))
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n.Name] {
		case gray:
			return fmt.Errorf("nn: cycle through node %q", n.Name)
		case black:
			return nil
		}
		state[n.Name] = gray
		d := 0
		for _, in := range n.Inputs {
			dep := g.byName[in]
			if dep == nil {
				return fmt.Errorf("nn: node %q references unknown input %q", n.Name, in)
			}
			if err := visit(dep); err != nil {
				return err
			}
			if dd := depth[dep.Name] + 1; dd > d {
				d = dd
			}
		}
		state[n.Name] = black
		depth[n.Name] = d
		return nil
	}
	for _, n := range g.Nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	order := append([]*Node(nil), g.Nodes...)
	sort.Slice(order, func(i, j int) bool {
		di, dj := depth[order[i].Name], depth[order[j].Name]
		if di != dj {
			return di < dj
		}
		return order[i].Name < order[j].Name
	})
	return order, nil
}

// Consumers returns, for each node name, the names of nodes consuming it.
func (g *Graph) Consumers() map[string][]string {
	c := make(map[string][]string, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			c[in] = append(c[in], n.Name)
		}
	}
	return c
}

// NumParams returns the total parameter count across all weights.
func (g *Graph) NumParams() int64 {
	var total int64
	for _, n := range g.Nodes {
		for _, w := range n.Weights {
			total += int64(w.NumElements())
		}
	}
	return total
}

// WeightBytes returns the total weight storage in bytes at current
// precisions.
func (g *Graph) WeightBytes() int64 {
	var total int64
	for _, n := range g.Nodes {
		for _, w := range n.Weights {
			total += int64(w.SizeBytes())
		}
	}
	return total
}

// Clone returns a deep copy of the graph, including weights.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name)
	c.Outputs = append([]string(nil), g.Outputs...)
	for _, n := range g.Nodes {
		cn := &Node{
			Name:     n.Name,
			Op:       n.Op,
			Inputs:   append([]string(nil), n.Inputs...),
			Attrs:    n.Attrs,
			OutShape: n.OutShape.Clone(),
		}
		cn.Attrs.Shape = append([]int(nil), n.Attrs.Shape...)
		if n.Weights != nil {
			cn.Weights = make(map[string]*tensor.Tensor, len(n.Weights))
			for k, w := range n.Weights {
				cn.Weights[k] = w.Clone()
			}
		}
		c.Nodes = append(c.Nodes, cn)
		c.byName[cn.Name] = cn
		if cn.Op == OpInput {
			c.Inputs = append(c.Inputs, cn.Name)
		}
	}
	return c
}
