package nn

// The small models below back the use-case experiments (Section V) and
// the compression study (Section III). They are compact enough for the
// pure-Go reference interpreter, which makes them the workhorses of the
// toolchain's correctness tests.

// LeNet builds a LeNet-5-style CNN for numClasses classes on
// 1×inputSize×inputSize images. It is the compression benchmark subject
// (Deep Compression [7] reports its headline ratios on LeNet-class nets).
func LeNet(inputSize, numClasses int, opts BuildOptions) *Graph {
	b := NewBuilder("lenet", opts)
	x := b.Input("input", 1, inputSize, inputSize)
	x = b.Conv(x, 1, 6, 5, 1, 2)
	x = b.Act(x, OpReLU)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.Conv(x, 6, 16, 5, 1, 0)
	x = b.Act(x, OpReLU)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.Flatten(x)
	side := (inputSize/2 - 4) / 2
	x = b.Dense(x, 16*side*side, 120)
	x = b.Act(x, OpReLU)
	x = b.Dense(x, 120, 84)
	x = b.Act(x, OpReLU)
	x = b.Dense(x, 84, numClasses)
	x = b.Softmax(x)
	return b.Graph(x)
}

// MLP builds a fully connected classifier with the given layer widths;
// dims[0] is the input feature count, dims[len-1] the class count.
func MLP(name string, dims []int, opts BuildOptions) *Graph {
	b := NewBuilder(name, opts)
	x := b.Input("input", dims[0])
	for i := 1; i < len(dims); i++ {
		x = b.Dense(x, dims[i-1], dims[i])
		if i < len(dims)-1 {
			x = b.Act(x, OpReLU)
		}
	}
	x = b.Softmax(x)
	return b.Graph(x)
}

// MotorNet builds the battery-powered motor-condition classifier
// (§V-B): a 1-D CNN over a window of vibration samples, classifying
// operational/thermal/mechanical condition states. The 1-D signal is
// carried as a 1×1×window NCHW tensor.
func MotorNet(window, numStates int, opts BuildOptions) *Graph {
	b := NewBuilder("motornet", opts)
	x := b.Input("input", 1, 1, window)
	x = conv1d(b, x, 1, 8, 9, 2, OpReLU)
	x = conv1d(b, x, 8, 16, 9, 2, OpReLU)
	x = conv1d(b, x, 16, 32, 9, 2, OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 32, numStates)
	x = b.Softmax(x)
	return b.Graph(x)
}

// ArcNet builds the DC-arc detector (§V-B): a small, low-latency 1-D CNN
// over a current waveform window emitting a binary arc/no-arc decision.
// Depth is kept minimal because the use case demands very low latency
// from first spark to inference.
func ArcNet(window int, opts BuildOptions) *Graph {
	b := NewBuilder("arcnet", opts)
	x := b.Input("input", 1, 1, window)
	x = conv1d(b, x, 1, 8, 7, 4, OpReLU)
	x = conv1d(b, x, 8, 16, 7, 4, OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 16, 2)
	x = b.Softmax(x)
	return b.Graph(x)
}

// conv1d appends a 1×k convolution + BN-free bias + activation, treating
// width as the time axis.
func conv1d(b *Builder, x string, inC, outC, k, stride int, act OpType) string {
	n := b.conv(x, OpConv, inC, outC, 1, k, 1, 0, 1, true)
	// Stride and padding only along the time (width) axis.
	node := b.g.Node(n)
	node.Attrs.StrideW = stride
	node.Attrs.PadW = k / 2
	node.Attrs.StrideH = 1
	node.Attrs.PadH = 0
	return b.Act(n, act)
}

// FaceDetectNet builds the smart-mirror face-detection stage (stand-in
// for the WiderFace detector in Fig. 5): a compact single-shot detector
// over gray-scale frames producing per-cell face scores and boxes.
func FaceDetectNet(inputSize int, opts BuildOptions) *Graph {
	b := NewBuilder("facedetect", opts)
	x := b.Input("input", 1, inputSize, inputSize)
	x = b.ConvBNAct(x, 1, 16, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 16, 32, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 32, 64, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 64, 64, 3, 2, 1, OpReLU)
	// Per-cell outputs: 1 score + 4 box offsets.
	x = b.Conv(x, 64, 5, 1, 1, 0)
	return b.Graph(x)
}

// FaceEmbedNet builds the smart-mirror face-representation stage (FaceNet
// stand-in): a small CNN producing an L2-normalizable embedding vector.
func FaceEmbedNet(inputSize, embedDim int, opts BuildOptions) *Graph {
	b := NewBuilder("faceembed", opts)
	x := b.Input("input", 1, inputSize, inputSize)
	x = b.ConvBNAct(x, 1, 32, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 32, 64, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 64, 128, 3, 2, 1, OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 128, embedDim)
	return b.Graph(x)
}

// GestureNet builds the smart-mirror gesture classifier: a small CNN over
// depth-image crops classifying numGestures hand gestures.
func GestureNet(inputSize, numGestures int, opts BuildOptions) *Graph {
	b := NewBuilder("gesture", opts)
	x := b.Input("input", 1, inputSize, inputSize)
	x = b.ConvBNAct(x, 1, 16, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 16, 32, 3, 2, 1, OpReLU)
	x = b.ConvBNAct(x, 32, 64, 3, 2, 1, OpReLU)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 64, numGestures)
	x = b.Softmax(x)
	return b.Graph(x)
}

// SpeechNet builds the smart-mirror speech-recognition stage (DeepSpeech
// stand-in): a 1-D convolutional acoustic model over numFrames feature
// frames of mfccDim coefficients, emitting per-frame character logits.
func SpeechNet(numFrames, mfccDim, alphabet int, opts BuildOptions) *Graph {
	b := NewBuilder("speechnet", opts)
	// Frames on the width axis, MFCC coefficients as channels.
	x := b.Input("input", mfccDim, 1, numFrames)
	x = conv1d(b, x, mfccDim, 128, 11, 2, OpReLU)
	x = conv1d(b, x, 128, 128, 11, 1, OpReLU)
	x = conv1d(b, x, 128, 2*alphabet, 11, 1, OpReLU)
	x = b.Conv(x, 2*alphabet, alphabet, 1, 1, 0)
	return b.Graph(x)
}
