package nn

import (
	"encoding/json"
	"fmt"

	"vedliot/internal/tensor"
)

// QuantSchema is the calibration artifact of post-training quantization:
// one affine INT8 mapping per graph value (inputs and every node
// output), derived by running calibration batches through the FP32
// engine and recording per-tensor activation ranges. The quantized
// compiler (inference.CompileQuantized) consumes it to keep activations
// in INT8 end to end; the JSON form is what deployment pipelines persist
// next to the model.
//
// The schema lives in nn rather than optimize or inference because both
// sides depend on it: optimize produces it, inference consumes it, and
// the graph IR is the vocabulary they share.
type QuantSchema struct {
	// Model names the graph the schema was calibrated for.
	Model string `json:"model"`
	// Activations maps value name (input or node output) to its affine
	// INT8 mapping.
	Activations map[string]tensor.QuantParams `json:"activations"`
}

// NewQuantSchema creates an empty schema for the named model.
func NewQuantSchema(model string) *QuantSchema {
	return &QuantSchema{Model: model, Activations: make(map[string]tensor.QuantParams)}
}

// Params returns the quantization mapping for the named value.
func (s *QuantSchema) Params(name string) (tensor.QuantParams, bool) {
	if s == nil {
		return tensor.QuantParams{}, false
	}
	q, ok := s.Activations[name]
	return q, ok
}

// Set records the mapping for the named value.
func (s *QuantSchema) Set(name string, q tensor.QuantParams) {
	if s.Activations == nil {
		s.Activations = make(map[string]tensor.QuantParams)
	}
	s.Activations[name] = q
}

// Covers reports whether the schema has a usable (positive-scale)
// mapping for every value of g, returning the first gap otherwise. The
// quantized compiler checks coverage over the values that survive
// lowering (values eliminated by rewrites need no mapping); Covers
// remains the conservative whole-graph check for callers validating a
// calibration artifact on its own.
func (s *QuantSchema) Covers(g *Graph) error {
	if s == nil {
		return fmt.Errorf("nn: nil quant schema")
	}
	for _, n := range g.Nodes {
		q, ok := s.Activations[n.Name]
		if !ok {
			return fmt.Errorf("nn: quant schema %q has no range for value %q", s.Model, n.Name)
		}
		if !(q.Scale > 0) {
			return fmt.Errorf("nn: quant schema %q has non-positive scale for value %q", s.Model, n.Name)
		}
	}
	return nil
}

// Clone returns an independent copy of the schema.
func (s *QuantSchema) Clone() *QuantSchema {
	if s == nil {
		return nil
	}
	c := NewQuantSchema(s.Model)
	for name, q := range s.Activations {
		c.Activations[name] = q
	}
	return c
}

// Encode renders the schema as deterministic JSON (encoding/json sorts
// map keys), so identical calibrations produce identical bytes — the
// round-trip property the toolchain tests pin down.
func (s *QuantSchema) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeQuantSchema parses the JSON form produced by Encode.
func DecodeQuantSchema(data []byte) (*QuantSchema, error) {
	s := &QuantSchema{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("nn: decode quant schema: %w", err)
	}
	if s.Activations == nil {
		s.Activations = make(map[string]tensor.QuantParams)
	}
	return s, nil
}

// SyntheticInput builds a deterministic pseudo-random batch shaped like
// the graph's single declared input — the shared probe and calibration
// sample generator of the toolchain CLIs, the bench harness and the
// engine tests. The distribution is uniform-ish in [-0.5, 0.5), varied
// by seed.
func SyntheticInput(g *Graph, batch, seed int) (map[string]*tensor.Tensor, error) {
	if len(g.Inputs) != 1 {
		return nil, fmt.Errorf("nn: synthetic input wants 1 declared input, graph %q has %d", g.Name, len(g.Inputs))
	}
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	per := g.Node(g.Inputs[0]).OutShape[1:]
	in := tensor.New(tensor.FP32, append(tensor.Shape{batch}, per...)...)
	for i := range in.F32 {
		in.F32[i] = float32((i*7+seed*13)%23)/23 - 0.5
	}
	return map[string]*tensor.Tensor{g.Inputs[0]: in}, nil
}

// SyntheticCalibration builds n two-sample calibration batches (seeds
// 1..n) for optimize.Calibrate and the PTQ pass.
func SyntheticCalibration(g *Graph, n int) ([]map[string]*tensor.Tensor, error) {
	samples := make([]map[string]*tensor.Tensor, 0, n)
	for seed := 1; seed <= n; seed++ {
		s, err := SyntheticInput(g, 2, seed)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}
	return samples, nil
}
