package nn

// YoloV4 builds the YOLOv4 object detector (Bochkovskiy et al. 2020) for
// inputSize×inputSize RGB inputs — the headline workload of the paper's
// Fig. 4 evaluation. Structure: CSPDarknet53 backbone (Mish activations),
// SPP block, PANet neck (leaky ReLU) and three detection heads predicting
// 3 anchors × (5 + numClasses) channels at strides 8, 16 and 32.
func YoloV4(inputSize, numClasses int, opts BuildOptions) *Graph {
	b := NewBuilder("yolov4", opts)
	headC := 3 * (5 + numClasses)

	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 32, 3, 1, 1, OpMish)

	// CSPDarknet53: five downsampling CSP stages.
	x = cspStage(b, x, 32, 64, 1, true)
	x = cspStage(b, x, 64, 128, 2, false)
	route8 := cspStage(b, x, 128, 256, 8, false)       // stride-8 feature
	route16 := cspStage(b, route8, 256, 512, 8, false) // stride-16 feature
	x = cspStage(b, route16, 512, 1024, 4, false)      // stride-32 feature

	// Neck entry: conv set then SPP.
	x = b.ConvBNAct(x, 1024, 512, 1, 1, 0, OpLeakyReLU)
	x = b.ConvBNAct(x, 512, 1024, 3, 1, 1, OpLeakyReLU)
	x = b.ConvBNAct(x, 1024, 512, 1, 1, 0, OpLeakyReLU)
	x = spp(b, x, 512)
	x = b.ConvBNAct(x, 2048, 512, 1, 1, 0, OpLeakyReLU)
	x = b.ConvBNAct(x, 512, 1024, 3, 1, 1, OpLeakyReLU)
	p5 := b.ConvBNAct(x, 1024, 512, 1, 1, 0, OpLeakyReLU)

	// PANet top-down: P5 -> P4.
	up4 := b.ConvBNAct(p5, 512, 256, 1, 1, 0, OpLeakyReLU)
	up4 = b.Upsample(up4, 2)
	lat4 := b.ConvBNAct(route16, 512, 256, 1, 1, 0, OpLeakyReLU)
	p4 := convSet5(b, b.Concat(lat4, up4), 512, 256)

	// P4 -> P3.
	up3 := b.ConvBNAct(p4, 256, 128, 1, 1, 0, OpLeakyReLU)
	up3 = b.Upsample(up3, 2)
	lat3 := b.ConvBNAct(route8, 256, 128, 1, 1, 0, OpLeakyReLU)
	p3 := convSet5(b, b.Concat(lat3, up3), 256, 128)

	// Head at stride 8.
	h3 := b.ConvBNAct(p3, 128, 256, 3, 1, 1, OpLeakyReLU)
	h3 = b.Conv(h3, 256, headC, 1, 1, 0)

	// PANet bottom-up: P3 -> P4.
	d4 := b.ConvBNAct(p3, 128, 256, 3, 2, 1, OpLeakyReLU)
	n4 := convSet5(b, b.Concat(d4, p4), 512, 256)
	h4 := b.ConvBNAct(n4, 256, 512, 3, 1, 1, OpLeakyReLU)
	h4 = b.Conv(h4, 512, headC, 1, 1, 0)

	// P4 -> P5.
	d5 := b.ConvBNAct(n4, 256, 512, 3, 2, 1, OpLeakyReLU)
	n5 := convSet5(b, b.Concat(d5, p5), 1024, 512)
	h5 := b.ConvBNAct(n5, 512, 1024, 3, 1, 1, OpLeakyReLU)
	h5 = b.Conv(h5, 1024, headC, 1, 1, 0)

	return b.Graph(h3, h4, h5)
}

// cspStage appends one CSPDarknet stage: a strided downsampling conv
// followed by a cross-stage-partial pair of branches, one holding
// numBlocks residual units, re-joined by concatenation and a transition
// conv. The first stage keeps full width on both branches.
func cspStage(b *Builder, x string, inC, outC, numBlocks int, first bool) string {
	x = b.ConvBNAct(x, inC, outC, 3, 2, 1, OpMish)

	split := outC / 2
	resWidth := split
	if first {
		split = outC
		resWidth = outC / 2
	}
	// Bypass branch.
	bypass := b.ConvBNAct(x, outC, split, 1, 1, 0, OpMish)
	// Residual branch.
	y := b.ConvBNAct(x, outC, split, 1, 1, 0, OpMish)
	for i := 0; i < numBlocks; i++ {
		y = darknetResidual(b, y, split, resWidth)
	}
	y = b.ConvBNAct(y, split, split, 1, 1, 0, OpMish)

	merged := b.Concat(y, bypass)
	return b.ConvBNAct(merged, 2*split, outC, 1, 1, 0, OpMish)
}

// darknetResidual appends a 1×1-reduce / 3×3 residual unit with Mish.
func darknetResidual(b *Builder, x string, c, width int) string {
	y := b.ConvBNAct(x, c, width, 1, 1, 0, OpMish)
	y = b.ConvBNAct(y, width, c, 3, 1, 1, OpMish)
	return b.Add(y, x)
}

// spp appends spatial pyramid pooling: parallel stride-1 max pools with
// kernels 5, 9 and 13 concatenated with the identity (4c channels out).
func spp(b *Builder, x string, c int) string {
	p5 := b.MaxPool(x, 5, 1, 2)
	p9 := b.MaxPool(x, 9, 1, 4)
	p13 := b.MaxPool(x, 13, 1, 6)
	return b.Concat(p13, p9, p5, x)
}

// convSet5 appends the PANet five-conv block alternating 1×1/3×3 kernels,
// mapping inC channels to outC.
func convSet5(b *Builder, x string, inC, outC int) string {
	x = b.ConvBNAct(x, inC, outC, 1, 1, 0, OpLeakyReLU)
	x = b.ConvBNAct(x, outC, outC*2, 3, 1, 1, OpLeakyReLU)
	x = b.ConvBNAct(x, outC*2, outC, 1, 1, 0, OpLeakyReLU)
	x = b.ConvBNAct(x, outC, outC*2, 3, 1, 1, OpLeakyReLU)
	return b.ConvBNAct(x, outC*2, outC, 1, 1, 0, OpLeakyReLU)
}

// YoloV4Tiny builds the reduced YOLOv4-tiny variant used by the smart
// mirror's object-detection stage, where the full model exceeds the uRECS
// power envelope.
func YoloV4Tiny(inputSize, numClasses int, opts BuildOptions) *Graph {
	b := NewBuilder("yolov4-tiny", opts)
	headC := 3 * (5 + numClasses)

	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 32, 3, 2, 1, OpLeakyReLU)
	x = b.ConvBNAct(x, 32, 64, 3, 2, 1, OpLeakyReLU)

	x, _ = tinyCSP(b, x, 64)
	x, _ = tinyCSP(b, x, 128)
	x, route := tinyCSP(b, x, 256) // route: pre-pool transition, 26×26×256 @416

	x = b.ConvBNAct(x, 512, 512, 3, 1, 1, OpLeakyReLU)
	p5 := b.ConvBNAct(x, 512, 256, 1, 1, 0, OpLeakyReLU)

	h5 := b.ConvBNAct(p5, 256, 512, 3, 1, 1, OpLeakyReLU)
	h5 = b.Conv(h5, 512, headC, 1, 1, 0)

	up := b.ConvBNAct(p5, 256, 128, 1, 1, 0, OpLeakyReLU)
	up = b.Upsample(up, 2)
	merged := b.Concat(up, route)
	h4 := b.ConvBNAct(merged, 128+256, 256, 3, 1, 1, OpLeakyReLU)
	h4 = b.Conv(h4, 256, headC, 1, 1, 0)

	return b.Graph(h4, h5)
}

// tinyCSP appends the YOLOv4-tiny CSP block: 3×3 conv, partial split,
// two 3×3 convs, concat, 1×1 transition, then 2×2 max pool. It returns
// the pooled output (2c channels at half resolution) and the pre-pool
// transition tensor (c channels at input resolution) used as the FPN
// lateral route.
func tinyCSP(b *Builder, x string, c int) (out, transition string) {
	x = b.ConvBNAct(x, c, c, 3, 1, 1, OpLeakyReLU)
	y := b.ConvBNAct(x, c, c/2, 1, 1, 0, OpLeakyReLU)
	y = b.ConvBNAct(y, c/2, c/2, 3, 1, 1, OpLeakyReLU)
	y2 := b.ConvBNAct(y, c/2, c/2, 3, 1, 1, OpLeakyReLU)
	merged := b.Concat(y2, y)
	merged = b.ConvBNAct(merged, c, c, 1, 1, 0, OpLeakyReLU)
	joined := b.Concat(x, merged)
	return b.MaxPool(joined, 2, 2, 0), merged
}
