package nn

import (
	"fmt"

	"vedliot/internal/tensor"
)

// InferShapes computes OutShape for every node given a batch size.
// Activation layout is NCHW; dense layers produce [N, features].
func (g *Graph) InferShapes(batch int) error {
	if batch <= 0 {
		return fmt.Errorf("nn: batch must be positive, got %d", batch)
	}
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		shape, err := g.inferNode(n, batch)
		if err != nil {
			return fmt.Errorf("nn: node %q (%s): %w", n.Name, n.Op, err)
		}
		n.OutShape = shape
	}
	return nil
}

func (g *Graph) inferNode(n *Node, batch int) (tensor.Shape, error) {
	if n.Op == OpInput {
		if len(n.Attrs.Shape) == 0 {
			return nil, fmt.Errorf("input node needs Attrs.Shape")
		}
		s := append(tensor.Shape{batch}, n.Attrs.Shape...)
		if !s.Valid() {
			return nil, fmt.Errorf("invalid input shape %v", s)
		}
		return s, nil
	}
	ins := make([]tensor.Shape, len(n.Inputs))
	for i, name := range n.Inputs {
		in := g.byName[name]
		if in == nil {
			return nil, fmt.Errorf("unknown input %q", name)
		}
		if len(in.OutShape) == 0 {
			return nil, fmt.Errorf("input %q has no inferred shape", in.Name)
		}
		ins[i] = in.OutShape
	}
	return InferShape(n.Op, n.Attrs, n.Weights, ins)
}

// inShape returns the inferred shape of node input i (stats accounting
// reads input geometry after InferShapes).
func (g *Graph) inShape(n *Node, i int) (tensor.Shape, error) {
	if i >= len(n.Inputs) {
		return nil, fmt.Errorf("missing input %d", i)
	}
	in := g.byName[n.Inputs[i]]
	if in == nil {
		return nil, fmt.Errorf("unknown input %q", n.Inputs[i])
	}
	if len(in.OutShape) == 0 {
		return nil, fmt.Errorf("input %q has no inferred shape", in.Name)
	}
	return in.OutShape, nil
}

func convOut(in, k, pad, stride int) int {
	return (in+2*pad-k)/stride + 1
}

// InferShape computes the output shape of one operator application from
// its input shapes (batch dimension included) and attributes, validating
// weight shapes when weights are materialized. It is the single shape
// rule shared by Graph.InferShapes and the lowering IR's shape-inference
// pass, which runs it over per-sample shapes without mutating any graph.
// OpInput has no input shapes and is handled by the callers.
func InferShape(op OpType, a Attrs, weights map[string]*tensor.Tensor, ins []tensor.Shape) (tensor.Shape, error) {
	in0 := func() (tensor.Shape, error) {
		if len(ins) == 0 {
			return nil, fmt.Errorf("missing input 0")
		}
		return ins[0], nil
	}
	weight := func(key string) *tensor.Tensor {
		if weights == nil {
			return nil
		}
		return weights[key]
	}
	switch op {
	case OpInput:
		return nil, fmt.Errorf("input node shape comes from Attrs.Shape, not InferShape")

	case OpConv, OpDepthwiseConv:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("conv wants NCHW input, got %v", in)
		}
		groups := a.Groups
		if groups <= 0 {
			groups = 1
		}
		outC := a.OutC
		if op == OpDepthwiseConv {
			groups = in[1]
			if outC == 0 {
				outC = in[1]
			}
		}
		if outC <= 0 {
			return nil, fmt.Errorf("conv needs OutC")
		}
		if in[1]%groups != 0 || outC%groups != 0 {
			return nil, fmt.Errorf("channels %d/outC %d not divisible by groups %d", in[1], outC, groups)
		}
		if a.KernelH <= 0 || a.KernelW <= 0 || a.StrideH <= 0 || a.StrideW <= 0 {
			return nil, fmt.Errorf("conv needs positive kernel and stride")
		}
		oh := convOut(in[2], a.KernelH, a.PadH, a.StrideH)
		ow := convOut(in[3], a.KernelW, a.PadW, a.StrideW)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("conv output collapses to %dx%d", oh, ow)
		}
		if w := weight(WeightKey); w != nil {
			want := tensor.Shape{outC, in[1] / groups, a.KernelH, a.KernelW}
			if !w.Shape.Equal(want) {
				return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
			}
		}
		return tensor.Shape{in[0], outC, oh, ow}, nil

	case OpDense:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 2 {
			return nil, fmt.Errorf("dense wants [N,features] input, got %v (flatten first)", in)
		}
		if a.OutC <= 0 {
			return nil, fmt.Errorf("dense needs OutC")
		}
		if w := weight(WeightKey); w != nil {
			want := tensor.Shape{a.OutC, in[1]}
			if !w.Shape.Equal(want) {
				return nil, fmt.Errorf("weight shape %v, want %v", w.Shape, want)
			}
		}
		return tensor.Shape{in[0], a.OutC}, nil

	case OpBatchNorm:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("batchnorm wants NCHW, got %v", in)
		}
		return in.Clone(), nil

	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh, OpHSwish, OpHSigmoid, OpMish, OpSoftmax, OpIdentity:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		return in.Clone(), nil

	case OpMaxPool, OpAvgPool:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("pool wants NCHW, got %v", in)
		}
		if a.KernelH <= 0 || a.KernelW <= 0 || a.StrideH <= 0 || a.StrideW <= 0 {
			return nil, fmt.Errorf("pool needs positive kernel and stride")
		}
		oh := convOut(in[2], a.KernelH, a.PadH, a.StrideH)
		ow := convOut(in[3], a.KernelW, a.PadW, a.StrideW)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("pool output collapses to %dx%d", oh, ow)
		}
		return tensor.Shape{in[0], in[1], oh, ow}, nil

	case OpGlobalAvgPool:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("global pool wants NCHW, got %v", in)
		}
		return tensor.Shape{in[0], in[1], 1, 1}, nil

	case OpAdd, OpMul:
		if len(ins) < 2 {
			return nil, fmt.Errorf("%s wants >=2 inputs", op)
		}
		first := ins[0]
		for i := 1; i < len(ins); i++ {
			if !ins[i].Equal(first) && !broadcastableChannel(first, ins[i]) {
				return nil, fmt.Errorf("input %d shape %v incompatible with %v", i, ins[i], first)
			}
		}
		return first.Clone(), nil

	case OpConcat:
		if len(ins) < 2 {
			return nil, fmt.Errorf("concat wants >=2 inputs")
		}
		first := ins[0]
		if len(first) != 4 {
			return nil, fmt.Errorf("concat wants NCHW, got %v", first)
		}
		out := first.Clone()
		for i := 1; i < len(ins); i++ {
			s := ins[i]
			if len(s) != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3] {
				return nil, fmt.Errorf("concat input %d shape %v incompatible with %v", i, s, first)
			}
			out[1] += s[1]
		}
		return out, nil

	case OpUpsample:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("upsample wants NCHW, got %v", in)
		}
		if a.Scale <= 0 {
			return nil, fmt.Errorf("upsample needs positive Scale")
		}
		return tensor.Shape{in[0], in[1], in[2] * a.Scale, in[3] * a.Scale}, nil

	case OpFlatten:
		in, err := in0()
		if err != nil {
			return nil, err
		}
		feat := 1
		for _, d := range in[1:] {
			feat *= d
		}
		return tensor.Shape{in[0], feat}, nil
	}
	return nil, fmt.Errorf("unhandled op %s", op)
}

// broadcastableChannel reports whether b can broadcast onto a as a
// per-channel [N,C,1,1] factor (used by squeeze-excite Mul).
func broadcastableChannel(a, b tensor.Shape) bool {
	return len(a) == 4 && len(b) == 4 &&
		a[0] == b[0] && a[1] == b[1] && b[2] == 1 && b[3] == 1
}
