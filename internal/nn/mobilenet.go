package nn

// mnV3Block describes one MobileNetV3 inverted-residual ("bneck") row of
// the architecture table from Howard et al. 2019.
type mnV3Block struct {
	kernel int
	expand int
	out    int
	se     bool
	hswish bool // false = ReLU
	stride int
}

var mobileNetV3Large = []mnV3Block{
	{3, 16, 16, false, false, 1},
	{3, 64, 24, false, false, 2},
	{3, 72, 24, false, false, 1},
	{5, 72, 40, true, false, 2},
	{5, 120, 40, true, false, 1},
	{5, 120, 40, true, false, 1},
	{3, 240, 80, false, true, 2},
	{3, 200, 80, false, true, 1},
	{3, 184, 80, false, true, 1},
	{3, 184, 80, false, true, 1},
	{3, 480, 112, true, true, 1},
	{3, 672, 112, true, true, 1},
	{5, 672, 160, true, true, 2},
	{5, 960, 160, true, true, 1},
	{5, 960, 160, true, true, 1},
}

// MobileNetV3 builds MobileNetV3-Large for inputSize×inputSize RGB inputs,
// one of the three models in the paper's performance evaluation (§II-C).
func MobileNetV3(inputSize int, opts BuildOptions) *Graph {
	b := NewBuilder("mobilenetv3-large", opts)
	x := b.Input("input", 3, inputSize, inputSize)

	x = b.ConvBNAct(x, 3, 16, 3, 2, 1, OpHSwish)
	inC := 16
	for _, blk := range mobileNetV3Large {
		x, inC = invertedResidual(b, x, inC, blk)
	}
	x = b.ConvBNAct(x, inC, 960, 1, 1, 0, OpHSwish)
	x = b.GlobalAvgPool(x)
	// Head: 1×1 convs on the pooled [N,960,1,1] feature.
	x = b.Conv(x, 960, 1280, 1, 1, 0)
	x = b.Act(x, OpHSwish)
	x = b.Flatten(x)
	x = b.Dense(x, 1280, 1000)
	x = b.Softmax(x)
	return b.Graph(x)
}

// mobileNetEdgeBlocks is the reduced bneck stack of MobileNetEdge: the
// same block grammar as the Large table, cut down to edge-class depth.
var mobileNetEdgeBlocks = []mnV3Block{
	{3, 16, 16, false, false, 1},
	{3, 64, 24, false, false, 2},
	{3, 72, 24, false, false, 1},
	{5, 96, 40, true, true, 2},
	{5, 120, 40, true, true, 1},
	{3, 160, 64, true, true, 2},
	{3, 192, 64, true, true, 1},
}

// MobileNetEdge builds a compact MobileNetV3-style classifier — the
// depthwise-separable inverted-residual grammar (expand, depthwise,
// squeeze-excite, project, residual add) at a depth the pure-Go runtime
// executes quickly. It is the workhorse of the quantized-runtime study:
// small enough to benchmark in CI, but it exercises every structural
// feature of the big model (hswish, SE channel scaling, residuals,
// global pooling, dense head, softmax).
func MobileNetEdge(inputSize, numClasses int, opts BuildOptions) *Graph {
	b := NewBuilder("mobilenet-edge", opts)
	x := b.Input("input", 3, inputSize, inputSize)
	x = b.ConvBNAct(x, 3, 16, 3, 2, 1, OpHSwish)
	inC := 16
	for _, blk := range mobileNetEdgeBlocks {
		x, inC = invertedResidual(b, x, inC, blk)
	}
	x = b.ConvBNAct(x, inC, 256, 1, 1, 0, OpHSwish)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 256, numClasses)
	x = b.Softmax(x)
	return b.Graph(x)
}

// invertedResidual appends one bneck block: 1×1 expand, k×k depthwise,
// optional squeeze-excite, 1×1 project, with a residual when shapes allow.
func invertedResidual(b *Builder, x string, inC int, blk mnV3Block) (string, int) {
	act := OpReLU
	if blk.hswish {
		act = OpHSwish
	}
	y := x
	if blk.expand != inC {
		y = b.ConvBNAct(y, inC, blk.expand, 1, 1, 0, act)
	}
	y = b.DWConvBNAct(y, blk.expand, blk.kernel, blk.stride, blk.kernel/2, act)
	if blk.se {
		y = squeezeExcite(b, y, blk.expand)
	}
	y = b.ConvNB(y, blk.expand, blk.out, 1, 1, 0)
	y = b.BN(y, blk.out)
	if blk.stride == 1 && inC == blk.out {
		y = b.Add(y, x)
	}
	return y, blk.out
}

// squeezeExcite appends an SE block over c channels: global pool, 1×1
// reduce (ratio 4) + ReLU, 1×1 expand + hard sigmoid, channel-wise scale.
func squeezeExcite(b *Builder, x string, c int) string {
	red := c / 4
	if red < 8 {
		red = 8
	}
	s := b.GlobalAvgPool(x)
	s = b.Conv(s, c, red, 1, 1, 0)
	s = b.Act(s, OpReLU)
	s = b.Conv(s, red, c, 1, 1, 0)
	s = b.Act(s, OpHSigmoid)
	return b.Mul(x, s)
}
