package nn

import (
	"strings"
	"testing"

	"vedliot/internal/tensor"
)

func TestOpTypeStringRoundTrip(t *testing.T) {
	for op := OpType(0); op < numOpTypes; op++ {
		s := op.String()
		if strings.HasPrefix(s, "OpType(") {
			t.Fatalf("op %d has no name", int(op))
		}
		back, err := ParseOpType(s)
		if err != nil || back != op {
			t.Errorf("ParseOpType(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParseOpType("Bogus"); err == nil {
		t.Error("ParseOpType accepted unknown name")
	}
}

func TestGraphAddAndLookup(t *testing.T) {
	g := NewGraph("g")
	if err := g.Add(&Node{Name: "in", Op: OpInput, Attrs: Attrs{Shape: []int{3}}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(&Node{Name: "in", Op: OpInput}); err == nil {
		t.Error("Add accepted duplicate name")
	}
	if err := g.Add(&Node{Op: OpInput}); err == nil {
		t.Error("Add accepted empty name")
	}
	if g.Node("in") == nil || g.Node("nope") != nil {
		t.Error("Node lookup broken")
	}
	if len(g.Inputs) != 1 || g.Inputs[0] != "in" {
		t.Errorf("Inputs = %v", g.Inputs)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	// Unknown input reference.
	g := NewGraph("g")
	g.MustAdd(&Node{Name: "in", Op: OpInput, Attrs: Attrs{Shape: []int{3}}})
	g.MustAdd(&Node{Name: "relu", Op: OpReLU, Inputs: []string{"ghost"}})
	g.Outputs = []string{"relu"}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted unknown input reference")
	}

	// No outputs.
	g2 := NewGraph("g2")
	g2.MustAdd(&Node{Name: "in", Op: OpInput, Attrs: Attrs{Shape: []int{3}}})
	if err := g2.Validate(); err == nil {
		t.Error("Validate accepted graph without outputs")
	}

	// Output that doesn't exist.
	g3 := NewGraph("g3")
	g3.MustAdd(&Node{Name: "in", Op: OpInput, Attrs: Attrs{Shape: []int{3}}})
	g3.Outputs = []string{"ghost"}
	if err := g3.Validate(); err == nil {
		t.Error("Validate accepted ghost output")
	}

	// Non-input node without inputs.
	g4 := NewGraph("g4")
	g4.MustAdd(&Node{Name: "r", Op: OpReLU})
	g4.Outputs = []string{"r"}
	if err := g4.Validate(); err == nil {
		t.Error("Validate accepted op without inputs")
	}

	// Input node with inputs.
	g5 := NewGraph("g5")
	g5.MustAdd(&Node{Name: "a", Op: OpInput, Attrs: Attrs{Shape: []int{3}}})
	g5.MustAdd(&Node{Name: "b", Op: OpInput, Inputs: []string{"a"}})
	g5.Outputs = []string{"b"}
	if err := g5.Validate(); err == nil {
		t.Error("Validate accepted input node with inputs")
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := NewGraph("cyc")
	g.MustAdd(&Node{Name: "a", Op: OpReLU, Inputs: []string{"b"}})
	g.MustAdd(&Node{Name: "b", Op: OpReLU, Inputs: []string{"a"}})
	g.Outputs = []string{"a"}
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort missed cycle")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := NewGraph("order")
	g.MustAdd(&Node{Name: "c", Op: OpAdd, Inputs: []string{"a", "b"}})
	// Deliberately add dependencies after the consumer.
	g.MustAdd(&Node{Name: "a", Op: OpInput, Attrs: Attrs{Shape: []int{1}}})
	g.MustAdd(&Node{Name: "b", Op: OpInput, Attrs: Attrs{Shape: []int{1}}})
	g.Outputs = []string{"c"}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["a"] > pos["c"] || pos["b"] > pos["c"] {
		t.Errorf("bad order: %v", pos)
	}
}

func TestConsumers(t *testing.T) {
	b := NewBuilder("t", BuildOptions{})
	in := b.Input("in", 3, 8, 8)
	c1 := b.ConvNB(in, 3, 4, 3, 1, 1)
	c2 := b.ConvNB(in, 3, 4, 3, 1, 1)
	sum := b.Add(c1, c2)
	g := b.Graph(sum)
	cons := g.Consumers()
	if len(cons[in]) != 2 {
		t.Errorf("input consumers = %v", cons[in])
	}
	if len(cons[c1]) != 1 || cons[c1][0] != sum {
		t.Errorf("conv consumers = %v", cons[c1])
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	g := NewGraph("r")
	g.MustAdd(&Node{Name: "in", Op: OpInput, Attrs: Attrs{Shape: []int{3}}})
	g.MustAdd(&Node{Name: "id", Op: OpIdentity, Inputs: []string{"in"}})
	g.Remove("id")
	if g.Node("id") != nil || len(g.Nodes) != 1 {
		t.Error("Remove left node behind")
	}
	g.Nodes = append(g.Nodes, &Node{Name: "x", Op: OpIdentity, Inputs: []string{"in"}})
	g.Rebuild()
	if g.Node("x") == nil {
		t.Error("Rebuild missed appended node")
	}
}

func TestShapeInferenceConv(t *testing.T) {
	b := NewBuilder("t", BuildOptions{})
	in := b.Input("in", 3, 224, 224)
	c := b.ConvNB(in, 3, 64, 7, 2, 3)
	g := b.Graph(c)
	if err := g.InferShapes(2); err != nil {
		t.Fatal(err)
	}
	want := tensor.Shape{2, 64, 112, 112}
	if !g.Node(c).OutShape.Equal(want) {
		t.Errorf("conv shape = %v, want %v", g.Node(c).OutShape, want)
	}
}

func TestShapeInferencePoolFlattenDense(t *testing.T) {
	b := NewBuilder("t", BuildOptions{})
	in := b.Input("in", 8, 16, 16)
	p := b.MaxPool(in, 2, 2, 0)
	f := b.Flatten(p)
	d := b.Dense(f, 8*8*8, 10)
	s := b.Softmax(d)
	g := b.Graph(s)
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if !g.Node(p).OutShape.Equal(tensor.Shape{1, 8, 8, 8}) {
		t.Errorf("pool shape = %v", g.Node(p).OutShape)
	}
	if !g.Node(f).OutShape.Equal(tensor.Shape{1, 512}) {
		t.Errorf("flatten shape = %v", g.Node(f).OutShape)
	}
	if !g.Node(s).OutShape.Equal(tensor.Shape{1, 10}) {
		t.Errorf("softmax shape = %v", g.Node(s).OutShape)
	}
}

func TestShapeInferenceConcatUpsample(t *testing.T) {
	b := NewBuilder("t", BuildOptions{})
	in := b.Input("in", 4, 8, 8)
	u := b.Upsample(in, 2)
	g := b.Graph(u)
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if !g.Node(u).OutShape.Equal(tensor.Shape{1, 4, 16, 16}) {
		t.Errorf("upsample shape = %v", g.Node(u).OutShape)
	}

	b2 := NewBuilder("t2", BuildOptions{})
	in2 := b2.Input("in", 4, 8, 8)
	c1 := b2.ConvNB(in2, 4, 6, 3, 1, 1)
	c2 := b2.ConvNB(in2, 4, 10, 3, 1, 1)
	cat := b2.Concat(c1, c2)
	g2 := b2.Graph(cat)
	if err := g2.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	if !g2.Node(cat).OutShape.Equal(tensor.Shape{1, 16, 8, 8}) {
		t.Errorf("concat shape = %v", g2.Node(cat).OutShape)
	}
}

func TestShapeInferenceErrors(t *testing.T) {
	// Batch must be positive.
	g := LeNet(28, 10, BuildOptions{})
	if err := g.InferShapes(0); err == nil {
		t.Error("accepted batch 0")
	}

	// Collapsing conv output.
	b := NewBuilder("bad", BuildOptions{})
	in := b.Input("in", 3, 4, 4)
	c := b.ConvNB(in, 3, 8, 7, 1, 0) // 7x7 kernel on 4x4 input, no pad
	bg := b.Graph(c)
	if err := bg.InferShapes(1); err == nil {
		t.Error("accepted collapsing conv")
	}

	// Dense on unflattened input.
	b2 := NewBuilder("bad2", BuildOptions{})
	in2 := b2.Input("in", 3, 4, 4)
	d := b2.Dense(in2, 48, 10)
	bg2 := b2.Graph(d)
	if err := bg2.InferShapes(1); err == nil {
		t.Error("dense accepted rank-4 input")
	}

	// Add with incompatible shapes.
	b3 := NewBuilder("bad3", BuildOptions{})
	x := b3.Input("x", 3, 4, 4)
	y := b3.Input("y", 5, 4, 4)
	a := b3.Add(x, y)
	bg3 := b3.Graph(a)
	if err := bg3.InferShapes(1); err == nil {
		t.Error("add accepted mismatched channels")
	}
}

func TestSEBroadcastShape(t *testing.T) {
	b := NewBuilder("se", BuildOptions{})
	in := b.Input("in", 8, 6, 6)
	s := b.GlobalAvgPool(in)
	m := b.Mul(in, s)
	g := b.Graph(m)
	if err := g.InferShapes(1); err != nil {
		t.Fatalf("SE-style broadcast rejected: %v", err)
	}
	if !g.Node(m).OutShape.Equal(tensor.Shape{1, 8, 6, 6}) {
		t.Errorf("mul shape = %v", g.Node(m).OutShape)
	}
}

func TestStatsHandComputed(t *testing.T) {
	// One 3x3 conv, 2->4 channels, 8x8 input with pad 1: out 4x8x8.
	b := NewBuilder("t", BuildOptions{})
	in := b.Input("in", 2, 8, 8)
	c := b.ConvNB(in, 2, 4, 3, 1, 1)
	g := b.Graph(c)
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	s, err := g.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantMACs := int64(4*8*8) * int64(2*3*3) // outEl * inC*kh*kw
	if s.MACs != wantMACs {
		t.Errorf("MACs = %d, want %d", s.MACs, wantMACs)
	}
	if s.Ops != 2*wantMACs {
		t.Errorf("Ops = %d, want %d", s.Ops, 2*wantMACs)
	}
	if want := int64(4 * 2 * 3 * 3); s.Params != want {
		t.Errorf("Params = %d, want %d", s.Params, want)
	}
}

func TestStatsDenseWithBias(t *testing.T) {
	b := NewBuilder("t", BuildOptions{Weights: true})
	in := b.Input("in", 10)
	d := b.Dense(in, 10, 5)
	g := b.Graph(d)
	if err := g.InferShapes(3); err != nil {
		t.Fatal(err)
	}
	s, err := g.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 5 * 10); s.MACs != want {
		t.Errorf("MACs = %d, want %d", s.MACs, want)
	}
	if want := int64(10*5 + 5); s.Params != want {
		t.Errorf("Params = %d, want %d", s.Params, want)
	}
	if s.Batch != 3 {
		t.Errorf("Batch = %d", s.Batch)
	}
}

func TestPhantomParamsMatchMaterialized(t *testing.T) {
	// Parameter accounting must agree between weight-less and
	// materialized builds for every model in the zoo.
	zoo := []struct {
		name  string
		build func(opts BuildOptions) *Graph
	}{
		{"lenet", func(o BuildOptions) *Graph { return LeNet(28, 10, o) }},
		{"motornet", func(o BuildOptions) *Graph { return MotorNet(256, 5, o) }},
		{"arcnet", func(o BuildOptions) *Graph { return ArcNet(512, o) }},
		{"facedetect", func(o BuildOptions) *Graph { return FaceDetectNet(96, o) }},
		{"faceembed", func(o BuildOptions) *Graph { return FaceEmbedNet(64, 64, o) }},
		{"gesture", func(o BuildOptions) *Graph { return GestureNet(64, 8, o) }},
		{"speech", func(o BuildOptions) *Graph { return SpeechNet(100, 26, 29, o) }},
		{"mobilenetv3", func(o BuildOptions) *Graph { return MobileNetV3(224, o) }},
	}
	for _, m := range zoo {
		phantom := m.build(BuildOptions{})
		real := m.build(BuildOptions{Weights: true})
		for _, g := range []*Graph{phantom, real} {
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
			if err := g.InferShapes(1); err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
		}
		ps, err := phantom.Stats()
		if err != nil {
			t.Fatal(err)
		}
		rs, err := real.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if ps.Params != rs.Params {
			t.Errorf("%s: phantom params %d != materialized %d", m.name, ps.Params, rs.Params)
		}
		if ps.MACs != rs.MACs {
			t.Errorf("%s: phantom MACs %d != materialized %d", m.name, ps.MACs, rs.MACs)
		}
	}
}

func TestModelZooKnownCounts(t *testing.T) {
	cases := []struct {
		name       string
		g          *Graph
		minGMACs   float64
		maxGMACs   float64
		minMParams float64
		maxMParams float64
	}{
		// Published: 4.1 GMACs, 25.6M params.
		{"resnet50", ResNet50(224, BuildOptions{}), 3.8, 4.4, 24, 27},
		// Published: 0.219 GMACs, 5.4M params.
		{"mobilenetv3", MobileNetV3(224, BuildOptions{}), 0.19, 0.25, 5.0, 6.0},
		// Published (darknet): 128.5 BFLOPs = 64.2 GMACs, 64M params.
		{"yolov4@608", YoloV4(608, 80, BuildOptions{}), 60, 68, 62, 67},
		// Published: ~6.9 BFLOPs = 3.45 GMACs, 6.06M params.
		{"yolov4tiny@416", YoloV4Tiny(416, 80, BuildOptions{}), 3.2, 3.9, 5.7, 6.5},
		// Published: ~1.8 GMACs, 11.7M params.
		{"resnet18", ResNet18(224, BuildOptions{}), 1.6, 2.0, 11, 12.5},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := c.g.InferShapes(1); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s, err := c.g.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if g := s.GMACs(); g < c.minGMACs || g > c.maxGMACs {
			t.Errorf("%s: %.2f GMACs outside [%v, %v]", c.name, g, c.minGMACs, c.maxGMACs)
		}
		if p := float64(s.Params) / 1e6; p < c.minMParams || p > c.maxMParams {
			t.Errorf("%s: %.2fM params outside [%v, %v]", c.name, p, c.minMParams, c.maxMParams)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	g := LeNet(28, 10, BuildOptions{Weights: true, Seed: 7})
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone's weights must not touch the original.
	for _, n := range c.Nodes {
		if w := n.Weight(WeightKey); w != nil {
			w.F32[0] = 12345
			orig := g.Node(n.Name).Weight(WeightKey)
			if orig.F32[0] == 12345 {
				t.Fatal("Clone shares weight storage")
			}
			break
		}
	}
	if c.NumParams() != g.NumParams() {
		t.Error("clone param count differs")
	}
}

func TestWeightBytesAndSummary(t *testing.T) {
	g := LeNet(28, 10, BuildOptions{Weights: true})
	if g.WeightBytes() != g.NumParams()*4 {
		t.Errorf("WeightBytes = %d, want %d", g.WeightBytes(), g.NumParams()*4)
	}
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	s, _ := g.Stats()
	sum := s.Summary(5)
	if !strings.Contains(sum, "TOTAL") || !strings.Contains(sum, "more rows") {
		t.Errorf("Summary missing sections:\n%s", sum)
	}
}

func TestStatsRequiresShapes(t *testing.T) {
	g := LeNet(28, 10, BuildOptions{})
	if _, err := g.Stats(); err == nil {
		t.Error("Stats succeeded without InferShapes")
	}
}

func TestBuilderDeterminism(t *testing.T) {
	a := LeNet(28, 10, BuildOptions{Weights: true, Seed: 42})
	b := LeNet(28, 10, BuildOptions{Weights: true, Seed: 42})
	for _, n := range a.Nodes {
		w := n.Weight(WeightKey)
		if w == nil {
			continue
		}
		w2 := b.Node(n.Name).Weight(WeightKey)
		for i := range w.F32 {
			if w.F32[i] != w2.F32[i] {
				t.Fatalf("node %s weight[%d] differs across same-seed builds", n.Name, i)
			}
		}
	}
}
