package nn

import (
	"fmt"
	"strings"
)

// NodeStats summarizes the compute and memory demand of one node.
type NodeStats struct {
	Name   string
	Op     OpType
	MACs   int64 // multiply-accumulate operations
	Ops    int64 // total elementary operations (2*MACs for MAC-dominated ops)
	Params int64 // weight elements
	// ActivationBytes is the output activation footprint at FP32.
	ActivationBytes int64
	// WeightBytes is the weight footprint at the stored precision.
	WeightBytes int64
}

// GraphStats aggregates NodeStats over a graph for a given batch size.
type GraphStats struct {
	Batch  int
	Nodes  []NodeStats
	MACs   int64
	Ops    int64
	Params int64
	// PeakActivationBytes approximates the largest single activation
	// (a lower bound on required on-chip buffering).
	PeakActivationBytes  int64
	TotalActivationBytes int64
	WeightBytes          int64
}

// GMACs returns total multiply-accumulates in units of 1e9.
func (s GraphStats) GMACs() float64 { return float64(s.MACs) / 1e9 }

// GOPs returns total operations (2*MACs for linear layers) in units of 1e9.
// This matches the "GOPS" accounting used in the paper's Figs. 3 and 4
// (operations, counting multiply and add separately).
func (s GraphStats) GOPs() float64 { return float64(s.Ops) / 1e9 }

// Stats computes per-node and aggregate statistics. InferShapes must have
// been called first (the same batch size is implied by the shapes).
func (g *Graph) Stats() (GraphStats, error) {
	order, err := g.TopoSort()
	if err != nil {
		return GraphStats{}, err
	}
	var gs GraphStats
	if len(order) > 0 && len(order[0].OutShape) > 0 {
		gs.Batch = order[0].OutShape[0]
	}
	for _, n := range order {
		if len(n.OutShape) == 0 {
			return GraphStats{}, fmt.Errorf("nn: node %q has no inferred shape; call InferShapes first", n.Name)
		}
		ns, err := g.nodeStats(n)
		if err != nil {
			return GraphStats{}, err
		}
		gs.Nodes = append(gs.Nodes, ns)
		gs.MACs += ns.MACs
		gs.Ops += ns.Ops
		gs.Params += ns.Params
		gs.WeightBytes += ns.WeightBytes
		gs.TotalActivationBytes += ns.ActivationBytes
		if ns.ActivationBytes > gs.PeakActivationBytes {
			gs.PeakActivationBytes = ns.ActivationBytes
		}
	}
	return gs, nil
}

func (g *Graph) nodeStats(n *Node) (NodeStats, error) {
	out := n.OutShape
	outEl := int64(out.NumElements())
	ns := NodeStats{
		Name:            n.Name,
		Op:              n.Op,
		ActivationBytes: outEl * 4,
	}
	if len(n.Weights) > 0 {
		for _, w := range n.Weights {
			ns.Params += int64(w.NumElements())
			ns.WeightBytes += int64(w.SizeBytes())
		}
	} else {
		// Weights not materialized: derive the count from attributes
		// (FP32 storage assumed).
		ns.Params = g.phantomParams(n)
		ns.WeightBytes = ns.Params * 4
	}
	a := n.Attrs
	switch n.Op {
	case OpConv, OpDepthwiseConv:
		in, err := g.inShape(n, 0)
		if err != nil {
			return ns, err
		}
		groups := int64(a.Groups)
		if groups <= 0 {
			groups = 1
		}
		if n.Op == OpDepthwiseConv {
			groups = int64(in[1])
		}
		macsPerOut := int64(in[1]) / groups * int64(a.KernelH) * int64(a.KernelW)
		ns.MACs = outEl * macsPerOut
		ns.Ops = 2 * ns.MACs
		if n.Weight(BiasKey) != nil {
			ns.Ops += outEl
		}
	case OpDense:
		in, err := g.inShape(n, 0)
		if err != nil {
			return ns, err
		}
		ns.MACs = outEl * int64(in[1])
		ns.Ops = 2 * ns.MACs
		if n.Weight(BiasKey) != nil {
			ns.Ops += outEl
		}
	case OpBatchNorm:
		// Folded scale+shift: one MAC per element.
		ns.MACs = outEl
		ns.Ops = 2 * outEl
	case OpMaxPool, OpAvgPool:
		ns.Ops = outEl * int64(a.KernelH) * int64(a.KernelW)
	case OpGlobalAvgPool:
		in, err := g.inShape(n, 0)
		if err != nil {
			return ns, err
		}
		ns.Ops = int64(in.NumElements())
	case OpAdd, OpMul:
		ns.Ops = outEl * int64(len(n.Inputs)-1)
	case OpReLU, OpReLU6, OpLeakyReLU, OpIdentity, OpFlatten, OpConcat, OpUpsample, OpInput:
		// Data movement / comparison only; negligible arithmetic.
		if n.Op != OpInput && n.Op != OpFlatten && n.Op != OpIdentity {
			ns.Ops = outEl
		}
	case OpSigmoid, OpTanh, OpHSwish, OpHSigmoid, OpMish, OpSoftmax:
		// Transcendental activations: budget a small constant per element.
		const opsPerElement = 4
		ns.Ops = opsPerElement * outEl
	}
	return ns, nil
}

// phantomParams derives the parameter count of a weight-less node from
// its attributes, matching what materialization would allocate.
func (g *Graph) phantomParams(n *Node) int64 {
	a := n.Attrs
	switch n.Op {
	case OpConv, OpDepthwiseConv:
		in, err := g.inShape(n, 0)
		if err != nil {
			return 0
		}
		groups := int64(a.Groups)
		if groups <= 0 {
			groups = 1
		}
		outC := int64(a.OutC)
		if n.Op == OpDepthwiseConv {
			groups = int64(in[1])
			if outC == 0 {
				outC = int64(in[1])
			}
		}
		p := outC * int64(in[1]) / groups * int64(a.KernelH) * int64(a.KernelW)
		if a.Bias {
			p += outC
		}
		return p
	case OpDense:
		in, err := g.inShape(n, 0)
		if err != nil {
			return 0
		}
		p := int64(a.OutC) * int64(in[1])
		if a.Bias {
			p += int64(a.OutC)
		}
		return p
	case OpBatchNorm:
		in, err := g.inShape(n, 0)
		if err != nil {
			return 0
		}
		return 4 * int64(in[1]) // gamma, beta, mean, var
	}
	return 0
}

// Summary renders a human-readable per-layer table, truncated to at most
// maxRows body rows (0 = unlimited).
func (s GraphStats) Summary(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-14s %14s %12s %14s\n", "node", "op", "MACs", "params", "act bytes")
	rows := s.Nodes
	truncated := 0
	if maxRows > 0 && len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	for _, n := range rows {
		fmt.Fprintf(&b, "%-28s %-14s %14d %12d %14d\n", n.Name, n.Op, n.MACs, n.Params, n.ActivationBytes)
	}
	if truncated > 0 {
		fmt.Fprintf(&b, "... (%d more rows)\n", truncated)
	}
	fmt.Fprintf(&b, "TOTAL batch=%d: %.3f GMACs, %.3f GOPs, %.2fM params, %.2f MiB weights\n",
		s.Batch, s.GMACs(), s.GOPs(), float64(s.Params)/1e6, float64(s.WeightBytes)/(1<<20))
	return b.String()
}
