package nn

import (
	"fmt"
	"math"
	"math/rand"

	"vedliot/internal/tensor"
)

// BuildOptions configure model construction.
type BuildOptions struct {
	// Weights controls whether weight tensors are materialized. Model
	// structure and statistics are available either way; the reference
	// interpreter requires materialized weights. Large survey models
	// (YoloV4 has ~64M parameters) are typically built without weights.
	Weights bool
	// Seed drives deterministic He-style weight initialization.
	Seed int64
}

// Builder provides a fluent API for constructing graphs. Methods return
// the name of the node they append, so layers chain naturally.
type Builder struct {
	g    *Graph
	rng  *rand.Rand
	opts BuildOptions
	seq  int
}

// NewBuilder creates a builder for a fresh graph.
func NewBuilder(name string, opts BuildOptions) *Builder {
	return &Builder{
		g:    NewGraph(name),
		rng:  rand.New(rand.NewSource(opts.Seed)),
		opts: opts,
	}
}

// Graph finalizes the build: the given nodes become the declared outputs.
func (b *Builder) Graph(outputs ...string) *Graph {
	b.g.Outputs = append([]string(nil), outputs...)
	return b.g
}

func (b *Builder) name(op string) string {
	b.seq++
	return fmt.Sprintf("%s_%d", op, b.seq)
}

func (b *Builder) add(n *Node) string {
	b.g.MustAdd(n)
	return n.Name
}

func (b *Builder) heNormal(shape tensor.Shape, fanIn int) *tensor.Tensor {
	t := tensor.New(tensor.FP32, shape...)
	std := math.Sqrt(2 / float64(fanIn))
	for i := range t.F32 {
		t.F32[i] = float32(b.rng.NormFloat64() * std)
	}
	return t
}

// Input declares a named graph input with shape dims (excluding batch).
func (b *Builder) Input(name string, dims ...int) string {
	return b.add(&Node{Name: name, Op: OpInput, Attrs: Attrs{Shape: dims}})
}

// conv appends a convolution; inC must match the producing node.
func (b *Builder) conv(x string, op OpType, inC, outC, kh, kw, stride, pad, groups int, bias bool) string {
	n := &Node{
		Name:   b.name("conv"),
		Op:     op,
		Inputs: []string{x},
		Attrs: Attrs{
			KernelH: kh, KernelW: kw,
			StrideH: stride, StrideW: stride,
			PadH: pad, PadW: pad,
			Groups: groups, OutC: outC, Bias: bias,
		},
	}
	if b.opts.Weights {
		fanIn := inC / groups * kh * kw
		n.SetWeight(WeightKey, b.heNormal(tensor.Shape{outC, inC / groups, kh, kw}, fanIn))
		if bias {
			n.SetWeight(BiasKey, tensor.New(tensor.FP32, outC))
		}
	}
	return b.add(n)
}

// Conv appends a square-kernel convolution with bias.
func (b *Builder) Conv(x string, inC, outC, k, stride, pad int) string {
	return b.conv(x, OpConv, inC, outC, k, k, stride, pad, 1, true)
}

// ConvNB appends a convolution without bias (typical before BatchNorm).
func (b *Builder) ConvNB(x string, inC, outC, k, stride, pad int) string {
	return b.conv(x, OpConv, inC, outC, k, k, stride, pad, 1, false)
}

// DWConv appends a depthwise convolution (no bias).
func (b *Builder) DWConv(x string, c, k, stride, pad int) string {
	n := &Node{
		Name:   b.name("dwconv"),
		Op:     OpDepthwiseConv,
		Inputs: []string{x},
		Attrs: Attrs{
			KernelH: k, KernelW: k,
			StrideH: stride, StrideW: stride,
			PadH: pad, PadW: pad,
			OutC: c,
		},
	}
	if b.opts.Weights {
		n.SetWeight(WeightKey, b.heNormal(tensor.Shape{c, 1, k, k}, k*k))
	}
	return b.add(n)
}

// BN appends batch normalization over c channels.
func (b *Builder) BN(x string, c int) string {
	n := &Node{
		Name:   b.name("bn"),
		Op:     OpBatchNorm,
		Inputs: []string{x},
		Attrs:  Attrs{OutC: c, Eps: 1e-5},
	}
	if b.opts.Weights {
		gamma := tensor.New(tensor.FP32, c)
		variance := tensor.New(tensor.FP32, c)
		for i := 0; i < c; i++ {
			gamma.F32[i] = 1
			variance.F32[i] = 1
		}
		n.SetWeight(GammaKey, gamma)
		n.SetWeight(BetaKey, tensor.New(tensor.FP32, c))
		n.SetWeight(MeanKey, tensor.New(tensor.FP32, c))
		n.SetWeight(VarKey, variance)
	}
	return b.add(n)
}

// Act appends an activation node of the given kind.
func (b *Builder) Act(x string, op OpType) string {
	n := &Node{Name: b.name("act"), Op: op, Inputs: []string{x}}
	if op == OpLeakyReLU {
		n.Attrs.Alpha = 0.1
	}
	return b.add(n)
}

// ConvBNAct is the ubiquitous conv → batch-norm → activation block.
func (b *Builder) ConvBNAct(x string, inC, outC, k, stride, pad int, act OpType) string {
	y := b.ConvNB(x, inC, outC, k, stride, pad)
	y = b.BN(y, outC)
	return b.Act(y, act)
}

// DWConvBNAct is the depthwise variant of ConvBNAct.
func (b *Builder) DWConvBNAct(x string, c, k, stride, pad int, act OpType) string {
	y := b.DWConv(x, c, k, stride, pad)
	y = b.BN(y, c)
	return b.Act(y, act)
}

// Dense appends a fully connected layer with bias.
func (b *Builder) Dense(x string, in, out int) string {
	n := &Node{
		Name:   b.name("dense"),
		Op:     OpDense,
		Inputs: []string{x},
		Attrs:  Attrs{OutC: out, Bias: true},
	}
	if b.opts.Weights {
		n.SetWeight(WeightKey, b.heNormal(tensor.Shape{out, in}, in))
		n.SetWeight(BiasKey, tensor.New(tensor.FP32, out))
	}
	return b.add(n)
}

// MaxPool appends a max-pooling layer.
func (b *Builder) MaxPool(x string, k, stride, pad int) string {
	return b.add(&Node{
		Name:   b.name("maxpool"),
		Op:     OpMaxPool,
		Inputs: []string{x},
		Attrs:  Attrs{KernelH: k, KernelW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	})
}

// AvgPool appends an average-pooling layer.
func (b *Builder) AvgPool(x string, k, stride, pad int) string {
	return b.add(&Node{
		Name:   b.name("avgpool"),
		Op:     OpAvgPool,
		Inputs: []string{x},
		Attrs:  Attrs{KernelH: k, KernelW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	})
}

// GlobalAvgPool appends global average pooling to 1x1 spatial.
func (b *Builder) GlobalAvgPool(x string) string {
	return b.add(&Node{Name: b.name("gap"), Op: OpGlobalAvgPool, Inputs: []string{x}})
}

// Add appends an elementwise addition of the given nodes.
func (b *Builder) Add(xs ...string) string {
	return b.add(&Node{Name: b.name("add"), Op: OpAdd, Inputs: xs})
}

// Mul appends an elementwise (or channel-broadcast) multiplication.
func (b *Builder) Mul(xs ...string) string {
	return b.add(&Node{Name: b.name("mul"), Op: OpMul, Inputs: xs})
}

// Concat appends channel concatenation.
func (b *Builder) Concat(xs ...string) string {
	return b.add(&Node{Name: b.name("concat"), Op: OpConcat, Inputs: xs})
}

// Upsample appends nearest-neighbour upsampling by an integer factor.
func (b *Builder) Upsample(x string, scale int) string {
	return b.add(&Node{Name: b.name("up"), Op: OpUpsample, Inputs: []string{x}, Attrs: Attrs{Scale: scale}})
}

// Flatten appends a flatten to [N, features].
func (b *Builder) Flatten(x string) string {
	return b.add(&Node{Name: b.name("flatten"), Op: OpFlatten, Inputs: []string{x}})
}

// Softmax appends a softmax over the feature dimension.
func (b *Builder) Softmax(x string) string {
	return b.add(&Node{Name: b.name("softmax"), Op: OpSoftmax, Inputs: []string{x}})
}
