package nn

// FoldBatchNormStats precomputes inference-mode batch normalization as
// one per-channel affine y = scale*x + shift from the four statistic
// tensors. It is the single source of this arithmetic: the reference
// interpreter, the compiled engines' kernel binders and the lowering
// IR's constant-folding pass all call it, so folding at compile time is
// bitwise identical to folding at run time.
func FoldBatchNormStats(gamma, beta, mean, variance []float32, eps float32) (scale, shift []float32) {
	if eps == 0 {
		eps = 1e-5
	}
	scale = make([]float32, len(gamma))
	shift = make([]float32, len(gamma))
	for i := range gamma {
		inv := 1 / sqrt32(variance[i]+eps)
		scale[i] = gamma[i] * inv
		shift[i] = beta[i] - mean[i]*scale[i]
	}
	return scale, shift
}

// sqrt32 is a pure-float32 Newton square root, kept independent of
// math.Sqrt's float64 rounding so folded batch-norm results are exactly
// reproducible.
func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 32; i++ {
		nx := 0.5 * (x + v/x)
		if nx == x {
			break
		}
		x = nx
	}
	return x
}
