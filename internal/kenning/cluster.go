package kenning

import (
	"fmt"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ClusterTarget deploys through the fleet-serving layer: the model is
// placed on every powered module of a RECS chassis and each Infer is
// routed across the heterogeneous replicas by the cluster scheduler.
// This is the deployment pipeline's view of §II-A at cluster scale —
// the same load→optimize→compile→deploy→measure chain, but the
// "target" is a fleet instead of a single runtime. Reported latency is
// wall time through the scheduler (admission, routing, batching and
// execution), the serving-side quantity a fleet operator measures.
type ClusterTarget struct {
	// Chassis is the populated platform to place replicas on.
	Chassis *microserver.Chassis
	// Config tunes the scheduler (admission queue, per-replica serving).
	Config cluster.Config

	sched *cluster.Scheduler
	model string
}

// Name implements Target.
func (t *ClusterTarget) Name() string {
	if t.Chassis == nil {
		return "cluster"
	}
	return "cluster:" + t.Chassis.Name
}

// Deploy implements Target: it builds a fresh scheduler on the chassis
// and places the model on every powered slot. Redeploying closes the
// previous fleet first.
func (t *ClusterTarget) Deploy(g *nn.Graph) error {
	if t.Chassis == nil {
		return fmt.Errorf("kenning: cluster target has no chassis")
	}
	if t.sched != nil {
		t.sched.Close()
		t.sched = nil
	}
	sched := cluster.NewScheduler(t.Chassis, t.Config)
	if _, err := sched.Deploy(g); err != nil {
		sched.Close()
		return err
	}
	t.sched = sched
	t.model = g.Name
	return nil
}

// Infer implements Target.
func (t *ClusterTarget) Infer(in *tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	if t.sched == nil {
		return nil, 0, fmt.Errorf("kenning: target not deployed")
	}
	start := time.Now()
	out, err := t.sched.InferSingle(t.model, in)
	return out, time.Since(start), err
}

// Scheduler exposes the live fleet (e.g. for routing telemetry in
// reports), nil before Deploy.
func (t *ClusterTarget) Scheduler() *cluster.Scheduler { return t.sched }

// Close releases the fleet. The target can be redeployed afterwards.
func (t *ClusterTarget) Close() {
	if t.sched != nil {
		t.sched.Close()
		t.sched = nil
	}
}

var _ Target = (*ClusterTarget)(nil)
