package kenning

import (
	"testing"

	"vedliot/internal/microserver"
)

func heterogeneousChassis(t *testing.T) *microserver.Chassis {
	t.Helper()
	c := microserver.NewURECS()
	for slot, name := range []string{"SMARC ARM", "Jetson Xavier NX"} {
		m, err := microserver.FindModule(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(slot, m); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestEvaluateOnClusterTarget(t *testing.T) {
	g, testSet := trainedClassifier(t)
	target := &ClusterTarget{Chassis: heterogeneousChassis(t)}
	defer target.Close()
	ev, err := Evaluate(g, target, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every replica runs the same arithmetic, so fleet routing cannot
	// change the quality numbers.
	cpu, err := Evaluate(g, &CPUTarget{}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Confusion.Accuracy() != cpu.Confusion.Accuracy() {
		t.Error("cluster target changed accuracy")
	}
	if ev.Latency.Count != len(testSet) || ev.Latency.Mean <= 0 {
		t.Errorf("latency stats = %+v", ev.Latency)
	}
	dep, err := target.Scheduler().Deployment(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dep.Replicas()); got != 2 {
		t.Errorf("fleet has %d replicas, want 2", got)
	}
	st := dep.Stats()
	if st.Completed < int64(len(testSet)) {
		t.Errorf("fleet completed %d requests, want >= %d", st.Completed, len(testSet))
	}
}

func TestClusterTargetLifecycle(t *testing.T) {
	target := &ClusterTarget{Chassis: heterogeneousChassis(t)}
	if _, _, err := target.Infer(nil); err == nil {
		t.Error("Infer succeeded before Deploy")
	}
	g, testSet := trainedClassifier(t)
	if err := target.Deploy(g); err != nil {
		t.Fatal(err)
	}
	// Redeploy replaces the fleet (the old scheduler is closed).
	if err := target.Deploy(g.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(g, target, testSet[:4], 3); err != nil {
		t.Fatal(err)
	}
	target.Close()
	if _, _, err := target.Infer(nil); err == nil {
		t.Error("Infer succeeded after Close")
	}
	if (&ClusterTarget{}).Name() != "cluster" {
		t.Error("unnamed target")
	}
}
